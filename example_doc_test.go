package mrtext_test

import (
	"fmt"
	"log"

	"mrtext"
)

// ExampleRun shows the complete optimized WordCount flow: build a cluster,
// generate a corpus, switch on both paper optimizations, run, and inspect
// the cost breakdown. (Not executed by `go test`: timings are machine-
// dependent.)
func ExampleRun() {
	c, err := mrtext.NewCluster(mrtext.LocalSmallCluster())
	if err != nil {
		log.Fatal(err)
	}
	if err := mrtext.GenerateCorpus(c, "corpus.txt", mrtext.DefaultCorpus(), 16<<20); err != nil {
		log.Fatal(err)
	}

	job := mrtext.WordCount("corpus.txt")
	job.FreqBuf = mrtext.FreqBufText() // §III frequency-buffering
	job.SpillMatcher = true            // §IV spill-matcher

	res, err := mrtext.Run(c, job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Wall, res.MapTasks, res.ReduceTasks)
	fmt.Print(res.Agg.Breakdown())
}

// ExampleJob_customMapper shows a fully user-defined job: any map/combine/
// reduce over line-oriented input, with the optimizations applied without
// touching the user code — the paper's central usability claim.
func ExampleJob_customMapper() {
	c, err := mrtext.NewCluster(mrtext.FastCluster(2))
	if err != nil {
		log.Fatal(err)
	}
	if err := c.FS.WriteFile("in.txt", []byte("x xy xyz\nxy x\n")); err != nil {
		log.Fatal(err)
	}

	job := &mrtext.Job{
		Name:   "line-lengths",
		Inputs: []string{"in.txt"},
		NewMapper: func() mrtext.Mapper {
			return mrtext.MapperFunc(func(off int64, line []byte, out mrtext.Collector) error {
				return out.Collect([]byte(fmt.Sprint(len(line))), []byte("1"))
			})
		},
		NewReducer: func() mrtext.Reducer {
			return mrtext.ReducerFunc(func(key []byte, vals mrtext.ValueIter, out mrtext.Collector) error {
				n := 0
				for {
					_, ok, err := vals.Next()
					if err != nil {
						return err
					}
					if !ok {
						break
					}
					n++
				}
				return out.Collect(key, []byte(fmt.Sprint(n)))
			})
		},
		Format: func(k, v []byte) ([]byte, error) {
			return []byte(fmt.Sprintf("%s=%s\n", k, v)), nil
		},
	}
	job.SpillMatcher = true // works on any job, no code changes

	if _, err := mrtext.Run(c, job); err != nil {
		log.Fatal(err)
	}
}
