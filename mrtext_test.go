package mrtext_test

import (
	"bytes"
	"strings"
	"testing"

	"mrtext"
)

func fastCluster(t *testing.T) *mrtext.Cluster {
	t.Helper()
	c, err := mrtext.NewCluster(mrtext.FastCluster(2))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFacadeEndToEnd(t *testing.T) {
	c := fastCluster(t)
	if err := mrtext.GenerateCorpus(c, "corpus.txt", mrtext.CorpusConfig{
		Vocabulary: 500, Alpha: 1, WordsPerLine: 6, Seed: 1,
	}, 64<<10); err != nil {
		t.Fatal(err)
	}

	job := mrtext.WordCount("corpus.txt")
	job.FreqBuf = mrtext.FreqBufText()
	job.SpillMatcher = true
	res, err := mrtext.Run(c, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wall <= 0 || res.MapTasks == 0 {
		t.Errorf("result %+v", res)
	}

	ref, err := mrtext.RunReference(c, mrtext.WordCount("corpus.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for p := range ref {
		got, err := mrtext.ReadOutput(c, res, p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, ref[p]) {
			t.Errorf("partition %d differs from reference", p)
		}
	}
	if _, err := mrtext.ReadOutput(c, res, 999); err == nil {
		t.Error("out-of-range partition read succeeded")
	}
	if !strings.Contains(res.Agg.Breakdown(), "TOTAL") {
		t.Error("breakdown missing")
	}
}

func TestFacadeGenerators(t *testing.T) {
	c := fastCluster(t)
	if err := mrtext.GenerateUserVisits(c, "v", mrtext.LogConfig{URLs: 50, Alpha: 0.8, Seed: 2}, 16<<10); err != nil {
		t.Fatal(err)
	}
	if err := mrtext.GenerateRankings(c, "r", mrtext.LogConfig{URLs: 50, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := mrtext.GenerateWebGraph(c, "g", mrtext.GraphConfig{Pages: 100, Alpha: 1, MeanOutDegree: 3, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"v", "r", "g"} {
		if !c.FS.Exists(f) {
			t.Errorf("%s missing", f)
		}
	}
	// Join the generated data end to end.
	res, err := mrtext.Run(c, mrtext.AccessLogJoin("v", "r"))
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	for p := range res.Outputs {
		data, err := mrtext.ReadOutput(c, res, p)
		if err != nil {
			t.Fatal(err)
		}
		rows += bytes.Count(data, []byte("\n"))
	}
	if rows == 0 {
		t.Error("join produced no rows")
	}
}

func TestFacadeClusterPresets(t *testing.T) {
	if mrtext.LocalSmallCluster().Nodes != 6 {
		t.Error("local preset")
	}
	if mrtext.EC2Cluster().Nodes != 20 {
		t.Error("ec2 preset")
	}
	if mrtext.FreqBufText().K != 3000 || mrtext.FreqBufLog().K != 10000 {
		t.Error("freqbuf presets")
	}
	if mrtext.DefaultCorpus().Vocabulary == 0 || mrtext.DefaultLog().URLs == 0 || mrtext.DefaultGraph().Pages == 0 {
		t.Error("dataset presets")
	}
}
