package mrtext_test

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"testing"

	"mrtext"
)

// wordLenMapper is a user-written mapper: it emits (word length, 1) for
// every word — the kind of ad-hoc text statistic the paper's introduction
// motivates.
type wordLenMapper struct{}

func (wordLenMapper) Map(_ int64, line []byte, out mrtext.Collector) error {
	for _, w := range bytes.Fields(line) {
		key := strconv.AppendInt(nil, int64(len(w)), 10)
		if err := out.Collect(key, []byte("1")); err != nil {
			return err
		}
	}
	return nil
}

// countCombine sums decimal-string counts; it is deliberately a different
// value representation from the built-in apps to prove the runtime is
// codec-agnostic.
func countCombine(key []byte, values [][]byte, emit func(k, v []byte) error) error {
	var sum int64
	for _, v := range values {
		n, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return err
		}
		sum += n
	}
	return emit(key, strconv.AppendInt(nil, sum, 10))
}

type countReducer struct{}

func (countReducer) Reduce(key []byte, values mrtext.ValueIter, out mrtext.Collector) error {
	var sum int64
	for {
		v, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		n, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return err
		}
		sum += n
	}
	return out.Collect(key, strconv.AppendInt(nil, sum, 10))
}

// TestCustomUserJob runs a fully user-defined job (custom mapper, combiner,
// reducer, value format) through every optimization configuration and
// checks the histogram is identical and correct each time.
func TestCustomUserJob(t *testing.T) {
	c, err := mrtext.NewCluster(mrtext.FastCluster(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := mrtext.GenerateCorpus(c, "corpus.txt", mrtext.CorpusConfig{
		Vocabulary: 2000, Alpha: 1, WordsPerLine: 9, Seed: 11,
	}, 256<<10); err != nil {
		t.Fatal(err)
	}

	mkJob := func(name string) *mrtext.Job {
		return &mrtext.Job{
			Name:       name,
			Inputs:     []string{"corpus.txt"},
			NewMapper:  func() mrtext.Mapper { return wordLenMapper{} },
			NewReducer: func() mrtext.Reducer { return countReducer{} },
			Combine:    countCombine,
			Format: func(k, v []byte) ([]byte, error) {
				return []byte(fmt.Sprintf("%s %s\n", k, v)), nil
			},
			SpillBufferBytes: 32 << 10,
		}
	}

	collect := func(res *mrtext.Result) map[string]int64 {
		hist := map[string]int64{}
		for p := range res.Outputs {
			data, err := mrtext.ReadOutput(c, res, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, line := range bytes.Split(data, []byte("\n")) {
				if len(line) == 0 {
					continue
				}
				var length string
				var count int64
				if _, err := fmt.Sscanf(string(line), "%s %d", &length, &count); err != nil {
					t.Fatalf("bad line %q: %v", line, err)
				}
				hist[length] = count
			}
		}
		return hist
	}

	var first map[string]int64
	for _, cfg := range []struct {
		name  string
		apply func(j *mrtext.Job)
	}{
		{"baseline", func(j *mrtext.Job) {}},
		{"optimized", func(j *mrtext.Job) {
			j.FreqBuf = &mrtext.FreqBufConfig{K: 10, SampleFraction: 0.05, MemFraction: 0.3, ShareTopK: true}
			j.SpillMatcher = true
		}},
		{"extensions", func(j *mrtext.Job) {
			j.CompressRuns = true
			j.HashGroupSpills = true
		}},
	} {
		job := mkJob("wordlen-" + cfg.name)
		cfg.apply(job)
		res, err := mrtext.Run(c, job)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		hist := collect(res)
		if len(hist) == 0 {
			t.Fatalf("%s: empty histogram", cfg.name)
		}
		if first == nil {
			first = hist
			// Sanity: counts are all positive; short lengths dominate a
			// bijective-base26 vocabulary.
			var keys []string
			var total int64
			for k, v := range hist {
				keys = append(keys, k)
				if v <= 0 {
					t.Errorf("length %s count %d", k, v)
				}
				total += v
			}
			sort.Strings(keys)
			if total == 0 {
				t.Fatal("no words counted")
			}
			continue
		}
		if len(hist) != len(first) {
			t.Fatalf("%s: histogram size %d vs %d", cfg.name, len(hist), len(first))
		}
		for k, v := range first {
			if hist[k] != v {
				t.Errorf("%s: length %s count %d vs baseline %d", cfg.name, k, hist[k], v)
			}
		}
	}
}
