// Command mrtracecheck validates Chrome/Perfetto trace files written by
// mrrun -trace or mrbench -trace and prints a short summary per file. It
// exits non-zero if any file fails validation, which makes it usable as a
// CI gate on trace artifacts. With -report it additionally parses each
// trace, reconstructs the job's critical path, and prints the blame
// report — so a recorded artifact can be analyzed offline, without the
// process that produced it.
//
// Usage:
//
//	mrtracecheck [-report] <trace.json> [<trace.json>...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mrtext/internal/trace"
	"mrtext/internal/trace/critpath"
)

// summary counts the event phases of one trace document. The field set
// mirrors the subset of the trace_event format the exporter emits.
type summary struct {
	TraceEvents []struct {
		Ph   string  `json:"ph"`
		Name string  `json:"name"`
		Dur  float64 `json:"dur"`
	} `json:"traceEvents"`
}

func check(path string, report bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := trace.Validate(data); err != nil {
		return err
	}
	var s summary
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	var spans, instants, meta int
	var busyUS float64
	for _, ev := range s.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			busyUS += ev.Dur
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	fmt.Printf("%s: ok — %d spans (%.1f ms busy), %d instants, %d metadata rows\n",
		path, spans, busyUS/1000, instants, meta)
	if !report {
		return nil
	}
	events, err := trace.ParseJSON(data)
	if err != nil {
		return err
	}
	rep, err := critpath.Analyze(events, critpath.Options{})
	if err != nil {
		return err
	}
	return rep.WriteText(os.Stdout)
}

func main() {
	report := flag.Bool("report", false, "reconstruct the critical path of each trace and print the blame report")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: mrtracecheck [-report] <trace.json>...")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		if err := check(path, *report); err != nil {
			fmt.Fprintf(os.Stderr, "mrtracecheck: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
