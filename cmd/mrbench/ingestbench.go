package main

import (
	"encoding/json"
	"fmt"
	"os"

	"mrtext/internal/ingestbench"
)

// runIngestBench runs the ingest fast-path harness (internal/ingestbench)
// and writes the report to out. With assert set it fails — exit-code
// style, for CI — unless every batched pipeline held the steady-state
// allocation count at exactly zero per record. Throughput is not asserted
// (shared CI runners make wall time unreliable); the speedup lives in the
// report for the record.
func runIngestBench(out string, megabytes int64, chunkKB, iters int, seed int64, assert bool) error {
	rep, err := ingestbench.Do(megabytes, chunkKB<<10, iters, seed)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	for _, r := range rep.Runs {
		fmt.Printf("%-16s %-8s %9d recs %9d B  wall %8.1f ms  %6.3f GB/s/core  %7.3f allocs/rec  %5.2fx\n",
			r.Workload, r.Config, r.Records, r.Bytes, r.WallMS, r.GBPerSecPerCore, r.AllocsPerRecord, r.Speedup)
	}
	fmt.Printf("wrote %s\n", out)
	if assert {
		for _, r := range rep.Runs {
			if r.Config == "batched" && r.AllocsPerRecord != 0 {
				return fmt.Errorf("batched %s allocated %.4f allocs/record in steady state, want 0",
					r.Workload, r.AllocsPerRecord)
			}
		}
	}
	return nil
}
