// Command mrbench regenerates the paper's tables and figures by id.
//
// Usage:
//
//	mrbench [flags] <experiment> [<experiment>...]
//	mrbench -list
//
// Experiments: fig2 table2 fig3 fig7 fig8 fig9 fig10 table3 table4
// spillmodel, or "all".
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mrtext/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		scale   = flag.Float64("scale", 1.0, "dataset scale multiplier (1.0 ≈ 16 MiB corpus)")
		nodes   = flag.Int("nodes", 0, "override cluster node count (0 = experiment default)")
		posIter = flag.Int("pos-iterations", 8, "WordPOSTag CPU-intensity (tagger rescoring iterations)")
		seed    = flag.Int64("seed", 1, "generator seed offset")
		fast    = flag.Bool("fast", false, "disable disk/network throttling (not paper-faithful; for smoke tests)")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: mrbench [flags] <experiment>... ; try -list")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiments.Names()
	}

	env := experiments.DefaultEnv()
	env.Scale = *scale
	env.POSIterations = *posIter
	env.Seed = *seed
	env.Out = os.Stdout
	if *fast {
		cfg := env.Cluster
		cfg.DiskThrottle = nil
		cfg.Net.BytesPerSec = 0
		cfg.Net.Latency = 0
		env.Cluster = cfg
	}
	if *nodes > 0 {
		env.Cluster.Nodes = *nodes
	}

	for _, name := range args {
		fmt.Printf("==== %s (scale %.2g, %d nodes) ====\n", name, env.Scale, env.Cluster.Nodes)
		start := time.Now()
		if err := experiments.Run(name, env); err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s done in %s ====\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
