// Command mrbench regenerates the paper's tables and figures by id.
//
// Usage:
//
//	mrbench [flags] <experiment> [<experiment>...]
//	mrbench -list
//
// Experiments: fig2 table2 fig3 fig7 fig8 fig9 fig10 table3 table4
// spillmodel, or "all".
//
// mrbench -spillbench runs the spill-path regression harness instead
// and writes BENCH_spillpath.json (see internal/spillpath).
//
// mrbench -shufflebench runs the pipelined-shuffle harness — the same
// throttled SynText job under the serial shuffle and under copier pools
// of fan-out 1, 2 and 4 — plus a weak-scaling sweep over
// -shufflebench-nodes simulated node counts, and writes
// BENCH_shuffle.json. -shufflebench-assert turns the sweep into a CI
// gate on copier-steal activity.
//
// mrbench -ingestbench runs the ingest fast-path harness — the serial
// bufio line scanner with allocating tokenize/parse kernels against the
// block-batched arena scanner with the fastparse kernels — and writes
// BENCH_ingest.json (see internal/ingestbench).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mrtext/internal/experiments"
	"mrtext/internal/pprofserve"
	"mrtext/internal/spillpath"
	"mrtext/internal/trace"
)

func runSpillBench(out string, iters int, seed int64) error {
	rep, err := spillpath.Run(spillpath.DefaultScales, 4, 8, iters, seed)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	for _, sc := range rep.Scales {
		fmt.Printf("%8d records: sort %.2fx merge %.2fx total %.2fx (allocs/rec %.2f -> %.2f)\n",
			sc.Records, sc.SortSpeedup, sc.MergeSpeedup, sc.TotalSpeedup,
			sc.Baseline.Total.AllocsPerRecord, sc.Packed.Total.AllocsPerRecord)
	}
	fmt.Printf("emit timing: precise %.1f ns/rec, sampled %.1f ns/rec (delta %.1f); clock reads/rec %.2f -> %.4f\n",
		rep.EmitTimer.PreciseNsPerRecord, rep.EmitTimer.SampledNsPerRecord, rep.EmitTimer.DeltaNsPerRecord,
		rep.EmitTimer.PreciseClockReadsPerRec, rep.EmitTimer.SampledClockReadsPerRec)
	fmt.Printf("wrote %s\n", out)
	return nil
}

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments and exit")
		scale      = flag.Float64("scale", 1.0, "dataset scale multiplier (1.0 ≈ 16 MiB corpus)")
		nodes      = flag.Int("nodes", 0, "override cluster node count (0 = experiment default)")
		posIter    = flag.Int("pos-iterations", 8, "WordPOSTag CPU-intensity (tagger rescoring iterations)")
		seed       = flag.Int64("seed", 1, "generator seed offset")
		fast       = flag.Bool("fast", false, "disable disk/network throttling (not paper-faithful; for smoke tests)")
		spillbench = flag.Bool("spillbench", false, "run the spill-path regression harness and write -spillbench-out")
		sbOut      = flag.String("spillbench-out", "BENCH_spillpath.json", "output file for -spillbench")
		sbIters    = flag.Int("spillbench-iters", 5, "measurement iterations per stage for -spillbench")
		shufbench  = flag.Bool("shufflebench", false, "run the pipelined-shuffle harness and write -shufflebench-out")
		shbOut     = flag.String("shufflebench-out", "BENCH_shuffle.json", "output file for -shufflebench")
		shbIters   = flag.Int("shufflebench-iters", 3, "iterations per shuffle configuration for -shufflebench")
		shbMB      = flag.Int64("shufflebench-mb", 16, "SynText corpus size in MiB for -shufflebench")
		shbNodes   = flag.String("shufflebench-nodes", "64,128,256", "comma-separated node counts for the -shufflebench weak-scaling sweep (empty = skip the sweep)")
		shbBase    = flag.Bool("shufflebench-base", true, "run the classic 4-node copier-fan-out section of -shufflebench")
		shbAssert  = flag.Bool("shufflebench-assert", false, "exit nonzero unless copier-steal activity at copiers-4 stays within the copiers-1 bound in every cell (CI gate)")
		ingbench   = flag.Bool("ingestbench", false, "run the ingest fast-path harness and write -ingestbench-out")
		ibOut      = flag.String("ingestbench-out", "BENCH_ingest.json", "output file for -ingestbench")
		ibIters    = flag.Int("ingestbench-iters", 5, "iterations per ingest pipeline for -ingestbench")
		ibMB       = flag.Int64("ingestbench-mb", 64, "dataset size in MiB for -ingestbench")
		ibChunkKB  = flag.Int("ingestbench-chunk-kb", 0, "batched-reader arena chunk in KiB for -ingestbench (0 = default)")
		ibAssert   = flag.Bool("ingestbench-assert", false, "exit nonzero unless batched steady-state allocs/record == 0 (CI gate)")
		traceOut   = flag.String("trace", "", "record every job run and write one Chrome/Perfetto trace to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and live expvar metrics on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		pprofserve.Serve(*pprofAddr, func(err error) {
			fmt.Fprintln(os.Stderr, "mrbench: pprof:", err)
		})
	}
	var tr *trace.Tracer
	if *traceOut != "" {
		// Experiments construct their jobs internally; the process-wide
		// default tracer is how they inherit tracing.
		tr = trace.New(0)
		trace.SetDefault(tr)
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	if *spillbench {
		if err := runSpillBench(*sbOut, *sbIters, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: spillbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *shufbench {
		scaleNodes, err := parseNodeList(*shbNodes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: shufflebench: %v\n", err)
			os.Exit(2)
		}
		if err := runShuffleBench(*shbOut, *shbIters, *shbMB, scaleNodes, *shbBase, *shbAssert); err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: shufflebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *ingbench {
		if err := runIngestBench(*ibOut, *ibMB, *ibChunkKB, *ibIters, *seed, *ibAssert); err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: ingestbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: mrbench [flags] <experiment>... ; try -list")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiments.Names()
	}

	env := experiments.DefaultEnv()
	env.Scale = *scale
	env.POSIterations = *posIter
	env.Seed = *seed
	env.Out = os.Stdout
	if *fast {
		cfg := env.Cluster
		cfg.DiskThrottle = nil
		cfg.Net.BytesPerSec = 0
		cfg.Net.Latency = 0
		env.Cluster = cfg
	}
	if *nodes > 0 {
		env.Cluster.Nodes = *nodes
	}

	for _, name := range args {
		fmt.Printf("==== %s (scale %.2g, %d nodes) ====\n", name, env.Scale, env.Cluster.Nodes)
		start := time.Now()
		if err := experiments.Run(name, env); err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s done in %s ====\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if tr != nil {
		if err := writeTraceFile(*traceOut, tr); err != nil {
			fmt.Fprintf(os.Stderr, "mrbench: trace: %v\n", err)
			os.Exit(1)
		}
		if d := tr.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "mrbench: warning: trace ring overflowed, %d events dropped\n", d)
		}
		fmt.Printf("wrote trace to %s (load it at ui.perfetto.dev)\n", *traceOut)
	}
}

// parseNodeList parses the -shufflebench-nodes value: a comma-separated
// list of positive node counts, or empty to skip the sweep.
func parseNodeList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad node count %q in -shufflebench-nodes", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func writeTraceFile(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSON(f, tr.Events()); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}
