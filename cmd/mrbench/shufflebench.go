package main

import (
	"encoding/json"
	"fmt"
	"os"

	"mrtext"
)

// The shuffle regression harness: the same throttled SynText job under the
// serial shuffle and under copier pools of increasing fan-out. The cluster
// geometry is chosen so the pipeline has something to overlap — two full
// map waves (16 one-MiB splits over 8 map slots) on a throttled fabric —
// and the report pins both the wall-clock effect and the staging activity
// (early segments, spills, peak) for each fan-out.

// shuffleBenchRun is one configuration's measurement in BENCH_shuffle.json.
type shuffleBenchRun struct {
	Config        string  `json:"config"`
	Copiers       int     `json:"copiers"` // 0 means serial shuffle
	WallMS        float64 `json:"wall_ms"`
	MapWallMS     float64 `json:"map_wall_ms"`
	ReduceWallMS  float64 `json:"reduce_wall_ms"`
	EarlySegments int     `json:"early_segments"`
	StagedSpills  int     `json:"staged_spills"`
	StagingPeakB  int64   `json:"staging_peak_bytes"`
	FetchRetries  int     `json:"fetch_retries"`
	// ReduceSpeedup is serial reduce-wall / this config's reduce-wall;
	// 1.0 for the serial baseline itself.
	ReduceSpeedup float64 `json:"reduce_speedup_vs_serial"`
}

// shuffleBenchReport is the BENCH_shuffle.json schema.
type shuffleBenchReport struct {
	App      string            `json:"app"`
	CorpusMB int64             `json:"corpus_mb"`
	Nodes    int               `json:"nodes"`
	Iters    int               `json:"iters"`
	Runs     []shuffleBenchRun `json:"runs"`
}

// runShuffleBench measures the serial shuffle against copier fan-outs 1, 2
// and 4 and writes the report to out. Each configuration runs iters times
// on a fresh cluster; the iteration with the lowest wall time is reported.
func runShuffleBench(out string, iters int, megabytes int64) error {
	if iters < 1 {
		iters = 1
	}
	const nodes = 4
	target := megabytes << 20

	type benchCfg struct {
		name    string
		copiers int
	}
	cfgs := []benchCfg{
		{"serial", 0},
		{"copiers-1", 1},
		{"copiers-2", 2},
		{"copiers-4", 4},
	}

	rep := shuffleBenchReport{App: "syntext", CorpusMB: megabytes, Nodes: nodes, Iters: iters}
	for _, bc := range cfgs {
		var best *mrtext.Result
		for it := 0; it < iters; it++ {
			res, err := runShuffleConfig(nodes, target, bc.copiers)
			if err != nil {
				return fmt.Errorf("%s iter %d: %w", bc.name, it, err)
			}
			if best == nil || res.Wall < best.Wall {
				best = res
			}
		}
		rep.Runs = append(rep.Runs, shuffleBenchRun{
			Config:        bc.name,
			Copiers:       bc.copiers,
			WallMS:        float64(best.Wall.Microseconds()) / 1e3,
			MapWallMS:     float64(best.MapWall.Microseconds()) / 1e3,
			ReduceWallMS:  float64(best.ReduceWall.Microseconds()) / 1e3,
			EarlySegments: best.ShuffleEarlySegments,
			StagedSpills:  best.ShuffleStagedSpills,
			StagingPeakB:  best.ShuffleStagingPeak,
			FetchRetries:  best.ShuffleFetchRetries,
		})
	}
	serialReduce := rep.Runs[0].ReduceWallMS
	for i := range rep.Runs {
		if rep.Runs[i].ReduceWallMS > 0 {
			rep.Runs[i].ReduceSpeedup = serialReduce / rep.Runs[i].ReduceWallMS
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	for _, r := range rep.Runs {
		fmt.Printf("%-10s wall %8.1f ms (map %8.1f, shuffle+reduce %8.1f, %.2fx) early %3d spills %3d peak %8d B\n",
			r.Config, r.WallMS, r.MapWallMS, r.ReduceWallMS, r.ReduceSpeedup,
			r.EarlySegments, r.StagedSpills, r.StagingPeakB)
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runShuffleConfig executes one throttled SynText job with the given
// copier fan-out (0 = serial shuffle) on a fresh cluster.
func runShuffleConfig(nodes int, target int64, copiers int) (*mrtext.Result, error) {
	cfg := mrtext.LocalSmallCluster()
	cfg.Nodes = nodes
	cfg.BlockSize = 1 << 20 // two full map waves at 16 MiB over 8 slots
	c, err := mrtext.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	if err := mrtext.GenerateCorpus(c, "corpus.txt", mrtext.DefaultCorpus(), target); err != nil {
		return nil, err
	}
	job := mrtext.SynText(mrtext.SynTextConfig{CPUFactor: 4, Storage: 0.8}, "corpus.txt")
	if copiers <= 0 {
		job.SerialShuffle = true
	} else {
		job.ShuffleCopiers = copiers
	}
	return mrtext.Run(c, job)
}
