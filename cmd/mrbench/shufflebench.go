package main

import (
	"encoding/json"
	"fmt"
	"os"

	"mrtext"
	"mrtext/internal/trace/critpath"
)

// The shuffle regression harness: the same throttled SynText job under the
// serial shuffle and under copier pools of increasing fan-out. The cluster
// geometry is chosen so the pipeline has something to overlap — two full
// map waves on a throttled fabric — and the report pins both the
// wall-clock effect and the staging activity (early segments, spills,
// peak) for each fan-out. Every run is traced and fed through the
// critical-path analyzer, so each configuration also carries its blame
// attribution, and the fan-out configurations explain where their
// map-wall inflation over the serial baseline went.
//
// The scaling sweep (docs/SHUFFLE_SCALING.md) repeats the serial /
// copiers-1 / copiers-4 comparison at 64–256 simulated nodes under weak
// scaling: the corpus grows with the cluster (nodes/4 MiB) and the block
// size is derived so every cell runs two full map waves, so per-node work
// is constant and the curve isolates how the fetch plane behaves as
// fan-out grows. The assertion mode is the CI gate for the governor: at
// every swept node count, copier-steal coverage per early-staged segment
// at copiers-4 must not exceed the copiers-1 value (small slack for
// timer jitter) — fan-out may no longer buy contention per unit of
// overlap achieved.

// shuffleBenchRun is one configuration's measurement in BENCH_shuffle.json.
type shuffleBenchRun struct {
	Config        string  `json:"config"`
	Copiers       int     `json:"copiers"` // 0 means serial shuffle
	WallMS        float64 `json:"wall_ms"`
	MapWallMS     float64 `json:"map_wall_ms"`
	ReduceWallMS  float64 `json:"reduce_wall_ms"`
	EarlySegments int     `json:"early_segments"`
	StagedSpills  int     `json:"staged_spills"`
	StagingPeakB  int64   `json:"staging_peak_bytes"`
	FetchRetries  int     `json:"fetch_retries"`
	// ReduceSpeedup is serial reduce-wall / this config's reduce-wall;
	// 1.0 for the serial baseline itself.
	ReduceSpeedup float64 `json:"reduce_speedup_vs_serial"`
	// BatchFetches/BatchSegments count copier batch operations and the
	// segments they carried (ratio = batching factor); WireSavedB is the
	// raw-minus-wire byte saving from compressing segments for the fabric;
	// GovThrottles counts batches the governor parked first.
	BatchFetches  int   `json:"batch_fetches,omitempty"`
	BatchSegments int   `json:"batch_segments,omitempty"`
	WireSavedB    int64 `json:"wire_saved_bytes,omitempty"`
	GovThrottles  int   `json:"governor_throttles,omitempty"`
	// CopierStealMS and GovWaitMS are aggregate activity (all task spans,
	// not just the critical path): map-task time covered by copier
	// activity against the task's node, and copier time deliberately
	// parked by the governor. Raw steal coverage grows with *successful*
	// overlap (every early-staged segment is copy activity during the map
	// phase), so the scaling assertion gates on StealPerEarlySegMS — the
	// coverage each unit of overlap cost — which fan-out must shrink.
	CopierStealMS    float64 `json:"copier_steal_activity_ms"`
	GovWaitMS        float64 `json:"governor_wait_activity_ms"`
	StealPerEarlySeg float64 `json:"steal_per_early_segment_ms,omitempty"`
	// MapBlameMS and ReduceBlameMS split the phase walls of the reported
	// iteration by cause, from the critical-path analyzer.
	MapBlameMS    map[string]float64 `json:"map_blame_ms,omitempty"`
	ReduceBlameMS map[string]float64 `json:"reduce_blame_ms,omitempty"`
	// MapInflation attributes this configuration's map-wall excess over
	// the serial baseline to fan-out causes; nil for the baseline itself.
	MapInflation *mapInflation `json:"map_inflation_vs_serial,omitempty"`
}

// mapInflation explains a fan-out configuration's map-wall inflation over
// the serial baseline: per-cause blame deltas for the causes the copier
// fan-out can introduce (copier CPU steal, staging backpressure, fabric
// and retry waits, perturbed spill/sort timing, scheduling gaps — map
// compute itself is deliberately excluded), plus whatever the deltas do
// not cover.
type mapInflation struct {
	InflationMS      float64            `json:"inflation_ms"`
	AttributedMS     map[string]float64 `json:"attributed_ms"`
	ResidualMS       float64            `json:"residual_ms"`
	ResidualFraction float64            `json:"residual_fraction"`
}

// shuffleScalingCell is one node count of the 64–256 node scaling sweep:
// the serial baseline and two fan-outs at that cluster size, corpus sized
// for weak scaling (constant per-node work).
type shuffleScalingCell struct {
	Nodes    int               `json:"nodes"`
	CorpusMB int64             `json:"corpus_mb"`
	BlockKB  int64             `json:"block_kb"`
	Runs     []shuffleBenchRun `json:"runs"`
}

// shuffleBenchReport is the BENCH_shuffle.json schema.
type shuffleBenchReport struct {
	App      string            `json:"app"`
	CorpusMB int64             `json:"corpus_mb"`
	Nodes    int               `json:"nodes"`
	Iters    int               `json:"iters"`
	Runs     []shuffleBenchRun `json:"runs,omitempty"`
	// Scaling is the weak-scaling sweep over simulated node counts.
	Scaling []shuffleScalingCell `json:"scaling,omitempty"`
}

// fanOutCauses are the blame causes a copier fan-out can add to the map
// phase. Map compute is excluded on purpose: attributing inflation to
// "the maps got slower" would be restating the symptom.
var fanOutCauses = []critpath.Cause{
	critpath.CauseCopierSteal,
	critpath.CauseStagingBackpressure,
	critpath.CauseFabricWait,
	critpath.CauseFetchRetry,
	critpath.CauseSpillSort,
	critpath.CauseScheduler,
}

// blameMS renders one phase's non-zero causes as a name→milliseconds map.
func blameMS(p critpath.PhaseBlame) map[string]float64 {
	m := make(map[string]float64)
	for c := critpath.Cause(0); c < critpath.NumCauses; c++ {
		if p.Causes[c] > 0 {
			m[c.String()] = float64(p.Causes[c].Microseconds()) / 1e3
		}
	}
	return m
}

// attributeInflation explains cfg's map-wall inflation over the serial
// baseline as per-cause blame deltas. Deltas are clamped at zero (a cause
// that shrank does not offset one that grew) and the attributed total is
// capped at the inflation itself, so the residual fraction stays in [0,1].
func attributeInflation(serial, cfg shuffleBenchRun) *mapInflation {
	inf := &mapInflation{
		InflationMS:  cfg.MapWallMS - serial.MapWallMS,
		AttributedMS: make(map[string]float64),
	}
	var attributed float64
	for _, c := range fanOutCauses {
		d := cfg.MapBlameMS[c.String()] - serial.MapBlameMS[c.String()]
		if d > 0 {
			inf.AttributedMS[c.String()] = d
			attributed += d
		}
	}
	if inf.InflationMS > 0 {
		covered := attributed
		if covered > inf.InflationMS {
			covered = inf.InflationMS
		}
		inf.ResidualMS = inf.InflationMS - covered
		inf.ResidualFraction = inf.ResidualMS / inf.InflationMS
	}
	return inf
}

// shuffleBenchCfg names one fan-out configuration.
type shuffleBenchCfg struct {
	name    string
	copiers int
}

// stealSlackMS absorbs scheduler jitter in the scaling assertion: a
// fraction of a millisecond of steal coverage per early-staged segment
// is noise, not contention. (Measured margins are 3–4×, ~20–35 ms/seg.)
const stealSlackMS = 1.0

// runShuffleBench measures the serial shuffle against copier fan-outs on
// the classic 4-node cell (when base is true) and across the scaleNodes
// weak-scaling sweep, writing the combined report to out. Base
// configurations run iters times on a fresh cluster with the lowest-wall
// iteration reported; scaling cells run once each (nine throttled jobs at
// up to 256 nodes are already minutes of simulated I/O). With assert set,
// the sweep fails unless copier-steal per early-staged segment at
// copiers-4 stays at or below the copiers-1 value in every cell.
func runShuffleBench(out string, iters int, megabytes int64, scaleNodes []int, base, assert bool) error {
	if iters < 1 {
		iters = 1
	}
	rep := shuffleBenchReport{App: "syntext", CorpusMB: megabytes, Nodes: 4, Iters: iters}

	if base {
		cfgs := []shuffleBenchCfg{
			{"serial", 0},
			{"copiers-1", 1},
			{"copiers-2", 2},
			{"copiers-4", 4},
		}
		for _, bc := range cfgs {
			var best *mrtext.Result
			var bestReport *mrtext.TraceReport
			for it := 0; it < iters; it++ {
				res, tr, err := runShuffleConfig(4, megabytes<<20, 1<<20, bc.copiers)
				if err != nil {
					return fmt.Errorf("%s iter %d: %w", bc.name, it, err)
				}
				if best == nil || res.Wall < best.Wall {
					report, err := mrtext.AnalyzeTrace(tr)
					if err != nil {
						return fmt.Errorf("%s iter %d: analyzing trace: %w", bc.name, it, err)
					}
					best, bestReport = res, report
				}
			}
			rep.Runs = append(rep.Runs, benchRun(bc, best, bestReport))
		}
		finishRuns(rep.Runs)
		printRuns("base 4 nodes", rep.Runs)
	}

	for _, n := range scaleNodes {
		cell, err := runScalingCell(n)
		if err != nil {
			return fmt.Errorf("scaling %d nodes: %w", n, err)
		}
		rep.Scaling = append(rep.Scaling, cell)
		printRuns(fmt.Sprintf("scaling %d nodes (%d MiB)", cell.Nodes, cell.CorpusMB), cell.Runs)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if assert {
		if err := assertStealShrinks(rep); err != nil {
			return err
		}
		fmt.Println("ASSERT OK: copier-steal per early-staged segment at copiers-4 within the copiers-1 bound in every cell")
	}
	return nil
}

// runScalingCell measures one node count of the weak-scaling sweep:
// corpus nodes/4 MiB, block size derived for two full map waves, one run
// each of serial, copiers-1 and copiers-4.
func runScalingCell(nodes int) (shuffleScalingCell, error) {
	corpusMB := int64(nodes) / 4
	if corpusMB < 4 {
		corpusMB = 4
	}
	target := corpusMB << 20
	// Two waves: splits = 2 × (nodes × 2 map slots), so block = target /
	// (4 × nodes), floored at 64 KiB so tiny sweeps stay realistic.
	block := target / int64(4*nodes)
	if block < 64<<10 {
		block = 64 << 10
	}
	cell := shuffleScalingCell{Nodes: nodes, CorpusMB: corpusMB, BlockKB: block >> 10}
	cfgs := []shuffleBenchCfg{
		{"serial", 0},
		{"copiers-1", 1},
		{"copiers-4", 4},
	}
	for _, bc := range cfgs {
		res, tr, err := runShuffleConfig(nodes, target, block, bc.copiers)
		if err != nil {
			return cell, fmt.Errorf("%s: %w", bc.name, err)
		}
		report, err := mrtext.AnalyzeTrace(tr)
		if err != nil {
			return cell, fmt.Errorf("%s: analyzing trace: %w", bc.name, err)
		}
		cell.Runs = append(cell.Runs, benchRun(bc, res, report))
	}
	finishRuns(cell.Runs)
	return cell, nil
}

// benchRun builds one configuration's record from its result and report.
func benchRun(bc shuffleBenchCfg, res *mrtext.Result, report *mrtext.TraceReport) shuffleBenchRun {
	return shuffleBenchRun{
		Config:        bc.name,
		Copiers:       bc.copiers,
		WallMS:        float64(res.Wall.Microseconds()) / 1e3,
		MapWallMS:     float64(res.MapWall.Microseconds()) / 1e3,
		ReduceWallMS:  float64(res.ReduceWall.Microseconds()) / 1e3,
		EarlySegments: res.ShuffleEarlySegments,
		StagedSpills:  res.ShuffleStagedSpills,
		StagingPeakB:  res.ShuffleStagingPeak,
		FetchRetries:  res.ShuffleFetchRetries,
		BatchFetches:  res.ShuffleBatchFetches,
		BatchSegments: res.ShuffleBatchSegments,
		WireSavedB:    res.ShuffleWireSavedBytes,
		GovThrottles:  res.ShuffleGovThrottles,
		CopierStealMS: float64(report.Activity[critpath.CauseCopierSteal].Microseconds()) / 1e3,
		GovWaitMS:     float64(report.Activity[critpath.CauseGovernorWait].Microseconds()) / 1e3,
		MapBlameMS:    blameMS(report.Map),
		ReduceBlameMS: blameMS(report.Reduce),
	}
}

// finishRuns derives the cross-run fields — reduce speedup against the
// serial baseline (runs[0]) and the map-inflation attribution — in place.
func finishRuns(runs []shuffleBenchRun) {
	if len(runs) == 0 {
		return
	}
	serial := runs[0]
	for i := range runs {
		if runs[i].ReduceWallMS > 0 {
			runs[i].ReduceSpeedup = serial.ReduceWallMS / runs[i].ReduceWallMS
		}
		if runs[i].Copiers > 0 {
			runs[i].MapInflation = attributeInflation(serial, runs[i])
			if runs[i].EarlySegments > 0 {
				runs[i].StealPerEarlySeg = runs[i].CopierStealMS / float64(runs[i].EarlySegments)
			}
		}
	}
}

// printRuns renders one cell's runs for the console.
func printRuns(label string, runs []shuffleBenchRun) {
	fmt.Printf("-- %s --\n", label)
	for _, r := range runs {
		fmt.Printf("%-10s wall %8.1f ms (map %8.1f, shuffle+reduce %8.1f, %.2fx) early %3d spills %3d peak %8d B steal %6.1f ms (%.1f ms/seg)\n",
			r.Config, r.WallMS, r.MapWallMS, r.ReduceWallMS, r.ReduceSpeedup,
			r.EarlySegments, r.StagedSpills, r.StagingPeakB, r.CopierStealMS, r.StealPerEarlySeg)
		if r.Copiers > 0 {
			fmt.Printf("           %d segments in %d batches, %d B wire savings, %d governor throttles (%.1f ms parked)\n",
				r.BatchSegments, r.BatchFetches, r.WireSavedB, r.GovThrottles, r.GovWaitMS)
		}
		if r.MapInflation != nil {
			fmt.Printf("           map inflation %+.1f ms, residual %.1f ms (%.0f%% unattributed)\n",
				r.MapInflation.InflationMS, r.MapInflation.ResidualMS, 100*r.MapInflation.ResidualFraction)
		}
	}
}

// assertStealShrinks is the CI gate over the governed fetch plane: in
// every cell that carries both fan-outs, the copier-steal coverage per
// early-staged segment at copiers-4 must not exceed the copiers-1 value
// beyond the jitter slack. Raw coverage is the wrong gate — it grows
// with the overlap the pipeline successfully achieves — but coverage per
// unit of overlap is exactly the contention cost fan-out must cut. A
// fan-out with zero early segments is compared on raw steal (both are
// ~0: no overlap means no copy activity inside map windows).
func assertStealShrinks(rep shuffleBenchReport) error {
	perSeg := func(r *shuffleBenchRun) float64 {
		if r.EarlySegments > 0 {
			return r.CopierStealMS / float64(r.EarlySegments)
		}
		return r.CopierStealMS
	}
	check := func(label string, runs []shuffleBenchRun) error {
		var c1, c4 *shuffleBenchRun
		for i := range runs {
			switch runs[i].Copiers {
			case 1:
				c1 = &runs[i]
			case 4:
				c4 = &runs[i]
			}
		}
		if c1 == nil || c4 == nil {
			return nil
		}
		if perSeg(c4) > perSeg(c1)+stealSlackMS {
			return fmt.Errorf("shufflebench: %s: copier-steal per early-staged segment grew with fan-out: copiers-4 %.2f ms/seg > copiers-1 %.2f ms/seg (+%.1f slack)",
				label, perSeg(c4), perSeg(c1), stealSlackMS)
		}
		return nil
	}
	if err := check("base", rep.Runs); err != nil {
		return err
	}
	for _, cell := range rep.Scaling {
		if err := check(fmt.Sprintf("%d nodes", cell.Nodes), cell.Runs); err != nil {
			return err
		}
	}
	return nil
}

// runShuffleConfig executes one traced, throttled SynText job with the
// given copier fan-out (0 = serial shuffle) on a fresh cluster of the
// given geometry.
func runShuffleConfig(nodes int, target, blockSize int64, copiers int) (*mrtext.Result, *mrtext.Tracer, error) {
	cfg := mrtext.LocalSmallCluster()
	cfg.Nodes = nodes
	cfg.BlockSize = blockSize
	c, err := mrtext.NewCluster(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := mrtext.GenerateCorpus(c, "corpus.txt", mrtext.DefaultCorpus(), target); err != nil {
		return nil, nil, err
	}
	job := mrtext.SynText(mrtext.SynTextConfig{CPUFactor: 4, Storage: 0.8}, "corpus.txt")
	if copiers <= 0 {
		job.SerialShuffle = true
	} else {
		job.ShuffleCopiers = copiers
	}
	tr := mrtext.NewTracer(traceCapacity(nodes, target, blockSize))
	job.Trace = tr
	res, err := mrtext.Run(c, job)
	if err != nil {
		return nil, nil, err
	}
	if d := tr.Dropped(); d > 0 {
		return nil, nil, fmt.Errorf("tracer ring dropped %d events at %d nodes; activity attribution would be incomplete — raise traceCapacity", d, nodes)
	}
	return res, tr, nil
}

// traceCapacity sizes a cell's tracer so the ring never wraps: a wrapped
// ring evicts the earliest events — the map-task spans — and the activity
// view then attributes zero copier-steal, silently passing the assert
// gate. Segments dominate the event volume (splits × partitions, each
// with a copy span plus a handful of wait/spill/fetch spans), so budget
// generously per segment and keep the default as the floor.
func traceCapacity(nodes int, target, blockSize int64) int {
	splits := (target + blockSize - 1) / blockSize
	partitions := int64(2 * nodes) // LocalSmall: one reducer per reduce slot
	events := 12*splits*partitions + 64*splits + 1<<18
	return int(events)
}
