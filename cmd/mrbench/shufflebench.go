package main

import (
	"encoding/json"
	"fmt"
	"os"

	"mrtext"
	"mrtext/internal/trace/critpath"
)

// The shuffle regression harness: the same throttled SynText job under the
// serial shuffle and under copier pools of increasing fan-out. The cluster
// geometry is chosen so the pipeline has something to overlap — two full
// map waves (16 one-MiB splits over 8 map slots) on a throttled fabric —
// and the report pins both the wall-clock effect and the staging activity
// (early segments, spills, peak) for each fan-out. Every run is traced and
// fed through the critical-path analyzer, so each configuration also
// carries its blame attribution, and the fan-out configurations explain
// where their map-wall inflation over the serial baseline went.

// shuffleBenchRun is one configuration's measurement in BENCH_shuffle.json.
type shuffleBenchRun struct {
	Config        string  `json:"config"`
	Copiers       int     `json:"copiers"` // 0 means serial shuffle
	WallMS        float64 `json:"wall_ms"`
	MapWallMS     float64 `json:"map_wall_ms"`
	ReduceWallMS  float64 `json:"reduce_wall_ms"`
	EarlySegments int     `json:"early_segments"`
	StagedSpills  int     `json:"staged_spills"`
	StagingPeakB  int64   `json:"staging_peak_bytes"`
	FetchRetries  int     `json:"fetch_retries"`
	// ReduceSpeedup is serial reduce-wall / this config's reduce-wall;
	// 1.0 for the serial baseline itself.
	ReduceSpeedup float64 `json:"reduce_speedup_vs_serial"`
	// MapBlameMS and ReduceBlameMS split the phase walls of the reported
	// iteration by cause, from the critical-path analyzer.
	MapBlameMS    map[string]float64 `json:"map_blame_ms,omitempty"`
	ReduceBlameMS map[string]float64 `json:"reduce_blame_ms,omitempty"`
	// MapInflation attributes this configuration's map-wall excess over
	// the serial baseline to fan-out causes; nil for the baseline itself.
	MapInflation *mapInflation `json:"map_inflation_vs_serial,omitempty"`
}

// mapInflation explains a fan-out configuration's map-wall inflation over
// the serial baseline: per-cause blame deltas for the causes the copier
// fan-out can introduce (copier CPU steal, staging backpressure, fabric
// and retry waits, perturbed spill/sort timing, scheduling gaps — map
// compute itself is deliberately excluded), plus whatever the deltas do
// not cover.
type mapInflation struct {
	InflationMS      float64            `json:"inflation_ms"`
	AttributedMS     map[string]float64 `json:"attributed_ms"`
	ResidualMS       float64            `json:"residual_ms"`
	ResidualFraction float64            `json:"residual_fraction"`
}

// shuffleBenchReport is the BENCH_shuffle.json schema.
type shuffleBenchReport struct {
	App      string            `json:"app"`
	CorpusMB int64             `json:"corpus_mb"`
	Nodes    int               `json:"nodes"`
	Iters    int               `json:"iters"`
	Runs     []shuffleBenchRun `json:"runs"`
}

// fanOutCauses are the blame causes a copier fan-out can add to the map
// phase. Map compute is excluded on purpose: attributing inflation to
// "the maps got slower" would be restating the symptom.
var fanOutCauses = []critpath.Cause{
	critpath.CauseCopierSteal,
	critpath.CauseStagingBackpressure,
	critpath.CauseFabricWait,
	critpath.CauseFetchRetry,
	critpath.CauseSpillSort,
	critpath.CauseScheduler,
}

// blameMS renders one phase's non-zero causes as a name→milliseconds map.
func blameMS(p critpath.PhaseBlame) map[string]float64 {
	m := make(map[string]float64)
	for c := critpath.Cause(0); c < critpath.NumCauses; c++ {
		if p.Causes[c] > 0 {
			m[c.String()] = float64(p.Causes[c].Microseconds()) / 1e3
		}
	}
	return m
}

// attributeInflation explains cfg's map-wall inflation over the serial
// baseline as per-cause blame deltas. Deltas are clamped at zero (a cause
// that shrank does not offset one that grew) and the attributed total is
// capped at the inflation itself, so the residual fraction stays in [0,1].
func attributeInflation(serial, cfg shuffleBenchRun) *mapInflation {
	inf := &mapInflation{
		InflationMS:  cfg.MapWallMS - serial.MapWallMS,
		AttributedMS: make(map[string]float64),
	}
	var attributed float64
	for _, c := range fanOutCauses {
		d := cfg.MapBlameMS[c.String()] - serial.MapBlameMS[c.String()]
		if d > 0 {
			inf.AttributedMS[c.String()] = d
			attributed += d
		}
	}
	if inf.InflationMS > 0 {
		covered := attributed
		if covered > inf.InflationMS {
			covered = inf.InflationMS
		}
		inf.ResidualMS = inf.InflationMS - covered
		inf.ResidualFraction = inf.ResidualMS / inf.InflationMS
	}
	return inf
}

// runShuffleBench measures the serial shuffle against copier fan-outs 1, 2
// and 4 and writes the report to out. Each configuration runs iters times
// on a fresh cluster; the iteration with the lowest wall time is reported,
// and its trace is the one the blame attribution analyzes.
func runShuffleBench(out string, iters int, megabytes int64) error {
	if iters < 1 {
		iters = 1
	}
	const nodes = 4
	target := megabytes << 20

	type benchCfg struct {
		name    string
		copiers int
	}
	cfgs := []benchCfg{
		{"serial", 0},
		{"copiers-1", 1},
		{"copiers-2", 2},
		{"copiers-4", 4},
	}

	rep := shuffleBenchReport{App: "syntext", CorpusMB: megabytes, Nodes: nodes, Iters: iters}
	for _, bc := range cfgs {
		var best *mrtext.Result
		var bestReport *mrtext.TraceReport
		for it := 0; it < iters; it++ {
			res, tr, err := runShuffleConfig(nodes, target, bc.copiers)
			if err != nil {
				return fmt.Errorf("%s iter %d: %w", bc.name, it, err)
			}
			if best == nil || res.Wall < best.Wall {
				report, err := mrtext.AnalyzeTrace(tr)
				if err != nil {
					return fmt.Errorf("%s iter %d: analyzing trace: %w", bc.name, it, err)
				}
				best, bestReport = res, report
			}
		}
		rep.Runs = append(rep.Runs, shuffleBenchRun{
			Config:        bc.name,
			Copiers:       bc.copiers,
			WallMS:        float64(best.Wall.Microseconds()) / 1e3,
			MapWallMS:     float64(best.MapWall.Microseconds()) / 1e3,
			ReduceWallMS:  float64(best.ReduceWall.Microseconds()) / 1e3,
			EarlySegments: best.ShuffleEarlySegments,
			StagedSpills:  best.ShuffleStagedSpills,
			StagingPeakB:  best.ShuffleStagingPeak,
			FetchRetries:  best.ShuffleFetchRetries,
			MapBlameMS:    blameMS(bestReport.Map),
			ReduceBlameMS: blameMS(bestReport.Reduce),
		})
	}
	serial := rep.Runs[0]
	for i := range rep.Runs {
		if rep.Runs[i].ReduceWallMS > 0 {
			rep.Runs[i].ReduceSpeedup = serial.ReduceWallMS / rep.Runs[i].ReduceWallMS
		}
		if rep.Runs[i].Copiers > 0 {
			rep.Runs[i].MapInflation = attributeInflation(serial, rep.Runs[i])
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	for _, r := range rep.Runs {
		fmt.Printf("%-10s wall %8.1f ms (map %8.1f, shuffle+reduce %8.1f, %.2fx) early %3d spills %3d peak %8d B\n",
			r.Config, r.WallMS, r.MapWallMS, r.ReduceWallMS, r.ReduceSpeedup,
			r.EarlySegments, r.StagedSpills, r.StagingPeakB)
		if r.MapInflation != nil {
			fmt.Printf("           map inflation %+.1f ms, residual %.1f ms (%.0f%% unattributed)\n",
				r.MapInflation.InflationMS, r.MapInflation.ResidualMS, 100*r.MapInflation.ResidualFraction)
		}
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runShuffleConfig executes one traced, throttled SynText job with the
// given copier fan-out (0 = serial shuffle) on a fresh cluster.
func runShuffleConfig(nodes int, target int64, copiers int) (*mrtext.Result, *mrtext.Tracer, error) {
	cfg := mrtext.LocalSmallCluster()
	cfg.Nodes = nodes
	cfg.BlockSize = 1 << 20 // two full map waves at 16 MiB over 8 slots
	c, err := mrtext.NewCluster(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := mrtext.GenerateCorpus(c, "corpus.txt", mrtext.DefaultCorpus(), target); err != nil {
		return nil, nil, err
	}
	job := mrtext.SynText(mrtext.SynTextConfig{CPUFactor: 4, Storage: 0.8}, "corpus.txt")
	if copiers <= 0 {
		job.SerialShuffle = true
	} else {
		job.ShuffleCopiers = copiers
	}
	tr := mrtext.NewTracer(0)
	job.Trace = tr
	res, err := mrtext.Run(c, job)
	if err != nil {
		return nil, nil, err
	}
	return res, tr, nil
}
