// Command mrrun runs one benchmark application on the simulated cluster
// and prints its timing, cost breakdown and counters.
//
// Usage:
//
//	mrrun [flags] <app>
//
// where <app> is one of: wordcount, invertedindex, wordpostag,
// accesslogsum, accesslogjoin, pagerank, syntext.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"mrtext"
	"mrtext/internal/mrserve"
	"mrtext/internal/pprofserve"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 6, "cluster nodes")
		freq      = flag.Bool("freqbuf", false, "enable frequency-buffering")
		spill     = flag.Bool("spillmatcher", false, "enable the spill-matcher")
		megabytes = flag.Int64("mb", 16, "input size in MiB")
		bufKB     = flag.Int64("buffer-kb", 2048, "map-side spill buffer size in KiB")
		reducers  = flag.Int("reducers", 0, "reduce tasks (0 = cluster slots)")
		posIter   = flag.Int("pos-iterations", 8, "WordPOSTag tagger iterations")
		cpu       = flag.Int("syntext-cpu", 4, "SynText CPU factor")
		storage   = flag.Float64("syntext-storage", 0.5, "SynText storage intensity [0,1]")
		fast      = flag.Bool("fast", false, "disable disk/network throttling")
		verbose   = flag.Bool("v", false, "print per-counter details")
		traceOut  = flag.String("trace", "", "write a Chrome/Perfetto trace of the job to this file")
		gantt     = flag.Bool("gantt", false, "print a terminal Gantt chart of the job timeline")
		traceRep  = flag.Bool("trace-report", false, "print the critical-path blame report and a Gantt chart with the critical path highlighted")
		metricsJS = flag.String("metrics-json", "", "write the final metrics snapshot (counters + histogram summaries) as JSON to this file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and live expvar metrics on this address (e.g. localhost:6060)")
		chaosSeed = flag.Int64("chaos-seed", 0, "fault-injection seed (schedule is deterministic per seed)")
		chaosFail = flag.Float64("chaos-fail-rate", 0, "per-attempt fault probability in [0,1] (0 disables injection)")
		chaosKill = flag.Int("chaos-kill-node", -1, "kill this node mid-job (-1: no kill)")
		speculate = flag.Bool("speculation", false, "launch speculative backup attempts for straggler tasks")
		copiers   = flag.Int("shuffle-copiers", 4, "concurrent shuffle copiers per reduce partition (0 = serial shuffle at reduce start)")
		shufBuf   = flag.Int64("shuffle-buffer", 32, "staging buffer budget per job in MiB; staged segments over budget spill to disk")
		batchB    = flag.Int64("shuffle-batch-bytes", 1<<20, "copier batch cap in bytes: a copier drains a source node's queued segments in one fabric transfer up to this size")
		shufComp  = flag.Bool("shuffle-compress", true, "compress shuffle segments on the wire (prefix-compressed run format, staged compressed until reduce merge)")
		governor  = flag.Bool("shuffle-governor", true, "throttle copiers while the map phase is fabric-hot, ramping up as maps drain")
		serialIn  = flag.Bool("serial-ingest", false, "read splits with the bufio line scanner instead of the block-batched fast path")
		ingChunk  = flag.Int64("ingest-chunk-kb", 0, "batched split reader arena chunk in KiB (0 = default 1024)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mrrun [flags] <app>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	app := strings.ToLower(flag.Arg(0))

	if *pprofAddr != "" {
		pprofserve.Serve(*pprofAddr, func(err error) {
			fmt.Fprintln(os.Stderr, "mrrun: pprof:", err)
		})
	}

	cfg := mrtext.LocalSmallCluster()
	cfg.Nodes = *nodes
	if *fast {
		fcfg := mrtext.FastCluster(*nodes)
		cfg = fcfg
	}
	chaosOn := *chaosFail > 0 || *chaosKill >= 0
	if chaosOn {
		cfg.Chaos = &mrtext.ChaosConfig{
			Seed:     *chaosSeed,
			FailRate: *chaosFail,
			KillNode: *chaosKill,
		}
	}
	c, err := mrtext.NewCluster(cfg)
	if err != nil {
		die(err)
	}

	// The CLI builds its job through the same Spec path as an mrserve
	// submission, so flags and the HTTP API share one source of truth for
	// validation, dataset generation, and knob application.
	spec := mrserve.Spec{
		App:               app,
		InputMB:           *megabytes,
		Reducers:          *reducers,
		SpillBufferKB:     *bufKB,
		FreqBuf:           *freq,
		SpillMatcher:      *spill,
		Speculation:       *speculate,
		PosIterations:     *posIter,
		SynTextCPU:        *cpu,
		SynTextStorage:    *storage,
		ShuffleCopiers:    *copiers,
		SerialShuffle:     *copiers <= 0,
		ShuffleBufferMB:   *shufBuf,
		ShuffleBatchBytes: *batchB,
		ShuffleRawWire:    !*shufComp,
		ShuffleUngoverned: !*governor,
		SerialIngest:      *serialIn,
		IngestChunkKB:     *ingChunk,
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		die(err)
	}
	if err := mrserve.EnsureDatasets(c, mrserve.NewDatasetCache(), &spec); err != nil {
		die(err)
	}
	job, err := spec.BuildJob(c.Nodes())
	if err != nil {
		die(err)
	}

	var tr *mrtext.Tracer
	if *traceOut != "" || *gantt || *traceRep {
		tr = mrtext.NewTracer(0)
		job.Trace = tr
	}

	res, err := mrtext.Run(c, job)
	if err != nil {
		die(err)
	}
	fmt.Printf("%s: wall %s (map %s, shuffle+reduce %s), %d map + %d reduce tasks\n",
		res.Job, res.Wall.Round(1e6), res.MapWall.Round(1e6), res.ReduceWall.Round(1e6),
		res.MapTasks, res.ReduceTasks)
	fmt.Printf("placement: %d data-local, %d stolen map tasks\n",
		res.LocalMapTasks, res.StolenMapTasks)
	if !job.SerialShuffle {
		fmt.Printf("shuffle: %d segments staged early, %d staged spills, staging peak %d B, %d fetch retries\n",
			res.ShuffleEarlySegments, res.ShuffleStagedSpills, res.ShuffleStagingPeak, res.ShuffleFetchRetries)
		fmt.Printf("shuffle fetch plane: %d segments in %d batched fetches, %d B saved on the wire, %d governor throttles\n",
			res.ShuffleBatchSegments, res.ShuffleBatchFetches, res.ShuffleWireSavedBytes, res.ShuffleGovThrottles)
	}
	if chaosOn || *speculate {
		fmt.Printf("fault tolerance: %d/%d attempts failed, %d retries, %d speculative (%d won), %d recovered, dead nodes %v\n",
			res.FailedAttempts, res.MapAttempts+res.ReduceAttempts, res.TaskRetries,
			res.SpeculativeTasks, res.SpeculativeWins, res.RecoveredMapTasks, res.DeadNodes)
	}
	fmt.Printf("map idle %.1f%%, support idle %.1f%%\n",
		100*res.MapIdleFraction(), 100*res.SupportIdleFraction())
	fmt.Print(res.Agg.Breakdown())
	if *verbose {
		for _, name := range res.Agg.CounterNames() {
			fmt.Printf("%-24s %d\n", name, res.Agg.Counters[name])
		}
	}
	if *traceRep {
		report, err := mrtext.AnalyzeTrace(tr)
		if err != nil {
			die(err)
		}
		if err := report.WriteText(os.Stdout); err != nil {
			die(err)
		}
		if err := mrtext.WriteGanttMarked(os.Stdout, tr, report, 100); err != nil {
			die(err)
		}
	} else if *gantt {
		if err := mrtext.WriteGantt(os.Stdout, tr, 100); err != nil {
			die(err)
		}
	}
	if *metricsJS != "" {
		if err := writeMetricsFile(*metricsJS, res); err != nil {
			die(err)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *metricsJS)
	}
	if *traceOut != "" {
		if err := writeTraceFile(*traceOut, tr); err != nil {
			die(err)
		}
		if d := tr.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "mrrun: warning: trace ring overflowed, %d events dropped\n", d)
		}
		fmt.Printf("wrote trace to %s (load it at ui.perfetto.dev)\n", *traceOut)
	}
}

func writeMetricsFile(path string, res *mrtext.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mrtext.WriteMetricsDump(f, res.Agg); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

func writeTraceFile(path string, tr *mrtext.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := mrtext.WriteTrace(f, tr); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "mrrun:", err)
	os.Exit(1)
}
