// Command mrlint is the repository's static-analysis gate: it runs the
// stock `go vet` passes plus the project-specific analyzers of
// internal/analysis over the module and exits non-zero on any finding.
// CI runs `go run ./cmd/mrlint ./...` and fails the build on output.
//
// Usage:
//
//	mrlint [-vet=false] [-list] [-json] [-sarif file] [packages...]
//
// Packages default to ./... resolved against the current directory, and
// are loaded in dependency order with one shared fact store, so the
// facts-based analyzers (alloccheck, atomiccheck) see their callees'
// summaries before analyzing the callers — packages pulled in only as
// dependencies of the named patterns are analyzed for their facts but not
// reported on. The custom analyzers check non-test library and binary
// sources; test files are vet's department.
//
// -list prints the analyzer suite and exits. -json replaces the plain
// findings on stdout with a JSON array ({file, line, col, analyzer,
// message}); -sarif writes the same findings as a SARIF 2.1.0 log to the
// named file (in addition to stdout output) so CI can archive and ingest
// them. Load and type-check problems never vanish into a partial run:
// they are aggregated across all packages and printed with file positions
// to stderr before any finding.
//
// A finding can be suppressed at its site with
//
//	//mrlint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory: a directive without one suppresses nothing and is itself a
// finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"mrtext/internal/analysis"
	"mrtext/internal/analysis/alloccheck"
	"mrtext/internal/analysis/atomiccheck"
	"mrtext/internal/analysis/attemptpath"
	"mrtext/internal/analysis/closecheck"
	"mrtext/internal/analysis/doccheck"
	"mrtext/internal/analysis/droppederr"
	"mrtext/internal/analysis/globalstate"
	"mrtext/internal/analysis/goroleak"
	"mrtext/internal/analysis/load"
	"mrtext/internal/analysis/lockcheck"
	"mrtext/internal/analysis/sarif"
	"mrtext/internal/analysis/spancheck"
)

// analyzers is the mrlint suite, in report order.
var analyzers = []*analysis.Analyzer{
	droppederr.Analyzer,
	lockcheck.Analyzer,
	goroleak.Analyzer,
	closecheck.Analyzer,
	spancheck.Analyzer,
	attemptpath.Analyzer,
	doccheck.Analyzer,
	globalstate.Analyzer,
	alloccheck.Analyzer,
	atomiccheck.Analyzer,
}

// docCheckedPkgs are the packages whose exported API doccheck audits: the
// runtime's documented public surface. Other packages are exempt so
// scratch code and experiment plumbing don't demand godoc polish.
var docCheckedPkgs = map[string]bool{
	"mrtext/internal/mr":         true,
	"mrtext/internal/kvio":       true,
	"mrtext/internal/trace":      true,
	"mrtext/internal/chaos":      true,
	"mrtext/internal/spillbuf":   true,
	"mrtext/internal/metrics":    true,
	"mrtext/internal/pprofserve": true,
	"mrtext/internal/mrserve":    true,
}

// globalStatePkgs are the packages globalstate audits for package-level
// mutable state: the runtime, whose concurrency contract (many jobs, one
// cluster, no state bleed) a shared package slot silently violates. New
// globals there must move onto the Job or carry a reasoned suppression.
var globalStatePkgs = map[string]bool{
	"mrtext/internal/mr": true,
}

// finding is one reportable diagnostic with its position resolved.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	vet := flag.Bool("vet", true, "also run the stock `go vet` passes")
	list := flag.Bool("list", false, "list the analyzer suite and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of plain lines")
	sarifOut := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this `file`")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mrlint [-vet=false] [-list] [-json] [-sarif file] [packages...]\n\nanalyzers:\n")
		listAnalyzers(os.Stderr)
	}
	flag.Parse()
	if *list {
		listAnalyzers(os.Stdout)
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "mrlint: go vet failed\n")
			failed = true
		}
	}

	findings, loadBroken := lint(patterns)
	if loadBroken {
		failed = true
	}
	if len(findings) > 0 {
		failed = true
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "mrlint: encoding findings: %v\n", err)
			failed = true
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if *sarifOut != "" {
		if err := writeSARIF(*sarifOut, findings); err != nil {
			fmt.Fprintf(os.Stderr, "mrlint: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// listAnalyzers prints the suite, one analyzer per line.
func listAnalyzers(w *os.File) {
	for _, a := range analyzers {
		//mrlint:ignore droppederr best-effort terminal output, w is always stdout or stderr
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
}

// lint loads the packages in dependency order and applies every analyzer
// with one shared fact store. It returns the unsuppressed findings of the
// listed (pattern-matched) packages, and whether load or analyzer errors
// should fail the run independently of findings.
func lint(patterns []string) ([]finding, bool) {
	pkgs, fset, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrlint: %v\n", err)
		return nil, true
	}

	// Aggregate load and type-check problems across all packages first:
	// a broken package three directories away otherwise surfaces as a
	// mystery miss of cross-package facts.
	broken := false
	for _, pkg := range pkgs {
		for _, lerr := range pkg.LoadErrors {
			fmt.Fprintf(os.Stderr, "mrlint: %s: %v\n", pkg.PkgPath, lerr)
			broken = true
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "mrlint: %s: type error (analyzing anyway): %v\n", pkg.PkgPath, terr)
		}
	}

	facts := analysis.NewFacts()
	var findings []finding
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue // load errors already reported above
		}
		supp := analysis.NewSuppressions(fset, pkg.Files)
		var diags []analysis.Diagnostic
		for _, a := range analyzers {
			if a == doccheck.Analyzer && !docCheckedPkgs[pkg.PkgPath] {
				continue
			}
			if a == globalstate.Analyzer && !globalStatePkgs[pkg.PkgPath] {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
				Facts:     facts,
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "mrlint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				broken = true
			}
		}
		if !pkg.Listed {
			continue // analyzed for facts only
		}
		diags = append(diags, supp.Malformed()...)
		sort.Slice(diags, func(i, j int) bool {
			if diags[i].Pos != diags[j].Pos {
				return diags[i].Pos < diags[j].Pos
			}
			return diags[i].Category < diags[j].Category
		})
		for _, d := range diags {
			if supp.Suppressed(fset, d) {
				continue
			}
			findings = append(findings, toFinding(fset, d))
		}
	}
	return findings, broken
}

// toFinding resolves a diagnostic's position, preferring paths relative to
// the working directory so output and SARIF artifacts are portable.
func toFinding(fset *token.FileSet, d analysis.Diagnostic) finding {
	pos := fset.Position(d.Pos)
	file := pos.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			file = rel
		}
	}
	return finding{File: file, Line: pos.Line, Col: pos.Column, Analyzer: d.Category, Message: d.Message}
}

// writeSARIF renders findings as a SARIF 2.1.0 log at path.
func writeSARIF(path string, findings []finding) error {
	rules := make([]sarif.Rule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarif.Rule{ID: a.Name, ShortDescription: sarif.Message{Text: a.Doc}})
	}
	// Malformed suppression directives are reported under the driver's own
	// name; give them a rule too so every result has one.
	rules = append(rules, sarif.Rule{ID: "mrlint", ShortDescription: sarif.Message{Text: "suppression directive hygiene"}})

	results := make([]sarif.Result, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarif.NewResult(f.Analyzer, f.Message, filepath.ToSlash(f.File), f.Line, f.Col))
	}
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing SARIF: %v", err)
	}
	werr := sarif.NewLog("mrlint", rules, results).Write(out)
	if cerr := out.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("writing SARIF: %v", werr)
	}
	return nil
}
