// Command mrlint is the repository's static-analysis gate: it runs the
// stock `go vet` passes plus the project-specific analyzers of
// internal/analysis over the module and exits non-zero on any finding.
// CI runs `go run ./cmd/mrlint ./...` and fails the build on output.
//
// Usage:
//
//	mrlint [-vet=false] [packages...]
//
// Packages default to ./... resolved against the current directory. The
// custom analyzers check non-test library and binary sources; test files
// are vet's department. A finding can be suppressed at its site with
//
//	//mrlint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"

	"mrtext/internal/analysis"
	"mrtext/internal/analysis/attemptpath"
	"mrtext/internal/analysis/closecheck"
	"mrtext/internal/analysis/doccheck"
	"mrtext/internal/analysis/droppederr"
	"mrtext/internal/analysis/goroleak"
	"mrtext/internal/analysis/load"
	"mrtext/internal/analysis/lockcheck"
	"mrtext/internal/analysis/spancheck"
)

// analyzers is the mrlint suite, in report order.
var analyzers = []*analysis.Analyzer{
	droppederr.Analyzer,
	lockcheck.Analyzer,
	goroleak.Analyzer,
	closecheck.Analyzer,
	spancheck.Analyzer,
	attemptpath.Analyzer,
	doccheck.Analyzer,
}

// docCheckedPkgs are the packages whose exported API doccheck audits: the
// runtime's documented public surface. Other packages are exempt so
// scratch code and experiment plumbing don't demand godoc polish.
var docCheckedPkgs = map[string]bool{
	"mrtext/internal/mr":   true,
	"mrtext/internal/kvio": true,
}

func main() {
	vet := flag.Bool("vet", true, "also run the stock `go vet` passes")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mrlint [-vet=false] [packages...]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "mrlint: go vet failed\n")
			failed = true
		}
	}

	if lint(patterns) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// lint loads the packages and applies every analyzer, printing findings.
// It reports whether anything was found.
func lint(patterns []string) bool {
	pkgs, fset, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrlint: %v\n", err)
		return true
	}

	found := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "mrlint: %s: type error (analyzing anyway): %v\n", pkg.PkgPath, terr)
		}
		supp := analysis.NewSuppressions(fset, pkg.Files)
		var diags []analysis.Diagnostic
		for _, a := range analyzers {
			if a == doccheck.Analyzer && !docCheckedPkgs[pkg.PkgPath] {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "mrlint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				found = true
			}
		}
		sort.Slice(diags, func(i, j int) bool {
			if diags[i].Pos != diags[j].Pos {
				return diags[i].Pos < diags[j].Pos
			}
			return diags[i].Category < diags[j].Category
		})
		for _, d := range diags {
			if supp.Suppressed(fset, d) {
				continue
			}
			found = true
			fmt.Printf("%s: [%s] %s\n", fset.Position(d.Pos), d.Category, d.Message)
		}
	}
	return found
}
