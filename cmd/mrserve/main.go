// Command mrserve runs the long-lived multi-tenant job service: one
// simulated cluster constructed at startup, then an HTTP JSON API for
// submitting, watching, and canceling MapReduce jobs against it, with
// admission control and deficit-round-robin fair scheduling across
// tenants.
//
// Usage:
//
//	mrserve [flags]
//
// Quickstart:
//
//	mrserve -addr localhost:8080 &
//	curl -s -X POST localhost:8080/jobs \
//	  -d '{"tenant":"alice","spec":{"app":"wordcount","input_mb":16}}'
//	curl -s localhost:8080/jobs/j-000001
//	curl -s localhost:8080/tenants
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mrtext/internal/cluster"
	"mrtext/internal/mrserve"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8080", "HTTP listen address")
		nodes       = flag.Int("nodes", 6, "cluster nodes")
		fast        = flag.Bool("fast", false, "disable disk/network throttling")
		workers     = flag.Int("workers", 2, "jobs running concurrently on the cluster")
		queueDepth  = flag.Int("queue-depth", 16, "max queued jobs before submissions get 429")
		admissionMB = flag.Int64("admission-mb", 1024, "max total estimated input MiB queued before submissions get 429")
		quantumMB   = flag.Int64("quantum-mb", 4, "DRR credit per round per unit tenant weight, in MiB")
		weights     = flag.String("weights", "", "per-tenant DRR weights as tenant=weight[,tenant=weight...] (unlisted tenants weigh 1)")
		traceCap    = flag.Int("trace-capacity", 1<<14, "per-job tracer capacity in events")
	)
	flag.Parse()

	tw, err := parseWeights(*weights)
	if err != nil {
		die(err)
	}

	cfg := cluster.LocalSmall()
	cfg.Nodes = *nodes
	if *fast {
		cfg = cluster.Fast(*nodes)
	}
	c, err := cluster.New(cfg)
	if err != nil {
		die(err)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	s, err := mrserve.New(mrserve.Config{
		Cluster:        c,
		QueueDepth:     *queueDepth,
		AdmissionBytes: *admissionMB << 20,
		Quantum:        *quantumMB << 20,
		Workers:        *workers,
		TenantWeights:  tw,
		TraceCapacity:  *traceCap,
		Log:            logger,
	})
	if err != nil {
		die(err)
	}
	s.Start()

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Println("mrserve: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		//mrlint:ignore droppederr shutdown is best-effort; the process exits either way
		_ = srv.Shutdown(shCtx)
		s.Close()
	}()

	logger.Printf("mrserve: %d-node cluster up, serving on http://%s", *nodes, *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		die(err)
	}
}

// parseWeights parses "alice=3,bob=1" into the tenant-weight map.
func parseWeights(s string) (map[string]int64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int64)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad -weights entry %q (want tenant=weight)", pair)
		}
		w, err := strconv.ParseInt(val, 10, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight in -weights entry %q", pair)
		}
		out[name] = w
	}
	return out, nil
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "mrserve:", err)
	os.Exit(1)
}
