// Command datagen writes the three synthetic dataset families to local
// files, for inspection or for feeding external tools:
//
//	datagen -kind corpus -out corpus.txt -mb 64
//	datagen -kind visits -out visits.log -mb 128
//	datagen -kind rankings -out rankings.tbl
//	datagen -kind graph -out crawl.tsv -pages 100000
//
// -scale multiplies -mb and -pages, for growing the standard datasets to
// benchmark size without recomputing flag values (e.g. -scale 100 for the
// ingest benchmark corpus).
package main

import (
	"flag"
	"fmt"
	"os"

	"mrtext/internal/textgen"
)

func main() {
	var (
		kind  = flag.String("kind", "corpus", "dataset: corpus | visits | rankings | graph")
		out   = flag.String("out", "", "output file (default stdout)")
		mb    = flag.Int64("mb", 16, "target size in MiB (corpus, visits)")
		vocab = flag.Int64("vocab", 200_000, "corpus vocabulary size")
		urls  = flag.Int64("urls", 60_000, "distinct URLs (visits, rankings)")
		pages = flag.Int64("pages", 100_000, "graph pages")
		alpha = flag.Float64("alpha", 0, "Zipf exponent override (0 = dataset default)")
		seed  = flag.Int64("seed", 1, "generator seed")
		mult  = flag.Float64("scale", 1, "size multiplier applied to -mb and -pages (e.g. 100 for a 100x bench corpus)")
	)
	flag.Parse()
	if *mult <= 0 {
		die(fmt.Errorf("-scale must be positive, got %g", *mult))
	}
	*mb = int64(float64(*mb) * *mult)
	*pages = int64(float64(*pages) * *mult)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		w = f
	}

	pick := func(def float64) float64 {
		if *alpha > 0 {
			return *alpha
		}
		return def
	}

	var n int64
	var err error
	switch *kind {
	case "corpus":
		n, err = textgen.Corpus(w, textgen.CorpusConfig{
			Vocabulary: *vocab, Alpha: pick(1.0), WordsPerLine: 10, Seed: *seed,
		}, *mb<<20)
	case "visits":
		n, err = textgen.UserVisits(w, textgen.LogConfig{
			URLs: *urls, Alpha: pick(0.8), Seed: *seed,
		}, *mb<<20)
	case "rankings":
		n, err = textgen.Rankings(w, textgen.LogConfig{URLs: *urls, Alpha: pick(0.8), Seed: *seed})
	case "graph":
		n, err = textgen.WebGraph(w, textgen.GraphConfig{
			Pages: *pages, Alpha: pick(1.0), MeanOutDegree: 8, Seed: *seed,
		})
	default:
		die(fmt.Errorf("unknown kind %q", *kind))
	}
	if err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d bytes of %s\n", n, *kind)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
