package freqbuf

import (
	"fmt"
	"math/rand"
	"testing"

	"mrtext/internal/core/zipfest"
	"mrtext/internal/serde"
)

// BenchmarkOfferOptimizeStage measures the hot path: a frozen table
// absorbing a Zipfian record stream with a sum combiner.
func BenchmarkOfferOptimizeStage(b *testing.B) {
	s, err := zipfest.NewSampler(50_000, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	keys := make([][]byte, 1<<15)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("w%05d", s.Rank(rng.Float64())))
	}
	sum := func(key []byte, values [][]byte, emit func(k, v []byte) error) error {
		var total int64
		for _, v := range values {
			n, err := serde.DecodeInt64(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit(key, serde.EncodeInt64(total))
	}
	buf, err := New(Config{
		K: 3000, MemoryBytes: 1 << 20,
		ExpectedRecords: func() int64 { return 1 << 20 },
	}, sum)
	if err != nil {
		b.Fatal(err)
	}
	top := make([]string, 0, 3000)
	for i := int64(1); i <= 3000; i++ {
		top = append(top, fmt.Sprintf("w%05d", i))
	}
	buf.InstallTopK(top, func([]byte) int { return 0 })
	one := serde.EncodeInt64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := buf.Offer(0, keys[i&(1<<15-1)], one); err != nil {
			b.Fatal(err)
		}
	}
}
