// Package freqbuf implements frequency-buffering (§III of the paper), the
// first of the two optimizations: a small in-memory hash table, carved out
// of the map task's memory budget, that absorbs and combines map-output
// records whose keys are among the top-k most frequent — eliminating them
// from the sort/spill/merge dataflow entirely.
//
// A Buffer moves through the paper's stages:
//
//	pre-profile → profile → optimize
//
// In the pre-profiling stage (§III-C) it counts exact key frequencies over
// a small prefix (~1% of records), fits a Zipf parameter α by log-log
// regression, and derives the sampling fraction s from the rule
// n·s ≥ k^α·H_{m,α}. In the profiling stage (§III-B) it feeds a
// Space-Saving summary until s·n records have been seen, then freezes the
// estimated top-k. In the optimization stage every record whose key is
// frequent is absorbed into the hash table; per key, buffered values are
// collapsed with the user combine() whenever they hit a cap, and aggregates
// that no longer fit the memory budget overflow to the ordinary spill path.
// During the first two stages all records flow down the standard path
// unchanged.
//
// The per-node Cache implements the paper's cross-task sharing: the first
// task of a job on a node publishes its frozen top-k, and subsequent tasks
// skip profiling entirely.
package freqbuf

import (
	"fmt"
	"sort"
	"sync"

	"mrtext/internal/core/topk"
	"mrtext/internal/core/zipfest"
	"mrtext/internal/kvio"
)

// Stage identifies where a Buffer is in its lifecycle.
type Stage int

const (
	// StagePreProfile: estimating the Zipf parameter from a tiny prefix.
	StagePreProfile Stage = iota
	// StageProfile: running Space-Saving to find the top-k keys.
	StageProfile
	// StageOptimize: frequent keys are absorbed and combined in memory.
	StageOptimize
)

// String returns the stage name.
func (s Stage) String() string {
	switch s {
	case StagePreProfile:
		return "pre-profile"
	case StageProfile:
		return "profile"
	case StageOptimize:
		return "optimize"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Config parameterizes a Buffer. The paper's text experiments use K=3000,
// s=0.01; the log experiments K=10000, s=0.1; memory is 30% of the spill
// buffer.
type Config struct {
	// K is the number of frequent keys tracked (hash table entries).
	K int
	// MemoryBytes bounds the hash table (keys + buffered values).
	MemoryBytes int64
	// SampleFraction fixes the profiling fraction s. When zero the
	// auto-tuning profiler of §III-C chooses s from the fitted α.
	SampleFraction float64
	// PreProfileFraction is the prefix used for α estimation (default 1%).
	PreProfileFraction float64
	// ExpectedRecords estimates this task's total map-output record count
	// n; the runtime refines it as the split is consumed. Required.
	ExpectedRecords func() int64
	// ValuesPerKeyCap triggers an in-table combine() once a frequent key
	// has buffered this many values (default 32).
	ValuesPerKeyCap int
	// SummaryCapacity sizes the Space-Saving summary (default 4·K).
	SummaryCapacity int
	// MinSample and MaxSample clamp an auto-tuned s
	// (defaults 0.002 and 0.5).
	MinSample, MaxSample float64
}

func (c Config) withDefaults() Config {
	if c.PreProfileFraction <= 0 {
		c.PreProfileFraction = 0.01
	}
	if c.ValuesPerKeyCap <= 0 {
		c.ValuesPerKeyCap = 32
	}
	if c.SummaryCapacity <= 0 {
		c.SummaryCapacity = 4 * c.K
	}
	if c.MinSample <= 0 {
		c.MinSample = 0.002
	}
	if c.MaxSample <= 0 {
		c.MaxSample = 0.5
	}
	return c
}

// Stats summarizes a Buffer's work for the experiment reports.
type Stats struct {
	Stage          Stage
	Profiled       int64   // records observed during pre-profile + profile
	Hits           int64   // records absorbed by the table
	Misses         int64   // optimize-stage records with infrequent keys
	Evictions      int64   // aggregates overflowed to the spill path
	Combines       int64   // in-table combine() invocations
	ChosenSample   float64 // the s actually used
	FittedAlpha    float64 // α from the pre-profiling fit (0 if skipped)
	TableBytes     int64   // current memory footprint
	SharedTopK     bool    // top-k came from the node cache, profiling skipped
	FrozenTableLen int     // number of frequent keys installed
}

// entryOverhead approximates per-entry bookkeeping bytes counted against
// the memory budget.
const entryOverhead = 48

type entry struct {
	part    int
	key     []byte
	pending [][]byte // raw values buffered since the last chunk combine
	// chunks are first-level aggregates: each is the result of combining
	// one batch of pending values. Chunks are themselves merged by a
	// second-level combine, unless the combiner turns out not to shrink
	// data (noCombine) — in which case chunks accumulate until eviction or
	// drain flushes them. The two-level scheme keeps in-table combining
	// O(n) per key instead of re-encoding an ever-growing aggregate
	// quadratically (posting lists!).
	chunks    [][]byte
	bytes     int64 // this entry's contribution to the budget
	noCombine bool  // second-level combines don't shrink; stop trying
}

// valueOverhead is the per-buffered-value accounting charge.
const valueOverhead = 24

// Buffer is the frequency-buffering engine for one map task. It is not
// safe for concurrent use; the map goroutine owns it.
type Buffer struct {
	cfg     Config
	combine kvio.CombineFunc

	stage   Stage
	pre     *topk.Exact
	summary *topk.StreamSummary
	seen    int64 // records observed across all stages

	sample      float64 // chosen s
	fittedAlpha float64
	sharedTopK  bool

	table      map[string]*entry
	tableBytes int64
	stats      Stats
}

// New returns a Buffer in the pre-profiling stage. combine is the job's
// combiner; it may be nil, in which case frequent keys' values are merely
// buffered (still skipping the sort/spill path) and written out at drain or
// eviction time — the (small) benefit the paper observes even for jobs
// whose records cannot be aggregated, such as AccessLogJoin.
func New(cfg Config, combine kvio.CombineFunc) (*Buffer, error) {
	cfg = cfg.withDefaults()
	if cfg.K <= 0 {
		return nil, fmt.Errorf("freqbuf: K must be positive, got %d", cfg.K)
	}
	if cfg.MemoryBytes <= 0 {
		return nil, fmt.Errorf("freqbuf: MemoryBytes must be positive, got %d", cfg.MemoryBytes)
	}
	if cfg.ExpectedRecords == nil {
		return nil, fmt.Errorf("freqbuf: ExpectedRecords estimator is required")
	}
	return &Buffer{
		cfg:     cfg,
		combine: combine,
		stage:   StagePreProfile,
		pre:     topk.NewExact(),
	}, nil
}

// Stage returns the buffer's current lifecycle stage.
func (b *Buffer) Stage() Stage { return b.stage }

// Stats returns a snapshot of the buffer's statistics.
func (b *Buffer) Stats() Stats {
	s := b.stats
	s.Stage = b.stage
	s.ChosenSample = b.sample
	s.FittedAlpha = b.fittedAlpha
	s.TableBytes = b.tableBytes
	s.SharedTopK = b.sharedTopK
	s.FrozenTableLen = len(b.table)
	return s
}

// InstallTopK installs a previously frozen frequent-key set (from the node
// cache), skipping both profiling stages. Keys map to their partitions via
// the part function.
func (b *Buffer) InstallTopK(keys []string, part func(key []byte) int) {
	b.table = make(map[string]*entry, len(keys))
	for _, k := range keys {
		kb := []byte(k)
		e := &entry{part: part(kb), key: kb, bytes: int64(len(kb)) + entryOverhead}
		b.table[k] = e
		b.tableBytes += e.bytes
	}
	b.sharedTopK = true
	b.stage = StageOptimize
	b.pre, b.summary = nil, nil
}

// TopK returns the frozen frequent-key set (nil before the optimize stage),
// for publication to the node cache.
func (b *Buffer) TopK() []string {
	if b.stage != StageOptimize {
		return nil
	}
	keys := make([]string, 0, len(b.table))
	for k := range b.table {
		keys = append(keys, k)
	}
	return keys
}

// Offer presents one map-output record. If absorbed is true the record has
// been taken into the frequent-key table and must not be sent down the
// spill path. overflow, when non-empty, holds aggregate records ejected for
// lack of space: the caller must route them down the spill path. The key
// and value slices are copied as needed; the caller may reuse them.
func (b *Buffer) Offer(part int, key, value []byte) (absorbed bool, overflow []kvio.Record, err error) {
	b.seen++
	switch b.stage {
	case StagePreProfile:
		b.pre.Offer(string(key))
		b.stats.Profiled++
		if float64(b.seen) >= b.cfg.PreProfileFraction*float64(b.expected()) {
			b.finishPreProfile()
		}
		return false, nil, nil

	case StageProfile:
		b.summary.Offer(string(key))
		b.stats.Profiled++
		if float64(b.seen) >= b.sample*float64(b.expected()) {
			b.freeze(part, key)
		}
		return false, nil, nil

	case StageOptimize:
		e, ok := b.table[string(key)]
		if !ok {
			b.stats.Misses++
			return false, nil, nil
		}
		b.stats.Hits++
		if e.part < 0 {
			e.part = part
		}
		v := append([]byte(nil), value...)
		e.pending = append(e.pending, v)
		grow := int64(len(v)) + valueOverhead
		e.bytes += grow
		b.tableBytes += grow
		if len(e.pending) >= b.cfg.ValuesPerKeyCap {
			if err := b.combinePending(e); err != nil {
				return true, nil, err
			}
			if len(e.chunks) >= chunkCap {
				if err := b.combineChunks(e); err != nil {
					return true, nil, err
				}
			}
		}
		if b.tableBytes > b.cfg.MemoryBytes {
			ov, err := b.evictToWatermark()
			if err != nil {
				return true, nil, err
			}
			overflow = ov
		}
		return true, overflow, nil
	}
	return false, nil, fmt.Errorf("freqbuf: invalid stage %v", b.stage)
}

func (b *Buffer) expected() int64 {
	n := b.cfg.ExpectedRecords()
	if n < 1 {
		n = 1
	}
	return n
}

// finishPreProfile fits α, chooses s and moves to the profiling stage.
func (b *Buffer) finishPreProfile() {
	if b.cfg.SampleFraction > 0 {
		b.sample = b.cfg.SampleFraction
	} else {
		counts := b.pre.RankedCounts()
		fit, err := zipfest.EstimateAlpha(counts)
		if err != nil {
			// Degenerate prefix (e.g. single distinct key): fall back to
			// the most conservative sample.
			b.sample = b.cfg.MaxSample
		} else {
			b.fittedAlpha = fit.Alpha
			// Extrapolate the distinct-key count linearly from the prefix;
			// linear growth over-estimates m (vocabulary growth is
			// sublinear), which over-estimates H_{m,α} and s — the safe
			// direction.
			frac := float64(b.seen) / float64(b.expected())
			if frac <= 0 {
				frac = b.cfg.PreProfileFraction
			}
			m := int64(float64(b.pre.Distinct()) / frac)
			if m < int64(b.pre.Distinct()) {
				m = int64(b.pre.Distinct())
			}
			b.sample = zipfest.SampleFraction(b.expected(), b.cfg.K, m, fit.Alpha, b.cfg.MinSample, b.cfg.MaxSample)
		}
	}
	// Seed the Space-Saving summary with the exact prefix counts so the
	// pre-profiling observations are not wasted.
	b.summary = topk.NewStreamSummary(b.cfg.SummaryCapacity)
	for _, c := range b.pre.Top(b.cfg.SummaryCapacity) {
		b.summary.OfferN(c.Key, c.Count)
	}
	b.pre = nil
	b.stage = StageProfile
}

// freeze installs the estimated top-k and enters the optimize stage. The
// current record's partition function is inferred lazily: entries learn
// their partition on first absorption, so freeze needs no partitioner.
func (b *Buffer) freeze(_ int, _ []byte) {
	top := b.summary.Top(b.cfg.K)
	b.table = make(map[string]*entry, len(top))
	for _, c := range top {
		kb := []byte(c.Key)
		e := &entry{part: -1, key: kb, bytes: int64(len(kb)) + entryOverhead}
		b.table[c.Key] = e
		b.tableBytes += e.bytes
	}
	b.summary = nil
	b.stage = StageOptimize
}

// chunkCap bounds the first-level chunk list before a second-level
// combine is attempted.
const chunkCap = 64

// runCombine invokes the user combiner over vals and returns the emitted
// values.
func (b *Buffer) runCombine(e *entry, vals [][]byte) ([][]byte, error) {
	b.stats.Combines++
	var out [][]byte
	err := b.combine(e.key, vals, func(_, v []byte) error {
		out = append(out, append([]byte(nil), v...))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("freqbuf: combine(%q): %w", e.key, err)
	}
	return out, nil
}

// recount recomputes an entry's byte charge after its contents changed.
func (b *Buffer) recount(e *entry, old int64) {
	e.bytes = int64(len(e.key)) + entryOverhead
	for _, v := range e.chunks {
		e.bytes += int64(len(v)) + valueOverhead
	}
	for _, v := range e.pending {
		e.bytes += int64(len(v)) + valueOverhead
	}
	b.tableBytes += e.bytes - old
}

// combinePending collapses the pending batch into one chunk (first-level
// combine). Without a combiner pending values simply become chunks.
func (b *Buffer) combinePending(e *entry) error {
	if len(e.pending) == 0 {
		return nil
	}
	old := e.bytes
	if b.combine == nil {
		e.chunks = append(e.chunks, e.pending...)
		e.pending = nil
		return nil // byte charge unchanged
	}
	out, err := b.runCombine(e, e.pending)
	if err != nil {
		return err
	}
	e.pending = nil
	e.chunks = append(e.chunks, out...)
	b.recount(e, old)
	return nil
}

// combineChunks merges the chunk list (second-level combine). If merging
// fails to shrink the data (posting lists only concatenate), the entry is
// marked noCombine and chunks accumulate until eviction/drain instead.
func (b *Buffer) combineChunks(e *entry) error {
	if b.combine == nil || e.noCombine || len(e.chunks) <= 1 {
		return nil
	}
	var before int64
	for _, v := range e.chunks {
		before += int64(len(v)) + valueOverhead
	}
	old := e.bytes
	out, err := b.runCombine(e, e.chunks)
	if err != nil {
		return err
	}
	e.chunks = out
	b.recount(e, old)
	var after int64
	for _, v := range e.chunks {
		after += int64(len(v)) + valueOverhead
	}
	if before > 0 && float64(after) > 0.75*float64(before) {
		e.noCombine = true
	}
	return nil
}

// evictWatermark is the fill level eviction drains the table down to; a
// batch eviction amortizes the flush cost over many subsequent absorbed
// records instead of thrashing one aggregate at a time.
const evictWatermark = 0.8

// evictToWatermark combines what can usefully be combined and then flushes
// the largest entries' contents to the spill path (the paper's "written to
// disk using the original dataflow") until the table is back under the
// watermark. Entries keep their slots: their keys remain frequent.
func (b *Buffer) evictToWatermark() ([]kvio.Record, error) {
	target := int64(evictWatermark * float64(b.cfg.MemoryBytes))
	var out []kvio.Record
	for _, e := range b.entriesBySize() {
		if b.tableBytes <= target {
			break
		}
		old := e.bytes
		if old == int64(len(e.key))+entryOverhead {
			break // remaining entries are already empty
		}
		// Collapse the pending batch into chunks first: cheap, and it
		// shrinks sum-like values drastically before they hit the disk.
		if err := b.combinePending(e); err != nil {
			return nil, err
		}
		for _, v := range e.chunks {
			out = append(out, kvio.Record{Part: e.part, Key: append([]byte(nil), e.key...), Value: v})
		}
		e.chunks = nil
		b.recount(e, e.bytes)
	}
	b.stats.Evictions += int64(len(out))
	// Determinism: eviction order must not depend on map iteration.
	kvio.SortRecords(out)
	return out, nil
}

// entriesBySize returns the table's entries ordered by descending memory
// footprint.
func (b *Buffer) entriesBySize() []*entry {
	es := make([]*entry, 0, len(b.table))
	for _, e := range b.table {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].bytes != es[j].bytes {
			return es[i].bytes > es[j].bytes
		}
		return string(es[i].key) < string(es[j].key) // deterministic tie-break
	})
	return es
}

// NotePartition records the partition of an absorbed key the first time it
// is seen; the collector calls it alongside Offer.
func (b *Buffer) NotePartition(key []byte, part int) {
	if b.stage != StageOptimize {
		return
	}
	if e, ok := b.table[string(key)]; ok && e.part < 0 {
		e.part = part
	}
}

// Drain combines and returns every remaining aggregate at end of input,
// sorted by (partition, key), ready to merge with the spill runs. The
// buffer must not be used afterwards.
func (b *Buffer) Drain() ([]kvio.Record, error) {
	if b.stage != StageOptimize {
		return nil, nil // never froze: everything already went down the spill path
	}
	var out []kvio.Record
	for _, e := range b.table {
		if err := b.combinePending(e); err != nil {
			return nil, err
		}
		if err := b.combineChunks(e); err != nil {
			return nil, err
		}
		for _, v := range e.chunks {
			out = append(out, kvio.Record{Part: e.part, Key: e.key, Value: v})
		}
	}
	kvio.SortRecords(out)
	b.table = nil
	b.tableBytes = 0
	return out, nil
}

// Cache shares frozen top-k sets across the tasks of one job on one node
// (§III-B: "our system finds the top-k frequent-key set just once for all
// the tasks that run on a single node"). It is safe for concurrent use.
type Cache struct {
	mu   sync.Mutex
	sets map[string][]string
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{sets: make(map[string][]string)}
}

// Get returns the cached top-k for the given job, if any.
func (c *Cache) Get(jobID string) ([]string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys, ok := c.sets[jobID]
	return keys, ok
}

// Put publishes a frozen top-k for the given job; the first publication
// wins so all tasks share one set.
func (c *Cache) Put(jobID string, keys []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.sets[jobID]; !ok && len(keys) > 0 {
		c.sets[jobID] = keys
	}
}
