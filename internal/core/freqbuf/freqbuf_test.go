package freqbuf

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mrtext/internal/core/zipfest"
	"mrtext/internal/kvio"
	"mrtext/internal/serde"
)

// sumCombine is a WordCount-style combiner over varint counts.
func sumCombine(key []byte, values [][]byte, emit func(k, v []byte) error) error {
	var total int64
	for _, v := range values {
		n, err := serde.DecodeInt64(v)
		if err != nil {
			return err
		}
		total += n
	}
	return emit(key, serde.EncodeInt64(total))
}

func newBuffer(t *testing.T, cfg Config, combine kvio.CombineFunc) *Buffer {
	t.Helper()
	if cfg.ExpectedRecords == nil {
		cfg.ExpectedRecords = func() int64 { return 10_000 }
	}
	b, err := New(cfg, combine)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	exp := func() int64 { return 1 }
	if _, err := New(Config{K: 0, MemoryBytes: 1 << 10, ExpectedRecords: exp}, sumCombine); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := New(Config{K: 10, MemoryBytes: 0, ExpectedRecords: exp}, sumCombine); err == nil {
		t.Error("MemoryBytes=0 accepted")
	}
	if _, err := New(Config{K: 10, MemoryBytes: 1 << 10}, sumCombine); err == nil {
		t.Error("missing estimator accepted")
	}
	if _, err := New(Config{K: 10, MemoryBytes: 1 << 10, ExpectedRecords: exp}, nil); err != nil {
		t.Errorf("nil combiner rejected: %v", err)
	}
}

func TestStageProgression(t *testing.T) {
	b := newBuffer(t, Config{K: 4, MemoryBytes: 1 << 16, SampleFraction: 0.1, PreProfileFraction: 0.02}, sumCombine)
	if b.Stage() != StagePreProfile {
		t.Fatalf("initial stage %v", b.Stage())
	}
	one := serde.EncodeInt64(1)
	// 10k expected records: pre-profile until 200 seen, profile until 1000.
	for i := 0; i < 199; i++ {
		if absorbed, _, _ := b.Offer(0, []byte(fmt.Sprintf("k%d", i%8)), one); absorbed {
			t.Fatal("absorbed during pre-profile")
		}
	}
	if b.Stage() != StagePreProfile {
		t.Fatalf("stage after 199: %v", b.Stage())
	}
	b.Offer(0, []byte("k0"), one)
	if b.Stage() != StageProfile {
		t.Fatalf("stage after 200: %v", b.Stage())
	}
	for i := 0; i < 800; i++ {
		b.Offer(0, []byte(fmt.Sprintf("k%d", i%8)), one)
	}
	if b.Stage() != StageOptimize {
		t.Fatalf("stage after s·n records: %v", b.Stage())
	}
	if got := len(b.TopK()); got != 4 {
		t.Fatalf("frozen top-k size %d", got)
	}
	// Frequent keys absorb; others miss.
	top := map[string]bool{}
	for _, k := range b.TopK() {
		top[k] = true
	}
	absorbed, _, err := b.Offer(1, []byte(b.TopK()[0]), one)
	if err != nil || !absorbed {
		t.Fatalf("frequent key not absorbed: %v %v", absorbed, err)
	}
	absorbed, _, err = b.Offer(1, []byte("never-seen"), one)
	if err != nil || absorbed {
		t.Fatalf("novel key absorbed")
	}
	st := b.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Profiled != 1000 {
		t.Errorf("stats %+v", st)
	}
}

// TestMultisetConservation is the core correctness property: for a counting
// workload, (records passed through) + (drain output) + (evictions) must
// reconstruct the exact per-key totals of the input stream, no matter the
// table size, sample fraction or eviction pressure.
func TestMultisetConservation(t *testing.T) {
	f := func(seed int64, kRaw, memRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kRaw)%16
		mem := int64(512 + int(memRaw)*16)
		const n = 4000
		b, err := New(Config{
			K:               k,
			MemoryBytes:     mem,
			SampleFraction:  0.1,
			ExpectedRecords: func() int64 { return n },
			ValuesPerKeyCap: 8,
		}, sumCombine)
		if err != nil {
			return false
		}
		want := map[string]int64{}
		got := map[string]int64{}
		add := func(recs []kvio.Record) bool {
			for _, r := range recs {
				v, err := serde.DecodeInt64(r.Value)
				if err != nil {
					return false
				}
				got[string(r.Key)] += v
			}
			return true
		}
		for i := 0; i < n; i++ {
			key := []byte(fmt.Sprintf("k%d", int(float64(40)*rng.Float64()*rng.Float64())))
			want[string(key)]++
			absorbed, overflow, err := b.Offer(0, key, serde.EncodeInt64(1))
			if err != nil {
				return false
			}
			if !absorbed {
				got[string(key)]++
			}
			if !add(overflow) {
				return false
			}
		}
		drained, err := b.Drain()
		if err != nil || !add(drained) {
			return false
		}
		if len(want) != len(got) {
			return false
		}
		for k, w := range want {
			if got[k] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	// A tiny memory budget forces constant evictions; totals must still
	// conserve and the table must respect the watermark after eviction.
	b := newBuffer(t, Config{
		K: 4, MemoryBytes: 700, SampleFraction: 0.01,
		ExpectedRecords: func() int64 { return 100_000 }, ValuesPerKeyCap: 4,
	}, sumCombine)
	evictions := 0
	for i := 0; i < 50_000; i++ {
		key := []byte(fmt.Sprintf("hot%d", i%4))
		_, overflow, err := b.Offer(0, key, serde.EncodeInt64(1))
		if err != nil {
			t.Fatal(err)
		}
		evictions += len(overflow)
		if b.tableBytes > b.cfg.MemoryBytes+256 {
			t.Fatalf("table bytes %d far above budget %d", b.tableBytes, b.cfg.MemoryBytes)
		}
	}
	// With a sum combiner the aggregates stay tiny, so the table should
	// rarely (or never) evict.
	if st := b.Stats(); st.Hits == 0 {
		t.Error("no hits under pressure test")
	}
}

func TestNoCombinerBuffersAndEvicts(t *testing.T) {
	b := newBuffer(t, Config{
		K: 2, MemoryBytes: 1024, SampleFraction: 0.01,
		ExpectedRecords: func() int64 { return 100_000 }, ValuesPerKeyCap: 4,
	}, nil)
	var evicted int
	payload := make([]byte, 32)
	for i := 0; i < 10_000; i++ {
		_, overflow, err := b.Offer(0, []byte(fmt.Sprintf("h%d", i%2)), payload)
		if err != nil {
			t.Fatal(err)
		}
		evicted += len(overflow)
	}
	drained, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if int64(evicted+len(drained)) != st.Hits {
		t.Errorf("evicted %d + drained %d != hits %d", evicted, len(drained), st.Hits)
	}
	if st.Combines != 0 {
		t.Errorf("combines %d without a combiner", st.Combines)
	}
}

func TestInstallTopKSkipsProfiling(t *testing.T) {
	b := newBuffer(t, Config{K: 3, MemoryBytes: 1 << 16}, sumCombine)
	b.InstallTopK([]string{"x", "y"}, func(k []byte) int { return 7 })
	if b.Stage() != StageOptimize {
		t.Fatalf("stage %v", b.Stage())
	}
	absorbed, _, err := b.Offer(7, []byte("x"), serde.EncodeInt64(1))
	if err != nil || !absorbed {
		t.Fatal("installed key not absorbed")
	}
	drained, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(drained) != 1 || drained[0].Part != 7 {
		t.Fatalf("drained %+v", drained)
	}
	if !b.Stats().SharedTopK {
		t.Error("SharedTopK flag not set")
	}
}

func TestAutoTunerPicksSample(t *testing.T) {
	// With no fixed SampleFraction the §III-C rule chooses s after the
	// pre-profiling prefix, based on a fitted α.
	sampler, err := zipfest.NewSampler(500, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const n = 50_000
	b := newBuffer(t, Config{
		K: 50, MemoryBytes: 1 << 18,
		ExpectedRecords: func() int64 { return n },
	}, sumCombine)
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("w%03d", sampler.Rank(rng.Float64())))
		if _, _, err := b.Offer(0, key, serde.EncodeInt64(1)); err != nil {
			t.Fatal(err)
		}
		if b.Stage() == StageOptimize {
			break
		}
	}
	st := b.Stats()
	if st.FittedAlpha < 0.5 || st.FittedAlpha > 1.6 {
		t.Errorf("fitted alpha %g implausible for a Zipf(1) stream", st.FittedAlpha)
	}
	if st.ChosenSample <= 0 || st.ChosenSample > 0.5 {
		t.Errorf("chosen sample %g out of range", st.ChosenSample)
	}
	if b.Stage() != StageOptimize {
		t.Errorf("never reached optimize stage (s=%g)", st.ChosenSample)
	}
}

func TestDrainBeforeFreezeIsEmpty(t *testing.T) {
	b := newBuffer(t, Config{K: 4, MemoryBytes: 1 << 16, SampleFraction: 0.9}, sumCombine)
	b.Offer(0, []byte("k"), serde.EncodeInt64(1))
	drained, err := b.Drain()
	if err != nil || drained != nil {
		t.Errorf("drain before freeze: %v, %v", drained, err)
	}
}

func TestDrainSorted(t *testing.T) {
	b := newBuffer(t, Config{K: 16, MemoryBytes: 1 << 16}, sumCombine)
	keys := []string{"delta", "alpha", "omega", "beta"}
	b.InstallTopK(keys, func(k []byte) int { return int(k[0]) % 3 })
	for i := 0; i < 100; i++ {
		b.Offer(int(keys[i%4][0])%3, []byte(keys[i%4]), serde.EncodeInt64(1))
	}
	drained, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(drained); i++ {
		a, b2 := drained[i-1], drained[i]
		if a.Part > b2.Part || (a.Part == b2.Part && string(a.Key) > string(b2.Key)) {
			t.Fatalf("drain not sorted at %d: %v then %v", i, a, b2)
		}
	}
}

func TestIncompressibleDetection(t *testing.T) {
	// A concatenating "combiner" (output as big as its inputs) must trip
	// the noCombine detector rather than being re-applied forever.
	concat := func(key []byte, values [][]byte, emit func(k, v []byte) error) error {
		var all []byte
		for _, v := range values {
			all = append(all, v...)
		}
		return emit(key, all)
	}
	b := newBuffer(t, Config{
		K: 1, MemoryBytes: 1 << 20, ValuesPerKeyCap: 4,
	}, concat)
	b.InstallTopK([]string{"k"}, func([]byte) int { return 0 })
	for i := 0; i < 64*8; i++ {
		if _, _, err := b.Offer(0, []byte("k"), []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	e := b.table["k"]
	if e == nil {
		t.Fatal("entry missing")
	}
	if !e.noCombine {
		t.Error("concatenating combiner not detected as incompressible")
	}
}

func TestCache(t *testing.T) {
	c := NewCache()
	if _, ok := c.Get("job"); ok {
		t.Error("empty cache hit")
	}
	c.Put("job", []string{"a", "b"})
	c.Put("job", []string{"c"}) // first publication wins
	keys, ok := c.Get("job")
	if !ok || len(keys) != 2 || keys[0] != "a" {
		t.Errorf("cache get: %v %v", keys, ok)
	}
	c.Put("other", nil) // empty sets are not stored
	if _, ok := c.Get("other"); ok {
		t.Error("empty key set stored")
	}
}

func TestStageString(t *testing.T) {
	for s, want := range map[Stage]string{StagePreProfile: "pre-profile", StageProfile: "profile", StageOptimize: "optimize"} {
		if s.String() != want {
			t.Errorf("%d: %q", s, s.String())
		}
	}
	if Stage(9).String() == "" {
		t.Error("unknown stage empty")
	}
}
