package topk

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mrtext/internal/core/zipfest"
)

// zipfStream produces n keys drawn from a crude Zipf-like distribution
// (rank r appears ~ n/r times), deterministic per seed.
func zipfStream(seed int64, n, vocab int) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		// inverse-CDF of 1/r over 1..vocab, approximated
		r := 1 + int(float64(vocab-1)*rng.Float64()*rng.Float64()*rng.Float64())
		keys[i] = fmt.Sprintf("w%05d", r)
	}
	return keys
}

func TestStreamSummaryExactWhenUnderCapacity(t *testing.T) {
	s := NewStreamSummary(100)
	exact := NewExact()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(50)) // 50 < capacity: all monitored
		s.Offer(k)
		exact.Offer(k)
	}
	if s.Len() != exact.Distinct() {
		t.Fatalf("monitored %d keys, want %d", s.Len(), exact.Distinct())
	}
	for _, c := range exact.Top(50) {
		count, errBound, ok := s.Count(c.Key)
		if !ok || count != c.Count || errBound != 0 {
			t.Errorf("key %s: summary (%d,%d,%v), exact %d", c.Key, count, errBound, ok, c.Count)
		}
	}
	if !s.GuaranteedTop(10) {
		t.Error("exact counts should guarantee the top-10")
	}
}

// TestStreamSummaryOverestimationBound verifies the Space-Saving invariant:
// for every monitored key, trueCount ≤ estimate and estimate − err ≤
// trueCount.
func TestStreamSummaryOverestimationBound(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		s := NewStreamSummary(64)
		exact := NewExact()
		for _, k := range zipfStream(seed, 20_000, 2000) {
			s.Offer(k)
			exact.Offer(k)
		}
		for _, c := range s.Top(64) {
			truth := exact.Count(c.Key)
			if truth > c.Count {
				t.Errorf("seed %d key %s: estimate %d < true %d", seed, c.Key, c.Count, truth)
			}
			if c.Count-c.Err > truth {
				t.Errorf("seed %d key %s: estimate-err %d > true %d", seed, c.Key, c.Count-c.Err, truth)
			}
		}
	}
}

// TestStreamSummaryCountSumInvariant: the sum of monitored counts equals the
// number of observations (each observation lands on exactly one counter,
// and eviction transfers counts).
func TestStreamSummaryCountSumInvariant(t *testing.T) {
	s := NewStreamSummary(32)
	stream := zipfStream(3, 5000, 500)
	for _, k := range stream {
		s.Offer(k)
	}
	var sum uint64
	for _, c := range s.Top(32) {
		sum += c.Count
	}
	if sum != uint64(len(stream)) {
		t.Errorf("count sum %d, observed %d", sum, len(stream))
	}
	if s.Observed() != uint64(len(stream)) {
		t.Errorf("Observed %d, want %d", s.Observed(), len(stream))
	}
}

func TestStreamSummaryTopKRecall(t *testing.T) {
	// On a Zipf(1) stream — the paper's workload — a summary with adequate
	// capacity must recover the true heavy hitters.
	sampler, err := zipfest.NewSampler(5000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	s := NewStreamSummary(200)
	exact := NewExact()
	for i := 0; i < 100_000; i++ {
		k := fmt.Sprintf("w%05d", sampler.Rank(rng.Float64()))
		s.Offer(k)
		exact.Offer(k)
	}
	const k = 20
	got := map[string]bool{}
	for _, c := range s.Top(k) {
		got[c.Key] = true
	}
	hits := 0
	for _, c := range exact.Top(k) {
		if got[c.Key] {
			hits++
		}
	}
	if hits < k*8/10 {
		t.Errorf("recall %d/%d below 80%%", hits, k)
	}
}

func TestStreamSummaryCapacity(t *testing.T) {
	s := NewStreamSummary(10)
	for i := 0; i < 1000; i++ {
		s.Offer(fmt.Sprintf("k%d", i))
	}
	if s.Len() != 10 {
		t.Errorf("monitored %d keys, capacity 10", s.Len())
	}
	if s.Capacity() != 10 {
		t.Errorf("capacity %d", s.Capacity())
	}
	// Degenerate capacity is clamped to 1.
	if NewStreamSummary(0).Capacity() != 1 {
		t.Error("zero capacity not clamped")
	}
}

func TestStreamSummaryOfferN(t *testing.T) {
	a := NewStreamSummary(8)
	b := NewStreamSummary(8)
	a.OfferN("x", 5)
	for i := 0; i < 5; i++ {
		b.Offer("x")
	}
	ca, _, _ := a.Count("x")
	cb, _, _ := b.Count("x")
	if ca != cb || ca != 5 {
		t.Errorf("OfferN: %d vs %d", ca, cb)
	}
}

func TestStreamSummaryDeterministicTop(t *testing.T) {
	run := func() []Counted {
		s := NewStreamSummary(16)
		for _, k := range zipfStream(4, 3000, 100) {
			s.Offer(k)
		}
		return s.Top(16)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic top at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestExact(t *testing.T) {
	e := NewExact()
	e.Offer("a")
	e.OfferN("b", 3)
	e.Offer("a")
	if e.Count("a") != 2 || e.Count("b") != 3 || e.Count("c") != 0 {
		t.Errorf("counts: a=%d b=%d c=%d", e.Count("a"), e.Count("b"), e.Count("c"))
	}
	if e.Total() != 5 || e.Distinct() != 2 {
		t.Errorf("total=%d distinct=%d", e.Total(), e.Distinct())
	}
	top := e.Top(1)
	if len(top) != 1 || top[0].Key != "b" {
		t.Errorf("top: %v", top)
	}
	ranked := e.RankedCounts()
	if len(ranked) != 2 || ranked[0] != 3 || ranked[1] != 2 {
		t.Errorf("ranked: %v", ranked)
	}
}

func TestLRUBasics(t *testing.T) {
	l := NewLRU(2)
	if l.Touch("a") {
		t.Error("first touch was a hit")
	}
	if !l.Touch("a") {
		t.Error("second touch missed")
	}
	l.Touch("b")
	l.Touch("c") // evicts a (LRU)
	if l.Touch("a") {
		t.Error("evicted key hit")
	}
	// now b evicted (a,c more recent... order: after c insert: [c,b]; touch a evicts b → [a,c])
	if !l.Touch("c") {
		t.Error("c should still be cached")
	}
	if l.Hits() != 2 || l.Len() != 2 {
		t.Errorf("hits=%d len=%d", l.Hits(), l.Len())
	}
	if l.Misses() != 4 {
		t.Errorf("misses=%d", l.Misses())
	}
}

func TestLRUNeverExceedsCapacity(t *testing.T) {
	f := func(keys []uint8) bool {
		l := NewLRU(4)
		for _, k := range keys {
			l.Touch(fmt.Sprintf("k%d", k%16))
			if l.Len() > 4 {
				return false
			}
		}
		return l.Hits()+l.Misses() == uint64(len(keys))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGuaranteedTopDetectsUncertainty(t *testing.T) {
	// With capacity 2 and three equally frequent keys, the summary cannot
	// guarantee a top-1.
	s := NewStreamSummary(2)
	for i := 0; i < 30; i++ {
		s.Offer(fmt.Sprintf("k%d", i%3))
	}
	if s.GuaranteedTop(1) {
		t.Error("guaranteed top-1 on an ambiguous stream")
	}
}
