package topk

import (
	"fmt"
	"math/rand"
	"testing"

	"mrtext/internal/core/zipfest"
)

func benchStream(n int) []string {
	s, err := zipfest.NewSampler(50_000, 1.0)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(1))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("w%05d", s.Rank(rng.Float64()))
	}
	return out
}

func BenchmarkStreamSummaryOffer(b *testing.B) {
	stream := benchStream(1 << 16)
	b.ResetTimer()
	s := NewStreamSummary(4096)
	for i := 0; i < b.N; i++ {
		s.Offer(stream[i&(1<<16-1)])
	}
}

func BenchmarkStreamSummaryTop(b *testing.B) {
	s := NewStreamSummary(4096)
	for _, k := range benchStream(1 << 17) {
		s.Offer(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Top(3000)
	}
}

func BenchmarkExactOffer(b *testing.B) {
	stream := benchStream(1 << 16)
	b.ResetTimer()
	e := NewExact()
	for i := 0; i < b.N; i++ {
		e.Offer(stream[i&(1<<16-1)])
	}
}

func BenchmarkLRUTouch(b *testing.B) {
	stream := benchStream(1 << 16)
	b.ResetTimer()
	l := NewLRU(4096)
	for i := 0; i < b.N; i++ {
		l.Touch(stream[i&(1<<16-1)])
	}
}
