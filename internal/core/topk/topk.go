// Package topk implements the frequent-key estimation machinery behind
// frequency-buffering (§III-B of the paper).
//
// The central type is StreamSummary, the Space-Saving algorithm of
// Metwally, Agrawal and El Abbadi that the paper adopts for its profiling
// stage: a fixed-capacity summary where each monitored key carries an
// estimated count and a maximum overestimation error, and where a new key
// displaces the currently least-frequent one, inheriting its count plus
// one — the "slightly higher than the lowest frequency" insertion the paper
// describes to avoid thrashing.
//
// The package also provides the two comparison predictors evaluated in
// Fig. 7: Exact (the "Ideal" oracle with perfect knowledge of the key
// distribution) and LRU (a buffer that admits every key and evicts the
// least recently used).
package topk

import (
	"container/list"
	"sort"
)

// Counted is a key with its estimated count. Err bounds the overestimation:
// the true count lies in [Count-Err, Count].
type Counted struct {
	Key   string
	Count uint64
	Err   uint64
}

// bucket groups all monitored keys sharing one estimated count. Buckets
// live on a doubly-linked list in ascending count order, giving O(1)
// minimum lookup and O(1) count increments, as in the original
// stream-summary data structure.
type bucket struct {
	count uint64
	items *list.List // of *ssItem
}

// ssItem is one monitored key.
type ssItem struct {
	key    string
	err    uint64
	bucket *list.Element // element in the bucket list whose Value is *bucket
	self   *list.Element // this item's element inside bucket.items
}

// StreamSummary is the Space-Saving top-k summary. It is not safe for
// concurrent use; in the runtime each map task profiles with its own
// summary.
type StreamSummary struct {
	capacity int
	items    map[string]*ssItem
	buckets  *list.List // of *bucket, ascending by count
	observed uint64
}

// NewStreamSummary returns a summary monitoring at most capacity keys.
// Capacity must be positive.
func NewStreamSummary(capacity int) *StreamSummary {
	if capacity <= 0 {
		capacity = 1
	}
	return &StreamSummary{
		capacity: capacity,
		items:    make(map[string]*ssItem, capacity),
		buckets:  list.New(),
	}
}

// Capacity returns the maximum number of monitored keys.
func (s *StreamSummary) Capacity() int { return s.capacity }

// Len returns the number of currently monitored keys.
func (s *StreamSummary) Len() int { return len(s.items) }

// Observed returns the total number of Offer calls.
func (s *StreamSummary) Observed() uint64 { return s.observed }

// Offer records one occurrence of key.
func (s *StreamSummary) Offer(key string) {
	s.observed++
	if it, ok := s.items[key]; ok {
		s.increment(it, 1)
		return
	}
	if len(s.items) < s.capacity {
		s.insert(key, 1, 0)
		return
	}
	// Evict the minimum-count key; the newcomer inherits min+1 with error
	// min, exactly Space-Saving's replacement rule.
	minBkt := s.buckets.Front().Value.(*bucket)
	victimEl := minBkt.items.Front()
	victim := victimEl.Value.(*ssItem)
	delete(s.items, victim.key)
	minBkt.items.Remove(victimEl)
	minCount := minBkt.count
	if minBkt.items.Len() == 0 {
		s.buckets.Remove(s.buckets.Front())
	}
	s.insert(key, minCount+1, minCount)
}

// OfferN records n occurrences of key (a convenience for weighted feeds).
func (s *StreamSummary) OfferN(key string, n uint64) {
	for i := uint64(0); i < n; i++ {
		s.Offer(key)
	}
}

// insert adds a fresh monitored key with the given count and error.
func (s *StreamSummary) insert(key string, count, errBound uint64) {
	it := &ssItem{key: key, err: errBound}
	s.items[key] = it
	// Find or create the bucket with this count, scanning from the front
	// (inserts happen at or near the minimum).
	el := s.buckets.Front()
	for el != nil && el.Value.(*bucket).count < count {
		el = el.Next()
	}
	if el == nil || el.Value.(*bucket).count > count {
		b := &bucket{count: count, items: list.New()}
		if el == nil {
			it.bucket = s.buckets.PushBack(b)
		} else {
			it.bucket = s.buckets.InsertBefore(b, el)
		}
	} else {
		it.bucket = el
	}
	it.self = it.bucket.Value.(*bucket).items.PushBack(it)
}

// increment moves it up by delta counts, relocating it to the right bucket.
func (s *StreamSummary) increment(it *ssItem, delta uint64) {
	cur := it.bucket
	b := cur.Value.(*bucket)
	newCount := b.count + delta
	b.items.Remove(it.self)

	// Find the bucket for newCount at or after cur.
	el := cur.Next()
	if b.items.Len() == 0 {
		s.buckets.Remove(cur)
	}
	for el != nil && el.Value.(*bucket).count < newCount {
		el = el.Next()
	}
	var dst *list.Element
	if el == nil || el.Value.(*bucket).count > newCount {
		nb := &bucket{count: newCount, items: list.New()}
		if el == nil {
			dst = s.buckets.PushBack(nb)
		} else {
			dst = s.buckets.InsertBefore(nb, el)
		}
	} else {
		dst = el
	}
	it.bucket = dst
	it.self = dst.Value.(*bucket).items.PushBack(it)
}

// Count returns the estimated count and error bound for key, or ok=false if
// the key is not monitored.
func (s *StreamSummary) Count(key string) (count, errBound uint64, ok bool) {
	it, found := s.items[key]
	if !found {
		return 0, 0, false
	}
	return it.bucket.Value.(*bucket).count, it.err, true
}

// Top returns up to k monitored keys in descending estimated count. Ties
// break lexicographically for determinism.
func (s *StreamSummary) Top(k int) []Counted {
	all := make([]Counted, 0, len(s.items))
	for el := s.buckets.Back(); el != nil; el = el.Prev() {
		b := el.Value.(*bucket)
		for e := b.items.Front(); e != nil; e = e.Next() {
			it := e.Value.(*ssItem)
			all = append(all, Counted{Key: it.key, Count: b.count, Err: it.err})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// GuaranteedTop reports whether the i-th entry of Top is guaranteed to be a
// true top-i key (its count minus error still exceeds the (i+1)-th count),
// following the guarantee analysis in the Space-Saving paper.
func (s *StreamSummary) GuaranteedTop(k int) bool {
	top := s.Top(k + 1)
	if len(top) <= k {
		return true // fewer distinct keys than k: everything is exact enough
	}
	next := top[k].Count
	for i := 0; i < k; i++ {
		if top[i].Count-top[i].Err < next {
			return false
		}
	}
	return true
}

// Exact counts every key exactly; its Top is the true top-k. It models the
// "Ideal" predictor of Fig. 7 and is also used by tests as ground truth.
type Exact struct {
	counts map[string]uint64
	total  uint64
}

// NewExact returns an empty exact counter.
func NewExact() *Exact {
	return &Exact{counts: make(map[string]uint64)}
}

// Offer records one occurrence of key.
func (e *Exact) Offer(key string) {
	e.counts[key]++
	e.total++
}

// OfferN records n occurrences of key.
func (e *Exact) OfferN(key string, n uint64) {
	e.counts[key] += n
	e.total += n
}

// Count returns key's exact count.
func (e *Exact) Count(key string) uint64 { return e.counts[key] }

// Total returns the number of observations.
func (e *Exact) Total() uint64 { return e.total }

// Distinct returns the number of distinct keys seen.
func (e *Exact) Distinct() int { return len(e.counts) }

// Top returns the true top-k keys in descending count, ties broken
// lexicographically.
func (e *Exact) Top(k int) []Counted {
	all := make([]Counted, 0, len(e.counts))
	for key, c := range e.counts {
		all = append(all, Counted{Key: key, Count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// RankedCounts returns all counts in descending order (rank-frequency data,
// used for Fig. 3 and for Zipf-parameter estimation).
func (e *Exact) RankedCounts() []uint64 {
	counts := make([]uint64, 0, len(e.counts))
	for _, c := range e.counts {
		counts = append(counts, c)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	return counts
}

// LRU is the buffer policy of Fig. 7's LRU baseline: every arriving key is
// admitted; if the buffer is full the least-recently-used key is evicted.
// Touch reports whether the key was already buffered (a hit, i.e. the
// record could be combined in memory).
type LRU struct {
	capacity int
	ll       *list.List // front = most recent
	items    map[string]*list.Element
	hits     uint64
	misses   uint64
}

// NewLRU returns an LRU buffer holding at most capacity keys.
func NewLRU(capacity int) *LRU {
	if capacity <= 0 {
		capacity = 1
	}
	return &LRU{capacity: capacity, ll: list.New(), items: make(map[string]*list.Element, capacity)}
}

// Touch records an access to key, admitting it if absent and evicting the
// LRU key when over capacity. It reports whether the access was a hit.
func (l *LRU) Touch(key string) bool {
	if el, ok := l.items[key]; ok {
		l.ll.MoveToFront(el)
		l.hits++
		return true
	}
	l.misses++
	if l.ll.Len() >= l.capacity {
		back := l.ll.Back()
		delete(l.items, back.Value.(string))
		l.ll.Remove(back)
	}
	l.items[key] = l.ll.PushFront(key)
	return false
}

// Hits returns the number of hit accesses.
func (l *LRU) Hits() uint64 { return l.hits }

// Misses returns the number of miss accesses.
func (l *LRU) Misses() uint64 { return l.misses }

// Len returns the number of buffered keys.
func (l *LRU) Len() int { return l.ll.Len() }
