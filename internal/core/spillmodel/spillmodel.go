// Package spillmodel implements the analytic model of the map-task spill
// pipeline from §IV-C of the paper: one producer (the map thread) filling a
// buffer of M bytes at rate p, one consumer (the support thread) draining
// handed-off spills at rate c, and a spill-percentage threshold x that
// triggers the handoff. The recurrence the paper derives,
//
//	m_i = max{ xM, min{ (p/c)·m_{i−1}, M − m_{i−1} } },
//
// falls out of this simulation, and the package's property tests verify the
// paper's central claim: x = max{c/(p+c), ½} is exactly the largest
// threshold for which the slower thread never waits.
//
// The simulator is continuous-time and exact (no discretization): it steps
// from event to event (threshold reached, buffer full, input exhausted,
// consumer finished). It supports any Controller from spillmatch, so the
// adaptive matcher can be evaluated against the model with time-varying
// rates.
package spillmodel

import (
	"fmt"
	"math"
	"time"

	"mrtext/internal/core/spillmatch"
)

// Params describes one modeled map task.
type Params struct {
	// BufferBytes is M, the spill buffer size.
	BufferBytes float64
	// InputBytes is N, the total map-output volume the task produces.
	InputBytes float64
	// ProduceRate is p in bytes/second; used when Rates is nil.
	ProduceRate float64
	// ConsumeRate is c in bytes/second; used when Rates is nil.
	ConsumeRate float64
	// Rates, when non-nil, returns the instantaneous (p, c) given how many
	// bytes have been produced so far; it lets tests model workloads whose
	// CPU intensity drifts over the input. Rates must be piecewise
	// constant between multiples of Quantum bytes.
	Rates func(producedBytes float64) (p, c float64)
	// Quantum bounds a simulation step when Rates is set (default: M/16).
	Quantum float64
}

// Result summarizes one simulated task.
type Result struct {
	// MapWait is total time the producer was blocked on a full buffer.
	MapWait float64
	// SupportWait is total time the consumer sat idle.
	SupportWait float64
	// Makespan is the end-to-end task time.
	Makespan float64
	// Spills holds each spill's size in bytes.
	Spills []float64
	// Handoffs counts spills (== len(Spills)).
	Handoffs int
}

// SlowerWait returns the wait time of the slower thread given the average
// rates (the quantity eq. 1 minimizes).
func (r Result) SlowerWait(p, c float64) float64 {
	if p < c {
		return r.MapWait
	}
	if c < p {
		return r.SupportWait
	}
	return math.Min(r.MapWait, r.SupportWait)
}

const eps = 1e-9

// Simulate runs the pipeline model under the given spill-percentage
// controller. The controller's Percent is consulted at every handoff (with
// the preceding spill's measurements already Recorded), mirroring the real
// runtime.
func Simulate(params Params, ctrl spillmatch.Controller) (Result, error) {
	M := params.BufferBytes
	N := params.InputBytes
	if M <= 0 || N <= 0 {
		return Result{}, fmt.Errorf("spillmodel: buffer (%g) and input (%g) must be positive", M, N)
	}
	rates := params.Rates
	if rates == nil {
		p, c := params.ProduceRate, params.ConsumeRate
		if p <= 0 || c <= 0 {
			return Result{}, fmt.Errorf("spillmodel: rates must be positive (p=%g c=%g)", p, c)
		}
		rates = func(float64) (float64, float64) { return p, c }
	}
	quantum := params.Quantum
	if quantum <= 0 {
		quantum = M / 16
	}

	var (
		t         float64 // simulation clock
		pending   float64 // produced, not yet handed off
		inflight  float64 // spill currently being consumed (still occupies buffer)
		supFreeAt float64 // time the consumer finishes the in-flight spill
		remaining = N
		res       Result
		// Per-spill produce-time accounting (active time only).
		curProduce float64
	)
	threshold := clampThreshold(ctrl.Percent()) * M

	for remaining > eps || pending > eps || t < supFreeAt {
		supBusy := t < supFreeAt-eps
		if !supBusy {
			inflight = 0
			// Handoff if the threshold is met, or input is exhausted and a
			// remainder is pending.
			if pending >= threshold-eps || (remaining <= eps && pending > eps) {
				size := pending
				_, c := rates(N - remaining)
				consume := size / c
				res.Spills = append(res.Spills, size)
				ctrl.Record(int64(size), secondsToDuration(curProduce), secondsToDuration(consume))
				supFreeAt = t + consume
				inflight = size
				pending = 0
				curProduce = 0
				threshold = clampThreshold(ctrl.Percent()) * M
				continue
			}
			if remaining <= eps {
				break // nothing pending, nothing in flight, input done
			}
		}

		p, _ := rates(N - remaining)
		capacity := M - inflight

		if remaining > eps && pending < capacity-eps {
			// Producer runs. Next event is the earliest of: threshold
			// reached (matters only when the consumer is idle), buffer
			// full, consumer finishing, input exhausted, or a rate
			// quantum boundary.
			dt := math.Inf(1)
			if !supBusy && pending < threshold {
				dt = math.Min(dt, (threshold-pending)/p)
			}
			dt = math.Min(dt, (capacity-pending)/p)
			if supBusy {
				dt = math.Min(dt, supFreeAt-t)
			}
			dt = math.Min(dt, remaining/p)
			if params.Rates != nil {
				dt = math.Min(dt, quantum/p)
			}
			if dt <= 0 {
				dt = eps
			}
			produced := p * dt
			if produced > remaining {
				produced = remaining
			}
			t += dt
			pending += produced
			remaining -= produced
			curProduce += dt
			if !supBusy {
				res.SupportWait += dt
			}
			continue
		}

		if remaining > eps {
			// Buffer full: the producer blocks until the consumer frees
			// the in-flight region.
			if supFreeAt <= t+eps {
				return res, fmt.Errorf("spillmodel: producer blocked with idle consumer (pending=%g inflight=%g M=%g threshold=%g)", pending, inflight, M, threshold)
			}
			res.MapWait += supFreeAt - t
			t = supFreeAt
			continue
		}

		// Input exhausted, spill pending or in flight: jump to the
		// consumer's completion.
		if t < supFreeAt {
			t = supFreeAt
		}
	}
	if t < supFreeAt {
		t = supFreeAt
	}
	res.Makespan = t
	res.Handoffs = len(res.Spills)
	return res, nil
}

func clampThreshold(x float64) float64 {
	if x <= 0 || math.IsNaN(x) {
		return 0.01
	}
	if x > 1 {
		return 1
	}
	return x
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// VerifyRecurrence checks the paper's spill-size recurrence against a
// simulated run with static threshold x: beyond the first spill, every
// steady-state spill size must equal max{xM, min{(p/c)·m_{i−1}, M−m_{i−1}}}
// within tolerance. It returns the first violating index, or -1.
func VerifyRecurrence(spills []float64, M, x, p, c, tol float64) int {
	for i := 1; i < len(spills)-1; i++ { // last spill is the input remainder
		prev := spills[i-1]
		want := math.Max(x*M, math.Min(p/c*prev, M-prev))
		if math.Abs(spills[i]-want) > tol*M {
			return i
		}
	}
	return -1
}
