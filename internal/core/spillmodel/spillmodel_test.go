package spillmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mrtext/internal/core/spillmatch"
)

func simulate(t *testing.T, M, N, p, c, x float64) Result {
	t.Helper()
	res, err := Simulate(Params{BufferBytes: M, InputBytes: N, ProduceRate: p, ConsumeRate: c}, spillmatch.NewStatic(x))
	if err != nil {
		t.Fatalf("simulate(M=%g N=%g p=%g c=%g x=%g): %v", M, N, p, c, x, err)
	}
	return res
}

// TestWaitFreeBoundary is the reproduction of the paper's §IV-C theorem:
// the slower thread is wait-free iff x ≤ max{c/(p+c), ½}.
func TestWaitFreeBoundary(t *testing.T) {
	const M, N = 1 << 20, 64 << 20
	for _, ratio := range []float64{0.2, 0.5, 0.9, 1.0, 1.1, 2.0, 5.0} {
		p := 100.0e6 * ratio
		c := 100.0e6
		xstar := spillmatch.WaitFreePercent(p, c)
		for _, x := range []float64{0.1, 0.3, 0.45, 0.5, xstar, xstar * 0.98, xstar*1.05 + 0.01, 0.9} {
			if x > 0.99 {
				x = 0.99
			}
			res := simulate(t, M, N, p, c, x)
			wait := res.SlowerWait(p, c)
			waitFrac := wait / res.Makespan
			// The consumer inevitably idles while the very first spill
			// accumulates (x·M/p); the theorem concerns steady state.
			startup := x * M / p / res.Makespan
			if x <= xstar+1e-9 {
				if waitFrac > startup+0.01 {
					t.Errorf("ratio=%g x=%g ≤ x*=%g: slower wait %.3f%% not ≈0",
						ratio, x, xstar, 100*waitFrac)
				}
			} else if x > xstar+0.02 {
				if waitFrac < 0.005 {
					t.Errorf("ratio=%g x=%g > x*=%g: slower wait %.3f%% unexpectedly zero",
						ratio, x, xstar, 100*waitFrac)
				}
			}
		}
	}
}

func TestWaitFreeBoundaryQuick(t *testing.T) {
	f := func(pr, xr uint16) bool {
		// ratio ∈ (0.1, 5), x ∈ (0.05, x*]
		ratio := 0.1 + 4.9*float64(pr)/65535
		p := 100.0e6 * ratio
		c := 100.0e6
		xstar := spillmatch.WaitFreePercent(p, c)
		x := 0.05 + (xstar-0.05)*float64(xr)/65535
		res, err := Simulate(Params{BufferBytes: 1 << 20, InputBytes: 32 << 20, ProduceRate: p, ConsumeRate: c},
			spillmatch.NewStatic(x))
		if err != nil {
			return false
		}
		startup := x * (1 << 20) / p / res.Makespan
		return res.SlowerWait(p, c)/res.Makespan <= startup+0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRecurrence verifies the spill sizes follow the paper's recurrence
// m_i = max{xM, min{(p/c)·m_{i−1}, M − m_{i−1}}}.
func TestRecurrence(t *testing.T) {
	const M, N = 1 << 20, 64 << 20
	for _, tc := range []struct{ p, c, x float64 }{
		{50e6, 100e6, 0.8},
		{100e6, 100e6, 0.7},
		{200e6, 100e6, 0.6},
		{100e6, 300e6, 0.9},
		{100e6, 100e6, 0.3},
	} {
		res := simulate(t, M, N, tc.p, tc.c, tc.x)
		if len(res.Spills) < 3 {
			t.Fatalf("p=%g c=%g x=%g: only %d spills", tc.p, tc.c, tc.x, len(res.Spills))
		}
		if i := VerifyRecurrence(res.Spills, M, tc.x, tc.p, tc.c, 0.01); i >= 0 {
			t.Errorf("p=%g c=%g x=%g: recurrence violated at spill %d (m=%g, prev=%g)",
				tc.p, tc.c, tc.x, i, res.Spills[i], res.Spills[i-1])
		}
	}
}

func TestMakespanLowerBound(t *testing.T) {
	// Makespan is at least max(N/p, N/c) (each thread must touch all data)
	// and at most N/p + N/c (full serialization).
	const M, N = 1 << 20, 32 << 20
	for _, x := range []float64{0.2, 0.5, 0.8} {
		for _, ratio := range []float64{0.5, 1, 2} {
			p, c := 80e6*ratio, 80e6
			res := simulate(t, M, N, p, c, x)
			lo := math.Max(N/p, N/c)
			hi := N/p + N/c + 2*float64(M)/c
			if res.Makespan < lo-1e-6 || res.Makespan > hi+1e-6 {
				t.Errorf("x=%g ratio=%g: makespan %g outside [%g, %g]", x, ratio, res.Makespan, lo, hi)
			}
		}
	}
}

func TestSpillSizesConserveInput(t *testing.T) {
	f := func(seedRaw uint32) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		M := 1e5 + 1e6*rng.Float64()
		N := M * (3 + 30*rng.Float64())
		p := 1e6 * (0.5 + rng.Float64())
		c := 1e6 * (0.5 + rng.Float64())
		x := 0.1 + 0.85*rng.Float64()
		res, err := Simulate(Params{BufferBytes: M, InputBytes: N, ProduceRate: p, ConsumeRate: c},
			spillmatch.NewStatic(x))
		if err != nil {
			return false
		}
		var sum float64
		for _, m := range res.Spills {
			if m <= 0 || m > M+1e-6 {
				return false
			}
			sum += m
		}
		return math.Abs(sum-N) < 1e-3*N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMatcherRemovesWait(t *testing.T) {
	const M, N = 1 << 20, 64 << 20
	for _, ratio := range []float64{0.3, 1.0, 3.0} {
		p, c := 100e6*ratio, 100e6
		static := simulate(t, M, N, p, c, 0.8)
		m := spillmatch.NewMatcher(spillmatch.DefaultConfig())
		adaptive, err := Simulate(Params{BufferBytes: M, InputBytes: N, ProduceRate: p, ConsumeRate: c}, m)
		if err != nil {
			t.Fatal(err)
		}
		aw := adaptive.SlowerWait(p, c) / adaptive.Makespan
		if aw > 0.02 {
			t.Errorf("ratio=%g: matcher leaves %.2f%% slower-thread wait", ratio, 100*aw)
		}
		// And never slower end-to-end than the 0.8 static default.
		if adaptive.Makespan > static.Makespan*1.02 {
			t.Errorf("ratio=%g: matcher makespan %g vs static %g", ratio, adaptive.Makespan, static.Makespan)
		}
	}
}

func TestVariableRates(t *testing.T) {
	// Rates that flip halfway: the matcher re-adapts; the run completes
	// with conserved volume.
	const M, N = 1 << 20, 64 << 20
	rates := func(produced float64) (float64, float64) {
		if produced < N/2 {
			return 200e6, 100e6 // producer fast
		}
		return 50e6, 100e6 // producer slow
	}
	m := spillmatch.NewMatcher(spillmatch.DefaultConfig())
	res, err := Simulate(Params{BufferBytes: M, InputBytes: N, Rates: rates}, m)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range res.Spills {
		sum += s
	}
	if math.Abs(sum-N) > 1e-3*N {
		t.Errorf("volume %g want %g", sum, float64(N))
	}
	// After the slow-producer phase the matcher should sit above ½.
	if m.Percent() <= 0.5 {
		t.Errorf("final percent %g, want > 0.5 for slow producer", m.Percent())
	}
}

func TestSimulateValidation(t *testing.T) {
	bad := []Params{
		{BufferBytes: 0, InputBytes: 1, ProduceRate: 1, ConsumeRate: 1},
		{BufferBytes: 1, InputBytes: 0, ProduceRate: 1, ConsumeRate: 1},
		{BufferBytes: 1, InputBytes: 1, ProduceRate: 0, ConsumeRate: 1},
		{BufferBytes: 1, InputBytes: 1, ProduceRate: 1, ConsumeRate: -2},
	}
	for i, p := range bad {
		if _, err := Simulate(p, spillmatch.NewStatic(0.5)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFinalSpillSmallerThanThreshold(t *testing.T) {
	// Input that isn't a multiple of the spill size leaves a remainder
	// spill; the run must still complete and count it.
	res := simulate(t, 1<<20, 2.3*(1<<20), 100e6, 100e6, 0.5)
	if res.Handoffs != len(res.Spills) || len(res.Spills) < 3 {
		t.Fatalf("spills %v", res.Spills)
	}
	last := res.Spills[len(res.Spills)-1]
	if last >= 0.5*(1<<20)-1 {
		t.Errorf("final remainder spill %g not smaller than threshold", last)
	}
}
