package zipfest

import (
	"math/rand"
	"testing"
)

func BenchmarkSamplerRank(b *testing.B) {
	s, err := NewSampler(1_000_000, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Rank(rng.Float64())
	}
}

func BenchmarkHarmonicLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Harmonic(100_000_000, 0.8)
	}
}

func BenchmarkEstimateAlpha(b *testing.B) {
	s, _ := NewSampler(10_000, 1.0)
	rng := rand.New(rand.NewSource(1))
	counts := map[int64]uint64{}
	for i := 0; i < 200_000; i++ {
		counts[s.Rank(rng.Float64())]++
	}
	flat := make([]uint64, 0, len(counts))
	for _, c := range counts {
		flat = append(flat, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateAlpha(flat); err != nil {
			b.Fatal(err)
		}
	}
}
