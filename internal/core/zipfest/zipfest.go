// Package zipfest implements the Zipfian distribution machinery behind the
// auto-tuning profiler of §III-C: generalized harmonic numbers, Zipf
// probability mass, log-log linear-regression estimation of the Zipf
// parameter α from observed rank/frequency data, and the sampling-fraction
// rule  n·s ≥ k^α · H_{m,α}  that converts the fitted α into the smallest
// profiling fraction s expected to surface the k-th most frequent key.
//
// It also provides an inverse-CDF Zipf sampler over finite support that is
// valid for any α ≥ 0 — the standard library's rand.Zipf requires s > 1,
// but the paper's workloads use α = 0.8 (web requests, Breslau et al.) and
// α = 1 (web graphs, Adamic & Huberman).
package zipfest

import (
	"fmt"
	"math"
	"sort"
)

// Harmonic returns the generalized harmonic number H_{m,α} = Σ_{j=1..m} j^{-α}.
// For large m it switches to an Euler–Maclaurin tail approximation, keeping
// the whole computation O(min(m, cutoff)).
func Harmonic(m int64, alpha float64) float64 {
	if m <= 0 {
		return 0
	}
	const cutoff = 1 << 20
	if m <= cutoff {
		return harmonicExact(m, alpha)
	}
	head := harmonicExact(cutoff, alpha)
	// Euler–Maclaurin: Σ_{j=a+1..m} j^-α ≈ ∫_a^m x^-α dx + (m^-α − a^-α)/2.
	a := float64(cutoff)
	mf := float64(m)
	var integral float64
	if alpha == 1 {
		integral = math.Log(mf) - math.Log(a)
	} else {
		integral = (math.Pow(mf, 1-alpha) - math.Pow(a, 1-alpha)) / (1 - alpha)
	}
	return head + integral + (math.Pow(mf, -alpha)-math.Pow(a, -alpha))/2
}

func harmonicExact(m int64, alpha float64) float64 {
	var h float64
	for j := int64(1); j <= m; j++ {
		h += math.Pow(float64(j), -alpha)
	}
	return h
}

// PMF returns the Zipf probability of rank i (1-based) over support m:
// p_i = i^{-α} / H_{m,α}.
func PMF(i, m int64, alpha float64) float64 {
	if i < 1 || i > m {
		return 0
	}
	return math.Pow(float64(i), -alpha) / Harmonic(m, alpha)
}

// Fit is the result of estimating a Zipf law from rank/frequency data.
type Fit struct {
	Alpha float64 // fitted exponent (slope magnitude of the log-log fit)
	LogC  float64 // fitted intercept: log f_i ≈ LogC − Alpha·log i
	R2    float64 // coefficient of determination of the fit
	N     int     // number of (rank, frequency) points used
}

// Freq returns the fitted frequency of rank i.
func (f Fit) Freq(i int64) float64 {
	return math.Exp(f.LogC - f.Alpha*math.Log(float64(i)))
}

// EstimateAlpha fits a Zipf law to observed key frequencies by linear
// regression on (log rank, log frequency), exactly the estimator of §III-C:
// log f_i = −α·log i + log C. counts need not be sorted; zero counts are
// ignored. It returns an error if fewer than two usable points exist.
func EstimateAlpha(counts []uint64) (Fit, error) {
	sorted := make([]uint64, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			sorted = append(sorted, c)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	if len(sorted) < 2 {
		return Fit{}, fmt.Errorf("zipfest: need at least 2 non-zero frequencies, got %d", len(sorted))
	}

	n := float64(len(sorted))
	var sx, sy, sxx, sxy, syy float64
	for i, c := range sorted {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(c))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}, fmt.Errorf("zipfest: degenerate rank data (all ranks identical)")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	// R² of the regression.
	meanY := sy / n
	var ssRes, ssTot float64
	for i, c := range sorted {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(c))
		pred := intercept + slope*x
		ssRes += (y - pred) * (y - pred)
		ssTot += (y - meanY) * (y - meanY)
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}

	alpha := -slope
	if alpha < 0 {
		alpha = 0 // flatter than uniform never happens for real data; clamp
	}
	return Fit{Alpha: alpha, LogC: intercept, R2: r2, N: len(sorted)}, nil
}

// SampleFraction applies the §III-C rule: the smallest sampling fraction s
// such that n·s ≥ k^α·H_{m,α}, i.e. the profiling prefix is expected to
// contain at least one occurrence of the k-th most frequent key (the
// Bernoulli-trial argument in the paper). n is the expected number of
// map-output records, k the frequent-table capacity, m the (estimated)
// number of distinct keys. The result is clamped to [min, max].
func SampleFraction(n int64, k int, m int64, alpha float64, min, max float64) float64 {
	if n <= 0 || k <= 0 || m <= 0 {
		return max
	}
	if int64(k) > m {
		k = int(m)
	}
	expectTrials := math.Pow(float64(k), alpha) * Harmonic(m, alpha) // 1/p_k
	s := expectTrials / float64(n)
	if s < min {
		s = min
	}
	if s > max {
		s = max
	}
	return s
}

// Sampler draws ranks from a Zipf(α) distribution over support {1..m} by
// inverse-CDF lookup. Unlike rand.Zipf it supports any α ≥ 0 (including the
// α ≤ 1 regimes used throughout the paper's datasets). Setup is O(m); each
// draw is O(log m). Safe for concurrent use after construction.
type Sampler struct {
	m     int64
	alpha float64
	cdf   []float64 // cdf[i] = P(rank ≤ i+1)
}

// NewSampler builds a sampler over ranks 1..m with exponent alpha.
func NewSampler(m int64, alpha float64) (*Sampler, error) {
	if m <= 0 {
		return nil, fmt.Errorf("zipfest: sampler support must be positive, got %d", m)
	}
	if alpha < 0 {
		return nil, fmt.Errorf("zipfest: sampler alpha must be non-negative, got %g", alpha)
	}
	cdf := make([]float64, m)
	var sum float64
	for i := int64(0); i < m; i++ {
		sum += math.Pow(float64(i+1), -alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[m-1] = 1 // guard against rounding
	return &Sampler{m: m, alpha: alpha, cdf: cdf}, nil
}

// Support returns the number of ranks m.
func (s *Sampler) Support() int64 { return s.m }

// Alpha returns the sampler's exponent.
func (s *Sampler) Alpha() float64 { return s.alpha }

// Rank maps a uniform variate u ∈ [0,1) to a rank in 1..m by inverting the
// CDF.
func (s *Sampler) Rank(u float64) int64 {
	if u < 0 {
		u = 0
	}
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	idx := sort.SearchFloat64s(s.cdf, u)
	if s.cdf[idx] == u { // SearchFloat64s returns first ≥ u; move past exact hits
		idx++
	}
	if idx >= int(s.m) {
		idx = int(s.m) - 1
	}
	return int64(idx) + 1
}
