package zipfest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHarmonicSmall(t *testing.T) {
	// H_{3,1} = 1 + 1/2 + 1/3
	if got, want := Harmonic(3, 1), 1+0.5+1.0/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("H_{3,1} = %v want %v", got, want)
	}
	// H_{4,0} = 4 (α=0: every term is 1)
	if got := Harmonic(4, 0); math.Abs(got-4) > 1e-12 {
		t.Errorf("H_{4,0} = %v", got)
	}
	// H_{2,2} = 1 + 1/4
	if got := Harmonic(2, 2); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("H_{2,2} = %v", got)
	}
	if Harmonic(0, 1) != 0 || Harmonic(-3, 1) != 0 {
		t.Error("non-positive m should give 0")
	}
}

func TestHarmonicLargeApproximation(t *testing.T) {
	// The Euler–Maclaurin tail must agree with brute force within 0.01%.
	for _, alpha := range []float64{0.5, 0.8, 1.0, 1.2} {
		const m = 3 << 20 // beyond the exact cutoff
		var brute float64
		for j := int64(1); j <= m; j++ {
			brute += math.Pow(float64(j), -alpha)
		}
		got := Harmonic(m, alpha)
		if rel := math.Abs(got-brute) / brute; rel > 1e-4 {
			t.Errorf("alpha=%g: Harmonic=%g brute=%g rel=%g", alpha, got, brute, rel)
		}
	}
}

func TestPMF(t *testing.T) {
	// PMF sums to 1 over the support.
	const m = 100
	var sum float64
	for i := int64(1); i <= m; i++ {
		sum += PMF(i, m, 0.9)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sums to %v", sum)
	}
	if PMF(0, m, 1) != 0 || PMF(m+1, m, 1) != 0 {
		t.Error("out-of-support PMF non-zero")
	}
	// Monotone decreasing in rank.
	if PMF(1, m, 0.8) <= PMF(2, m, 0.8) {
		t.Error("PMF not decreasing")
	}
}

func TestEstimateAlphaRecoversTrueExponent(t *testing.T) {
	// Feed exact Zipfian frequencies: the regression must recover α almost
	// perfectly.
	for _, alpha := range []float64{0.5, 0.8, 1.0, 1.5} {
		counts := make([]uint64, 2000)
		for i := range counts {
			counts[i] = uint64(1e9 * math.Pow(float64(i+1), -alpha))
		}
		fit, err := EstimateAlpha(counts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Alpha-alpha) > 0.02 {
			t.Errorf("alpha=%g: fitted %g", alpha, fit.Alpha)
		}
		if fit.R2 < 0.999 {
			t.Errorf("alpha=%g: R²=%g", alpha, fit.R2)
		}
		// Fitted frequency at rank 1 should approximate the input.
		if rel := math.Abs(fit.Freq(1)-float64(counts[0])) / float64(counts[0]); rel > 0.1 {
			t.Errorf("alpha=%g: Freq(1)=%g vs %d", alpha, fit.Freq(1), counts[0])
		}
	}
}

func TestEstimateAlphaOnSampledData(t *testing.T) {
	// Frequencies from actual sampling still fit within a loose tolerance.
	s, err := NewSampler(5000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	counts := map[int64]uint64{}
	for i := 0; i < 200_000; i++ {
		counts[s.Rank(rng.Float64())]++
	}
	flat := make([]uint64, 0, len(counts))
	for _, c := range counts {
		flat = append(flat, c)
	}
	fit, err := EstimateAlpha(flat)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling truncates the tail (unseen ranks), which biases the log-log
	// slope; accept a generous band around the true α=1.
	if fit.Alpha < 0.6 || fit.Alpha > 1.3 {
		t.Errorf("fitted alpha %g far from 1.0", fit.Alpha)
	}
}

func TestEstimateAlphaDegenerate(t *testing.T) {
	if _, err := EstimateAlpha(nil); err == nil {
		t.Error("nil counts accepted")
	}
	if _, err := EstimateAlpha([]uint64{5}); err == nil {
		t.Error("single count accepted")
	}
	if _, err := EstimateAlpha([]uint64{0, 0, 7}); err == nil {
		t.Error("single non-zero count accepted")
	}
	// Uniform distribution fits α≈0 (clamped non-negative).
	fit, err := EstimateAlpha([]uint64{10, 10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha != 0 {
		t.Errorf("uniform alpha = %g", fit.Alpha)
	}
}

func TestSampleFraction(t *testing.T) {
	// The rule: s ≥ k^α·H_{m,α}/n. For n = 10·k^α·H the fraction is 0.1.
	k, m, alpha := 1000, int64(100_000), 0.9
	need := math.Pow(float64(k), alpha) * Harmonic(m, alpha)
	n := int64(10 * need)
	got := SampleFraction(n, k, m, alpha, 0.001, 0.9)
	if math.Abs(got-0.1) > 0.01 {
		t.Errorf("SampleFraction = %g, want ≈0.1", got)
	}
	// Clamping.
	if got := SampleFraction(n, k, m, alpha, 0.2, 0.9); got != 0.2 {
		t.Errorf("min clamp: %g", got)
	}
	if got := SampleFraction(100, k, m, alpha, 0.001, 0.5); got != 0.5 {
		t.Errorf("max clamp: %g", got)
	}
	// Degenerate inputs fall back to max.
	if got := SampleFraction(0, k, m, alpha, 0.001, 0.5); got != 0.5 {
		t.Errorf("degenerate n: %g", got)
	}
	// k beyond the support is clamped to m.
	if got := SampleFraction(1<<40, int(m)*2, m, alpha, 0.0001, 0.9); got <= 0 || got > 0.9 {
		t.Errorf("k>m: %g", got)
	}
}

func TestSampleFractionMonotoneInK(t *testing.T) {
	// More frequent keys to find → longer profiling.
	prev := 0.0
	for _, k := range []int{10, 100, 1000, 10000} {
		s := SampleFraction(1_000_000_000, k, 100_000, 1.0, 1e-9, 1)
		if s < prev {
			t.Errorf("SampleFraction not monotone at k=%d: %g < %g", k, s, prev)
		}
		prev = s
	}
}

func TestSamplerValidation(t *testing.T) {
	if _, err := NewSampler(0, 1); err == nil {
		t.Error("zero support accepted")
	}
	if _, err := NewSampler(10, -1); err == nil {
		t.Error("negative alpha accepted")
	}
}

func TestSamplerBoundaries(t *testing.T) {
	s, err := NewSampler(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Rank(0); r != 1 {
		t.Errorf("Rank(0) = %d", r)
	}
	if r := s.Rank(math.Nextafter(1, 0)); r != 100 {
		t.Errorf("Rank(1-ε) = %d", r)
	}
	if r := s.Rank(-0.5); r != 1 {
		t.Errorf("Rank(-0.5) = %d", r)
	}
	if r := s.Rank(2); r != 100 {
		t.Errorf("Rank(2) = %d", r)
	}
	if s.Support() != 100 || s.Alpha() != 1.0 {
		t.Error("accessors wrong")
	}
}

func TestSamplerRanksAlwaysInSupport(t *testing.T) {
	s, err := NewSampler(50, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(u float64) bool {
		r := s.Rank(math.Abs(math.Mod(u, 1)))
		return r >= 1 && r <= 50
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSamplerMatchesPMF(t *testing.T) {
	// Empirical frequencies of the top ranks must match the analytic PMF.
	const m, alpha, n = 1000, 0.8, 500_000
	s, err := NewSampler(m, alpha)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, m+1)
	for i := 0; i < n; i++ {
		counts[s.Rank(rng.Float64())]++
	}
	for _, rank := range []int64{1, 2, 10, 100} {
		want := PMF(rank, m, alpha)
		got := float64(counts[rank]) / n
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("rank %d: empirical %g vs PMF %g", rank, got, want)
		}
	}
}

func TestSamplerAlphaZeroIsUniform(t *testing.T) {
	s, err := NewSampler(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Quartile boundaries map to each rank.
	for i, u := range []float64{0.1, 0.3, 0.6, 0.9} {
		if r := s.Rank(u); r != int64(i+1) {
			t.Errorf("u=%g: rank %d want %d", u, r, i+1)
		}
	}
}
