package spillmatch

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestWaitFreePercentEquation(t *testing.T) {
	cases := []struct {
		p, c float64
		want float64
	}{
		{100, 100, 0.5},  // balanced: ½
		{200, 100, 0.5},  // producer faster: ½ (c/(p+c)=1/3 < ½)
		{100, 300, 0.75}, // consumer faster: c/(p+c)
		{100, 900, 0.9},  // much faster consumer
		{1, 1e9, 1e9 / (1e9 + 1)},
	}
	for _, c := range cases {
		if got := WaitFreePercent(c.p, c.c); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("WaitFreePercent(%g,%g) = %g want %g", c.p, c.c, got, c.want)
		}
	}
	// Degenerate rates default to ½.
	if WaitFreePercent(0, 100) != 0.5 || WaitFreePercent(100, -1) != 0.5 {
		t.Error("degenerate rates not defaulted")
	}
}

func TestWaitFreePercentProperties(t *testing.T) {
	f := func(p, c float64) bool {
		p, c = math.Abs(p)+1e-9, math.Abs(c)+1e-9
		x := WaitFreePercent(p, c)
		if x < 0.5 || x >= 1 {
			return false
		}
		// p < c  ⇔  x > ½ (strictly, up to fp noise)
		if p < c && x <= 0.5-1e-12 {
			return false
		}
		if p > c && x != 0.5 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStaticController(t *testing.T) {
	s := NewStatic(0.8)
	if s.Percent() != 0.8 {
		t.Errorf("Percent = %g", s.Percent())
	}
	s.Record(1<<20, time.Second, 2*time.Second) // ignored
	if s.Percent() != 0.8 {
		t.Error("static controller adapted")
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestMatcherAdaptsFromTimes(t *testing.T) {
	m := NewMatcher(DefaultConfig())
	if got := m.Percent(); got != 0.5 {
		t.Errorf("initial percent %g", got)
	}
	// Producer twice as slow as the consumer: x = Tp/(Tp+Tc) = 2/3.
	m.Record(1<<20, 2*time.Second, time.Second)
	if got := m.Percent(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("after slow producer: %g want 2/3", got)
	}
	// Consumer slower: clamp at ½.
	m.Record(1<<20, time.Second, 4*time.Second)
	if got := m.Percent(); got != 0.5 {
		t.Errorf("after slow consumer: %g want 0.5", got)
	}
	if m.Spills() != 2 {
		t.Errorf("spills %d", m.Spills())
	}
	hist := m.History()
	if len(hist) != 2 || hist[0].NextX != 2.0/3 {
		t.Errorf("history %+v", hist)
	}
}

func TestMatcherIgnoresDegenerateMeasurements(t *testing.T) {
	m := NewMatcher(DefaultConfig())
	before := m.Percent()
	m.Record(0, time.Second, time.Second)
	m.Record(100, 0, time.Second)
	m.Record(100, time.Second, -time.Second)
	if m.Percent() != before || m.Spills() != 0 {
		t.Error("degenerate measurements were not ignored")
	}
}

func TestMatcherClamps(t *testing.T) {
	m := NewMatcher(Config{Initial: 0.5, Min: 0.3, Max: 0.6})
	// Extremely slow producer would push x→1; clamp to 0.6.
	m.Record(1<<20, time.Hour, time.Millisecond)
	if got := m.Percent(); got != 0.6 {
		t.Errorf("max clamp: %g", got)
	}
}

func TestMatcherSmoothing(t *testing.T) {
	m := NewMatcher(Config{Initial: 0.5, Min: 0.1, Max: 0.95, Smoothing: 0.5})
	m.Record(1<<20, 2*time.Second, time.Second) // Tp=2 Tc=1 → 2/3
	m.Record(1<<20, time.Second, 2*time.Second) // smoothed: Tp=1.5 Tc=1.5 → 0.5
	if got := m.Percent(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("smoothed percent %g want 0.5", got)
	}
}

func TestMatcherConfigDefaults(t *testing.T) {
	m := NewMatcher(Config{Initial: -1, Min: -2, Max: 7, Smoothing: 3})
	if got := m.Percent(); got != 0.5 {
		t.Errorf("defaulted initial %g", got)
	}
	// Swapped min/max are repaired.
	m2 := NewMatcher(Config{Initial: 0.5, Min: 0.9, Max: 0.2})
	m2.Record(1, time.Hour, time.Millisecond)
	if got := m2.Percent(); got < 0.2 || got > 0.9 {
		t.Errorf("swapped clamp bounds broke: %g", got)
	}
}

func TestMatcherConcurrentAccess(t *testing.T) {
	m := NewMatcher(DefaultConfig())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Record(1<<20, time.Second, time.Second)
				_ = m.Percent()
			}
		}()
	}
	wg.Wait()
	if m.Spills() != 4000 {
		t.Errorf("spills %d", m.Spills())
	}
}

func TestEquationReductionTpTc(t *testing.T) {
	// c/(p+c) with p=m/Tp, c=m/Tc must equal Tp/(Tp+Tc): the identity the
	// matcher relies on.
	f := func(mRaw, tpRaw, tcRaw uint32) bool {
		m := 1 + float64(mRaw)           // bytes
		tp := 0.001 + float64(tpRaw)/1e6 // seconds
		tc := 0.001 + float64(tcRaw)/1e6 // seconds
		p, c := m/tp, m/tc
		lhs := c / (p + c)
		rhs := tp / (tp + tc)
		return math.Abs(lhs-rhs) <= 1e-9*math.Max(lhs, rhs)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
