// Package spillmatch implements the paper's second optimization, the
// spill-matcher (§IV): a runtime controller that adapts the map task's
// spill percentage — the buffer-occupancy threshold that triggers handing
// the pending records to the sort/combine/spill support thread — so that
// the slower of the two threads never waits, while keeping spills as large
// as possible for combine efficiency.
//
// Per spill the runtime reports the time the map thread took to produce it
// (T_p, excluding waits) and the time the support thread took to consume it
// (T_c, excluding waits). With produce rate p = m/T_p and consume rate
// c = m/T_c, the paper derives (eq. 1) the maximal wait-free threshold
//
//	x = max{ c/(p+c), 1/2 }
//
// which conveniently reduces to max{ T_p/(T_p+T_c), 1/2 }, so the
// controller needs only the two times. The static Hadoop default (x = 0.8)
// is provided as the baseline controller.
package spillmatch

import (
	"fmt"
	"sync"
	"time"
)

// Controller chooses the spill percentage for the next spill of one map
// task. Implementations must be safe for use by the two goroutines of a
// map task (the map side reads Percent, the support side calls Record).
type Controller interface {
	// Percent returns the spill threshold fraction x ∈ (0, 1] to use for
	// the upcoming spill.
	Percent() float64
	// Record reports the measurements of the spill that just completed:
	// its size in bytes, the active time the map thread spent producing
	// it, and the active time the support thread spent consuming it.
	Record(spillBytes int64, produce, consume time.Duration)
	// Name identifies the controller in experiment reports.
	Name() string
}

// Static is the baseline fixed-threshold controller; Hadoop's default
// io.sort.spill.percent is 0.8.
type Static struct {
	X float64
}

// NewStatic returns a Static controller pinned at x.
func NewStatic(x float64) *Static { return &Static{X: x} }

// Percent implements Controller.
func (s *Static) Percent() float64 { return s.X }

// Record implements Controller; static controllers ignore measurements.
func (s *Static) Record(int64, time.Duration, time.Duration) {}

// Name implements Controller.
func (s *Static) Name() string { return fmt.Sprintf("static(%.2f)", s.X) }

// DefaultStaticPercent is Hadoop's default spill percentage, used by all
// non-spill-matcher configurations in the paper's experiments.
const DefaultStaticPercent = 0.8

// Config parameterizes a Matcher.
type Config struct {
	// Initial is the threshold used before any measurement exists.
	// 0.5 is always wait-free for the support-slower case and nearly
	// optimal for balanced rates, so it is the safe cold-start choice.
	Initial float64
	// Min and Max clamp the adapted threshold. Min keeps spills from
	// degenerating into per-record handoffs (combine efficiency, §IV-A);
	// Max keeps headroom so the producer is never trivially blocked.
	Min, Max float64
	// Smoothing ∈ [0,1) blends the new measurement with history:
	// T ← Smoothing·T_old + (1−Smoothing)·T_new. Zero (the paper's
	// policy) uses only the last spill.
	Smoothing float64
}

// DefaultConfig returns the configuration used in the paper's experiments.
func DefaultConfig() Config {
	return Config{Initial: 0.5, Min: 0.1, Max: 0.95, Smoothing: 0}
}

// Matcher is the adaptive spill-percentage controller.
type Matcher struct {
	cfg Config

	mu      sync.Mutex
	x       float64
	tp, tc  time.Duration // smoothed last measurements
	spills  int
	history []Decision
}

// Decision records one adaptation step, for the experiment reports.
type Decision struct {
	SpillBytes int64
	Produce    time.Duration
	Consume    time.Duration
	NextX      float64
}

// NewMatcher returns a Matcher with the given configuration; zero-valued
// fields fall back to DefaultConfig.
func NewMatcher(cfg Config) *Matcher {
	def := DefaultConfig()
	if cfg.Initial <= 0 || cfg.Initial > 1 {
		cfg.Initial = def.Initial
	}
	if cfg.Min <= 0 {
		cfg.Min = def.Min
	}
	if cfg.Max <= 0 || cfg.Max > 1 {
		cfg.Max = def.Max
	}
	if cfg.Min > cfg.Max {
		cfg.Min, cfg.Max = cfg.Max, cfg.Min
	}
	if cfg.Smoothing < 0 || cfg.Smoothing >= 1 {
		cfg.Smoothing = 0
	}
	return &Matcher{cfg: cfg, x: clamp(cfg.Initial, cfg.Min, cfg.Max)}
}

// Percent implements Controller.
func (m *Matcher) Percent() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.x
}

// Record implements Controller: it derives the wait-free maximal threshold
// from the last spill's produce/consume times (eq. 1).
func (m *Matcher) Record(spillBytes int64, produce, consume time.Duration) {
	if spillBytes <= 0 || produce <= 0 || consume <= 0 {
		return // degenerate measurement; keep the current threshold
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.Smoothing > 0 && m.spills > 0 {
		s := m.cfg.Smoothing
		m.tp = time.Duration(s*float64(m.tp) + (1-s)*float64(produce))
		m.tc = time.Duration(s*float64(m.tc) + (1-s)*float64(consume))
	} else {
		m.tp, m.tc = produce, consume
	}
	m.spills++

	// x = max{c/(p+c), 1/2} with p = bytes/T_p and c = bytes/T_c reduces
	// to max{T_p/(T_p+T_c), 1/2}: if the producer is slower (T_p > T_c)
	// the threshold rises above ½ to grow spills; if the consumer is
	// slower it caps at ½ so the next spill is always ready on time.
	x := float64(m.tp) / float64(m.tp+m.tc)
	if x < 0.5 {
		x = 0.5
	}
	m.x = clamp(x, m.cfg.Min, m.cfg.Max)
	m.history = append(m.history, Decision{SpillBytes: spillBytes, Produce: produce, Consume: consume, NextX: m.x})
}

// Name implements Controller.
func (m *Matcher) Name() string { return "spill-matcher" }

// Spills returns how many measurements the matcher has absorbed.
func (m *Matcher) Spills() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spills
}

// History returns a copy of the adaptation trace.
func (m *Matcher) History() []Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Decision, len(m.history))
	copy(out, m.history)
	return out
}

// WaitFreePercent is the pure eq.-1 function: the maximal spill percentage
// that keeps the slower thread wait-free given produce rate p and consume
// rate c (bytes/second). Exported for the analytic model and tests.
func WaitFreePercent(p, c float64) float64 {
	if p <= 0 || c <= 0 {
		return 0.5
	}
	x := c / (p + c)
	if x < 0.5 {
		x = 0.5
	}
	return x
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
