package lockcheck_test

import (
	"testing"

	"mrtext/internal/analysis/analysistest"
	"mrtext/internal/analysis/lockcheck"
)

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), lockcheck.Analyzer, "a")
}
