// Package a seeds lockcheck violations: copied sync values and fields
// accessed both under and outside their guarding mutex.
package a

import "sync"

// counter mimics the spill buffer's shape: a mutex, mutable state written
// under it, and immutable config set at construction time.
type counter struct {
	mu  sync.Mutex
	n   int // guarded: written under mu in Inc
	cap int // config: never written in any method
}

func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) Snapshot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n // ok: lock held
}

func (c *counter) Racy() int {
	return c.n // want `counter.Racy reads field n without holding the mutex`
}

func (c *counter) RacyWrite() {
	c.n = 0 // want `counter.RacyWrite writes field n without holding the mutex`
}

func (c *counter) Cap() int {
	return c.cap // ok: cap is never written under the lock
}

// bumpLocked is a caller-holds-the-mutex helper: the Locked suffix is the
// repository convention, so its guarded accesses are under the lock by
// contract and must not be flagged.
func (c *counter) bumpLocked(by int) {
	c.n += by // ok: *Locked methods hold the mutex by contract
}

func (c *counter) AddTwo() {
	c.mu.Lock()
	c.bumpLocked(2)
	c.mu.Unlock()
}

// waiter locks through a sync.Cond, like the spill buffer's consumer.
type waiter struct {
	mu   sync.Mutex
	cond *sync.Cond
	v    int
}

func (w *waiter) Produce() {
	w.mu.Lock()
	w.v++
	w.mu.Unlock()
}

func (w *waiter) Consume() int {
	w.cond.Wait() // holds w.mu by the sync.Cond contract
	return w.v    // ok: Wait marks the method as locking
}

func byValueParam(c counter) int { // want `parameter passes a.counter by value, copying its lock`
	return 0
}

func (c counter) badReceiver() {} // want `receiver passes a.counter by value, copying its lock`

func wgByValue(wg sync.WaitGroup) {} // want `parameter passes sync.WaitGroup by value`

func fineByPointer(c *counter, wg *sync.WaitGroup) {}
