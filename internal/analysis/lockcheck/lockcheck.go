// Package lockcheck targets the two lock mistakes that matter most for the
// spill-buffer handoff (one producer and one consumer goroutine sharing a
// mutex-guarded Buffer):
//
//  1. Copied locks: a method with a value receiver, or a function parameter
//     passed by value, whose type (transitively) contains a sync.Mutex,
//     sync.RWMutex, sync.Cond, sync.WaitGroup, sync.Once or sync.Pool.
//     Copying the lock forks the lock state and silently unsynchronizes
//     the copies. (A focused subset of vet's copylocks, which also runs.)
//
//  2. Mixed-discipline fields: for a struct with a mutex field, a field
//     that is *written* while the lock is held in one method but *accessed*
//     in another method of the same type that never takes that lock. This
//     is the AST+types heuristic form of "field b.pending is guarded by
//     b.mu" — exactly the shared state of the spill-buffer handoff. Methods
//     that never touch the mutex and only read never-locked fields (pure
//     config getters) are not flagged.
//
// The field heuristic is method-granular, not path-sensitive: a method that
// locks anywhere is treated as holding the lock for all its accesses. That
// is deliberately permissive — the goal is catching forgotten locking in
// new methods, the way Stats() or Release() could regress, without false
// positives on the existing code's lock discipline. Methods whose name ends
// in "Locked" are treated the same way: the suffix is this repository's
// convention for "caller must hold the mutex" helpers (the fault-tolerance
// bookkeeping in internal/mr uses it), so their accesses are under the lock
// by contract.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mrtext/internal/analysis"
)

// Analyzer is the lockcheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "flags copied sync values and struct fields accessed both under and outside their mutex",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	checkCopies(pass)
	checkGuardedFields(pass)
	return nil
}

// ---- part 1: copied locks ----

// syncValueNames are the sync types that must never be copied.
var syncValueNames = map[string]bool{
	"sync.Mutex": true, "sync.RWMutex": true, "sync.Cond": true,
	"sync.WaitGroup": true, "sync.Once": true, "sync.Pool": true,
}

// containsLock reports whether t (not a pointer) transitively contains a
// non-copyable sync value.
func containsLock(t types.Type) bool {
	seen := make(map[types.Type]bool)
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && syncValueNames[obj.Pkg().Path()+"."+obj.Name()] {
				return true
			}
			return walk(named.Underlying())
		}
		switch u := t.(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		return false
	}
	return walk(t)
}

func checkCopies(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv != nil {
				for _, f := range fd.Recv.List {
					checkByValue(pass, f, "receiver")
				}
			}
			if fd.Type.Params != nil {
				for _, f := range fd.Type.Params.List {
					checkByValue(pass, f, "parameter")
				}
			}
		}
	}
}

// checkByValue flags field f when its declared type carries a lock by value.
func checkByValue(pass *analysis.Pass, f *ast.Field, what string) {
	tv, ok := pass.TypesInfo.Types[f.Type]
	if !ok {
		return
	}
	t := tv.Type
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if containsLock(t) {
		pass.Reportf(f.Type.Pos(), "%s passes %s by value, copying its lock", what, t.String())
	}
}

// ---- part 2: mixed lock discipline on guarded fields ----

// structInfo accumulates per-struct lock usage across its methods.
type structInfo struct {
	name     string
	muFields map[string]bool // mutex/rwmutex field names
	methods  []*methodInfo
}

type methodInfo struct {
	name  string
	locks bool
	// reads/writes map field name -> first access position.
	reads  map[string]token.Pos
	writes map[string]token.Pos
}

func checkGuardedFields(pass *analysis.Pass) {
	structs := make(map[string]*structInfo)

	// Pass A: find struct types with sync.Mutex/sync.RWMutex fields.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			info := &structInfo{name: ts.Name.Name, muFields: make(map[string]bool)}
			for _, f := range st.Fields.List {
				tv, ok := pass.TypesInfo.Types[f.Type]
				if !ok {
					continue
				}
				name := namedName(tv.Type)
				if name == "sync.Mutex" || name == "sync.RWMutex" {
					for _, id := range f.Names {
						info.muFields[id.Name] = true
					}
				}
			}
			if len(info.muFields) > 0 {
				structs[ts.Name.Name] = info
			}
			return true
		})
	}
	if len(structs) == 0 {
		return
	}

	// Pass B: classify each method's lock usage and field accesses.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			recvName, structName := receiver(fd)
			info, ok := structs[structName]
			if !ok || recvName == "" {
				continue
			}
			m := &methodInfo{
				name:   fd.Name.Name,
				reads:  make(map[string]token.Pos),
				writes: make(map[string]token.Pos),
			}
			collectAccesses(pass, fd, recvName, info, m)
			// The *Locked suffix documents "caller holds the mutex": such
			// helpers access guarded state under the lock by contract even
			// though the Lock call lives in their callers.
			if strings.HasSuffix(m.name, "Locked") {
				m.locks = true
			}
			info.methods = append(info.methods, m)
		}
	}

	// Pass C: report fields written under the lock but accessed lock-free.
	for _, info := range structs {
		guarded := make(map[string]bool)
		for _, m := range info.methods {
			if m.locks {
				for f := range m.writes {
					guarded[f] = true
				}
			}
		}
		for _, m := range info.methods {
			if m.locks {
				continue
			}
			for f, pos := range m.reads {
				if guarded[f] {
					pass.Reportf(pos, "%s.%s reads field %s without holding the mutex that guards its writes", info.name, m.name, f)
				}
			}
			for f, pos := range m.writes {
				if guarded[f] {
					pass.Reportf(pos, "%s.%s writes field %s without holding the mutex that guards it", info.name, m.name, f)
				}
			}
		}
	}
}

// receiver extracts the receiver variable name and its struct type name.
func receiver(fd *ast.FuncDecl) (recvName, structName string) {
	f := fd.Recv.List[0]
	t := f.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if len(f.Names) == 0 {
		return "", id.Name
	}
	return f.Names[0].Name, id.Name
}

// collectAccesses walks a method body recording recv.field reads/writes and
// whether the mutex is operated.
func collectAccesses(pass *analysis.Pass, fd *ast.FuncDecl, recvName string, info *structInfo, m *methodInfo) {
	isRecvField := func(e ast.Expr) (string, bool) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != recvName {
			return "", false
		}
		return sel.Sel.Name, true
	}

	record := func(name string, pos token.Pos, write bool) {
		if info.muFields[name] {
			return // the mutex itself
		}
		if write {
			if _, ok := m.writes[name]; !ok {
				m.writes[name] = pos
			}
		} else if _, ok := m.reads[name]; !ok {
			m.reads[name] = pos
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			// recv.mu.Lock() / RLock() marks the method as locking. A method
			// operating a sync.Cond built over the mutex (cond.Wait) also
			// holds it by contract.
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if inner, ok := isRecvFieldSel(sel.X, recvName); ok && info.muFields[inner] {
						m.locks = true
					}
				case "Wait":
					if tv, ok := pass.TypesInfo.Types[sel.X]; ok && namedName(tv.Type) == "sync.Cond" {
						m.locks = true
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if name, ok := isRecvField(lhs); ok {
					record(name, lhs.Pos(), true)
				}
			}
			for _, rhs := range v.Rhs {
				markReads(rhs, isRecvField, record)
			}
			return false
		case *ast.IncDecStmt:
			if name, ok := isRecvField(v.X); ok {
				record(name, v.X.Pos(), true)
			}
			return false
		case *ast.SelectorExpr:
			if name, ok := isRecvField(v); ok {
				record(name, v.Pos(), false)
			}
			return false
		}
		return true
	})
}

// isRecvFieldSel unwraps recv.field (possibly through a pointer) returning
// the field name.
func isRecvFieldSel(e ast.Expr, recvName string) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != recvName {
		return "", false
	}
	return sel.Sel.Name, true
}

// markReads records every recv.field read inside e.
func markReads(e ast.Expr, isRecvField func(ast.Expr) (string, bool), record func(string, token.Pos, bool)) {
	ast.Inspect(e, func(n ast.Node) bool {
		if expr, ok := n.(ast.Expr); ok {
			if name, ok := isRecvField(expr); ok {
				record(name, expr.Pos(), false)
				return false
			}
		}
		return true
	})
}

// namedName renders a (possibly pointer) named type as "pkg.Name" using the
// package's short name.
func namedName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}
