// Package load enumerates, parses and type-checks the module's packages for
// mrlint. It is a small, offline replacement for go/packages: package
// discovery is delegated to `go list -json` (which understands build tags,
// testdata exclusion and module layout), parsing to go/parser, and type
// checking to go/types with the standard library's source importer — so the
// whole pipeline works with no module dependencies and no network.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors holds soft type-checking problems. Analysis proceeds on a
	// best-effort basis when they are non-empty (matching go vet, which
	// analyzes as much as it can type-check).
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// list runs `go list -json patterns...` in dir and decodes the stream.
func list(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Packages loads and type-checks the packages matching patterns, resolved
// relative to dir (typically the module root). Only non-test files are
// analyzed, matching the "library and binary code" scope of mrlint; test
// hygiene is go vet's department. All packages share one FileSet so
// positions and suppression indexes compose.
func Packages(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := list(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	// One shared source importer: it type-checks imported packages (stdlib
	// and module-local alike) from source and caches them across packages.
	imp := importer.ForCompiler(fset, "source", nil)

	var out []*Package
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, pkg)
	}
	return out, fset, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %v", path, err)
		}
		files = append(files, f)
	}
	pkg := &Package{PkgPath: lp.ImportPath, Dir: lp.Dir, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}
