// Package load enumerates, parses and type-checks the module's packages for
// mrlint. It is a small, offline replacement for go/packages: package
// discovery is delegated to `go list -deps -json` (which understands build
// tags, testdata exclusion and module layout), parsing to go/parser, and
// type checking to go/types — so the whole pipeline works with no module
// dependencies and no network.
//
// Two properties matter to the facts-based analyzers (alloccheck,
// atomiccheck):
//
//   - Deterministic DAG order. Packages returns the module-local package
//     graph in dependency order — every package appears after everything it
//     imports, ties broken by import path — so a bottom-up summary pass
//     sees its callees' facts before it needs them, and two runs over the
//     same tree schedule identically.
//
//   - Object identity across packages. All packages are type-checked with
//     one importer that serves module-local imports from the packages this
//     loader itself produced (falling back to the source importer for the
//     standard library), so the *types.Func a defining package exports is
//     the very object an importing package resolves. Facts are keyed by
//     object, which makes this a correctness requirement, not an
//     optimization.
//
// Load problems do not abort the run: `go list` package errors, parse
// errors and type-check errors are all aggregated per package (LoadErrors,
// TypeErrors) and analysis proceeds best-effort on whatever type-checked,
// matching go vet.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// Imports lists the module-local packages this one imports, sorted.
	Imports []string
	// Listed is true when the package matched the requested patterns.
	// False means it was pulled in only as a dependency so facts-based
	// analyzers can summarize it; the driver analyzes it but reports no
	// diagnostics on it.
	Listed bool
	// LoadErrors holds go list and parse problems. A package with load
	// errors may have partial (or no) syntax and types.
	LoadErrors []error
	// TypeErrors holds soft type-checking problems. Analysis proceeds on a
	// best-effort basis when they are non-empty (matching go vet, which
	// analyzes as much as it can type-check).
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Error      *struct {
		Pos string
		Err string
	}
}

// list runs `go list -deps -json patterns...` in dir and decodes the
// stream. -deps pulls in every dependency, so module-local helpers of the
// listed packages are loaded (and summarized for facts) even when the
// patterns name only their importers.
func list(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Packages loads and type-checks the packages matching patterns, resolved
// relative to dir (typically the module root), plus their module-local
// dependencies, returned in deterministic dependency (topological) order.
// Only non-test files are analyzed, matching the "library and binary code"
// scope of mrlint; test hygiene is go vet's department. All packages share
// one FileSet so positions and suppression indexes compose.
//
// The returned error covers only a failed `go list` invocation; per-package
// problems are aggregated on the packages themselves.
func Packages(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := list(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	// Index the module-local packages and their local import edges.
	local := make(map[string]listedPackage)
	for _, lp := range listed {
		if !lp.Standard {
			local[lp.ImportPath] = lp
		}
	}
	order := topoOrder(local)

	fset := token.NewFileSet()
	imp := &moduleImporter{
		// Stdlib packages are type-checked from source and cached by the
		// standard source importer; module-local ones come from our own
		// cache so object identity holds across packages.
		fallback: importer.ForCompiler(fset, "source", nil),
		local:    make(map[string]*types.Package),
	}

	var out []*Package
	for _, path := range order {
		lp := local[path]
		pkg := check(fset, imp, lp)
		pkg.Listed = !lp.DepOnly
		for _, imported := range lp.Imports {
			if _, ok := local[imported]; ok {
				pkg.Imports = append(pkg.Imports, imported)
			}
		}
		sort.Strings(pkg.Imports)
		if pkg.Types != nil {
			imp.local[lp.ImportPath] = pkg.Types
		}
		out = append(out, pkg)
	}
	return out, fset, nil
}

// topoOrder returns the import paths of local in dependency order —
// imported packages before their importers — with ties broken by import
// path, so the schedule is total and reproducible. Import cycles cannot
// occur in compilable Go; if a malformed tree has one anyway, its members
// are appended in path order at the point the cycle is detected.
func topoOrder(local map[string]listedPackage) []string {
	paths := make([]string, 0, len(local))
	for p := range local {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(paths))
	out := make([]string, 0, len(paths))
	var visit func(string)
	visit = func(p string) {
		if state[p] != unvisited {
			return
		}
		state[p] = visiting
		lp := local[p]
		deps := append([]string(nil), lp.Imports...)
		sort.Strings(deps)
		for _, d := range deps {
			if _, ok := local[d]; ok {
				visit(d)
			}
		}
		state[p] = done
		out = append(out, p)
	}
	for _, p := range paths {
		visit(p)
	}
	return out
}

// moduleImporter resolves module-local imports from the loader's own
// checked packages and everything else through the source importer.
type moduleImporter struct {
	fallback types.Importer
	local    map[string]*types.Package
}

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	return m.fallback.Import(path)
}

// check parses and type-checks one listed package, aggregating problems
// instead of failing.
func check(fset *token.FileSet, imp types.Importer, lp listedPackage) *Package {
	pkg := &Package{PkgPath: lp.ImportPath, Dir: lp.Dir}
	if lp.Error != nil {
		where := lp.Error.Pos
		if where == "" {
			where = lp.ImportPath
		}
		pkg.LoadErrors = append(pkg.LoadErrors, fmt.Errorf("%s: %s", where, lp.Error.Err))
	}
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			// Parse errors come back as a scanner.ErrorList whose entries
			// carry positions; keep whatever partial AST exists.
			pkg.LoadErrors = append(pkg.LoadErrors, err)
		}
		if f != nil {
			pkg.Files = append(pkg.Files, f)
		}
	}
	if len(pkg.Files) == 0 {
		return pkg
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, pkg.Files, info)
	if err != nil && tpkg == nil {
		pkg.LoadErrors = append(pkg.LoadErrors, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err))
		return pkg
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg
}
