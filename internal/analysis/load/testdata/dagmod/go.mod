module example.com/dagmod

go 1.22
