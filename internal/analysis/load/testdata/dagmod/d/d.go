// Package d imports only the leaf.
package d

import "example.com/dagmod/a"

// D doubles the leaf value.
func D() int { return 2 * a.A() }
