// Package a is the leaf of the fixture DAG.
package a

// A returns a constant.
func A() int { return 1 }
