// Package c imports both a and b — the diamond top.
package c

import (
	"example.com/dagmod/a"
	"example.com/dagmod/b"
)

// C combines both dependencies.
func C() int { return a.A() + b.B() }
