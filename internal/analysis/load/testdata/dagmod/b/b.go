// Package b imports a.
package b

import "example.com/dagmod/a"

// B calls into the leaf.
func B() int { return a.A() }
