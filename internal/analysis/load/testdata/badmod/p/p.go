// Package p has a syntax error; the loader must aggregate it instead of
// aborting the run.
package p

func (
