// Package q is clean; it must still be analyzed when a sibling fails to
// parse.
package q

// Q returns a constant.
func Q() int { return 42 }
