package load

import (
	"go/types"
	"path/filepath"
	"testing"
)

// loadDag loads the fixture module and returns its packages by import path
// plus the order they were returned in.
func loadDag(t *testing.T, patterns ...string) (map[string]*Package, []string) {
	t.Helper()
	dir := filepath.Join("testdata", "dagmod")
	pkgs, _, err := Packages(dir, patterns...)
	if err != nil {
		t.Fatalf("Packages(%q, %v): %v", dir, patterns, err)
	}
	byPath := make(map[string]*Package, len(pkgs))
	order := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
		order = append(order, p.PkgPath)
	}
	return byPath, order
}

func TestPackagesDependencyOrder(t *testing.T) {
	_, order := loadDag(t, "./...")
	// DFS over path-sorted roots with path-sorted edges yields exactly one
	// schedule for the fixture diamond: the leaf, then its importers in
	// path order.
	want := []string{
		"example.com/dagmod/a",
		"example.com/dagmod/b",
		"example.com/dagmod/c",
		"example.com/dagmod/d",
	}
	if len(order) != len(want) {
		t.Fatalf("loaded %d packages %v, want %d", len(order), order, len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("schedule %v, want %v", order, want)
		}
	}
}

func TestPackagesOrderIsDeterministic(t *testing.T) {
	_, first := loadDag(t, "./...")
	for run := 0; run < 3; run++ {
		_, again := loadDag(t, "./...")
		if len(again) != len(first) {
			t.Fatalf("run %d loaded %v, first run loaded %v", run, again, first)
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("run %d schedule %v differs from first %v", run, again, first)
			}
		}
	}
}

func TestPackagesPullsDepsUnlisted(t *testing.T) {
	byPath, order := loadDag(t, "./c")
	// Naming only the diamond top must still load its module-local
	// dependencies (facts need their summaries) but mark them unlisted so
	// the driver reports no diagnostics on them.
	for _, path := range []string{"example.com/dagmod/a", "example.com/dagmod/b"} {
		dep, ok := byPath[path]
		if !ok {
			t.Fatalf("dependency %s not loaded; got %v", path, order)
		}
		if dep.Listed {
			t.Errorf("dependency %s is marked Listed; only ./c was requested", path)
		}
	}
	top, ok := byPath["example.com/dagmod/c"]
	if !ok || !top.Listed {
		t.Fatalf("requested package c missing or not Listed (ok=%v)", ok)
	}
}

func TestObjectIdentityAcrossPackages(t *testing.T) {
	byPath, _ := loadDag(t, "./...")
	a := byPath["example.com/dagmod/a"]
	b := byPath["example.com/dagmod/b"]
	if a == nil || b == nil || a.Types == nil || b.Info == nil {
		t.Fatal("fixture packages did not type-check")
	}
	def := a.Types.Scope().Lookup("A")
	if def == nil {
		t.Fatal("a.A not found in its defining package scope")
	}
	// The facts store keys on object identity, so the *types.Func b sees
	// for a.A must be the very object a defined — not an equivalent
	// re-import.
	var used types.Object
	for _, obj := range b.Info.Uses {
		if f, ok := obj.(*types.Func); ok && f.Name() == "A" && f.Pkg() != nil && f.Pkg().Path() == "example.com/dagmod/a" {
			used = obj
			break
		}
	}
	if used == nil {
		t.Fatal("b's type info records no use of a.A")
	}
	if used != def {
		t.Errorf("a.A resolves to different objects in a (%p) and b (%p); facts keyed by object would miss", def, used)
	}
}

func TestLoadErrorsAggregatedNotFatal(t *testing.T) {
	dir := filepath.Join("testdata", "badmod")
	pkgs, _, err := Packages(dir, "./...")
	if err != nil {
		t.Fatalf("Packages on a module with a syntax error must not fail outright: %v", err)
	}
	var broken, clean *Package
	for _, p := range pkgs {
		switch p.PkgPath {
		case "example.com/badmod/p":
			broken = p
		case "example.com/badmod/q":
			clean = p
		}
	}
	if broken == nil {
		t.Fatal("package p with the syntax error was dropped from the result")
	}
	if len(broken.LoadErrors) == 0 {
		t.Errorf("package p has a syntax error but no LoadErrors")
	}
	if clean == nil || clean.Types == nil || len(clean.LoadErrors) != 0 {
		t.Errorf("clean sibling q was not fully loaded alongside the broken package (pkg=%v)", clean)
	}
}
