// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis API surface that mrlint's analyzers need.
// The reproduction environment is offline and the module is deliberately
// dependency-free, so instead of pulling in x/tools we provide the same
// Analyzer/Pass/Diagnostic contract over the standard library's go/ast and
// go/types. Analyzers written against this package are source-compatible
// with the upstream framework in everything they do (one Run function per
// package, diagnostics reported through the Pass), so they could be moved
// onto the real multichecker wholesale if the module ever vendors x/tools.
//
// Findings can be suppressed at a specific site with a line comment:
//
//	//mrlint:ignore <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The analyzer
// name may be "all" to silence every analyzer for that line. The reason is
// mandatory by convention (the driver does not parse it, reviewers do).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check: a name (used in diagnostics and
// suppression directives), user-facing documentation, and the Run function
// applied once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position, the analyzer that produced it, and
// a message.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// ignorePrefix introduces a suppression directive comment.
const ignorePrefix = "//mrlint:ignore"

// Suppressions indexes //mrlint:ignore directives of a set of files so the
// driver can filter diagnostics. The zero value suppresses nothing.
type Suppressions struct {
	// byFile maps filename -> line -> set of suppressed analyzer names.
	byFile map[string]map[int]map[string]bool
}

// NewSuppressions scans the comments of files (which must have been parsed
// with comments) and records every directive.
func NewSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byFile: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					s.byFile[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = make(map[string]bool)
				}
				lines[pos.Line][fields[0]] = true
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic from the named analyzer at pos is
// silenced by a directive on its line or the line above.
func (s *Suppressions) Suppressed(fset *token.FileSet, d Diagnostic) bool {
	if s == nil || s.byFile == nil {
		return false
	}
	pos := fset.Position(d.Pos)
	lines, ok := s.byFile[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names, ok := lines[line]; ok {
			if names[d.Category] || names["all"] {
				return true
			}
		}
	}
	return false
}
