// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis API surface that mrlint's analyzers need.
// The reproduction environment is offline and the module is deliberately
// dependency-free, so instead of pulling in x/tools we provide the same
// Analyzer/Pass/Diagnostic contract over the standard library's go/ast and
// go/types. Analyzers written against this package are source-compatible
// with the upstream framework in everything they do (one Run function per
// package, diagnostics reported through the Pass, per-object facts exported
// bottom-up across the package DAG), so they could be moved onto the real
// multichecker wholesale if the module ever vendors x/tools.
//
// # Facts
//
// An analyzer that declares FactTypes participates in cross-package
// propagation: when the driver schedules packages in dependency order (see
// internal/analysis/load), a fact exported on a types.Object while
// analyzing package P is visible through ImportObjectFact to the same
// analyzer when it later runs on any package that imports P. Facts are how
// alloccheck's per-function allocation summaries and atomiccheck's
// atomically-accessed-field markers cross package boundaries. Unlike
// x/tools, facts live in memory for the life of one driver process rather
// than being gob-serialized into export data; the visible semantics are the
// same.
//
// # Suppressions
//
// Findings can be suppressed at a specific site with a line comment:
//
//	//mrlint:ignore <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The analyzer
// name may be "all" to silence every analyzer for that line. The reason is
// mandatory: a directive without one does not suppress anything and is
// itself reported by the driver. Several directives may share one comment
// by repeating the //mrlint:ignore marker.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name (used in diagnostics and
// suppression directives), user-facing documentation, the fact types it
// exchanges across packages (nil for purely local analyzers), and the Run
// function applied once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	// FactTypes declares the pointer types of facts this analyzer may
	// export or import. Like x/tools, exporting or importing an undeclared
	// fact type is a programming error and panics.
	FactTypes []Fact
	Run       func(*Pass) error
}

// Fact is a datum one analyzer attaches to a types.Object in one package
// and reads back while analyzing a dependent package. Implementations must
// be pointer types; the AFact method only marks the type.
type Fact interface{ AFact() }

// ObjectFact pairs an object with one fact attached to it.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// factKey identifies one (object, concrete fact type) slot in the store.
type factKey struct {
	obj types.Object
	typ reflect.Type
}

// Facts is the in-process fact store one driver run shares across every
// (analyzer, package) pass. Object identity is the key, which is why the
// loader must type-check the whole package DAG with a single importer: the
// *types.Func seen by the defining package and by its importers must be
// the same object.
type Facts struct {
	m map[factKey]Fact
	// order records insertion order per analyzer so AllObjectFacts is
	// deterministic without sorting by unstable object pointers.
	order map[*Analyzer][]ObjectFact
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{m: make(map[factKey]Fact), order: make(map[*Analyzer][]ObjectFact)}
}

// Pass carries one package's syntax and type information to an analyzer,
// mirroring x/tools' analysis.Pass. Facts is the driver-wide store; a nil
// Facts makes exports no-ops and imports always miss, so purely local
// analyzers and old tests run unchanged.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
	Facts     *Facts
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// checkFactType panics unless fact's concrete type is a pointer type the
// analyzer declared in FactTypes, matching x/tools' contract.
func (p *Pass) checkFactType(fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: fact %T is not a pointer type", fact))
	}
	for _, ft := range p.Analyzer.FactTypes {
		if reflect.TypeOf(ft) == t {
			return t
		}
	}
	panic(fmt.Sprintf("analysis: analyzer %s did not declare fact type %T in FactTypes", p.Analyzer.Name, fact))
}

// ExportObjectFact attaches fact to obj for later passes of the same
// analyzer on importing packages. A second export of the same fact type on
// the same object overwrites the first.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	t := p.checkFactType(fact)
	if p.Facts == nil || obj == nil {
		return
	}
	key := factKey{obj: obj, typ: t}
	if _, seen := p.Facts.m[key]; !seen {
		p.Facts.order[p.Analyzer] = append(p.Facts.order[p.Analyzer], ObjectFact{Object: obj, Fact: fact})
	} else {
		// Overwrite in place in the ordered log too, so AllObjectFacts
		// reflects the final value exactly once.
		for i, of := range p.Facts.order[p.Analyzer] {
			if of.Object == obj && reflect.TypeOf(of.Fact) == t {
				p.Facts.order[p.Analyzer][i].Fact = fact
				break
			}
		}
	}
	p.Facts.m[key] = fact
}

// ImportObjectFact copies the fact of fact's concrete type previously
// exported on obj into *fact and reports whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	t := p.checkFactType(fact)
	if p.Facts == nil || obj == nil {
		return false
	}
	stored, ok := p.Facts.m[factKey{obj: obj, typ: t}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// AllObjectFacts returns every fact this analyzer has exported so far, in
// export order. The ground-truth tests read analyzer verdicts out of the
// store this way.
func (p *Pass) AllObjectFacts() []ObjectFact {
	if p.Facts == nil {
		return nil
	}
	return append([]ObjectFact(nil), p.Facts.order[p.Analyzer]...)
}

// Diagnostic is one finding: a position, the analyzer that produced it, and
// a message.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// ignorePrefix introduces a suppression directive comment.
const ignorePrefix = "//mrlint:ignore"

// Suppressions indexes //mrlint:ignore directives of a set of files so the
// driver can filter diagnostics. The zero value suppresses nothing.
type Suppressions struct {
	// byFile maps filename -> line -> set of suppressed analyzer names.
	byFile map[string]map[int]map[string]bool
	// malformed records directives that name an analyzer but carry no
	// reason; they suppress nothing and the driver reports them.
	malformed []Diagnostic
}

// NewSuppressions scans the comments of files (which must have been parsed
// with comments) and records every directive. One comment may carry
// several directives by repeating the //mrlint:ignore marker; each
// directive's scope runs to the next marker (or end of comment), so the
// analyzer name is the first field and the rest is its reason. A directive
// with no reason is recorded as malformed and does not suppress.
func NewSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byFile: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.scan(fset, c)
			}
		}
	}
	return s
}

// scan records every directive of one comment. Only comments that begin
// with the marker are directives; a comment merely mentioning
// //mrlint:ignore mid-prose (documentation about the convention) is not.
func (s *Suppressions) scan(fset *token.FileSet, c *ast.Comment) {
	text := c.Text
	if !strings.HasPrefix(text, ignorePrefix) {
		return
	}
	for {
		i := strings.Index(text, ignorePrefix)
		if i < 0 {
			return
		}
		directive := text[i+len(ignorePrefix):]
		text = directive // continue scanning after this marker
		if end := strings.Index(directive, ignorePrefix); end >= 0 {
			directive = directive[:end]
		}
		fields := strings.Fields(directive)
		pos := fset.Position(c.Pos())
		switch {
		case len(fields) == 0:
			s.malformed = append(s.malformed, Diagnostic{
				Pos:      c.Pos(),
				Category: "mrlint",
				Message:  "suppression directive names no analyzer (want //mrlint:ignore <analyzer> <reason>)",
			})
		case len(fields) == 1:
			s.malformed = append(s.malformed, Diagnostic{
				Pos:      c.Pos(),
				Category: "mrlint",
				Message:  fmt.Sprintf("suppression of %q carries no reason; the reason is mandatory and it does not suppress until one is written", fields[0]),
			})
		default:
			lines := s.byFile[pos.Filename]
			if lines == nil {
				lines = make(map[int]map[string]bool)
				s.byFile[pos.Filename] = lines
			}
			if lines[pos.Line] == nil {
				lines[pos.Line] = make(map[string]bool)
			}
			lines[pos.Line][fields[0]] = true
		}
	}
}

// Suppressed reports whether a diagnostic from the named analyzer at pos is
// silenced by a directive on its line or the line above.
func (s *Suppressions) Suppressed(fset *token.FileSet, d Diagnostic) bool {
	if s == nil || s.byFile == nil {
		return false
	}
	pos := fset.Position(d.Pos)
	lines, ok := s.byFile[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names, ok := lines[line]; ok {
			if names[d.Category] || names["all"] {
				return true
			}
		}
	}
	return false
}

// Malformed returns the reason-less directives found during the scan,
// sorted by position. The driver reports them as findings so the
// reason-is-mandatory convention is mechanically enforced, not just
// reviewed.
func (s *Suppressions) Malformed() []Diagnostic {
	if s == nil {
		return nil
	}
	out := append([]Diagnostic(nil), s.malformed...)
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
