package droppederr_test

import (
	"testing"

	"mrtext/internal/analysis/analysistest"
	"mrtext/internal/analysis/droppederr"
)

func TestDroppedErr(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), droppederr.Analyzer, "a")
}
