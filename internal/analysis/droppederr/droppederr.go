// Package droppederr flags silently discarded error returns — the failure
// mode the runtime can least afford on its I/O and spill paths, where a
// swallowed spill-write or block-close error silently loses map output
// while every test stays green.
//
// Flagged:
//
//   - expression statements whose call returns an error that nobody reads,
//     e.g. `f.Close()` or `disk.Remove(name)` on its own line;
//   - assignments that discard an error into the blank identifier,
//     e.g. `_ = w.Close()` or `n, _ := w.Write(p)`.
//
// Exempt (documented escape hatches, mirroring errcheck's defaults):
//
//   - deferred calls (`defer f.Close()`): closecheck owns resource-release
//     auditing, and an error from a deferred cleanup has no error path to
//     join by the time it fires;
//   - `go` statements: the result is unobtainable by construction
//     (goroleak audits those launches instead);
//   - fmt.Print/Printf/Println, and fmt.Fprint* writing to os.Stdout,
//     os.Stderr, a *strings.Builder or a *bytes.Buffer — targets that
//     cannot fail meaningfully;
//   - Write/WriteString/WriteByte/WriteRune on *strings.Builder and
//     *bytes.Buffer (documented to always return a nil error);
//   - Write on hash.Hash implementations (package path hash/* or
//     crypto/*), which never fail per the hash.Hash contract.
//
// Anything else must handle, propagate, join (errors.Join on an existing
// error path) or count (metrics cleanup counters) the error — or carry an
// explicit `//mrlint:ignore droppederr <reason>` directive.
package droppederr

import (
	"go/ast"
	"go/types"
	"strings"

	"mrtext/internal/analysis"
)

// Analyzer is the droppederr analysis.
var Analyzer = &analysis.Analyzer{
	Name: "droppederr",
	Doc:  "flags call results carrying an error that is silently discarded",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				// Exempt the call operand itself, but keep walking its
				// arguments and any function-literal body: errors dropped
				// *inside* a deferred closure are still findings.
				var call *ast.CallExpr
				if d, ok := stmt.(*ast.DeferStmt); ok {
					call = d.Call
				} else {
					call = stmt.(*ast.GoStmt).Call
				}
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool { inspectStmt(pass, m); return true })
				}
				if fl, ok := call.Fun.(*ast.FuncLit); ok {
					ast.Inspect(fl.Body, func(m ast.Node) bool { inspectStmt(pass, m); return true })
				}
				return false
			default:
				inspectStmt(pass, n)
				return true
			}
		})
	}
	return nil
}

// inspectStmt reports n if it is a statement discarding an error.
func inspectStmt(pass *analysis.Pass, n ast.Node) {
	switch stmt := n.(type) {
	case *ast.ExprStmt:
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok || exempt(pass, call) {
			return
		}
		if pos, ok := errResult(pass, call); ok {
			pass.Reportf(call.Pos(), "result %d (error) of %s is silently discarded", pos, callName(call))
		}
	case *ast.AssignStmt:
		checkAssign(pass, stmt)
	}
}

// errResult reports whether call returns an error among its results and the
// index of the first one.
func errResult(pass *analysis.Pass, call *ast.CallExpr) (int, bool) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return 0, false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return i, true
			}
		}
	default:
		if isErrorType(tv.Type) {
			return 0, true
		}
	}
	return 0, false
}

// checkAssign flags error values assigned to the blank identifier.
func checkAssign(pass *analysis.Pass, stmt *ast.AssignStmt) {
	// Case 1: parallel assignment `a, _ = f(), g()` or simple `_ = expr`.
	if len(stmt.Lhs) == len(stmt.Rhs) {
		for i, lhs := range stmt.Lhs {
			if !isBlank(lhs) {
				continue
			}
			rhs := stmt.Rhs[i]
			if call, ok := rhs.(*ast.CallExpr); ok && exempt(pass, call) {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[rhs]; ok && isErrorType(tv.Type) {
				pass.Reportf(lhs.Pos(), "error value of %s is discarded into _", exprName(rhs))
			}
		}
		return
	}
	// Case 2: multi-value call `a, _ := f()`.
	if len(stmt.Rhs) != 1 {
		return
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok || exempt(pass, call) {
		return
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	tuple, ok := tv.Type.(*types.Tuple)
	if !ok || tuple.Len() != len(stmt.Lhs) {
		return
	}
	for i, lhs := range stmt.Lhs {
		if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
			pass.Reportf(lhs.Pos(), "error result of %s is discarded into _", callName(call))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "error" && obj.Pkg() == nil
}

// exempt applies the documented exemption list.
func exempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-level fmt printers.
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && obj.Imported().Path() == "fmt" {
			switch sel.Sel.Name {
			case "Print", "Printf", "Println":
				return true
			case "Fprint", "Fprintf", "Fprintln":
				return len(call.Args) > 0 && benignWriter(pass, call.Args[0])
			}
			return false
		}
	}
	// Methods: identify the receiver's type.
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	recv := tv.Type
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if isBuilderOrBuffer(recv) {
			return true
		}
	}
	if sel.Sel.Name == "Write" && hashLike(recv) {
		return true
	}
	return false
}

// benignWriter reports whether e is os.Stdout, os.Stderr, a
// *strings.Builder or a *bytes.Buffer.
func benignWriter(pass *analysis.Pass, e ast.Expr) bool {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && obj.Imported().Path() == "os" {
				return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
			}
		}
	}
	tv, ok := pass.TypesInfo.Types[e]
	return ok && isBuilderOrBuffer(tv.Type)
}

func isBuilderOrBuffer(t types.Type) bool {
	name := namedPathDotName(t)
	return name == "strings.Builder" || name == "bytes.Buffer"
}

// hashLike reports whether t is declared in a hash/* or crypto/* package
// (hash.Hash implementations never return a write error).
func hashLike(t types.Type) bool {
	name := namedPathDotName(t)
	return strings.HasPrefix(name, "hash/") || strings.HasPrefix(name, "crypto/") ||
		strings.HasPrefix(name, "hash.") || strings.HasPrefix(name, "crypto.")
}

// namedPathDotName renders t (after stripping pointers) as "pkgpath.Name",
// or "" for non-named types.
func namedPathDotName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// callName renders the called function for diagnostics.
func callName(call *ast.CallExpr) string { return exprName(call.Fun) }

func exprName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.CallExpr:
		return exprName(v.Fun)
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if base := exprName(v.X); base != "" {
			return base + "." + v.Sel.Name
		}
		return v.Sel.Name
	case *ast.IndexExpr:
		return exprName(v.X)
	default:
		return "call"
	}
}
