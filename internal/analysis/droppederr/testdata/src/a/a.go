// Package a seeds droppederr violations (positive cases) alongside every
// documented exemption (negative cases).
package a

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
)

func drops(f *os.File) {
	f.Close()            // want `result 0 \(error\) of f.Close is silently discarded`
	_ = f.Close()        // want `error value of f.Close is discarded into _`
	n, _ := f.Write(nil) // want `error result of f.Write is discarded into _`
	_ = n
	os.Remove("x") // want `silently discarded`
}

func dropsInsideDeferredClosure(f *os.File) {
	defer func() {
		f.Close() // want `silently discarded`
	}()
}

func dropsParallel(f *os.File) {
	var n int
	n, _ = 1, f.Close() // want `error value of f.Close is discarded into _`
	_ = n
}

func handled(f *os.File) error {
	defer f.Close() // exempt: deferred cleanup
	var sb strings.Builder
	fmt.Fprintf(&sb, "x")         // exempt: strings.Builder never fails
	fmt.Println("hi")             // exempt: package-level printer
	fmt.Fprintln(os.Stderr, "e")  // exempt: stderr
	fmt.Fprintln(os.Stdout, "o")  // exempt: stdout
	var buf bytes.Buffer
	buf.WriteString("x") // exempt: bytes.Buffer never fails
	h := fnv.New32a()
	h.Write([]byte("k")) // exempt: hash.Hash contract
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func suppressed(f *os.File) {
	//mrlint:ignore droppederr exercised by the driver, not analysistest
	f.Close() // want `silently discarded`
}

func launched(f *os.File) {
	go f.Close() // exempt in droppederr: goroleak audits go statements
}
