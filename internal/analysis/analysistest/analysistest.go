// Package analysistest runs an analyzer over a golden testdata package and
// compares its diagnostics against expectations embedded in the source,
// mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	f()          // want `ignored error`
//	g()          // ok: no comment means no diagnostic expected
//
// A `// want "regexp"` (or backquoted) comment on a line expects exactly one
// diagnostic on that line whose message matches the regexp; repeated want
// clauses on one line expect one diagnostic each. A diagnostic with no
// matching expectation, or an expectation with no diagnostic, fails the
// test. Golden packages live under <analyzer>/testdata/src/<name>/ — the
// testdata path component hides them from go build, go vet and mrlint
// itself, so they may (and should) contain seeded violations.
//
// Facts-based analyzers get cross-package golden tests through RunPkgs: the
// named packages are type-checked in the given order against one another
// (so "dep", "hot" lets hot import dep), the analyzer runs over each with a
// shared fact store, and want comments are checked across the whole tree —
// a diagnostic in a later package may therefore depend on facts exported
// while analyzing an earlier one, exactly like the mrlint driver's
// dependency-ordered schedule.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"mrtext/internal/analysis"
)

// wantRE extracts want clauses from a comment: a double-quoted Go string or
// a backquoted string after the word "want".
var wantRE = regexp.MustCompile("want\\s+(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// expectation is one want clause awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// goldenImporter resolves the golden tree's own packages by name and
// everything else (the standard library) through the source importer.
type goldenImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (g *goldenImporter) Import(path string) (*types.Package, error) {
	if p, ok := g.local[path]; ok {
		return p, nil
	}
	return g.fallback.Import(path)
}

// goldenPkg is one parsed and type-checked golden package.
type goldenPkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// Run loads the golden package at testdata/src/<pkg> beneath testdata,
// applies the analyzer, and reports any mismatch between produced and
// expected diagnostics as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	RunPkgs(t, testdata, a, pkg)
}

// RunPkgs loads the golden packages at testdata/src/<pkg> for each named
// pkg — listed in dependency order, imported packages first — applies the
// analyzer to each in that order with one shared fact store, and reports
// any mismatch between produced and expected diagnostics, across all
// packages, as test errors.
func RunPkgs(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	if len(pkgs) == 0 {
		t.Fatal("analysistest: no packages given")
	}

	fset := token.NewFileSet()
	imp := &goldenImporter{
		local:    make(map[string]*types.Package),
		fallback: importer.ForCompiler(fset, "source", nil),
	}

	var loaded []*goldenPkg
	var allFiles []*ast.File
	for _, pkg := range pkgs {
		g := loadGolden(t, fset, imp, filepath.Join(testdata, "src", pkg), pkg)
		imp.local[pkg] = g.types
		loaded = append(loaded, g)
		allFiles = append(allFiles, g.files...)
	}

	expects := collectWants(t, fset, allFiles)

	facts := analysis.NewFacts()
	var diags []analysis.Diagnostic
	for _, g := range loaded {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     g.files,
			Pkg:       g.types,
			TypesInfo: g.info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			Facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("analysistest: analyzer %s on %s: %v", a.Name, g.types.Path(), err)
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(e.file), e.line, e.pattern)
		}
	}
}

// loadGolden parses and type-checks one golden package directory.
func loadGolden(t *testing.T, fset *token.FileSet, imp types.Importer, dir, pkg string) *goldenPkg {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("analysistest: parsing %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: type-checking %s: %v", dir, err)
	}
	return &goldenPkg{files: files, types: tpkg, info: info}
}

// collectWants scans comments for want clauses.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					lit := m[1]
					var pat string
					if lit[0] == '`' {
						pat = lit[1 : len(lit)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("analysistest: bad want clause %s: %v", lit, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("analysistest: bad want pattern %q: %v", pat, err)
					}
					pos := fset.Position(c.Pos())
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}

// claim marks the first unmatched expectation on (file, line) whose pattern
// matches msg, reporting whether one was found.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.pattern.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// Testdata returns the conventional testdata directory for the caller's
// package, i.e. "./testdata".
func Testdata() string { return "testdata" }
