// Package analysistest runs an analyzer over a golden testdata package and
// compares its diagnostics against expectations embedded in the source,
// mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	f()          // want `ignored error`
//	g()          // ok: no comment means no diagnostic expected
//
// A `// want "regexp"` (or backquoted) comment on a line expects exactly one
// diagnostic on that line whose message matches the regexp; repeated want
// clauses on one line expect one diagnostic each. A diagnostic with no
// matching expectation, or an expectation with no diagnostic, fails the
// test. Golden packages live under <analyzer>/testdata/src/<name>/ — the
// testdata path component hides them from go build, go vet and mrlint
// itself, so they may (and should) contain seeded violations.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"mrtext/internal/analysis"
)

// wantRE extracts want clauses from a comment: a double-quoted Go string or
// a backquoted string after the word "want".
var wantRE = regexp.MustCompile("want\\s+(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// expectation is one want clause awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the golden package at testdata/src/<pkg> beneath testdata,
// applies the analyzer, and reports any mismatch between produced and
// expected diagnostics as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("analysistest: parsing %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: type-checking %s: %v", dir, err)
	}

	expects := collectWants(t, fset, files)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: analyzer %s: %v", a.Name, err)
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(e.file), e.line, e.pattern)
		}
	}
}

// collectWants scans comments for want clauses.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					lit := m[1]
					var pat string
					if lit[0] == '`' {
						pat = lit[1 : len(lit)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("analysistest: bad want clause %s: %v", lit, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("analysistest: bad want pattern %q: %v", pat, err)
					}
					pos := fset.Position(c.Pos())
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}

// claim marks the first unmatched expectation on (file, line) whose pattern
// matches msg, reporting whether one was found.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.pattern.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// Testdata returns the conventional testdata directory for the caller's
// package, i.e. "./testdata".
func Testdata() string { return "testdata" }
