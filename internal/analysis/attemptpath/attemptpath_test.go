package attemptpath_test

import (
	"testing"

	"mrtext/internal/analysis/analysistest"
	"mrtext/internal/analysis/attemptpath"
)

func TestAttemptPath(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), attemptpath.Analyzer, "a")
}
