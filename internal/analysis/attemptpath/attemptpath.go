// Package attemptpath flags task-side file creations whose path bypasses
// the attempt-scoped naming helpers. The fault-tolerant runner relies on
// every task attempt writing under its own attempt-scoped temp name and
// committing by rename: a map or spill routine that opens its output at a
// final (literal or ad-hoc formatted) path breaks idempotent commit — a
// retried or speculative duplicate attempt would clobber the committed
// copy instead of losing the rename race.
//
// Heuristic: inside any function whose lowercased name contains "task" or
// "spill" (the task-side code by the runtime's naming convention), the
// name argument of a file-creating call — a `Create(name, ...)` method
// call, or `NewRunSink(disk, name, ...)` / `NewRunWriter(disk, name, ...)`
// — must trace back to an attempt-scoped origin:
//
//   - a call to an attempt* naming helper (attemptDir, attemptSpillName,
//     attemptMapOutName, attemptReduceTempName, ...), directly or through
//     local variables;
//   - a function parameter (the caller chose the path and is checked at
//     its own call site); or
//   - a selector expression (a field read carries a name the runner
//     already owns, e.g. a committed RunIndex.Name).
//
// String literals, fmt.Sprintf results and locals derived from other
// calls are reported. False positives can be suppressed with
// //mrlint:ignore attemptpath <reason>.
package attemptpath

import (
	"go/ast"
	"go/token"
	"strings"

	"mrtext/internal/analysis"
)

// Analyzer is the attemptpath analysis.
var Analyzer = &analysis.Analyzer{
	Name: "attemptpath",
	Doc:  "flags task-side file writes that bypass the attempt-scoped path helpers",
	Run:  run,
}

// creators maps file-creating callee names to the index of their path
// argument.
var creators = map[string]int{
	"Create":       0,
	"NewRunSink":   1,
	"NewRunWriter": 1,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := strings.ToLower(fn.Name.Name)
			if !strings.Contains(name, "task") && !strings.Contains(name, "spill") {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// checkFunc scans one task-side function (including nested function
// literals, which share its locals and obligations).
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	// Parameters are attempt-derived by fiat: their values are the
	// caller's responsibility.
	derived := make(map[string]bool)
	for _, field := range fn.Type.Params.List {
		for _, id := range field.Names {
			derived[id.Name] = true
		}
	}

	// Single forward pass: track which locals hold attempt-derived
	// strings, and check creator calls as they appear. Source order is a
	// sound approximation here — task code assigns a path before opening
	// it.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if len(v.Lhs) < 1 || len(v.Rhs) < 1 {
				return true
			}
			// x := expr / x = expr: only single-value or matched-arity
			// forms matter for path locals.
			if len(v.Lhs) == len(v.Rhs) {
				for i, lhs := range v.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					if isDerived(v.Rhs[i], derived) {
						derived[id.Name] = true
					} else {
						delete(derived, id.Name)
					}
				}
			}
		case *ast.CallExpr:
			callee, pathIdx := creatorCall(v)
			if callee == "" || pathIdx >= len(v.Args) {
				return true
			}
			if !isDerived(v.Args[pathIdx], derived) {
				pass.Reportf(v.Args[pathIdx].Pos(),
					"task-side %s at a path that bypasses the attempt-scoped helpers; "+
						"derive it from attempt*() or a parameter so duplicate attempts cannot clobber committed output", callee)
			}
		}
		return true
	})
}

// creatorCall reports the creator name and path-argument index of a
// file-creating call, or "" for any other call.
func creatorCall(call *ast.CallExpr) (string, int) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", 0
	}
	idx, ok := creators[name]
	if !ok {
		return "", 0
	}
	return name, idx
}

// isDerived reports whether expr traces back to an attempt-scoped origin.
func isDerived(expr ast.Expr, derived map[string]bool) bool {
	switch v := expr.(type) {
	case *ast.Ident:
		return derived[v.Name]
	case *ast.SelectorExpr:
		// Field reads (out.index.Name, mo.index) carry names the runner
		// already owns.
		return true
	case *ast.CallExpr:
		// attempt* naming helpers are the sanctioned origin; any other
		// call (fmt.Sprintf, filepath.Join, ...) is not.
		switch fun := v.Fun.(type) {
		case *ast.Ident:
			return strings.HasPrefix(fun.Name, "attempt")
		case *ast.SelectorExpr:
			return strings.HasPrefix(fun.Sel.Name, "attempt")
		}
		return false
	case *ast.BinaryExpr:
		// String concatenation keeps a derived path derived ("dir + ext").
		return v.Op == token.ADD && (isDerived(v.X, derived) || isDerived(v.Y, derived))
	case *ast.ParenExpr:
		return isDerived(v.X, derived)
	}
	return false
}
