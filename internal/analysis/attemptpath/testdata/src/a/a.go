// Package a seeds attemptpath golden cases: task-side file creations at
// literal or ad-hoc paths must be flagged; paths derived from attempt*
// helpers, parameters, or field reads must not.
package a

import (
	"fmt"
	"io"
)

type disk interface {
	Create(name string) (io.WriteCloser, error)
}

type fs struct{}

func (fs) Create(name string, node int) (io.WriteCloser, error) { return nil, nil }

type runIndex struct{ Name string }

type mapOutput struct{ index runIndex }

func NewRunSink(d disk, name string, parts int, compressed bool) (io.Closer, error) { return nil, nil }

func NewRunWriter(d disk, name string, parts int) (io.Closer, error) { return nil, nil }

func attemptDir(prefix string, task, attempt int) string { return "" }

func attemptSpillName(dir string, seq int) string { return "" }

func attemptReduceTempName(prefix string, part, attempt int) string { return "" }

// runMapTaskGood derives every created path from the attempt helpers or a
// field read: no findings.
func runMapTaskGood(d disk, out mapOutput, task, attempt int) error {
	dir := attemptDir("wc", task, attempt)
	name := attemptSpillName(dir, 0)
	if _, err := NewRunSink(d, name, 4, false); err != nil {
		return err
	}
	if _, err := NewRunWriter(d, dir+"/out", 4); err != nil {
		return err
	}
	if _, err := d.Create(out.index.Name); err != nil {
		return err
	}
	return nil
}

// writeSpillRun takes the path as a parameter: the caller owns it.
func writeSpillRun(d disk, name string, parts int) error {
	_, err := NewRunWriter(d, name, parts)
	return err
}

// runMapTaskBad opens outputs at literal and formatted paths.
func runMapTaskBad(d disk, f fs, task, attempt int) error {
	if _, err := d.Create("m00001/out"); err != nil { // want `bypasses the attempt-scoped helpers`
		return err
	}
	name := fmt.Sprintf("m%05d/out", task)
	if _, err := NewRunSink(d, name, 4, false); err != nil { // want `bypasses the attempt-scoped helpers`
		return err
	}
	tmp := attemptReduceTempName("wc", task, attempt)
	tmp = "final-name"                          // reassignment loses the attempt-scoped origin
	if _, err := f.Create(tmp, 0); err != nil { // want `bypasses the attempt-scoped helpers`
		return err
	}
	return nil
}

// spillDirect seeds the NewRunWriter literal-path case in a "spill"
// function.
func spillDirect(d disk) error {
	_, err := NewRunWriter(d, "spill0000", 4) // want `bypasses the attempt-scoped helpers`
	return err
}

// loadCorpus is not task-side code: literal paths are fine here.
func loadCorpus(d disk) error {
	_, err := d.Create("corpus.txt")
	return err
}
