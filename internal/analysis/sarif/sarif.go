// Package sarif renders mrlint findings as a minimal SARIF 2.1.0 log —
// the Static Analysis Results Interchange Format GitHub code scanning and
// most CI dashboards ingest. Only the slice of the (large) SARIF schema
// that carries mrlint's information is modeled: one run, one tool driver
// with a rule per analyzer, and one result per finding with a physical
// location. Everything here marshals with encoding/json; the structural
// test in this package pins the shape consumers depend on.
package sarif

import (
	"encoding/json"
	"io"
)

// SchemaURI is the published SARIF 2.1.0 JSON schema location.
const SchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

// Version is the SARIF spec version this package emits.
const Version = "2.1.0"

// Log is the top-level SARIF document.
type Log struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []Run  `json:"runs"`
}

// Run is one invocation of one tool.
type Run struct {
	Tool    Tool     `json:"tool"`
	Results []Result `json:"results"`
}

// Tool wraps the driver description.
type Tool struct {
	Driver Driver `json:"driver"`
}

// Driver identifies the tool and declares its rules.
type Driver struct {
	Name           string `json:"name"`
	InformationURI string `json:"informationUri,omitempty"`
	Rules          []Rule `json:"rules"`
}

// Rule describes one analyzer.
type Rule struct {
	ID               string  `json:"id"`
	ShortDescription Message `json:"shortDescription"`
}

// Message is SARIF's text wrapper.
type Message struct {
	Text string `json:"text"`
}

// Result is one finding.
type Result struct {
	RuleID    string     `json:"ruleId"`
	Level     string     `json:"level"`
	Message   Message    `json:"message"`
	Locations []Location `json:"locations"`
}

// Location wraps a physical location.
type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

// PhysicalLocation is a file position.
type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           Region           `json:"region"`
}

// ArtifactLocation names the file.
type ArtifactLocation struct {
	URI string `json:"uri"`
}

// Region is the position inside the file.
type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// NewLog assembles a single-run log for the named tool.
func NewLog(tool string, rules []Rule, results []Result) *Log {
	// SARIF requires both properties even when empty.
	if rules == nil {
		rules = []Rule{}
	}
	if results == nil {
		results = []Result{}
	}
	return &Log{
		Schema:  SchemaURI,
		Version: Version,
		Runs: []Run{{
			Tool:    Tool{Driver: Driver{Name: tool, Rules: rules}},
			Results: results,
		}},
	}
}

// NewResult builds one warning-level result at file:line:col.
func NewResult(rule, message, file string, line, col int) Result {
	return Result{
		RuleID:  rule,
		Level:   "warning",
		Message: Message{Text: message},
		Locations: []Location{{
			PhysicalLocation: PhysicalLocation{
				ArtifactLocation: ArtifactLocation{URI: file},
				Region:           Region{StartLine: line, StartColumn: col},
			},
		}},
	}
}

// Write marshals the log, indented, to w.
func (l *Log) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}
