package sarif_test

// The structural test: the emitted document is decoded back through
// generic JSON (not this package's own structs) and checked against the
// SARIF 2.1.0 shape consumers navigate — runs[0].tool.driver.rules and
// results[*].ruleId/message/locations[0].physicalLocation.{artifactLocation,region}.

import (
	"bytes"
	"encoding/json"
	"testing"

	"mrtext/internal/analysis/sarif"
)

// dig walks nested maps/arrays by string key or integer index.
func dig(t *testing.T, v any, path ...any) any {
	t.Helper()
	for _, step := range path {
		switch s := step.(type) {
		case string:
			m, ok := v.(map[string]any)
			if !ok {
				t.Fatalf("sarif: expected object at %v, got %T", step, v)
			}
			v, ok = m[s]
			if !ok {
				t.Fatalf("sarif: missing property %q", s)
			}
		case int:
			a, ok := v.([]any)
			if !ok || s >= len(a) {
				t.Fatalf("sarif: expected array with index %d, got %T (len issue?)", s, v)
			}
			v = a[s]
		}
	}
	return v
}

func TestLogShape(t *testing.T) {
	log := sarif.NewLog("mrlint",
		[]sarif.Rule{
			{ID: "alloccheck", ShortDescription: sarif.Message{Text: "flags allocations on the hot path"}},
			{ID: "atomiccheck", ShortDescription: sarif.Message{Text: "flags mixed atomic access"}},
		},
		[]sarif.Result{
			sarif.NewResult("alloccheck", "hot path: make allocates", "internal/kvio/packed.go", 42, 7),
		},
	)

	var buf bytes.Buffer
	if err := log.Write(&buf); err != nil {
		t.Fatalf("writing log: %v", err)
	}
	var doc any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}

	if got := dig(t, doc, "version"); got != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", got)
	}
	if got := dig(t, doc, "$schema"); got != sarif.SchemaURI {
		t.Errorf("$schema = %v, want %v", got, sarif.SchemaURI)
	}
	if got := dig(t, doc, "runs", 0, "tool", "driver", "name"); got != "mrlint" {
		t.Errorf("driver name = %v, want mrlint", got)
	}
	if got := dig(t, doc, "runs", 0, "tool", "driver", "rules", 0, "id"); got != "alloccheck" {
		t.Errorf("first rule id = %v, want alloccheck", got)
	}
	if got := dig(t, doc, "runs", 0, "tool", "driver", "rules", 1, "shortDescription", "text"); got == "" {
		t.Error("rule shortDescription.text must be non-empty")
	}

	res := dig(t, doc, "runs", 0, "results", 0)
	if got := dig(t, res, "ruleId"); got != "alloccheck" {
		t.Errorf("result ruleId = %v", got)
	}
	if got := dig(t, res, "level"); got != "warning" {
		t.Errorf("result level = %v", got)
	}
	if got := dig(t, res, "message", "text"); got != "hot path: make allocates" {
		t.Errorf("result message = %v", got)
	}
	if got := dig(t, res, "locations", 0, "physicalLocation", "artifactLocation", "uri"); got != "internal/kvio/packed.go" {
		t.Errorf("result uri = %v", got)
	}
	if got := dig(t, res, "locations", 0, "physicalLocation", "region", "startLine"); got != float64(42) {
		t.Errorf("result startLine = %v", got)
	}
}

// TestEmptyResults: a clean run still carries a results array — SARIF
// consumers reject a missing property.
func TestEmptyResults(t *testing.T) {
	log := sarif.NewLog("mrlint", nil, nil)
	var buf bytes.Buffer
	if err := log.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	results, ok := dig(t, doc, "runs", 0, "results").([]any)
	if !ok || len(results) != 0 {
		t.Errorf("results = %v, want present empty array", results)
	}
}
