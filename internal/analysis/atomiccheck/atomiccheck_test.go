package atomiccheck_test

import (
	"testing"

	"mrtext/internal/analysis/analysistest"
	"mrtext/internal/analysis/atomiccheck"
)

func TestAtomiccheck(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), atomiccheck.Analyzer, "a")
}

// TestAtomiccheckCrossPackage: the plain access in use is flagged only via
// the fact exported while analyzing decl.
func TestAtomiccheckCrossPackage(t *testing.T) {
	analysistest.RunPkgs(t, analysistest.Testdata(), atomiccheck.Analyzer, "decl", "use")
}
