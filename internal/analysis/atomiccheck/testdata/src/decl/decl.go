// Package decl declares a counter whose field is maintained with
// sync/atomic; the AtomicallyAccessed fact exported here must reach
// package use through the fact store.
package decl

import "sync/atomic"

type Counter struct {
	N int64
}

// Inc is the atomic side of the protocol.
func Inc(c *Counter) {
	atomic.AddInt64(&c.N, 1)
}
