// Package a is the single-package golden corpus for atomiccheck.
package a

import "sync/atomic"

type stats struct {
	hits   int64 // accessed atomically and plainly: every plain access flagged
	misses int64 // accessed only plainly: never flagged
}

func bump(s *stats) {
	atomic.AddInt64(&s.hits, 1)
	s.misses++
}

func read(s *stats) int64 {
	return s.hits // want `field hits is accessed with sync/atomic elsewhere; this plain access mixes atomic and non-atomic use`
}

func write(s *stats) {
	s.hits = 0 // want `field hits is accessed with sync/atomic elsewhere`
	_ = s.misses
}

func readAtomically(s *stats) int64 {
	return atomic.LoadInt64(&s.hits) // consistent: no finding
}
