// Package use reads decl's counter plainly; the diagnostic depends
// entirely on the fact exported while analyzing decl.
package use

import "decl"

func Peek(c *decl.Counter) int64 {
	return c.N // want `field N is accessed with sync/atomic elsewhere; this plain access mixes atomic and non-atomic use`
}
