// Package atomiccheck flags struct fields that are accessed through
// sync/atomic in one place and with a plain load or store in another —
// the mixed-access pattern that silently downgrades an atomic protocol
// into a data race. The repo's own counters use the typed atomic.Int64
// family precisely to make this impossible; this analyzer covers the code
// (and future code) that reaches for the raw atomic functions instead.
//
// It is the second consumer of the facts machinery: analyzing the package
// that declares a struct and calls atomic.AddInt64(&s.n, 1) exports an
// AtomicallyAccessed fact on the field object, and a plain s.n read in any
// importing package is reported against that fact — same schedule, same
// store, same object identity as alloccheck. Facts flow with imports only:
// a plain access compiled before the atomic one is declared (in a package
// the declaring one does not import) is out of reach, as in x/tools.
package atomiccheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"mrtext/internal/analysis"
)

// AtomicallyAccessed is the fact exported on every struct field some
// analyzed package passes to a sync/atomic function.
type AtomicallyAccessed struct{}

// AFact marks AtomicallyAccessed as a fact type.
func (*AtomicallyAccessed) AFact() {}

// Analyzer is the atomiccheck analysis.
var Analyzer = &analysis.Analyzer{
	Name:      "atomiccheck",
	Doc:       "flags plain accesses to struct fields that are accessed with sync/atomic elsewhere, across packages via facts",
	FactTypes: []analysis.Fact{new(AtomicallyAccessed)},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: find every &x.f argument to a sync/atomic call. The field is
	// marked (locally and as a fact), and that selector expression itself
	// is remembered so pass 2 does not report the atomic site as a plain
	// access.
	marked := make(map[*types.Var]bool)
	atomicSite := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				se, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := fieldOf(pass, se); fld != nil {
					atomicSite[se] = true
					if !marked[fld] {
						marked[fld] = true
						pass.ExportObjectFact(fld, &AtomicallyAccessed{})
					}
				}
			}
			return true
		})
	}

	// Pass 2: report every other access to a marked field — marked in this
	// package or, via the fact store, in any package this one imports.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSite[se] {
				return true
			}
			fld := fieldOf(pass, se)
			if fld == nil {
				return true
			}
			var fact AtomicallyAccessed
			if marked[fld] || pass.ImportObjectFact(fld, &fact) {
				pass.Reportf(se.Pos(), "field %s is accessed with sync/atomic elsewhere; this plain access mixes atomic and non-atomic use", fld.Name())
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call statically targets a sync/atomic
// package function.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// fieldOf resolves se to the struct field it selects, or nil.
func fieldOf(pass *analysis.Pass, se *ast.SelectorExpr) *types.Var {
	sel, ok := pass.TypesInfo.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return nil
	}
	v, ok := sel.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
