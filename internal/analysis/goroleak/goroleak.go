// Package goroleak flags `go` statements that launch a goroutine whose
// lifetime is not visibly tied to any completion mechanism. The runtime's
// own pattern — a map task's support goroutine, the runner's per-slot
// workers — always couples the launch to a sync.WaitGroup, a done/err
// channel, or a context.Context; a goroutine with none of those is
// unjoinable: task teardown cannot wait for it, its failure cannot be
// observed, and under load it accumulates (the classic leaked-goroutine
// production failure).
//
// Heuristic: inspect the launched call. For a function literal, scan its
// body and arguments; for a named function or method, scan the arguments
// and the receiver. If any referenced value is a context.Context, a
// sync.WaitGroup (or pointer to one), or any channel type, the launch is
// considered tied. Otherwise it is reported. Launches that are genuinely
// fire-and-forget can say so with //mrlint:ignore goroleak <reason>.
package goroleak

import (
	"go/ast"
	"go/types"

	"mrtext/internal/analysis"
)

// Analyzer is the goroleak analysis.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "flags goroutine launches not tied to a WaitGroup, channel or context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !tied(pass, g.Call) {
				pass.Reportf(g.Pos(), "goroutine lifetime is not tied to a WaitGroup, channel or context")
			}
			return true
		})
	}
	return nil
}

// tied reports whether the launched call references a lifetime mechanism.
func tied(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	consider := func(e ast.Node) {
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[expr]; ok && lifetimeType(tv.Type) {
				found = true
				return false
			}
			return true
		})
	}
	for _, arg := range call.Args {
		consider(arg)
	}
	switch fn := call.Fun.(type) {
	case *ast.FuncLit:
		consider(fn.Body)
	case *ast.SelectorExpr:
		consider(fn.X) // method launch: the receiver may own the mechanism
	}
	return found
}

// lifetimeType reports whether t is a channel, sync.WaitGroup (or pointer),
// context.Context, or a struct that owns one of those (the method-launch
// pattern `go s.loop()` where the receiver carries its own done channel).
func lifetimeType(t types.Type) bool {
	return lifetime(t, make(map[types.Type]bool))
}

func lifetime(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			full := obj.Pkg().Path() + "." + obj.Name()
			if full == "sync.WaitGroup" || full == "context.Context" {
				return true
			}
		}
	}
	if st, ok := t.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if lifetime(st.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
