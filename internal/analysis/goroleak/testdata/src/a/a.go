// Package a seeds goroleak violations: goroutines launched with no visible
// lifetime mechanism, next to the runtime's legitimate launch patterns.
package a

import (
	"context"
	"sync"
)

func leakLiteral() {
	go func() { println("orphan") }() // want `goroutine lifetime is not tied`
}

func leakNamed() {
	go helper(42) // want `goroutine lifetime is not tied`
}

func helper(int) {}

func tiedWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // ok: joined via WaitGroup
		defer wg.Done()
	}()
	wg.Wait()
}

func tiedErrChannel() {
	errc := make(chan error, 1)
	go func() { // ok: completion observable on errc
		errc <- nil
	}()
	<-errc
}

func tiedContext(ctx context.Context) {
	go watch(ctx) // ok: cancellable via ctx
}

func watch(ctx context.Context) { <-ctx.Done() }

func tiedChanArg() {
	done := make(chan struct{})
	go signal(done) // ok: channel passed to the goroutine
	<-done
}

func signal(done chan struct{}) { close(done) }

type server struct {
	quit chan struct{}
}

func (s *server) start() {
	go s.loop() // ok: receiver owns the quit channel
}

func (s *server) loop() { <-s.quit }
