package goroleak_test

import (
	"testing"

	"mrtext/internal/analysis/analysistest"
	"mrtext/internal/analysis/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), goroleak.Analyzer, "a")
}
