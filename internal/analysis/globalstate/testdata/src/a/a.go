// Package a is the golden corpus for globalstate.
package a

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Error sentinels are write-once by convention: exempt.
var errDone = errors.New("done")

var errWrapped = fmt.Errorf("wrapped: %w", errDone)

// Everything else at package level is shared mutable state.
var counter int64 // want `package-level var counter is mutable shared state`

var seq atomic.Int64 // want `package-level var seq is mutable shared state`

var registry = map[string]int{} // want `package-level var registry is mutable shared state`

var once sync.Once // want `package-level var once is mutable shared state`

var hook = func() {} // want `package-level var hook is mutable shared state`

// Grouped declarations are checked name by name.
var (
	errGroup = errors.New("grouped sentinel")
	state    []int // want `package-level var state is mutable shared state`
)

// A non-sentinel error var (not initialized by a constructor) is still
// flagged: it is assignable shared state, not a sentinel.
var lastErr error // want `package-level var lastErr is mutable shared state`

// Blank names are ignored.
var _ = counter

func use() {
	_ = errWrapped
	_ = errGroup
	once.Do(hook)
	seq.Add(counter)
	registry["k"] = len(state)
	lastErr = errDone
}
