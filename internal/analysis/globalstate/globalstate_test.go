package globalstate_test

import (
	"testing"

	"mrtext/internal/analysis/analysistest"
	"mrtext/internal/analysis/globalstate"
)

func TestGlobalstate(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), globalstate.Analyzer, "a")
}
