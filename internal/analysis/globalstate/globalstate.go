// Package globalstate flags package-level mutable state in the packages
// the driver scopes it to (the mr runtime). The runtime's concurrency
// contract is that one cluster hosts many concurrent jobs with no state
// bleed between them: per-job state lives on the Job, per-run metrics in
// Job.Hists, tracing in Job.Trace. A package-level var is exactly the
// kind of shared slot that silently breaks that contract (the
// trace.Default and package-histogram bleed this PR removed), so every
// new one must either not exist or carry an explicit
// //mrlint:ignore globalstate <reason> arguing why it cannot carry state
// between jobs.
//
// Error sentinels — package-level vars of type error initialized with
// errors.New or fmt.Errorf — are exempt: they are write-once by
// convention and exist so callers can errors.Is against them.
package globalstate

import (
	"go/ast"
	"go/token"
	"go/types"

	"mrtext/internal/analysis"
)

// Analyzer is the globalstate analysis.
var Analyzer = &analysis.Analyzer{
	Name: "globalstate",
	Doc:  "flags package-level mutable state in the runtime packages; per-job state must live on the Job, not in shared package slots",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					if isErrorSentinel(pass, vs, i) {
						continue
					}
					pass.Reportf(name.Pos(),
						"package-level var %s is mutable shared state; scope it to the Job (or suppress with a reason why it cannot bleed state between jobs)",
						name.Name)
				}
			}
		}
	}
	return nil
}

// isErrorSentinel reports whether the i-th name of vs is an error-typed
// var initialized with errors.New or fmt.Errorf.
func isErrorSentinel(pass *analysis.Pass, vs *ast.ValueSpec, i int) bool {
	obj, ok := pass.TypesInfo.Defs[vs.Names[i]].(*types.Var)
	if !ok || obj.Type() == nil {
		return false
	}
	if !types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
		return false
	}
	if len(vs.Values) <= i {
		return false
	}
	call, ok := ast.Unparen(vs.Values[i]).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() + "." + fn.Name() {
	case "errors.New", "fmt.Errorf":
		return true
	}
	return false
}
