// Package spancheck flags trace spans that are started but never ended.
// A span opened with trace.Tracer.Start (or a Start*-named wrapper) only
// reaches the ring buffer when one of its End* methods runs; a forgotten
// End silently drops the interval from the exported timeline, which shows
// up as an inexplicable hole in the Perfetto view rather than a failure.
//
// Heuristic: a short-variable declaration `s := x.Start*(...)` (any callee
// whose name begins with "start", case-insensitively) whose static type is
// a named type called "Span" is tracked through the function body. The
// obligation is satisfied if any End*-named method is called on s —
// directly, deferred, or inside a nested closure — or if s escapes: passed
// to a call, returned, assigned elsewhere, placed in a composite literal,
// or sent on a channel. Like closecheck, the type is matched structurally
// (named "Span" with an End method) so the analyzer needs no import of the
// runtime's trace package and golden tests can define their own Span.
// Path-sensitivity (an End missing on one early-return branch) is out of
// scope.
package spancheck

import (
	"go/ast"
	"go/types"
	"strings"

	"mrtext/internal/analysis"
)

// Analyzer is the spancheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "spancheck",
	Doc:  "flags trace spans that are started but never ended or handed off",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkBody(pass, body)
			}
			return true
		})
	}
	return nil
}

// tracked is one span-typed local awaiting an End or an escape.
type tracked struct {
	obj       types.Object
	declPos   ast.Expr
	satisfied bool
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var spans []*tracked

	// Collect candidates: s := x.Start*(...) with Span-typed s.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false // nested function literals get their own checkBody
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok.String() != ":=" || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !startNamed(call) {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil || !isSpan(obj.Type()) {
				continue
			}
			spans = append(spans, &tracked{obj: obj, declPos: lhs})
		}
		return true
	})
	if len(spans) == 0 {
		return
	}

	byObj := make(map[types.Object]*tracked, len(spans))
	for _, t := range spans {
		byObj[t.obj] = t
	}
	lookup := func(e ast.Expr) *tracked {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		return byObj[pass.TypesInfo.Uses[id]]
	}

	// Scan for satisfying uses, including inside nested closures (a
	// deferred func() { s.End() } discharges the obligation).
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			// s.End() / s.EndCounts(...) satisfies s; s as an argument
			// escapes s. Other method calls on s do neither.
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				if t := lookup(sel.X); t != nil {
					if strings.HasPrefix(sel.Sel.Name, "End") {
						t.satisfied = true
					}
					return true
				}
			}
			for _, arg := range v.Args {
				if t := lookup(arg); t != nil {
					t.satisfied = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if t := lookup(r); t != nil {
					t.satisfied = true
				}
			}
		case *ast.AssignStmt:
			if v.Tok.String() == ":=" {
				return true
			}
			for _, r := range v.Rhs {
				if t := lookup(r); t != nil {
					t.satisfied = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if t := lookup(el); t != nil {
					t.satisfied = true
				}
			}
		case *ast.SendStmt:
			if t := lookup(v.Value); t != nil {
				t.satisfied = true
			}
		}
		return true
	})

	for _, t := range spans {
		if !t.satisfied {
			pass.Reportf(t.declPos.Pos(), "span %s is started but never ended or handed off", t.obj.Name())
		}
	}
}

// startNamed reports whether the call's callee is named start/Start with
// any suffix (Start, StartSpan, startSpan, start, ...).
func startNamed(call *ast.CallExpr) bool {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	case *ast.Ident:
		name = fn.Name
	default:
		return false
	}
	return strings.HasPrefix(strings.ToLower(name), "start")
}

// isSpan reports whether t is (a pointer to) a named type called "Span"
// that has a method whose name begins with "End".
func isSpan(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Span" {
		return false
	}
	return hasEndMethod(types.NewMethodSet(named)) ||
		hasEndMethod(types.NewMethodSet(types.NewPointer(named)))
}

func hasEndMethod(ms *types.MethodSet) bool {
	for i := 0; i < ms.Len(); i++ {
		if strings.HasPrefix(ms.At(i).Obj().Name(), "End") {
			return true
		}
	}
	return false
}
