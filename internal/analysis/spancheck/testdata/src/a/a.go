// Package a seeds spancheck violations: started spans that are abandoned,
// next to every legitimate way of discharging the obligation. The local
// Span/Tracer types stand in for the runtime's trace package, which the
// golden harness cannot import.
package a

// Span mirrors trace.Span structurally: a named type called Span with
// End*-prefixed methods.
type Span struct{ open bool }

func (s Span) End()                        {}
func (s Span) EndCounts(records, bs int64) {}
func (s Span) Note(msg string)             {}

// Tracer mirrors trace.Tracer's Start entry points.
type Tracer struct{}

func (t *Tracer) Start(kind int) Span      { return Span{open: true} }
func (t *Tracer) StartSpan(kind int) Span  { return Span{open: true} }
func (t *Tracer) startLower(kind int) Span { return Span{open: true} }

// Other returns a Span but is not Start-named: out of scope.
func (t *Tracer) Other() Span { return Span{} }

func leak(tr *Tracer) {
	s := tr.Start(1) // want `span s is started but never ended or handed off`
	s.Note("working")
}

func leakWrapper(tr *Tracer) {
	s := tr.startLower(2) // want `span s is started but never ended or handed off`
	_ = s.open
}

func endedDirectly(tr *Tracer) {
	s := tr.Start(1)
	s.End() // ok
}

func endedWithCounts(tr *Tracer) {
	s := tr.StartSpan(1)
	s.EndCounts(10, 20) // ok
}

func endedDeferred(tr *Tracer) {
	s := tr.Start(1)
	defer s.End() // ok
}

func endedInClosure(tr *Tracer) {
	s := tr.Start(1)
	end := func() { s.EndCounts(1, 2) } // ok: ended inside the closure
	defer end()
}

func handedOffReturn(tr *Tracer) Span {
	s := tr.Start(1)
	return s // ok: caller owns the end
}

func handedOffArg(tr *Tracer) {
	s := tr.Start(1)
	finish(s) // ok: callee owns the end
}

func finish(s Span) { s.End() }

type holder struct{ s Span }

func handedOffStruct(tr *Tracer) holder {
	s := tr.Start(1)
	return holder{s: s} // ok: escapes via composite literal
}

func handedOffAssign(tr *Tracer, dst *holder) {
	s := tr.Start(1)
	dst.s = s // ok: escapes via assignment
}

func notStartNamed(tr *Tracer) {
	s := tr.Other() // ok: not a Start* call, out of scope
	_ = s
}

func blankIsIgnored(tr *Tracer) {
	_ = tr.Start(1) // ok: blank identifier is never tracked
}
