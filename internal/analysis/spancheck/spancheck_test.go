package spancheck_test

import (
	"testing"

	"mrtext/internal/analysis/analysistest"
	"mrtext/internal/analysis/spancheck"
)

func TestSpanCheck(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), spancheck.Analyzer, "a")
}
