// Package doccheck flags exported identifiers that have no doc comment.
// The runtime's public surface — internal/mr and internal/kvio, the two
// packages other code programs against — is documented API, and an
// exported name that ships without a comment silently erodes that
// contract; the driver scopes this analyzer to those packages so golden
// tests and scratch code elsewhere stay unaffected.
//
// Flagged:
//
//   - exported top-level functions without a doc comment;
//   - exported methods on exported receiver types without a doc comment;
//   - exported type, var and const declarations where neither the
//     individual spec nor its enclosing declaration group carries a doc
//     comment (a documented group covers its members, matching the
//     factored-declaration idiom godoc renders). Only leading doc
//     comments count; a trailing line comment is not documentation.
//
// Not flagged: unexported identifiers, methods on unexported types
// (unreachable surface), struct fields and interface methods (godoc
// renders them under their documented parent), and test files (the driver
// does not load them).
package doccheck

import (
	"go/ast"

	"mrtext/internal/analysis"
)

// Analyzer is the doccheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "doccheck",
	Doc:  "flags exported identifiers that are missing a doc comment",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, d)
			case *ast.GenDecl:
				checkGen(pass, d)
			}
		}
	}
	return nil
}

// checkFunc reports an exported function or method with no doc comment.
func checkFunc(pass *analysis.Pass, d *ast.FuncDecl) {
	if !ast.IsExported(d.Name.Name) || d.Doc.Text() != "" {
		return
	}
	if d.Recv != nil {
		recv, ok := receiverName(d.Recv)
		if !ok || !ast.IsExported(recv) {
			return
		}
		pass.Reportf(d.Name.Pos(), "exported method %s.%s is missing a doc comment", recv, d.Name.Name)
		return
	}
	pass.Reportf(d.Name.Pos(), "exported function %s is missing a doc comment", d.Name.Name)
}

// checkGen reports exported type/var/const specs documented neither on the
// spec nor on the enclosing declaration group.
func checkGen(pass *analysis.Pass, d *ast.GenDecl) {
	if d.Doc.Text() != "" {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if ast.IsExported(s.Name.Name) && s.Doc.Text() == "" {
				pass.Reportf(s.Name.Pos(), "exported type %s is missing a doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc.Text() != "" {
				continue
			}
			for _, name := range s.Names {
				if ast.IsExported(name.Name) {
					pass.Reportf(name.Pos(), "exported %s %s is missing a doc comment", d.Tok, name.Name)
				}
			}
		}
	}
}

// receiverName extracts the receiver's base type name, unwrapping a
// pointer and generic type parameters.
func receiverName(recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "", false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.IndexExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name, true
		}
	case *ast.IndexListExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name, true
		}
	}
	return "", false
}
