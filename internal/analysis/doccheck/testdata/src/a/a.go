// Package a is the doccheck golden corpus: exported names with and
// without doc comments, in every declaration shape the analyzer handles.
package a

// Documented is a documented exported function: no finding.
func Documented() {}

func Undocumented() {} // want `exported function Undocumented is missing a doc comment`

func unexported() {}

// DocumentedType is a documented exported type: no finding.
type DocumentedType struct{}

type UndocumentedType struct{} // want `exported type UndocumentedType is missing a doc comment`

type unexportedType struct{}

// Method is documented: no finding.
func (DocumentedType) Method() {}

func (*DocumentedType) Undoc() {} // want `exported method DocumentedType.Undoc is missing a doc comment`

// Methods on unexported receivers are not exported surface: no finding
// even without a comment.
func (unexportedType) Exported() {}

func (unexportedType) helper() {}

// DocumentedConst is documented on the spec: no finding.
const DocumentedConst = 1

const UndocumentedConst = 2 // want `exported const UndocumentedConst is missing a doc comment`

// A documented group covers every member: no findings inside.
const (
	GroupedA = iota
	GroupedB
)

const (
	// PerSpecDoc is documented on its own spec: no finding.
	PerSpecDoc = iota
	BareInGroup // want `exported const BareInGroup is missing a doc comment`
)

var Exported int // want `exported var Exported is missing a doc comment`

// Both vars share the group comment: no findings.
var (
	SharedA int
	SharedB int
)

var unexportedVar int
