package doccheck_test

import (
	"testing"

	"mrtext/internal/analysis/analysistest"
	"mrtext/internal/analysis/doccheck"
)

func TestDocCheck(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), doccheck.Analyzer, "a")
}
