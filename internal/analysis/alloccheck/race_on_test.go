//go:build race

package alloccheck_test

// See race_off_test.go.
const raceEnabled = true
