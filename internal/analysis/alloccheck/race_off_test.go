//go:build !race

package alloccheck_test

// raceEnabled relaxes the alloc-free assertions of the ground-truth test:
// the race detector's instrumentation perturbs allocation counts, so under
// -race only the "allocating fixtures do allocate" direction is asserted.
const raceEnabled = false
