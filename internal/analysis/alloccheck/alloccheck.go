// Package alloccheck statically enforces the allocation discipline the
// paper's measurements rest on: the per-record map/spill/merge path must
// not heap-allocate. PR 2 proved the spill path dynamically (7→0
// allocs/record); this analyzer is the static half of that loop — it stops
// the next change from quietly reintroducing a byte↔string conversion or an
// interface boxing into a hot loop, in the spirit of Jahani & Cafarella's
// "Automatic Optimization for MapReduce Programs" (analyze user code to
// remove abstraction costs).
//
// # Contract
//
// A function opts in by carrying the directive
//
//	//mrlint:hotpath
//
// on its own line inside the doc comment. Inside a hot function every
// allocating construct is reported, and — via per-function facts computed
// bottom-up over the package DAG — so is every call to a function that
// allocates, no matter how many packages away the actual allocation sits;
// the diagnostic at the call site names the offending chain.
//
// # Allocation model
//
// Flagged as allocating:
//
//   - conversions between []byte/[]rune and string (they copy), except in
//     contexts the compiler provably optimizes: a map access key (read,
//     not write), an operand of a comparison, a switch tag, a range
//     expression, an argument to len/cap/delete, and an argument to a
//     function whose corresponding parameter is known not to escape
//     (EscapesParams fact, or the curated stdlib predicate table) — the
//     compiler stack-allocates those for short inputs (≤ 32 bytes);
//   - interface boxing: a non-constant value of non-pointer-shaped
//     concrete type passed where an interface (including any) is expected,
//     at call sites, returns, and explicit conversions;
//   - every fmt.* call (formatting boxes through ...any and buffers);
//   - closures that capture variables (the context escapes), unless
//     immediately invoked;
//   - map and slice composite literals, &T{...} literals, make and new;
//   - append, unless the destination evidently has caller- or
//     self-managed capacity: a parameter, a struct field, an x[:0]
//     reslice, or a variable assigned from make with an explicit capacity
//     in the same function (amortized growth of a reused buffer counts as
//     alloc-free, matching what testing.AllocsPerRun observes in steady
//     state; make as append's spread argument is the compiler-recognized
//     extend idiom and exempt);
//   - calls to functions whose summary says they allocate — same-package
//     summaries are computed on demand, cross-package ones arrive as
//     Allocates facts.
//
// Known model limits, accepted on purpose: calls through interfaces or
// func values and calls into not-analyzed packages are trusted not to
// allocate unless the curated table says otherwise (the runtime's hot
// loops call concrete code the driver loads, so in practice the summaries
// cover them); the ≤ 32-byte bound on stack-allocated conversions is the
// caller's to respect; path sensitivity (an allocation on a cold error
// branch inside a hot function) is out of scope — cold branches carry an
// //mrlint:ignore alloccheck directive with the reason instead. The model
// is validated, not asserted: the ground-truth test cross-checks every
// verdict against testing.AllocsPerRun over the allocfix fixture corpus.
package alloccheck

import (
	"go/ast"
	"go/types"
	"strings"

	"mrtext/internal/analysis"
)

// hotDirective marks a function as being on the measured hot path.
const hotDirective = "//mrlint:hotpath"

// Allocates is the fact exported on every analyzed function that may heap
// allocate per call. Why carries the first offending construct with its
// position and, for transitive verdicts, the call chain down to it.
type Allocates struct {
	Why string
}

// AFact marks Allocates as a fact type.
func (*Allocates) AFact() {}

// AllocFree is the fact exported on every analyzed function the model
// proves allocation-free, distinguishing "analyzed and clean" from "never
// analyzed" when mrlint runs on a package subset.
type AllocFree struct{}

// AFact marks AllocFree as a fact type.
func (*AllocFree) AFact() {}

// EscapesParams is the fact recording which of a function's parameters
// (0-based, receiver excluded) may escape to the heap. A parameter absent
// from Escaping is known non-escaping, which lets callers pass it a
// byte↔string conversion without paying an allocation.
type EscapesParams struct {
	Escaping []int
}

// AFact marks EscapesParams as a fact type.
func (*EscapesParams) AFact() {}

// Analyzer is the alloccheck analysis.
var Analyzer = &analysis.Analyzer{
	Name:      "alloccheck",
	Doc:       "flags heap-allocating constructs in //mrlint:hotpath functions, following calls across packages via facts",
	FactTypes: []analysis.Fact{new(Allocates), new(AllocFree), new(EscapesParams)},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	a := &analyzer{
		pass:      pass,
		decls:     make(map[*types.Func]*ast.FuncDecl),
		summaries: make(map[*types.Func]*summary),
		// Suppressions are consulted while summarizing, not only while
		// reporting: a site carrying a reasoned //mrlint:ignore alloccheck
		// directive is excluded from the function's exported fact too, so
		// the written reason vouches for callers as well.
		supp: analysis.NewSuppressions(pass.Fset, pass.Files),
	}
	// Collect this package's function declarations in file order so the
	// summary pass and fact export are deterministic.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && obj != nil {
				a.decls[obj] = fd
				a.order = append(a.order, obj)
			}
		}
	}

	// Bottom-up summary pass: summarize every function (the local call
	// graph is walked on demand) and export the verdicts as facts for the
	// packages that import this one.
	for _, obj := range a.order {
		s := a.summarize(obj)
		if s.allocates() {
			pass.ExportObjectFact(obj, &Allocates{Why: s.why()})
		} else {
			pass.ExportObjectFact(obj, &AllocFree{})
		}
		if len(s.escaping) > 0 {
			pass.ExportObjectFact(obj, &EscapesParams{Escaping: s.escaping})
		}
	}

	// Reporting pass: every allocation site inside a hot function, with
	// transitive calls reported at the call site with their chain.
	for _, obj := range a.order {
		fd := a.decls[obj]
		if !isHot(fd) {
			continue
		}
		for _, site := range a.summaries[obj].sites {
			if site.callee != nil {
				pass.Reportf(site.pos, "hot path: call to %s allocates: %s", site.desc, site.calleeWhy)
			} else {
				pass.Reportf(site.pos, "hot path: %s", site.desc)
			}
		}
	}
	return nil
}

// isHot reports whether the function's doc comment carries the
// //mrlint:hotpath directive on a line of its own.
func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotDirective {
			return true
		}
	}
	return false
}
