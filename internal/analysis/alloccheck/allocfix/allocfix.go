// Package allocfix is the ground-truth fixture corpus for alloccheck: a
// set of small functions whose runtime allocation behaviour is measured
// with testing.AllocsPerRun and compared against the analyzer's static
// verdict. The functions are deliberately idiomatic — each one is a shape
// that occurs in the repo's real hot paths — so a model drift shows up as
// a test failure here before it mis-reports real code.
//
// Conventions the harness relies on: boxed integers are ≥ 256 (smaller
// values hit the runtime's static box cache and never allocate), byte
// inputs fed to exempt conversions stay ≤ 32 bytes (the compiler's
// stack-conversion buffer), and reused buffers are pre-sized by the
// harness, measuring the steady state like the repo's own benchmarks do.
package allocfix

import "fmt"

// SumBytes is allocation-free: a pure loop over its input.
func SumBytes(b []byte) int {
	n := 0
	for _, c := range b {
		n += int(c)
	}
	return n
}

// FindComma is allocation-free: a scan with no conversions.
func FindComma(b []byte) int {
	for i, c := range b {
		if c == ',' {
			return i
		}
	}
	return -1
}

// CompareKey is allocation-free: the conversion feeds a comparison, which
// the compiler evaluates without materializing the string.
func CompareKey(b []byte, s string) bool {
	return string(b) == s
}

// CountWord is allocation-free: the conversion is a map read key, the
// canonical optimized lookup.
func CountWord(m map[string]int, b []byte) int {
	return m[string(b)]
}

// AppendKV is allocation-free in steady state: both appends write into the
// caller's buffer.
func AppendKV(dst, k, v []byte) []byte {
	dst = append(dst, k...)
	dst = append(dst, v...)
	return dst
}

// Pad is allocation-free in steady state: make in append's spread position
// is the compiler's extend idiom and writes into dst's capacity.
func Pad(dst []byte, n int) []byte {
	return append(dst, make([]byte, n)...)
}

// ToString allocates: the converted string escapes through the return.
func ToString(b []byte) string {
	return string(b)
}

// ToBytes allocates: the other copying direction.
func ToBytes(s string) []byte {
	return []byte(s)
}

// BoxInt allocates: a concrete int boxed into an interface return.
func BoxInt(n int) any {
	return n
}

// Format allocates: every fmt call does.
func Format(n int) string {
	return fmt.Sprintf("%d", n)
}

// Collect allocates: append with no evident capacity grows the backing
// array.
func Collect(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

type counter struct{ n int }

// NewCounter allocates: &composite literal.
func NewCounter() *counter {
	return &counter{}
}

// Capture allocates: the returned closure carries its context.
func Capture(n int) func() int {
	return func() int { return n }
}

// PairUp allocates: a slice literal per call.
func PairUp(k, v string) []string {
	return []string{k, v}
}
