package alloccheck

// Curated standard-library knowledge. The model trusts unknown callees not
// to allocate (the alternative — flagging every stdlib call — would bury
// the real findings), so the functions the repo's hot paths actually meet
// that DO allocate are listed here explicitly, and the pure predicates the
// conversion exemption relies on are vouched for by name. Both tables are
// deliberately small: every entry is a function someone checked against the
// current standard library, not a guess.

// allocStdlib maps "import/path.Name" of standard-library functions known
// to allocate per call to a short reason appended to the diagnostic.
var allocStdlib = map[string]string{
	// bufio: the per-line convenience readers return freshly copied slices.
	"bufio.ReadBytes":  "returns a newly allocated copy per call",
	"bufio.ReadString": "returns a newly allocated string per call",

	// bytes/strings: splitters and case-mappers build new backing arrays.
	"bytes.Fields":    "allocates the slice of subslices",
	"strings.Fields":  "allocates the slice of substrings",
	"bytes.Split":     "allocates the slice of subslices",
	"strings.Split":   "allocates the slice of substrings",
	"bytes.Join":      "allocates the joined buffer",
	"strings.Join":    "allocates the joined string",
	"bytes.Repeat":    "allocates the repeated buffer",
	"strings.Repeat":  "allocates the repeated string",
	"bytes.Clone":     "exists to allocate a copy",
	"strings.Clone":   "exists to allocate a copy",
	"bytes.ToLower":   "allocates the mapped copy",
	"strings.ToLower": "allocates the mapped copy",
	"bytes.ToUpper":   "allocates the mapped copy",
	"strings.ToUpper": "allocates the mapped copy",

	// whole-input readers.
	"io.ReadAll":  "buffers the entire input",
	"os.ReadFile": "buffers the entire file",

	// strconv: the formatting direction allocates its result. The parsing
	// direction (ParseInt, Atoi) and the Append* family (which write into
	// the caller's buffer) do not, and are deliberately absent — as is
	// encoding/binary's Append* family the spill writers use.
	"strconv.Itoa":      "allocates the formatted string",
	"strconv.FormatInt": "allocates the formatted string",
	"strconv.Quote":     "allocates the quoted string",
}

// nonEscapingStdlib names standard-library pure predicates whose parameters
// do not escape, so a string(b) / []byte(s) conversion argument to them is
// stack-allocated for short inputs. Only read-only predicates belong here —
// anything that could retain its argument must stay out.
var nonEscapingStdlib = map[string]bool{
	"bytes.Equal":       true,
	"strings.EqualFold": true,
	"bytes.EqualFold":   true,
	"bytes.Compare":     true,
	"strings.Compare":   true,
	"bytes.Contains":    true,
	"strings.Contains":  true,
	"bytes.HasPrefix":   true,
	"strings.HasPrefix": true,
	"bytes.HasSuffix":   true,
	"strings.HasSuffix": true,
	"bytes.Count":       true,
	"strings.Count":     true,
	"bytes.Index":       true,
	"strings.Index":     true,
	"bytes.IndexByte":   true,
	"strings.IndexByte": true,
	"bytes.LastIndex":   true,
	"strings.LastIndex": true,
}
