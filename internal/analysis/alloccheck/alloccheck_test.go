package alloccheck_test

import (
	"testing"

	"mrtext/internal/analysis/alloccheck"
	"mrtext/internal/analysis/analysistest"
)

func TestAlloccheck(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), alloccheck.Analyzer, "a")
}

// TestAlloccheckCrossPackage analyzes dep then hot with a shared fact
// store; hot's expectations only hold if dep's facts propagated.
func TestAlloccheckCrossPackage(t *testing.T) {
	analysistest.RunPkgs(t, analysistest.Testdata(), alloccheck.Analyzer, "dep", "hot")
}
