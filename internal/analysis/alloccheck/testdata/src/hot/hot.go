// Package hot imports dep and exercises fact propagation: the diagnostics
// below depend entirely on Allocates / AllocFree / EscapesParams facts
// exported while the analyzer ran on dep.
package hot

import "dep"

// fill calls an allocating function from another package; the chain in the
// message names the root cause inside dep.
//
//mrlint:hotpath
func fill(dst []byte) []byte {
	return append(dst, dep.Scratch()...) // want `hot path: call to dep\.Scratch allocates: make allocates \(dep\.go:\d+\)`
}

// wrap picks up a transitive conversion verdict.
//
//mrlint:hotpath
func wrap(b []byte) string {
	return dep.Wrap(b) // want `hot path: call to dep\.Wrap allocates: conversion from \[\]byte to string allocates \(dep\.go:\d+\)`
}

// probe: dep.Sum is alloc-free with a non-escaping parameter, so both the
// call and the conversion feeding it are clean.
//
//mrlint:hotpath
func probe(s string) int {
	return dep.Sum([]byte(s))
}

// retain: dep.Keep's parameter escapes (EscapesParams fact), so the same
// conversion shape is flagged here.
//
//mrlint:hotpath
func retain(b []byte) {
	_ = dep.Keep(string(b)) // want `hot path: conversion from \[\]byte to string allocates`
}
