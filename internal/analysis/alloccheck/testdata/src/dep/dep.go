// Package dep is the defining side of the cross-package golden test: its
// allocation and escape facts must reach package hot through the shared
// fact store, never by re-analyzing this source.
package dep

// Scratch allocates a fresh buffer per call.
func Scratch() []byte {
	return make([]byte, 64)
}

// Wrap allocates through an escaping conversion.
func Wrap(b []byte) string {
	return string(b)
}

// Sum is allocation-free and its parameter does not escape.
func Sum(b []byte) int {
	n := 0
	for _, c := range b {
		n += int(c)
	}
	return n
}

// Keep is allocation-free but its parameter escapes via the return.
func Keep(s string) string {
	return s
}
