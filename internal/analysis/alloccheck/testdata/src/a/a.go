// Package a is the single-package golden corpus for alloccheck: every
// construct class in the allocation model appears once in a hot function
// (expecting a diagnostic) and once in an exempt form (expecting none).
package a

import (
	"bytes"
	"fmt"
)

type pair struct{ k, v int }

// helper allocates; hot callers are flagged at the call site.
func helper() []int {
	return []int{1, 2, 3}
}

// scratch's one allocation carries a reasoned suppression, so the function
// summarizes as allocation-free and hot callers stay clean.
func scratch() []byte {
	//mrlint:ignore alloccheck cold setup path, sized once per run
	return make([]byte, 64)
}

// look's parameter does not escape, so conversions feeding it are free.
func look(s string) bool { return len(s) > 3 }

// retain's parameter escapes through the return.
func retain(s string) string { return s }

// hotCalls exercises transitive local reporting and suppression vouching.
//
//mrlint:hotpath
func hotCalls() {
	_ = helper() // want `hot path: call to a\.helper allocates: slice literal allocates \(a\.go:\d+\)`
	_ = scratch()
}

// hotArgs exercises escape-aware conversion exemption at call arguments.
//
//mrlint:hotpath
func hotArgs(b []byte) {
	_ = look(string(b))
	_ = retain(string(b)) // want `hot path: conversion from \[\]byte to string allocates`
}

// hotStd exercises the curated stdlib tables.
//
//mrlint:hotpath
func hotStd(b []byte, s string) bool {
	return bytes.Equal(b, []byte(s))
}

// hotFields calls a known-allocating stdlib function.
//
//mrlint:hotpath
func hotFields(b []byte) [][]byte {
	return bytes.Fields(b) // want `hot path: bytes\.Fields allocates the slice of subslices`
}

// hotFmt: all fmt calls allocate.
//
//mrlint:hotpath
func hotFmt(n int) string {
	return fmt.Sprintf("%d", n) // want `hot path: fmt\.Sprintf call allocates`
}

// hotBox boxes a concrete int into an interface return.
//
//mrlint:hotpath
func hotBox(n int) any {
	return n // want `hot path: interface boxing of int in return`
}

func sink(v any) { _ = v }

// hotSink exercises boxing at call sites: variables box, constants and
// pointer-shaped values do not.
//
//mrlint:hotpath
func hotSink(n int) {
	sink(n) // want `hot path: interface boxing of int argument`
	sink(42)
	sink(&n)
}

// hotLits: composite literals, make and new.
//
//mrlint:hotpath
func hotLits() {
	_ = []int{1}         // want `hot path: slice literal allocates`
	_ = map[string]int{} // want `hot path: map literal allocates`
	_ = &pair{}          // want `hot path: &composite literal allocates`
	_ = make([]byte, 8)  // want `hot path: make allocates`
	_ = new(int)         // want `hot path: new allocates`
}

// hotAppendBad grows a capacity-less local.
//
//mrlint:hotpath
func hotAppendBad(b byte) {
	var local []byte
	local = append(local, b) // want `hot path: append without evident capacity may grow the backing array`
	_ = local
}

// hotAppendOK: parameter destinations, [:0] reslices and the make-spread
// extend idiom are all exempt.
//
//mrlint:hotpath
func hotAppendOK(dst []byte, b byte) []byte {
	dst = append(dst, b)
	dst = append(dst[:0], b)
	return append(dst, make([]byte, 4)...)
}

// hotReuse amortizes one reasoned allocation across the loop.
//
//mrlint:hotpath
func hotReuse(n int, b byte) int {
	//mrlint:ignore alloccheck buffer sized once per call, outside the measured loop
	buf := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, b)
	}
	return len(buf)
}

// hotClosure returns a capturing closure.
//
//mrlint:hotpath
func hotClosure(n int) func() int {
	return func() int { return n } // want `hot path: closure capturing n allocates its context`
}

// hotIIFE: an immediately invoked literal never outlives the call.
//
//mrlint:hotpath
func hotIIFE(n int) int {
	total := 0
	func() { total += n }()
	return total
}

// hotExempt: every compiler-optimized conversion context in one place.
//
//mrlint:hotpath
func hotExempt(m map[string]int, b []byte, s string) int {
	n := m[string(b)]
	if string(b) == s {
		n++
	}
	switch string(b) {
	case "x":
		n++
	}
	for range string(b) {
		n++
	}
	n += len(string(b))
	delete(m, string(b))
	return n
}

// hotConvBad: map writes are not the optimized direction, and escaping
// conversions copy.
//
//mrlint:hotpath
func hotConvBad(m map[string]int, b []byte) string {
	m[string(b)] = 1 // want `hot path: conversion from \[\]byte to string allocates`
	m[string(b)]++   // want `hot path: conversion from \[\]byte to string allocates`
	return string(b) // want `hot path: conversion from \[\]byte to string allocates`
}

// hotToBytes: the other copying direction.
//
//mrlint:hotpath
func hotToBytes(s string) []byte {
	return []byte(s) // want `hot path: conversion from string to \[\]byte allocates`
}

type closer interface{ close() }

// hotIface: dynamic dispatch is trusted clean by the model.
//
//mrlint:hotpath
func hotIface(c closer) {
	c.close()
}
