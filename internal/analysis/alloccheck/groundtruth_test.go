package alloccheck_test

// The ground-truth test: alloccheck's static verdict for every exported
// fixture in allocfix is cross-checked against testing.AllocsPerRun. The
// allocation model is documented in the package comment; this test is what
// keeps the documentation honest when the compiler or the model moves.

import (
	"go/types"
	"testing"

	"mrtext/internal/analysis"
	"mrtext/internal/analysis/alloccheck"
	"mrtext/internal/analysis/alloccheck/allocfix"
	"mrtext/internal/analysis/load"
)

const allocfixPath = "mrtext/internal/analysis/alloccheck/allocfix"

// Global sinks keep fixture results live so the compiler cannot optimize
// the measured call away.
var (
	gi int
	gb []byte
	gs string
	ga any
	gf func() int
	gp []string
	gx bool
)

// staticVerdicts runs alloccheck over allocfix (loaded exactly like the
// mrlint driver loads real packages) and returns exported-function name →
// allocates.
func staticVerdicts(t *testing.T) map[string]bool {
	t.Helper()
	pkgs, fset, err := load.Packages(".", allocfixPath)
	if err != nil {
		t.Fatalf("loading allocfix: %v", err)
	}
	facts := analysis.NewFacts()
	verdicts := make(map[string]bool)
	for _, p := range pkgs {
		if len(p.LoadErrors) > 0 || p.Types == nil {
			t.Fatalf("allocfix did not load cleanly: %v", p.LoadErrors)
		}
		pass := &analysis.Pass{
			Analyzer:  alloccheck.Analyzer,
			Fset:      fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
			Report:    func(analysis.Diagnostic) {},
			Facts:     facts,
		}
		if err := alloccheck.Analyzer.Run(pass); err != nil {
			t.Fatalf("alloccheck on %s: %v", p.PkgPath, err)
		}
		if p.PkgPath != allocfixPath {
			continue
		}
		for _, of := range pass.AllObjectFacts() {
			fn, ok := of.Object.(*types.Func)
			if !ok || fn.Pkg() != p.Types || !fn.Exported() {
				continue
			}
			switch of.Fact.(type) {
			case *alloccheck.Allocates:
				verdicts[fn.Name()] = true
			case *alloccheck.AllocFree:
				verdicts[fn.Name()] = false
			}
		}
	}
	return verdicts
}

func TestGroundTruth(t *testing.T) {
	// Steady-state inputs: boxed ints ≥ 256 (below that the runtime's
	// static box cache hides the allocation), exempt-conversion inputs
	// ≤ 32 bytes (the compiler's stack buffer), reused buffers pre-sized.
	key := []byte("abcdefgh")
	data := []byte("hello,world")
	words := map[string]int{"abcdefgh": 3}
	buf := make([]byte, 0, 4096)

	// One runtime harness per exported fixture.
	harness := map[string]func(){
		"SumBytes":   func() { gi = allocfix.SumBytes(data) },
		"FindComma":  func() { gi = allocfix.FindComma(data) },
		"CompareKey": func() { gx = allocfix.CompareKey(key, "abcdefgh") },
		"CountWord":  func() { gi = allocfix.CountWord(words, key) },
		"AppendKV":   func() { gb = allocfix.AppendKV(buf[:0], key, data) },
		"Pad":        func() { gb = allocfix.Pad(buf[:0], 16) },
		"ToString":   func() { gs = allocfix.ToString(data) },
		"ToBytes":    func() { gb = allocfix.ToBytes("hello,world") },
		"BoxInt":     func() { ga = allocfix.BoxInt(300) },
		"Format":     func() { gs = allocfix.Format(12345) },
		"Collect":    func() { gi = len(allocfix.Collect(64)) },
		"NewCounter": func() { ga = allocfix.NewCounter() },
		"Capture":    func() { gf = allocfix.Capture(300) },
		"PairUp":     func() { gp = allocfix.PairUp("k", "v") },
	}

	verdicts := staticVerdicts(t)
	if len(verdicts) != len(harness) {
		t.Errorf("analyzer produced %d verdicts for %d fixtures — every exported fixture needs both a verdict and a harness", len(verdicts), len(harness))
	}
	allocating, free := 0, 0
	for name, wantAlloc := range verdicts {
		fn, ok := harness[name]
		if !ok {
			t.Errorf("fixture %s has a verdict but no runtime harness", name)
			continue
		}
		if wantAlloc {
			allocating++
		} else {
			free++
		}
		got := testing.AllocsPerRun(200, fn)
		switch {
		case wantAlloc && got == 0:
			t.Errorf("%s: analyzer says allocates, AllocsPerRun measured 0", name)
		case !wantAlloc && got != 0 && !raceEnabled:
			t.Errorf("%s: analyzer says allocation-free, AllocsPerRun measured %v", name, got)
		}
	}
	// The corpus must stay big and balanced enough to mean something.
	if allocating < 5 || free < 5 {
		t.Errorf("fixture corpus too thin: %d allocating, %d free (want ≥5 of each)", allocating, free)
	}
}
