package alloccheck

// Per-function allocation summaries: a bottom-up walk over each function
// body classifying allocating constructs, memoized across the package's
// local call graph and exported as facts for importing packages. The same
// site list drives both the facts (does this function allocate, and why)
// and the diagnostics inside //mrlint:hotpath functions.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"mrtext/internal/analysis"
)

// site is one allocating construct inside a function body.
type site struct {
	pos  token.Pos
	desc string // human description; for transitive calls, the callee's qualified name
	// callee is non-nil when the site is a call to an allocating function;
	// calleeWhy then carries the callee's chain down to the real
	// allocation.
	callee    *types.Func
	calleeWhy string
}

// summary is the allocation verdict for one function.
type summary struct {
	sites    []site
	escaping []int  // parameter indices that may escape
	whyStr   string // first site, formatted with its position and chain
}

// allocates reports whether the function may heap-allocate per call.
func (s *summary) allocates() bool { return len(s.sites) > 0 }

// why returns the first offending construct with position and chain.
func (s *summary) why() string { return s.whyStr }

// analyzer carries one package's summary pass.
type analyzer struct {
	pass      *analysis.Pass
	decls     map[*types.Func]*ast.FuncDecl
	order     []*types.Func
	summaries map[*types.Func]*summary
	supp      *analysis.Suppressions
}

// context is the per-function-body exemption state, precomputed before
// site collection.
type context struct {
	// exemptConv marks byte↔string conversions in compiler-optimized
	// positions (map read key, comparison operand, switch tag, range
	// expression, len/cap/delete argument, non-escaping call argument).
	exemptConv map[*ast.CallExpr]bool
	// exemptMake marks make calls in append's spread position — the
	// compiler-recognized `append(s, make([]T, n)...)` extend idiom.
	exemptMake map[*ast.CallExpr]bool
	// lhsIndex marks index expressions that are assignment or ++/--
	// targets; a map write's key conversion is not optimized.
	lhsIndex map[*ast.IndexExpr]bool
	// invoked marks immediately-called function literals, whose context
	// never outlives the call.
	invoked map[*ast.FuncLit]bool
	// capOK marks variables with evident capacity: assigned from a make
	// with an explicit capacity or from an x[:0] reslice.
	capOK map[*types.Var]bool
	// params holds the function's parameters (and receiver): appending to
	// them is the caller's amortization to manage.
	params map[*types.Var]bool
	// paramIndex maps a parameter object to its 0-based index (receiver
	// excluded) for the escape fact.
	paramIndex map[*types.Var]int
}

// summarize computes (and memoizes) the summary of a function declared in
// this package. Recursion through the local call graph is cycle-safe: a
// function already being summarized reports as allocation-free for the
// back edge, so self-recursive hot loops don't flag themselves.
func (a *analyzer) summarize(obj *types.Func) *summary {
	if s, ok := a.summaries[obj]; ok {
		return s
	}
	s := &summary{}
	a.summaries[obj] = s // placeholder breaks cycles
	fd := a.decls[obj]
	if fd == nil || fd.Body == nil {
		return s
	}
	ctx := a.newContext(fd)
	sig, _ := obj.Type().(*types.Signature)
	a.walkBody(fd.Body, sig, ctx, s)
	a.computeEscapes(fd, sig, s)
	a.finalize(s)
	return s
}

// finalize renders the summary's why chain from its first site.
func (a *analyzer) finalize(s *summary) {
	if len(s.sites) == 0 {
		return
	}
	st := s.sites[0]
	pos := a.shortPos(st.pos)
	if st.callee != nil {
		s.whyStr = "calls " + st.desc + " (" + pos + ") → " + st.calleeWhy
	} else {
		s.whyStr = st.desc + " (" + pos + ")"
	}
	// Cap runaway chains; the head names the hot call, the tail the root
	// cause, everything between is navigation.
	if len(s.whyStr) > 300 {
		s.whyStr = s.whyStr[:300] + "…"
	}
}

// shortPos renders pos as file.go:line.
func (a *analyzer) shortPos(pos token.Pos) string {
	p := a.pass.Fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + itoa(p.Line)
}

// itoa avoids strconv for a tiny positive int (keeps this file's own hot
// loop honest).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// add records a site unless an inline //mrlint:ignore alloccheck directive
// suppresses it. A suppressed site is excluded from the function's
// exported summary on purpose: the written reason vouches for the path
// (cold branch, amortized growth), so callers of the function are not
// flagged for it either.
func (a *analyzer) add(s *summary, st site) {
	if a.supp.Suppressed(a.pass.Fset, analysis.Diagnostic{Pos: st.pos, Category: "alloccheck"}) {
		return
	}
	s.sites = append(s.sites, st)
}

// newContext precomputes the exemption state of one function body.
func (a *analyzer) newContext(fd *ast.FuncDecl) *context {
	ctx := &context{
		exemptConv: make(map[*ast.CallExpr]bool),
		exemptMake: make(map[*ast.CallExpr]bool),
		lhsIndex:   make(map[*ast.IndexExpr]bool),
		invoked:    make(map[*ast.FuncLit]bool),
		capOK:      make(map[*types.Var]bool),
		params:     make(map[*types.Var]bool),
		paramIndex: make(map[*types.Var]int),
	}
	if obj, ok := a.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok {
			if recv := sig.Recv(); recv != nil {
				ctx.params[recv] = true
			}
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				ctx.params[p] = true
				ctx.paramIndex[p] = i
			}
		}
	}

	// First walk: write targets, capacity evidence, immediate invocation.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					ctx.lhsIndex[ix] = true
				}
			}
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						if v, ok := a.objOf(id).(*types.Var); ok && a.capEvident(rhs) {
							ctx.capOK[v] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				ctx.lhsIndex[ix] = true
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, rhs := range n.Values {
					if v, ok := a.pass.TypesInfo.Defs[n.Names[i]].(*types.Var); ok && a.capEvident(rhs) {
						ctx.capOK[v] = true
					}
				}
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				ctx.invoked[lit] = true
			}
		}
		return true
	})

	// Second walk: conversion contexts the compiler optimizes.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if !ctx.lhsIndex[n] {
				if _, ok := a.typeOf(n.X).Underlying().(*types.Map); ok {
					a.markConvExempt(ctx, n.Index)
				}
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				a.markConvExempt(ctx, n.X)
				a.markConvExempt(ctx, n.Y)
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				a.markConvExempt(ctx, n.Tag)
			}
		case *ast.RangeStmt:
			a.markConvExempt(ctx, n.X)
		case *ast.CallExpr:
			a.markCallContexts(ctx, n)
		}
		return true
	})
	return ctx
}

// capEvident reports whether rhs evidently reuses or pre-sizes capacity: a
// make with an explicit capacity argument, an x[:0] reslice, or an append
// into an x[:0] reslice.
func (a *analyzer) capEvident(rhs ast.Expr) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if a.builtinName(e) == "make" && len(e.Args) == 3 {
			return true
		}
		if a.builtinName(e) == "append" && len(e.Args) > 0 {
			if se, ok := ast.Unparen(e.Args[0]).(*ast.SliceExpr); ok {
				return isZeroHigh(se)
			}
		}
	case *ast.SliceExpr:
		return isZeroHigh(e)
	}
	return false
}

// isZeroHigh reports whether se is an x[...:0] reslice — the buffer-reuse
// idiom.
func isZeroHigh(se *ast.SliceExpr) bool {
	if se.High == nil {
		return false
	}
	lit, ok := ast.Unparen(se.High).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// markCallContexts handles conversion exemptions granted by a call: len,
// cap and delete arguments; make in append's spread position; and
// arguments to functions whose corresponding parameter is known not to
// escape.
func (a *analyzer) markCallContexts(ctx *context, call *ast.CallExpr) {
	switch a.builtinName(call) {
	case "len", "cap":
		if len(call.Args) == 1 {
			a.markConvExempt(ctx, call.Args[0])
		}
		return
	case "delete":
		if len(call.Args) == 2 {
			a.markConvExempt(ctx, call.Args[1])
		}
		return
	case "append":
		if call.Ellipsis.IsValid() && len(call.Args) > 0 {
			if mk, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.CallExpr); ok && a.builtinName(mk) == "make" {
				ctx.exemptMake[mk] = true
			}
		}
		return
	case "":
		// not a builtin: fall through to the escape-aware argument check
	default:
		return
	}
	callee := a.staticCallee(call)
	for i, arg := range call.Args {
		if conv, kind := a.byteStringConv(arg); conv != nil && kind != "" {
			if !a.paramEscapes(callee, call, i) {
				ctx.exemptConv[conv] = true
			}
		}
	}
}

// markConvExempt records e as exempt when it is a byte↔string conversion.
func (a *analyzer) markConvExempt(ctx *context, e ast.Expr) {
	if conv, kind := a.byteStringConv(e); conv != nil && kind != "" {
		ctx.exemptConv[conv] = true
	}
}

// byteStringConv returns (call, description) when e is a conversion
// between string and []byte/[]rune (or an integer-to-string conversion),
// the copying conversions this analyzer tracks.
func (a *analyzer) byteStringConv(e ast.Expr) (*ast.CallExpr, string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, ""
	}
	tv, ok := a.pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, ""
	}
	dst := tv.Type.Underlying()
	src := a.typeOf(call.Args[0]).Underlying()
	switch {
	case isString(dst) && isByteOrRuneSlice(src):
		return call, "conversion from " + types.TypeString(a.typeOf(call.Args[0]), nil) + " to string"
	case isByteOrRuneSlice(dst) && isString(src):
		return call, "conversion from string to " + types.TypeString(tv.Type, nil)
	case isString(dst) && isInteger(src):
		return call, "integer-to-string conversion"
	}
	return call, ""
}

// walkBody collects allocation sites in one body; sig is the enclosing
// function's signature (for return boxing), and nested literals recurse
// with their own.
func (a *analyzer) walkBody(body *ast.BlockStmt, sig *types.Signature, ctx *context, s *summary) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if name, captures := a.captures(n); captures && !ctx.invoked[n] {
				a.add(s, site{pos: n.Pos(), desc: "closure capturing " + name + " allocates its context"})
			}
			if lsig, ok := a.typeOf(n).(*types.Signature); ok {
				a.walkBody(n.Body, lsig, ctx, s)
			}
			return false
		case *ast.ReturnStmt:
			a.checkReturn(n, sig, s)
		case *ast.CallExpr:
			a.checkCall(n, ctx, s)
		case *ast.CompositeLit:
			switch a.typeOf(n).Underlying().(type) {
			case *types.Slice:
				a.add(s, site{pos: n.Pos(), desc: "slice literal allocates"})
			case *types.Map:
				a.add(s, site{pos: n.Pos(), desc: "map literal allocates"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					a.add(s, site{pos: n.Pos(), desc: "&composite literal allocates"})
				}
			}
		}
		return true
	})
}

// checkReturn flags interface boxing of concrete returned values.
func (a *analyzer) checkReturn(ret *ast.ReturnStmt, sig *types.Signature, s *summary) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return // naked return or multi-value call: nothing concrete to pin
	}
	for i, expr := range ret.Results {
		rt := sig.Results().At(i).Type()
		if a.boxes(expr, rt) {
			a.add(s, site{pos: expr.Pos(), desc: "interface boxing of " + types.TypeString(a.typeOf(expr), nil) + " in return"})
		}
	}
}

// checkCall classifies one call expression: conversion, builtin, known
// allocator, summarized callee, and interface boxing of arguments.
func (a *analyzer) checkCall(call *ast.CallExpr, ctx *context, s *summary) {
	// Conversions.
	if tv, ok := a.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if conv, kind := a.byteStringConv(call); conv != nil && kind != "" {
			if !ctx.exemptConv[call] {
				a.add(s, site{pos: call.Pos(), desc: kind + " allocates"})
			}
			return
		}
		if len(call.Args) == 1 && types.IsInterface(tv.Type.Underlying()) && a.boxes(call.Args[0], tv.Type) {
			a.add(s, site{pos: call.Pos(), desc: "interface boxing of " + types.TypeString(a.typeOf(call.Args[0]), nil)})
		}
		return
	}

	// Builtins.
	switch a.builtinName(call) {
	case "append":
		if !a.appendExempt(call, ctx) {
			a.add(s, site{pos: call.Pos(), desc: "append without evident capacity may grow the backing array"})
		}
		return
	case "make":
		if !ctx.exemptMake[call] {
			a.add(s, site{pos: call.Pos(), desc: "make allocates"})
		}
		return
	case "new":
		a.add(s, site{pos: call.Pos(), desc: "new allocates"})
		return
	case "":
		// not a builtin
	default:
		return
	}

	callee := a.staticCallee(call)
	if callee != nil && callee.Pkg() != nil {
		key := callee.Pkg().Path() + "." + callee.Name()
		if callee.Pkg().Path() == "fmt" {
			a.add(s, site{pos: call.Pos(), desc: "fmt." + callee.Name() + " call allocates (boxes through ...any and formats into a buffer)"})
			return
		}
		if why, known := allocStdlib[key]; known {
			a.add(s, site{pos: call.Pos(), desc: key + " " + why})
			return
		}
		if fd, local := a.decls[callee]; local && fd != nil {
			if sub := a.summarize(callee); sub.allocates() {
				a.add(s, site{pos: call.Pos(), desc: qname(callee), callee: callee, calleeWhy: sub.why()})
				return
			}
		} else {
			var al Allocates
			if a.pass.ImportObjectFact(callee, &al) {
				a.add(s, site{pos: call.Pos(), desc: qname(callee), callee: callee, calleeWhy: al.Why})
				return
			}
		}
	}

	// Interface boxing of arguments.
	sig, ok := a.typeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call)
		if pt == nil {
			continue
		}
		if a.boxes(arg, pt) {
			a.add(s, site{pos: arg.Pos(), desc: "interface boxing of " + types.TypeString(a.typeOf(arg), nil) + " argument"})
		}
	}
}

// paramTypeAt resolves the parameter type matching argument i, spreading
// variadics; nil when the argument is passed through as slice... or the
// signature cannot say.
func paramTypeAt(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() && i >= n-1 {
		if call.Ellipsis.IsValid() {
			return nil // s... passes the slice itself, no boxing
		}
		if sl, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// boxes reports whether passing expr where target is expected boxes a
// concrete value into an interface: the target is an interface, the value
// is concrete, non-constant, non-nil, and not pointer-shaped.
func (a *analyzer) boxes(expr ast.Expr, target types.Type) bool {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return false
	}
	tv, ok := a.pass.TypesInfo.Types[ast.Unparen(expr)]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return false
	}
	if types.IsInterface(tv.Type.Underlying()) {
		return false
	}
	return !pointerShaped(tv.Type)
}

// pointerShaped reports whether values of t fit in one word the runtime
// can store directly in an interface without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// appendExempt reports whether an append call's destination evidently has
// managed capacity: a parameter, a struct-field buffer, an x[:0] reslice,
// or a variable this function gave explicit capacity.
func (a *analyzer) appendExempt(call *ast.CallExpr, ctx *context) bool {
	if len(call.Args) == 0 {
		return true
	}
	switch base := ast.Unparen(call.Args[0]).(type) {
	case *ast.SelectorExpr:
		return true // field: a reused buffer growing to its high-water mark
	case *ast.SliceExpr:
		return isZeroHigh(base)
	case *ast.Ident:
		if v, ok := a.objOf(base).(*types.Var); ok {
			return ctx.params[v] || ctx.capOK[v]
		}
	}
	return false
}

// captures reports whether lit references a variable declared outside it
// (and inside the enclosing function), naming the first one found.
func (a *analyzer) captures(lit *ast.FuncLit) (string, bool) {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() != a.pass.Pkg {
			return true
		}
		if v.Parent() == nil || v.Parent() == a.pass.Pkg.Scope() {
			return true // package-level: accessed, not captured
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
		}
		return true
	})
	return name, name != ""
}

// staticCallee resolves the concrete *types.Func a call statically targets:
// a top-level function, a method on a concrete receiver, or a
// package-qualified function. Calls through interfaces or func values
// return nil.
func (a *analyzer) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := a.pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := a.pass.TypesInfo.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				if types.IsInterface(sel.Recv().Underlying()) {
					return nil // dynamic dispatch: no static target
				}
				return f
			}
			return nil
		}
		if f, ok := a.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// paramEscapes reports whether callee's i'th parameter may escape: by
// local summary, imported fact, curated stdlib knowledge, or — for
// unknown callees — conservatively yes.
func (a *analyzer) paramEscapes(callee *types.Func, call *ast.CallExpr, i int) bool {
	if callee == nil {
		return true
	}
	if fd, local := a.decls[callee]; local && fd != nil {
		sub := a.summarize(callee)
		for _, idx := range sub.escaping {
			if idx == i {
				return true
			}
		}
		return false
	}
	var esc EscapesParams
	if a.pass.ImportObjectFact(callee, &esc) {
		for _, idx := range esc.Escaping {
			if idx == i {
				return true
			}
		}
		return false
	}
	// Analyzed (any allocation fact present) but no escape fact means no
	// parameter escapes.
	var al Allocates
	var af AllocFree
	if a.pass.ImportObjectFact(callee, &al) || a.pass.ImportObjectFact(callee, &af) {
		return false
	}
	if callee.Pkg() != nil {
		if nonEscapingStdlib[callee.Pkg().Path()+"."+callee.Name()] {
			return false
		}
	}
	return true
}

// computeEscapes fills s.escaping with the parameters that may escape.
func (a *analyzer) computeEscapes(fd *ast.FuncDecl, sig *types.Signature, s *summary) {
	if sig == nil || sig.Params().Len() == 0 || fd.Body == nil {
		return
	}
	index := make(map[*types.Var]int, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		index[sig.Params().At(i)] = i
	}
	escaped := make(map[int]bool)

	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := a.pass.TypesInfo.Uses[id].(*types.Var); ok {
				if i, isParam := index[v]; isParam && !escaped[i] && a.escapesAt(stack, id) {
					escaped[i] = true
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	for i := 0; i < sig.Params().Len(); i++ {
		if escaped[i] {
			s.escaping = append(s.escaping, i)
		}
	}
}

// escapesAt decides whether the use of id, with the given ancestor stack,
// lets the value escape to the heap. The default for unrecognized storing
// contexts is "escapes" — the exemptions this feeds must be sound.
func (a *analyzer) escapesAt(stack []ast.Node, id *ast.Ident) bool {
	// Captured by any enclosing function literal ⇒ escapes with it.
	for _, anc := range stack {
		if _, ok := anc.(*ast.FuncLit); ok {
			return true
		}
	}
	child := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			child = p
			continue
		case *ast.SelectorExpr:
			if p.X == child {
				child = p // reading a field/method of the param
				continue
			}
			return false // the param is the selected name, not the base
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt:
			return true
		case *ast.UnaryExpr:
			return p.Op == token.AND
		case *ast.StarExpr:
			child = p
			continue
		case *ast.BinaryExpr, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt,
			*ast.CaseClause, *ast.SliceExpr, *ast.RangeStmt, *ast.IncDecStmt, *ast.ExprStmt,
			*ast.BlockStmt, *ast.DeclStmt, *ast.TypeAssertExpr:
			return false
		case *ast.IndexExpr:
			child = p // read through an index; a write is an AssignStmt LHS
			continue
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if ast.Unparen(lhs) == child {
					return false // the param is being written, not stored
				}
			}
			// Param on the RHS: storing into anything but a plain local
			// variable escapes.
			for _, lhs := range p.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
					return true
				}
			}
			return false
		case *ast.ValueSpec:
			return false // var x = p: a local copy
		case *ast.CallExpr:
			return a.argEscapes(p, child)
		default:
			return true
		}
	}
	return false
}

// argEscapes decides escape for a value used inside a call expression.
func (a *analyzer) argEscapes(call *ast.CallExpr, child ast.Node) bool {
	if call.Fun == child {
		return false // calling a func-typed param does not store it
	}
	switch a.builtinName(call) {
	case "len", "cap", "copy", "delete", "clear", "min", "max":
		return false
	case "append":
		// append(dst, p): p is stored into dst. append(p, ...) grows a
		// copy; the param's own array is only written through.
		return len(call.Args) > 0 && ast.Unparen(call.Args[0]) != child
	case "":
		// not a builtin
	default:
		return true
	}
	callee := a.staticCallee(call)
	for i, arg := range call.Args {
		if ast.Unparen(arg) == child {
			return a.paramEscapes(callee, call, i)
		}
	}
	return true // nested deeper inside an argument expression: give up
}

// builtinName returns the name of the builtin a call invokes, or "".
func (a *analyzer) builtinName(call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := a.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// objOf resolves an identifier's object through Uses then Defs.
func (a *analyzer) objOf(id *ast.Ident) types.Object {
	if o := a.pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return a.pass.TypesInfo.Defs[id]
}

// typeOf returns the static type of e, or types.Typ[types.Invalid].
func (a *analyzer) typeOf(e ast.Expr) types.Type {
	if tv, ok := a.pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// qname renders pkg.Func or pkg.Type.Method for diagnostics.
func qname(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + f.Name()
		}
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isInteger reports whether t's underlying type is an integer.
func isInteger(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isByteOrRuneSlice reports whether t is []byte or []rune.
func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
