package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// suppSrc exercises every directive placement the Suppressions contract
// defines. Each interesting line carries a unique needle string so tests
// can locate it by content instead of hard-coding line numbers.
const suppSrc = `package p

func f() {
	_ = "same-line" //mrlint:ignore alloccheck scratch buffer, reused across calls
	//mrlint:ignore doccheck generated file, exempt from doc conventions
	_ = "line-above"

	//mrlint:ignore all demo fixture, every analyzer silenced here
	_ = "wildcard"

	//mrlint:ignore alloccheck
	_ = "missing-reason"

	//mrlint:ignore
	_ = "missing-analyzer"

	//mrlint:ignore alloccheck amortized growth //mrlint:ignore droppederr best-effort status write
	_ = "two-directives"

	// Prose that mentions the //mrlint:ignore marker mid-comment is
	// documentation, not a directive.
	_ = "prose-mention"

	//mrlint:ignore doccheck directive two lines up must not reach here

	_ = "two-above"
}
`

// parseSupp parses suppSrc and returns the suppression index plus the fset.
func parseSupp(t *testing.T) (*Suppressions, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "supp.go", suppSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return NewSuppressions(fset, []*ast.File{f}), fset
}

// lineOf returns the 1-based line of the first occurrence of needle.
func lineOf(t *testing.T, needle string) int {
	t.Helper()
	i := strings.Index(suppSrc, needle)
	if i < 0 {
		t.Fatalf("needle %q not in fixture", needle)
	}
	return 1 + strings.Count(suppSrc[:i], "\n")
}

// diagAtLine fabricates a diagnostic positioned at the given fixture line.
func diagAtLine(fset *token.FileSet, line int, analyzer string) Diagnostic {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return Diagnostic{Pos: pos, Category: analyzer, Message: "test finding"}
}

func TestSuppressedSameLine(t *testing.T) {
	s, fset := parseSupp(t)
	line := lineOf(t, `"same-line"`)
	if !s.Suppressed(fset, diagAtLine(fset, line, "alloccheck")) {
		t.Errorf("directive on the offending line did not suppress alloccheck at line %d", line)
	}
	if s.Suppressed(fset, diagAtLine(fset, line, "doccheck")) {
		t.Errorf("same-line directive for alloccheck wrongly suppressed doccheck")
	}
}

func TestSuppressedLineAbove(t *testing.T) {
	s, fset := parseSupp(t)
	line := lineOf(t, `"line-above"`)
	if !s.Suppressed(fset, diagAtLine(fset, line, "doccheck")) {
		t.Errorf("directive on the line above did not suppress doccheck at line %d", line)
	}
}

func TestSuppressedAllWildcard(t *testing.T) {
	s, fset := parseSupp(t)
	line := lineOf(t, `"wildcard"`)
	for _, analyzer := range []string{"alloccheck", "doccheck", "spancheck"} {
		if !s.Suppressed(fset, diagAtLine(fset, line, analyzer)) {
			t.Errorf("//mrlint:ignore all did not suppress %s at line %d", analyzer, line)
		}
	}
}

func TestMissingReasonIsMalformedAndDoesNotSuppress(t *testing.T) {
	s, fset := parseSupp(t)
	line := lineOf(t, `"missing-reason"`)
	if s.Suppressed(fset, diagAtLine(fset, line, "alloccheck")) {
		t.Errorf("reason-less directive suppressed a finding; the reason is mandatory")
	}
	var noReason, noAnalyzer int
	for _, d := range s.Malformed() {
		switch {
		case strings.Contains(d.Message, "no reason"):
			noReason++
		case strings.Contains(d.Message, "names no analyzer"):
			noAnalyzer++
		default:
			t.Errorf("unexpected malformed-directive message: %s", d.Message)
		}
	}
	if noReason != 1 {
		t.Errorf("got %d reason-less malformed directives, want 1", noReason)
	}
	if noAnalyzer != 1 {
		t.Errorf("got %d analyzer-less malformed directives, want 1", noAnalyzer)
	}
}

func TestMultipleDirectivesPerComment(t *testing.T) {
	s, fset := parseSupp(t)
	line := lineOf(t, `"two-directives"`)
	for _, analyzer := range []string{"alloccheck", "droppederr"} {
		if !s.Suppressed(fset, diagAtLine(fset, line, analyzer)) {
			t.Errorf("repeated-marker comment did not suppress %s at line %d", analyzer, line)
		}
	}
	if s.Suppressed(fset, diagAtLine(fset, line, "doccheck")) {
		t.Errorf("repeated-marker comment wrongly suppressed an analyzer it does not name")
	}
}

func TestProseMentionIsNotADirective(t *testing.T) {
	s, fset := parseSupp(t)
	line := lineOf(t, `"prose-mention"`)
	if s.Suppressed(fset, diagAtLine(fset, line, "all")) ||
		s.Suppressed(fset, diagAtLine(fset, line, "alloccheck")) {
		t.Errorf("a comment mentioning the marker mid-prose acted as a directive")
	}
	// Nor may prose mentions be reported as malformed (they are not
	// directives at all).
	for _, d := range s.Malformed() {
		if fset.Position(d.Pos).Line == line-2 || fset.Position(d.Pos).Line == line-1 {
			t.Errorf("prose mention was recorded as a malformed directive: %s", d.Message)
		}
	}
}

func TestDirectiveTwoLinesAboveDoesNotSuppress(t *testing.T) {
	s, fset := parseSupp(t)
	line := lineOf(t, `"two-above"`)
	if s.Suppressed(fset, diagAtLine(fset, line, "doccheck")) {
		t.Errorf("directive two lines above the finding suppressed it; only the line and line-above count")
	}
}

func TestZeroAndNilSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "z.go", "package z\n", parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	d := Diagnostic{Pos: f.Pos(), Category: "alloccheck"}
	var zero Suppressions
	if zero.Suppressed(fset, d) {
		t.Errorf("zero-value Suppressions suppressed a finding")
	}
	var nilSupp *Suppressions
	if nilSupp.Suppressed(fset, d) {
		t.Errorf("nil Suppressions suppressed a finding")
	}
	if got := nilSupp.Malformed(); got != nil {
		t.Errorf("nil Suppressions reported malformed directives: %v", got)
	}
}
