// Package closecheck flags locally-created io.Closer values that are never
// closed and never escape the creating function. On the runtime's spill and
// merge paths every open run segment holds a descriptor-equivalent in the
// virtual disk layer; a forgotten Close leaks it for the life of the job
// and, on throttled disks, strands accounting state.
//
// Heuristic: a short-variable declaration `x, err := f(...)` (or `x := f(...)`)
// whose static type implements io.Closer is tracked through the function
// body. The obligation is satisfied if x's Close is called (directly or
// deferred), or if x escapes: passed as an argument to any call, returned,
// sent on a channel, assigned to another variable or field, or placed in a
// composite literal — whoever received it owns the close. Only values that
// are provably created and then abandoned inside one function are reported.
// Path-sensitivity (a Close missing on one early-return branch) is out of
// scope; pair this analyzer with droppederr, which forbids discarding the
// Close error itself.
package closecheck

import (
	"go/ast"
	"go/types"

	"mrtext/internal/analysis"
)

// Analyzer is the closecheck analysis.
var Analyzer = &analysis.Analyzer{
	Name: "closecheck",
	Doc:  "flags io.Closer values that are neither closed nor handed off",
	Run:  run,
}

// closerIface is io.Closer, constructed structurally so no import of the
// target program's io package is needed.
var closerIface *types.Interface

func init() {
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil, nil, types.NewTuple(types.NewVar(0, nil, "", errType)), false)
	fn := types.NewFunc(0, nil, "Close", sig)
	closerIface = types.NewInterfaceType([]*types.Func{fn}, nil)
	closerIface.Complete()
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkBody(pass, body)
			}
			return true
		})
	}
	return nil
}

// tracked is one closer-typed local awaiting a Close or an escape.
type tracked struct {
	obj       types.Object
	declPos   ast.Expr
	satisfied bool
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var locals []*tracked

	// Collect candidates: x[, err] := call() with closer-typed x.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false // nested function literals get their own checkBody
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok.String() != ":=" || len(assign.Rhs) != 1 {
			return true
		}
		if _, isCall := assign.Rhs[0].(*ast.CallExpr); !isCall {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil || !implementsCloser(obj.Type()) {
				continue
			}
			locals = append(locals, &tracked{obj: obj, declPos: lhs})
		}
		return true
	})
	if len(locals) == 0 {
		return
	}

	byObj := make(map[types.Object]*tracked, len(locals))
	for _, t := range locals {
		byObj[t.obj] = t
	}
	lookup := func(e ast.Expr) *tracked {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		return byObj[pass.TypesInfo.Uses[id]]
	}

	// Scan for satisfying uses.
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			// x.Close() satisfies x; x as an argument escapes x. Other
			// method calls on x (x.Read, x.Write, ...) do neither.
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				if t := lookup(sel.X); t != nil {
					if sel.Sel.Name == "Close" {
						t.satisfied = true
					}
					return true
				}
			}
			for _, arg := range v.Args {
				if t := lookup(arg); t != nil {
					t.satisfied = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if t := lookup(r); t != nil {
					t.satisfied = true
				}
			}
		case *ast.AssignStmt:
			if v.Tok.String() == ":=" {
				return true
			}
			for _, r := range v.Rhs {
				if t := lookup(r); t != nil {
					t.satisfied = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if t := lookup(el); t != nil {
					t.satisfied = true
				}
			}
		case *ast.SendStmt:
			if t := lookup(v.Value); t != nil {
				t.satisfied = true
			}
		}
		return true
	})

	for _, t := range locals {
		if !t.satisfied {
			pass.Reportf(t.declPos.Pos(), "%s (%s) is never closed and never handed off", t.obj.Name(), t.obj.Type().String())
		}
	}
}

// implementsCloser reports whether t implements io.Closer.
func implementsCloser(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, closerIface) || types.Implements(types.NewPointer(t), closerIface)
}
