// Package a seeds closecheck violations: locally-created closers that are
// abandoned, next to every legitimate way of discharging the obligation.
package a

import (
	"io"
	"os"
)

func leak() {
	f, err := os.Open("x") // want `f \(\*os.File\) is never closed and never handed off`
	if err != nil {
		return
	}
	buf := make([]byte, 4)
	if _, err := f.Read(buf); err != nil {
		return
	}
}

func leakShort() {
	f, _ := os.Create("y") // want `never closed and never handed off`
	f.WriteString("data")
}

func closedDirectly() error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	return f.Close() // ok
}

func closedDeferred() error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	defer f.Close() // ok
	return nil
}

func closedInClosure() error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	defer func() { f.Close() }() // ok: closed inside the deferred closure
	return nil
}

func handedOffReturn() (io.ReadCloser, error) {
	f, err := os.Open("x")
	return f, err // ok: caller owns the close
}

func handedOffArg() error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	return drain(f) // ok: callee owns the close
}

func drain(rc io.ReadCloser) error { return rc.Close() }

type holder struct{ rc io.ReadCloser }

func handedOffStruct() holder {
	f, _ := os.Open("x")
	return holder{rc: f} // ok: escapes via composite literal
}

func handedOffAssign(dst *holder) {
	f, _ := os.Open("x")
	dst.rc = f // ok: escapes via assignment
}
