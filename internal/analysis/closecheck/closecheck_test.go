package closecheck_test

import (
	"testing"

	"mrtext/internal/analysis/analysistest"
	"mrtext/internal/analysis/closecheck"
)

func TestCloseCheck(t *testing.T) {
	analysistest.Run(t, analysistest.Testdata(), closecheck.Analyzer, "a")
}
