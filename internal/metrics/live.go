package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Live aggregation mirrors every TaskMetrics update into one process-wide
// Snapshot so a debug endpoint (expvar under -pprof) can show job progress
// while tasks are still running. It is off by default: the hot-path cost
// is a single atomic load per recording call until EnableLive is called.
var (
	liveEnabled atomic.Bool
	liveMu      sync.Mutex
	liveAgg     Snapshot
)

// EnableLive turns on process-wide live aggregation. Updates recorded
// before enabling are not retroactively included.
func EnableLive() {
	liveMu.Lock()
	if liveAgg.Counters == nil {
		liveAgg.Counters = make(map[string]int64)
	}
	liveMu.Unlock()
	liveEnabled.Store(true)
}

// DisableLive turns live aggregation off and clears the accumulated
// state. Intended for tests.
func DisableLive() {
	liveEnabled.Store(false)
	liveMu.Lock()
	liveAgg = Snapshot{}
	liveMu.Unlock()
}

// LiveSnapshot returns a copy of the live aggregate. It is zero-valued
// when live aggregation was never enabled.
func LiveSnapshot() Snapshot {
	liveMu.Lock()
	defer liveMu.Unlock()
	s := liveAgg
	s.Counters = make(map[string]int64, len(liveAgg.Counters))
	for k, v := range liveAgg.Counters {
		s.Counters[k] = v
	}
	return s
}

// LiveVars renders the live aggregate as a JSON-friendly value for
// expvar.Publish: operation times and waits in nanoseconds keyed by their
// report names, plus the raw counters.
func LiveVars() any {
	s := LiveSnapshot()
	ops := make(map[string]int64, NumOps)
	for op := Op(0); op < NumOps; op++ {
		if s.Ops[op] != 0 {
			ops[op.String()] = int64(s.Ops[op])
		}
	}
	return map[string]any{
		"ops_ns":          ops,
		"wait_map_ns":     int64(s.WaitMap),
		"wait_support_ns": int64(s.WaitSupport),
		"counters":        s.Counters,
	}
}

func liveAddOp(op Op, d time.Duration) {
	liveMu.Lock()
	liveAgg.Ops[op] += d
	liveMu.Unlock()
}

func liveAddWait(mapSide bool, d time.Duration) {
	liveMu.Lock()
	if mapSide {
		liveAgg.WaitMap += d
	} else {
		liveAgg.WaitSupport += d
	}
	liveMu.Unlock()
}

func liveInc(name string, delta int64) {
	liveMu.Lock()
	liveAgg.Counters[name] += delta
	liveMu.Unlock()
}
