package metrics

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// This file adds latency distributions to the counter/gauge layer: the
// shuffle's tail behaviour (fetch p99, staging stalls) is invisible in
// totals, and the critical-path analyzer needs distributions to tell a
// uniformly slow path from a few outliers. The design is the HDR-histogram
// idea restricted to what the runtime needs — log-linear buckets with a
// bounded relative error, lock-free atomic recording so instrumented hot
// paths stay allocation-free under the //mrlint:hotpath contract, and
// bucket-wise merging so per-task histograms aggregate like Snapshots.
//
// Bucketing: values below 2^histSubBits get exact unit buckets; above
// that, every power-of-two octave is split into 2^histSubBits linear
// sub-buckets. A bucket's width is at most 1/16th of its lower bound, so
// any quantile read from bucket upper bounds overestimates by at most
// 6.25% — tight enough to compare configurations, cheap enough that the
// whole bucket array is a few KiB of atomics.

const (
	// histSubBits sets the sub-bucket resolution: 2^histSubBits linear
	// buckets per power-of-two octave, bounding quantile overestimation
	// at 1/2^histSubBits (6.25%).
	histSubBits = 4
	// histSubCount is the number of sub-buckets per octave.
	histSubCount = 1 << histSubBits
	// histBuckets spans all of uint64: octave 0 holds the exact values
	// below histSubCount, then (64 - histSubBits) octaves of histSubCount
	// sub-buckets each.
	histBuckets = (64-histSubBits)<<histSubBits + histSubCount
)

// bucketIndex maps a value to its bucket. Monotone in v.
func bucketIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	shift := uint(bits.Len64(v)) - 1 - histSubBits
	return int((uint64(shift+1) << histSubBits) + ((v >> shift) & (histSubCount - 1)))
}

// bucketLow returns the smallest value mapping to bucket idx.
func bucketLow(idx int) uint64 {
	if idx < histSubCount {
		return uint64(idx)
	}
	shift := uint(idx>>histSubBits) - 1
	return uint64(histSubCount+(idx&(histSubCount-1))) << shift
}

// bucketHigh returns the largest value mapping to bucket idx.
func bucketHigh(idx int) uint64 {
	if idx < histSubCount {
		return uint64(idx)
	}
	shift := uint(idx>>histSubBits) - 1
	return bucketLow(idx) + (uint64(1) << shift) - 1
}

// Histogram is a mergeable log-bucketed value distribution (nanoseconds by
// convention; the bucket math is unit-agnostic). Recording is lock-free
// and allocation-free; reads take a consistent-enough snapshot bucket by
// bucket. Obtain named instances from GetHistogram so exposition and
// dumps see every histogram in the process.
type Histogram struct {
	name   string
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
	counts [histBuckets]atomic.Uint64
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// Record adds one observation. Negative values clamp to zero (durations
// from non-monotonic arithmetic). Safe for concurrent use; performs no
// allocation — it sits on instrumented shuffle and reduce hot paths.
//
//mrlint:hotpath
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Reset zeroes the histogram. It is not atomic with respect to concurrent
// Record calls; callers reset between runs, not during them.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.counts {
		h.counts[i].Store(0)
	}
}

// Snapshot copies the histogram's current state. Concurrent Record calls
// may straddle the copy; the snapshot is exact once recording quiesces.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:  h.name,
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	top := -1
	var counts [histBuckets]uint64
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			counts[i] = c
			top = i
		}
	}
	s.Counts = append([]uint64(nil), counts[:top+1]...)
	return s
}

// HistogramSnapshot is an immutable copy of a histogram: bucket counts
// trimmed at the highest non-empty bucket, plus exact count/sum/max.
type HistogramSnapshot struct {
	Name   string
	Count  uint64
	Sum    int64
	Max    int64
	Counts []uint64
}

// Merge adds other into s bucket-wise. Merging is associative and
// commutative up to the Name field, which keeps the receiver's.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	if len(other.Counts) > len(s.Counts) {
		grown := make([]uint64, len(other.Counts))
		copy(grown, s.Counts)
		s.Counts = grown
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
}

// Mean returns the average recorded value (exact: sum/count).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper estimate of the q-quantile (q in [0,1]): the
// upper bound of the bucket holding the rank-⌈q·count⌉ observation,
// clamped to the exact recorded maximum. The estimate never undershoots
// the true quantile and overshoots by at most 1/2^histSubBits (6.25%).
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			hi := bucketHigh(i)
			if int64(hi) > s.Max || hi > 1<<62 {
				return s.Max
			}
			return int64(hi)
		}
	}
	return s.Max
}

// HistogramSummary is the JSON-facing digest of one histogram, used by
// mrrun -metrics-json and the bench reports.
type HistogramSummary struct {
	Name   string  `json:"name"`
	Count  uint64  `json:"count"`
	SumNS  int64   `json:"sum_ns"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P95NS  int64   `json:"p95_ns"`
	P99NS  int64   `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// Summary digests the snapshot into the standard quantile report.
func (s HistogramSnapshot) Summary() HistogramSummary {
	return HistogramSummary{
		Name:   s.Name,
		Count:  s.Count,
		SumNS:  s.Sum,
		MeanNS: s.Mean(),
		P50NS:  s.Quantile(0.50),
		P95NS:  s.Quantile(0.95),
		P99NS:  s.Quantile(0.99),
		MaxNS:  s.Max,
	}
}

// Registry names for the histograms the runtime records. Callers cache
// the *Histogram from GetHistogram in a package variable so the hot path
// never touches the registry lock.
const (
	// HistShuffleFetchNS is per-segment shuffle fetch latency as a reduce
	// attempt sees it: staged take (fabric hop included) or direct open.
	HistShuffleFetchNS = "shuffle.fetch.ns"
	// HistShuffleStagingWaitNS is copier time blocked on staging-buffer
	// budget before the reservation succeeded.
	HistShuffleStagingWaitNS = "shuffle.staging.wait.ns"
	// HistShuffleStallNS is the backpressure stall a copier paid before
	// giving up on the budget and spilling the segment to the home disk.
	HistShuffleStallNS = "shuffle.backpressure.stall.ns"
	// HistReduceQueueWaitNS is reduce attempt time between enqueue and a
	// worker slot picking the attempt up.
	HistReduceQueueWaitNS = "reduce.queue.wait.ns"
)

// histReg is the process-wide named histogram registry.
var histReg struct {
	mu sync.Mutex
	m  map[string]*Histogram
}

// GetHistogram returns the process-wide histogram with the given name,
// creating it on first use. The returned pointer is stable for the life
// of the process; cache it rather than re-resolving per record.
func GetHistogram(name string) *Histogram {
	histReg.mu.Lock()
	defer histReg.mu.Unlock()
	if histReg.m == nil {
		histReg.m = make(map[string]*Histogram)
	}
	h := histReg.m[name]
	if h == nil {
		h = &Histogram{name: name}
		histReg.m[name] = h
	}
	return h
}

// NewHistogram returns a fresh histogram that is NOT in the process-wide
// registry: a private sink for one job (or one test) whose observations
// must not interleave with other concurrent recorders of the same name.
// Exposition and dumps never see it; fold it into the registry instance
// of the same name with MergeIntoRegistry when (and if) its observations
// should join the process-wide aggregate.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name}
}

// AddSnapshot folds a snapshot's observations into the histogram
// bucket-wise. The snapshot's buckets must come from the same bucketing
// scheme (they always do — the scheme is compile-time constant). Safe for
// concurrent use with Record; the merge is not atomic as a whole, but
// every observation lands exactly once.
func (h *Histogram) AddSnapshot(s HistogramSnapshot) {
	for i, c := range s.Counts {
		if c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for {
		old := h.max.Load()
		if s.Max <= old || h.max.CompareAndSwap(old, s.Max) {
			break
		}
	}
}

// MergeIntoRegistry folds a private histogram's current state into the
// process-wide registry histogram of the same name — how a per-job sink
// joins the service-level aggregate after the job completes.
func MergeIntoRegistry(h *Histogram) {
	GetHistogram(h.name).AddSnapshot(h.Snapshot())
}

// HistogramSnapshots returns a snapshot of every registered histogram,
// sorted by name. Empty histograms are included so exposition surfaces
// registered-but-quiet instruments.
func HistogramSnapshots() []HistogramSnapshot {
	histReg.mu.Lock()
	hs := make([]*Histogram, 0, len(histReg.m))
	for _, h := range histReg.m {
		hs = append(hs, h)
	}
	histReg.mu.Unlock()
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	out := make([]HistogramSnapshot, len(hs))
	for i, h := range hs {
		out[i] = h.Snapshot()
	}
	return out
}

// ResetHistograms zeroes every registered histogram — the per-iteration
// reset the bench harnesses use between configurations.
func ResetHistograms() {
	histReg.mu.Lock()
	hs := make([]*Histogram, 0, len(histReg.m))
	for _, h := range histReg.m {
		hs = append(hs, h)
	}
	histReg.mu.Unlock()
	for _, h := range hs {
		h.Reset()
	}
}
