package metrics

import (
	"testing"
	"time"
)

func TestSnapshotMergeAssociativeAndCommutative(t *testing.T) {
	mk := func(op Op, d time.Duration, ctr string, v int64) Snapshot {
		tm := NewTaskMetrics()
		tm.Add(op, d)
		tm.AddWaitMap(d / 2)
		tm.Inc(ctr, v)
		return tm.Snapshot()
	}
	a := mk(OpSort, time.Second, "x", 1)
	b := mk(OpEmit, 2*time.Second, "x", 2)
	c := mk(OpMerge, 3*time.Second, "y", 5)
	// A Snapshot struct copy shares its Counters map, so each merge
	// expression starts from a deep clone.
	clone := func(s Snapshot) Snapshot {
		out := s
		out.Counters = make(map[string]int64, len(s.Counters))
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
		return out
	}

	// (a+b)+c
	left := clone(a)
	left.Merge(b)
	left.Merge(c)
	// a+(b+c)
	bc := clone(b)
	bc.Merge(c)
	right := clone(a)
	right.Merge(bc)
	// c+b+a
	rev := clone(c)
	rev.Merge(b)
	rev.Merge(a)

	for _, other := range []Snapshot{right, rev} {
		if left.Ops != other.Ops || left.WaitMap != other.WaitMap || left.WaitSupport != other.WaitSupport {
			t.Fatalf("merge order changed op/wait totals: %+v vs %+v", left, other)
		}
		if len(left.Counters) != len(other.Counters) {
			t.Fatalf("merge order changed counter set: %v vs %v", left.Counters, other.Counters)
		}
		for k, v := range left.Counters {
			if other.Counters[k] != v {
				t.Fatalf("counter %q: %d vs %d", k, v, other.Counters[k])
			}
		}
	}
	// Merging does not alias the source's counter map.
	b.Counters["x"] = 100
	if left.Counters["x"] != 3 {
		t.Errorf("merged snapshot aliases source counters: %d", left.Counters["x"])
	}
}

func TestLiveAggregation(t *testing.T) {
	DisableLive()
	defer DisableLive()

	// Updates before enabling are not mirrored.
	pre := NewTaskMetrics()
	pre.Add(OpSort, time.Hour)

	EnableLive()
	tm := NewTaskMetrics()
	tm.Add(OpSort, 2*time.Second)
	tm.AddWaitMap(time.Second)
	tm.AddWaitSupport(3 * time.Second)
	tm.Inc(CtrSpillCount, 4)

	s := LiveSnapshot()
	if s.Ops[OpSort] != 2*time.Second {
		t.Errorf("live OpSort = %v (pre-enable update leaked?)", s.Ops[OpSort])
	}
	if s.WaitMap != time.Second || s.WaitSupport != 3*time.Second {
		t.Errorf("live waits = %v / %v", s.WaitMap, s.WaitSupport)
	}
	if s.Counters[CtrSpillCount] != 4 {
		t.Errorf("live counter = %d", s.Counters[CtrSpillCount])
	}

	vars, ok := LiveVars().(map[string]any)
	if !ok {
		t.Fatalf("LiveVars type %T", LiveVars())
	}
	ops, ok := vars["ops_ns"].(map[string]int64)
	if !ok || ops[OpSort.String()] != int64(2*time.Second) {
		t.Errorf("LiveVars ops = %v", vars["ops_ns"])
	}
	if vars["wait_map_ns"] != int64(time.Second) {
		t.Errorf("LiveVars wait_map_ns = %v", vars["wait_map_ns"])
	}

	DisableLive()
	if got := LiveSnapshot(); got.Ops[OpSort] != 0 || len(got.Counters) != 0 {
		t.Errorf("DisableLive left state: %+v", got)
	}
}
