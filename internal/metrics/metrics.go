// Package metrics implements the instrumentation layer used to reproduce the
// paper's cost accounting: the fine-grained operation taxonomy of Table I,
// per-goroutine busy/idle accounting (Table II, Fig. 9), and the aggregated
// "serialized view" of where a whole job's CPU time goes (Fig. 2, Fig. 8).
//
// Every task in the runtime owns a *TaskMetrics. The map-side pipeline
// records time per Op and wait (idle) time for both the map and support
// goroutines; the reduce side records shuffle and reduce time. A JobMetrics
// merges the per-task numbers exactly the way the paper describes Fig. 2:
// "measuring all the CPU cycles used by any thread on any machine during the
// job, then grouping by phase, then summing and normalizing".
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Op identifies one fine-grained operation from the paper's Table I
// taxonomy. The map phase splits into user map(), emit (serialize+collect),
// sort, user combine(), spill I/O and merge; the shuffle phase is framework
// only; the reduce phase splits into user reduce() and output I/O. Profile
// covers the extra work frequency-buffering itself adds (profiling + hash
// table maintenance), so its overhead is visible in breakdowns, as in
// Fig. 8's discussion.
type Op int

const (
	// OpMapUser is user map() execution.
	OpMapUser Op = iota
	// OpEmit is serializing records and appending to the spill buffer.
	OpEmit
	// OpSort is sorting a spill by (partition, key).
	OpSort
	// OpCombineUser is user combine() execution.
	OpCombineUser
	// OpSpillIO is writing spill runs to local disk.
	OpSpillIO
	// OpMerge is merge-sorting spill runs into the map output file.
	OpMerge
	// OpShuffle is fetching and merge-sorting map outputs on the reduce side.
	OpShuffle
	// OpReduceUser is user reduce() execution.
	OpReduceUser
	// OpOutputIO is writing final output to the DFS.
	OpOutputIO
	// OpProfile is frequency-buffering profiling + hash table overhead.
	OpProfile
	// NumOps is the sentinel count of operations.
	NumOps
)

var opNames = [NumOps]string{
	"map", "emit", "sort", "combine", "spill-io",
	"merge", "shuffle", "reduce", "output-io", "profile",
}

// String returns the short lower-case operation name used in reports.
func (op Op) String() string {
	if op < 0 || op >= NumOps {
		return fmt.Sprintf("op(%d)", int(op))
	}
	return opNames[op]
}

// ParseOp maps a short name back to its Op. It reports false for unknown
// names.
func ParseOp(name string) (Op, bool) {
	for i, n := range opNames {
		if n == name {
			return Op(i), true
		}
	}
	return 0, false
}

// UserOps reports whether op executes user-supplied code (map, combine,
// reduce); everything else is framework overhead — the "abstraction cost"
// the paper targets.
func (op Op) User() bool {
	return op == OpMapUser || op == OpCombineUser || op == OpReduceUser
}

// Phase identifies one of the three coarse MapReduce phases.
type Phase int

const (
	// PhaseMap covers everything inside map tasks, through the final merge.
	PhaseMap Phase = iota
	// PhaseShuffle covers moving map outputs to the reduce side.
	PhaseShuffle
	// PhaseReduce covers user reduce() and output I/O.
	PhaseReduce
	// NumPhases is the sentinel count of phases.
	NumPhases
)

var phaseNames = [NumPhases]string{"map", "shuffle", "reduce"}

// String returns the phase name.
func (p Phase) String() string { return phaseNames[p] }

// PhaseOf returns the coarse phase an operation belongs to, following
// Table I: everything up to and including merge happens inside map tasks,
// shuffle is its own phase, reduce and output I/O belong to reduce tasks.
func PhaseOf(op Op) Phase {
	switch op {
	case OpShuffle:
		return PhaseShuffle
	case OpReduceUser, OpOutputIO:
		return PhaseReduce
	default:
		return PhaseMap
	}
}

// Counter names for the byte/record accounting the experiments report.
const (
	CtrMapInputRecords   = "map.input.records"
	CtrMapOutputRecords  = "map.output.records"
	CtrMapOutputBytes    = "map.output.bytes"
	CtrSpillRecords      = "spill.records" // records written to spill runs
	CtrSpillBytes        = "spill.bytes"   // bytes written to spill runs
	CtrSpillCount        = "spill.count"   // number of spills
	CtrMergeBytes        = "merge.bytes"   // bytes written during final merge
	CtrShuffleBytes      = "shuffle.bytes" // bytes moved across the fabric
	CtrReduceInputGroups = "reduce.input.groups"
	CtrReduceInputValues = "reduce.input.values"
	CtrOutputRecords     = "output.records"
	CtrOutputBytes       = "output.bytes"
	CtrFreqHits          = "freqbuf.hits"      // records absorbed by the frequent-key table
	CtrFreqMisses        = "freqbuf.misses"    // records with non-frequent keys
	CtrFreqEvictions     = "freqbuf.evictions" // aggregates overflowed to the spill path
	CtrFreqProfiled      = "freqbuf.profiled"  // records seen during profiling
	CtrCombineInRecords  = "combine.input.records"
	CtrCombineOutRecords = "combine.output.records"
	CtrCleanupErrors     = "cleanup.errors"     // best-effort cleanup failures (spill/output removal)
	CtrLocalMapTasks     = "sched.local.tasks"  // map tasks placed on their split's primary host
	CtrStolenMapTasks    = "sched.stolen.tasks" // map tasks work-stolen onto another node

	// Fault-tolerance counters (the attempt machinery).
	CtrMapAttempts       = "ft.map.attempts"        // map attempts started, retries and backups included
	CtrReduceAttempts    = "ft.reduce.attempts"     // reduce attempts started
	CtrTaskRetries       = "ft.task.retries"        // failed attempts that were requeued
	CtrSpeculativeTasks  = "ft.speculative.tasks"   // backup attempts launched for stragglers
	CtrSpeculativeWins   = "ft.speculative.wins"    // backups that committed before the original
	CtrRecoveredMapTasks = "ft.recovered.map.tasks" // completed map tasks re-run after node death
	CtrFailedAttempts    = "ft.failed.attempts"     // attempts that ended in an error
	CtrSweptAttemptDirs  = "ft.swept.attempt.dirs"  // failed/lost attempts' temp files swept

	// Pipelined-shuffle counters. The staging counters are recorded once
	// by the job's shuffle service (not per task), so Snapshot.Merge never
	// double-counts them.
	CtrShuffleEarlySegments  = "shuffle.early.segments"     // segments staged before the map phase finished (map/shuffle overlap)
	CtrShuffleStagedSegments = "shuffle.staged.segments"    // segments staged by the copier pool, in memory or on disk
	CtrShuffleStagedBytes    = "shuffle.staged.bytes"       // wire bytes fetched into staging (compressed length when wire compression is on)
	CtrShuffleStagedSpills   = "shuffle.staged.spills"      // staged segments written to the staging node's disk (over budget)
	CtrShuffleStagingPeak    = "shuffle.staging.peak.bytes" // high-water mark of in-memory staging occupancy (wire bytes)
	CtrShuffleStagedHits     = "shuffle.staged.hits"        // reduce-attempt fetches served from staging
	CtrShuffleFetchRetries   = "shuffle.fetch.retries"      // injected shuffle-fetch faults absorbed by per-source retry

	// Batched/compressed fetch-plane counters (PR 10). Like the staging
	// counters, these are recorded once by the job's shuffle service.
	CtrShuffleBatchFetches   = "shuffle.batch.fetches"      // copier batch operations: one fabric transfer each, covering one or more segments
	CtrShuffleBatchSegments  = "shuffle.batch.segments"     // segments carried by those batches (== staged segments; ratio to fetches is the batching factor)
	CtrShuffleWireSavedBytes = "shuffle.wire.saved.bytes"   // raw-minus-wire bytes saved by compressing segments before the staging hop
	CtrShuffleGovThrottles   = "shuffle.governor.throttles" // copier batch operations that had to wait for a governor token

	// Shuffle wait-time counters (nanoseconds). These are the totals behind
	// the latency histograms: blocked time on the simulated fabric, copier
	// waits for staging-buffer space, and backoff sleeps between fetch
	// retries. The critical-path analyzer cross-checks its blame report
	// against them.
	CtrShuffleFabricWaitNS  = "shuffle.fabric.wait.ns"   // time blocked in simulated fabric transfers on the shuffle path
	CtrShuffleStagingWaitNS = "shuffle.staging.wait.ns"  // time copiers waited for staging-buffer space
	CtrShuffleRetryWaitNS   = "shuffle.retry.wait.ns"    // backoff sleep between shuffle-fetch retries
	CtrShuffleGovWaitNS     = "shuffle.governor.wait.ns" // time copiers were parked by the contention governor
)

// TaskMetrics accumulates instrumentation for a single task attempt. It is
// safe for concurrent use: the map and support goroutines of one map task
// both record into it.
type TaskMetrics struct {
	mu       sync.Mutex
	ops      [NumOps]time.Duration
	waitMap  time.Duration // map goroutine blocked on a full spill buffer
	waitSup  time.Duration // support goroutine blocked waiting for a spill
	counters map[string]int64
}

// NewTaskMetrics returns an empty TaskMetrics ready for use.
func NewTaskMetrics() *TaskMetrics {
	return &TaskMetrics{counters: make(map[string]int64)}
}

// Add records d duration of work attributed to op.
func (t *TaskMetrics) Add(op Op, d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	t.ops[op] += d
	t.mu.Unlock()
	if liveEnabled.Load() {
		liveAddOp(op, d)
	}
}

// Time runs f and attributes its wall time to op.
func (t *TaskMetrics) Time(op Op, f func()) {
	start := time.Now()
	f()
	t.Add(op, time.Since(start))
}

// AddWaitMap records time the map goroutine spent blocked because the spill
// buffer was full (the "Map, Idle" column of Table II).
func (t *TaskMetrics) AddWaitMap(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	t.waitMap += d
	t.mu.Unlock()
	if liveEnabled.Load() {
		liveAddWait(true, d)
	}
}

// AddWaitSupport records time the support goroutine spent blocked waiting
// for the next spill to be produced (the "Support, Idle" column of Table II).
func (t *TaskMetrics) AddWaitSupport(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	t.waitSup += d
	t.mu.Unlock()
	if liveEnabled.Load() {
		liveAddWait(false, d)
	}
}

// Inc adds delta to the named counter.
func (t *TaskMetrics) Inc(name string, delta int64) {
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
	if liveEnabled.Load() {
		liveInc(name, delta)
	}
}

// Op returns the accumulated duration for op.
func (t *TaskMetrics) Op(op Op) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops[op]
}

// WaitMap returns accumulated map-goroutine idle time.
func (t *TaskMetrics) WaitMap() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.waitMap
}

// WaitSupport returns accumulated support-goroutine idle time.
func (t *TaskMetrics) WaitSupport() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.waitSup
}

// Counter returns the value of the named counter (zero if never set).
func (t *TaskMetrics) Counter(name string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// Snapshot returns a consistent copy of the task's accumulated state.
func (t *TaskMetrics) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{WaitMap: t.waitMap, WaitSupport: t.waitSup, Counters: make(map[string]int64, len(t.counters))}
	s.Ops = t.ops
	for k, v := range t.counters {
		s.Counters[k] = v
	}
	return s
}

// Snapshot is an immutable copy of task or job instrumentation.
type Snapshot struct {
	Ops         [NumOps]time.Duration
	WaitMap     time.Duration
	WaitSupport time.Duration
	Counters    map[string]int64
}

// Merge adds other into s.
func (s *Snapshot) Merge(other Snapshot) {
	for i := range s.Ops {
		s.Ops[i] += other.Ops[i]
	}
	s.WaitMap += other.WaitMap
	s.WaitSupport += other.WaitSupport
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
}

// TotalWork is the serialized-view total: the sum of all operation time
// across all threads, the denominator of Fig. 2's normalization.
func (s Snapshot) TotalWork() time.Duration {
	var sum time.Duration
	for _, d := range s.Ops {
		sum += d
	}
	return sum
}

// UserWork returns time spent in user-supplied code (map + combine + reduce).
func (s Snapshot) UserWork() time.Duration {
	return s.Ops[OpMapUser] + s.Ops[OpCombineUser] + s.Ops[OpReduceUser]
}

// FrameworkWork returns abstraction-cost time: everything except user code.
func (s Snapshot) FrameworkWork() time.Duration {
	return s.TotalWork() - s.UserWork()
}

// Fraction returns op's share of total serialized work in [0,1]; it reports
// zero when no work was recorded.
func (s Snapshot) Fraction(op Op) float64 {
	total := s.TotalWork()
	if total == 0 {
		return 0
	}
	return float64(s.Ops[op]) / float64(total)
}

// PhaseWork sums operation time by coarse phase.
func (s Snapshot) PhaseWork(p Phase) time.Duration {
	var sum time.Duration
	for op := Op(0); op < NumOps; op++ {
		if PhaseOf(op) == p {
			sum += s.Ops[op]
		}
	}
	return sum
}

// Breakdown renders the snapshot as the Fig. 2-style normalized table:
// one row per operation with its absolute time and percentage share,
// ordered by the Table I pipeline order.
func (s Snapshot) Breakdown() string {
	var b strings.Builder
	total := s.TotalWork()
	fmt.Fprintf(&b, "%-10s %12s %7s\n", "operation", "time", "share")
	for op := Op(0); op < NumOps; op++ {
		if s.Ops[op] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %12s %6.1f%%\n", op, s.Ops[op].Round(time.Microsecond), 100*s.Fraction(op))
	}
	fmt.Fprintf(&b, "%-10s %12s %6.1f%%\n", "TOTAL", total.Round(time.Microsecond), 100.0)
	return b.String()
}

// CounterNames returns the sorted names of all non-zero counters.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for k, v := range s.Counters {
		if v != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}

// Stopwatch measures elapsed intervals and attributes them to operations on
// a TaskMetrics. It is a convenience for straight-line pipeline code:
//
//	sw := metrics.NewStopwatch(tm)
//	... user map() ...
//	sw.Lap(metrics.OpMapUser)
//	... serialize ...
//	sw.Lap(metrics.OpEmit)
//
// A Stopwatch is not safe for concurrent use; each goroutine owns its own.
type Stopwatch struct {
	tm   *TaskMetrics
	last time.Time
}

// NewStopwatch returns a Stopwatch recording into tm, started now.
func NewStopwatch(tm *TaskMetrics) *Stopwatch {
	return &Stopwatch{tm: tm, last: time.Now()}
}

// Lap attributes the time since the previous Lap (or construction) to op and
// restarts the interval. It returns the lap duration.
func (s *Stopwatch) Lap(op Op) time.Duration {
	now := time.Now()
	d := now.Sub(s.last)
	s.last = now
	s.tm.Add(op, d)
	return d
}

// Skip discards the time since the previous Lap without attributing it,
// restarting the interval. Used to exclude waits from operation accounting.
func (s *Stopwatch) Skip() time.Duration {
	now := time.Now()
	d := now.Sub(s.last)
	s.last = now
	return d
}
