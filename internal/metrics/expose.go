package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders the metrics layer for consumers outside the process:
// the Prometheus text exposition format served at /metrics by the debug
// server (scrapable beside the expvar JSON), and the machine-readable
// registry dump behind mrrun -metrics-json. Both views carry the same
// three layers — operation times, wait times, counters — plus the
// histogram summaries, so a scrape and a post-run dump agree on names.

// promName rewrites a dotted registry name into a Prometheus metric name
// fragment: dots and dashes become underscores.
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '.', '-':
			return '_'
		}
		return r
	}, name)
}

// WritePrometheus renders the live aggregate and every registered
// histogram in the Prometheus text exposition format. Operation and wait
// times are cumulative nanosecond counters; histograms render with
// cumulative le buckets in nanoseconds. Live aggregation must be enabled
// (EnableLive) for the op/wait/counter series to be non-zero.
func WritePrometheus(w io.Writer) error {
	var b strings.Builder
	s := LiveSnapshot()

	fmt.Fprintf(&b, "# HELP mrtext_op_ns_total cumulative operation time by Table I op, nanoseconds\n")
	fmt.Fprintf(&b, "# TYPE mrtext_op_ns_total counter\n")
	for op := Op(0); op < NumOps; op++ {
		fmt.Fprintf(&b, "mrtext_op_ns_total{op=%q} %d\n", op.String(), int64(s.Ops[op]))
	}

	fmt.Fprintf(&b, "# HELP mrtext_wait_ns_total cumulative goroutine idle time, nanoseconds\n")
	fmt.Fprintf(&b, "# TYPE mrtext_wait_ns_total counter\n")
	fmt.Fprintf(&b, "mrtext_wait_ns_total{goroutine=\"map\"} %d\n", int64(s.WaitMap))
	fmt.Fprintf(&b, "mrtext_wait_ns_total{goroutine=\"support\"} %d\n", int64(s.WaitSupport))

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "# HELP mrtext_counter_total cumulative named counters\n")
	fmt.Fprintf(&b, "# TYPE mrtext_counter_total counter\n")
	for _, name := range names {
		fmt.Fprintf(&b, "mrtext_counter_total{name=%q} %d\n", name, s.Counters[name])
	}

	for _, hs := range HistogramSnapshots() {
		writePromHistogram(&b, hs)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one histogram as a Prometheus histogram
// family: cumulative le buckets at the non-empty bucket upper bounds,
// the mandatory +Inf bucket, _sum and _count.
func writePromHistogram(b *strings.Builder, s HistogramSnapshot) {
	metric := "mrtext_" + promName(s.Name)
	fmt.Fprintf(b, "# HELP %s %s distribution\n", metric, s.Name)
	fmt.Fprintf(b, "# TYPE %s histogram\n", metric)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", metric, bucketHigh(i), cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", metric, s.Count)
	fmt.Fprintf(b, "%s_sum %d\n", metric, s.Sum)
	fmt.Fprintf(b, "%s_count %d\n", metric, s.Count)
}

// Dump is the scripted-consumption view of a finished job: the final
// metrics snapshot flattened to JSON-friendly maps, plus a summary of
// every registered histogram. mrrun -metrics-json writes one of these.
type Dump struct {
	OpsNS         map[string]int64   `json:"ops_ns"`
	WaitMapNS     int64              `json:"wait_map_ns"`
	WaitSupportNS int64              `json:"wait_support_ns"`
	Counters      map[string]int64   `json:"counters"`
	Histograms    []HistogramSummary `json:"histograms"`
}

// NewDump builds the dump for one final snapshot, attaching summaries of
// every registered histogram.
func NewDump(s Snapshot) Dump {
	d := Dump{
		OpsNS:         make(map[string]int64, NumOps),
		WaitMapNS:     int64(s.WaitMap),
		WaitSupportNS: int64(s.WaitSupport),
		Counters:      make(map[string]int64, len(s.Counters)),
	}
	for op := Op(0); op < NumOps; op++ {
		if s.Ops[op] != 0 {
			d.OpsNS[op.String()] = int64(s.Ops[op])
		}
	}
	for k, v := range s.Counters {
		d.Counters[k] = v
	}
	for _, hs := range HistogramSnapshots() {
		d.Histograms = append(d.Histograms, hs.Summary())
	}
	return d
}

// WriteDump writes NewDump(s) as indented JSON.
func WriteDump(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(NewDump(s))
}
