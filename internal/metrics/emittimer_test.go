package metrics

import (
	"testing"
	"time"
)

// emitN drives the timer through n emit cycles, spending no measurable
// time between calls.
func emitN(e *EmitTimer, n int) {
	for i := 0; i < n; i++ {
		e.BeforeEmit()
		e.AfterEmit()
	}
}

func TestEmitTimerPeriodOneIsPrecise(t *testing.T) {
	tm := NewTaskMetrics()
	e := NewEmitTimer(tm, 0, 1)
	emitN(e, 10)
	e.Finish()
	if e.Records() != 10 {
		t.Errorf("records = %d", e.Records())
	}
	// Precise mode reads the clock twice per record (plus Finish).
	if got := e.ClockReads(); got != 2*10+1 {
		t.Errorf("clock reads = %d, want 21", got)
	}
}

func TestEmitTimerWarmupBoundary(t *testing.T) {
	// warmup=4, period=8: records 0..3 are precise (2 reads each), record
	// 4 is the first sample point (1 read), record 5 measures the
	// post-sample user gap (1 read) plus its own non-timed emit, records
	// 6..11 are clock-free, record 12 samples again.
	tm := NewTaskMetrics()
	e := NewEmitTimer(tm, 4, 8)

	emitN(e, 4)
	warmupReads := e.ClockReads()
	if warmupReads != 8 {
		t.Errorf("warmup clock reads = %d, want 8", warmupReads)
	}

	emitN(e, 1) // record 4: sample point, open+close = 2 reads
	if got := e.ClockReads() - warmupReads; got != 2 {
		t.Errorf("sample-point reads = %d, want 2", got)
	}

	emitN(e, 1) // record 5: post-sample user gap, 1 read
	afterPost := e.ClockReads()
	if got := afterPost - warmupReads; got != 3 {
		t.Errorf("post-sample reads = %d, want 3", got)
	}

	emitN(e, 6) // records 6..11: free
	if got := e.ClockReads(); got != afterPost {
		t.Errorf("mid-period emits read the clock: %d -> %d", afterPost, got)
	}

	emitN(e, 1) // record 12 = warmup + 8: next sample point
	if got := e.ClockReads() - afterPost; got != 2 {
		t.Errorf("second sample reads = %d, want 2", got)
	}
}

func TestEmitTimerZeroRecords(t *testing.T) {
	// A task that emits nothing must still attribute its wall time to
	// user map() via Finish, with exactly the construction + Finish
	// clock reads and no emit time.
	tm := NewTaskMetrics()
	e := NewEmitTimer(tm, DefaultEmitWarmup, DefaultEmitPeriod)
	time.Sleep(2 * time.Millisecond)
	e.Finish()
	if e.Records() != 0 {
		t.Errorf("records = %d", e.Records())
	}
	if tm.Op(OpMapUser) < time.Millisecond {
		t.Errorf("trailing user gap not attributed: %v", tm.Op(OpMapUser))
	}
	if tm.Op(OpEmit) != 0 {
		t.Errorf("emit time from zero emits: %v", tm.Op(OpEmit))
	}
}

func TestEmitTimerSampleWeight(t *testing.T) {
	// After warmup, one sampled emit stands in for every unmeasured emit
	// since the previous sample: with warmup=0 and period=4, the sample
	// at record 4 carries weight 4 (records 1,2,3,4). Sleeping only
	// inside the sampled emit makes the weighted attribution visible.
	tm := NewTaskMetrics()
	e := NewEmitTimer(tm, 0, 4)

	emitN(e, 4) // record 0 precise, records 1..3 free
	base := tm.Op(OpEmit)

	e.BeforeEmit() // record 4: sample point
	time.Sleep(2 * time.Millisecond)
	e.AfterEmit()

	weighted := tm.Op(OpEmit) - base
	if weighted < 4*2*time.Millisecond {
		t.Errorf("sampled emit weight too small: %v, want >= 8ms", weighted)
	}
}

func TestEmitTimerExclude(t *testing.T) {
	// Time excluded from an open sample (buffer blocking, profiling) must
	// not count as emit work.
	tm := NewTaskMetrics()
	e := NewEmitTimer(tm, 4, 1)
	e.BeforeEmit()
	time.Sleep(2 * time.Millisecond)
	e.Exclude(2 * time.Millisecond)
	e.AfterEmit()
	if got := tm.Op(OpEmit); got > time.Millisecond {
		t.Errorf("excluded time leaked into emit: %v", got)
	}
}

func TestEmitTimerDefensiveConstruction(t *testing.T) {
	tm := NewTaskMetrics()
	e := NewEmitTimer(tm, -3, 0) // clamps to warmup 0, period 1
	emitN(e, 3)
	e.Finish()
	if e.Records() != 3 {
		t.Errorf("records = %d", e.Records())
	}
	if e.ClockReads() != 2*3+1 {
		t.Errorf("clock reads = %d, want 7 (period clamped to precise)", e.ClockReads())
	}
}

func TestEmitTimerRestart(t *testing.T) {
	// Restart discards setup time: the gap before Restart must not be
	// attributed to user map().
	tm := NewTaskMetrics()
	e := NewEmitTimer(tm, 16, 64)
	time.Sleep(3 * time.Millisecond)
	e.Restart()
	e.Finish()
	if got := tm.Op(OpMapUser); got > 2*time.Millisecond {
		t.Errorf("setup time leaked past Restart: %v", got)
	}
}
