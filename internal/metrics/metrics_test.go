package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestOpNamesRoundTrip(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		name := op.String()
		got, ok := ParseOp(name)
		if !ok || got != op {
			t.Errorf("ParseOp(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseOp("nonsense"); ok {
		t.Error("ParseOp accepted nonsense")
	}
	if s := Op(99).String(); !strings.Contains(s, "99") {
		t.Errorf("out-of-range op string %q", s)
	}
}

func TestUserOps(t *testing.T) {
	want := map[Op]bool{OpMapUser: true, OpCombineUser: true, OpReduceUser: true}
	for op := Op(0); op < NumOps; op++ {
		if op.User() != want[op] {
			t.Errorf("%v.User() = %v", op, op.User())
		}
	}
}

func TestPhaseOf(t *testing.T) {
	cases := map[Op]Phase{
		OpMapUser:     PhaseMap,
		OpEmit:        PhaseMap,
		OpSort:        PhaseMap,
		OpCombineUser: PhaseMap,
		OpSpillIO:     PhaseMap,
		OpMerge:       PhaseMap,
		OpProfile:     PhaseMap,
		OpShuffle:     PhaseShuffle,
		OpReduceUser:  PhaseReduce,
		OpOutputIO:    PhaseReduce,
	}
	for op, want := range cases {
		if PhaseOf(op) != want {
			t.Errorf("PhaseOf(%v) = %v, want %v", op, PhaseOf(op), want)
		}
	}
}

func TestTaskMetricsAccumulation(t *testing.T) {
	tm := NewTaskMetrics()
	tm.Add(OpSort, time.Second)
	tm.Add(OpSort, 2*time.Second)
	tm.Add(OpMapUser, -5*time.Second) // negative clamps to zero
	if got := tm.Op(OpSort); got != 3*time.Second {
		t.Errorf("OpSort = %v", got)
	}
	if got := tm.Op(OpMapUser); got != 0 {
		t.Errorf("negative add leaked: %v", got)
	}
	tm.AddWaitMap(time.Second)
	tm.AddWaitSupport(2 * time.Second)
	tm.AddWaitMap(-time.Minute)
	if tm.WaitMap() != time.Second || tm.WaitSupport() != 2*time.Second {
		t.Errorf("waits: %v / %v", tm.WaitMap(), tm.WaitSupport())
	}
	tm.Inc("records", 5)
	tm.Inc("records", 7)
	if tm.Counter("records") != 12 {
		t.Errorf("counter = %d", tm.Counter("records"))
	}
	if tm.Counter("missing") != 0 {
		t.Error("missing counter non-zero")
	}
}

func TestTimeHelper(t *testing.T) {
	tm := NewTaskMetrics()
	tm.Time(OpSort, func() { time.Sleep(5 * time.Millisecond) })
	if tm.Op(OpSort) < 4*time.Millisecond {
		t.Errorf("Time recorded %v", tm.Op(OpSort))
	}
}

func TestTaskMetricsConcurrent(t *testing.T) {
	tm := NewTaskMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tm.Add(OpEmit, time.Microsecond)
				tm.Inc("n", 1)
				tm.AddWaitMap(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if tm.Op(OpEmit) != 8*1000*time.Microsecond {
		t.Errorf("OpEmit = %v", tm.Op(OpEmit))
	}
	if tm.Counter("n") != 8000 {
		t.Errorf("counter = %d", tm.Counter("n"))
	}
}

func TestSnapshotMergeAndDerived(t *testing.T) {
	tm1 := NewTaskMetrics()
	tm1.Add(OpMapUser, 2*time.Second)
	tm1.Add(OpSort, 3*time.Second)
	tm1.Inc("x", 1)
	tm2 := NewTaskMetrics()
	tm2.Add(OpReduceUser, 1*time.Second)
	tm2.Add(OpShuffle, 4*time.Second)
	tm2.Inc("x", 2)

	s := tm1.Snapshot()
	s.Merge(tm2.Snapshot())
	if s.TotalWork() != 10*time.Second {
		t.Errorf("TotalWork = %v", s.TotalWork())
	}
	if s.UserWork() != 3*time.Second {
		t.Errorf("UserWork = %v", s.UserWork())
	}
	if s.FrameworkWork() != 7*time.Second {
		t.Errorf("FrameworkWork = %v", s.FrameworkWork())
	}
	if got := s.Fraction(OpSort); got != 0.3 {
		t.Errorf("Fraction(sort) = %v", got)
	}
	if s.Counters["x"] != 3 {
		t.Errorf("merged counter = %d", s.Counters["x"])
	}
	if s.PhaseWork(PhaseMap) != 5*time.Second {
		t.Errorf("PhaseWork(map) = %v", s.PhaseWork(PhaseMap))
	}
	if s.PhaseWork(PhaseShuffle) != 4*time.Second {
		t.Errorf("PhaseWork(shuffle) = %v", s.PhaseWork(PhaseShuffle))
	}
	if s.PhaseWork(PhaseReduce) != 1*time.Second {
		t.Errorf("PhaseWork(reduce) = %v", s.PhaseWork(PhaseReduce))
	}
}

func TestSnapshotMergeIntoZero(t *testing.T) {
	var s Snapshot // zero value: nil counters
	other := Snapshot{Counters: map[string]int64{"a": 1}}
	other.Ops[OpSort] = time.Second
	s.Merge(other)
	if s.Counters["a"] != 1 || s.Ops[OpSort] != time.Second {
		t.Errorf("merge into zero snapshot: %+v", s)
	}
}

func TestEmptySnapshotFractions(t *testing.T) {
	var s Snapshot
	if s.Fraction(OpSort) != 0 {
		t.Error("fraction of empty snapshot non-zero")
	}
	if !strings.Contains(s.Breakdown(), "TOTAL") {
		t.Error("breakdown missing TOTAL row")
	}
}

func TestBreakdownFormat(t *testing.T) {
	tm := NewTaskMetrics()
	tm.Add(OpSort, time.Second)
	tm.Add(OpMapUser, time.Second)
	out := tm.Snapshot().Breakdown()
	for _, want := range []string{"sort", "map", "50.0%", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "shuffle") {
		t.Error("breakdown includes zero-valued op")
	}
}

func TestCounterNames(t *testing.T) {
	tm := NewTaskMetrics()
	tm.Inc("b", 1)
	tm.Inc("a", 2)
	tm.Inc("zero", 0)
	names := tm.Snapshot().CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("CounterNames = %v", names)
	}
}

func TestStopwatch(t *testing.T) {
	tm := NewTaskMetrics()
	sw := NewStopwatch(tm)
	time.Sleep(2 * time.Millisecond)
	d := sw.Lap(OpEmit)
	if d < time.Millisecond || tm.Op(OpEmit) != d {
		t.Errorf("lap %v, recorded %v", d, tm.Op(OpEmit))
	}
	time.Sleep(2 * time.Millisecond)
	skipped := sw.Skip()
	if skipped < time.Millisecond {
		t.Errorf("skip %v", skipped)
	}
	if total := tm.Snapshot().TotalWork(); total != d {
		t.Errorf("skip leaked into accounting: total %v want %v", total, d)
	}
}
