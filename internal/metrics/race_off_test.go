//go:build !race

package metrics

// raceEnabled relaxes the zero-allocation assertions under -race, whose
// instrumentation inflates allocation counts.
const raceEnabled = false
