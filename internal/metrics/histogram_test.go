package metrics

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestBucketIndexMonotoneAndBounded checks the bucket math invariants the
// quantile error bound rests on: the index is monotone in the value, the
// value lands inside [bucketLow, bucketHigh] of its bucket, and bucket
// width stays within 1/2^histSubBits of the lower bound.
func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	vals := []uint64{0, 1, 2, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1<<20 + 1, 1 << 40, 1<<63 - 1, 1 << 63, ^uint64(0)}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Uint64()>>uint(rng.Intn(64)))
	}
	prevIdx := -1
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, idx, histBuckets)
		}
		if idx < prevIdx {
			t.Fatalf("bucketIndex not monotone: value %d got index %d after %d", v, idx, prevIdx)
		}
		prevIdx = idx
		lo, hi := bucketLow(idx), bucketHigh(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket %d bounds [%d,%d]", v, idx, lo, hi)
		}
		if lo > 0 && hi-lo > 0 {
			if rel := float64(hi-lo) / float64(lo); rel > 1.0/histSubCount {
				t.Fatalf("bucket %d [%d,%d] relative width %.4f > %.4f", idx, lo, hi, rel, 1.0/histSubCount)
			}
		}
	}
}

// TestHistogramQuantileErrorBound draws random samples from several
// distributions and checks every estimated quantile against the exact
// order statistic: never below it, and above by at most the documented
// 1/2^histSubBits relative bound.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	draws := []struct {
		name string
		gen  func() int64
	}{
		{"uniform", func() int64 { return rng.Int63n(1 << 30) }},
		{"exp-tail", func() int64 { return int64(rng.ExpFloat64() * 1e6) }},
		{"small", func() int64 { return rng.Int63n(20) }},
		{"bimodal", func() int64 {
			if rng.Intn(10) == 0 {
				return 1<<40 + rng.Int63n(1<<38)
			}
			return 1000 + rng.Int63n(1000)
		}},
	}
	for _, d := range draws {
		h := &Histogram{name: d.name}
		n := 5000
		exact := make([]int64, n)
		for i := range exact {
			v := d.gen()
			exact[i] = v
			h.Record(v)
		}
		sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
		s := h.Snapshot()
		if s.Count != uint64(n) {
			t.Fatalf("%s: count %d, want %d", d.name, s.Count, n)
		}
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
			rank := int(q * float64(n))
			if float64(rank) < q*float64(n) {
				rank++
			}
			if rank < 1 {
				rank = 1
			}
			want := exact[rank-1]
			got := s.Quantile(q)
			if got < want {
				t.Errorf("%s: q=%g estimate %d below exact %d", d.name, q, got, want)
			}
			limit := want + want/histSubCount + 1
			if got > limit {
				t.Errorf("%s: q=%g estimate %d above bound %d (exact %d)", d.name, q, got, limit, want)
			}
		}
		if s.Quantile(1) != s.Max || s.Max != exact[n-1] {
			t.Errorf("%s: p100 %d / max %d, want exact max %d", d.name, s.Quantile(1), s.Max, exact[n-1])
		}
	}
}

// randomSnapshot builds a histogram snapshot from count random records.
func randomSnapshot(rng *rand.Rand, count int) HistogramSnapshot {
	h := &Histogram{}
	for i := 0; i < count; i++ {
		h.Record(rng.Int63n(1 << uint(1+rng.Intn(40))))
	}
	return h.Snapshot()
}

// merged returns a.Merge(b) without mutating either input.
func merged(a, b HistogramSnapshot) HistogramSnapshot {
	out := a
	out.Counts = append([]uint64(nil), a.Counts...)
	out.Merge(b)
	return out
}

// equalDist compares everything except the Name, trimming trailing empty
// buckets so differently-sized count slices with equal content match.
func equalDist(a, b HistogramSnapshot) bool {
	trim := func(c []uint64) []uint64 {
		for len(c) > 0 && c[len(c)-1] == 0 {
			c = c[:len(c)-1]
		}
		return c
	}
	return a.Count == b.Count && a.Sum == b.Sum && a.Max == b.Max &&
		reflect.DeepEqual(trim(a.Counts), trim(b.Counts))
}

// TestHistogramMergeAssociativeCommutative checks the algebra that makes
// per-task histograms aggregate safely in any order.
func TestHistogramMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a := randomSnapshot(rng, 1+rng.Intn(200))
		b := randomSnapshot(rng, 1+rng.Intn(200))
		c := randomSnapshot(rng, rng.Intn(100)) // possibly empty
		if ab, ba := merged(a, b), merged(b, a); !equalDist(ab, ba) {
			t.Fatalf("trial %d: merge not commutative: %+v vs %+v", trial, ab, ba)
		}
		left := merged(merged(a, b), c)
		right := merged(a, merged(b, c))
		if !equalDist(left, right) {
			t.Fatalf("trial %d: merge not associative: %+v vs %+v", trial, left, right)
		}
		if left.Count != a.Count+b.Count+c.Count || left.Sum != a.Sum+b.Sum+c.Sum {
			t.Fatalf("trial %d: merged totals off: %+v", trial, left)
		}
	}
}

// TestHistogramRegistry pins registry identity: same name, same pointer;
// snapshots sorted by name; reset empties without unregistering.
func TestHistogramRegistry(t *testing.T) {
	a := GetHistogram("test.registry.a")
	b := GetHistogram("test.registry.b")
	if GetHistogram("test.registry.a") != a {
		t.Fatal("GetHistogram did not return the cached instance")
	}
	a.Record(5)
	b.Record(7)
	var gotA, gotB bool
	prev := ""
	for _, s := range HistogramSnapshots() {
		if s.Name < prev {
			t.Fatalf("snapshots not sorted: %q after %q", s.Name, prev)
		}
		prev = s.Name
		switch s.Name {
		case "test.registry.a":
			gotA = s.Count == 1
		case "test.registry.b":
			gotB = s.Count == 1
		}
	}
	if !gotA || !gotB {
		t.Fatalf("registry snapshots missing recorded histograms (a=%v b=%v)", gotA, gotB)
	}
	ResetHistograms()
	if s := a.Snapshot(); s.Count != 0 || s.Sum != 0 || s.Max != 0 || len(s.Counts) != 0 {
		t.Fatalf("reset left state behind: %+v", s)
	}
}

// TestGroundTruthHistogramRecord is the AllocsPerRun gate from the
// acceptance criteria: the record path must not allocate, plain and under
// -race (where only the ==0 assertion is relaxed; the instrumented run
// still exercises the path).
func TestGroundTruthHistogramRecord(t *testing.T) {
	h := GetHistogram("test.allocs.record")
	defer h.Reset()
	var v int64
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 1 << 10
	})
	if allocs != 0 && !raceEnabled {
		t.Fatalf("Histogram.Record allocates %.1f times per call, want 0", allocs)
	}
}

// TestHistogramConcurrentRecord hammers one histogram from several
// goroutines and checks the totals add up — the lock-free counters must
// not lose updates (run under -race in CI).
func TestHistogramConcurrentRecord(t *testing.T) {
	h := &Histogram{name: "concurrent"}
	const workers, per = 8, 2000
	done := make(chan int64)
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			var sum int64
			for i := 0; i < per; i++ {
				v := rng.Int63n(1 << 20)
				h.Record(v)
				sum += v
			}
			done <- sum
		}(int64(w))
	}
	var wantSum int64
	for w := 0; w < workers; w++ {
		wantSum += <-done
	}
	s := h.Snapshot()
	if s.Count != workers*per || s.Sum != wantSum {
		t.Fatalf("lost updates: count %d sum %d, want %d / %d", s.Count, s.Sum, workers*per, wantSum)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket counts sum %d != count %d", bucketSum, s.Count)
	}
}

// TestWritePrometheus smoke-checks the exposition format: the op/wait
// families are present, and a recorded histogram renders cumulative
// buckets ending in +Inf with consistent _count.
func TestWritePrometheus(t *testing.T) {
	EnableLive()
	defer DisableLive()
	tm := NewTaskMetrics()
	tm.Add(OpShuffle, 3*time.Millisecond)
	tm.Inc(CtrShuffleBytes, 99)
	h := GetHistogram("test.prom.ns")
	defer h.Reset()
	h.Record(100)
	h.Record(200000)

	var b strings.Builder
	if err := WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"mrtext_op_ns_total{op=\"shuffle\"} 3000000",
		"mrtext_wait_ns_total{goroutine=\"map\"} 0",
		"mrtext_counter_total{name=\"shuffle.bytes\"} 99",
		"# TYPE mrtext_test_prom_ns histogram",
		"mrtext_test_prom_ns_bucket{le=\"+Inf\"} 2",
		"mrtext_test_prom_ns_count 2",
		"mrtext_test_prom_ns_sum 200100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestDumpJSON checks the -metrics-json payload shape: ops and counters
// from the snapshot, histogram summaries from the registry.
func TestDumpJSON(t *testing.T) {
	h := GetHistogram("test.dump.ns")
	defer h.Reset()
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	var s Snapshot
	s.Ops[OpMapUser] = 2 * time.Second
	s.WaitMap = time.Second
	s.Counters = map[string]int64{CtrSpillCount: 4}
	d := NewDump(s)
	if d.OpsNS["map"] != int64(2*time.Second) || d.WaitMapNS != int64(time.Second) || d.Counters[CtrSpillCount] != 4 {
		t.Fatalf("dump snapshot fields wrong: %+v", d)
	}
	var sum *HistogramSummary
	for i := range d.Histograms {
		if d.Histograms[i].Name == "test.dump.ns" {
			sum = &d.Histograms[i]
		}
	}
	if sum == nil {
		t.Fatalf("dump missing histogram summary: %+v", d.Histograms)
	}
	if sum.Count != 100 || sum.MaxNS != 100000 || sum.P50NS < 50000 || sum.P50NS > 54000 {
		t.Fatalf("summary digest wrong: %+v", *sum)
	}
}

// BenchmarkHistogramRecord measures the hot record path.
func BenchmarkHistogramRecord(b *testing.B) {
	h := &Histogram{name: "bench"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) << 3)
	}
}
