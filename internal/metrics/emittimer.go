package metrics

import "time"

// EmitTimer attributes the map goroutine's time between user map() code
// (OpMapUser) and the record emit path (OpEmit) by sampling instead of
// stamping the clock around every record.
//
// The fully-timed scheme reads the monotonic clock at least twice per
// emitted record; for cheap text-centric map functions that is itself a
// measurable slice of map-phase time — profiling overhead distorting the
// quantity being profiled. The sampled scheme times records in pairs:
//
//   - The first `warmup` records are timed exactly (weight 1), so short
//     tasks keep precise numbers.
//   - After warm-up, every `period`-th record is a sample point: its
//     emit span is measured and attributed with the weight of all
//     unmeasured emits since the previous sample, and the record
//     immediately after it measures one user gap (end of the sampled
//     emit to the next Collect), attributed with the matching weight.
//   - All other records touch no clock at all.
//
// Attribution is therefore statistical: each sample stands in for the
// period it covers, unbiased when per-record costs are i.i.d. within a
// task. The tail after the last sample point is covered only by
// Finish's single unweighted user-gap reading, so up to period-1
// records' emit time goes unattributed — bounded, and negligible at the
// record counts where sampling matters.
//
// Time that must not count as emit work (producer blocking on a full
// spill buffer, frequency-buffer profiling, user combine) is excluded
// from the open sample via Exclude.
//
// An EmitTimer is not safe for concurrent use; the map goroutine owns it.
type EmitTimer struct {
	tm     *TaskMetrics
	warmup int64
	period int64

	n          int64 // records seen
	lastEmit   int64 // index of the last emit-timed record
	lastUser   int64 // index of the last user-gap-timed record
	postSample bool  // the next record measures one user gap
	timed      bool  // the current record's emit span is being measured

	mark        time.Time // end of the runtime's last involvement
	sampleStart time.Time
	excl        time.Duration

	clockReads int64 // monotonic clock reads performed (overhead reporting)
}

// Defaults for the map collector: the first 16 records are timed
// precisely (so tiny tasks and unit tests keep exact attribution), then
// one record in 64 pays for the clock.
const (
	DefaultEmitWarmup = 16
	DefaultEmitPeriod = 64
)

// NewEmitTimer returns an EmitTimer recording into tm. warmup records
// are timed precisely; afterwards every period-th record is sampled.
// period <= 1 keeps every record precisely timed.
func NewEmitTimer(tm *TaskMetrics, warmup, period int64) *EmitTimer {
	if warmup < 0 {
		warmup = 0
	}
	if period < 1 {
		period = 1
	}
	return &EmitTimer{
		tm:       tm,
		warmup:   warmup,
		period:   period,
		lastEmit: -1,
		lastUser: -1,
		mark:     time.Now(),
	}
}

// Restart resets the user-time clock to now without attributing the
// elapsed gap (used when task setup time must not count as map() time).
func (e *EmitTimer) Restart() {
	e.mark = time.Now()
	e.clockReads++
}

// BeforeEmit is called on entry to the collector, before the emit path
// runs, and decides whether this record is timed.
func (e *EmitTimer) BeforeEmit() {
	n := e.n
	switch {
	case n < e.warmup || e.period == 1:
		// Precise: attribute the user gap since the last record and open
		// an emit measurement, both weight 1.
		now := time.Now()
		e.clockReads++
		e.tm.Add(OpMapUser, now.Sub(e.mark))
		e.lastUser = n
		e.sampleStart = now
		e.excl = 0
		e.timed = true
		e.postSample = false
	case (n-e.warmup)%e.period == 0:
		// Sample point: open an emit measurement. The user gap leading
		// here is not measurable (the clock was last read periods ago);
		// the next record's gap stands in for it.
		now := time.Now()
		e.clockReads++
		e.sampleStart = now
		e.excl = 0
		e.timed = true
	case e.postSample:
		// The record after a sample point: the gap from the sampled
		// emit's end to now is one clean user gap; extrapolate it over
		// every record since the last user measurement.
		now := time.Now()
		e.clockReads++
		weight := n - e.lastUser
		e.tm.Add(OpMapUser, time.Duration(weight)*now.Sub(e.mark))
		e.lastUser = n
		e.mark = now
		e.postSample = false
		e.timed = false
	default:
		e.timed = false
	}
}

// Exclude subtracts d from the emit measurement currently open (time
// already attributed elsewhere: buffer-full blocking, profiling, user
// combine). Harmless when no measurement is open.
func (e *EmitTimer) Exclude(d time.Duration) {
	e.excl += d
}

// AfterEmit closes the measurement opened by BeforeEmit and advances
// the record counter.
func (e *EmitTimer) AfterEmit() {
	n := e.n
	e.n++
	if !e.timed {
		return
	}
	now := time.Now()
	e.clockReads++
	weight := n - e.lastEmit
	e.lastEmit = n
	e.tm.Add(OpEmit, time.Duration(weight)*(now.Sub(e.sampleStart)-e.excl))
	e.mark = now
	if n >= e.warmup && e.period > 1 {
		e.postSample = true
	}
}

// Finish attributes the trailing user gap (input consumed after the
// last emitted record) and closes the timer.
func (e *EmitTimer) Finish() {
	e.clockReads++
	e.tm.Add(OpMapUser, time.Since(e.mark))
}

// Records returns the number of records observed.
func (e *EmitTimer) Records() int64 { return e.n }

// ClockReads returns how many monotonic clock readings the timer has
// performed — the profiling-overhead figure the sampled scheme shrinks
// (the precise scheme reads the clock 2n times for n records).
func (e *EmitTimer) ClockReads() int64 { return e.clockReads }
