// Package fabric simulates the cluster interconnect. Each node has one NIC
// with a configurable bandwidth and per-transfer latency; a transfer
// between two nodes occupies both endpoints' NICs for its duration, so
// concurrent shuffles queue against each other the way they do on a real
// top-of-rack network. Same-node transfers are free (they never leave the
// host).
//
// The shuffle phase of the runtime charges every remote segment fetch
// through the fabric, which is what makes the EC2-scale experiment
// (Table IV) show the paper's "larger overhead of transmitting more data
// between nodes" effect for InvertedIndex.
package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes NIC performance. Zero BytesPerSec disables throttling
// (transfers are still counted).
type Config struct {
	BytesPerSec int64
	Latency     time.Duration
}

// DefaultConfig models gigabit Ethernet.
func DefaultConfig() Config {
	return Config{BytesPerSec: 110 << 20, Latency: 500 * time.Microsecond}
}

// Stats is cumulative fabric accounting.
type Stats struct {
	BytesMoved int64 // bytes that crossed node boundaries
	Transfers  int64 // remote transfer operations
	LocalBytes int64 // bytes "moved" between a node and itself (free)
	LocalReads int64
	// MaxInFlight is the high-water mark of concurrently in-flight remote
	// transfers across the whole fabric — the pipelined shuffle's copier
	// fan-out made visible (a serial shuffle never exceeds the reduce
	// slot count; concurrent copiers push past it).
	MaxInFlight int64
}

// NodeStats is per-NIC traffic accounting: what one node sent and
// received across the fabric (local loopback traffic excluded).
type NodeStats struct {
	BytesOut int64
	BytesIn  int64
	// MaxInFlight is the high-water mark of remote transfers this NIC was
	// an endpoint of at one time.
	MaxInFlight int64
}

// Fabric is the simulated interconnect. Safe for concurrent use.
type Fabric struct {
	cfg         Config
	nics        []nic
	moved       atomic.Int64
	xfers       atomic.Int64
	local       atomic.Int64
	lhits       atomic.Int64
	inflight    atomic.Int64
	maxInflight atomic.Int64
	// hook, when installed, is consulted before every transfer; it lets
	// the chaos layer fail transfers that touch a dead node.
	hook atomic.Pointer[func(src, dst int) error]
}

type nic struct {
	mu          sync.Mutex
	nextFree    time.Time
	out         atomic.Int64
	in          atomic.Int64
	inflight    atomic.Int64
	maxInflight atomic.Int64
}

// raiseMax lifts watermark to at least cur via CAS.
func raiseMax(watermark *atomic.Int64, cur int64) {
	for {
		m := watermark.Load()
		if cur <= m || watermark.CompareAndSwap(m, cur) {
			return
		}
	}
}

// New creates a fabric connecting n nodes.
func New(n int, cfg Config) (*Fabric, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fabric: need at least one node, got %d", n)
	}
	return &Fabric{cfg: cfg, nics: make([]nic, n)}, nil
}

// Nodes returns the number of connected nodes.
func (f *Fabric) Nodes() int { return len(f.nics) }

// SetFaultHook installs (or, with nil, removes) a check run before every
// transfer, including same-node ones. A non-nil error from the hook fails
// the transfer without moving or counting any bytes.
func (f *Fabric) SetFaultHook(h func(src, dst int) error) {
	if h == nil {
		f.hook.Store(nil)
		return
	}
	f.hook.Store(&h)
}

// Transfer moves n bytes from src to dst, blocking the caller for the
// simulated transfer time. Same-node transfers return immediately.
func (f *Fabric) Transfer(src, dst int, n int64) error {
	if src < 0 || src >= len(f.nics) || dst < 0 || dst >= len(f.nics) {
		return fmt.Errorf("fabric: transfer %d→%d outside 0..%d", src, dst, len(f.nics)-1)
	}
	if h := f.hook.Load(); h != nil {
		if err := (*h)(src, dst); err != nil {
			return fmt.Errorf("fabric: transfer %d→%d: %w", src, dst, err)
		}
	}
	if src == dst {
		f.local.Add(n)
		f.lhits.Add(1)
		return nil
	}
	f.moved.Add(n)
	f.xfers.Add(1)
	f.nics[src].out.Add(n)
	f.nics[dst].in.Add(n)
	raiseMax(&f.maxInflight, f.inflight.Add(1))
	defer f.inflight.Add(-1)
	raiseMax(&f.nics[src].maxInflight, f.nics[src].inflight.Add(1))
	defer f.nics[src].inflight.Add(-1)
	raiseMax(&f.nics[dst].maxInflight, f.nics[dst].inflight.Add(1))
	defer f.nics[dst].inflight.Add(-1)
	if f.cfg.BytesPerSec <= 0 && f.cfg.Latency <= 0 {
		return nil
	}
	var busy time.Duration
	if f.cfg.BytesPerSec > 0 {
		busy = time.Duration(float64(n) / float64(f.cfg.BytesPerSec) * float64(time.Second))
	}
	busy += f.cfg.Latency

	// Occupy both NICs: the transfer starts when the later of the two is
	// free and holds both for its duration. Lock ordering by index avoids
	// deadlock between concurrent opposite-direction transfers.
	a, b := src, dst
	if a > b {
		a, b = b, a
	}
	now := time.Now()
	f.nics[a].mu.Lock()
	f.nics[b].mu.Lock()
	start := now
	if f.nics[a].nextFree.After(start) {
		start = f.nics[a].nextFree
	}
	if f.nics[b].nextFree.After(start) {
		start = f.nics[b].nextFree
	}
	deadline := start.Add(busy)
	f.nics[a].nextFree = deadline
	f.nics[b].nextFree = deadline
	f.nics[b].mu.Unlock()
	f.nics[a].mu.Unlock()

	if d := time.Until(deadline); d > 0 {
		time.Sleep(d)
	}
	return nil
}

// InFlight returns the number of remote transfers in flight across the
// whole fabric right now. It is the live counterpart of
// Stats.MaxInFlight: the shuffle copier governor polls it to tell a
// fabric-hot map phase (many DFS block reads crossing the wire) from a
// quiet one, and throttles copier fan-out accordingly.
func (f *Fabric) InFlight() int64 { return f.inflight.Load() }

// NodeStats returns one node's cumulative sent/received remote traffic.
func (f *Fabric) NodeStats(node int) (NodeStats, error) {
	if node < 0 || node >= len(f.nics) {
		return NodeStats{}, fmt.Errorf("fabric: node %d outside 0..%d", node, len(f.nics)-1)
	}
	return NodeStats{
		BytesOut:    f.nics[node].out.Load(),
		BytesIn:     f.nics[node].in.Load(),
		MaxInFlight: f.nics[node].maxInflight.Load(),
	}, nil
}

// Stats returns cumulative accounting.
func (f *Fabric) Stats() Stats {
	return Stats{
		BytesMoved:  f.moved.Load(),
		Transfers:   f.xfers.Load(),
		LocalBytes:  f.local.Load(),
		LocalReads:  f.lhits.Load(),
		MaxInFlight: f.maxInflight.Load(),
	}
}
