package fabric

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Config{}); err == nil {
		t.Error("zero nodes accepted")
	}
	f, err := New(3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes() != 3 {
		t.Errorf("nodes %d", f.Nodes())
	}
}

func TestTransferBounds(t *testing.T) {
	f, _ := New(2, Config{})
	for _, c := range [][2]int{{-1, 0}, {0, 2}, {5, 0}} {
		if err := f.Transfer(c[0], c[1], 100); err == nil {
			t.Errorf("transfer %d→%d accepted", c[0], c[1])
		}
	}
}

func TestLocalTransfersFree(t *testing.T) {
	f, _ := New(2, Config{BytesPerSec: 1, Latency: time.Hour}) // absurdly slow
	start := time.Now()
	if err := f.Transfer(1, 1, 1<<30); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("same-node transfer was throttled")
	}
	s := f.Stats()
	if s.LocalBytes != 1<<30 || s.LocalReads != 1 || s.BytesMoved != 0 {
		t.Errorf("stats %+v", s)
	}
}

func TestRemoteTransferMetered(t *testing.T) {
	f, _ := New(2, Config{BytesPerSec: 1 << 20}) // 1 MiB/s
	start := time.Now()
	if err := f.Transfer(0, 1, 128<<10); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("128 KiB at 1 MiB/s finished in %v", elapsed)
	}
	s := f.Stats()
	if s.BytesMoved != 128<<10 || s.Transfers != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestUnthrottledCountsOnly(t *testing.T) {
	f, _ := New(2, Config{})
	start := time.Now()
	if err := f.Transfer(0, 1, 1<<30); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("unthrottled transfer slept")
	}
	if f.Stats().BytesMoved != 1<<30 {
		t.Errorf("stats %+v", f.Stats())
	}
}

func TestNICSerialization(t *testing.T) {
	// Two concurrent transfers into the same destination NIC must queue.
	f, _ := New(3, Config{BytesPerSec: 1 << 20})
	start := time.Now()
	var wg sync.WaitGroup
	for src := 0; src < 2; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			f.Transfer(src, 2, 64<<10)
		}(src)
	}
	wg.Wait()
	// Each transfer alone: 62.5 ms; serialized: ~125 ms.
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("concurrent transfers to one NIC completed in %v", elapsed)
	}
}

func TestContentionSerializesAndAccounts(t *testing.T) {
	// Four sources hammer one destination NIC concurrently: the transfers
	// must queue (serialized time, not parallel time) and the per-node and
	// global accounting must balance exactly despite the contention.
	const (
		sources = 4
		size    = int64(32 << 10)
	)
	f, _ := New(5, Config{BytesPerSec: 1 << 20}) // 1 MiB/s: 31.25 ms per transfer
	start := time.Now()
	var wg sync.WaitGroup
	for src := 0; src < sources; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			if err := f.Transfer(src, 4, size); err != nil {
				t.Errorf("transfer %d→4: %v", src, err)
			}
		}(src)
	}
	wg.Wait()
	// Serialized: ~125 ms. Fully parallel would be ~31 ms.
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("four contending transfers finished in %v, want serialized ≥100ms", elapsed)
	}
	s := f.Stats()
	if s.BytesMoved != sources*size || s.Transfers != sources {
		t.Errorf("global stats %+v, want %d bytes over %d transfers", s, sources*size, sources)
	}
	dst, err := f.NodeStats(4)
	if err != nil {
		t.Fatal(err)
	}
	if dst.BytesIn != sources*size || dst.BytesOut != 0 {
		t.Errorf("destination NIC stats %+v", dst)
	}
	for src := 0; src < sources; src++ {
		ns, err := f.NodeStats(src)
		if err != nil {
			t.Fatal(err)
		}
		if ns.BytesOut != size || ns.BytesIn != 0 {
			t.Errorf("source %d NIC stats %+v, want out=%d in=0", src, ns, size)
		}
	}
}

func TestPerNodeAccountingUnderConcurrentLoad(t *testing.T) {
	// An all-to-all burst on an unthrottled fabric: every ordered pair
	// (i≠j) moves i*nodes+j+1 bytes, many times, from many goroutines.
	// Afterwards each NIC's in/out totals must match the closed-form sums
	// and the global counter must equal the sum of either side.
	const (
		nodes  = 4
		rounds = 50
	)
	f, _ := New(nodes, Config{})
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for i := 0; i < nodes; i++ {
			for j := 0; j < nodes; j++ {
				if i == j {
					continue
				}
				wg.Add(1)
				go func(i, j int) {
					defer wg.Done()
					if err := f.Transfer(i, j, int64(i*nodes+j+1)); err != nil {
						t.Errorf("transfer %d→%d: %v", i, j, err)
					}
				}(i, j)
			}
		}
	}
	wg.Wait()
	var totalOut, totalIn int64
	for n := 0; n < nodes; n++ {
		var wantOut, wantIn int64
		for o := 0; o < nodes; o++ {
			if o == n {
				continue
			}
			wantOut += int64(rounds * (n*nodes + o + 1))
			wantIn += int64(rounds * (o*nodes + n + 1))
		}
		ns, err := f.NodeStats(n)
		if err != nil {
			t.Fatal(err)
		}
		if ns.BytesOut != wantOut || ns.BytesIn != wantIn {
			t.Errorf("node %d stats %+v, want out=%d in=%d", n, ns, wantOut, wantIn)
		}
		totalOut += ns.BytesOut
		totalIn += ns.BytesIn
	}
	s := f.Stats()
	if totalOut != s.BytesMoved || totalIn != s.BytesMoved {
		t.Errorf("NIC sums out=%d in=%d disagree with BytesMoved=%d", totalOut, totalIn, s.BytesMoved)
	}
	if s.Transfers != rounds*nodes*(nodes-1) {
		t.Errorf("transfers %d, want %d", s.Transfers, rounds*nodes*(nodes-1))
	}
}

func TestNodeStatsBounds(t *testing.T) {
	f, _ := New(2, Config{})
	for _, n := range []int{-1, 2, 7} {
		if _, err := f.NodeStats(n); err == nil {
			t.Errorf("NodeStats(%d) accepted", n)
		}
	}
}

func TestFaultHookFailsTransfersWithoutCounting(t *testing.T) {
	f, _ := New(3, Config{})
	boom := fmt.Errorf("node 1 is dead")
	f.SetFaultHook(func(src, dst int) error {
		if src == 1 || dst == 1 {
			return boom
		}
		return nil
	})
	if err := f.Transfer(0, 1, 100); !errors.Is(err, boom) {
		t.Errorf("transfer into dead node: %v", err)
	}
	if err := f.Transfer(1, 2, 100); !errors.Is(err, boom) {
		t.Errorf("transfer out of dead node: %v", err)
	}
	if err := f.Transfer(1, 1, 100); !errors.Is(err, boom) {
		t.Errorf("local transfer on dead node: %v", err)
	}
	if err := f.Transfer(0, 2, 100); err != nil {
		t.Errorf("transfer between live nodes: %v", err)
	}
	s := f.Stats()
	if s.BytesMoved != 100 || s.Transfers != 1 || s.LocalBytes != 0 {
		t.Errorf("failed transfers leaked into accounting: %+v", s)
	}
	for _, n := range []int{1} {
		ns, _ := f.NodeStats(n)
		if ns.BytesIn != 0 || ns.BytesOut != 0 {
			t.Errorf("dead node %d accrued traffic %+v", n, ns)
		}
	}
	f.SetFaultHook(nil)
	if err := f.Transfer(0, 1, 50); err != nil {
		t.Errorf("transfer after hook removal: %v", err)
	}
}

func TestFaultHookSwapUnderLoad(t *testing.T) {
	// Installing, replacing, and removing the hook while transfers are in
	// flight must be race-free (the hook is an atomic pointer); transfers
	// observe either hook state but never crash or corrupt accounting.
	f, _ := New(2, Config{})
	stop := make(chan struct{})
	swapperDone := make(chan struct{})
	go func() {
		defer close(swapperDone)
		reject := fmt.Errorf("rejected")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				f.SetFaultHook(func(src, dst int) error { return nil })
			case 1:
				f.SetFaultHook(func(src, dst int) error { return reject })
			default:
				f.SetFaultHook(nil)
			}
		}
	}()
	var moved atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := f.Transfer(0, 1, 10); err == nil {
					moved.Add(10)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-swapperDone
	if got := f.Stats().BytesMoved; got != moved.Load() {
		t.Errorf("bytes moved %d, successful transfers moved %d", got, moved.Load())
	}
}

func TestOppositeDirectionNoDeadlock(t *testing.T) {
	f, _ := New(2, Config{BytesPerSec: 8 << 20, Latency: time.Millisecond})
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for i := 0; i < 50; i++ {
			wg.Add(2)
			go func() { defer wg.Done(); f.Transfer(0, 1, 4<<10) }()
			go func() { defer wg.Done(); f.Transfer(1, 0, 4<<10) }()
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock between opposite-direction transfers")
	}
	if f.Stats().Transfers != 100 {
		t.Errorf("transfers %d", f.Stats().Transfers)
	}
}

// TestMaxInFlightWatermark pins the in-flight gauges: transfers that
// overlap in time must push the fabric-wide and per-NIC high-water marks
// past one, and a strictly serial workload must not.
func TestMaxInFlightWatermark(t *testing.T) {
	f, err := New(4, Config{Latency: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Transfer(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().MaxInFlight; got != 1 {
		t.Fatalf("serial transfer: MaxInFlight = %d, want 1", got)
	}

	// Disjoint NIC pairs so the transfers genuinely overlap instead of
	// queueing on a shared endpoint.
	var wg sync.WaitGroup
	for _, pair := range [][2]int{{0, 1}, {2, 3}} {
		wg.Add(1)
		go func(src, dst int) {
			defer wg.Done()
			if err := f.Transfer(src, dst, 1); err != nil {
				t.Error(err)
			}
		}(pair[0], pair[1])
	}
	wg.Wait()
	if got := f.Stats().MaxInFlight; got < 2 {
		t.Fatalf("overlapping transfers: fabric MaxInFlight = %d, want >= 2", got)
	}
	ns, err := f.NodeStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if ns.MaxInFlight != 1 {
		t.Fatalf("node 0 MaxInFlight = %d, want 1", ns.MaxInFlight)
	}
}

// TestInFlightTracksRemoteTransfers asserts the live in-flight probe the
// shuffle copier governor polls: it rises while a throttled remote
// transfer occupies the fabric and returns to zero when it lands.
func TestInFlightTracksRemoteTransfers(t *testing.T) {
	f, _ := New(2, Config{BytesPerSec: 1 << 20}) // 1 MiB/s
	if got := f.InFlight(); got != 0 {
		t.Fatalf("idle fabric InFlight = %d, want 0", got)
	}
	done := make(chan error, 1)
	go func() { done <- f.Transfer(0, 1, 256<<10) }() // ~250ms on the wire
	deadline := time.Now().Add(5 * time.Second)
	for f.InFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("InFlight = %d while a transfer is on the wire, want 1", f.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := f.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after the transfer landed, want 0", got)
	}

	// Local transfers never touch the wire accounting.
	if err := f.Transfer(1, 1, 1<<30); err != nil {
		t.Fatal(err)
	}
	if got := f.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after a local transfer, want 0", got)
	}
}
