package fabric

import (
	"sync"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Config{}); err == nil {
		t.Error("zero nodes accepted")
	}
	f, err := New(3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Nodes() != 3 {
		t.Errorf("nodes %d", f.Nodes())
	}
}

func TestTransferBounds(t *testing.T) {
	f, _ := New(2, Config{})
	for _, c := range [][2]int{{-1, 0}, {0, 2}, {5, 0}} {
		if err := f.Transfer(c[0], c[1], 100); err == nil {
			t.Errorf("transfer %d→%d accepted", c[0], c[1])
		}
	}
}

func TestLocalTransfersFree(t *testing.T) {
	f, _ := New(2, Config{BytesPerSec: 1, Latency: time.Hour}) // absurdly slow
	start := time.Now()
	if err := f.Transfer(1, 1, 1<<30); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("same-node transfer was throttled")
	}
	s := f.Stats()
	if s.LocalBytes != 1<<30 || s.LocalReads != 1 || s.BytesMoved != 0 {
		t.Errorf("stats %+v", s)
	}
}

func TestRemoteTransferMetered(t *testing.T) {
	f, _ := New(2, Config{BytesPerSec: 1 << 20}) // 1 MiB/s
	start := time.Now()
	if err := f.Transfer(0, 1, 128<<10); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("128 KiB at 1 MiB/s finished in %v", elapsed)
	}
	s := f.Stats()
	if s.BytesMoved != 128<<10 || s.Transfers != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestUnthrottledCountsOnly(t *testing.T) {
	f, _ := New(2, Config{})
	start := time.Now()
	if err := f.Transfer(0, 1, 1<<30); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("unthrottled transfer slept")
	}
	if f.Stats().BytesMoved != 1<<30 {
		t.Errorf("stats %+v", f.Stats())
	}
}

func TestNICSerialization(t *testing.T) {
	// Two concurrent transfers into the same destination NIC must queue.
	f, _ := New(3, Config{BytesPerSec: 1 << 20})
	start := time.Now()
	var wg sync.WaitGroup
	for src := 0; src < 2; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			f.Transfer(src, 2, 64<<10)
		}(src)
	}
	wg.Wait()
	// Each transfer alone: 62.5 ms; serialized: ~125 ms.
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("concurrent transfers to one NIC completed in %v", elapsed)
	}
}

func TestOppositeDirectionNoDeadlock(t *testing.T) {
	f, _ := New(2, Config{BytesPerSec: 8 << 20, Latency: time.Millisecond})
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for i := 0; i < 50; i++ {
			wg.Add(2)
			go func() { defer wg.Done(); f.Transfer(0, 1, 4<<10) }()
			go func() { defer wg.Done(); f.Transfer(1, 0, 4<<10) }()
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock between opposite-direction transfers")
	}
	if f.Stats().Transfers != 100 {
		t.Errorf("transfers %d", f.Stats().Transfers)
	}
}
