// Package ingestbench is the regression harness for the ingest fast
// path: it drains the same DFS-resident datasets once through the
// pre-fast-path pipeline (the bufio lineScanner plus the idiomatic
// per-record kernels it was paired with — bytes.Fields tokenization,
// bytes.Split field splitting, strconv parses through string
// conversions) and once through the fast path (the block-batched arena
// blockScanner plus the fastparse kernels over reused scratch). Both
// pipelines fold every token into a checksum, so the tokenize/parse work
// cannot be eliminated and the harness doubles as an end-to-end identity
// check: serial and batched must agree on record count, byte count and
// checksum for every workload.
//
// Like internal/spillpath, measurement is a hand-rolled loop rather than
// testing.Benchmark so cmd/mrbench -ingestbench can run it long enough
// for stable numbers (BENCH_ingest.json) while the package test runs a
// small smoke. Wall time is the minimum over iterations; allocations are
// counted over a steady-state window that starts warmupLines into the
// drain, after the reader has opened its DFS block and the kernels'
// scratch has grown to fit — the 1BRC figure of merit, which the fast
// path holds at exactly zero per record. The dataset is written as a
// single DFS block so the window contains no per-block (amortized)
// transitions; split-boundary correctness is proven separately by the
// byte-identity tests in internal/mr.
package ingestbench

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"time"

	"mrtext/internal/cluster"
	"mrtext/internal/fastparse"
	"mrtext/internal/mr"
	"mrtext/internal/textgen"
)

// warmupLines is how many records each drain consumes before the
// steady-state allocation window opens.
const warmupLines = 2000

// Run is one (workload, reader+kernel) measurement in BENCH_ingest.json.
type Run struct {
	Workload        string  `json:"workload"`
	Config          string  `json:"config"` // "serial" or "batched"
	Records         int64   `json:"records"`
	Bytes           int64   `json:"bytes"`
	WallMS          float64 `json:"wall_ms"`
	GBPerSecPerCore float64 `json:"gb_per_sec_per_core"`
	// AllocsPerRecord is measured over the steady-state window (see the
	// package comment); 0 means the drain allocated nothing at all after
	// warm-up.
	AllocsPerRecord float64 `json:"allocs_per_record"`
	// Speedup is serial wall / this config's wall for the same workload;
	// 1.0 for the serial baseline itself.
	Speedup float64 `json:"speedup_vs_serial"`
}

// Report is the full harness output, serialized to BENCH_ingest.json.
type Report struct {
	Note       string `json:"note"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CorpusMB   int64  `json:"corpus_mb"`
	ChunkKB    int    `json:"ingest_chunk_kb"`
	Iters      int    `json:"iters"`
	Runs       []Run  `json:"runs"`
}

// kernel is the per-line tokenize/parse work of one pipeline; Sum is the
// checksum that keeps the work live and lets serial and batched variants
// be compared for identity.
type kernel interface {
	Line(line []byte) error
	Sum() int64
	Reset()
}

// serialCorpusKernel is the pre-fast-path tokenizer: bytes.Fields, one
// fresh [][]byte per line.
type serialCorpusKernel struct{ sum int64 }

func (k *serialCorpusKernel) Line(line []byte) error {
	for _, w := range bytes.Fields(line) {
		k.sum += int64(len(w)) + int64(w[0])
	}
	return nil
}
func (k *serialCorpusKernel) Sum() int64 { return k.sum }
func (k *serialCorpusKernel) Reset()     { k.sum = 0 }

// fastCorpusKernel is the fast-path tokenizer: fastparse.Fields into
// reused scratch.
type fastCorpusKernel struct {
	sum   int64
	words [][]byte
}

func (k *fastCorpusKernel) Line(line []byte) error {
	k.words = fastparse.Fields(k.words[:0], line)
	for _, w := range k.words {
		k.sum += int64(len(w)) + int64(w[0])
	}
	return nil
}
func (k *fastCorpusKernel) Sum() int64 { return k.sum }
func (k *fastCorpusKernel) Reset()     { k.sum = 0 }

var pipe = []byte("|")

// serialVisitsKernel is the pre-fast-path UserVisits parser: bytes.Split
// plus strconv.ParseInt through a string conversion — the shape of the
// per-record allocation bug the fast path removed from the access-log
// mappers.
type serialVisitsKernel struct{ sum int64 }

func (k *serialVisitsKernel) Line(line []byte) error {
	f := bytes.Split(line, pipe)
	if len(f) < 7 {
		return fmt.Errorf("ingestbench: malformed visit line %q", line)
	}
	v, err := strconv.ParseInt(string(f[3]), 10, 64)
	if err != nil {
		return fmt.Errorf("ingestbench: parsing revenue %q: %w", f[3], err)
	}
	k.sum += v + int64(len(f[1]))
	return nil
}
func (k *serialVisitsKernel) Sum() int64 { return k.sum }
func (k *serialVisitsKernel) Reset()     { k.sum = 0 }

// fastVisitsKernel is the fast-path UserVisits parser: fastparse.SplitByte
// into reused scratch plus fastparse.ParseInt on the raw field bytes.
type fastVisitsKernel struct {
	sum    int64
	fields [][]byte
}

func (k *fastVisitsKernel) Line(line []byte) error {
	k.fields = fastparse.SplitByte(k.fields[:0], line, '|')
	if len(k.fields) < 7 {
		return fmt.Errorf("ingestbench: malformed visit line %q", line)
	}
	v, err := fastparse.ParseInt(k.fields[3])
	if err != nil {
		return fmt.Errorf("ingestbench: parsing revenue %q: %w", k.fields[3], err)
	}
	k.sum += v + int64(len(k.fields[1]))
	return nil
}
func (k *fastVisitsKernel) Sum() int64 { return k.sum }
func (k *fastVisitsKernel) Reset()     { k.sum = 0 }

// drainResult is one pipeline's figures, minimized over iterations.
type drainResult struct {
	records int64
	bytes   int64
	wall    time.Duration
	allocs  float64 // per steady-state record
	sum     int64
}

// drain runs the open→scan→tokenize pipeline iters times over the given
// splits and keeps the minimum wall time and steady-state allocation
// count. The kernel's scratch persists across iterations (steady state);
// its checksum is reset per iteration and must be identical every time.
func drain(splits []mr.Split, open func(mr.Split) (mr.LineReader, error), k kernel, iters int) (drainResult, error) {
	res := drainResult{wall: 1<<63 - 1, allocs: float64(1 << 62)}
	for it := 0; it < iters; it++ {
		k.Reset()
		runtime.GC() // quiesce so no concurrent GC work lands in the window
		var before, after runtime.MemStats
		var records, consumed int64
		windowOpen := int64(-1) // record count when the window opened
		t0 := time.Now()
		for _, sp := range splits {
			r, err := open(sp)
			if err != nil {
				return res, err
			}
			for {
				_, line, ok, err := r.Next()
				if err != nil {
					return res, err
				}
				if !ok {
					break
				}
				if err := k.Line(line); err != nil {
					return res, err
				}
				records++
				if records == warmupLines {
					runtime.ReadMemStats(&before)
					windowOpen = records
				}
			}
			consumed += r.Consumed()
			if err := r.Close(); err != nil {
				return res, err
			}
		}
		wall := time.Since(t0)
		runtime.ReadMemStats(&after)
		if windowOpen < 0 {
			return res, fmt.Errorf("ingestbench: dataset has %d records, below the %d-record warm-up", records, warmupLines)
		}
		steady := records - windowOpen
		allocs := float64(after.Mallocs-before.Mallocs) / float64(steady)
		if wall < res.wall {
			res.wall = wall
		}
		if allocs < res.allocs {
			res.allocs = allocs
		}
		if it > 0 && (records != res.records || k.Sum() != res.sum) {
			return res, fmt.Errorf("ingestbench: nondeterministic drain: %d records sum %d, then %d records sum %d",
				res.records, res.sum, records, k.Sum())
		}
		res.records, res.bytes, res.sum = records, consumed, k.Sum()
	}
	return res, nil
}

// workload pairs a generated dataset with its two kernel variants.
type workload struct {
	name     string
	file     string
	generate func(c *cluster.Cluster) error
	serial   kernel
	fast     kernel
}

// Do runs the harness: it stands up a single-node unthrottled cluster
// whose block size covers each dataset in one block, generates the two
// text-centric datasets (Zipf corpus and UserVisits log), and measures
// the serial and batched pipelines over each.
func Do(megabytes int64, chunkBytes, iters int, seed int64) (Report, error) {
	if megabytes < 1 {
		megabytes = 1
	}
	if iters < 1 {
		iters = 1
	}
	target := megabytes << 20

	cfg := cluster.Fast(1)
	cfg.Replication = 1
	// One block per dataset: the steady-state window then measures the
	// scan/tokenize loop alone, with no per-block (amortized) DFS
	// transitions inside it.
	cfg.BlockSize = target + (1 << 20)
	c, err := cluster.New(cfg)
	if err != nil {
		return Report{}, err
	}

	workloads := []workload{
		{
			name: "corpus-tokenize",
			file: "corpus.txt",
			generate: func(c *cluster.Cluster) error {
				return generate(c, "corpus.txt", func(w io.Writer) error {
					_, err := textgen.Corpus(w, corpusConfig(seed), target)
					return err
				})
			},
			serial: &serialCorpusKernel{},
			fast:   &fastCorpusKernel{},
		},
		{
			name: "visits-parse",
			file: "visits.log",
			generate: func(c *cluster.Cluster) error {
				return generate(c, "visits.log", func(w io.Writer) error {
					_, err := textgen.UserVisits(w, logConfig(seed), target)
					return err
				})
			},
			serial: &serialVisitsKernel{},
			fast:   &fastVisitsKernel{},
		},
	}

	rep := Report{
		Note: "ingest fast path: serial = bufio lineScanner + bytes.Fields/bytes.Split/strconv(string(...)); " +
			"batched = arena blockScanner + fastparse over reused scratch; allocs/record over the steady-state window",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CorpusMB:   megabytes,
		ChunkKB:    chunkBytes >> 10,
		Iters:      iters,
	}
	for _, wl := range workloads {
		if err := wl.generate(c); err != nil {
			return rep, fmt.Errorf("generating %s: %w", wl.file, err)
		}
		splits, err := mr.SplitsOf(c.FS, []string{wl.file})
		if err != nil {
			return rep, err
		}
		serial, err := drain(splits, func(sp mr.Split) (mr.LineReader, error) {
			return mr.OpenSplitSerial(c.FS, sp, 0)
		}, wl.serial, iters)
		if err != nil {
			return rep, fmt.Errorf("%s serial: %w", wl.name, err)
		}
		batched, err := drain(splits, func(sp mr.Split) (mr.LineReader, error) {
			return mr.OpenSplitBatched(c.FS, sp, 0, chunkBytes)
		}, wl.fast, iters)
		if err != nil {
			return rep, fmt.Errorf("%s batched: %w", wl.name, err)
		}
		// The two pipelines scanned the same file: identical records,
		// bytes and token checksum, or one of the readers is wrong.
		if serial.records != batched.records || serial.bytes != batched.bytes || serial.sum != batched.sum {
			return rep, fmt.Errorf("%s: serial (%d records, %d bytes, sum %d) != batched (%d records, %d bytes, sum %d)",
				wl.name, serial.records, serial.bytes, serial.sum, batched.records, batched.bytes, batched.sum)
		}
		rep.Runs = append(rep.Runs,
			toRun(wl.name, "serial", serial, serial),
			toRun(wl.name, "batched", batched, serial))
	}
	return rep, nil
}

func toRun(workload, config string, r, serial drainResult) Run {
	return Run{
		Workload:        workload,
		Config:          config,
		Records:         r.records,
		Bytes:           r.bytes,
		WallMS:          float64(r.wall.Microseconds()) / 1e3,
		GBPerSecPerCore: float64(r.bytes) / r.wall.Seconds() / 1e9,
		AllocsPerRecord: r.allocs,
		Speedup:         serial.wall.Seconds() / r.wall.Seconds(),
	}
}

// corpusConfig and logConfig are the dataset defaults reseeded with the
// harness seed, so -seed varies the text without changing its shape.
func corpusConfig(seed int64) textgen.CorpusConfig {
	cfg := textgen.DefaultCorpus()
	cfg.Seed = seed
	return cfg
}

func logConfig(seed int64) textgen.LogConfig {
	cfg := textgen.DefaultLog()
	cfg.Seed = seed
	return cfg
}

// generate writes one dataset into the DFS from node 0.
func generate(c *cluster.Cluster, name string, fill func(io.Writer) error) error {
	w, err := c.FS.Create(name, 0)
	if err != nil {
		return err
	}
	if err := fill(w); err != nil {
		return errors.Join(err, w.Close())
	}
	return w.Close()
}
