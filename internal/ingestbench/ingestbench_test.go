package ingestbench

import "testing"

// TestHarnessSmoke runs the harness at a small scale: every pipeline must
// drain (the harness itself fails on serial/batched record, byte or
// checksum divergence), and the batched pipelines must hold the
// steady-state allocation count at exactly zero per record — the
// ground-truth claim behind the //mrlint:hotpath annotations on the
// blockScanner and the fastparse kernels, pinned here to the real
// compiler and runtime. Race instrumentation inflates allocation counts,
// so the ==0 assertion is relaxed under -race (raceEnabled), matching the
// alloccheck ground-truth convention.
func TestHarnessSmoke(t *testing.T) {
	rep, err := Do(4, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 4 {
		t.Fatalf("got %d runs, want 4 (2 workloads x 2 configs)", len(rep.Runs))
	}
	for _, r := range rep.Runs {
		if r.Records == 0 || r.Bytes == 0 || r.WallMS <= 0 || r.GBPerSecPerCore <= 0 {
			t.Errorf("%s/%s: degenerate run %+v", r.Workload, r.Config, r)
		}
		if r.Config == "serial" && r.Speedup != 1.0 {
			t.Errorf("%s serial: speedup %v, want 1.0", r.Workload, r.Speedup)
		}
		if r.Config == "batched" && r.AllocsPerRecord != 0 && !raceEnabled {
			t.Errorf("%s batched: %.4f allocs/record in steady state, want 0", r.Workload, r.AllocsPerRecord)
		}
	}
}

// TestHarnessChunkOverride exercises the explicit chunk knob: a tiny
// arena forces constant refills and slides, and the drain must still be
// byte- and checksum-identical to the serial reader (asserted inside Do).
func TestHarnessChunkOverride(t *testing.T) {
	rep, err := Do(1, 4<<10, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChunkKB != 4 {
		t.Fatalf("ChunkKB = %d, want 4", rep.ChunkKB)
	}
}
