// Package postag is the part-of-speech tagging substrate standing in for
// the Apache OpenNLP tagger the paper's WordPOSTag benchmark uses. It is a
// real (if modest) tagger: per-token scores come from orthographic features
// (suffixes, prefixes, character classes, length), a sentence-level Viterbi
// decode applies a tag-transition model, and an iterative rescoring loop
// refines lexical scores against the neighbouring tags — the knob that
// makes map() as CPU-dominant as OpenNLP is in the paper (Fig. 2 shows
// WordPOSTag's user code at >90% of all work).
//
// The tagger is deterministic: the same sentence always yields the same
// tags, so MapReduce runs are comparable against the sequential reference.
package postag

import (
	"math"
)

// Tag is a universal-style part-of-speech tag.
type Tag uint8

// The tag set (12 universal tags).
const (
	Noun Tag = iota
	Verb
	Adj
	Adv
	Pron
	Det
	Adp
	Num
	Conj
	Prt
	Punct
	Other
	NumTags // sentinel
)

var tagNames = [NumTags]string{
	"NOUN", "VERB", "ADJ", "ADV", "PRON", "DET",
	"ADP", "NUM", "CONJ", "PRT", "PUNCT", "X",
}

// String returns the tag's name.
func (t Tag) String() string {
	if t >= NumTags {
		return "?"
	}
	return tagNames[t]
}

// Tagger tags token sequences. Construct once per task and reuse; it is
// not safe for concurrent use (it keeps scratch buffers).
type Tagger struct {
	iterations int
	trans      [NumTags][NumTags]float64

	// scratch
	lexical [][NumTags]float64
	anchor  [][NumTags]float64
	delta   [][NumTags]float64
	backp   [][NumTags]uint8
	tags    []Tag
}

// New returns a Tagger whose rescoring loop runs the given number of
// iterations — the CPU-intensity knob. 1 is a plain Viterbi decode; the
// paper-scale WordPOSTag configuration uses a large value (see apps) so the
// user map() dominates runtime as OpenNLP does.
func New(iterations int) *Tagger {
	if iterations < 1 {
		iterations = 1
	}
	t := &Tagger{iterations: iterations}
	t.initTransitions()
	return t
}

// initTransitions fills a plausible fixed transition model: determiners
// precede nouns/adjectives, adpositions precede determiners and nouns,
// verbs follow nouns/pronouns, and so on. Magnitudes matter only
// relatively.
func (t *Tagger) initTransitions() {
	for i := range t.trans {
		for j := range t.trans[i] {
			t.trans[i][j] = -2.0 // default mild penalty
		}
	}
	set := func(a, b Tag, w float64) { t.trans[a][b] = w }
	set(Det, Noun, 1.5)
	set(Det, Adj, 1.0)
	set(Adj, Noun, 1.4)
	set(Adj, Adj, 0.2)
	set(Noun, Verb, 1.2)
	set(Pron, Verb, 1.3)
	set(Verb, Det, 0.9)
	set(Verb, Adv, 0.7)
	set(Verb, Noun, 0.5)
	set(Adv, Verb, 0.8)
	set(Adv, Adj, 0.6)
	set(Adp, Det, 1.1)
	set(Adp, Noun, 0.9)
	set(Noun, Adp, 0.6)
	set(Noun, Conj, 0.4)
	set(Conj, Noun, 0.6)
	set(Conj, Verb, 0.4)
	set(Num, Noun, 1.0)
	set(Noun, Punct, 0.5)
	set(Punct, Det, 0.5)
	set(Prt, Verb, 0.7)
	set(Verb, Prt, 0.6)
}

// lexicalScores fills the per-token tag scores from orthographic features.
// Synthetic corpora have no real lexicon, so features hash the token's
// characters; the function is intentionally arithmetic-heavy (transcendental
// feature squashing per tag) because its cost models a real maxent model's
// dot products.
func (t *Tagger) lexicalScores(token []byte, out *[NumTags]float64) {
	var h uint64 = 1469598103934665603 // FNV-64 offset
	for _, c := range token {
		h ^= uint64(c)
		h *= 1099511628211
	}
	n := len(token)
	var suffix uint64
	for i := n - 3; i < n; i++ {
		suffix = suffix << 8
		if i >= 0 {
			suffix |= uint64(token[i])
		}
	}
	first := byte(0)
	if n > 0 {
		first = token[0]
	}
	digit := first >= '0' && first <= '9'
	punct := n == 1 && !(first >= 'a' && first <= 'z') && !digit

	for tag := Tag(0); tag < NumTags; tag++ {
		// Mix token hash with the tag id into a pseudo feature weight,
		// squashed to (-1, 1).
		mix := h ^ (suffix * (uint64(tag)*2654435761 + 97))
		mix ^= mix >> 33
		mix *= 0xff51afd7ed558ccd
		mix ^= mix >> 29
		f := float64(int64(mix)) / float64(math.MaxInt64)
		score := math.Tanh(f) + 0.1*math.Sin(f*float64(n+1))
		switch {
		case digit && tag == Num:
			score += 6.0
		case punct && tag == Punct:
			score += 6.0
		case n <= 2 && (tag == Det || tag == Adp || tag == Pron || tag == Conj):
			score += 0.8 // short words skew closed-class
		case n >= 8 && (tag == Noun || tag == Adj):
			score += 0.6 // long words skew open-class
		}
		out[tag] = score
	}
}

// Tag assigns a tag to every token of the sentence. The returned slice is
// reused across calls.
func (t *Tagger) Tag(tokens [][]byte) []Tag {
	n := len(tokens)
	if n == 0 {
		return nil
	}
	if cap(t.lexical) < n {
		t.lexical = make([][NumTags]float64, n)
		t.anchor = make([][NumTags]float64, n)
		t.delta = make([][NumTags]float64, n)
		t.backp = make([][NumTags]uint8, n)
		t.tags = make([]Tag, n)
	}
	lex := t.lexical[:n]
	anchor := t.anchor[:n]
	delta := t.delta[:n]
	backp := t.backp[:n]
	tags := t.tags[:n]

	for i, tok := range tokens {
		t.lexicalScores(tok, &anchor[i])
		lex[i] = anchor[i]
	}

	for iter := 0; iter < t.iterations; iter++ {
		// Viterbi decode under the current lexical scores.
		delta[0] = lex[0]
		for i := 1; i < n; i++ {
			for cur := Tag(0); cur < NumTags; cur++ {
				best := math.Inf(-1)
				var bestPrev uint8
				for prev := Tag(0); prev < NumTags; prev++ {
					s := delta[i-1][prev] + t.trans[prev][cur]
					if s > best {
						best = s
						bestPrev = uint8(prev)
					}
				}
				delta[i][cur] = best + lex[i][cur]
				backp[i][cur] = bestPrev
			}
		}
		bestLast := Tag(0)
		for tag := Tag(1); tag < NumTags; tag++ {
			if delta[n-1][tag] > delta[n-1][bestLast] {
				bestLast = tag
			}
		}
		tags[n-1] = bestLast
		for i := n - 1; i > 0; i-- {
			tags[i-1] = Tag(backp[i][tags[i]])
		}
		if iter == t.iterations-1 {
			break
		}
		// Rescoring: recompute each token's lexical scores as its anchor
		// (orthographic) score plus an agreement term with the decoded
		// neighbours, then decode again. Anchoring on the original scores
		// keeps strong orthographic evidence (digits, punctuation) from
		// dissolving over many iterations. This is the CPU-intensity loop.
		for i := 0; i < n; i++ {
			for tag := Tag(0); tag < NumTags; tag++ {
				var ctx float64
				if i > 0 {
					ctx += t.trans[tags[i-1]][tag]
				}
				if i+1 < n {
					ctx += t.trans[tag][tags[i+1]]
				}
				lex[i][tag] = anchor[i][tag] + 0.3*math.Tanh(ctx)
			}
		}
	}
	return tags
}

// Iterations returns the configured rescoring iteration count.
func (t *Tagger) Iterations() int { return t.iterations }
