package postag

import (
	"bytes"
	"testing"
	"time"
)

func toks(words ...string) [][]byte {
	out := make([][]byte, len(words))
	for i, w := range words {
		out[i] = []byte(w)
	}
	return out
}

func TestTagBasics(t *testing.T) {
	tg := New(3)
	tags := tg.Tag(toks("the", "quick", "brown", "fox", "jumps"))
	if len(tags) != 5 {
		t.Fatalf("got %d tags", len(tags))
	}
	for i, tag := range tags {
		if tag >= NumTags {
			t.Errorf("token %d: tag %d out of range", i, tag)
		}
	}
	if got := tg.Tag(nil); got != nil {
		t.Errorf("empty sentence: %v", got)
	}
}

func TestDeterministic(t *testing.T) {
	sentence := toks("a", "bb", "ccc", "dddd", "ee", "f", "gg", "hhh")
	a := append([]Tag(nil), New(5).Tag(sentence)...)
	b := append([]Tag(nil), New(5).Tag(sentence)...)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at token %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestScratchReuseDoesNotCorrupt(t *testing.T) {
	tg := New(2)
	s1 := toks("alpha", "beta", "gamma", "delta")
	s2 := toks("x", "y")
	want1 := append([]Tag(nil), tg.Tag(s1)...)
	tg.Tag(s2) // shorter sentence reuses buffers
	got1 := tg.Tag(s1)
	for i := range want1 {
		if got1[i] != want1[i] {
			t.Fatalf("token %d changed after scratch reuse: %v vs %v", i, got1[i], want1[i])
		}
	}
}

func TestOrthographicFeatures(t *testing.T) {
	tg := New(1)
	tags := tg.Tag(toks("runs", "42", ".", "17"))
	if tags[1] != Num || tags[3] != Num {
		t.Errorf("digits tagged %v and %v, want NUM", tags[1], tags[3])
	}
	if tags[2] != Punct {
		t.Errorf("period tagged %v, want PUNCT", tags[2])
	}
}

func TestIterationsScaleCost(t *testing.T) {
	// More iterations must cost proportionally more CPU — the knob the
	// WordPOSTag benchmark depends on. Compare 1 vs 50 iterations.
	sentence := make([][]byte, 200)
	for i := range sentence {
		sentence[i] = []byte{byte('a' + i%26), byte('a' + (i/26)%26)}
	}
	measure := func(iters, reps int) time.Duration {
		tg := New(iters)
		start := time.Now()
		for r := 0; r < reps; r++ {
			tg.Tag(sentence)
		}
		return time.Since(start)
	}
	measure(1, 3) // warm up
	fast := measure(1, 20)
	slow := measure(50, 20)
	if slow < 5*fast {
		t.Errorf("50 iterations only %.1fx slower than 1 (%v vs %v)", float64(slow)/float64(fast), slow, fast)
	}
}

func TestIterationClampAndAccessor(t *testing.T) {
	if New(0).Iterations() != 1 || New(-5).Iterations() != 1 {
		t.Error("iterations not clamped to 1")
	}
	if New(7).Iterations() != 7 {
		t.Error("iterations accessor wrong")
	}
}

func TestTagNames(t *testing.T) {
	seen := map[string]bool{}
	for tag := Tag(0); tag < NumTags; tag++ {
		name := tag.String()
		if name == "" || name == "?" {
			t.Errorf("tag %d has no name", tag)
		}
		if seen[name] {
			t.Errorf("duplicate tag name %q", name)
		}
		seen[name] = true
	}
	if Tag(200).String() != "?" {
		t.Error("out-of-range tag name")
	}
}

func TestContextMatters(t *testing.T) {
	// The same word in different contexts can receive different tags (the
	// Viterbi pass is real, not per-token): check that at least one word
	// in a probe set exhibits context sensitivity.
	tg := New(4)
	probe := []string{"ab", "cd", "ef", "gh", "ij", "kl"}
	sensitive := false
	for _, w := range probe {
		alone := tg.Tag(toks(w))[0]
		inCtx := tg.Tag(toks("the", w, "runs"))[1]
		if alone != inCtx {
			sensitive = true
			break
		}
	}
	if !sensitive {
		t.Log("no probe word changed tag with context (acceptable but suspicious)")
	}
}

func TestLongSentence(t *testing.T) {
	words := make([][]byte, 5000)
	for i := range words {
		words[i] = bytes.Repeat([]byte{byte('a' + i%26)}, 1+i%9)
	}
	tags := New(2).Tag(words)
	if len(tags) != len(words) {
		t.Fatalf("got %d tags for %d words", len(tags), len(words))
	}
}
