package postag

import "testing"

func benchSentence(n int) [][]byte {
	words := make([][]byte, n)
	for i := range words {
		words[i] = []byte{byte('a' + i%26), byte('a' + (i/26)%26), byte('a' + i%7)}
	}
	return words
}

func BenchmarkTagViterbiOnly(b *testing.B) {
	tg := New(1)
	sentence := benchSentence(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg.Tag(sentence)
	}
	b.SetBytes(20)
}

func BenchmarkTagPaperIntensity(b *testing.B) {
	tg := New(8)
	sentence := benchSentence(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg.Tag(sentence)
	}
	b.SetBytes(20)
}
