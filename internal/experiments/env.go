// Package experiments regenerates every table and figure of the paper's
// evaluation (§II profiling + §V experiments) on the simulated cluster.
// Each experiment is a function from an Env (scale, cluster shape, output
// writer) to a printed table plus structured rows; cmd/mrbench exposes
// them by id and bench_test.go wraps them as benchmarks.
//
// Scale note: the paper runs 8–145 GB inputs on physical clusters; the
// default Env scales everything down (~16 MiB corpus) so a full table
// regenerates in minutes on one machine. Because both optimizations act on
// per-task pipeline behaviour and intermediate-data volume, the *shape* of
// every result — which configuration wins, roughly by what factor, where
// the crossovers fall — is preserved; absolute seconds are not comparable.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"mrtext/internal/apps"
	"mrtext/internal/cluster"
	"mrtext/internal/mr"
	"mrtext/internal/textgen"
)

// Env parameterizes an experiment run.
type Env struct {
	// Scale multiplies every dataset size (1.0 = defaults below).
	Scale float64
	// Cluster is the cluster shape; zero value means the paper's local
	// cluster.
	Cluster cluster.Config
	// POSIterations is WordPOSTag's CPU-intensity knob, scaled down from
	// the paper's OpenNLP cost so the experiment completes in minutes.
	POSIterations int
	// SpillBufferBytes is the map-side buffer M for all jobs.
	SpillBufferBytes int64
	// Seed offsets all generator seeds.
	Seed int64
	// Out receives the printed tables (defaults to io.Discard).
	Out io.Writer
}

// Default dataset sizes at Scale = 1.
const (
	defCorpusBytes = 16 << 20
	defVisitBytes  = 24 << 20
	defGraphPages  = 40_000
	defVocabulary  = 120_000
	defURLs        = 40_000
)

// DefaultEnv returns the standard experiment environment: the paper's
// local-cluster shape at reproduction scale.
func DefaultEnv() Env {
	return Env{
		Scale:            1,
		Cluster:          cluster.LocalSmall(),
		POSIterations:    8,
		SpillBufferBytes: 2 << 20,
		Seed:             1,
		Out:              io.Discard,
	}
}

func (e Env) withDefaults() Env {
	if e.Scale <= 0 {
		e.Scale = 1
	}
	if e.Cluster.Nodes == 0 {
		e.Cluster = cluster.LocalSmall()
	}
	if e.POSIterations <= 0 {
		e.POSIterations = 8
	}
	if e.SpillBufferBytes <= 0 {
		e.SpillBufferBytes = 2 << 20
	}
	if e.Out == nil {
		e.Out = io.Discard
	}
	return e
}

func (e Env) printf(format string, args ...interface{}) {
	//mrlint:ignore droppederr best-effort progress output; e.Out is a fire-and-forget log sink
	fmt.Fprintf(e.Out, format, args...)
}

func (e Env) corpusBytes() int64 { return int64(float64(defCorpusBytes) * e.Scale) }
func (e Env) visitBytes() int64  { return int64(float64(defVisitBytes) * e.Scale) }
func (e Env) graphPages() int64  { return int64(float64(defGraphPages) * e.Scale) }

// AppID identifies one benchmark application.
type AppID string

// The six applications of §II-B.
const (
	WordCount     AppID = "WordCount"
	InvertedIndex AppID = "InvertedIndex"
	WordPOSTag    AppID = "WordPOSTag"
	AccessLogSum  AppID = "AccessLogSum"
	AccessLogJoin AppID = "AccessLogJoin"
	PageRank      AppID = "PageRank"
)

// AllApps lists the applications in the paper's presentation order.
var AllApps = []AppID{WordCount, InvertedIndex, WordPOSTag, AccessLogSum, AccessLogJoin, PageRank}

// TextApps are the three text-centric applications.
var TextApps = []AppID{WordCount, InvertedIndex, WordPOSTag}

// Variant is one of the four test scenarios of §V.
type Variant string

// The four configurations of Table III.
const (
	Baseline Variant = "Baseline"
	FreqOpt  Variant = "FreqOpt"
	SpillOpt Variant = "SpillOpt"
	Combined Variant = "Combined"
)

// AllVariants in the paper's row order.
var AllVariants = []Variant{Baseline, FreqOpt, SpillOpt, Combined}

// Data names the generated datasets on one cluster.
type Data struct {
	Corpus     string
	Visits     string
	Rankings   string
	Graph      string
	GraphPages int64
}

// needs flags which datasets an experiment requires.
type needs struct{ corpus, logs, graph bool }

// setup builds a cluster from the environment and generates the requested
// datasets into its DFS.
func setup(env Env, n needs) (*cluster.Cluster, Data, error) {
	c, err := cluster.New(env.Cluster)
	if err != nil {
		return nil, Data{}, err
	}
	d := Data{}
	if n.corpus {
		d.Corpus = "corpus.txt"
		cfg := textgen.CorpusConfig{Vocabulary: defVocabulary, Alpha: 1.0, WordsPerLine: 10, Seed: env.Seed + 10}
		if err := gen(c, d.Corpus, func(w io.Writer) error {
			_, err := textgen.Corpus(w, cfg, env.corpusBytes())
			return err
		}); err != nil {
			return nil, Data{}, fmt.Errorf("experiments: generating corpus: %w", err)
		}
	}
	if n.logs {
		d.Visits, d.Rankings = "uservisits.log", "rankings.tbl"
		cfg := textgen.LogConfig{URLs: defURLs, Alpha: 0.8, Seed: env.Seed + 20}
		if err := gen(c, d.Visits, func(w io.Writer) error {
			_, err := textgen.UserVisits(w, cfg, env.visitBytes())
			return err
		}); err != nil {
			return nil, Data{}, fmt.Errorf("experiments: generating visits: %w", err)
		}
		if err := gen(c, d.Rankings, func(w io.Writer) error {
			_, err := textgen.Rankings(w, cfg)
			return err
		}); err != nil {
			return nil, Data{}, fmt.Errorf("experiments: generating rankings: %w", err)
		}
	}
	if n.graph {
		d.Graph = "crawl.tsv"
		d.GraphPages = env.graphPages()
		cfg := textgen.GraphConfig{Pages: d.GraphPages, Alpha: 1.0, MeanOutDegree: 8, Seed: env.Seed + 30}
		if err := gen(c, d.Graph, func(w io.Writer) error {
			_, err := textgen.WebGraph(w, cfg)
			return err
		}); err != nil {
			return nil, Data{}, fmt.Errorf("experiments: generating graph: %w", err)
		}
	}
	return c, d, nil
}

func gen(c *cluster.Cluster, name string, fill func(io.Writer) error) error {
	w, err := c.FS.Create(name, 0)
	if err != nil {
		return err
	}
	if err := fill(w); err != nil {
		return errors.Join(err, w.Close())
	}
	return w.Close()
}

// appNeeds returns the datasets an application requires.
func appNeeds(app AppID) needs {
	switch app {
	case WordCount, InvertedIndex, WordPOSTag:
		return needs{corpus: true}
	case AccessLogSum, AccessLogJoin:
		return needs{logs: true}
	case PageRank:
		return needs{graph: true}
	}
	return needs{}
}

// mergeNeeds unions dataset requirements.
func mergeNeeds(apps []AppID) needs {
	var n needs
	for _, a := range apps {
		an := appNeeds(a)
		n.corpus = n.corpus || an.corpus
		n.logs = n.logs || an.logs
		n.graph = n.graph || an.graph
	}
	return n
}

// makeJob builds the job spec for an application under a variant.
func makeJob(env Env, d Data, app AppID, v Variant) (*mr.Job, error) {
	var job *mr.Job
	switch app {
	case WordCount:
		job = apps.WordCount(d.Corpus)
	case InvertedIndex:
		job = apps.InvertedIndex(d.Corpus)
	case WordPOSTag:
		job = apps.WordPOSTag(env.POSIterations, d.Corpus)
	case AccessLogSum:
		job = apps.AccessLogSum(d.Visits)
	case AccessLogJoin:
		job = apps.AccessLogJoin(d.Visits, d.Rankings)
	case PageRank:
		job = apps.PageRank(d.Graph, d.GraphPages)
	default:
		return nil, fmt.Errorf("experiments: unknown app %q", app)
	}
	job.Name = fmt.Sprintf("%s-%s", job.Name, v)
	job.SpillBufferBytes = env.SpillBufferBytes
	applyVariant(job, app, v)
	return job, nil
}

// applyVariant flips the optimization switches per the paper's settings:
// text applications use the k=3000/s=0.01 frequency-buffering parameters,
// log/graph applications k=10000/s=0.1 (§V-B2).
func applyVariant(job *mr.Job, app AppID, v Variant) {
	freq := v == FreqOpt || v == Combined
	spill := v == SpillOpt || v == Combined
	if freq {
		switch app {
		case WordCount, InvertedIndex, WordPOSTag:
			job.FreqBuf = mr.DefaultFreqBufText()
		default:
			job.FreqBuf = mr.DefaultFreqBufLog()
		}
	}
	job.SpillMatcher = spill
}

// timed runs one job and returns its result.
func timed(c *cluster.Cluster, job *mr.Job) (*mr.Result, error) {
	return mr.Run(c, job)
}

// seconds renders a duration with 2 decimals.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// pct renders new/old as the paper does ("78.4%"), guarding zero.
func pct(new, old time.Duration) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(new)/float64(old))
}
