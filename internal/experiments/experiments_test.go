package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mrtext/internal/cluster"
)

// tinyEnv runs experiments at smoke-test scale on an unthrottled cluster.
func tinyEnv() Env {
	var buf bytes.Buffer
	return Env{
		Scale:            0.02,
		Cluster:          cluster.Fast(2),
		POSIterations:    1,
		SpillBufferBytes: 256 << 10,
		Seed:             1,
		Out:              &buf,
	}
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"ablation", "fig10", "fig2", "fig3", "fig7", "fig8", "fig9", "spillmodel", "table2", "table3", "table4"}
	if len(names) != len(want) {
		t.Fatalf("names %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("name %d: %q want %q", i, names[i], n)
		}
	}
	if err := Run("nope", tinyEnv()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestEnvDefaults(t *testing.T) {
	e := Env{}.withDefaults()
	if e.Scale != 1 || e.Cluster.Nodes != 6 || e.POSIterations <= 0 || e.Out == nil {
		t.Errorf("defaults %+v", e)
	}
	if e.corpusBytes() != defCorpusBytes {
		t.Errorf("corpus bytes %d", e.corpusBytes())
	}
}

func TestAppNeedsAndJobs(t *testing.T) {
	env := tinyEnv()
	c, data, err := setup(env, mergeNeeds(AllApps))
	if err != nil {
		t.Fatal(err)
	}
	if !c.FS.Exists(data.Corpus) || !c.FS.Exists(data.Visits) || !c.FS.Exists(data.Rankings) || !c.FS.Exists(data.Graph) {
		t.Fatal("datasets missing")
	}
	for _, app := range AllApps {
		for _, v := range AllVariants {
			job, err := makeJob(env, data, app, v)
			if err != nil {
				t.Fatalf("%s/%s: %v", app, v, err)
			}
			freq := v == FreqOpt || v == Combined
			if (job.FreqBuf != nil) != freq {
				t.Errorf("%s/%s: freqbuf=%v", app, v, job.FreqBuf != nil)
			}
			if job.SpillMatcher != (v == SpillOpt || v == Combined) {
				t.Errorf("%s/%s: spillmatcher=%v", app, v, job.SpillMatcher)
			}
		}
	}
	if _, err := makeJob(env, data, AppID("bogus"), Baseline); err == nil {
		t.Error("bogus app accepted")
	}
}

func TestFreqBufParamsPerAppClass(t *testing.T) {
	env := tinyEnv()
	data := Data{Corpus: "c", Visits: "v", Rankings: "r", Graph: "g", GraphPages: 10}
	text, _ := makeJob(env, data, WordCount, FreqOpt)
	if text.FreqBuf.K != 3000 || text.FreqBuf.SampleFraction != 0.01 {
		t.Errorf("text freqbuf %+v", text.FreqBuf)
	}
	logj, _ := makeJob(env, data, AccessLogSum, FreqOpt)
	if logj.FreqBuf.K != 10000 || logj.FreqBuf.SampleFraction != 0.1 {
		t.Errorf("log freqbuf %+v", logj.FreqBuf)
	}
}

func TestRunFig7Shapes(t *testing.T) {
	env := tinyEnv()
	env.Scale = 0.1 // 100k records
	r, err := RunFig7(env)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, p := range r.Points {
		byKey[p.Input+"/"+p.Predictor+"/"+string(rune(p.K))] = p.Removed
		if p.Removed < 0 || p.Removed > 1 {
			t.Errorf("removed fraction %g out of range", p.Removed)
		}
	}
	// Paper shapes: ideal dominates freqbuf at every size; all predictors
	// improve with buffer size; text (α≈1) beats log (α=0.8).
	find := func(input, pred string, k int) float64 {
		for _, p := range r.Points {
			if p.Input == input && p.Predictor == pred && p.K == k {
				return p.Removed
			}
		}
		t.Fatalf("missing point %s/%s/%d", input, pred, k)
		return 0
	}
	for _, input := range []string{"text", "log"} {
		for _, k := range fig7Sizes {
			if find(input, "ideal", k) < find(input, "freqbuf", k) {
				t.Errorf("%s k=%d: freqbuf beats ideal", input, k)
			}
		}
		if find(input, "freqbuf", 16000) <= find(input, "freqbuf", 250) {
			t.Errorf("%s: freqbuf does not improve with buffer size", input)
		}
	}
	if find("text", "ideal", 1000) <= find("log", "ideal", 1000) {
		t.Error("text (α≈1) should be more skewed than log (α=0.8)")
	}
}

func TestRunFig3FitsZipf(t *testing.T) {
	env := tinyEnv()
	env.Scale = 0.1
	r, err := RunFig3(env)
	if err != nil {
		t.Fatal(err)
	}
	if r.Alpha < 0.7 || r.Alpha > 1.3 {
		t.Errorf("fitted alpha %g for an α=1 corpus", r.Alpha)
	}
	if r.TotalWords == 0 || r.DistinctWords == 0 || len(r.Points) == 0 {
		t.Errorf("empty result %+v", r)
	}
	// Rank-frequency must be non-increasing across the sampled points.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Freq > r.Points[i-1].Freq {
			t.Errorf("frequency increases at rank %d", r.Points[i].Rank)
		}
	}
}

func TestRunSpillModelBoundary(t *testing.T) {
	r, err := RunSpillModel(tinyEnv())
	if err != nil {
		t.Fatal(err)
	}
	// Below the boundary: no wait. The matcher is near wait-free for all
	// ratios.
	for _, row := range r.Static {
		boundary := r.Boundary[row.RateRatio]
		if row.X < boundary-0.05 && row.SlowerWaitFrac > 0.02 {
			t.Errorf("ratio %g x=%g below boundary %g waits %.1f%%",
				row.RateRatio, row.X, boundary, 100*row.SlowerWaitFrac)
		}
	}
	for _, row := range r.Matcher {
		if row.SlowerWaitFrac > 0.02 {
			t.Errorf("matcher ratio %g waits %.1f%%", row.RateRatio, 100*row.SlowerWaitFrac)
		}
	}
}

func TestRunFig2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime experiment")
	}
	env := tinyEnv()
	r, err := RunFig2(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Breakdowns) != len(AllApps) {
		t.Fatalf("%d breakdowns", len(r.Breakdowns))
	}
	for _, b := range r.Breakdowns {
		if b.Total <= 0 {
			t.Errorf("%s: no work recorded", b.App)
		}
		if b.UserFraction <= 0 || b.UserFraction >= 1 {
			t.Errorf("%s: user fraction %g", b.App, b.UserFraction)
		}
	}
	out := env.Out.(*bytes.Buffer).String()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "Fig. 2") {
		t.Error("tables not printed")
	}
}

func TestRunTable3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime experiment")
	}
	env := tinyEnv()
	tbl, err := runTimingTable(env, "smoke", []AppID{WordCount, AccessLogSum}, AllVariants)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []AppID{WordCount, AccessLogSum} {
		row := tbl.Rows[app]
		if len(row) != 4 {
			t.Fatalf("%s: %d variants", app, len(row))
		}
		base := row[Baseline]
		if base.Wall <= 0 || base.RelBaseline != 1 {
			t.Errorf("%s baseline %+v", app, base)
		}
		for _, v := range AllVariants {
			if row[v].RelBaseline <= 0 {
				t.Errorf("%s/%s rel %g", app, v, row[v].RelBaseline)
			}
		}
	}
}

func TestRunFig9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime experiment")
	}
	env := tinyEnv()
	r, err := RunFig9(env, WordCount)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MapBusy <= 0 || row.SupportBusy <= 0 {
			t.Errorf("%s/%s: zero busy time", row.App, row.Variant)
		}
	}
}

func TestRunAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime experiment")
	}
	env := tinyEnv()
	r, err := RunAblation(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*len(ablationConfigs) {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Wall <= 0 || row.Rel <= 0 {
			t.Errorf("row %+v", row)
		}
	}
}

func TestRunFig10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime experiment")
	}
	env := tinyEnv()
	env.Scale = 0.08 // Fig10 divides by 4 internally
	r, err := RunFig10(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != len(r.CPUFactors)*len(r.Storages) {
		t.Fatalf("%d cells", len(r.Cells))
	}
	for _, cell := range r.Cells {
		if cell.Baseline <= 0 || cell.Combined <= 0 {
			t.Errorf("cell %+v has zero timings", cell)
		}
	}
}

func TestRunFig8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime experiment")
	}
	env := tinyEnv()
	r, err := RunFig8(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pairs) != len(AllApps) {
		t.Fatalf("%d pairs", len(r.Pairs))
	}
	for _, p := range r.Pairs {
		if p.Base.Total <= 0 || p.Freq.Total <= 0 {
			t.Errorf("%s: empty breakdowns", p.Base.App)
		}
		if p.Base.Variant != Baseline || p.Freq.Variant != FreqOpt {
			t.Errorf("%s: wrong variants %s/%s", p.Base.App, p.Base.Variant, p.Freq.Variant)
		}
	}
}

func TestRunTable4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime experiment")
	}
	env := tinyEnv()
	env.Cluster = cluster.Fast(4) // stand-in for the EC2 shape at test scale
	tbl, err := RunTable4(env)
	if err != nil {
		t.Fatal(err)
	}
	wantApps := []AppID{WordCount, InvertedIndex, PageRank}
	if len(tbl.Apps) != len(wantApps) {
		t.Fatalf("apps %v", tbl.Apps)
	}
	for _, app := range wantApps {
		if len(tbl.Rows[app]) != 4 {
			t.Errorf("%s has %d variants", app, len(tbl.Rows[app]))
		}
	}
}
