package experiments

import (
	"fmt"
	"time"

	"mrtext/internal/cluster"
)

// Timing is one (application, variant) measurement.
type Timing struct {
	App     AppID
	Variant Variant
	Wall    time.Duration
	// RelBaseline = Wall / baseline Wall for the same app.
	RelBaseline float64
}

// TimingTable is the structured result of Table III / Table IV.
type TimingTable struct {
	Name    string
	Apps    []AppID
	Rows    map[AppID]map[Variant]Timing
	Cluster string
}

// RunTable3 reproduces Table III: overall local-cluster runtimes of all
// six applications under the four configurations.
func RunTable3(env Env) (*TimingTable, error) {
	env = env.withDefaults()
	return runTimingTable(env, "Table III (local cluster)", AllApps, AllVariants)
}

// RunTable4 reproduces Table IV: the EC2-scale run (20 nodes, scaled
// input) for the applications the paper reports there. When the caller
// left the default local-cluster shape in place, it is swapped for the
// paper's 20-node EC2 shape; an explicit cluster override is respected.
func RunTable4(env Env) (*TimingTable, error) {
	env = env.withDefaults()
	if env.Cluster.Nodes == cluster.LocalSmall().Nodes {
		env.Cluster = cluster.EC2Large()
	}
	apps := []AppID{WordCount, InvertedIndex, PageRank}
	return runTimingTable(env, "Table IV (EC2-scale cluster)", apps, AllVariants)
}

func runTimingTable(env Env, name string, appList []AppID, variants []Variant) (*TimingTable, error) {
	tbl := &TimingTable{
		Name:    name,
		Apps:    appList,
		Rows:    make(map[AppID]map[Variant]Timing),
		Cluster: fmt.Sprintf("%d nodes × (%dm+%dr)", env.Cluster.Nodes, env.Cluster.MapSlotsPerNode, env.Cluster.ReduceSlotsPerNode),
	}
	for _, app := range appList {
		c, data, err := setup(env, appNeeds(app))
		if err != nil {
			return nil, err
		}
		tbl.Rows[app] = make(map[Variant]Timing)
		var base time.Duration
		for _, v := range variants {
			job, err := makeJob(env, data, app, v)
			if err != nil {
				return nil, err
			}
			res, err := timed(c, job)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", app, v, err)
			}
			t := Timing{App: app, Variant: v, Wall: res.Wall}
			if v == Baseline {
				base = res.Wall
			}
			if base > 0 {
				t.RelBaseline = float64(res.Wall) / float64(base)
			}
			tbl.Rows[app][v] = t
			env.printf("  %-14s %-9s %10s", app, v, seconds(res.Wall))
			if v != Baseline {
				env.printf("  (%s of baseline)", pct(res.Wall, base))
			}
			env.printf("\n")
		}
	}
	printTimingTable(env, tbl)
	return tbl, nil
}

func printTimingTable(env Env, tbl *TimingTable) {
	env.printf("\n%s — %s\n", tbl.Name, tbl.Cluster)
	env.printf("%-14s", "app")
	for _, v := range AllVariants {
		env.printf(" %18s", v)
	}
	env.printf("\n")
	for _, app := range tbl.Apps {
		row := tbl.Rows[app]
		if row == nil {
			continue
		}
		env.printf("%-14s", app)
		base := row[Baseline].Wall
		for _, v := range AllVariants {
			t, ok := row[v]
			if !ok {
				env.printf(" %18s", "-")
				continue
			}
			if v == Baseline {
				env.printf(" %18s", seconds(t.Wall))
			} else {
				env.printf(" %9s (%s)", seconds(t.Wall), pct(t.Wall, base))
			}
		}
		env.printf("\n")
	}
}
