package experiments

import (
	"fmt"
	"time"

	"mrtext/internal/metrics"
	"mrtext/internal/mr"
)

// Breakdown is one application's serialized-view cost breakdown — the data
// behind one bar of Fig. 2 (baseline) or one bar pair of Fig. 8
// (baseline vs FreqOpt).
type Breakdown struct {
	App     AppID
	Variant Variant
	Ops     [metrics.NumOps]time.Duration
	Total   time.Duration
	// UserFraction is the share of total work in user code (map +
	// combine + reduce) — the quantity §II-C1 highlights.
	UserFraction float64
	// MapIdle / SupportIdle are the Table II columns.
	MapIdle, SupportIdle float64
}

func breakdownOf(app AppID, v Variant, res *mr.Result) Breakdown {
	b := Breakdown{App: app, Variant: v, Ops: res.Agg.Ops, Total: res.Agg.TotalWork()}
	if b.Total > 0 {
		b.UserFraction = float64(res.Agg.UserWork()) / float64(b.Total)
	}
	b.MapIdle = res.MapIdleFraction()
	b.SupportIdle = res.SupportIdleFraction()
	return b
}

// Fig2Result carries per-app baseline breakdowns (Fig. 2) and the idle
// percentages (Table II), which the paper derives from the same profiling
// runs.
type Fig2Result struct {
	Breakdowns []Breakdown
}

// RunFig2 reproduces Fig. 2 (baseline serialized cost breakdown per
// application) and Table II (map/support idle percentages).
func RunFig2(env Env) (*Fig2Result, error) {
	env = env.withDefaults()
	out := &Fig2Result{}
	for _, app := range AllApps {
		c, data, err := setup(env, appNeeds(app))
		if err != nil {
			return nil, err
		}
		job, err := makeJob(env, data, app, Baseline)
		if err != nil {
			return nil, err
		}
		res, err := timed(c, job)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app, err)
		}
		out.Breakdowns = append(out.Breakdowns, breakdownOf(app, Baseline, res))
	}
	printFig2(env, out)
	printTable2(env, out)
	return out, nil
}

func printFig2(env Env, r *Fig2Result) {
	env.printf("\nFig. 2 — serialized cost breakdown (baseline), %% of total work\n")
	env.printf("%-14s", "app")
	for op := metrics.Op(0); op < metrics.NumOps; op++ {
		env.printf(" %9s", op)
	}
	env.printf(" %9s %6s\n", "total", "user%")
	for _, b := range r.Breakdowns {
		env.printf("%-14s", b.App)
		for op := metrics.Op(0); op < metrics.NumOps; op++ {
			if b.Total == 0 {
				env.printf(" %9s", "-")
				continue
			}
			env.printf(" %8.1f%%", 100*float64(b.Ops[op])/float64(b.Total))
		}
		env.printf(" %9s %5.1f%%\n", seconds(b.Total), 100*b.UserFraction)
	}
}

func printTable2(env Env, r *Fig2Result) {
	env.printf("\nTable II — %% of map-task time the map/support threads are idle\n")
	env.printf("%-14s %10s %14s\n", "app", "map idle", "support idle")
	for _, b := range r.Breakdowns {
		env.printf("%-14s %9.2f%% %13.2f%%\n", b.App, 100*b.MapIdle, 100*b.SupportIdle)
	}
}

// RunTable2 reproduces Table II alone (it shares Fig. 2's runs).
func RunTable2(env Env) (*Fig2Result, error) {
	env = env.withDefaults()
	r, err := RunFig2(env)
	return r, err
}

// Fig8Result pairs baseline and frequency-buffered breakdowns per app.
type Fig8Result struct {
	Pairs []struct {
		Base, Freq Breakdown
	}
}

// RunFig8 reproduces Fig. 8: abstraction-cost breakdown per application,
// baseline vs frequency-buffering, with the paper's per-app parameters.
func RunFig8(env Env) (*Fig8Result, error) {
	env = env.withDefaults()
	out := &Fig8Result{}
	for _, app := range AllApps {
		c, data, err := setup(env, appNeeds(app))
		if err != nil {
			return nil, err
		}
		var pair struct{ Base, Freq Breakdown }
		for _, v := range []Variant{Baseline, FreqOpt} {
			job, err := makeJob(env, data, app, v)
			if err != nil {
				return nil, err
			}
			res, err := timed(c, job)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", app, v, err)
			}
			b := breakdownOf(app, v, res)
			if v == Baseline {
				pair.Base = b
			} else {
				pair.Freq = b
			}
		}
		out.Pairs = append(out.Pairs, pair)
	}
	printFig8(env, out)
	return out, nil
}

func printFig8(env Env, r *Fig8Result) {
	env.printf("\nFig. 8 — abstraction cost, baseline vs frequency-buffering (seconds of serialized work)\n")
	env.printf("%-14s %-9s", "app", "variant")
	for op := metrics.Op(0); op < metrics.NumOps; op++ {
		env.printf(" %9s", op)
	}
	env.printf(" %10s %10s\n", "framework", "total")
	for _, p := range r.Pairs {
		for _, b := range []Breakdown{p.Base, p.Freq} {
			env.printf("%-14s %-9s", b.App, b.Variant)
			var user time.Duration
			for op := metrics.Op(0); op < metrics.NumOps; op++ {
				env.printf(" %9.2f", b.Ops[op].Seconds())
				if op.User() {
					user += b.Ops[op]
				}
			}
			env.printf(" %10.2f %10.2f\n", (b.Total - user).Seconds(), b.Total.Seconds())
		}
		baseFw := p.Base.Total - userWork(p.Base)
		freqFw := p.Freq.Total - userWork(p.Freq)
		if baseFw > 0 {
			env.printf("%-14s abstraction-cost change: %s\n", p.Base.App, pct(freqFw, baseFw))
		}
	}
}

func userWork(b Breakdown) time.Duration {
	return b.Ops[metrics.OpMapUser] + b.Ops[metrics.OpCombineUser] + b.Ops[metrics.OpReduceUser]
}
