package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPrintTimingTable(t *testing.T) {
	var buf bytes.Buffer
	env := Env{Out: &buf}.withDefaults()
	env.Out = &buf
	tbl := &TimingTable{
		Name:    "Table test",
		Apps:    []AppID{WordCount},
		Cluster: "2 nodes",
		Rows: map[AppID]map[Variant]Timing{
			WordCount: {
				Baseline: {App: WordCount, Variant: Baseline, Wall: 10 * time.Second, RelBaseline: 1},
				FreqOpt:  {App: WordCount, Variant: FreqOpt, Wall: 8 * time.Second, RelBaseline: 0.8},
				SpillOpt: {App: WordCount, Variant: SpillOpt, Wall: 9 * time.Second, RelBaseline: 0.9},
				Combined: {App: WordCount, Variant: Combined, Wall: 7 * time.Second, RelBaseline: 0.7},
			},
		},
	}
	printTimingTable(env, tbl)
	out := buf.String()
	for _, want := range []string{"Table test", "WordCount", "10.00s", "80.0%", "70.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSecondsAndPct(t *testing.T) {
	if got := seconds(1500 * time.Millisecond); got != "1.50s" {
		t.Errorf("seconds: %q", got)
	}
	if got := pct(80*time.Second, 100*time.Second); got != "80.0%" {
		t.Errorf("pct: %q", got)
	}
	if got := pct(time.Second, 0); got != "n/a" {
		t.Errorf("pct zero base: %q", got)
	}
}

func TestVariantAndAppLists(t *testing.T) {
	if len(AllApps) != 6 || len(TextApps) != 3 || len(AllVariants) != 4 {
		t.Error("paper sets wrong size")
	}
	if AllVariants[0] != Baseline || AllVariants[3] != Combined {
		t.Error("variant order")
	}
}

func TestMergeNeeds(t *testing.T) {
	n := mergeNeeds([]AppID{WordCount, PageRank})
	if !n.corpus || n.logs || !n.graph {
		t.Errorf("needs %+v", n)
	}
	n = mergeNeeds(AllApps)
	if !n.corpus || !n.logs || !n.graph {
		t.Errorf("all needs %+v", n)
	}
}

func TestThreadTimesSlowerWait(t *testing.T) {
	tt := ThreadTimes{MapBusy: 10, MapWait: 3, SupportBusy: 5, SupportWait: 7}
	if tt.SlowerWait() != 3 {
		t.Errorf("map busier: slower wait %d", tt.SlowerWait())
	}
	tt = ThreadTimes{MapBusy: 2, MapWait: 3, SupportBusy: 5, SupportWait: 7}
	if tt.SlowerWait() != 7 {
		t.Errorf("support busier: slower wait %d", tt.SlowerWait())
	}
}
