package experiments

import (
	"math/rand"

	"mrtext/internal/core/topk"
	"mrtext/internal/core/zipfest"
	"mrtext/internal/textgen"
)

// Fig7Point is one (predictor, buffer size) measurement: the fraction of
// intermediate records a frequent-key buffer of that size absorbs.
type Fig7Point struct {
	Input     string // "text" or "log"
	Predictor string // "freqbuf", "ideal", "lru"
	K         int
	Removed   float64 // fraction of all records absorbed (combined in memory)
}

// Fig7Result is the full sweep behind Fig. 7.
type Fig7Result struct {
	Points []Fig7Point
	// Records is the stream length simulated per input.
	Records int
}

// fig7Sizes is the buffer-size sweep (number of frequent keys tracked).
var fig7Sizes = []int{250, 500, 1000, 2000, 4000, 8000, 16000}

// RunFig7 reproduces Fig. 7: the percentage of intermediate data removed
// by the frequent-key buffer as a function of buffer size, comparing the
// paper's predictor (Space-Saving profiling over the first s=0.1 of the
// stream) against the Ideal oracle and an LRU buffer, on both the text
// corpus distribution (Zipf α≈1) and the access-log URL distribution
// (Zipf α=0.8).
func RunFig7(env Env) (*Fig7Result, error) {
	env = env.withDefaults()
	records := int(1_000_000 * env.Scale)
	if records < 50_000 {
		records = 50_000
	}
	out := &Fig7Result{Records: records}

	inputs := []struct {
		name  string
		vocab int64
		alpha float64
		seed  int64
	}{
		{"text", defVocabulary, 1.0, env.Seed + 100},
		{"log", defURLs, 0.8, env.Seed + 200},
	}
	const sampleFraction = 0.1 // the paper sets s = 0.1 for this figure

	for _, in := range inputs {
		sampler, err := zipfest.NewSampler(in.vocab, in.alpha)
		if err != nil {
			return nil, err
		}
		// Materialize the key stream once so all predictors see the same
		// records.
		rng := rand.New(rand.NewSource(in.seed))
		stream := make([]int64, records)
		for i := range stream {
			stream[i] = sampler.Rank(rng.Float64())
		}

		for _, k := range fig7Sizes {
			out.Points = append(out.Points,
				fig7FreqBuf(in.name, stream, k, sampleFraction),
				fig7Ideal(in.name, stream, k),
				fig7LRU(in.name, stream, k),
			)
		}
	}
	printFig7(env, out)
	return out, nil
}

// fig7FreqBuf simulates the paper's predictor: Space-Saving over the first
// s·n records (standard path, nothing removed), then a frozen top-k table
// absorbing matching records.
func fig7FreqBuf(input string, stream []int64, k int, s float64) Fig7Point {
	profile := int(float64(len(stream)) * s)
	summary := topk.NewStreamSummary(4 * k)
	for _, r := range stream[:profile] {
		summary.Offer(textgen.WordForRank(r))
	}
	frozen := make(map[string]bool, k)
	for _, c := range summary.Top(k) {
		frozen[c.Key] = true
	}
	removed := 0
	for _, r := range stream[profile:] {
		if frozen[textgen.WordForRank(r)] {
			removed++
		}
	}
	return Fig7Point{Input: input, Predictor: "freqbuf", K: k, Removed: float64(removed) / float64(len(stream))}
}

// fig7Ideal gives the oracle bound: the true top-k keys absorb their
// records from the very first one.
func fig7Ideal(input string, stream []int64, k int) Fig7Point {
	exact := topk.NewExact()
	for _, r := range stream {
		exact.Offer(textgen.WordForRank(r))
	}
	top := make(map[string]bool, k)
	for _, c := range exact.Top(k) {
		top[c.Key] = true
	}
	removed := 0
	for _, r := range stream {
		if top[textgen.WordForRank(r)] {
			removed++
		}
	}
	return Fig7Point{Input: input, Predictor: "ideal", K: k, Removed: float64(removed) / float64(len(stream))}
}

// fig7LRU admits every key, evicting the least recently used; only hits
// (key already buffered) are removed from the spill stream.
func fig7LRU(input string, stream []int64, k int) Fig7Point {
	lru := topk.NewLRU(k)
	removed := 0
	for _, r := range stream {
		if lru.Touch(textgen.WordForRank(r)) {
			removed++
		}
	}
	return Fig7Point{Input: input, Predictor: "lru", K: k, Removed: float64(removed) / float64(len(stream))}
}

func printFig7(env Env, r *Fig7Result) {
	env.printf("\nFig. 7 — %% of intermediate values removed vs frequent-key buffer size (%d records)\n", r.Records)
	for _, input := range []string{"text", "log"} {
		env.printf("[%s]\n%-8s", input, "k")
		for _, p := range []string{"ideal", "freqbuf", "lru"} {
			env.printf(" %10s", p)
		}
		env.printf("\n")
		for _, k := range fig7Sizes {
			env.printf("%-8d", k)
			for _, pred := range []string{"ideal", "freqbuf", "lru"} {
				for _, pt := range r.Points {
					if pt.Input == input && pt.Predictor == pred && pt.K == k {
						env.printf("     %5.1f%%", 100*pt.Removed)
					}
				}
			}
			env.printf("\n")
		}
	}
}
