package experiments

import (
	"mrtext/internal/core/spillmatch"
	"mrtext/internal/core/spillmodel"
)

// SpillModelRow is one analytic-model measurement: slower-thread wait time
// under a static threshold x for a given rate ratio, against the matcher.
type SpillModelRow struct {
	RateRatio      float64 // p/c
	X              float64
	SlowerWaitFrac float64 // slower-thread wait / makespan
}

// SpillModelResult is the §IV-C theoretical-analysis reproduction: for
// several produce/consume rate ratios, the slower thread's wait time as x
// sweeps across the wait-free boundary x* = max{c/(p+c), ½}, plus the
// adaptive matcher's result.
type SpillModelResult struct {
	Static   []SpillModelRow
	Matcher  []SpillModelRow // one row per ratio; X is the matcher's final x
	Boundary map[float64]float64
}

// RunSpillModel sweeps the analytic pipeline model, demonstrating the
// paper's central spill-matcher claim: wait time is (near) zero for
// x ≤ x* and grows beyond it, and the adaptive matcher lands at x*.
func RunSpillModel(env Env) (*SpillModelResult, error) {
	env = env.withDefaults()
	out := &SpillModelResult{Boundary: map[float64]float64{}}
	ratios := []float64{0.25, 0.5, 1.0, 2.0, 4.0}
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	const (
		M = 1 << 20
		N = 256 << 20
		c = 100 << 20 // bytes/sec
	)

	env.printf("\n§IV-C analytic model — slower-thread wait fraction vs spill percentage\n")
	env.printf("%-8s", "p/c \\ x")
	for _, x := range xs {
		env.printf(" %7.2f", x)
	}
	env.printf(" %9s %9s\n", "x*", "matcher")

	for _, ratio := range ratios {
		p := ratio * c
		boundary := spillmatch.WaitFreePercent(p, c)
		out.Boundary[ratio] = boundary
		env.printf("%-8.2f", ratio)
		for _, x := range xs {
			res, err := spillmodel.Simulate(spillmodel.Params{
				BufferBytes: M, InputBytes: N, ProduceRate: p, ConsumeRate: c,
			}, spillmatch.NewStatic(x))
			if err != nil {
				return nil, err
			}
			frac := res.SlowerWait(p, c) / res.Makespan
			out.Static = append(out.Static, SpillModelRow{RateRatio: ratio, X: x, SlowerWaitFrac: frac})
			env.printf("  %5.1f%%", 100*frac)
		}
		m := spillmatch.NewMatcher(spillmatch.DefaultConfig())
		res, err := spillmodel.Simulate(spillmodel.Params{
			BufferBytes: M, InputBytes: N, ProduceRate: p, ConsumeRate: c,
		}, m)
		if err != nil {
			return nil, err
		}
		frac := res.SlowerWait(p, c) / res.Makespan
		out.Matcher = append(out.Matcher, SpillModelRow{RateRatio: ratio, X: m.Percent(), SlowerWaitFrac: frac})
		env.printf(" %9.3f %8.1f%%\n", boundary, 100*frac)
	}
	return out, nil
}
