package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one named experiment against an environment.
type Runner func(env Env) error

// registry maps experiment ids (as printed in the paper) to runners.
var registry = map[string]Runner{
	"fig2":       func(env Env) error { _, err := RunFig2(env); return err },
	"table2":     func(env Env) error { _, err := RunTable2(env); return err },
	"fig3":       func(env Env) error { _, err := RunFig3(env); return err },
	"fig7":       func(env Env) error { _, err := RunFig7(env); return err },
	"fig8":       func(env Env) error { _, err := RunFig8(env); return err },
	"fig9":       func(env Env) error { _, err := RunFig9(env); return err },
	"fig10":      func(env Env) error { _, err := RunFig10(env); return err },
	"table3":     func(env Env) error { _, err := RunTable3(env); return err },
	"table4":     func(env Env) error { _, err := RunTable4(env); return err },
	"spillmodel": func(env Env) error { _, err := RunSpillModel(env); return err },
	"ablation":   func(env Env) error { _, err := RunAblation(env); return err },
}

// Names returns all experiment ids in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes the experiment with the given id.
func Run(name string, env Env) error {
	r, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(env)
}
