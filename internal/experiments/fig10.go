package experiments

import (
	"fmt"
	"time"

	"mrtext/internal/apps"
)

// Fig10Cell is one point of the SynText sweep: the fraction of baseline
// runtime the combined optimizations save at a given CPU-intensity ×
// storage-intensity coordinate.
type Fig10Cell struct {
	CPUFactor int
	Storage   float64
	Baseline  time.Duration
	Combined  time.Duration
	Saved     float64 // 1 − combined/baseline
}

// Fig10Result is the grid behind the Fig. 10 heatmap.
type Fig10Result struct {
	CPUFactors []int
	Storages   []float64
	Cells      []Fig10Cell
}

// RunFig10 reproduces Fig. 10: the SynText benchmark swept over
// CPU-intensity (map() work per word, as a multiple of WordCount's) and
// storage-intensity (aggregate growth under combine()), measuring the
// combined optimizations' saving at each grid point. The paper's reading:
// savings peak at low-to-moderate CPU intensity and low storage intensity,
// and decay toward the CPU-bound (user code dominates) and
// storage-intensive (combining doesn't shrink data) corners.
func RunFig10(env Env) (*Fig10Result, error) {
	env = env.withDefaults()
	// A smaller corpus keeps the 2×|grid| runs affordable.
	env.Scale = env.Scale / 4
	out := &Fig10Result{
		CPUFactors: []int{0, 4, 16, 64},
		Storages:   []float64{0, 0.33, 0.67, 1.0},
	}
	c, data, err := setup(env, needs{corpus: true})
	if err != nil {
		return nil, err
	}
	for _, cpu := range out.CPUFactors {
		for _, sto := range out.Storages {
			cell := Fig10Cell{CPUFactor: cpu, Storage: sto}
			for _, v := range []Variant{Baseline, Combined} {
				job := apps.SynText(apps.SynTextConfig{CPUFactor: cpu, Storage: sto}, data.Corpus)
				job.Name = fmt.Sprintf("%s-%s", job.Name, v)
				job.SpillBufferBytes = env.SpillBufferBytes
				applyVariant(job, WordCount, v) // text-style freqbuf parameters
				res, err := timed(c, job)
				if err != nil {
					return nil, fmt.Errorf("syntext cpu=%d sto=%.2f %s: %w", cpu, sto, v, err)
				}
				if v == Baseline {
					cell.Baseline = res.Wall
				} else {
					cell.Combined = res.Wall
				}
			}
			if cell.Baseline > 0 {
				cell.Saved = 1 - float64(cell.Combined)/float64(cell.Baseline)
			}
			out.Cells = append(out.Cells, cell)
			env.printf("  syntext cpu=%-3d storage=%.2f  baseline=%s combined=%s saved=%.1f%%\n",
				cpu, sto, seconds(cell.Baseline), seconds(cell.Combined), 100*cell.Saved)
		}
	}
	printFig10(env, out)
	return out, nil
}

func printFig10(env Env, r *Fig10Result) {
	env.printf("\nFig. 10 — %% runtime saved by combined optimizations (SynText grid)\n")
	env.printf("%-22s", "storage-int \\ cpu-int")
	for _, cpu := range r.CPUFactors {
		env.printf(" %8d", cpu)
	}
	env.printf("\n")
	for _, sto := range r.Storages {
		env.printf("%-22.2f", sto)
		for _, cpu := range r.CPUFactors {
			for _, cell := range r.Cells {
				if cell.CPUFactor == cpu && cell.Storage == sto {
					env.printf("   %5.1f%%", 100*cell.Saved)
				}
			}
		}
		env.printf("\n")
	}
}
