package experiments

import (
	"fmt"
	"time"

	"mrtext/internal/metrics"
)

// ThreadTimes is one (app, variant) measurement of map-phase thread
// activity: the data behind one bar group of Fig. 9.
type ThreadTimes struct {
	App     AppID
	Variant Variant
	// Busy/Wait are summed across all map tasks ("serialized view").
	MapBusy, MapWait         time.Duration
	SupportBusy, SupportWait time.Duration
}

// SlowerWait returns the wait time of the busier (slower) thread — the
// quantity the spill-matcher minimizes.
func (t ThreadTimes) SlowerWait() time.Duration {
	if t.MapBusy >= t.SupportBusy {
		return t.MapWait
	}
	return t.SupportWait
}

// Fig9Result is the sweep behind Fig. 9.
type Fig9Result struct {
	Rows []ThreadTimes
}

// RunFig9 reproduces Fig. 9: per-application map-thread and support-thread
// busy/wait time under the four configurations, showing how much of the
// slower thread's wait the spill-matcher removes.
func RunFig9(env Env, appList ...AppID) (*Fig9Result, error) {
	env = env.withDefaults()
	if len(appList) == 0 {
		appList = AllApps
	}
	out := &Fig9Result{}
	for _, app := range appList {
		c, data, err := setup(env, appNeeds(app))
		if err != nil {
			return nil, err
		}
		for _, v := range AllVariants {
			job, err := makeJob(env, data, app, v)
			if err != nil {
				return nil, err
			}
			res, err := timed(c, job)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", app, v, err)
			}
			row := ThreadTimes{App: app, Variant: v}
			for _, t := range res.Tasks {
				if t.Kind != "map" {
					continue
				}
				// The map goroutine performs map(), emit, profiling and
				// the final merge; the support goroutine sorts, combines
				// and writes spills.
				row.MapBusy += t.Metrics.Ops[metrics.OpMapUser] +
					t.Metrics.Ops[metrics.OpEmit] +
					t.Metrics.Ops[metrics.OpProfile] +
					t.Metrics.Ops[metrics.OpMerge]
				row.SupportBusy += t.Metrics.Ops[metrics.OpSort] +
					t.Metrics.Ops[metrics.OpCombineUser] +
					t.Metrics.Ops[metrics.OpSpillIO]
				row.MapWait += t.Metrics.WaitMap
				row.SupportWait += t.Metrics.WaitSupport
			}
			out.Rows = append(out.Rows, row)
		}
	}
	printFig9(env, out)
	return out, nil
}

func printFig9(env Env, r *Fig9Result) {
	env.printf("\nFig. 9 — map/support thread busy and wait time per configuration (summed over map tasks)\n")
	env.printf("%-14s %-9s %10s %10s %10s %10s %12s\n",
		"app", "variant", "map busy", "map wait", "sup busy", "sup wait", "slower wait")
	var base ThreadTimes
	for _, row := range r.Rows {
		if row.Variant == Baseline {
			base = row
		}
		env.printf("%-14s %-9s %10s %10s %10s %10s %12s",
			row.App, row.Variant,
			seconds(row.MapBusy), seconds(row.MapWait),
			seconds(row.SupportBusy), seconds(row.SupportWait),
			seconds(row.SlowerWait()))
		if row.Variant != Baseline && base.App == row.App && base.SlowerWait() > 0 {
			removed := 1 - float64(row.SlowerWait())/float64(base.SlowerWait())
			env.printf("  (%.0f%% of baseline slower-thread wait removed)", 100*removed)
		}
		env.printf("\n")
	}
}
