package experiments

import (
	"bufio"
	"bytes"
	"io"

	"mrtext/internal/core/topk"
	"mrtext/internal/core/zipfest"
	"mrtext/internal/textgen"
)

// Fig3Result is the rank-frequency data of the generated corpus plus the
// Zipf fit — the reproduction of Fig. 3 (word frequencies of the paper's
// Wikipedia corpus follow Zipf's law).
type Fig3Result struct {
	TotalWords    int64
	DistinctWords int
	// Points are (rank, frequency) samples at logarithmically spaced ranks.
	Points []struct {
		Rank int64
		Freq uint64
	}
	// Alpha is the fitted Zipf exponent; R2 its goodness of fit.
	Alpha, R2 float64
}

// RunFig3 generates the corpus, counts word frequencies exactly, and fits
// the Zipf parameter — verifying the generated corpus reproduces the
// rank-frequency shape of Fig. 3.
func RunFig3(env Env) (*Fig3Result, error) {
	env = env.withDefaults()
	cfg := textgen.CorpusConfig{Vocabulary: defVocabulary, Alpha: 1.0, WordsPerLine: 10, Seed: env.Seed + 10}

	pr, pw := io.Pipe()
	go func() {
		_, err := textgen.Corpus(pw, cfg, env.corpusBytes())
		//mrlint:ignore droppederr io.PipeWriter.CloseWithError is documented to always return nil
		pw.CloseWithError(err)
	}()

	exact := topk.NewExact()
	var total int64
	sc := bufio.NewScanner(pr)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		for _, w := range bytes.Fields(sc.Bytes()) {
			exact.Offer(string(w))
			total++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	counts := exact.RankedCounts()
	fit, err := zipfest.EstimateAlpha(counts)
	if err != nil {
		return nil, err
	}
	out := &Fig3Result{
		TotalWords:    total,
		DistinctWords: len(counts),
		Alpha:         fit.Alpha,
		R2:            fit.R2,
	}
	// Log-spaced rank samples.
	for rank := int64(1); rank <= int64(len(counts)); rank *= 2 {
		out.Points = append(out.Points, struct {
			Rank int64
			Freq uint64
		}{rank, counts[rank-1]})
	}

	env.printf("\nFig. 3 — corpus word rank-frequency (Zipf)\n")
	env.printf("total words: %d, distinct: %d, fitted alpha: %.3f (R²=%.3f)\n",
		out.TotalWords, out.DistinctWords, out.Alpha, out.R2)
	env.printf("%-10s %12s\n", "rank", "frequency")
	for _, p := range out.Points {
		env.printf("%-10d %12d\n", p.Rank, p.Freq)
	}
	return out, nil
}
