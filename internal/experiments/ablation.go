package experiments

import (
	"fmt"
	"time"

	"mrtext/internal/core/spillmatch"
	"mrtext/internal/metrics"
	"mrtext/internal/mr"
)

// AblationRow is one (app, configuration) measurement of the ablation
// study.
type AblationRow struct {
	App      AppID
	Config   string
	Wall     time.Duration
	Rel      float64 // vs that app's baseline
	SpillMB  float64 // intermediate bytes written (spill + merge)
	FreqHits int64
	ChosenS  float64
}

// AblationResult holds the full ablation sweep.
type AblationResult struct {
	Rows []AblationRow
}

// ablationConfigs isolates each design choice DESIGN.md calls out:
//
//   - the paper's two optimizations, separately and combined (context);
//   - frequency-buffering without the per-node top-k cache (§III-B's
//     cross-task sharing) to measure what sharing buys;
//   - frequency-buffering with the auto-tuned sampling fraction instead of
//     the paper's fixed s (§III-C);
//   - the spill-matcher with measurement smoothing instead of
//     last-spill-only prediction (§IV-B's hypothesis);
//   - the two §VII future-work extensions stacked on Combined.
var ablationConfigs = []struct {
	name  string
	apply func(j *mr.Job, app AppID)
}{
	{"baseline", func(j *mr.Job, app AppID) {}},
	{"combined", func(j *mr.Job, app AppID) { applyVariant(j, app, Combined) }},
	{"freq-no-sharing", func(j *mr.Job, app AppID) {
		applyVariant(j, app, FreqOpt)
		j.FreqBuf.ShareTopK = false
	}},
	{"freq-autotune-s", func(j *mr.Job, app AppID) {
		applyVariant(j, app, FreqOpt)
		j.FreqBuf.SampleFraction = 0 // engage the §III-C auto-tuner
	}},
	{"spill-smoothed", func(j *mr.Job, app AppID) {
		applyVariant(j, app, SpillOpt)
		cfg := spillmatch.DefaultConfig()
		cfg.Smoothing = 0.5
		j.SpillMatcherConfig = &cfg
	}},
	{"combined+compress", func(j *mr.Job, app AppID) {
		applyVariant(j, app, Combined)
		j.CompressRuns = true
	}},
	{"combined+hashgroup", func(j *mr.Job, app AppID) {
		applyVariant(j, app, Combined)
		j.HashGroupSpills = true
	}},
	{"combined+all-ext", func(j *mr.Job, app AppID) {
		applyVariant(j, app, Combined)
		j.CompressRuns = true
		j.HashGroupSpills = true
	}},
}

// RunAblation measures every design-choice configuration on WordCount and
// InvertedIndex (the two applications the paper's text results hinge on).
func RunAblation(env Env) (*AblationResult, error) {
	env = env.withDefaults()
	out := &AblationResult{}
	for _, app := range []AppID{WordCount, InvertedIndex} {
		c, data, err := setup(env, appNeeds(app))
		if err != nil {
			return nil, err
		}
		var base time.Duration
		for _, cfg := range ablationConfigs {
			job, err := makeJob(env, data, app, Baseline)
			if err != nil {
				return nil, err
			}
			job.Name = fmt.Sprintf("%s-abl-%s", app, cfg.name)
			cfg.apply(job, app)
			res, err := timed(c, job)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", app, cfg.name, err)
			}
			row := AblationRow{
				App:      app,
				Config:   cfg.name,
				Wall:     res.Wall,
				SpillMB:  float64(res.Agg.Counters[metrics.CtrSpillBytes]+res.Agg.Counters[metrics.CtrMergeBytes]) / 1e6,
				FreqHits: res.Agg.Counters[metrics.CtrFreqHits],
				ChosenS:  res.FreqStats().ChosenSample,
			}
			if cfg.name == "baseline" {
				base = res.Wall
			}
			if base > 0 {
				row.Rel = float64(res.Wall) / float64(base)
			}
			out.Rows = append(out.Rows, row)
			env.printf("  %-14s %-20s %10s (%.1f%% of baseline)  intermediate %.1f MB\n",
				app, cfg.name, seconds(res.Wall), 100*row.Rel, row.SpillMB)
		}
	}
	printAblation(env, out)
	return out, nil
}

func printAblation(env Env, r *AblationResult) {
	env.printf("\nAblation — design choices and §VII extensions\n")
	env.printf("%-14s %-20s %10s %10s %14s %10s\n", "app", "config", "wall", "vs base", "intermediate", "freq hits")
	for _, row := range r.Rows {
		env.printf("%-14s %-20s %10s %9.1f%% %11.1f MB %10d\n",
			row.App, row.Config, seconds(row.Wall), 100*row.Rel, row.SpillMB, row.FreqHits)
	}
}
