package mrserve

import (
	"testing"
	"time"
)

const q = int64(1 << 20) // test quantum: 1 MiB of credit per round per weight

func job(tenant string, cost int64) *jobState {
	return &jobState{ID: tenant + "-j", Tenant: tenant, cost: cost, done: make(chan struct{})}
}

func drain(t *testing.T, dq *drrQueue, n int) []string {
	t.Helper()
	var order []string
	for i := 0; i < n; i++ {
		j, ok := dq.pop()
		if !ok {
			t.Fatalf("pop %d: queue closed early", i)
		}
		order = append(order, j.Tenant)
	}
	return order
}

func TestAdmissionDepthBound(t *testing.T) {
	dq := newDRRQueue(2, 100*q, q)
	if !dq.push(job("a", q), 1) || !dq.push(job("a", q), 1) {
		t.Fatal("pushes under the depth bound refused")
	}
	if dq.push(job("a", q), 1) {
		t.Fatal("push over the depth bound admitted")
	}
	if depth, bytes := dq.depthBytes(); depth != 2 || bytes != 2*q {
		t.Fatalf("occupancy (%d, %d), want (2, %d)", depth, bytes, 2*q)
	}
}

func TestAdmissionByteBound(t *testing.T) {
	dq := newDRRQueue(100, 3*q, q)
	if !dq.push(job("a", 2*q), 1) {
		t.Fatal("first push refused")
	}
	if dq.push(job("b", 2*q), 1) {
		t.Fatal("push over the byte bound admitted")
	}
	if !dq.push(job("b", q), 1) {
		t.Fatal("push fitting the remaining byte budget refused")
	}
}

// TestDRRFairnessEqualWeights: two tenants, equal weights, equal costs —
// no prefix of the dequeue order favors either tenant by more than one
// grant, even though tenant a enqueued its whole backlog first.
func TestDRRFairnessEqualWeights(t *testing.T) {
	dq := newDRRQueue(100, 100*q, q)
	for i := 0; i < 8; i++ {
		dq.push(job("a", q), 1)
	}
	for i := 0; i < 8; i++ {
		dq.push(job("b", q), 1)
	}
	counts := map[string]int{}
	for _, tenant := range drain(t, dq, 16) {
		counts[tenant]++
		if d := counts["a"] - counts["b"]; d < -1 || d > 1 {
			t.Fatalf("prefix imbalance %d after %v", d, counts)
		}
	}
	st := dq.stats()
	if st["a"].Grants != 8 || st["b"].Grants != 8 {
		t.Errorf("grants %+v, want 8 and 8", st)
	}
	if st["a"].CreditRounds == 0 {
		t.Error("no credit rounds recorded")
	}
}

// TestDRRWeighted: weight 3 vs 1 shares grants 3:1.
func TestDRRWeighted(t *testing.T) {
	dq := newDRRQueue(100, 100*q, q)
	for i := 0; i < 12; i++ {
		dq.push(job("a", q), 3)
	}
	for i := 0; i < 12; i++ {
		dq.push(job("b", q), 1)
	}
	counts := map[string]int{}
	for _, tenant := range drain(t, dq, 8) {
		counts[tenant]++
	}
	if counts["a"] != 6 || counts["b"] != 2 {
		t.Errorf("first 8 grants split %v, want 6:2 at weight 3:1", counts)
	}
}

// TestDRRByteCosts: fairness is over bytes, not job counts — a tenant
// submitting 4q-cost jobs gets one grant for every four q-cost grants of
// its neighbor.
func TestDRRByteCosts(t *testing.T) {
	dq := newDRRQueue(100, 1000*q, q)
	for i := 0; i < 3; i++ {
		dq.push(job("big", 4*q), 1)
	}
	for i := 0; i < 12; i++ {
		dq.push(job("small", q), 1)
	}
	counts := map[string]int{}
	for _, tenant := range drain(t, dq, 10) {
		counts[tenant]++
	}
	if counts["big"] != 2 || counts["small"] != 8 {
		t.Errorf("first 10 grants split %v, want big:2 small:8 (byte-fair)", counts)
	}
}

// TestDRRIdleTenantForfeitsCredit: a tenant whose queue empties restarts
// from zero deficit — it cannot bank credit while idle and then burst.
func TestDRRIdleTenantForfeitsCredit(t *testing.T) {
	dq := newDRRQueue(100, 1000*q, q)
	dq.push(job("a", q), 1)
	if got := drain(t, dq, 1); got[0] != "a" {
		t.Fatalf("popped %v", got)
	}
	// a went idle; many rounds' worth of pops for b must not owe a a burst.
	for i := 0; i < 6; i++ {
		dq.push(job("b", q), 1)
	}
	drain(t, dq, 6)
	for i := 0; i < 2; i++ {
		dq.push(job("a", 4*q), 1)
		dq.push(job("b", q), 1)
	}
	// With no banked credit, a's first 4q job needs 4 fresh rounds; b's
	// q jobs go first.
	order := drain(t, dq, 2)
	if order[0] != "b" {
		t.Errorf("idle tenant burst ahead: order %v", order)
	}
}

func TestQueueRemove(t *testing.T) {
	dq := newDRRQueue(100, 100*q, q)
	j1, j2 := job("a", q), job("a", q)
	dq.push(j1, 1)
	dq.push(j2, 1)
	if !dq.remove(j1) {
		t.Fatal("remove of a queued job failed")
	}
	if dq.remove(j1) {
		t.Fatal("second remove of the same job succeeded")
	}
	if got := drain(t, dq, 1); got[0] != "a" {
		t.Fatalf("popped %v", got)
	}
	if depth, bytes := dq.depthBytes(); depth != 0 || bytes != 0 {
		t.Fatalf("occupancy (%d, %d) after drain, want (0, 0)", depth, bytes)
	}
}

func TestQueueCloseUnblocksPop(t *testing.T) {
	dq := newDRRQueue(100, 100*q, q)
	done := make(chan bool, 1)
	go func() {
		_, ok := dq.pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	dq.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pop returned ok from a closed queue")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pop did not unblock on close")
	}
	if dq.push(job("a", q), 1) {
		t.Fatal("closed queue admitted a push")
	}
}
