package mrserve

import "sync"

// drrQueue is the bounded multi-tenant job queue with deficit-round-robin
// dequeue. Admission (the bound) is depth- and byte-based: a push that
// would exceed either limit is refused, which the HTTP layer reports as
// 429. Dequeue is classic DRR (Shreedhar & Varghese) over the jobs'
// estimated input bytes: each backlogged tenant accrues quantum × weight
// of credit per round and may start a job when its credit covers the
// job's cost, so a tenant streaming small jobs and a tenant submitting
// huge ones share map input bandwidth in proportion to their weights
// rather than their submission rates.
type drrQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	maxDepth int   // admission: max queued jobs
	maxBytes int64 // admission: max total estimated input bytes queued
	quantum  int64 // DRR credit per round per unit weight

	tenants map[string]*drrTenant
	order   []string // stable round-robin order (first-seen)
	cursor  int      // next tenant to consider, rotates on exhaustion
	depth   int
	bytes   int64
	closed  bool
}

// drrTenant is one tenant's backlog and scheduling state.
type drrTenant struct {
	weight  int64
	deficit int64
	jobs    []*jobState
	grants  int64 // jobs dequeued for this tenant (the fairness counter)
	rounds  int64 // credit rounds this tenant's backlog waited through
}

func newDRRQueue(maxDepth int, maxBytes, quantum int64) *drrQueue {
	q := &drrQueue{
		maxDepth: maxDepth,
		maxBytes: maxBytes,
		quantum:  quantum,
		tenants:  make(map[string]*drrTenant),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *drrQueue) tenant(name string, weight int64) *drrTenant {
	t := q.tenants[name]
	if t == nil {
		t = &drrTenant{weight: weight}
		q.tenants[name] = t
		q.order = append(q.order, name)
	}
	return t
}

// push enqueues a job for its tenant, or refuses it when the queue is at
// its depth or byte bound (admitted=false: the caller answers 429). A
// closed queue refuses everything.
func (q *drrQueue) push(j *jobState, weight int64) (admitted bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.depth >= q.maxDepth || q.bytes+j.cost > q.maxBytes {
		return false
	}
	t := q.tenant(j.Tenant, weight)
	t.jobs = append(t.jobs, j)
	q.depth++
	q.bytes += j.cost
	q.cond.Broadcast()
	return true
}

// pop blocks until a job is schedulable under DRR or the queue closes
// (ok=false). Jobs canceled while queued are discarded here, reported via
// the second return so the caller can finalize them without running them.
func (q *drrQueue) pop() (j *jobState, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, false
		}
		if q.depth == 0 {
			q.cond.Wait()
			continue
		}
		return q.popLocked(), true
	}
}

// popLocked runs the DRR sweep. depth > 0, so some tenant has a backlog
// and the credit loop terminates: every round adds quantum×weight to each
// backlogged tenant, so any head job's cost is eventually covered.
func (q *drrQueue) popLocked() *jobState {
	for {
		for i := 0; i < len(q.order); i++ {
			idx := (q.cursor + i) % len(q.order)
			t := q.tenants[q.order[idx]]
			if len(t.jobs) == 0 {
				continue
			}
			if t.deficit < t.jobs[0].cost {
				continue
			}
			j := t.jobs[0]
			t.jobs = t.jobs[1:]
			t.deficit -= j.cost
			t.grants++
			if len(t.jobs) == 0 {
				// An emptied queue forfeits its remaining credit — the DRR
				// rule that keeps an idle tenant from banking bandwidth.
				t.deficit = 0
				q.cursor = (idx + 1) % len(q.order)
			} else {
				q.cursor = idx // may still afford its next job this round
			}
			q.depth--
			q.bytes -= j.cost
			return j
		}
		// No backlogged tenant can afford its head job: run a credit round.
		for _, name := range q.order {
			if t := q.tenants[name]; len(t.jobs) > 0 {
				t.deficit += q.quantum * t.weight
				t.rounds++
			}
		}
	}
}

// remove deletes a queued job (cancellation before start). It reports
// whether the job was still queued; false means it already left the queue
// and the caller must cancel the running job instead.
func (q *drrQueue) remove(j *jobState) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenants[j.Tenant]
	if t == nil {
		return false
	}
	for i, qj := range t.jobs {
		if qj == j {
			t.jobs = append(t.jobs[:i], t.jobs[i+1:]...)
			q.depth--
			q.bytes -= j.cost
			return true
		}
	}
	return false
}

// stats returns per-tenant scheduling counters for /metrics and /tenants.
func (q *drrQueue) stats() map[string]QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]QueueStats, len(q.tenants))
	for name, t := range q.tenants {
		out[name] = QueueStats{
			Queued:       len(t.jobs),
			Grants:       t.grants,
			CreditRounds: t.rounds,
			Weight:       t.weight,
		}
	}
	return out
}

// depthBytes returns the queue's current occupancy.
func (q *drrQueue) depthBytes() (int, int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth, q.bytes
}

// close wakes every blocked pop with ok=false.
func (q *drrQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// QueueStats is one tenant's scheduler-side accounting.
type QueueStats struct {
	Queued       int   `json:"queued"`
	Grants       int64 `json:"grants"`
	CreditRounds int64 `json:"credit_rounds"`
	Weight       int64 `json:"weight"`
}
