package mrserve

import (
	"context"
	"sync"
	"time"

	"mrtext/internal/mr"
	"mrtext/internal/trace"
)

// JobStatus is the lifecycle of a submitted job. Transitions are
// queued → running → {done, failed}, with canceled reachable from queued
// (dequeued without running) and from running (context cancellation
// threaded through the runtime).
type JobStatus string

const (
	// StatusQueued: admitted, waiting for a worker and DRR credit.
	StatusQueued JobStatus = "queued"
	// StatusRunning: executing on the cluster.
	StatusRunning JobStatus = "running"
	// StatusDone: finished successfully; output is readable.
	StatusDone JobStatus = "done"
	// StatusFailed: finished with an error.
	StatusFailed JobStatus = "failed"
	// StatusCanceled: canceled while queued or running.
	StatusCanceled JobStatus = "canceled"
)

// jobState is the server-side record of one submitted job. The immutable
// identity fields are set at submission; everything else is guarded by mu.
type jobState struct {
	ID     string
	Tenant string
	Spec   Spec
	cost   int64 // EstimatedInputBytes at submission, the DRR cost

	// cancel ends the job's run context; set when the job starts. The
	// canceled latch distinguishes user cancellation from other failures.
	cancelMu sync.Mutex
	cancel   context.CancelFunc
	canceled bool

	mu        sync.Mutex
	status    JobStatus
	submitted time.Time
	started   time.Time
	finished  time.Time
	res       *mr.Result
	err       error

	// tracer is the job's private span recorder — never trace.Default(),
	// so concurrent jobs' timelines cannot interleave.
	tracer *trace.Tracer

	done chan struct{} // closed when the job reaches a terminal status
}

func (j *jobState) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
}

// finish records the terminal state. A canceled run surfaces as
// StatusCanceled regardless of which error the runtime returned with.
func (j *jobState) finish(res *mr.Result, err error) {
	j.cancelMu.Lock()
	canceled := j.canceled
	j.cancelMu.Unlock()
	j.mu.Lock()
	j.finished = time.Now()
	j.res = res
	j.err = err
	switch {
	case canceled:
		j.status = StatusCanceled
	case err != nil:
		j.status = StatusFailed
	default:
		j.status = StatusDone
	}
	j.mu.Unlock()
	close(j.done)
}

// requestCancel latches cancellation and ends the run context if the job
// already started. It reports whether this call was the first to cancel.
func (j *jobState) requestCancel() bool {
	j.cancelMu.Lock()
	defer j.cancelMu.Unlock()
	if j.canceled {
		return false
	}
	j.canceled = true
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// bindContext installs the run context's cancel func, honoring a
// cancellation that arrived while the job was still queued.
func (j *jobState) bindContext(cancel context.CancelFunc) (alreadyCanceled bool) {
	j.cancelMu.Lock()
	defer j.cancelMu.Unlock()
	j.cancel = cancel
	return j.canceled
}

// AttemptLedger is the job's fault-tolerance accounting, lifted from the
// Result so API clients see the attempt economy without parsing the full
// counter map.
type AttemptLedger struct {
	MapAttempts      int   `json:"map_attempts"`
	ReduceAttempts   int   `json:"reduce_attempts"`
	TaskRetries      int   `json:"task_retries"`
	SpeculativeTasks int   `json:"speculative_tasks"`
	SpeculativeWins  int   `json:"speculative_wins"`
	RecoveredMaps    int   `json:"recovered_map_tasks"`
	FailedAttempts   int   `json:"failed_attempts"`
	SweptAttempts    int   `json:"swept_attempts"`
	CleanupErrors    int   `json:"cleanup_errors"`
	DeadNodes        []int `json:"dead_nodes,omitempty"`
	BlacklistedNodes []int `json:"blacklisted_nodes,omitempty"`
}

// ResultView is the JSON digest of a completed job's Result.
type ResultView struct {
	WallMS        float64          `json:"wall_ms"`
	MapWallMS     float64          `json:"map_wall_ms"`
	ReduceWallMS  float64          `json:"reduce_wall_ms"`
	MapTasks      int              `json:"map_tasks"`
	ReduceTasks   int              `json:"reduce_tasks"`
	LocalMaps     int              `json:"local_map_tasks"`
	StolenMaps    int              `json:"stolen_map_tasks"`
	Outputs       []string         `json:"outputs"`
	Counters      map[string]int64 `json:"counters"`
	Attempts      AttemptLedger    `json:"attempts"`
	ShuffleStaged int              `json:"shuffle_early_segments"`
}

// JobView is the GET /jobs/{id} document.
type JobView struct {
	ID        string      `json:"id"`
	Tenant    string      `json:"tenant"`
	App       string      `json:"app"`
	Status    JobStatus   `json:"status"`
	Submitted time.Time   `json:"submitted"`
	Started   *time.Time  `json:"started,omitempty"`
	Finished  *time.Time  `json:"finished,omitempty"`
	Error     string      `json:"error,omitempty"`
	Result    *ResultView `json:"result,omitempty"`
}

func (j *jobState) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		Tenant:    j.Tenant,
		App:       j.Spec.App,
		Status:    j.status,
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if r := j.res; r != nil {
		v.Result = &ResultView{
			WallMS:       float64(r.Wall) / 1e6,
			MapWallMS:    float64(r.MapWall) / 1e6,
			ReduceWallMS: float64(r.ReduceWall) / 1e6,
			MapTasks:     r.MapTasks,
			ReduceTasks:  r.ReduceTasks,
			LocalMaps:    r.LocalMapTasks,
			StolenMaps:   r.StolenMapTasks,
			Outputs:      r.Outputs,
			Counters:     r.Agg.Counters,
			Attempts: AttemptLedger{
				MapAttempts:      r.MapAttempts,
				ReduceAttempts:   r.ReduceAttempts,
				TaskRetries:      r.TaskRetries,
				SpeculativeTasks: r.SpeculativeTasks,
				SpeculativeWins:  r.SpeculativeWins,
				RecoveredMaps:    r.RecoveredMapTasks,
				FailedAttempts:   r.FailedAttempts,
				SweptAttempts:    r.SweptAttempts,
				CleanupErrors:    r.CleanupErrors,
				DeadNodes:        r.DeadNodes,
				BlacklistedNodes: r.BlacklistedNodes,
			},
			ShuffleStaged: r.ShuffleEarlySegments,
		}
	}
	return v
}

// snapshotStatus returns the status and, when terminal, the Result.
func (j *jobState) snapshotStatus() (JobStatus, *mr.Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.res
}
