package mrserve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mrtext/internal/cluster"
	"mrtext/internal/mrserve"
)

func newTestServer(t *testing.T, cfg mrserve.Config) (*mrserve.Server, *httptest.Server) {
	t.Helper()
	if cfg.Cluster == nil {
		cc := cluster.Fast(3)
		cc.BlockSize = 128 << 10
		c, err := cluster.New(cc)
		if err != nil {
			t.Fatalf("cluster: %v", err)
		}
		cfg.Cluster = c
	}
	s, err := mrserve.New(cfg)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, tenant string, spec map[string]any) (*http.Response, mrserve.JobView) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"tenant": tenant, "spec": spec})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var view mrserve.JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	} else {
		//mrlint:ignore droppederr best-effort body drain of an error response
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp, view
}

func getJob(t *testing.T, ts *httptest.Server, id string) mrserve.JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatalf("get job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %d", id, resp.StatusCode)
	}
	var view mrserve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decoding job view: %v", err)
	}
	return view
}

// pollUntil polls the job until pred holds or the deadline passes.
func pollUntil(t *testing.T, ts *httptest.Server, id string, timeout time.Duration, pred func(mrserve.JobView) bool) mrserve.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		view := getJob(t, ts, id)
		if pred(view) {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %s after %s", id, view.Status, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func isTerminal(v mrserve.JobView) bool {
	switch v.Status {
	case mrserve.StatusDone, mrserve.StatusFailed, mrserve.StatusCanceled:
		return true
	}
	return false
}

// TestServeEndToEnd: two tenants submit over HTTP, jobs complete, output
// is readable, tenant accounting and metrics reflect the runs.
func TestServeEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, mrserve.Config{Workers: 2})
	s.Start()

	specWC := map[string]any{"app": "wordcount", "input_mb": 1}
	specSyn := map[string]any{"app": "syntext", "input_mb": 1, "syntext_cpu": 1}
	resp1, j1 := submit(t, ts, "alice", specWC)
	resp2, j2 := submit(t, ts, "bob", specSyn)
	for i, resp := range []*http.Response{resp1, resp2} {
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, want 202", i, resp.StatusCode)
		}
	}
	if j1.ID == j2.ID {
		t.Fatalf("both submissions got id %s", j1.ID)
	}

	v1 := pollUntil(t, ts, j1.ID, 60*time.Second, isTerminal)
	v2 := pollUntil(t, ts, j2.ID, 60*time.Second, isTerminal)
	for _, v := range []mrserve.JobView{v1, v2} {
		if v.Status != mrserve.StatusDone {
			t.Fatalf("job %s finished %s (%s), want done", v.ID, v.Status, v.Error)
		}
		if v.Result == nil || v.Result.WallMS <= 0 || v.Result.MapTasks == 0 {
			t.Fatalf("job %s has an empty result: %+v", v.ID, v.Result)
		}
		if v.Result.Attempts.MapAttempts < v.Result.MapTasks {
			t.Errorf("job %s attempt ledger %+v inconsistent with %d map tasks",
				v.ID, v.Result.Attempts, v.Result.MapTasks)
		}
	}

	// Output is the concatenated reduce partitions.
	resp, err := http.Get(ts.URL + "/jobs/" + j1.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("output: status %d err %v", resp.StatusCode, err)
	}
	if len(out) == 0 || !bytes.Contains(out, []byte("\n")) {
		t.Fatalf("output is empty or unformatted (%d bytes)", len(out))
	}

	// Tenant accounting.
	tresp, err := http.Get(ts.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	var tenants []mrserve.TenantView
	if err := json.NewDecoder(tresp.Body).Decode(&tenants); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	byName := map[string]mrserve.TenantView{}
	for _, tv := range tenants {
		byName[tv.Tenant] = tv
	}
	for _, name := range []string{"alice", "bob"} {
		tv, ok := byName[name]
		if !ok {
			t.Fatalf("tenant %s missing from /tenants: %+v", name, tenants)
		}
		if tv.Submitted != 1 || tv.Admitted != 1 || tv.Completed != 1 {
			t.Errorf("tenant %s accounting %+v, want 1/1/1", name, tv)
		}
		if tv.WallMS <= 0 {
			t.Errorf("tenant %s wall time %v, want > 0", name, tv.WallMS)
		}
	}

	// Metrics exposition carries the per-tenant counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metricsText := string(mbody)
	for _, want := range []string{
		`mrserve_jobs_completed_total{tenant="alice"} 1`,
		`mrserve_jobs_completed_total{tenant="bob"} 1`,
		`mrserve_drr_grants_total{tenant="alice"} 1`,
		"mrserve_queue_depth 0",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServeAdmissionControl: with no workers draining, the depth bound
// turns into 429s, and the byte bound refuses an oversized backlog.
func TestServeAdmissionControl(t *testing.T) {
	_, ts := newTestServer(t, mrserve.Config{
		Workers:        1,
		QueueDepth:     2,
		AdmissionBytes: 64 << 20,
	})
	// Server deliberately not started: jobs queue, nothing drains.

	spec := map[string]any{"app": "wordcount", "input_mb": 1}
	for i := 0; i < 2; i++ {
		resp, _ := submit(t, ts, "alice", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, want 202", i, resp.StatusCode)
		}
	}
	resp, _ := submit(t, ts, "alice", spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over depth bound: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}

	_, ts2 := newTestServer(t, mrserve.Config{
		Workers:        1,
		QueueDepth:     100,
		AdmissionBytes: 3 << 20,
	})
	if resp, _ := submit(t, ts2, "bob", map[string]any{"app": "wordcount", "input_mb": 2}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first byte-bound submit: %d", resp.StatusCode)
	}
	if resp, _ := submit(t, ts2, "bob", map[string]any{"app": "wordcount", "input_mb": 2}); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over byte bound: status %d, want 429", resp.StatusCode)
	}

	// Rejections are visible per tenant.
	tresp, err := http.Get(ts2.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	var tenants []mrserve.TenantView
	if err := json.NewDecoder(tresp.Body).Decode(&tenants); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if len(tenants) != 1 || tenants[0].Rejected != 1 {
		t.Errorf("tenant views %+v, want bob with 1 rejection", tenants)
	}
}

// TestServeBadRequests: malformed body, unknown app, missing tenant,
// unknown job id.
func TestServeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, mrserve.Config{})

	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	if resp, _ := submit(t, ts, "alice", map[string]any{"app": "sortbenchmark"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown app: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := submit(t, ts, "", map[string]any{"app": "wordcount"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing tenant: status %d, want 400", resp.StatusCode)
	}

	gresp, err := http.Get(ts.URL + "/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", gresp.StatusCode)
	}
}

// TestServeCancelQueued: canceling a job that never started finalizes it
// as canceled without running it.
func TestServeCancelQueued(t *testing.T) {
	_, ts := newTestServer(t, mrserve.Config{QueueDepth: 4})
	// Not started: the job stays queued.
	resp, view := submit(t, ts, "alice", map[string]any{"app": "wordcount", "input_mb": 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if view.Status != mrserve.StatusQueued {
		t.Fatalf("fresh job is %s, want queued", view.Status)
	}
	cresp, err := http.Post(ts.URL+"/jobs/"+view.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", cresp.StatusCode)
	}
	final := getJob(t, ts, view.ID)
	if final.Status != mrserve.StatusCanceled {
		t.Fatalf("canceled queued job is %s, want canceled", final.Status)
	}
	// Output of a canceled job is a conflict, not a 200.
	oresp, err := http.Get(ts.URL + "/jobs/" + view.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	oresp.Body.Close()
	if oresp.StatusCode != http.StatusConflict {
		t.Errorf("output of canceled job: status %d, want 409", oresp.StatusCode)
	}
}

// TestServeCancelRunning: canceling mid-run unwinds the job promptly and
// surfaces it as canceled.
func TestServeCancelRunning(t *testing.T) {
	s, ts := newTestServer(t, mrserve.Config{Workers: 1})
	s.Start()

	// A CPU-heavy app so the running window is seconds wide.
	resp, view := submit(t, ts, "alice", map[string]any{
		"app": "wordpostag", "input_mb": 2, "pos_iterations": 20000,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	pollUntil(t, ts, view.ID, 60*time.Second, func(v mrserve.JobView) bool {
		return v.Status == mrserve.StatusRunning
	})
	canceledAt := time.Now()
	cresp, err := http.Post(ts.URL+"/jobs/"+view.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	final := pollUntil(t, ts, view.ID, 10*time.Second, isTerminal)
	if final.Status != mrserve.StatusCanceled {
		t.Fatalf("canceled running job is %s (%s), want canceled", final.Status, final.Error)
	}
	if elapsed := time.Since(canceledAt); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s to settle", elapsed)
	}
}

// TestServeFairSchedulingCounters: an eager tenant and a light tenant
// both make progress; DRR grants land for both.
func TestServeFairSchedulingCounters(t *testing.T) {
	s, ts := newTestServer(t, mrserve.Config{Workers: 1, QueueDepth: 32})
	// Queue everything before starting the worker so DRR, not arrival
	// order, decides the schedule.
	for i := 0; i < 3; i++ {
		if resp, _ := submit(t, ts, "eager", map[string]any{"app": "wordcount", "input_mb": 1}); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("eager submit %d refused", i)
		}
	}
	if resp, _ := submit(t, ts, "light", map[string]any{"app": "wordcount", "input_mb": 1}); resp.StatusCode != http.StatusAccepted {
		t.Fatal("light submit refused")
	}
	s.Start()

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var views []mrserve.JobView
		if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		doneCount := 0
		for _, v := range views {
			if v.Status == mrserve.StatusDone {
				doneCount++
			} else if isTerminal(v) {
				t.Fatalf("job %s finished %s: %s", v.ID, v.Status, v.Error)
			}
		}
		if doneCount == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/4 jobs done", doneCount)
		}
		time.Sleep(50 * time.Millisecond)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(mbody)
	for _, want := range []string{
		`mrserve_drr_grants_total{tenant="eager"} 3`,
		`mrserve_drr_grants_total{tenant="light"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, grepLines(text, "mrserve_drr"))
		}
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestSpecValidation exercises the shared validation gate directly.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec mrserve.Spec
		ok   bool
	}{
		{"known app", mrserve.Spec{App: "WordCount"}, true},
		{"unknown app", mrserve.Spec{App: "terasort"}, false},
		{"bad storage", mrserve.Spec{App: "syntext", SynTextStorage: 2}, false},
		{"bad chaos rate", mrserve.Spec{App: "wordcount", Chaos: &mrserve.ChaosSpec{FailRate: 1.5}}, false},
		{"chaos ok", mrserve.Spec{App: "wordcount", Chaos: &mrserve.ChaosSpec{Seed: 3, FailRate: 0.2}}, true},
	}
	for _, tc := range cases {
		spec := tc.spec
		spec.Normalize()
		err := spec.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	var s mrserve.Spec
	s.App = "wordcount"
	s.Normalize()
	if s.InputMB != 16 {
		t.Errorf("default InputMB = %d, want 16", s.InputMB)
	}
	if s.EstimatedInputBytes() != 16<<20 {
		t.Errorf("EstimatedInputBytes = %d", s.EstimatedInputBytes())
	}
}
