// Package mrserve is the long-lived multi-tenant job service: one
// cluster/DFS/fabric substrate constructed once, an HTTP JSON API for
// submitting, watching, and canceling jobs against it, a bounded queue
// with admission control in front of the runtime, and deficit-round-robin
// fair scheduling across tenants. It is the piece that turns the one-shot
// mrrun pipeline into the shared-cluster setting the related work assumes
// (a stream of jobs contending for one communication budget), and it is
// where the runtime's per-job isolation — private tracer, private chaos
// injector, private histogram sink per job — pays off: concurrent jobs
// produce byte-identical outputs and isolated Result counters versus
// serial runs.
package mrserve

import (
	"fmt"
	"io"
	"strings"

	"mrtext/internal/apps"
	"mrtext/internal/chaos"
	"mrtext/internal/cluster"
	"mrtext/internal/mr"
	"mrtext/internal/textgen"
)

// Apps lists the submittable application names.
var appNames = map[string]bool{
	"wordcount": true, "invertedindex": true, "wordpostag": true,
	"syntext": true, "accesslogsum": true, "accesslogjoin": true,
	"pagerank": true,
}

// ChaosSpec configures per-job fault injection on a submitted job. The
// injector built from it is private to the job: its faults and
// manufactured stragglers never touch a neighboring tenant's tasks.
// There is deliberately no node-kill knob — node death is a cluster-wide
// condition, not something one tenant may inflict on the others.
type ChaosSpec struct {
	// Seed drives the deterministic fault schedule.
	Seed int64 `json:"seed"`
	// FailRate is the per-attempt fault probability in [0,1].
	FailRate float64 `json:"fail_rate"`
	// DelayRate is the per-attempt manufactured-straggler probability.
	DelayRate float64 `json:"delay_rate,omitempty"`
}

// Spec is the JSON job specification — the single source of truth for
// job construction shared by the mrserve API and the mrrun CLI, so a job
// submitted over HTTP and a job built from flags go through identical
// validation and knob application.
type Spec struct {
	// App names the application: wordcount, invertedindex, wordpostag,
	// syntext, accesslogsum, accesslogjoin, or pagerank.
	App string `json:"app"`
	// InputMB sizes the generated input dataset in MiB (default 16).
	InputMB int64 `json:"input_mb,omitempty"`
	// Reducers overrides the reduce-task count (0 = cluster slots).
	Reducers int `json:"reducers,omitempty"`
	// SpillBufferKB sizes the map-side spill buffer (0 = runtime default).
	SpillBufferKB int64 `json:"spill_buffer_kb,omitempty"`
	// FreqBuf enables frequency-buffering with the paper's per-app config.
	FreqBuf bool `json:"freqbuf,omitempty"`
	// SpillMatcher enables the adaptive spill-percentage controller.
	SpillMatcher bool `json:"spillmatcher,omitempty"`
	// Speculation enables backup attempts for stragglers.
	Speculation bool `json:"speculation,omitempty"`
	// PosIterations is the WordPOSTag CPU-intensity knob (0 = default 8).
	PosIterations int `json:"pos_iterations,omitempty"`
	// SynTextCPU and SynTextStorage parameterize SynText (defaults 4, 0.5).
	SynTextCPU     int     `json:"syntext_cpu,omitempty"`
	SynTextStorage float64 `json:"syntext_storage,omitempty"`
	// ShuffleCopiers is the pipelined shuffle's per-partition fan-out
	// (0 = default 4); SerialShuffle disables pipelining entirely.
	ShuffleCopiers int  `json:"shuffle_copiers,omitempty"`
	SerialShuffle  bool `json:"serial_shuffle,omitempty"`
	// ShuffleBufferMB bounds the staging buffer (0 = default 32 MiB).
	ShuffleBufferMB int64 `json:"shuffle_buffer_mb,omitempty"`
	// ShuffleBatchBytes caps one copier batch's wire bytes (0 = default
	// 1 MiB); ShuffleRawWire disables segment compression on the fabric;
	// ShuffleUngoverned disables the contention-aware copier governor.
	ShuffleBatchBytes int64 `json:"shuffle_batch_bytes,omitempty"`
	ShuffleRawWire    bool  `json:"shuffle_raw_wire,omitempty"`
	ShuffleUngoverned bool  `json:"shuffle_ungoverned,omitempty"`
	// SerialIngest reverts to the bufio line scanner; IngestChunkKB sizes
	// the batched reader's arena (0 = default).
	SerialIngest  bool  `json:"serial_ingest,omitempty"`
	IngestChunkKB int64 `json:"ingest_chunk_kb,omitempty"`
	// Chaos, when non-nil, runs the job under a private fault injector.
	Chaos *ChaosSpec `json:"chaos,omitempty"`
}

// Normalize applies spec-level defaults (not runtime defaults — those
// stay in mr.Job.withDefaults) and lowercases the app name.
func (s *Spec) Normalize() {
	s.App = strings.ToLower(strings.TrimSpace(s.App))
	if s.InputMB <= 0 {
		s.InputMB = 16
	}
	if s.PosIterations <= 0 {
		s.PosIterations = 8
	}
	if s.SynTextCPU <= 0 {
		s.SynTextCPU = 4
	}
	if s.SynTextStorage <= 0 {
		s.SynTextStorage = 0.5
	}
}

// Validate checks the normalized spec. It is the one validation gate for
// both submission paths; BuildJob assumes it passed.
func (s *Spec) Validate() error {
	if !appNames[s.App] {
		return fmt.Errorf("mrserve: unknown app %q", s.App)
	}
	if s.InputMB > 1<<20 {
		return fmt.Errorf("mrserve: input_mb %d is absurd (max %d)", s.InputMB, 1<<20)
	}
	if s.SynTextStorage < 0 || s.SynTextStorage > 1 {
		return fmt.Errorf("mrserve: syntext_storage %v outside [0,1]", s.SynTextStorage)
	}
	if c := s.Chaos; c != nil {
		if c.FailRate < 0 || c.FailRate > 1 {
			return fmt.Errorf("mrserve: chaos fail_rate %v outside [0,1]", c.FailRate)
		}
		if c.DelayRate < 0 || c.DelayRate > 1 {
			return fmt.Errorf("mrserve: chaos delay_rate %v outside [0,1]", c.DelayRate)
		}
	}
	return nil
}

// EstimatedInputBytes is the admission-control cost of the job: the bytes
// the map phase will read. It is also the job's DRR cost, so fair
// scheduling shares input bandwidth, not job counts.
func (s *Spec) EstimatedInputBytes() int64 {
	return s.InputMB << 20
}

// Dataset names one generated input the spec's job reads, with the
// generator that produces it. Names are deterministic functions of the
// generation parameters, so concurrent jobs with identical inputs share
// one copy on the DFS.
type Dataset struct {
	Name     string
	generate func(w io.Writer) error
}

// Datasets returns the inputs the job needs, in generation order.
func (s *Spec) Datasets() []Dataset {
	target := s.EstimatedInputBytes()
	switch s.App {
	case "wordcount", "invertedindex", "wordpostag", "syntext":
		return []Dataset{{
			Name: fmt.Sprintf("corpus-%dmb.txt", s.InputMB),
			generate: func(w io.Writer) error {
				_, err := textgen.Corpus(w, textgen.DefaultCorpus(), target)
				return err
			},
		}}
	case "accesslogsum", "accesslogjoin":
		ds := []Dataset{{
			Name: fmt.Sprintf("visits-%dmb.log", s.InputMB),
			generate: func(w io.Writer) error {
				_, err := textgen.UserVisits(w, textgen.DefaultLog(), target)
				return err
			},
		}}
		if s.App == "accesslogjoin" {
			ds = append(ds, Dataset{
				Name: "rankings.tbl",
				generate: func(w io.Writer) error {
					_, err := textgen.Rankings(w, textgen.DefaultLog())
					return err
				},
			})
		}
		return ds
	case "pagerank":
		return []Dataset{{
			Name: "crawl.tsv",
			generate: func(w io.Writer) error {
				_, err := textgen.WebGraph(w, textgen.DefaultGraph())
				return err
			},
		}}
	}
	return nil
}

// BuildJob constructs the runtime job from the spec: the app constructor
// picks mapper/reducer/combiner/format, then every knob is applied
// exactly as the mrrun flags always did. nodes sizes the per-job chaos
// injector when the spec carries one. The returned job has no tracer and
// no histogram sink; the caller decides whether those are process-wide
// (CLI) or per-job (service).
func (s *Spec) BuildJob(nodes int) (*mr.Job, error) {
	names := s.Datasets()
	var job *mr.Job
	switch s.App {
	case "wordcount":
		job = apps.WordCount(names[0].Name)
	case "invertedindex":
		job = apps.InvertedIndex(names[0].Name)
	case "wordpostag":
		job = apps.WordPOSTag(s.PosIterations, names[0].Name)
	case "syntext":
		job = apps.SynText(apps.SynTextConfig{CPUFactor: s.SynTextCPU, Storage: s.SynTextStorage}, names[0].Name)
	case "accesslogsum":
		job = apps.AccessLogSum(names[0].Name)
	case "accesslogjoin":
		job = apps.AccessLogJoin(names[0].Name, names[1].Name)
	case "pagerank":
		job = apps.PageRank(names[0].Name, textgen.DefaultGraph().Pages)
	default:
		return nil, fmt.Errorf("mrserve: unknown app %q", s.App)
	}
	if s.SpillBufferKB > 0 {
		job.SpillBufferBytes = s.SpillBufferKB << 10
	}
	job.NumReducers = s.Reducers
	if s.FreqBuf {
		switch s.App {
		case "accesslogsum", "accesslogjoin", "pagerank":
			job.FreqBuf = mr.DefaultFreqBufLog()
		default:
			job.FreqBuf = mr.DefaultFreqBufText()
		}
	}
	job.SpillMatcher = s.SpillMatcher
	job.Speculation = s.Speculation
	job.SerialShuffle = s.SerialShuffle
	if s.ShuffleCopiers > 0 {
		job.ShuffleCopiers = s.ShuffleCopiers
	}
	if s.ShuffleBufferMB > 0 {
		job.ShuffleBufferBytes = s.ShuffleBufferMB << 20
	}
	if s.ShuffleBatchBytes > 0 {
		job.ShuffleBatchBytes = s.ShuffleBatchBytes
	}
	job.ShuffleRawWire = s.ShuffleRawWire
	job.ShuffleUngoverned = s.ShuffleUngoverned
	job.SerialIngest = s.SerialIngest
	if s.IngestChunkKB > 0 {
		job.IngestChunkBytes = s.IngestChunkKB << 10
	}
	if s.Chaos != nil {
		inj, err := chaos.New(chaos.Config{
			Seed:      s.Chaos.Seed,
			FailRate:  s.Chaos.FailRate,
			DelayRate: s.Chaos.DelayRate,
			KillNode:  -1,
		}, nodes)
		if err != nil {
			return nil, err
		}
		job.Chaos = inj
	}
	return job, nil
}

// EnsureDatasets generates every dataset the spec needs that the DFS does
// not already hold, through the cache's singleflight so concurrent jobs
// wanting the same input generate it once.
func EnsureDatasets(c *cluster.Cluster, dc *DatasetCache, spec *Spec) error {
	for _, ds := range spec.Datasets() {
		if err := dc.ensure(c, ds); err != nil {
			return fmt.Errorf("mrserve: generating %s: %w", ds.Name, err)
		}
	}
	return nil
}
