package mrserve

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"mrtext/internal/cluster"
	"mrtext/internal/mr"
	"mrtext/internal/trace"
)

// Config parameterizes a Server. The zero value of any field falls back
// to the documented default; Cluster is the only required field.
type Config struct {
	// Cluster is the shared substrate every job runs on. Constructed once
	// by the caller and outliving every job — the whole point of the
	// service versus one-shot mrrun.
	Cluster *cluster.Cluster
	// QueueDepth bounds queued (not yet running) jobs; submissions over
	// it are refused with 429 (default 16).
	QueueDepth int
	// AdmissionBytes bounds the total estimated input bytes of queued
	// jobs — the byte-budget half of admission control (default 1 GiB).
	AdmissionBytes int64
	// Quantum is the DRR credit each backlogged tenant accrues per round,
	// in input bytes per unit weight (default 4 MiB).
	Quantum int64
	// Workers is how many jobs run concurrently on the cluster
	// (default 2).
	Workers int
	// TenantWeights biases DRR credit; unlisted tenants weigh 1.
	TenantWeights map[string]int64
	// TraceCapacity sizes each job's private tracer in events
	// (default 16384).
	TraceCapacity int
	// Log receives service events; nil discards them.
	Log *log.Logger
}

// Server is the long-lived job service: a bounded multi-tenant queue in
// front of worker goroutines that run jobs on the shared cluster with
// per-job isolation (private tracer, private chaos injector, private
// histogram sink per job).
type Server struct {
	cfg   Config
	c     *cluster.Cluster
	queue *drrQueue
	data  *DatasetCache
	stats *tenantSet

	mu   sync.Mutex
	jobs map[string]*jobState
	ids  []string // submission order, for listing
	seq  int64

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	started bool
}

// New builds a server over an existing cluster. Call Start to launch the
// workers and Close to drain them.
func New(cfg Config) (*Server, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("mrserve: Config.Cluster is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.AdmissionBytes <= 0 {
		cfg.AdmissionBytes = 1 << 30
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 4 << 20
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.TraceCapacity <= 0 {
		cfg.TraceCapacity = 1 << 14
	}
	ctx, stop := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		c:       cfg.Cluster,
		queue:   newDRRQueue(cfg.QueueDepth, cfg.AdmissionBytes, cfg.Quantum),
		data:    NewDatasetCache(),
		stats:   newTenantSet(),
		jobs:    make(map[string]*jobState),
		baseCtx: ctx,
		stop:    stop,
	}, nil
}

// Start launches the worker pool. Idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Close stops accepting work, cancels running jobs, and waits for the
// workers to drain.
func (s *Server) Close() {
	s.queue.close()
	s.stop()
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

func (s *Server) weight(tenant string) int64 {
	if w := s.cfg.TenantWeights[tenant]; w > 0 {
		return w
	}
	return 1
}

// Submit validates and admits one job. A nil error means the job is
// queued; ErrOverloaded means admission refused it (429); other errors
// are spec problems (400).
func (s *Server) Submit(tenant string, spec Spec) (*jobState, error) {
	if tenant == "" {
		return nil, fmt.Errorf("mrserve: submission needs a tenant")
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ts := s.stats.get(tenant)
	ts.submitted.Add(1)

	s.mu.Lock()
	s.seq++
	j := &jobState{
		ID:        fmt.Sprintf("j-%06d", s.seq),
		Tenant:    tenant,
		Spec:      spec,
		cost:      spec.EstimatedInputBytes(),
		status:    StatusQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.ids = append(s.ids, j.ID)
	s.mu.Unlock()

	if !s.queue.push(j, s.weight(tenant)) {
		ts.rejected.Add(1)
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.ids = s.ids[:len(s.ids)-1]
		s.mu.Unlock()
		return nil, ErrOverloaded
	}
	ts.admitted.Add(1)
	s.logf("mrserve: admitted %s tenant=%s app=%s est=%dB", j.ID, tenant, spec.App, j.cost)
	return j, nil
}

// ErrOverloaded is returned by Submit when admission control refuses the
// job; the HTTP layer maps it to 429.
var ErrOverloaded = fmt.Errorf("mrserve: queue full or byte budget exhausted")

// Job looks up a submitted job by ID.
func (s *Server) Job(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job: a queued job is unqueued and
// finalized immediately; a running job's context is canceled and the
// runtime unwinds it (task loops observe the flag at their next record
// boundary, attempts are swept, intermediates removed).
func (s *Server) Cancel(j *jobState) {
	first := j.requestCancel()
	if s.queue.remove(j) {
		// Never started: finalize here. The latch guarantees the worker
		// can't also finalize it (it never pops).
		j.finish(nil, context.Canceled)
		s.stats.get(j.Tenant).noteFinished(StatusCanceled, 0)
		s.logf("mrserve: canceled %s while queued", j.ID)
		return
	}
	if first {
		s.logf("mrserve: canceling %s", j.ID)
	}
}

// Jobs returns all submitted jobs in submission order.
func (s *Server) Jobs() []*jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*jobState, 0, len(s.ids))
	for _, id := range s.ids {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// worker pops and runs jobs until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one admitted job with full per-job isolation: its own
// run context (cancellation), its own tracer, its own chaos injector
// (from the spec), and its own histogram sink, merged into the process
// registry only after the run so concurrent jobs never interleave.
func (s *Server) runJob(j *jobState) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if j.bindContext(cancel) {
		// Canceled while queued but popped before the remove — rare race;
		// finalize without running.
		j.finish(nil, context.Canceled)
		s.stats.get(j.Tenant).noteFinished(StatusCanceled, 0)
		return
	}
	j.setRunning()
	s.logf("mrserve: running %s", j.ID)

	res, err := s.execute(ctx, j)

	j.finish(res, err)
	status, _ := j.snapshotStatus()
	var wall time.Duration
	if res != nil {
		wall = res.Wall
	}
	s.stats.get(j.Tenant).noteFinished(status, wall)
	s.logf("mrserve: %s %s (wall %s)", j.ID, status, wall)
}

func (s *Server) execute(ctx context.Context, j *jobState) (*mr.Result, error) {
	if err := EnsureDatasets(s.c, s.data, &j.Spec); err != nil {
		return nil, err
	}
	job, err := j.Spec.BuildJob(s.c.Nodes())
	if err != nil {
		return nil, err
	}
	tr := trace.New(s.cfg.TraceCapacity)
	j.mu.Lock()
	j.tracer = tr
	j.mu.Unlock()
	job.Trace = tr
	hists := mr.NewHists()
	job.Hists = hists
	res, err := mr.RunContext(ctx, s.c, job)
	// The private sink joins the service-level aggregate whether the job
	// succeeded or not; a failed job's latencies are still real latencies.
	hists.MergeIntoRegistry()
	return res, err
}

// QueueDepth returns current queue occupancy for exposition.
func (s *Server) QueueDepth() (int, int64) { return s.queue.depthBytes() }

// TenantViews renders the per-tenant accounting, sorted by tenant name.
func (s *Server) TenantViews() []TenantView {
	qs := s.queue.stats()
	st := s.stats.snapshot()
	names := make(map[string]bool, len(st))
	for n := range st {
		names[n] = true
	}
	for n := range qs {
		names[n] = true
	}
	out := make([]TenantView, 0, len(names))
	for n := range names {
		t := st[n]
		if t == nil {
			t = newTenantStats()
		}
		q := qs[n]
		w := q.Weight
		if w == 0 {
			w = s.weight(n)
		}
		out = append(out, TenantView{
			Tenant:    n,
			Submitted: t.submitted.Load(),
			Admitted:  t.admitted.Load(),
			Rejected:  t.rejected.Load(),
			Completed: t.completed.Load(),
			Failed:    t.failed.Load(),
			Canceled:  t.canceled.Load(),
			Queued:    q.Queued,
			Grants:    q.Grants,
			Weight:    w,
			WallMS:    float64(t.wallNS.Load()) / 1e6,
			P95WallMS: float64(t.wall.Snapshot().Quantile(0.95)) / 1e6,
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Tenant < out[k].Tenant })
	return out
}
