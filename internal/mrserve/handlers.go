package mrserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"mrtext/internal/metrics"
	"mrtext/internal/pprofserve"
)

// SubmitRequest is the POST /jobs body: which tenant the job bills to and
// what to run.
type SubmitRequest struct {
	Tenant string `json:"tenant"`
	Spec   Spec   `json:"spec"`
}

// Handler returns the service's HTTP API:
//
//	POST /jobs              submit (202 queued, 400 bad spec, 429 refused)
//	GET  /jobs              list all jobs, submission order
//	GET  /jobs/{id}         status, metrics, attempt ledger
//	POST /jobs/{id}/cancel  cancel queued or running
//	GET  /jobs/{id}/output  concatenated job output
//	GET  /tenants           per-tenant accounting
//	GET  /metrics           Prometheus text: service counters + runtime registry
//	/debug/                 pprof and expvar (pprofserve)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/output", s.handleOutput)
	mux.HandleFunc("GET /tenants", s.handleTenants)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("/debug/", pprofserve.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//mrlint:ignore droppederr a failed response write means the client went away; nothing to report
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("mrserve: bad submit body: %w", err))
		return
	}
	j, err := s.Submit(req.Tenant, req.Spec)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.view())
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*jobState, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("mrserve: no job %q", r.PathValue("id")))
	}
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.view())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	s.Cancel(j)
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleOutput(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	status, res := j.snapshotStatus()
	if status != StatusDone || res == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("mrserve: job %s is %s; output exists only for done jobs", j.ID, status))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, name := range res.Outputs {
		b, err := s.c.FS.ReadFile(name)
		if err != nil {
			// Headers are gone; the best we can do is truncate mid-stream.
			s.logf("mrserve: reading output %s of %s: %v", name, j.ID, err)
			return
		}
		if _, err := w.Write(b); err != nil {
			return
		}
	}
}

func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.TenantViews())
}

// handleMetrics writes the service-level Prometheus lines (per-tenant
// admission/fairness counters, queue occupancy, per-tenant wall-time
// histograms) followed by the process-wide runtime registry. The service
// lines are built in memory and written once; a write failure means the
// scrape client went away.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	depth, bytes := s.QueueDepth()
	fmt.Fprintf(&b, "# TYPE mrserve_queue_depth gauge\nmrserve_queue_depth %d\n", depth)
	fmt.Fprintf(&b, "# TYPE mrserve_queue_bytes gauge\nmrserve_queue_bytes %d\n", bytes)

	views := s.TenantViews()
	qs := s.queue.stats()
	counter := func(name, help string, pick func(TenantView) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, v := range views {
			fmt.Fprintf(&b, "%s{tenant=%q} %d\n", name, v.Tenant, pick(v))
		}
	}
	counter("mrserve_jobs_submitted_total", "jobs submitted", func(v TenantView) int64 { return v.Submitted })
	counter("mrserve_jobs_admitted_total", "jobs admitted past the queue bound", func(v TenantView) int64 { return v.Admitted })
	counter("mrserve_jobs_rejected_total", "jobs refused with 429", func(v TenantView) int64 { return v.Rejected })
	counter("mrserve_jobs_completed_total", "jobs finished successfully", func(v TenantView) int64 { return v.Completed })
	counter("mrserve_jobs_failed_total", "jobs finished with an error", func(v TenantView) int64 { return v.Failed })
	counter("mrserve_jobs_canceled_total", "jobs canceled", func(v TenantView) int64 { return v.Canceled })
	counter("mrserve_drr_grants_total", "DRR dequeues granted", func(v TenantView) int64 { return v.Grants })

	fmt.Fprintf(&b, "# HELP mrserve_drr_credit_rounds_total DRR credit rounds a tenant backlog waited through\n")
	fmt.Fprintf(&b, "# TYPE mrserve_drr_credit_rounds_total counter\n")
	names := make([]string, 0, len(qs))
	for n := range qs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "mrserve_drr_credit_rounds_total{tenant=%q} %d\n", n, qs[n].CreditRounds)
	}

	fmt.Fprintf(&b, "# HELP mrserve_job_wall_ms job wall time per tenant\n")
	fmt.Fprintf(&b, "# TYPE mrserve_job_wall_ms summary\n")
	for _, v := range views {
		fmt.Fprintf(&b, "mrserve_job_wall_ms{tenant=%q,quantile=\"0.95\"} %g\n", v.Tenant, v.P95WallMS)
		fmt.Fprintf(&b, "mrserve_job_wall_ms_sum{tenant=%q} %g\n", v.Tenant, v.WallMS)
		fmt.Fprintf(&b, "mrserve_job_wall_ms_count{tenant=%q} %d\n", v.Tenant, v.Completed+v.Failed)
	}

	if _, err := io.WriteString(w, b.String()); err != nil {
		return
	}
	//mrlint:ignore droppederr a failed exposition write means the scrape client went away; nothing to report
	_ = metrics.WritePrometheus(w)
}
