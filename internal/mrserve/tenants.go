package mrserve

import (
	"sync"
	"sync/atomic"
	"time"

	"mrtext/internal/metrics"
)

// tenantStats is one tenant's service-side accounting: admission counts,
// terminal-state counts, and the wall-time distribution of its completed
// jobs. All fields are atomics (or an atomic-recording histogram), so the
// hot paths never serialize tenants against each other.
type tenantStats struct {
	submitted atomic.Int64
	admitted  atomic.Int64
	rejected  atomic.Int64 // refused with 429 at admission
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	wallNS    atomic.Int64
	// wall is the tenant's job wall-time distribution. Private (not in
	// the process registry): each tenant owns its own instance, exposed
	// through /metrics with a tenant label.
	wall *metrics.Histogram
}

func newTenantStats() *tenantStats {
	return &tenantStats{wall: metrics.NewHistogram("mrserve.job.wall.ns")}
}

// noteFinished records a terminal job for the tenant.
func (t *tenantStats) noteFinished(status JobStatus, wall time.Duration) {
	switch status {
	case StatusDone:
		t.completed.Add(1)
	case StatusFailed:
		t.failed.Add(1)
	case StatusCanceled:
		t.canceled.Add(1)
	}
	if wall > 0 {
		t.wallNS.Add(int64(wall))
		t.wall.Record(int64(wall))
	}
}

// TenantView is one row of the GET /tenants document.
type TenantView struct {
	Tenant    string  `json:"tenant"`
	Submitted int64   `json:"submitted"`
	Admitted  int64   `json:"admitted"`
	Rejected  int64   `json:"rejected"`
	Completed int64   `json:"completed"`
	Failed    int64   `json:"failed"`
	Canceled  int64   `json:"canceled"`
	Queued    int     `json:"queued"`
	Grants    int64   `json:"drr_grants"`
	Weight    int64   `json:"weight"`
	WallMS    float64 `json:"wall_ms_total"`
	P95WallMS float64 `json:"wall_ms_p95"`
}

// tenantSet is the concurrent tenant registry.
type tenantSet struct {
	mu sync.Mutex
	m  map[string]*tenantStats
}

func newTenantSet() *tenantSet {
	return &tenantSet{m: make(map[string]*tenantStats)}
}

func (ts *tenantSet) get(name string) *tenantStats {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t := ts.m[name]
	if t == nil {
		t = newTenantStats()
		ts.m[name] = t
	}
	return t
}

// snapshot returns a copy of the registry for rendering.
func (ts *tenantSet) snapshot() map[string]*tenantStats {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make(map[string]*tenantStats, len(ts.m))
	for k, v := range ts.m {
		out[k] = v
	}
	return out
}
