package kvio

// Packed record batches — the map-side hot-path representation.
//
// The spill buffer used to hand the support goroutine a []Record whose
// every Key and Value was its own heap allocation; sorting that slice
// moved three slice headers per swap and paid a full bytes.Compare per
// comparison through a closure. This file replaces that representation
// with the moral equivalent of Hadoop's kvbuffer/kvmeta pair: record
// bytes live contiguously in one arena, and a compact per-record Meta
// array carries the partition, the arena location, and the first eight
// key bytes packed into a big-endian integer. Sorting permutes only the
// Meta array, and the vast majority of comparisons resolve on the
// (Part, Prefix) integer pair without ever touching the arena.
//
// SortRecords (kvio.go) remains the reference implementation; under the
// mrdebug build tag every SortPacked call is checked against it
// (packed_debug.go).

import (
	"bytes"
	"encoding/binary"
	"math/bits"
)

// Meta is the compact per-record descriptor of a packed batch — the
// analogue of one Hadoop kvmeta entry. Key bytes sit at
// Arena[KeyOff:KeyOff+KeyLen], immediately followed by ValLen value
// bytes. Prefix caches the first eight key bytes big-endian and
// zero-padded, so unsigned integer order equals lexicographic byte
// order over those bytes.
type Meta struct {
	Prefix uint64
	KeyOff uint32
	KeyLen uint32
	ValLen uint32
	Part   int32
}

// KeyPrefix packs the first eight bytes of key into a big-endian
// uint64, zero-padding short keys on the right. For keys of at most
// eight bytes the prefix together with the length determines the key
// completely.
//
//mrlint:hotpath
func KeyPrefix(key []byte) uint64 {
	if len(key) >= 8 {
		return binary.BigEndian.Uint64(key)
	}
	var p uint64
	for i, b := range key {
		p |= uint64(b) << (56 - 8*i)
	}
	return p
}

// PackedRecords is a batch of records in packed arena form: all key and
// value bytes appended into one arena, one Meta entry per record in
// emit order.
type PackedRecords struct {
	Meta  []Meta
	Arena []byte
}

// Append packs one record onto the batch. The key and value bytes are
// copied into the arena, so the caller keeps ownership of its slices.
// Arena and Meta grow amortized to the batch's high-water mark and are
// recycled across spills by Reset.
//
//mrlint:hotpath
func (p *PackedRecords) Append(part int, key, value []byte) {
	off := uint32(len(p.Arena))
	p.Arena = append(p.Arena, key...)
	p.Arena = append(p.Arena, value...)
	p.Meta = append(p.Meta, Meta{
		Prefix: KeyPrefix(key),
		KeyOff: off,
		KeyLen: uint32(len(key)),
		ValLen: uint32(len(value)),
		Part:   int32(part),
	})
}

// Len returns the number of records in the batch.
func (p PackedRecords) Len() int { return len(p.Meta) }

// ArenaBytes returns the bytes occupied by record payloads.
func (p PackedRecords) ArenaBytes() int64 { return int64(len(p.Arena)) }

// Part returns record i's partition.
func (p PackedRecords) Part(i int) int { return int(p.Meta[i].Part) }

// Key returns record i's key bytes, aliasing the arena.
func (p PackedRecords) Key(i int) []byte {
	m := p.Meta[i]
	return p.Arena[m.KeyOff : m.KeyOff+m.KeyLen : m.KeyOff+m.KeyLen]
}

// Value returns record i's value bytes, aliasing the arena.
func (p PackedRecords) Value(i int) []byte {
	m := p.Meta[i]
	off := m.KeyOff + m.KeyLen
	return p.Arena[off : off+m.ValLen : off+m.ValLen]
}

// Record materializes record i as a Record whose slices alias the arena.
func (p PackedRecords) Record(i int) Record {
	return Record{Part: p.Part(i), Key: p.Key(i), Value: p.Value(i)}
}

// Reset empties the batch, keeping the arena and metadata capacity for
// reuse (the spill buffer recycles released batches this way).
func (p *PackedRecords) Reset() {
	p.Meta = p.Meta[:0]
	p.Arena = p.Arena[:0]
}

// Less reports whether record i orders before record j under the spill
// order: (partition, key), ties broken by arena position (= emit
// order), which is what makes the unstable index sort below produce the
// stable result combiner semantics need.
func (p PackedRecords) Less(i, j int) bool {
	return metaLess(p.Arena, p.Meta[i], p.Meta[j])
}

// KeyEqual reports whether records i and j carry the same key.
func (p PackedRecords) KeyEqual(i, j int) bool {
	a, b := p.Meta[i], p.Meta[j]
	if a.Prefix != b.Prefix || a.KeyLen != b.KeyLen {
		return false
	}
	if a.KeyLen <= 8 {
		return true
	}
	return bytes.Equal(p.Arena[a.KeyOff+8:a.KeyOff+a.KeyLen], p.Arena[b.KeyOff+8:b.KeyOff+b.KeyLen])
}

// metaLess is the packed comparison: partition, then the eight-byte key
// prefix as one unsigned compare, and only on a prefix tie the
// remaining key bytes. When either key fits entirely in the prefix, a
// tied prefix means the shorter key is a (possibly equal) prefix of the
// longer, so the length decides. The final KeyOff tiebreak makes the
// order total: no two records compare equal, so a fast unstable sort
// yields the stable (emit-order) result.
func metaLess(arena []byte, a, b Meta) bool {
	if a.Part != b.Part {
		return a.Part < b.Part
	}
	if a.Prefix != b.Prefix {
		return a.Prefix < b.Prefix
	}
	if a.KeyLen <= 8 || b.KeyLen <= 8 {
		if a.KeyLen != b.KeyLen {
			return a.KeyLen < b.KeyLen
		}
		return a.KeyOff < b.KeyOff
	}
	// Prefixes tied and both keys longer than eight bytes: the first
	// eight bytes are known equal, compare only the tails.
	c := bytes.Compare(arena[a.KeyOff+8:a.KeyOff+a.KeyLen], arena[b.KeyOff+8:b.KeyOff+b.KeyLen])
	if c != 0 {
		return c < 0
	}
	return a.KeyOff < b.KeyOff
}

// SortPacked sorts the batch by (partition, key) with stable order for
// equal keys, permuting only the Meta array. It is the hot-path
// replacement for SortRecords; under the mrdebug build tag the result
// is verified against SortRecords on every call.
//
//mrlint:hotpath
func SortPacked(p PackedRecords) {
	ref := debugSortReference(p)
	if len(p.Meta) > 1 {
		introSortMeta(p.Meta, p.Arena, 2*bits.Len(uint(len(p.Meta))))
	}
	debugCheckSortAgreement(p, ref)
}

// introSortMeta is a quicksort over Meta entries with median-of-three
// pivots, an insertion-sort cutoff for short runs, and a heapsort
// fallback once the depth budget is spent (so adversarial inputs stay
// O(n log n)).
func introSortMeta(m []Meta, arena []byte, depth int) {
	for len(m) > 16 {
		if depth == 0 {
			heapSortMeta(m, arena)
			return
		}
		depth--
		p := partitionMeta(m, arena)
		// Recurse into the smaller side, iterate on the larger: O(log n)
		// stack depth regardless of pivot quality.
		if p < len(m)-p-1 {
			introSortMeta(m[:p], arena, depth)
			m = m[p+1:]
		} else {
			introSortMeta(m[p+1:], arena, depth)
			m = m[:p]
		}
	}
	insertionSortMeta(m, arena)
}

// partitionMeta partitions m around a median-of-three pivot and returns
// the pivot's final index.
func partitionMeta(m []Meta, arena []byte) int {
	mid, hi := len(m)/2, len(m)-1
	if metaLess(arena, m[mid], m[0]) {
		m[0], m[mid] = m[mid], m[0]
	}
	if metaLess(arena, m[hi], m[mid]) {
		m[mid], m[hi] = m[hi], m[mid]
		if metaLess(arena, m[mid], m[0]) {
			m[0], m[mid] = m[mid], m[0]
		}
	}
	m[mid], m[hi] = m[hi], m[mid] // median to the pivot slot
	pivot := m[hi]
	i := 0
	for j := 0; j < hi; j++ {
		if metaLess(arena, m[j], pivot) {
			m[i], m[j] = m[j], m[i]
			i++
		}
	}
	m[i], m[hi] = m[hi], m[i]
	return i
}

func insertionSortMeta(m []Meta, arena []byte) {
	for i := 1; i < len(m); i++ {
		for j := i; j > 0 && metaLess(arena, m[j], m[j-1]); j-- {
			m[j], m[j-1] = m[j-1], m[j]
		}
	}
}

func heapSortMeta(m []Meta, arena []byte) {
	n := len(m)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownMeta(m, arena, i, n)
	}
	for i := n - 1; i > 0; i-- {
		m[0], m[i] = m[i], m[0]
		siftDownMeta(m, arena, 0, i)
	}
}

func siftDownMeta(m []Meta, arena []byte, root, n int) {
	for {
		c := 2*root + 1
		if c >= n {
			return
		}
		if c+1 < n && metaLess(arena, m[c], m[c+1]) {
			c++
		}
		if !metaLess(arena, m[root], m[c]) {
			return
		}
		m[root], m[c] = m[c], m[root]
		root = c
	}
}
