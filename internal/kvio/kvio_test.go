package kvio

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"testing"
	"testing/quick"

	"mrtext/internal/serde"
	"mrtext/internal/vdisk"
)

func TestSortRecordsOrderAndStability(t *testing.T) {
	recs := []Record{
		{Part: 1, Key: []byte("b"), Value: []byte("1")},
		{Part: 0, Key: []byte("z"), Value: []byte("2")},
		{Part: 0, Key: []byte("a"), Value: []byte("3")},
		{Part: 0, Key: []byte("a"), Value: []byte("4")},
		{Part: 1, Key: []byte("a"), Value: []byte("5")},
	}
	SortRecords(recs)
	wantVals := []string{"3", "4", "2", "5", "1"}
	for i, w := range wantVals {
		if string(recs[i].Value) != w {
			t.Fatalf("pos %d: got %s want %s", i, recs[i].Value, w)
		}
	}
}

func TestSortRecordsQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := make([]Record, int(n))
		for i := range recs {
			recs[i] = Record{
				Part: rng.Intn(4),
				Key:  []byte{byte('a' + rng.Intn(4))},
			}
		}
		SortRecords(recs)
		for i := 1; i < len(recs); i++ {
			if recs[i-1].Part > recs[i].Part {
				return false
			}
			if recs[i-1].Part == recs[i].Part && bytes.Compare(recs[i-1].Key, recs[i].Key) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunWriterEmptyAndSparse(t *testing.T) {
	disk := vdisk.NewMem()
	// Entirely empty run.
	rw, err := NewRunWriter(disk, "empty", 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := rw.Close()
	if err != nil {
		t.Fatal(err)
	}
	if idx.TotalRecords() != 0 || idx.TotalBytes() != 0 {
		t.Errorf("empty run totals: %d rec %d bytes", idx.TotalRecords(), idx.TotalBytes())
	}
	for p := 0; p < 3; p++ {
		s, err := OpenRunPart(disk, idx, p)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Next(); err != io.EOF {
			t.Errorf("part %d of empty run: %v", p, err)
		}
		s.Close()
	}
	// Only the last partition populated.
	rw2, err := NewRunWriter(disk, "sparse", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw2.Append(3, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	idx2, err := rw2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if idx2.Segments[3].Records != 1 {
		t.Errorf("segment 3: %+v", idx2.Segments[3])
	}
	for p := 0; p < 3; p++ {
		if idx2.Segments[p].Len != 0 {
			t.Errorf("segment %d should be empty: %+v", p, idx2.Segments[p])
		}
	}
}

func TestRunWriterRejectsOutOfOrder(t *testing.T) {
	disk := vdisk.NewMem()
	rw, err := NewRunWriter(disk, "run", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Append(1, []byte("k"), nil); err != nil {
		t.Fatal(err)
	}
	if err := rw.Append(0, []byte("k"), nil); err == nil {
		t.Error("out-of-order partition accepted")
	}
	if err := rw.Append(2, []byte("k"), nil); err == nil {
		t.Error("out-of-range partition accepted")
	}
	if _, err := NewRunWriter(disk, "bad", 0); err == nil {
		t.Error("zero partitions accepted")
	}
}

// naiveMerge is the reference the heap merge is tested against.
func naiveMerge(runs [][]Record) []Record {
	var all []Record
	for _, r := range runs {
		all = append(all, r...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		return bytes.Compare(all[i].Key, all[j].Key) < 0
	})
	return all
}

func randomSortedRuns(rng *rand.Rand, nRuns, maxLen int) [][]Record {
	runs := make([][]Record, nRuns)
	for i := range runs {
		n := rng.Intn(maxLen)
		recs := make([]Record, n)
		for j := range recs {
			recs[j] = Record{
				Key:   []byte(fmt.Sprintf("k%02d", rng.Intn(20))),
				Value: []byte(strconv.Itoa(rng.Intn(1000))),
			}
		}
		SortRecords(recs)
		runs[i] = recs
	}
	return runs
}

func TestMergerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		runs := randomSortedRuns(rng, 1+rng.Intn(6), 30)
		streams := make([]Stream, len(runs))
		for i, r := range runs {
			streams[i] = NewSliceStream(r)
		}
		m, err := NewMerger(streams)
		if err != nil {
			t.Fatal(err)
		}
		var got []Record
		for {
			key, ok, err := m.NextGroup()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			for {
				v, ok, err := m.NextValue()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				got = append(got, Record{Key: append([]byte(nil), key...), Value: append([]byte(nil), v...)})
			}
		}
		m.Close()
		want := naiveMerge(runs)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d records want %d", trial, len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i].Key, want[i].Key) {
				t.Fatalf("trial %d pos %d: key %q want %q", trial, i, got[i].Key, want[i].Key)
			}
		}
	}
}

func TestMergerGroupSkipping(t *testing.T) {
	// NextGroup must drain unconsumed values of the previous group.
	runs := [][]Record{{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("a"), Value: []byte("2")},
		{Key: []byte("b"), Value: []byte("3")},
	}}
	m, err := NewMerger([]Stream{NewSliceStream(runs[0])})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	key, ok, _ := m.NextGroup()
	if !ok || string(key) != "a" {
		t.Fatalf("first group %q ok=%v", key, ok)
	}
	// Do not consume a's values; jump straight to the next group.
	key, ok, err = m.NextGroup()
	if err != nil || !ok || string(key) != "b" {
		t.Fatalf("second group %q ok=%v err=%v", key, ok, err)
	}
	v, ok, _ := m.NextValue()
	if !ok || string(v) != "3" {
		t.Fatalf("b value %q ok=%v", v, ok)
	}
	if _, ok, _ := m.NextGroup(); ok {
		t.Error("expected end of groups")
	}
}

func TestMergerStability(t *testing.T) {
	// Equal keys must arrive ordered by stream index (combiner semantics
	// depend on deterministic value order).
	s1 := NewSliceStream([]Record{{Key: []byte("k"), Value: []byte("first")}})
	s2 := NewSliceStream([]Record{{Key: []byte("k"), Value: []byte("second")}})
	m, err := NewMerger([]Stream{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, ok, _ := m.NextGroup(); !ok {
		t.Fatal("no group")
	}
	v1, _, _ := m.NextValue()
	want1 := append([]byte(nil), v1...)
	v2, _, _ := m.NextValue()
	if string(want1) != "first" || string(v2) != "second" {
		t.Errorf("order: %q then %q", want1, v2)
	}
}

func TestMergeIntoWithCombine(t *testing.T) {
	disk := vdisk.NewMem()
	sum := func(key []byte, values [][]byte, emit func(k, v []byte) error) error {
		var total int64
		for _, v := range values {
			n, err := serde.DecodeInt64(v)
			if err != nil {
				return err
			}
			total += n
		}
		return emit(key, serde.EncodeInt64(total))
	}
	mk := func(pairs ...[2]interface{}) []Record {
		var recs []Record
		for _, p := range pairs {
			recs = append(recs, Record{Key: []byte(p[0].(string)), Value: serde.EncodeInt64(int64(p[1].(int)))})
		}
		SortRecords(recs)
		return recs
	}
	streams := []Stream{
		NewSliceStream(mk([2]interface{}{"a", 1}, [2]interface{}{"b", 2})),
		NewSliceStream(mk([2]interface{}{"a", 10}, [2]interface{}{"c", 3})),
	}
	out, err := NewRunWriter(disk, "merged", 1)
	if err != nil {
		t.Fatal(err)
	}
	emitted, consumed, err := MergeInto(streams, 0, out, sum)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != 4 || emitted != 3 {
		t.Errorf("consumed=%d emitted=%d", consumed, emitted)
	}
	idx, err := out.Close()
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenRunPart(disk, idx, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := map[string]int64{"a": 11, "b": 2, "c": 3}
	for i := 0; i < 3; i++ {
		k, v, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		n, _ := serde.DecodeInt64(v)
		if want[string(k)] != n {
			t.Errorf("key %q: got %d want %d", k, n, want[string(k)])
		}
	}
	if _, _, err := s.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestMergeIntoPassThrough(t *testing.T) {
	disk := vdisk.NewMem()
	recs := []Record{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("a"), Value: []byte("2")},
	}
	out, err := NewRunWriter(disk, "pt", 1)
	if err != nil {
		t.Fatal(err)
	}
	emitted, consumed, err := MergeInto([]Stream{NewSliceStream(recs)}, 0, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 2 || consumed != 2 {
		t.Errorf("emitted=%d consumed=%d", emitted, consumed)
	}
	if _, err := out.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunIndexTotals(t *testing.T) {
	disk := vdisk.NewMem()
	rw, err := NewRunWriter(disk, "totals", 2)
	if err != nil {
		t.Fatal(err)
	}
	var wantBytes int64
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("key%d", i))
		v := []byte("val")
		part := 0
		if i >= 5 {
			part = 1
		}
		if err := rw.Append(part, k, v); err != nil {
			t.Fatal(err)
		}
		wantBytes += int64(serde.KVLen(len(k), len(v)))
	}
	idx, err := rw.Close()
	if err != nil {
		t.Fatal(err)
	}
	if idx.TotalRecords() != 10 || idx.TotalBytes() != wantBytes {
		t.Errorf("totals: %d records, %d bytes (want 10, %d)", idx.TotalRecords(), idx.TotalBytes(), wantBytes)
	}
	if got := rw.BytesWritten(); got != wantBytes {
		t.Errorf("BytesWritten=%d want %d", got, wantBytes)
	}
}
