package kvio

// Prefix key compression for run files — the paper's §VII future-work item
// "using more efficient on-disk data representations to minimize I/O".
//
// Records inside a run segment are sorted by key, so adjacent keys share
// long prefixes (natural-language words especially). The compressed frame
// replaces the full key with:
//
//	uvarint(sharedPrefixLen) uvarint(suffixLen) uvarint(valueLen) suffix value
//
// Readers reconstruct keys incrementally. The format is chosen per run
// file and recorded in its RunIndex, so compressed and plain runs coexist
// inside one job (e.g. only final map outputs compressed).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mrtext/internal/serde"
	"mrtext/internal/vdisk"
)

// sharedPrefix returns the length of the common prefix of a and b.
func sharedPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// appendPrefixedKV appends the compressed frame of (key, value) given the
// previous key in the segment.
//
//mrlint:hotpath
func appendPrefixedKV(dst, prevKey, key, value []byte) []byte {
	shared := sharedPrefix(prevKey, key)
	dst = binary.AppendUvarint(dst, uint64(shared))
	dst = binary.AppendUvarint(dst, uint64(len(key)-shared))
	dst = binary.AppendUvarint(dst, uint64(len(value)))
	dst = append(dst, key[shared:]...)
	dst = append(dst, value...)
	return dst
}

// prefixRunWriter writes a prefix-compressed, partitioned, sorted run.
// It mirrors RunWriter's contract: Append in non-decreasing (partition,
// key) order; prefixes reset at segment boundaries.
type prefixRunWriter struct {
	disk    vdisk.Disk
	name    string
	file    io.WriteCloser
	buf     *bufio.Writer
	parts   int
	cur     int
	off     int64
	index   RunIndex
	started bool
	prevKey []byte
	scratch []byte
	rawIn   int64 // uncompressed bytes accepted (for the savings counter)
}

// NewPrefixRunWriter creates a prefix-compressed run file.
func NewPrefixRunWriter(disk vdisk.Disk, name string, parts int) (*prefixRunWriter, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("kvio: run %q: parts must be positive, got %d", name, parts)
	}
	f, err := disk.Create(name)
	if err != nil {
		return nil, fmt.Errorf("kvio: creating run %q: %w", name, err)
	}
	return &prefixRunWriter{
		disk:  disk,
		name:  name,
		file:  f,
		buf:   bufio.NewWriterSize(f, 64<<10),
		parts: parts,
		index: RunIndex{Name: name, Compressed: true, Segments: make([]Segment, parts)},
	}, nil
}

// Append implements the RunSink contract.
//
//mrlint:hotpath
func (w *prefixRunWriter) Append(part int, key, value []byte) error {
	if part < w.cur || part >= w.parts {
		//mrlint:ignore alloccheck cold path: contract violation, never taken per record
		return fmt.Errorf("kvio: run %q: partition %d out of order (current %d, parts %d)", w.name, part, w.cur, w.parts)
	}
	if part > w.cur || !w.started {
		lo := w.cur
		if w.started {
			lo = w.cur + 1
		}
		for p := lo; p <= part; p++ {
			w.index.Segments[p].Off = w.off
		}
		w.cur = part
		w.started = true
		w.prevKey = w.prevKey[:0] // prefixes never cross segments
	}
	w.scratch = appendPrefixedKV(w.scratch[:0], w.prevKey, key, value)
	n, err := w.buf.Write(w.scratch)
	if err != nil {
		//mrlint:ignore alloccheck cold path: disk failure ends the run, not the per-record loop
		return fmt.Errorf("kvio: run %q: writing record: %w", w.name, err)
	}
	w.off += int64(n)
	w.index.Segments[part].Len += int64(n)
	w.index.Segments[part].Records++
	w.prevKey = append(w.prevKey[:0], key...)
	w.rawIn += int64(serde.KVLen(len(key), len(value)))
	return nil
}

// Close flushes and returns the index.
func (w *prefixRunWriter) Close() (RunIndex, error) {
	if !w.started {
		w.cur = -1
	}
	for p := w.cur + 1; p < w.parts; p++ {
		w.index.Segments[p].Off = w.off
	}
	if err := w.buf.Flush(); err != nil {
		return RunIndex{}, fmt.Errorf("kvio: run %q: flush: %w", w.name, err)
	}
	if err := w.file.Close(); err != nil {
		return RunIndex{}, fmt.Errorf("kvio: run %q: close: %w", w.name, err)
	}
	return w.index, nil
}

// BytesWritten reports compressed bytes written so far.
func (w *prefixRunWriter) BytesWritten() int64 { return w.off }

// RawBytesIn reports the bytes the same records would have occupied in the
// plain format — the compression-savings numerator.
func (w *prefixRunWriter) RawBytesIn() int64 { return w.rawIn }

// prefixRunReader streams one partition segment of a compressed run.
type prefixRunReader struct {
	rc   io.ReadCloser
	r    *bufio.Reader
	key  []byte
	val  []byte
	read int64
	len  int64
}

func openPrefixRunPart(disk vdisk.Disk, idx RunIndex, part int) (Stream, error) {
	seg := idx.Segments[part]
	rc, err := disk.OpenSection(idx.Name, seg.Off, seg.Len)
	if err != nil {
		return nil, fmt.Errorf("kvio: opening run %q part %d: %w", idx.Name, part, err)
	}
	return &prefixRunReader{rc: rc, r: bufio.NewReaderSize(rc, 64<<10), len: seg.Len}, nil
}

// Next implements Stream. Key and value buffers are reused across calls,
// growing to the segment's high-water sizes.
//
//mrlint:hotpath
func (r *prefixRunReader) Next() (key, value []byte, err error) {
	shared, err := binary.ReadUvarint(r.r)
	if err == io.EOF {
		return nil, nil, io.EOF
	}
	if err != nil {
		//mrlint:ignore alloccheck cold path: corrupt frame ends the stream
		return nil, nil, fmt.Errorf("kvio: prefix frame: %w", err)
	}
	suffixLen, err := binary.ReadUvarint(r.r)
	if err != nil {
		//mrlint:ignore alloccheck cold path: corrupt frame ends the stream
		return nil, nil, fmt.Errorf("kvio: prefix frame: %w", eofToUnexpected(err))
	}
	valLen, err := binary.ReadUvarint(r.r)
	if err != nil {
		//mrlint:ignore alloccheck cold path: corrupt frame ends the stream
		return nil, nil, fmt.Errorf("kvio: prefix frame: %w", eofToUnexpected(err))
	}
	if shared > uint64(len(r.key)) {
		//mrlint:ignore alloccheck cold path: corrupt frame ends the stream
		return nil, nil, fmt.Errorf("kvio: prefix frame: shared %d exceeds previous key %d", shared, len(r.key))
	}
	r.key = r.key[:shared]
	suffixStart := len(r.key)
	r.key = append(r.key, make([]byte, suffixLen)...)
	if _, err := io.ReadFull(r.r, r.key[suffixStart:]); err != nil {
		//mrlint:ignore alloccheck cold path: corrupt frame ends the stream
		return nil, nil, fmt.Errorf("kvio: prefix frame key: %w", eofToUnexpected(err))
	}
	if cap(r.val) < int(valLen) {
		//mrlint:ignore alloccheck amortized: the value buffer grows to the segment's high-water size, then is reused
		r.val = make([]byte, valLen)
	}
	r.val = r.val[:valLen]
	if _, err := io.ReadFull(r.r, r.val); err != nil {
		//mrlint:ignore alloccheck cold path: corrupt frame ends the stream
		return nil, nil, fmt.Errorf("kvio: prefix frame value: %w", eofToUnexpected(err))
	}
	return r.key, r.val, nil
}

// Close implements Stream.
func (r *prefixRunReader) Close() error { return r.rc.Close() }

func eofToUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// RunSink abstracts the two run-writer formats for the map task.
type RunSink interface {
	Append(part int, key, value []byte) error
	Close() (RunIndex, error)
	BytesWritten() int64
}

// NewRunSink creates a run writer in the requested format.
func NewRunSink(disk vdisk.Disk, name string, parts int, compressed bool) (RunSink, error) {
	if compressed {
		return NewPrefixRunWriter(disk, name, parts)
	}
	return NewRunWriter(disk, name, parts)
}
