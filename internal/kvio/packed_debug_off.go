//go:build !mrdebug

package kvio

// Release-build no-op twins of the mrdebug sort-agreement checks; the
// hot path pays nothing for them.

func debugSortReference(PackedRecords) []Record { return nil }

func debugCheckSortAgreement(PackedRecords, []Record) {}
