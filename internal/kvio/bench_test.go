package kvio

import (
	"fmt"
	"io"
	"testing"

	"mrtext/internal/vdisk"
)

func benchRuns(b *testing.B, disk vdisk.Disk, nRuns, recsPerRun int, compressed bool) []RunIndex {
	b.Helper()
	idxs := make([]RunIndex, nRuns)
	for r := 0; r < nRuns; r++ {
		w, err := NewRunSink(disk, fmt.Sprintf("run%d-%v", r, compressed), 1, compressed)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < recsPerRun; i++ {
			k := []byte(fmt.Sprintf("word/%06d", i*nRuns+r))
			if err := w.Append(0, k, []byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		idx, err := w.Close()
		if err != nil {
			b.Fatal(err)
		}
		idxs[r] = idx
	}
	return idxs
}

func BenchmarkKWayMerge(b *testing.B) {
	disk := vdisk.NewMem()
	idxs := benchRuns(b, disk, 8, 4096, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streams := make([]Stream, len(idxs))
		for j, idx := range idxs {
			s, err := OpenRunPart(disk, idx, 0)
			if err != nil {
				b.Fatal(err)
			}
			streams[j] = s
		}
		m, err := NewMerger(streams)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			_, ok, err := m.NextGroup()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			for {
				_, ok, err := m.NextValue()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
				n++
			}
		}
		m.Close()
		if n != 8*4096 {
			b.Fatalf("merged %d records", n)
		}
	}
	b.SetBytes(8 * 4096)
}

func BenchmarkRunFormats(b *testing.B) {
	for _, compressed := range []bool{false, true} {
		name := "plain"
		if compressed {
			name = "prefix-compressed"
		}
		b.Run(name+"/write", func(b *testing.B) {
			disk := vdisk.NewMem()
			for i := 0; i < b.N; i++ {
				w, err := NewRunSink(disk, fmt.Sprintf("w%d-%v", i, compressed), 1, compressed)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 4096; j++ {
					if err := w.Append(0, []byte(fmt.Sprintf("word/%06d", j)), []byte("v")); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(4096)
		})
		b.Run(name+"/read", func(b *testing.B) {
			disk := vdisk.NewMem()
			idx := benchRuns(b, disk, 1, 4096, compressed)[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := OpenRunPart(disk, idx, 0)
				if err != nil {
					b.Fatal(err)
				}
				for {
					if _, _, err := s.Next(); err == io.EOF {
						break
					} else if err != nil {
						b.Fatal(err)
					}
				}
				s.Close()
			}
			b.SetBytes(4096)
		})
	}
}

func BenchmarkSortRecords(b *testing.B) {
	base := make([]Record, 1<<14)
	for i := range base {
		base[i] = Record{Part: i % 12, Key: []byte(fmt.Sprintf("k%05d", (i*2654435761)%9973))}
	}
	work := make([]Record, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		SortRecords(work)
	}
	b.SetBytes(int64(len(base)))
}

func BenchmarkSortPacked(b *testing.B) {
	var base PackedRecords
	for i := 0; i < 1<<14; i++ {
		base.Append(i%12, []byte(fmt.Sprintf("k%05d", (i*2654435761)%9973)), []byte("v"))
	}
	work := PackedRecords{Meta: make([]Meta, base.Len()), Arena: base.Arena}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work.Meta, base.Meta)
		SortPacked(work)
	}
	b.SetBytes(int64(base.Len()))
}

// BenchmarkReferenceMerge is the container/heap baseline that
// BenchmarkKWayMerge (which now exercises the loser tree through
// NewMerger) is compared against.
func BenchmarkReferenceMerge(b *testing.B) {
	disk := vdisk.NewMem()
	idxs := benchRuns(b, disk, 8, 4096, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streams := make([]Stream, len(idxs))
		for j, idx := range idxs {
			s, err := OpenRunPart(disk, idx, 0)
			if err != nil {
				b.Fatal(err)
			}
			streams[j] = s
		}
		m, err := NewReferenceMerger(streams)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			_, ok, err := m.NextGroup()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			for {
				_, ok, err := m.NextValue()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
				n++
			}
		}
		m.Close()
		if n != 8*4096 {
			b.Fatalf("merged %d records", n)
		}
	}
	b.SetBytes(8 * 4096)
}
