package kvio

// Raw-segment access for the pipelined shuffle. A shuffle copier stages
// the raw bytes of one partition segment (ReadSegment) on the reduce
// side's staging node long before the reduce attempt runs; the attempt
// later decodes the staged copy (NewSegmentStream) instead of re-reading
// the map output across the fabric. Both on-disk run formats decode from
// a plain byte stream, so a staged copy is indistinguishable from the
// original positioned read.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"mrtext/internal/serde"
	"mrtext/internal/vdisk"
)

// ReadSegment reads the raw on-disk bytes of partition part of the run
// described by idx. The returned bytes, decoded with NewSegmentStream
// (honoring idx.Compressed), yield exactly the records OpenRunPart would.
func ReadSegment(disk vdisk.Disk, idx RunIndex, part int) ([]byte, error) {
	if part < 0 || part >= len(idx.Segments) {
		return nil, fmt.Errorf("kvio: run %q has no partition %d", idx.Name, part)
	}
	seg := idx.Segments[part]
	rc, err := disk.OpenSection(idx.Name, seg.Off, seg.Len)
	if err != nil {
		return nil, fmt.Errorf("kvio: reading run %q part %d: %w", idx.Name, part, err)
	}
	buf := make([]byte, seg.Len)
	_, rerr := io.ReadFull(rc, buf)
	cerr := rc.Close()
	if rerr != nil {
		return nil, fmt.Errorf("kvio: reading run %q part %d: %w", idx.Name, part, rerr)
	}
	if cerr != nil {
		return nil, fmt.Errorf("kvio: reading run %q part %d: close: %w", idx.Name, part, cerr)
	}
	return buf, nil
}

// CompressSegment transcodes a plain-format segment (as returned by
// ReadSegment on an uncompressed run) into the prefix-compressed run
// format. The result decodes with NewBytesSegmentStream(out, true) to
// exactly the records of the input. Shuffle copiers use this to ship and
// stage segments compressed, so fabric and staging memory are charged
// the wire size rather than the raw size. An empty segment transcodes to
// an empty (nil) segment.
func CompressSegment(raw []byte) ([]byte, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	st := NewBytesSegmentStream(raw, false)
	defer st.Close()
	out := make([]byte, 0, len(raw))
	var prev []byte
	for {
		k, v, err := st.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("kvio: compressing segment: %w", err)
		}
		out = appendPrefixedKV(out, prev, k, v)
		// Streams may reuse the key buffer across Next calls; keep a
		// stable copy for the next frame's shared-prefix computation.
		prev = append(prev[:0], k...)
	}
}

// NewSegmentStream decodes one partition segment from rc in the given
// on-disk format (compressed selects the prefix-compressed framing).
// Closing the stream closes rc.
func NewSegmentStream(rc io.ReadCloser, compressed bool) Stream {
	if compressed {
		return &prefixRunReader{rc: rc, r: bufio.NewReaderSize(rc, 64<<10)}
	}
	return &runReader{rc: rc, r: serde.NewReader(bufio.NewReaderSize(rc, 64<<10))}
}

// NewBytesSegmentStream decodes an in-memory segment previously read with
// ReadSegment (or any byte-identical copy of one).
func NewBytesSegmentStream(data []byte, compressed bool) Stream {
	return NewSegmentStream(io.NopCloser(bytes.NewReader(data)), compressed)
}
