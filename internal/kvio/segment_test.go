package kvio

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"mrtext/internal/vdisk"
)

// writeSegTestRun writes a multi-partition run in the requested format and
// returns its index.
func writeSegTestRun(t *testing.T, disk vdisk.Disk, name string, parts int, compressed bool, rng *rand.Rand) RunIndex {
	t.Helper()
	sink, err := NewRunSink(disk, name, parts, compressed)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < parts; p++ {
		if p == 2 {
			continue // leave one partition empty
		}
		n := 1 + rng.Intn(200)
		prev := ""
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("key-%s-%04d", prev, i)
			prev = key[:4]
			val := fmt.Sprintf("v%d", rng.Intn(1000))
			if err := sink.Append(p, []byte(key), []byte(val)); err != nil {
				t.Fatal(err)
			}
		}
	}
	idx, err := sink.Close()
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// drain reads a stream to EOF, returning copied records.
func drain(t *testing.T, s Stream) [][2]string {
	t.Helper()
	var out [][2]string
	for {
		k, v, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, [2]string{string(k), string(v)})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReadSegmentMatchesOpenRunPart asserts that staging a segment's raw
// bytes and decoding them in memory yields exactly the records of the
// positioned read, for both on-disk formats and every partition including
// an empty one.
func TestReadSegmentMatchesOpenRunPart(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		t.Run(fmt.Sprintf("compressed=%v", compressed), func(t *testing.T) {
			disk := vdisk.NewMem()
			rng := rand.New(rand.NewSource(7))
			idx := writeSegTestRun(t, disk, "run", 5, compressed, rng)
			for p := 0; p < 5; p++ {
				direct, err := OpenRunPart(disk, idx, p)
				if err != nil {
					t.Fatal(err)
				}
				want := drain(t, direct)

				raw, err := ReadSegment(disk, idx, p)
				if err != nil {
					t.Fatal(err)
				}
				if int64(len(raw)) != idx.Segments[p].Len {
					t.Fatalf("part %d: raw %d bytes, index says %d", p, len(raw), idx.Segments[p].Len)
				}
				got := drain(t, NewBytesSegmentStream(raw, compressed))
				if len(got) != len(want) {
					t.Fatalf("part %d: %d records staged vs %d direct", p, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("part %d record %d: staged %q direct %q", p, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestReadSegmentBounds asserts out-of-range partitions error.
func TestReadSegmentBounds(t *testing.T) {
	disk := vdisk.NewMem()
	rng := rand.New(rand.NewSource(8))
	idx := writeSegTestRun(t, disk, "run", 3, false, rng)
	if _, err := ReadSegment(disk, idx, -1); err == nil {
		t.Fatal("negative partition did not error")
	}
	if _, err := ReadSegment(disk, idx, 3); err == nil {
		t.Fatal("out-of-range partition did not error")
	}
}

// TestCompressSegmentRoundTrip asserts that transcoding a raw segment to
// the prefix-compressed wire format preserves every record, shrinks runs
// of shared-prefix keys, and treats the empty segment as empty output.
func TestCompressSegmentRoundTrip(t *testing.T) {
	disk := vdisk.NewMem()
	rng := rand.New(rand.NewSource(9))
	idx := writeSegTestRun(t, disk, "run", 5, false, rng)
	for p := 0; p < 5; p++ {
		raw, err := ReadSegment(disk, idx, p)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := CompressSegment(raw)
		if err != nil {
			t.Fatalf("part %d: compress: %v", p, err)
		}
		if len(raw) == 0 {
			if len(enc) != 0 {
				t.Fatalf("part %d: empty segment compressed to %d bytes", p, len(enc))
			}
			continue
		}
		if len(enc) >= len(raw) {
			t.Fatalf("part %d: wire %d bytes not below raw %d", p, len(enc), len(raw))
		}
		want := drain(t, NewBytesSegmentStream(raw, false))
		got := drain(t, NewBytesSegmentStream(enc, true))
		if len(got) != len(want) {
			t.Fatalf("part %d: %d records after round trip, want %d", p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("part %d record %d: round trip %q, raw %q", p, i, got[i], want[i])
			}
		}
	}
	if enc, err := CompressSegment(nil); err != nil || len(enc) != 0 {
		t.Fatalf("CompressSegment(nil) = %d bytes, %v; want empty, nil", len(enc), err)
	}
}
