package kvio

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mrtext/internal/vdisk"
)

func TestPrefixRunRoundTrip(t *testing.T) {
	disk := vdisk.NewMem()
	w, err := NewPrefixRunWriter(disk, "prun", 3)
	if err != nil {
		t.Fatal(err)
	}
	type kv struct{ k, v string }
	var want [][]kv
	want = append(want, nil, nil, nil)
	for part := 0; part < 3; part++ {
		keys := []string{"app", "apple", "applesauce", "banana", "band", "bandit", "zz"}
		for i, k := range keys {
			v := fmt.Sprintf("val-%d-%d", part, i)
			if err := w.Append(part, []byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			want[part] = append(want[part], kv{k, v})
		}
	}
	idx, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !idx.Compressed {
		t.Error("index not marked compressed")
	}
	for part := 0; part < 3; part++ {
		s, err := OpenRunPart(disk, idx, part)
		if err != nil {
			t.Fatal(err)
		}
		for i, kvWant := range want[part] {
			k, v, err := s.Next()
			if err != nil {
				t.Fatalf("part %d rec %d: %v", part, i, err)
			}
			if string(k) != kvWant.k || string(v) != kvWant.v {
				t.Fatalf("part %d rec %d: got %q/%q want %q/%q", part, i, k, v, kvWant.k, kvWant.v)
			}
		}
		if _, _, err := s.Next(); err != io.EOF {
			t.Fatalf("part %d: expected EOF, got %v", part, err)
		}
		s.Close()
	}
}

func TestPrefixRunRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := make([]string, int(n)+1)
		for i := range keys {
			// Keys with heavy shared prefixes.
			keys[i] = "prefix/" + string(rune('a'+rng.Intn(4))) + fmt.Sprint(rng.Intn(30))
		}
		sort.Strings(keys)
		disk := vdisk.NewMem()
		w, err := NewPrefixRunWriter(disk, "q", 1)
		if err != nil {
			return false
		}
		for i, k := range keys {
			if err := w.Append(0, []byte(k), []byte(fmt.Sprint(i))); err != nil {
				return false
			}
		}
		idx, err := w.Close()
		if err != nil {
			return false
		}
		s, err := OpenRunPart(disk, idx, 0)
		if err != nil {
			return false
		}
		defer s.Close()
		for i, want := range keys {
			k, v, err := s.Next()
			if err != nil || string(k) != want || string(v) != fmt.Sprint(i) {
				return false
			}
		}
		_, _, err = s.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPrefixCompressionShrinks(t *testing.T) {
	disk := vdisk.NewMem()
	plain, err := NewRunWriter(disk, "plain", 1)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewPrefixRunWriter(disk, "comp", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted keys with long shared prefixes — the text-corpus shape.
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("commonprefix/word%06d", i))
		v := []byte("v")
		if err := plain.Append(0, k, v); err != nil {
			t.Fatal(err)
		}
		if err := comp.Append(0, k, v); err != nil {
			t.Fatal(err)
		}
	}
	pi, err := plain.Close()
	if err != nil {
		t.Fatal(err)
	}
	ci, err := comp.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ci.TotalBytes() >= pi.TotalBytes()*2/3 {
		t.Errorf("compressed %d vs plain %d: less than 33%% saved on prefix-heavy keys",
			ci.TotalBytes(), pi.TotalBytes())
	}
}

func TestPrefixResetsAcrossSegments(t *testing.T) {
	// The first key of each partition must be encoded with shared=0 even
	// if it shares a prefix with the previous partition's last key.
	disk := vdisk.NewMem()
	w, err := NewPrefixRunWriter(disk, "seg", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, []byte("shared-key-one"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("shared-key-two"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	idx, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	// Reading partition 1 alone must reconstruct its key with no context.
	s, err := OpenRunPart(disk, idx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k, v, err := s.Next()
	if err != nil || string(k) != "shared-key-two" || string(v) != "b" {
		t.Fatalf("got %q/%q err %v", k, v, err)
	}
}

func TestPrefixRawBytesAccounting(t *testing.T) {
	disk := vdisk.NewMem()
	w, err := NewPrefixRunWriter(disk, "raw", 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(0, []byte("aaaa"), []byte("1111"))
	w.Append(0, []byte("aaab"), []byte("2222"))
	if w.RawBytesIn() <= w.BytesWritten() {
		t.Errorf("raw %d not larger than compressed %d", w.RawBytesIn(), w.BytesWritten())
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRunSinkDispatch(t *testing.T) {
	disk := vdisk.NewMem()
	a, err := NewRunSink(disk, "a", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.(*RunWriter); !ok {
		t.Errorf("plain sink type %T", a)
	}
	b, err := NewRunSink(disk, "b", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(*prefixRunWriter); !ok {
		t.Errorf("compressed sink type %T", b)
	}
	a.Close()
	b.Close()
	if _, err := NewRunSink(disk, "c", 0, true); err == nil {
		t.Error("zero partitions accepted")
	}
}

func TestPrefixMergeInterop(t *testing.T) {
	// Compressed and plain runs merge together transparently.
	disk := vdisk.NewMem()
	mk := func(name string, compressed bool, keys ...string) RunIndex {
		w, err := NewRunSink(disk, name, 1, compressed)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if err := w.Append(0, []byte(k), []byte(name)); err != nil {
				t.Fatal(err)
			}
		}
		idx, err := w.Close()
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	i1 := mk("r1", true, "alpha", "beta", "gamma")
	i2 := mk("r2", false, "alpine", "beta", "delta")
	s1, err := OpenRunPart(disk, i1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenRunPart(disk, i2, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewRunWriter(disk, "merged", 1)
	if err != nil {
		t.Fatal(err)
	}
	emitted, consumed, err := MergeInto([]Stream{s1, s2}, 0, out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != 6 || emitted != 6 {
		t.Errorf("consumed %d emitted %d", consumed, emitted)
	}
	idx, err := out.Close()
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenRunPart(disk, idx, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var got []string
	for {
		k, _, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(k))
	}
	want := []string{"alpha", "alpine", "beta", "beta", "delta", "gamma"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pos %d: %q want %q", i, got[i], want[i])
		}
	}
	if !bytes.Equal([]byte(got[0]), []byte("alpha")) {
		t.Error("sanity")
	}
}
