package kvio

// Loser-tree k-way merge — the hot-path replacement for the old
// container/heap merger (kept as ReferenceMerger in refmerge.go).
//
// A loser tree replaces the heap's O(log k) sift — each level of which
// paid an interface-dispatched Less plus a full bytes.Compare — with a
// single root-to-leaf replay of exactly ⌈log2 k⌉ comparisons, each of
// which first tries the stream's cached eight-byte key prefix as one
// unsigned integer compare and only touches key bytes on a prefix tie.
// Each stream's head is also copied into per-leaf reused buffers, so
// steady-state merging allocates nothing per record (the heap version
// allocated a fresh key and value copy for every record pushed).

import (
	"bytes"
	"errors"
	"fmt"
	"io"
)

// mergeLeaf is one stream's current head record inside the loser tree.
// key/value are leaf-owned buffers reused across advances; spare is the
// previous value buffer, kept so a value returned by NextValue stays
// valid until the *next* NextValue call even if the same leaf advances.
type mergeLeaf struct {
	prefix uint64
	key    []byte
	value  []byte
	spare  []byte
	src    int
	eof    bool
}

// Merger performs a streaming k-way merge over sorted Streams. It
// exposes the merged sequence grouped by key: NextGroup positions on
// the next distinct key and NextValue iterates that key's values
// lazily. The key slice is valid until the next NextGroup call; a value
// slice is valid until the following NextValue call.
type Merger struct {
	streams []Stream
	leaves  []mergeLeaf
	// node[0] is the overall winner's leaf index; node[1..k-1] hold the
	// losers of the internal matches (Knuth's tree of losers). Leaf i
	// conceptually sits at position k+i; the parent of position n is n/2.
	node      []int
	curKey    []byte
	groupOpen bool
	done      bool
	err       error
}

// NewMerger builds a Merger over streams; it immediately primes every
// stream. Streams are closed by Close.
func NewMerger(streams []Stream) (*Merger, error) {
	m := &Merger{streams: streams}
	k := len(streams)
	if k == 0 {
		m.done = true
		return m, nil
	}
	m.leaves = make([]mergeLeaf, k)
	m.node = make([]int, k)
	for i := range m.leaves {
		m.leaves[i].src = i
		if err := m.fill(i); err != nil {
			return nil, fmt.Errorf("kvio: priming merge stream %d: %w", i, errors.Join(err, m.Close()))
		}
	}
	m.node[0] = m.build(1)
	return m, nil
}

// fill loads stream i's next record into leaf i, marking eof at stream
// end. The leaf's buffers are reused; the previous value buffer is kept
// as spare for one extra call of validity.
//
//mrlint:hotpath
func (m *Merger) fill(i int) error {
	l := &m.leaves[i]
	k, v, err := m.streams[i].Next()
	if err == io.EOF {
		l.eof = true
		return nil
	}
	if err != nil {
		return err
	}
	l.key = append(l.key[:0], k...)
	l.value, l.spare = append(l.spare[:0], v...), l.value
	l.prefix = KeyPrefix(l.key)
	return nil
}

// leafLess orders leaves by (key, src); exhausted leaves sort last. The
// src tiebreak preserves the cross-run stability the old heap merger
// guaranteed: equal keys surface in stream order.
//
//mrlint:hotpath
func (m *Merger) leafLess(a, b int) bool {
	la, lb := &m.leaves[a], &m.leaves[b]
	if la.eof || lb.eof {
		return !la.eof && lb.eof
	}
	if la.prefix != lb.prefix {
		return la.prefix < lb.prefix
	}
	if len(la.key) <= 8 || len(lb.key) <= 8 {
		if len(la.key) != len(lb.key) {
			return len(la.key) < len(lb.key)
		}
		return la.src < lb.src
	}
	c := bytes.Compare(la.key[8:], lb.key[8:])
	if c != 0 {
		return c < 0
	}
	return la.src < lb.src
}

// build plays out the subtree rooted at position n, storing losers in
// the internal nodes and returning the subtree's winning leaf.
func (m *Merger) build(n int) int {
	k := len(m.leaves)
	if n >= k {
		return n - k
	}
	a := m.build(2 * n)
	b := m.build(2*n + 1)
	if m.leafLess(a, b) {
		m.node[n] = b
		return a
	}
	m.node[n] = a
	return b
}

// replay restores the tree after leaf w (the previous winner) changed:
// one walk from the leaf's parent to the root, swapping the candidate
// with any stored loser that now beats it.
//
//mrlint:hotpath
func (m *Merger) replay(w int) {
	k := len(m.leaves)
	for n := (w + k) / 2; n >= 1; n /= 2 {
		if m.leafLess(m.node[n], w) {
			m.node[n], w = w, m.node[n]
		}
	}
	m.node[0] = w
}

// NextGroup advances to the next distinct key. It returns the key and
// true, or nil and false at end of input. Any unconsumed values of the
// previous group are drained first.
//
//mrlint:hotpath
func (m *Merger) NextGroup() ([]byte, bool, error) {
	if m.err != nil || m.done {
		return nil, false, m.err
	}
	// Drain the remainder of the current group.
	for {
		_, ok, err := m.NextValue()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
	}
	w := &m.leaves[m.node[0]]
	if w.eof {
		m.done = true
		m.groupOpen = false
		return nil, false, nil
	}
	m.curKey = append(m.curKey[:0], w.key...)
	m.groupOpen = true
	return m.curKey, true, nil
}

// NextValue returns the next value of the current group, or false when
// the group is exhausted. The returned slice is valid until the next
// NextValue call.
//
//mrlint:hotpath
func (m *Merger) NextValue() ([]byte, bool, error) {
	if m.err != nil {
		return nil, false, m.err
	}
	if !m.groupOpen || m.done {
		return nil, false, nil
	}
	w := m.node[0]
	l := &m.leaves[w]
	if l.eof || !bytes.Equal(l.key, m.curKey) {
		return nil, false, nil // start of the next group
	}
	v := l.value
	if err := m.fill(w); err != nil {
		//mrlint:ignore alloccheck cold path: a stream failure ends the merge, not the per-record loop
		m.err = fmt.Errorf("kvio: merge stream %d: %w", w, err)
		return nil, false, m.err
	}
	m.replay(w)
	return v, true, nil
}

// Close closes all underlying streams, returning the first error.
func (m *Merger) Close() error {
	var first error
	for _, s := range m.streams {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
