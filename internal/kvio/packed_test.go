package kvio

// Property tests for the packed spill path: the prefix index sort and
// the loser-tree merge must be observationally identical to the
// reference implementations (SortRecords, ReferenceMerger) — same
// record order including stability, byte-identical run files in both
// on-disk formats, and identical group/value sequences out of the
// merge, across adversarial key distributions.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"mrtext/internal/vdisk"
)

// A generator produces one workload of records; values carry a serial
// number so stability violations are observable.
type generator struct {
	name string
	gen  func(r *rand.Rand, n int) []Record
}

func serialValue(i int) []byte { return []byte(fmt.Sprintf("v%06d", i)) }

var generators = []generator{
	{"random", func(r *rand.Rand, n int) []Record {
		recs := make([]Record, n)
		for i := range recs {
			k := make([]byte, r.Intn(24))
			r.Read(k)
			recs[i] = Record{Part: r.Intn(4), Key: k, Value: serialValue(i)}
		}
		return recs
	}},
	{"zipf-duplicates", func(r *rand.Rand, n int) []Record {
		zipf := rand.NewZipf(r, 1.3, 1, 64)
		recs := make([]Record, n)
		for i := range recs {
			k := []byte(fmt.Sprintf("word%02d", zipf.Uint64()))
			recs[i] = Record{Part: int(zipf.Uint64()) % 3, Key: k, Value: serialValue(i)}
		}
		return recs
	}},
	{"long-shared-prefixes", func(r *rand.Rand, n int) []Record {
		// Every key shares a 12-byte prefix, so every prefix comparison
		// ties and the sort must fall through to the arena tails; some
		// keys are exact prefixes of others.
		recs := make([]Record, n)
		for i := range recs {
			k := append([]byte("shared/prefix"), make([]byte, r.Intn(6))...)
			r.Read(k[13:])
			recs[i] = Record{Part: r.Intn(2), Key: k, Value: serialValue(i)}
		}
		return recs
	}},
	{"short-and-empty-keys", func(r *rand.Rand, n int) []Record {
		recs := make([]Record, n)
		for i := range recs {
			k := make([]byte, r.Intn(9)) // 0..8 bytes: everything fits the prefix
			r.Read(k)
			recs[i] = Record{Part: r.Intn(3), Key: k, Value: serialValue(i)}
		}
		return recs
	}},
}

func pack(recs []Record) PackedRecords {
	var p PackedRecords
	for _, r := range recs {
		p.Append(r.Part, r.Key, r.Value)
	}
	return p
}

// TestSortPackedMatchesReference: SortPacked must produce exactly the
// sequence sort.SliceStable produces — same keys, same partitions, and
// equal keys in emit order.
func TestSortPackedMatchesReference(t *testing.T) {
	for _, g := range generators {
		t.Run(g.name, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				r := rand.New(rand.NewSource(int64(trial)))
				recs := g.gen(r, 1+r.Intn(2000))
				p := pack(recs)
				ref := make([]Record, len(recs))
				copy(ref, recs)
				SortRecords(ref)
				SortPacked(p)
				if p.Len() != len(ref) {
					t.Fatalf("trial %d: packed has %d records, reference %d", trial, p.Len(), len(ref))
				}
				for i := range ref {
					if p.Part(i) != ref[i].Part || !bytes.Equal(p.Key(i), ref[i].Key) || !bytes.Equal(p.Value(i), ref[i].Value) {
						t.Fatalf("trial %d: mismatch at %d: packed (%d,%q,%q) vs reference (%d,%q,%q)",
							trial, i, p.Part(i), p.Key(i), p.Value(i), ref[i].Part, ref[i].Key, ref[i].Value)
					}
				}
			}
		})
	}
}

func readFile(t *testing.T, disk vdisk.Disk, name string) []byte {
	t.Helper()
	f, err := disk.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPackedRunFilesByteIdentical: the packed pipeline (SortPacked +
// run sink) must write the same bytes to disk as the reference pipeline
// (SortRecords + run sink), in both the plain and the prefix-compressed
// run format.
func TestPackedRunFilesByteIdentical(t *testing.T) {
	const parts = 4
	for _, g := range generators {
		for _, compressed := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/compressed=%v", g.name, compressed), func(t *testing.T) {
				for trial := 0; trial < 8; trial++ {
					r := rand.New(rand.NewSource(int64(100 + trial)))
					recs := g.gen(r, 1+r.Intn(1500))

					ref := make([]Record, len(recs))
					copy(ref, recs)
					SortRecords(ref)
					refDisk := vdisk.NewMem()
					rw, err := NewRunSink(refDisk, "run", parts, compressed)
					if err != nil {
						t.Fatal(err)
					}
					for _, rec := range ref {
						if err := rw.Append(rec.Part, rec.Key, rec.Value); err != nil {
							t.Fatal(err)
						}
					}
					if _, err := rw.Close(); err != nil {
						t.Fatal(err)
					}

					p := pack(recs)
					SortPacked(p)
					pkDisk := vdisk.NewMem()
					pw, err := NewRunSink(pkDisk, "run", parts, compressed)
					if err != nil {
						t.Fatal(err)
					}
					for i := 0; i < p.Len(); i++ {
						if err := pw.Append(p.Part(i), p.Key(i), p.Value(i)); err != nil {
							t.Fatal(err)
						}
					}
					if _, err := pw.Close(); err != nil {
						t.Fatal(err)
					}

					if a, b := readFile(t, refDisk, "run"), readFile(t, pkDisk, "run"); !bytes.Equal(a, b) {
						t.Fatalf("trial %d: run files differ (%d vs %d bytes)", trial, len(a), len(b))
					}
				}
			})
		}
	}
}

// drive pulls the complete grouped sequence out of a merger.
type groupSeq struct {
	key  []byte
	vals [][]byte
}

type groupedMerger interface {
	NextGroup() ([]byte, bool, error)
	NextValue() ([]byte, bool, error)
	Close() error
}

func drive(t *testing.T, m groupedMerger) []groupSeq {
	t.Helper()
	defer m.Close()
	var out []groupSeq
	for {
		key, ok, err := m.NextGroup()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		g := groupSeq{key: append([]byte(nil), key...)}
		for {
			v, ok, err := m.NextValue()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			g.vals = append(g.vals, append([]byte(nil), v...))
		}
		out = append(out, g)
	}
}

// mergeRuns writes the workload into nRuns sorted run files and returns
// an opener for each partition's streams.
func mergeRuns(t *testing.T, recs []Record, parts, nRuns int, compressed bool) (vdisk.Disk, []RunIndex) {
	t.Helper()
	sorted := make([]Record, len(recs))
	copy(sorted, recs)
	for i := range sorted {
		sorted[i].Part %= parts // generators draw from more partitions than some tests use
	}
	SortRecords(sorted)
	disk := vdisk.NewMem()
	idxs := make([]RunIndex, nRuns)
	for run := 0; run < nRuns; run++ {
		w, err := NewRunSink(disk, fmt.Sprintf("run%d", run), parts, compressed)
		if err != nil {
			t.Fatal(err)
		}
		for i := run; i < len(sorted); i += nRuns {
			if err := w.Append(sorted[i].Part, sorted[i].Key, sorted[i].Value); err != nil {
				t.Fatal(err)
			}
		}
		idxs[run], err = w.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	return disk, idxs
}

func openAll(t *testing.T, disk vdisk.Disk, idxs []RunIndex, part int) []Stream {
	t.Helper()
	streams := make([]Stream, len(idxs))
	for i, idx := range idxs {
		s, err := OpenRunPart(disk, idx, part)
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = s
	}
	return streams
}

// TestLoserTreeMatchesReferenceMerger: the loser tree must yield the
// same group sequence and, within each group, the same value order
// (cross-run stability) as the heap reference, over every generator,
// both run formats, and k = 1..8 (including runs left empty for a
// partition).
func TestLoserTreeMatchesReferenceMerger(t *testing.T) {
	const parts = 3
	for _, g := range generators {
		for _, compressed := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/compressed=%v", g.name, compressed), func(t *testing.T) {
				for trial := 0; trial < 6; trial++ {
					r := rand.New(rand.NewSource(int64(200 + trial)))
					nRuns := 1 + r.Intn(8)
					recs := g.gen(r, r.Intn(1200)) // may be 0: all runs empty
					disk, idxs := mergeRuns(t, recs, parts, nRuns, compressed)
					for p := 0; p < parts; p++ {
						want := drive(t, mustRef(t, openAll(t, disk, idxs, p)))
						got := drive(t, mustNew(t, openAll(t, disk, idxs, p)))
						compareGroups(t, want, got, fmt.Sprintf("%s trial %d part %d (k=%d)", g.name, trial, p, nRuns))
					}
				}
			})
		}
	}
}

func mustRef(t *testing.T, s []Stream) *ReferenceMerger {
	t.Helper()
	m, err := NewReferenceMerger(s)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustNew(t *testing.T, s []Stream) *Merger {
	t.Helper()
	m, err := NewMerger(s)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func compareGroups(t *testing.T, want, got []groupSeq, context string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d groups from reference, %d from loser tree", context, len(want), len(got))
	}
	for i := range want {
		if !bytes.Equal(want[i].key, got[i].key) {
			t.Fatalf("%s: group %d key %q (reference) vs %q (loser tree)", context, i, want[i].key, got[i].key)
		}
		if len(want[i].vals) != len(got[i].vals) {
			t.Fatalf("%s: group %q: %d values vs %d", context, want[i].key, len(want[i].vals), len(got[i].vals))
		}
		for j := range want[i].vals {
			if !bytes.Equal(want[i].vals[j], got[i].vals[j]) {
				t.Fatalf("%s: group %q value %d: %q vs %q — combiner value order diverged",
					context, want[i].key, j, want[i].vals[j], got[i].vals[j])
			}
		}
	}
}

// TestMergerEdgeCases: zero streams, a single stream, and streams with
// an empty-key group must behave identically in both mergers.
func TestMergerEdgeCases(t *testing.T) {
	t.Run("zero-streams", func(t *testing.T) {
		for _, m := range []groupedMerger{mustNew(t, nil), mustRef(t, nil)} {
			if groups := drive(t, m); len(groups) != 0 {
				t.Fatalf("expected no groups from empty merge, got %d", len(groups))
			}
		}
	})
	t.Run("single-stream", func(t *testing.T) {
		recs := []Record{
			{Part: 0, Key: []byte(""), Value: []byte("empty1")},
			{Part: 0, Key: []byte(""), Value: []byte("empty2")},
			{Part: 0, Key: []byte("a"), Value: []byte("x")},
		}
		disk, idxs := mergeRuns(t, recs, 1, 1, false)
		want := drive(t, mustRef(t, openAll(t, disk, idxs, 0)))
		got := drive(t, mustNew(t, openAll(t, disk, idxs, 0)))
		if len(got) != 2 || string(got[0].key) != "" || len(got[0].vals) != 2 {
			t.Fatalf("empty-key group mishandled: %+v", got)
		}
		compareGroups(t, want, got, "single-stream")
	})
	t.Run("empty-key-across-runs", func(t *testing.T) {
		recs := []Record{
			{Part: 0, Key: []byte(""), Value: []byte("r0")},
			{Part: 0, Key: []byte(""), Value: []byte("r1")},
			{Part: 0, Key: []byte(""), Value: []byte("r2")},
			{Part: 0, Key: []byte("z"), Value: []byte("tail")},
		}
		disk, idxs := mergeRuns(t, recs, 1, 3, false)
		want := drive(t, mustRef(t, openAll(t, disk, idxs, 0)))
		got := drive(t, mustNew(t, openAll(t, disk, idxs, 0)))
		compareGroups(t, want, got, "empty-key-across-runs")
	})
}

// TestMergeIntoCombinerOrder: MergeInto (loser tree under the hood)
// must present each group's values to the combiner in exactly the order
// the reference merger yields them — the order combiner correctness
// depends on.
func TestMergeIntoCombinerOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	recs := generators[1].gen(r, 800) // duplicate-heavy
	const parts = 2
	disk, idxs := mergeRuns(t, recs, parts, 4, false)
	for p := 0; p < parts; p++ {
		var refOrder [][]byte
		refGroups := drive(t, mustRef(t, openAll(t, disk, idxs, p)))
		for _, g := range refGroups {
			refOrder = append(refOrder, g.vals...)
		}
		var gotOrder [][]byte
		out, err := NewRunSink(vdisk.NewMem(), "out", parts, false)
		if err != nil {
			t.Fatal(err)
		}
		combine := func(key []byte, vals [][]byte, emit func(k, v []byte) error) error {
			for _, v := range vals {
				gotOrder = append(gotOrder, append([]byte(nil), v...))
			}
			return emit(key, []byte("c"))
		}
		if _, _, err := MergeInto(openAll(t, disk, idxs, p), p, out, combine); err != nil {
			t.Fatal(err)
		}
		if _, err := out.Close(); err != nil {
			t.Fatal(err)
		}
		if len(refOrder) != len(gotOrder) {
			t.Fatalf("part %d: combiner saw %d values, reference yields %d", p, len(gotOrder), len(refOrder))
		}
		for i := range refOrder {
			if !bytes.Equal(refOrder[i], gotOrder[i]) {
				t.Fatalf("part %d: combiner value %d is %q, reference order says %q", p, i, gotOrder[i], refOrder[i])
			}
		}
	}
}
