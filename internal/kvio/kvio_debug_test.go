package kvio

import (
	"fmt"
	"io"
	"testing"

	"mrtext/internal/vdisk"
)

func TestRunWriterRoundTrip(t *testing.T) {
	disk := vdisk.NewMem()
	rw, err := NewRunWriter(disk, "run", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int][]string{}
	for part := 0; part < 4; part++ {
		if part == 2 {
			continue // leave a hole
		}
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("p%d-key%04d", part, i)
			v := fmt.Sprintf("val%d", i)
			if err := rw.Append(part, []byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			want[part] = append(want[part], k+"="+v)
		}
	}
	idx, err := rw.Close()
	if err != nil {
		t.Fatal(err)
	}
	for part := 0; part < 4; part++ {
		s, err := OpenRunPart(disk, idx, part)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for {
			k, v, err := s.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("part %d: %v", part, err)
			}
			got = append(got, string(k)+"="+string(v))
		}
		s.Close()
		if len(got) != len(want[part]) {
			t.Fatalf("part %d: got %d records want %d", part, len(got), len(want[part]))
		}
		for i := range got {
			if got[i] != want[part][i] {
				t.Fatalf("part %d rec %d: got %q want %q", part, i, got[i], want[part][i])
			}
		}
	}
}
