package kvio

// ReferenceMerger is the original container/heap k-way merger, kept as
// the reference implementation the loser-tree Merger (losertree.go) is
// validated against: property tests assert both produce identical group
// and value sequences, and the benchmark harness uses it as the
// pre-optimization baseline. It is not on any hot path.

import (
	"bytes"
	"container/heap"
	"errors"
	"fmt"
	"io"
)

// mergeHead is one stream's current record inside the merge heap.
type mergeHead struct {
	key, value []byte
	src        int
}

type mergeHeap struct {
	heads []mergeHead
}

func (h *mergeHeap) Len() int { return len(h.heads) }
func (h *mergeHeap) Less(i, j int) bool {
	c := bytes.Compare(h.heads[i].key, h.heads[j].key)
	if c != 0 {
		return c < 0
	}
	return h.heads[i].src < h.heads[j].src // stability across runs
}
func (h *mergeHeap) Swap(i, j int)      { h.heads[i], h.heads[j] = h.heads[j], h.heads[i] }
func (h *mergeHeap) Push(x interface{}) { h.heads = append(h.heads, x.(mergeHead)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.heads
	n := len(old)
	x := old[n-1]
	h.heads = old[:n-1]
	return x
}

// ReferenceMerger merges sorted Streams with the same grouped API as
// Merger: NextGroup positions on the next distinct key and NextValue
// iterates that key's values. The key slice is valid until the next
// NextGroup call.
type ReferenceMerger struct {
	streams []Stream
	h       mergeHeap
	// current group state
	curKey    []byte
	groupOpen bool
	pending   *mergeHead // head popped but not yet consumed
	done      bool
	err       error
}

// NewReferenceMerger builds a ReferenceMerger over streams; it
// immediately primes every stream. Streams are closed by Close.
func NewReferenceMerger(streams []Stream) (*ReferenceMerger, error) {
	m := &ReferenceMerger{streams: streams}
	for i, s := range streams {
		k, v, err := s.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("kvio: priming merge stream %d: %w", i, errors.Join(err, m.Close()))
		}
		m.h.heads = append(m.h.heads, mergeHead{key: append([]byte(nil), k...), value: append([]byte(nil), v...), src: i})
	}
	heap.Init(&m.h)
	return m, nil
}

// advance refills the heap from stream src after its head was consumed.
func (m *ReferenceMerger) advance(src int) error {
	k, v, err := m.streams[src].Next()
	if err == io.EOF {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvio: merge stream %d: %w", src, err)
	}
	heap.Push(&m.h, mergeHead{key: append([]byte(nil), k...), value: append([]byte(nil), v...), src: src})
	return nil
}

// NextGroup advances to the next distinct key. It returns the key and
// true, or nil and false at end of input.
func (m *ReferenceMerger) NextGroup() ([]byte, bool, error) {
	if m.err != nil || m.done {
		return nil, false, m.err
	}
	// Drain the remainder of the current group.
	for {
		_, ok, err := m.NextValue()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
	}
	if m.pending == nil {
		if m.h.Len() == 0 {
			m.done = true
			return nil, false, nil
		}
		head := heap.Pop(&m.h).(mergeHead)
		m.pending = &head
	}
	m.curKey = append(m.curKey[:0], m.pending.key...)
	m.groupOpen = true
	return m.curKey, true, nil
}

// NextValue returns the next value of the current group, or false when
// the group is exhausted.
func (m *ReferenceMerger) NextValue() ([]byte, bool, error) {
	if m.err != nil {
		return nil, false, m.err
	}
	if !m.groupOpen {
		return nil, false, nil
	}
	if m.pending == nil {
		if m.h.Len() == 0 {
			return nil, false, nil
		}
		head := heap.Pop(&m.h).(mergeHead)
		m.pending = &head
	}
	if !bytes.Equal(m.pending.key, m.curKey) {
		return nil, false, nil // start of the next group
	}
	v := m.pending.value
	src := m.pending.src
	m.pending = nil
	if err := m.advance(src); err != nil {
		m.err = err
		return nil, false, err
	}
	return v, true, nil
}

// Close closes all underlying streams, returning the first error.
func (m *ReferenceMerger) Close() error {
	var first error
	for _, s := range m.streams {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
