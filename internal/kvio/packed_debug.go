//go:build mrdebug

package kvio

import (
	"bytes"
	"fmt"
)

// Debug-build verification of the packed index sort against the
// reference SortRecords. Compiled in only under -tags mrdebug; the
// release build links the no-op twins in packed_debug_off.go.

// debugSortReference materializes the batch before sorting and sorts
// the copy with the reference implementation.
func debugSortReference(p PackedRecords) []Record {
	recs := make([]Record, p.Len())
	for i := range recs {
		recs[i] = Record{
			Part:  p.Part(i),
			Key:   append([]byte(nil), p.Key(i)...),
			Value: append([]byte(nil), p.Value(i)...),
		}
	}
	SortRecords(recs)
	return recs
}

// debugCheckSortAgreement panics unless the packed sort produced
// exactly the reference sequence — same records, same stable order.
func debugCheckSortAgreement(p PackedRecords, ref []Record) {
	if len(ref) != p.Len() {
		panic(fmt.Sprintf("kvio: SortPacked changed record count: %d != %d", p.Len(), len(ref)))
	}
	for i, r := range ref {
		if p.Part(i) != r.Part || !bytes.Equal(p.Key(i), r.Key) || !bytes.Equal(p.Value(i), r.Value) {
			panic(fmt.Sprintf("kvio: SortPacked disagrees with SortRecords at %d: got (%d, %q, %q), reference (%d, %q, %q)",
				i, p.Part(i), p.Key(i), p.Value(i), r.Part, r.Key, r.Value))
		}
	}
}
