// Package kvio implements the on-disk intermediate-data machinery of the
// runtime: sorted, partitioned run files (spill files and final map-output
// segments), sequential run readers, the packed in-memory record
// representation the spill path sorts (packed.go), and the loser-tree
// k-way merge — with optional inline combining — used both by the
// map-side merge and by the reduce-side shuffle merge (losertree.go).
//
// A run file holds, for each partition in ascending order, a contiguous
// segment of framed key/value records sorted by key. The byte offsets of
// the segments are kept in an in-memory RunIndex (the moral equivalent of
// Hadoop's spill index file), which lets the shuffle serve exactly one
// partition with a positioned read.
package kvio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"

	"mrtext/internal/serde"
	"mrtext/internal/vdisk"
)

// Record is one intermediate key/value pair tagged with its reduce
// partition. Key and Value reference caller-owned bytes.
type Record struct {
	Part  int
	Key   []byte
	Value []byte
}

// SortRecords sorts records by (partition, key), with a stable order for
// equal keys so combiner semantics match Hadoop's (values arrive in emit
// order). It is the reference implementation the packed index sort
// (SortPacked) is validated against; the spill hot path uses SortPacked.
func SortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Part != recs[j].Part {
			return recs[i].Part < recs[j].Part
		}
		return bytes.Compare(recs[i].Key, recs[j].Key) < 0
	})
}

// Segment locates one partition's records inside a run file.
type Segment struct {
	Off     int64
	Len     int64
	Records int64
}

// RunIndex describes a completed run file: its name on disk, its on-disk
// format, and the segment per partition.
type RunIndex struct {
	Name       string
	Compressed bool // prefix-compressed frames (see prefix.go)
	Segments   []Segment
}

// TotalBytes returns the file's total record bytes.
func (ri RunIndex) TotalBytes() int64 {
	var n int64
	for _, s := range ri.Segments {
		n += s.Len
	}
	return n
}

// TotalRecords returns the file's total record count.
func (ri RunIndex) TotalRecords() int64 {
	var n int64
	for _, s := range ri.Segments {
		n += s.Records
	}
	return n
}

// RunWriter writes a partitioned, sorted run file. Append must be called in
// non-decreasing partition order; within a partition, in non-decreasing key
// order (not verified, but merge correctness depends on it).
type RunWriter struct {
	disk    vdisk.Disk
	name    string
	file    io.WriteCloser
	buf     *bufio.Writer
	w       *serde.Writer
	parts   int
	cur     int
	off     int64
	index   RunIndex
	started bool
}

// NewRunWriter creates a run file with the given number of partitions.
func NewRunWriter(disk vdisk.Disk, name string, parts int) (*RunWriter, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("kvio: run %q: parts must be positive, got %d", name, parts)
	}
	f, err := disk.Create(name)
	if err != nil {
		return nil, fmt.Errorf("kvio: creating run %q: %w", name, err)
	}
	buf := bufio.NewWriterSize(f, 64<<10)
	return &RunWriter{
		disk:  disk,
		name:  name,
		file:  f,
		buf:   buf,
		w:     serde.NewWriter(buf),
		parts: parts,
		index: RunIndex{Name: name, Segments: make([]Segment, parts)},
	}, nil
}

// Append writes one record into partition part.
func (rw *RunWriter) Append(part int, key, value []byte) error {
	if part < rw.cur || part >= rw.parts {
		return fmt.Errorf("kvio: run %q: partition %d out of order (current %d, parts %d)", rw.name, part, rw.cur, rw.parts)
	}
	if part > rw.cur || !rw.started {
		// Empty segments skipped over start (and end) at the current
		// offset; the current partition, if begun, keeps its offset.
		lo := rw.cur
		if rw.started {
			lo = rw.cur + 1
		}
		for p := lo; p <= part; p++ {
			rw.index.Segments[p].Off = rw.off
		}
		rw.cur = part
		rw.started = true
	}
	before := rw.w.Written()
	if err := rw.w.WriteKV(key, value); err != nil {
		return fmt.Errorf("kvio: run %q: writing record: %w", rw.name, err)
	}
	written := rw.w.Written() - before
	rw.off += written
	rw.index.Segments[part].Len += written
	rw.index.Segments[part].Records++
	return nil
}

// Close flushes and closes the file, returning its index.
func (rw *RunWriter) Close() (RunIndex, error) {
	if !rw.started {
		rw.cur = -1
	}
	for p := rw.cur + 1; p < rw.parts; p++ {
		rw.index.Segments[p].Off = rw.off
	}
	if err := rw.buf.Flush(); err != nil {
		return RunIndex{}, fmt.Errorf("kvio: run %q: flush: %w", rw.name, err)
	}
	if err := rw.file.Close(); err != nil {
		return RunIndex{}, fmt.Errorf("kvio: run %q: close: %w", rw.name, err)
	}
	return rw.index, nil
}

// BytesWritten reports bytes written so far.
func (rw *RunWriter) BytesWritten() int64 { return rw.off }

// Stream is a sequential source of key/value records in sorted key order.
// Next returns io.EOF after the last record; the returned slices are valid
// only until the following Next call.
type Stream interface {
	Next() (key, value []byte, err error)
	Close() error
}

// runReader reads one partition segment of a run file.
type runReader struct {
	rc io.ReadCloser
	r  *serde.Reader
}

// OpenRunPart opens partition part of the run described by idx, in
// whichever on-disk format the run was written with.
func OpenRunPart(disk vdisk.Disk, idx RunIndex, part int) (Stream, error) {
	if part < 0 || part >= len(idx.Segments) {
		return nil, fmt.Errorf("kvio: run %q has no partition %d", idx.Name, part)
	}
	if idx.Compressed {
		return openPrefixRunPart(disk, idx, part)
	}
	seg := idx.Segments[part]
	rc, err := disk.OpenSection(idx.Name, seg.Off, seg.Len)
	if err != nil {
		return nil, fmt.Errorf("kvio: opening run %q part %d: %w", idx.Name, part, err)
	}
	return &runReader{rc: rc, r: serde.NewReader(bufio.NewReaderSize(rc, 64<<10))}, nil
}

func (r *runReader) Next() (key, value []byte, err error) { return r.r.Next() }
func (r *runReader) Close() error                         { return r.rc.Close() }

// SliceStream adapts an in-memory, already-sorted record slice to a Stream.
// Records must all belong to one partition.
type SliceStream struct {
	recs []Record
	pos  int
}

// NewSliceStream returns a Stream over recs.
func NewSliceStream(recs []Record) *SliceStream { return &SliceStream{recs: recs} }

// Next implements Stream.
func (s *SliceStream) Next() (key, value []byte, err error) {
	if s.pos >= len(s.recs) {
		return nil, nil, io.EOF
	}
	r := s.recs[s.pos]
	s.pos++
	return r.Key, r.Value, nil
}

// Close implements Stream.
func (s *SliceStream) Close() error { return nil }

// CombineFunc aggregates all values of one key, emitting zero or more
// records. It matches the user combine() contract: it may be applied any
// number of times to any subset of a key's values.
type CombineFunc func(key []byte, values [][]byte, emit func(key, value []byte) error) error

// MergeInto merges streams and appends every (possibly combined) record to
// out for the given partition. When combine is nil, records pass through
// unmodified (still in sorted order). It returns the number of records
// emitted and the number consumed.
func MergeInto(streams []Stream, part int, out RunSink, combine CombineFunc) (emitted, consumed int64, err error) {
	m, err := NewMerger(streams)
	if err != nil {
		return 0, 0, err
	}
	defer m.Close()

	var vals [][]byte
	for {
		key, ok, err := m.NextGroup()
		if err != nil {
			return emitted, consumed, err
		}
		if !ok {
			return emitted, consumed, nil
		}
		if combine == nil {
			for {
				v, ok, err := m.NextValue()
				if err != nil {
					return emitted, consumed, err
				}
				if !ok {
					break
				}
				consumed++
				emitted++
				if err := out.Append(part, key, v); err != nil {
					return emitted, consumed, err
				}
			}
			continue
		}
		vals = vals[:0]
		for {
			v, ok, err := m.NextValue()
			if err != nil {
				return emitted, consumed, err
			}
			if !ok {
				break
			}
			consumed++
			vals = append(vals, append([]byte(nil), v...))
		}
		if err := combine(key, vals, func(k, v []byte) error {
			emitted++
			return out.Append(part, k, v)
		}); err != nil {
			return emitted, consumed, fmt.Errorf("kvio: combine: %w", err)
		}
	}
}
