package textgen

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"mrtext/internal/core/topk"
	"mrtext/internal/core/zipfest"
)

func TestWordForRankBijective(t *testing.T) {
	seen := map[string]int64{}
	for r := int64(1); r <= 20_000; r++ {
		w := WordForRank(r)
		if prev, dup := seen[w]; dup {
			t.Fatalf("ranks %d and %d both map to %q", prev, r, w)
		}
		seen[w] = r
	}
	// Frequent words are short.
	if len(WordForRank(1)) != 1 || len(WordForRank(26)) != 1 {
		t.Error("ranks 1..26 should be single letters")
	}
	if len(WordForRank(27)) != 2 || len(WordForRank(702)) != 2 {
		t.Error("ranks 27..702 should be two letters")
	}
	if WordForRank(0) != WordForRank(1) {
		t.Error("rank 0 should clamp to 1")
	}
}

func TestWordForRankLowercaseQuick(t *testing.T) {
	f := func(r int64) bool {
		if r < 0 {
			r = -r
		}
		w := WordForRank(r%1_000_000 + 1)
		for _, c := range w {
			if c < 'a' || c > 'z' {
				return false
			}
		}
		return len(w) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorpusDeterministicAndSized(t *testing.T) {
	cfg := CorpusConfig{Vocabulary: 1000, Alpha: 1.0, WordsPerLine: 8, Seed: 5}
	var a, b bytes.Buffer
	na, err := Corpus(&a, cfg, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := Corpus(&b, cfg, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("corpus not deterministic")
	}
	if na < 100_000 || na > 110_000 {
		t.Errorf("size %d far from target", na)
	}
	if int64(a.Len()) != na {
		t.Errorf("reported %d, wrote %d", na, a.Len())
	}
	if a.Bytes()[a.Len()-1] != '\n' {
		t.Error("corpus does not end with newline")
	}
}

func TestCorpusZipfShape(t *testing.T) {
	cfg := CorpusConfig{Vocabulary: 5000, Alpha: 1.0, WordsPerLine: 10, Seed: 6}
	var buf bytes.Buffer
	if _, err := Corpus(&buf, cfg, 2_000_000); err != nil {
		t.Fatal(err)
	}
	exact := topk.NewExact()
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		for _, w := range bytes.Fields(sc.Bytes()) {
			exact.Offer(string(w))
		}
	}
	fit, err := zipfest.EstimateAlpha(exact.RankedCounts())
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha < 0.75 || fit.Alpha > 1.25 {
		t.Errorf("corpus alpha %g, configured 1.0", fit.Alpha)
	}
	// Rank 1 must be the single most common word "a".
	if top := exact.Top(1); top[0].Key != "a" {
		t.Errorf("top word %q", top[0].Key)
	}
}

func TestCorpusValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Corpus(&buf, CorpusConfig{}, 100); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := Corpus(&buf, DefaultCorpus(), 0); err == nil {
		t.Error("zero target accepted")
	}
}

func TestUserVisitsSchema(t *testing.T) {
	cfg := LogConfig{URLs: 100, Alpha: 0.8, Seed: 7}
	var buf bytes.Buffer
	if _, err := UserVisits(&buf, cfg, 50_000); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		f := strings.Split(sc.Text(), "|")
		if len(f) != 7 {
			t.Fatalf("line %d has %d fields: %q", lines, len(f), sc.Text())
		}
		if !strings.HasPrefix(f[1], "example.org/") {
			t.Fatalf("bad URL %q", f[1])
		}
		if cents, err := strconv.ParseInt(f[3], 10, 64); err != nil || cents <= 0 {
			t.Fatalf("bad revenue %q", f[3])
		}
		if len(strings.Split(f[0], ".")) != 4 {
			t.Fatalf("bad IP %q", f[0])
		}
		if len(f[2]) != 10 || f[2][4] != '-' {
			t.Fatalf("bad date %q", f[2])
		}
	}
	if lines < 100 {
		t.Errorf("only %d lines", lines)
	}
}

func TestRankingsOnePerURL(t *testing.T) {
	cfg := LogConfig{URLs: 250, Seed: 8}
	var buf bytes.Buffer
	if _, err := Rankings(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		f := strings.Split(sc.Text(), "|")
		if len(f) != 3 {
			t.Fatalf("bad ranking line %q", sc.Text())
		}
		if seen[f[0]] {
			t.Fatalf("duplicate URL %q", f[0])
		}
		seen[f[0]] = true
		if _, err := strconv.ParseInt(f[1], 10, 64); err != nil {
			t.Fatalf("bad rank %q", f[1])
		}
	}
	if len(seen) != 250 {
		t.Errorf("%d URLs, want 250", len(seen))
	}
}

func TestWebGraphFormat(t *testing.T) {
	cfg := GraphConfig{Pages: 300, Alpha: 1.0, MeanOutDegree: 5, Seed: 9}
	var buf bytes.Buffer
	if _, err := WebGraph(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	pages := map[string]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		f := strings.Split(sc.Text(), "\t")
		if len(f) != 3 {
			t.Fatalf("bad graph line %q", sc.Text())
		}
		if pages[f[0]] {
			t.Fatalf("duplicate page %q", f[0])
		}
		pages[f[0]] = true
		rank, err := strconv.ParseFloat(f[1], 64)
		if err != nil || rank <= 0 {
			t.Fatalf("bad rank %q", f[1])
		}
		links := strings.Split(f[2], ",")
		if len(links) < 1 || len(links) > 2*cfg.MeanOutDegree {
			t.Fatalf("out-degree %d out of range", len(links))
		}
		for _, l := range links {
			if !strings.HasPrefix(l, "page/") {
				t.Fatalf("bad link %q", l)
			}
		}
	}
	if len(pages) != 300 {
		t.Errorf("%d pages, want 300", len(pages))
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	run := func() [3][]byte {
		var v, r, g bytes.Buffer
		UserVisits(&v, LogConfig{URLs: 50, Alpha: 0.8, Seed: 3}, 10_000)
		Rankings(&r, LogConfig{URLs: 50, Seed: 3})
		WebGraph(&g, GraphConfig{Pages: 50, Alpha: 1, MeanOutDegree: 3, Seed: 3})
		return [3][]byte{v.Bytes(), r.Bytes(), g.Bytes()}
	}
	a, b := run(), run()
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("generator %d not deterministic", i)
		}
	}
}

func TestURLPopularityZipf(t *testing.T) {
	// URL frequencies in a large visits log should be clearly skewed:
	// the top URL appears far more often than the median one.
	var buf bytes.Buffer
	if _, err := UserVisits(&buf, LogConfig{URLs: 1000, Alpha: 0.8, Seed: 4}, 2_000_000); err != nil {
		t.Fatal(err)
	}
	counts := topk.NewExact()
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		f := strings.SplitN(sc.Text(), "|", 3)
		counts.Offer(f[1])
	}
	top := counts.Top(1)[0]
	if top.Key != URLForRank(1) {
		t.Errorf("most popular URL %q, want %q", top.Key, URLForRank(1))
	}
	ranked := counts.RankedCounts()
	median := ranked[len(ranked)/2]
	if top.Count < 20*median {
		t.Errorf("top URL %d vs median %d: distribution not skewed", top.Count, median)
	}
}
