// Package textgen generates the three dataset families of §V-A2, replacing
// inputs we cannot ship (the 2008 Wikipedia dump, Pavlo et al.'s generated
// access logs, and their synthetic web crawl) with deterministic synthetic
// equivalents that preserve the one property the paper's optimizations
// exploit: the key-frequency distributions.
//
//   - Corpus: Zipfian text (word frequency ∝ 1/rank^α, Fig. 3) with a
//     natural-looking vocabulary where frequent words are short.
//   - UserVisits + Rankings: the access-log schema of the Pavlo benchmark,
//     with destination URLs drawn Zipf(α=0.8) following Breslau et al., as
//     the paper's modified generator does.
//   - WebGraph: a crawl whose in-link distribution is Zipf(α=1) following
//     Adamic & Huberman, as used for PageRank.
//
// All generators stream to an io.Writer and are fully determined by their
// seed, so every experiment is reproducible byte-for-byte.
package textgen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"mrtext/internal/core/zipfest"
)

// letters used to synthesize words (no vowel/consonant modeling needed; the
// runtime treats words as opaque keys).
const letters = "abcdefghijklmnopqrstuvwxyz"

// WordForRank returns the synthetic vocabulary word of the given 1-based
// frequency rank. Words are unique per rank and, like natural language,
// frequent words are short: the encoding is a bijective base-26 numeral,
// so ranks 1–26 are single letters, 27–702 two letters, and so on.
func WordForRank(rank int64) string {
	if rank < 1 {
		rank = 1
	}
	var buf [16]byte
	i := len(buf)
	n := rank
	for n > 0 {
		n-- // bijective numeration
		i--
		buf[i] = letters[n%26]
		n /= 26
	}
	return string(buf[i:])
}

// CorpusConfig parameterizes the text corpus generator.
type CorpusConfig struct {
	// Vocabulary is the number of distinct words (the paper's corpus has
	// 24.7M over 1.45B tokens; scale proportionally).
	Vocabulary int64
	// Alpha is the Zipf exponent of word frequencies (≈1 for natural text).
	Alpha float64
	// WordsPerLine is the mean line length in words.
	WordsPerLine int
	// Seed makes the corpus deterministic.
	Seed int64
}

// DefaultCorpus is a laptop-scale stand-in for the Wikipedia dump.
func DefaultCorpus() CorpusConfig {
	return CorpusConfig{Vocabulary: 200_000, Alpha: 1.0, WordsPerLine: 10, Seed: 1}
}

// Corpus writes approximately targetBytes of Zipfian text to w and returns
// the exact byte count written.
func Corpus(w io.Writer, cfg CorpusConfig, targetBytes int64) (int64, error) {
	if cfg.Vocabulary <= 0 || cfg.WordsPerLine <= 0 || targetBytes <= 0 {
		return 0, fmt.Errorf("textgen: invalid corpus config %+v / target %d", cfg, targetBytes)
	}
	sampler, err := zipfest.NewSampler(cfg.Vocabulary, cfg.Alpha)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bw := bufio.NewWriterSize(w, 64<<10)
	var written int64
	for written < targetBytes {
		words := cfg.WordsPerLine/2 + rng.Intn(cfg.WordsPerLine)
		if words < 1 {
			words = 1
		}
		for i := 0; i < words; i++ {
			word := WordForRank(sampler.Rank(rng.Float64()))
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return written, err
				}
				written++
			}
			n, err := bw.WriteString(word)
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return written, err
		}
		written++
	}
	return written, bw.Flush()
}

// LogConfig parameterizes the access-log generators.
type LogConfig struct {
	// URLs is the number of distinct destination URLs (paper: ~600k).
	URLs int64
	// Alpha is the Zipf exponent of URL popularity (paper: 0.8).
	Alpha float64
	// Seed makes the log deterministic.
	Seed int64
}

// DefaultLog is a laptop-scale stand-in for the Pavlo UserVisits data.
func DefaultLog() LogConfig {
	return LogConfig{URLs: 60_000, Alpha: 0.8, Seed: 2}
}

// URLForRank returns the synthetic URL of the given popularity rank.
func URLForRank(rank int64) string {
	return "example.org/" + WordForRank(rank) + ".html"
}

// UserVisits writes approximately targetBytes of visit records to w:
//
//	sourceIP|destURL|visitDate|adRevenueCents|userAgent|countryCode|duration
//
// (the Pavlo schema trimmed to the columns the benchmark queries touch,
// with ad revenue in integer cents so aggregation is exact).
func UserVisits(w io.Writer, cfg LogConfig, targetBytes int64) (int64, error) {
	if cfg.URLs <= 0 || targetBytes <= 0 {
		return 0, fmt.Errorf("textgen: invalid log config %+v / target %d", cfg, targetBytes)
	}
	sampler, err := zipfest.NewSampler(cfg.URLs, cfg.Alpha)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bw := bufio.NewWriterSize(w, 64<<10)
	agents := []string{"Mozilla/5.0", "Chrome/34.0", "Safari/7.0", "Opera/12.1", "curl/7.30"}
	countries := []string{"USA", "DEU", "JPN", "BRA", "IND", "GBR", "FRA", "CHN"}
	var written int64
	line := make([]byte, 0, 160)
	for written < targetBytes {
		line = line[:0]
		line = appendIP(line, rng)
		line = append(line, '|')
		line = append(line, URLForRank(sampler.Rank(rng.Float64()))...)
		line = append(line, '|')
		line = appendDate(line, rng)
		line = append(line, '|')
		line = strconv.AppendInt(line, 1+rng.Int63n(99_999), 10) // cents
		line = append(line, '|')
		line = append(line, agents[rng.Intn(len(agents))]...)
		line = append(line, '|')
		line = append(line, countries[rng.Intn(len(countries))]...)
		line = append(line, '|')
		line = strconv.AppendInt(line, 1+rng.Int63n(9_999), 10) // duration
		line = append(line, '\n')
		n, err := bw.Write(line)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// Rankings writes one ranking record per URL to w:
//
//	pageURL|pageRank|avgDuration
func Rankings(w io.Writer, cfg LogConfig) (int64, error) {
	if cfg.URLs <= 0 {
		return 0, fmt.Errorf("textgen: invalid log config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	bw := bufio.NewWriterSize(w, 64<<10)
	var written int64
	line := make([]byte, 0, 96)
	for i := int64(1); i <= cfg.URLs; i++ {
		line = line[:0]
		line = append(line, URLForRank(i)...)
		line = append(line, '|')
		line = strconv.AppendInt(line, 1+rng.Int63n(10_000), 10)
		line = append(line, '|')
		line = strconv.AppendInt(line, 1+rng.Int63n(300), 10)
		line = append(line, '\n')
		n, err := bw.Write(line)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// GraphConfig parameterizes the web-crawl generator.
type GraphConfig struct {
	// Pages is the number of pages (paper: 10M; scale proportionally).
	Pages int64
	// Alpha is the Zipf exponent of in-link popularity (paper: 1.0).
	Alpha float64
	// MeanOutDegree is the average number of outgoing links per page.
	MeanOutDegree int
	// Seed makes the graph deterministic.
	Seed int64
}

// DefaultGraph is a laptop-scale stand-in for the synthetic crawl.
func DefaultGraph() GraphConfig {
	return GraphConfig{Pages: 100_000, Alpha: 1.0, MeanOutDegree: 8, Seed: 3}
}

// PageURL returns the synthetic URL of page i (0-based).
func PageURL(i int64) string {
	return "page/" + WordForRank(i+1)
}

// WebGraph writes the crawl to w, one page per line:
//
//	url<TAB>rank<TAB>out1,out2,...
//
// Every page appears exactly once with initial rank 1/Pages; link targets
// are drawn Zipf(Alpha) so in-degrees are Zipfian. It returns the bytes
// written.
func WebGraph(w io.Writer, cfg GraphConfig) (int64, error) {
	if cfg.Pages <= 0 || cfg.MeanOutDegree <= 0 {
		return 0, fmt.Errorf("textgen: invalid graph config %+v", cfg)
	}
	sampler, err := zipfest.NewSampler(cfg.Pages, cfg.Alpha)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bw := bufio.NewWriterSize(w, 64<<10)
	initial := 1.0 / float64(cfg.Pages)
	var written int64
	line := make([]byte, 0, 256)
	for i := int64(0); i < cfg.Pages; i++ {
		line = line[:0]
		line = append(line, PageURL(i)...)
		line = append(line, '\t')
		line = strconv.AppendFloat(line, initial, 'g', 12, 64)
		line = append(line, '\t')
		deg := 1 + rng.Intn(2*cfg.MeanOutDegree-1)
		for d := 0; d < deg; d++ {
			if d > 0 {
				line = append(line, ',')
			}
			target := sampler.Rank(rng.Float64()) - 1
			line = append(line, PageURL(target)...)
		}
		line = append(line, '\n')
		n, err := bw.Write(line)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

func appendIP(dst []byte, rng *rand.Rand) []byte {
	for i := 0; i < 4; i++ {
		if i > 0 {
			dst = append(dst, '.')
		}
		dst = strconv.AppendInt(dst, rng.Int63n(256), 10)
	}
	return dst
}

func appendDate(dst []byte, rng *rand.Rand) []byte {
	y := 2008 + rng.Intn(6)
	m := 1 + rng.Intn(12)
	d := 1 + rng.Intn(28)
	return append(dst, fmt.Sprintf("%04d-%02d-%02d", y, m, d)...)
}
