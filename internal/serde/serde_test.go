package serde

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAppendDecodeKVRoundTrip(t *testing.T) {
	cases := []struct{ k, v []byte }{
		{[]byte("key"), []byte("value")},
		{[]byte{}, []byte{}},
		{[]byte("k"), []byte{}},
		{[]byte{}, []byte("v")},
		{bytes.Repeat([]byte("x"), 1000), bytes.Repeat([]byte("y"), 5000)},
	}
	for _, c := range cases {
		buf := AppendKV(nil, c.k, c.v)
		if len(buf) != KVLen(len(c.k), len(c.v)) {
			t.Errorf("KVLen(%d,%d)=%d, encoded %d", len(c.k), len(c.v), KVLen(len(c.k), len(c.v)), len(buf))
		}
		k, v, n, err := DecodeKV(buf)
		if err != nil {
			t.Fatalf("DecodeKV: %v", err)
		}
		if n != len(buf) || !bytes.Equal(k, c.k) || !bytes.Equal(v, c.v) {
			t.Errorf("round trip mismatch for %q/%q", c.k, c.v)
		}
	}
}

func TestKVRoundTripQuick(t *testing.T) {
	f := func(k, v []byte) bool {
		buf := AppendKV(nil, k, v)
		gk, gv, n, err := DecodeKV(buf)
		return err == nil && n == len(buf) && bytes.Equal(gk, k) && bytes.Equal(gv, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeKVCorrupt(t *testing.T) {
	// Truncations of a valid frame must error, never panic.
	full := AppendKV(nil, []byte("somekey"), []byte("somevalue"))
	for i := 0; i < len(full); i++ {
		if _, _, _, err := DecodeKV(full[:i]); err == nil {
			t.Errorf("truncation at %d decoded successfully", i)
		}
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 1000
	for i := 0; i < n; i++ {
		k := []byte{byte(i), byte(i >> 8)}
		v := bytes.Repeat([]byte{byte(i)}, i%7)
		if err := w.WriteKV(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if w.Written() != int64(buf.Len()) {
		t.Errorf("Written()=%d, buffer has %d", w.Written(), buf.Len())
	}
	r := NewReader(&buf)
	for i := 0; i < n; i++ {
		k, v, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if k[0] != byte(i) || len(v) != i%7 {
			t.Fatalf("record %d corrupted", i)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Errorf("expected io.EOF at end, got %v", err)
	}
}

func TestReaderTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteKV([]byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := 1; i < len(data); i++ {
		r := NewReader(bytes.NewReader(data[:i]))
		if _, _, err := r.Next(); err == nil {
			t.Errorf("truncated stream at %d succeeded", i)
		}
	}
}

func TestInt64RoundTrip(t *testing.T) {
	f := func(v int64) bool {
		got, err := DecodeInt64(EncodeInt64(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64} {
		got, err := DecodeInt64(EncodeInt64(v))
		if err != nil || got != v {
			t.Errorf("int64 %d: got %d err %v", v, got, err)
		}
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -3.25, math.Pi, math.MaxFloat64, math.SmallestNonzeroFloat64} {
		got, err := DecodeFloat64(EncodeFloat64(v))
		if err != nil || got != v {
			t.Errorf("float64 %g: got %g err %v", v, got, err)
		}
	}
	if _, err := DecodeFloat64([]byte{1, 2, 3}); err == nil {
		t.Error("short float decoded")
	}
}

func TestCounterVecRoundTrip(t *testing.T) {
	f := func(counts []uint32) bool {
		got, err := DecodeCounterVec(nil, EncodeCounterVec(counts))
		if err != nil {
			return false
		}
		if len(counts) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, counts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddCounterVecs(t *testing.T) {
	got := AddCounterVecs([]uint32{1, 2}, []uint32{10, 20, 30})
	want := []uint32{11, 22, 30}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
	got = AddCounterVecs(nil, []uint32{5})
	if !reflect.DeepEqual(got, []uint32{5}) {
		t.Errorf("nil dst: got %v", got)
	}
}

func TestPostingsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(50)
		ps := make([]Posting, n)
		var doc uint64
		for i := range ps {
			doc += uint64(rng.Intn(5)) // non-decreasing docs (delta encoding contract)
			ps[i] = Posting{Doc: doc, Off: uint64(rng.Intn(1 << 20))}
		}
		got, err := DecodePostings(nil, EncodePostings(ps))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ps) {
			t.Fatalf("len %d want %d", len(got), len(ps))
		}
		for i := range ps {
			if got[i] != ps[i] {
				t.Fatalf("posting %d: got %v want %v", i, got[i], ps[i])
			}
		}
	}
}

func TestMergePostings(t *testing.T) {
	a := EncodePostings([]Posting{{Doc: 1, Off: 5}, {Doc: 3, Off: 1}})
	b := EncodePostings([]Posting{{Doc: 2, Off: 9}, {Doc: 3, Off: 0}})
	merged, err := MergePostings(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePostings(nil, merged)
	if err != nil {
		t.Fatal(err)
	}
	want := []Posting{{1, 5}, {2, 9}, {3, 0}, {3, 1}}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("posting %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestRankRecordRoundTrip(t *testing.T) {
	cases := []RankRecord{
		{},
		{Rank: 0.125},
		{Rank: 1e-9, Graph: true},
		{Graph: true, Outlinks: []string{"a", "bb", "ccc"}},
		{Rank: 42, Graph: true, Outlinks: []string{""}},
	}
	for _, want := range cases {
		got, err := DecodeRankRecord(EncodeRankRecord(want))
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if got.Rank != want.Rank || got.Graph != want.Graph || len(got.Outlinks) != len(want.Outlinks) {
			t.Fatalf("got %+v want %+v", got, want)
		}
		for i := range want.Outlinks {
			if got.Outlinks[i] != want.Outlinks[i] {
				t.Fatalf("outlink %d: got %q want %q", i, got.Outlinks[i], want.Outlinks[i])
			}
		}
	}
	if _, err := DecodeRankRecord([]byte{1, 2}); err == nil {
		t.Error("short rank record decoded")
	}
}

// TestAppendRankRecordMatchesEncode: the zero-alloc byte-slice encoder
// must be byte-identical to EncodeRankRecord on the equivalent record, so
// the map-side rewrite cannot change intermediate (and thus job) bytes.
func TestAppendRankRecordMatchesEncode(t *testing.T) {
	cases := []RankRecord{
		{},
		{Rank: 0.125},
		{Rank: 1e-9, Graph: true},
		{Graph: true, Outlinks: []string{"a", "bb", "ccc"}},
		{Rank: 42, Graph: true, Outlinks: []string{""}},
		{Rank: -3.5, Outlinks: []string{"page/x", "page/y"}},
	}
	for _, r := range cases {
		var links [][]byte
		for _, l := range r.Outlinks {
			links = append(links, []byte(l))
		}
		got := AppendRankRecord(nil, r.Rank, r.Graph, links)
		want := EncodeRankRecord(r)
		if !bytes.Equal(got, want) {
			t.Errorf("%+v: append %x, encode %x", r, got, want)
		}
	}
	// Appending to existing bytes preserves the prefix.
	pre := []byte("prefix")
	out := AppendRankRecord(pre, 1, false, nil)
	if !bytes.HasPrefix(out, pre) {
		t.Error("prefix clobbered")
	}
}

func TestUvarintLen(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 1 << 14, 1<<14 - 1, 1 << 60, math.MaxUint64} {
		var buf [10]byte
		n := len(appendUvarint(buf[:0], v))
		if UvarintLen(v) != n {
			t.Errorf("UvarintLen(%d)=%d, want %d", v, UvarintLen(v), n)
		}
	}
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}
