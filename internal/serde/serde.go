// Package serde implements the serialization substrate of the runtime: the
// framed key/value record format used in spill runs, map-output segments and
// shuffle transfers, plus the typed value codecs the benchmark applications
// use (counts, counter vectors, posting lists, rank records).
//
// The paper counts serialization and deserialization as part of the
// MapReduce abstraction cost (they happen inside the emit, sort-merge and
// shuffle operations), so this package is deliberately an explicit,
// byte-level codec layer rather than reflection-based encoding: every pass
// over intermediate data really pays an encode or decode, just as Hadoop's
// Writable layer does.
package serde

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Frame errors.
var (
	// ErrCorrupt reports a malformed framed record.
	ErrCorrupt = errors.New("serde: corrupt record frame")
	// ErrTooLarge reports a frame whose declared length is implausible.
	ErrTooLarge = errors.New("serde: record frame too large")
)

// MaxFrameLen bounds a single key or value length; it protects readers
// against corrupt length prefixes.
const MaxFrameLen = 1 << 30

// AppendKV appends the framed encoding of (key, value) to dst and returns
// the extended slice. The frame is: uvarint(len(key)) uvarint(len(value))
// key value.
func AppendKV(dst, key, value []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = binary.AppendUvarint(dst, uint64(len(value)))
	dst = append(dst, key...)
	dst = append(dst, value...)
	return dst
}

// KVLen returns the encoded size of a frame holding a key of klen bytes and
// a value of vlen bytes.
func KVLen(klen, vlen int) int {
	return UvarintLen(uint64(klen)) + UvarintLen(uint64(vlen)) + klen + vlen
}

// UvarintLen returns the number of bytes binary.AppendUvarint uses for v.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DecodeKV decodes one framed record from the front of buf. It returns the
// key and value as sub-slices of buf (no copy) and the total frame size.
func DecodeKV(buf []byte) (key, value []byte, n int, err error) {
	klen, k := binary.Uvarint(buf)
	if k <= 0 || klen > MaxFrameLen {
		return nil, nil, 0, ErrCorrupt
	}
	vlen, v := binary.Uvarint(buf[k:])
	if v <= 0 || vlen > MaxFrameLen {
		return nil, nil, 0, ErrCorrupt
	}
	head := k + v
	need := head + int(klen) + int(vlen)
	if len(buf) < need {
		return nil, nil, 0, ErrCorrupt
	}
	key = buf[head : head+int(klen)]
	value = buf[head+int(klen) : need]
	return key, value, need, nil
}

// Writer writes framed records to an io.Writer, tracking bytes written.
type Writer struct {
	w       io.Writer
	scratch []byte
	written int64
}

// NewWriter returns a Writer emitting frames to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, scratch: make([]byte, 0, 4096)}
}

// WriteKV writes one framed record.
func (w *Writer) WriteKV(key, value []byte) error {
	w.scratch = AppendKV(w.scratch[:0], key, value)
	n, err := w.w.Write(w.scratch)
	w.written += int64(n)
	return err
}

// Written reports the total bytes written so far.
func (w *Writer) Written() int64 { return w.written }

// Reader reads framed records from an io.Reader. The slices it returns are
// valid until the next Next call.
type Reader struct {
	r    *countingByteReader
	key  []byte
	val  []byte
	read int64
}

// NewReader returns a Reader consuming frames from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: newCountingByteReader(r)}
}

// Next reads the next record. It returns io.EOF cleanly at end of stream and
// ErrCorrupt/ErrTooLarge on malformed input.
func (r *Reader) Next() (key, value []byte, err error) {
	klen, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return nil, nil, io.EOF
		}
		return nil, nil, fmt.Errorf("serde: reading key length: %w", err)
	}
	vlen, err := binary.ReadUvarint(r.r)
	if err != nil {
		return nil, nil, fmt.Errorf("serde: reading value length: %w", unexpectEOF(err))
	}
	if klen > MaxFrameLen || vlen > MaxFrameLen {
		return nil, nil, ErrTooLarge
	}
	r.key = grow(r.key, int(klen))
	if _, err := io.ReadFull(r.r, r.key); err != nil {
		return nil, nil, fmt.Errorf("serde: reading key: %w", unexpectEOF(err))
	}
	r.val = grow(r.val, int(vlen))
	if _, err := io.ReadFull(r.r, r.val); err != nil {
		return nil, nil, fmt.Errorf("serde: reading value: %w", unexpectEOF(err))
	}
	return r.key, r.val, nil
}

// BytesRead reports total bytes consumed from the underlying reader.
func (r *Reader) BytesRead() int64 { return r.r.n }

func unexpectEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// countingByteReader adapts an io.Reader to io.ByteReader with buffering-free
// single-byte reads for the varint decoder while still supporting bulk reads.
type countingByteReader struct {
	r   io.Reader
	one [1]byte
	n   int64
}

func newCountingByteReader(r io.Reader) *countingByteReader {
	return &countingByteReader{r: r}
}

func (c *countingByteReader) ReadByte() (byte, error) {
	if br, ok := c.r.(io.ByteReader); ok {
		b, err := br.ReadByte()
		if err == nil {
			c.n++
		}
		return b, err
	}
	n, err := c.r.Read(c.one[:])
	c.n += int64(n)
	if n == 1 {
		return c.one[0], nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return 0, err
}

func (c *countingByteReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ---------- Typed value codecs ----------

// EncodeInt64 encodes v as a zig-zag varint.
func EncodeInt64(v int64) []byte {
	return binary.AppendVarint(nil, v)
}

// AppendInt64 appends the zig-zag varint encoding of v to dst.
func AppendInt64(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// DecodeInt64 decodes a zig-zag varint value.
func DecodeInt64(b []byte) (int64, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, ErrCorrupt
	}
	return v, nil
}

// EncodeFloat64 encodes v as 8 little-endian bytes of its IEEE-754 bits.
func EncodeFloat64(v float64) []byte {
	return binary.LittleEndian.AppendUint64(nil, math.Float64bits(v))
}

// DecodeFloat64 decodes an EncodeFloat64 value.
func DecodeFloat64(b []byte) (float64, error) {
	if len(b) < 8 {
		return 0, ErrCorrupt
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

// EncodeCounterVec encodes a dense vector of small counters (the WordPOSTag
// intermediate value: one counter per part-of-speech tag).
func EncodeCounterVec(counts []uint32) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(counts)))
	for _, c := range counts {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	return dst
}

// DecodeCounterVec decodes an EncodeCounterVec value, appending into dst
// (which may be nil) to allow reuse.
func DecodeCounterVec(dst []uint32, b []byte) ([]uint32, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > MaxFrameLen {
		return nil, ErrCorrupt
	}
	b = b[k:]
	if cap(dst) < int(n) {
		dst = make([]uint32, n)
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		v, k := binary.Uvarint(b)
		if k <= 0 || v > math.MaxUint32 {
			return nil, ErrCorrupt
		}
		dst[i] = uint32(v)
		b = b[k:]
	}
	return dst, nil
}

// AddCounterVecs adds src into dst element-wise, growing dst as needed, and
// returns dst. It is the combine operation for counter vectors.
func AddCounterVecs(dst, src []uint32) []uint32 {
	if len(src) > len(dst) {
		grown := make([]uint32, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// Posting is one occurrence of a word in the corpus: the document (split)
// that contains it and the byte offset of the line it appeared on.
type Posting struct {
	Doc uint64
	Off uint64
}

// EncodePostings encodes a posting list. Postings are stored in order with
// delta-encoded documents, matching how a real inverted-index value grows
// sublinearly in combine().
func EncodePostings(ps []Posting) []byte {
	return AppendPostings(nil, ps)
}

// AppendPostings appends the encoding of ps to dst.
func AppendPostings(dst []byte, ps []Posting) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ps)))
	var prevDoc uint64
	for _, p := range ps {
		dst = binary.AppendUvarint(dst, p.Doc-prevDoc)
		dst = binary.AppendUvarint(dst, p.Off)
		prevDoc = p.Doc
	}
	return dst
}

// DecodePostings decodes an EncodePostings value, appending to dst.
func DecodePostings(dst []Posting, b []byte) ([]Posting, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > MaxFrameLen {
		return nil, ErrCorrupt
	}
	b = b[k:]
	var prevDoc uint64
	for i := uint64(0); i < n; i++ {
		dd, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, ErrCorrupt
		}
		b = b[k:]
		off, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, ErrCorrupt
		}
		b = b[k:]
		prevDoc += dd
		dst = append(dst, Posting{Doc: prevDoc, Off: off})
	}
	return dst, nil
}

// MergePostings merges two encoded posting lists into one encoded list,
// keeping document order. It is the combine operation for InvertedIndex.
func MergePostings(a, b []byte) ([]byte, error) {
	pa, err := DecodePostings(nil, a)
	if err != nil {
		return nil, err
	}
	pb, err := DecodePostings(nil, b)
	if err != nil {
		return nil, err
	}
	merged := make([]Posting, 0, len(pa)+len(pb))
	i, j := 0, 0
	for i < len(pa) && j < len(pb) {
		if pa[i].Doc < pb[j].Doc || (pa[i].Doc == pb[j].Doc && pa[i].Off <= pb[j].Off) {
			merged = append(merged, pa[i])
			i++
		} else {
			merged = append(merged, pb[j])
			j++
		}
	}
	merged = append(merged, pa[i:]...)
	merged = append(merged, pb[j:]...)
	return EncodePostings(merged), nil
}

// RankRecord is the PageRank intermediate/input value: a node's current rank
// plus its outgoing links. A pure contribution (from map() fan-out) has
// Outlinks nil and Graph false; the graph-reconstruction record has rank 0
// and Graph true.
type RankRecord struct {
	Rank     float64
	Graph    bool
	Outlinks []string
}

// EncodeRankRecord encodes r.
func EncodeRankRecord(r RankRecord) []byte {
	dst := binary.LittleEndian.AppendUint64(nil, math.Float64bits(r.Rank))
	if r.Graph {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.Outlinks)))
	for _, l := range r.Outlinks {
		dst = binary.AppendUvarint(dst, uint64(len(l)))
		dst = append(dst, l...)
	}
	return dst
}

// AppendRankRecord appends the rank-record encoding to dst with the
// outlinks as byte slices — the allocation-free encoder for map-side hot
// paths, where the links are subslices of the input line rather than
// strings. The bytes produced are identical to EncodeRankRecord on the
// equivalent RankRecord.
//
//mrlint:hotpath
func AppendRankRecord(dst []byte, rank float64, graph bool, outlinks [][]byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rank))
	if graph {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(outlinks)))
	for _, l := range outlinks {
		dst = binary.AppendUvarint(dst, uint64(len(l)))
		dst = append(dst, l...)
	}
	return dst
}

// DecodeRankRecord decodes an EncodeRankRecord value.
func DecodeRankRecord(b []byte) (RankRecord, error) {
	var r RankRecord
	if len(b) < 9 {
		return r, ErrCorrupt
	}
	r.Rank = math.Float64frombits(binary.LittleEndian.Uint64(b))
	r.Graph = b[8] == 1
	b = b[9:]
	n, k := binary.Uvarint(b)
	if k <= 0 || n > MaxFrameLen {
		return r, ErrCorrupt
	}
	b = b[k:]
	if n > 0 {
		r.Outlinks = make([]string, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		l, k := binary.Uvarint(b)
		if k <= 0 || uint64(len(b)-k) < l {
			return r, ErrCorrupt
		}
		r.Outlinks = append(r.Outlinks, string(b[k:k+int(l)]))
		b = b[k+int(l):]
	}
	return r, nil
}
