package serde

import (
	"bytes"
	"fmt"
	"testing"
)

func BenchmarkAppendKV(b *testing.B) {
	key := []byte("benchmark-key")
	val := []byte("benchmark-value-0123456789")
	var dst []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = AppendKV(dst[:0], key, val)
	}
	b.SetBytes(int64(len(dst)))
}

func BenchmarkDecodeKV(b *testing.B) {
	frame := AppendKV(nil, []byte("benchmark-key"), []byte("benchmark-value-0123456789"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodeKV(frame); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(frame)))
}

func BenchmarkReaderThroughput(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10_000; i++ {
		w.WriteKV([]byte(fmt.Sprintf("key%06d", i)), []byte("value"))
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(data))
		for {
			_, _, err := r.Next()
			if err != nil {
				break
			}
		}
	}
	b.SetBytes(int64(len(data)))
}

func BenchmarkPostingsCodec(b *testing.B) {
	ps := make([]Posting, 256)
	for i := range ps {
		ps[i] = Posting{Doc: uint64(i / 4), Off: uint64(i * 37)}
	}
	enc := EncodePostings(ps)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EncodePostings(ps)
		}
	})
	b.Run("decode", func(b *testing.B) {
		var dst []Posting
		for i := 0; i < b.N; i++ {
			var err error
			dst, err = DecodePostings(dst[:0], enc)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCounterVecCodec(b *testing.B) {
	vec := make([]uint32, 12)
	for i := range vec {
		vec[i] = uint32(i * 100)
	}
	enc := EncodeCounterVec(vec)
	for i := 0; i < b.N; i++ {
		got, err := DecodeCounterVec(nil, enc)
		if err != nil {
			b.Fatal(err)
		}
		_ = AddCounterVecs(got, vec)
	}
}
