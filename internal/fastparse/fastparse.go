// Package fastparse implements the byte-level parsing kernels of the
// ingest fast path: integer, float and field parsing directly over []byte
// subslices of the split reader's arena, with no intermediate strings and
// no per-record heap allocation — the 1BRC idiom applied to the
// record-read → tokenize → emit pipeline.
//
// The strconv round-trip the runtime's parsers used to pay
// (`strconv.ParseInt(string(f[3]), 10, 64)`) costs one string copy per
// record before parsing even starts; the paper counts exactly this kind of
// per-record conversion as MapReduce abstraction cost. Every kernel here
// is verified against its strconv/bytes counterpart by property and fuzz
// tests: same accept/reject decisions and bit-identical values on the
// supported grammar, so swapping a parser cannot change job output.
//
// Grammar note: ParseFloat accepts the plain decimal subset
// [+-]?digits[.digits][(e|E)[+-]?digits] — the only float syntax the
// runtime's generators emit. Inputs outside the subset (inf, NaN, hex
// floats, underscores, leading dots) are rejected even when strconv would
// accept them; inputs inside it parse to the exact bits strconv produces.
package fastparse

import (
	"bytes"
	"errors"
	"math"
	"math/bits"
	"strconv"
	"unicode/utf8"
)

// ErrSyntax reports input outside the supported grammar.
var ErrSyntax = errors.New("fastparse: invalid syntax")

// ErrRange reports a value that does not fit the result type.
var ErrRange = errors.New("fastparse: value out of range")

// ParseUint parses b as a base-10 uint64, exactly like
// strconv.ParseUint(string(b), 10, 64): digits only, no sign, no
// underscores. On overflow it returns math.MaxUint64 and ErrRange.
//
//mrlint:hotpath
func ParseUint(b []byte) (uint64, error) {
	if len(b) == 0 {
		return 0, ErrSyntax
	}
	const cutoff = math.MaxUint64/10 + 1
	var n uint64
	for _, c := range b {
		d := c - '0'
		if d > 9 {
			return 0, ErrSyntax
		}
		if n >= cutoff {
			return math.MaxUint64, ErrRange
		}
		n *= 10
		n1 := n + uint64(d)
		if n1 < n {
			return math.MaxUint64, ErrRange
		}
		n = n1
	}
	return n, nil
}

// ParseInt parses b as a base-10 int64, exactly like
// strconv.ParseInt(string(b), 10, 64): an optional leading sign followed
// by digits. On overflow it returns the clamped extreme and ErrRange.
//
//mrlint:hotpath
func ParseInt(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, ErrSyntax
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
	}
	un, err := ParseUint(b)
	if err == ErrRange {
		if neg {
			return math.MinInt64, ErrRange
		}
		return math.MaxInt64, ErrRange
	}
	if err != nil {
		return 0, err
	}
	if neg {
		if un > 1<<63 {
			return math.MinInt64, ErrRange
		}
		return -int64(un), nil
	}
	if un > 1<<63-1 {
		return math.MaxInt64, ErrRange
	}
	return int64(un), nil
}

// pow10 holds the exactly-representable powers of ten: 10^0 .. 10^22 all
// have mantissas below 2^53, so multiplying or dividing by one is a single
// correctly-rounded operation (Clinger's fast path).
var pow10 = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// ParseFloat parses b as a float64 over the plain decimal subset
// [+-]?digits[.digits][(e|E)[+-]?digits], producing bit-identical results
// to strconv.ParseFloat on every accepted input. Mantissas up to 19
// significant digits with decimal exponents in [-22, 22] take the exact
// single-operation fast path; anything longer falls back to strconv for
// correct rounding (a cold path on generated data, which never exceeds 17
// significant digits).
//
//mrlint:hotpath
func ParseFloat(b []byte) (float64, error) {
	if len(b) == 0 {
		return 0, ErrSyntax
	}
	orig := b
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
	}
	// Mantissa: integer digits, then optional '.' + fraction digits. The
	// subset grammar requires at least one integer digit (".5" rejected).
	var mant uint64
	digits, truncated := 0, false
	intDigits := 0
	for ; intDigits < len(b); intDigits++ {
		d := b[intDigits] - '0'
		if d > 9 {
			break
		}
		if digits < 19 {
			mant = mant*10 + uint64(d)
			if mant > 0 {
				digits++
			}
		} else {
			truncated = true
		}
	}
	if intDigits == 0 {
		return 0, ErrSyntax
	}
	exp10 := 0
	b = b[intDigits:]
	if len(b) > 0 && b[0] == '.' {
		b = b[1:]
		fracDigits := 0
		for ; fracDigits < len(b); fracDigits++ {
			d := b[fracDigits] - '0'
			if d > 9 {
				break
			}
			if digits < 19 && !truncated {
				mant = mant*10 + uint64(d)
				exp10--
				if mant > 0 {
					digits++
				}
			} else {
				truncated = true
			}
		}
		if fracDigits == 0 {
			return 0, ErrSyntax
		}
		b = b[fracDigits:]
	}
	if len(b) > 0 && (b[0] == 'e' || b[0] == 'E') {
		b = b[1:]
		eneg := false
		if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
			eneg = b[0] == '-'
			b = b[1:]
		}
		if len(b) == 0 {
			return 0, ErrSyntax
		}
		e := 0
		for _, c := range b {
			d := c - '0'
			if d > 9 {
				return 0, ErrSyntax
			}
			if e < 10000 {
				e = e*10 + int(d)
			}
		}
		if eneg {
			e = -e
		}
		exp10 += e
		b = nil
	}
	if len(b) != 0 {
		return 0, ErrSyntax
	}

	// A zero mantissa is ±0 regardless of exponent (matching strconv,
	// which never range-errors a zero value).
	if !truncated && mant == 0 {
		f := 0.0
		if neg {
			f = -f
		}
		return f, nil
	}
	// Exact fast path: mantissa fits in 2^53 and the scaling power of ten
	// is itself exact, so one multiply or divide is correctly rounded.
	if !truncated && mant < 1<<53 {
		f := float64(mant)
		switch {
		case exp10 == 0:
			// exact
		case exp10 > 0 && exp10 <= 22:
			f *= pow10[exp10]
		case exp10 < 0 && exp10 >= -22:
			f /= pow10[-exp10]
		default:
			return parseFloatSlow(orig)
		}
		if neg {
			f = -f
		}
		if math.IsInf(f, 0) {
			return f, ErrRange
		}
		return f, nil
	}
	return parseFloatSlow(orig)
}

// parseFloatSlow is the correctness fallback for mantissas or exponents
// outside the exact fast path: delegate to strconv, which is correctly
// rounded for arbitrary inputs. The grammar was already validated, so
// strconv can only fail with ErrRange.
func parseFloatSlow(b []byte) (float64, error) {
	//mrlint:ignore alloccheck cold path: only >19-significant-digit or |exp|>22 inputs reach the strconv fallback, and the generated corpora never do
	f, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return f, ErrRange
	}
	return f, nil
}

// SplitByte appends the sep-separated fields of line to dst and returns
// the extended slice: the zero-copy equivalent of
// bytes.Split(line, []byte{sep}), with the fields aliasing line and the
// field headers reusing dst's capacity. Callers pass a scratch slice
// resliced to [:0] to stay allocation-free across records.
//
//mrlint:hotpath
func SplitByte(dst [][]byte, line []byte, sep byte) [][]byte {
	const lo, hi = 0x0101010101010101, 0x8080808080808080
	sepx := uint64(sep) * lo
	start, i := 0, 0
	// SWAR scan, 8 bytes per step: XOR with the repeated separator turns
	// separator bytes into zero bytes, the zero-byte trick flags them, and
	// set bits are walked in order. The borrow cascade can flag a byte
	// adjacent to a real separator, so every flagged byte is re-checked —
	// false positives cost one compare, false negatives cannot happen.
	// Fields this short would pay bytes.IndexByte's call overhead per
	// field; the in-line scan costs one load per 8 bytes instead.
	for i+8 <= len(line) {
		v := uint64(line[i]) | uint64(line[i+1])<<8 | uint64(line[i+2])<<16 | uint64(line[i+3])<<24 |
			uint64(line[i+4])<<32 | uint64(line[i+5])<<40 | uint64(line[i+6])<<48 | uint64(line[i+7])<<56
		v ^= sepx
		m := (v - lo) & ^v & hi
		for m != 0 {
			k := i + bits.TrailingZeros64(m)>>3
			if line[k] == sep {
				dst = append(dst, line[start:k])
				start = k + 1
			}
			m &= m - 1
		}
		i += 8
	}
	for ; i < len(line); i++ {
		if line[i] == sep {
			dst = append(dst, line[start:i])
			start = i + 1
		}
	}
	return append(dst, line[start:])
}

// Byte classes for the Fields scan. Word bytes (the overwhelming majority
// on text input) classify to 0, so the hot loop is one table load and one
// taken-on-boundary branch per byte.
const (
	classSpace    = 1 // the six ASCII bytes unicode.IsSpace reports true for
	classNonASCII = 2 // ≥ 0x80: delegate to bytes.Fields for Unicode spaces
)

// fieldClass classifies every byte for Fields in a single lookup; the
// space class is exactly the ASCII bytes unicode.IsSpace reports true for.
var fieldClass = func() (t [256]uint8) {
	for _, c := range []byte{'\t', '\n', '\v', '\f', '\r', ' '} {
		t[c] = classSpace
	}
	for c := utf8.RuneSelf; c < 256; c++ {
		t[c] = classNonASCII
	}
	return
}()

// Fields appends the whitespace-separated fields of line to dst and
// returns the extended slice: the zero-copy equivalent of
// bytes.Fields(line). ASCII lines (everything the corpus generators emit)
// take the table-driven single pass; a line containing any byte ≥ 0x80
// delegates to bytes.Fields so multi-byte Unicode spaces keep their exact
// semantics.
//
//mrlint:hotpath
func Fields(dst [][]byte, line []byte) [][]byte {
	const hi = 0x8080808080808080
	n0 := len(dst)
	start := -1 // current word start, -1 while between words
	i := 0
	// SWAR scan, 8 bytes per step: candidate boundary bytes are anything
	// below 0x21 (all six ASCII spaces live there) or at/above 0x80
	// (possible Unicode space). The common word bytes 0x21..0x7F raise no
	// candidate and cost no data-dependent branch — the per-byte boundary
	// branch is what mispredicts once per word on real text. Candidates
	// are classified exactly below, so the borrow-cascade false positives
	// of the below-0x21 trick (and rare control-char word bytes) are
	// handled, not mis-tokenized.
	for i+8 <= len(line) {
		v := uint64(line[i]) | uint64(line[i+1])<<8 | uint64(line[i+2])<<16 | uint64(line[i+3])<<24 |
			uint64(line[i+4])<<32 | uint64(line[i+5])<<40 | uint64(line[i+6])<<48 | uint64(line[i+7])<<56
		cand := ((v - 0x2121212121212121) & ^v & hi) | (v & hi)
		if cand == 0 {
			if start < 0 {
				start = i
			}
			i += 8
			continue
		}
		base, scan := i, i
		for cand != 0 {
			k := base + bits.TrailingZeros64(cand)>>3
			if start < 0 && k > scan {
				start = scan // word bytes preceded this candidate
			}
			switch fieldClass[line[k]] {
			case classSpace:
				if start >= 0 {
					dst = append(dst, line[start:k])
					start = -1
				}
			case classNonASCII:
				//mrlint:ignore alloccheck cold path: non-ASCII input delegates to bytes.Fields for exact Unicode space semantics
				return append(dst[:n0], bytes.Fields(line)...)
			default:
				// Control-char word byte flagged by the below-0x21 filter.
				if start < 0 {
					start = k
				}
			}
			scan = k + 1
			cand &= cand - 1
		}
		if start < 0 && scan < base+8 {
			start = scan // trailing word bytes after the last candidate
		}
		i = base + 8
	}
	// Scalar tail for the final partial chunk.
	for ; i < len(line); i++ {
		c := fieldClass[line[i]]
		if c == 0 {
			if start < 0 {
				start = i
			}
			continue
		}
		if c == classNonASCII {
			//mrlint:ignore alloccheck cold path: non-ASCII input delegates to bytes.Fields for exact Unicode space semantics
			return append(dst[:n0], bytes.Fields(line)...)
		}
		if start >= 0 {
			dst = append(dst, line[start:i])
			start = -1
		}
	}
	if start >= 0 {
		dst = append(dst, line[start:])
	}
	return dst
}
