//go:build !race

package fastparse_test

// raceEnabled relaxes the zero-allocation assertions under -race, whose
// instrumentation inflates allocation counts.
const raceEnabled = false
