package fastparse_test

import (
	"testing"

	"mrtext/internal/fastparse"
)

// TestGroundTruthFastparse pins the //mrlint:hotpath annotations on the
// parsing kernels to the real compiler: every kernel must run its
// steady-state fast path with zero heap allocations, measured by
// testing.AllocsPerRun. The CI AllocsPerRun gate runs this plain and
// under -race; race instrumentation inflates allocation counts, so the
// ==0 assertions are relaxed there (raceEnabled), matching the
// alloccheck ground-truth convention.
func TestGroundTruthFastparse(t *testing.T) {
	intsrc := []byte("-9007182818284590")
	uintsrc := []byte("18446744073709551615")
	floatsrc := []byte("1.23456789e-01")
	line := []byte("the quick brown fox jumped over the lazy dog")
	pipes := []byte("137.229.31.70|faeri.html|1979-12-12|0.359|Mozilla/5.0|ALM|ALM-AK|hindi|wiki|3")
	fieldScratch := make([][]byte, 0, 16)

	cases := []struct {
		name string
		fn   func()
	}{
		{"ParseInt", func() {
			if _, err := fastparse.ParseInt(intsrc); err != nil {
				t.Fatal(err)
			}
		}},
		{"ParseUint", func() {
			if _, err := fastparse.ParseUint(uintsrc); err != nil {
				t.Fatal(err)
			}
		}},
		{"ParseFloat", func() {
			if _, err := fastparse.ParseFloat(floatsrc); err != nil {
				t.Fatal(err)
			}
		}},
		{"Fields", func() {
			fieldScratch = fastparse.Fields(fieldScratch[:0], line)
			if len(fieldScratch) != 9 {
				t.Fatalf("got %d fields", len(fieldScratch))
			}
		}},
		{"SplitByte", func() {
			fieldScratch = fastparse.SplitByte(fieldScratch[:0], pipes, '|')
			if len(fieldScratch) != 10 {
				t.Fatalf("got %d fields", len(fieldScratch))
			}
		}},
	}
	for _, c := range cases {
		c.fn() // warm the scratch slice before measuring
		allocs := testing.AllocsPerRun(200, c.fn)
		if allocs != 0 && !raceEnabled {
			t.Errorf("%s: %.2f allocs/op on the fast path, want 0", c.name, allocs)
		}
	}
}
