package fastparse_test

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"mrtext/internal/fastparse"
)

// agreeInt asserts fastparse.ParseInt and strconv.ParseInt make the same
// accept/reject decision on s and, on accept, return the same value.
func agreeInt(t *testing.T, s string) {
	t.Helper()
	got, gerr := fastparse.ParseInt([]byte(s))
	want, werr := strconv.ParseInt(s, 10, 64)
	if (gerr == nil) != (werr == nil) {
		t.Errorf("ParseInt(%q): err %v, strconv err %v", s, gerr, werr)
		return
	}
	if gerr == nil && got != want {
		t.Errorf("ParseInt(%q) = %d, strconv = %d", s, got, want)
	}
	// On range errors both clamp to the same extreme.
	if gerr == fastparse.ErrRange && got != want {
		t.Errorf("ParseInt(%q) clamped to %d, strconv to %d", s, got, want)
	}
}

func agreeUint(t *testing.T, s string) {
	t.Helper()
	got, gerr := fastparse.ParseUint([]byte(s))
	want, werr := strconv.ParseUint(s, 10, 64)
	if (gerr == nil) != (werr == nil) {
		t.Errorf("ParseUint(%q): err %v, strconv err %v", s, gerr, werr)
		return
	}
	if gerr == nil && got != want {
		t.Errorf("ParseUint(%q) = %d, strconv = %d", s, got, want)
	}
}

func TestParseIntCases(t *testing.T) {
	cases := []string{
		"0", "1", "-1", "+1", "42", "-42", "007", "-007",
		"9223372036854775807", "-9223372036854775808",
		"9223372036854775808", "-9223372036854775809", // one past the extremes
		"18446744073709551615", "18446744073709551616", "99999999999999999999999",
		"", "+", "-", "+-1", "--1", "1x", "x1", " 1", "1 ", "1.5", "0x10", "1_0",
	}
	for _, s := range cases {
		agreeInt(t, s)
		agreeUint(t, s)
	}
}

func TestParseIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		got, err := fastparse.ParseInt(strconv.AppendInt(nil, v, 10))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(v uint64) bool {
		got, err := fastparse.ParseUint(strconv.AppendUint(nil, v, 10))
		return err == nil && got == v
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// TestParseIntRandomJunk drives both parsers with random digit-heavy noise
// so boundary and rejection behavior is compared far beyond the curated
// cases.
func TestParseIntRandomJunk(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := []byte("0123456789+-. exE_")
	for i := 0; i < 5000; i++ {
		n := rng.Intn(24)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		agreeInt(t, string(b))
		agreeUint(t, string(b))
	}
}

// floatSubset reports whether s matches the documented ParseFloat grammar
// [+-]?digits[.digits][(e|E)[+-]?digits] — the reference the agreement
// tests are phrased against.
func floatSubset(s string) bool {
	i, n := 0, len(s)
	if i < n && (s[i] == '+' || s[i] == '-') {
		i++
	}
	d0 := i
	for i < n && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == d0 {
		return false
	}
	if i < n && s[i] == '.' {
		i++
		f0 := i
		for i < n && s[i] >= '0' && s[i] <= '9' {
			i++
		}
		if i == f0 {
			return false
		}
	}
	if i < n && (s[i] == 'e' || s[i] == 'E') {
		i++
		if i < n && (s[i] == '+' || s[i] == '-') {
			i++
		}
		e0 := i
		for i < n && s[i] >= '0' && s[i] <= '9' {
			i++
		}
		if i == e0 {
			return false
		}
	}
	return i == n
}

// agreeFloat asserts the subset contract: in-grammar inputs parse to the
// exact bits strconv produces (including the error on range overflow);
// out-of-grammar inputs are rejected.
func agreeFloat(t *testing.T, s string) {
	t.Helper()
	got, gerr := fastparse.ParseFloat([]byte(s))
	if !floatSubset(s) {
		if gerr == nil {
			t.Errorf("ParseFloat(%q) accepted input outside the subset grammar", s)
		}
		return
	}
	want, werr := strconv.ParseFloat(s, 64)
	if (gerr == nil) != (werr == nil) {
		t.Errorf("ParseFloat(%q): err %v, strconv err %v", s, gerr, werr)
		return
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("ParseFloat(%q) = %v (bits %x), strconv = %v (bits %x)",
			s, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func TestParseFloatCases(t *testing.T) {
	cases := []string{
		"0", "-0", "0.0", "-0.0", "1", "1.5", "-1.5", "+2.75",
		"12.34", "0.1", "0.2", "0.3", "1e3", "1E3", "1e+3", "1e-3",
		"1.23456789e-01", "9.87654321e+05", "-4.56000000e-02", // pageRankFormat shapes
		"123456789012345678901234567890", "1e22", "1e23", "1e-22", "1e-23",
		"9007199254740991", "9007199254740992", "9007199254740993",
		"1.7976931348623157e308", "1e309", "-1e309", "1e-400", "5e-324",
		"0e999999", "0.000e999999",
		"17976931348623157081452742373170435679807056752584499659891747680315726078002853876058955863276687817154045895351438246423432132688946418276846754670353751698604991057655128207624549009038932894407586850845513394230458323690322294816580855933212334827479782620414472316873817718091929988125040402618412485836",
		"", ".", ".5", "1.", "+", "-", "e5", "1e", "1e+", "1.e5", "inf", "+Inf", "nan", "NaN",
		"0x1p4", "1_000", " 1", "1 ", "1..2", "1e5e5",
	}
	for _, s := range cases {
		agreeFloat(t, s)
	}
}

// TestParseFloatRoundTrip checks bit-exactness over random float64 values
// through every strconv formatting the runtime uses ('e' with fixed
// precision like pageRankFormat, plus shortest and fixed 'f').
func TestParseFloatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		var v float64
		switch rng.Intn(3) {
		case 0:
			v = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		case 1:
			v = float64(rng.Int63()) / float64(1<<40) // rank-unit shapes
		default:
			v = math.Float64frombits(rng.Uint64())
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		for _, s := range []string{
			strconv.FormatFloat(v, 'e', 8, 64),
			strconv.FormatFloat(v, 'g', -1, 64),
			strconv.FormatFloat(v, 'f', 6, 64),
		} {
			agreeFloat(t, s)
		}
	}
}

func TestParseFloatRandomJunk(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alphabet := []byte("0123456789+-.eE x_")
	for i := 0; i < 8000; i++ {
		n := rng.Intn(28)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		agreeFloat(t, string(b))
	}
}

func TestSplitByteMatchesBytesSplit(t *testing.T) {
	f := func(line []byte) bool {
		got := fastparse.SplitByte(nil, line, '|')
		want := bytes.Split(line, []byte{'|'})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSplitByteReusesScratch pins the zero-alloc contract: resplitting
// into a warmed scratch slice neither reallocates the headers nor copies
// the fields (they alias the line).
func TestSplitByteReusesScratch(t *testing.T) {
	line := []byte("a|bb|ccc|dddd")
	scratch := fastparse.SplitByte(nil, line, '|')
	again := fastparse.SplitByte(scratch[:0], line, '|')
	if &again[0] != &scratch[0] {
		t.Error("scratch headers were reallocated")
	}
	if &again[0][0] != &line[0] {
		t.Error("fields do not alias the input line")
	}
}

func TestFieldsMatchesBytesFields(t *testing.T) {
	check := func(line []byte) {
		t.Helper()
		got := fastparse.Fields(nil, line)
		want := bytes.Fields(line)
		if len(got) != len(want) {
			t.Errorf("Fields(%q): %d fields, bytes.Fields %d", line, len(got), len(want))
			return
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Errorf("Fields(%q)[%d] = %q, want %q", line, i, got[i], want[i])
			}
		}
	}
	cases := [][]byte{
		nil, []byte(""), []byte("   "), []byte("one"), []byte("one two"),
		[]byte("  leading"), []byte("trailing  "), []byte("a\tb\nc\vd\fe\rf g"),
		[]byte("caf\xc3\xa9 au lait"),       // UTF-8 content words
		[]byte("nbsp\xc2\xa0separated"),     // U+00A0, a Unicode space
		[]byte("ideographic\xe3\x80\x80sp"), // U+3000
		[]byte("\xff\xfe raw bytes \x80"),
	}
	for _, c := range cases {
		check(c)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		n := rng.Intn(40)
		b := make([]byte, n)
		for j := range b {
			if rng.Intn(4) == 0 {
				b[j] = byte(rng.Intn(256)) // include non-ASCII and control bytes
			} else {
				b[j] = " \tabcdefgh"[rng.Intn(10)]
			}
		}
		check(b)
	}
}

// TestFieldsNonASCIIRestart pins the delegation rule: when a non-ASCII
// byte appears after some fields were already collected, the fallback must
// discard the partial ASCII parse instead of duplicating fields.
func TestFieldsNonASCIIRestart(t *testing.T) {
	line := []byte("one two\xc2\xa0three four")
	got := fastparse.Fields(nil, line)
	want := bytes.Fields(line)
	if len(got) != len(want) {
		t.Fatalf("got %d fields %q, want %d %q", len(got), got, len(want), want)
	}
}
