package fastparse_test

import (
	"bytes"
	"math"
	"strconv"
	"testing"

	"mrtext/internal/fastparse"
)

func FuzzParseInt(f *testing.F) {
	for _, s := range []string{
		"0", "-1", "+42", "9223372036854775807", "-9223372036854775808",
		"18446744073709551616", "", "x", "1.5", "007",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got, gerr := fastparse.ParseInt([]byte(s))
		want, werr := strconv.ParseInt(s, 10, 64)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("ParseInt(%q): err %v, strconv err %v", s, gerr, werr)
		}
		if got != want {
			t.Fatalf("ParseInt(%q) = %d, strconv = %d", s, got, want)
		}
		ugot, ugerr := fastparse.ParseUint([]byte(s))
		uwant, uwerr := strconv.ParseUint(s, 10, 64)
		if (ugerr == nil) != (uwerr == nil) {
			t.Fatalf("ParseUint(%q): err %v, strconv err %v", s, ugerr, uwerr)
		}
		if ugot != uwant {
			t.Fatalf("ParseUint(%q) = %d, strconv = %d", s, ugot, uwant)
		}
	})
}

func FuzzParseFloat(f *testing.F) {
	for _, s := range []string{
		"0", "-0.0", "1.5", "1e22", "1e-23", "1.23456789e-01",
		"9007199254740993", "1e309", "5e-324", ".5", "1.", "1e5e5", "",
		"17976931348623157000000000000000000000000000000000000000000000000000",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got, gerr := fastparse.ParseFloat([]byte(s))
		if !floatSubset(s) {
			if gerr == nil {
				t.Fatalf("ParseFloat(%q) accepted input outside the subset grammar", s)
			}
			return
		}
		want, werr := strconv.ParseFloat(s, 64)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("ParseFloat(%q): err %v, strconv err %v", s, gerr, werr)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("ParseFloat(%q) = %v (bits %x), strconv = %v (bits %x)",
				s, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	})
}

func FuzzFields(f *testing.F) {
	f.Add([]byte("one two  three"))
	f.Add([]byte("  \t\n "))
	f.Add([]byte("caf\xc3\xa9 au\xc2\xa0lait"))
	f.Add([]byte("a|b||c"))
	f.Fuzz(func(t *testing.T, line []byte) {
		got := fastparse.Fields(nil, line)
		want := bytes.Fields(line)
		if len(got) != len(want) {
			t.Fatalf("Fields(%q): %d fields, bytes.Fields %d", line, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("Fields(%q)[%d] = %q, want %q", line, i, got[i], want[i])
			}
		}
		sgot := fastparse.SplitByte(nil, line, '|')
		swant := bytes.Split(line, []byte{'|'})
		if len(sgot) != len(swant) {
			t.Fatalf("SplitByte(%q): %d fields, bytes.Split %d", line, len(sgot), len(swant))
		}
		for i := range sgot {
			if !bytes.Equal(sgot[i], swant[i]) {
				t.Fatalf("SplitByte(%q)[%d] = %q, want %q", line, i, sgot[i], swant[i])
			}
		}
	})
}
