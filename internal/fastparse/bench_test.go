package fastparse

import (
	"bytes"
	"strconv"
	"testing"
)

// Corpus-shaped line: ~10 short Zipf words separated by single spaces.
var benchLine = []byte("the of quick and brown to fox jumps over lazy")

// Visits-shaped line: the textgen.UserVisits schema.
var benchVisit = []byte("137.229.31.70|example.org/faeri.html|1979-12-12|359|Mozilla/5.0|ALM|3")

func BenchmarkFields(b *testing.B) {
	b.SetBytes(int64(len(benchLine)))
	var words [][]byte
	var sink int
	for i := 0; i < b.N; i++ {
		words = Fields(words[:0], benchLine)
		sink += len(words)
	}
	_ = sink
}

func BenchmarkBytesFields(b *testing.B) {
	b.SetBytes(int64(len(benchLine)))
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(bytes.Fields(benchLine))
	}
	_ = sink
}

func BenchmarkSplitByteParseInt(b *testing.B) {
	b.SetBytes(int64(len(benchVisit)))
	var fields [][]byte
	var sink int64
	for i := 0; i < b.N; i++ {
		fields = SplitByte(fields[:0], benchVisit, '|')
		v, err := ParseInt(fields[3])
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	_ = sink
}

func BenchmarkBytesSplitStrconv(b *testing.B) {
	b.SetBytes(int64(len(benchVisit)))
	sep := []byte("|")
	var sink int64
	for i := 0; i < b.N; i++ {
		f := bytes.Split(benchVisit, sep)
		v, err := strconv.ParseInt(string(f[3]), 10, 64)
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	_ = sink
}
