package mr

import "mrtext/internal/metrics"

// Latency histograms for the shuffle and reduce wait points. The registry
// hands out stable pointers, so the hot paths resolve each histogram once
// at package init and Record with no lookup, no lock, and no allocation.
//
//   - histShuffleFetch: wall time to acquire one source segment on the
//     reduce side (staged hand-off or direct fetch, retries included).
//   - histStagingWait: copier waits for staging-buffer space that were
//     eventually granted (backpressure that worked).
//   - histStall: copier waits that expired and overflowed the segment to
//     the staging node's disk (backpressure that gave up).
//   - histQueueWait: reduce attempts' time between enqueue and worker
//     pickup.
var (
	histShuffleFetch = metrics.GetHistogram(metrics.HistShuffleFetchNS)
	histStagingWait  = metrics.GetHistogram(metrics.HistShuffleStagingWaitNS)
	histStall        = metrics.GetHistogram(metrics.HistShuffleStallNS)
	histQueueWait    = metrics.GetHistogram(metrics.HistReduceQueueWaitNS)
)
