package mr

import "mrtext/internal/metrics"

// Hists bundles the latency histograms the runtime records for one job:
//
//   - ShuffleFetch: wall time to acquire one source segment on the
//     reduce side (staged hand-off or direct fetch, retries included).
//   - StagingWait: copier waits for staging-buffer space that were
//     eventually granted (backpressure that worked).
//   - Stall: copier waits that expired and overflowed the segment to
//     the staging node's disk (backpressure that gave up).
//   - QueueWait: reduce attempts' time between enqueue and worker
//     pickup.
//
// A one-shot CLI run records straight into the process-wide registry
// instruments (the defaultHists set withDefaults installs when Job.Hists
// is nil), so /metrics and the JSON dumps keep working unchanged. A job
// service running concurrent jobs hands each job a private NewHists set
// instead, so one job's tail latencies never interleave with another's,
// and folds the set into the registry after the job completes.
type Hists struct {
	ShuffleFetch *metrics.Histogram
	StagingWait  *metrics.Histogram
	Stall        *metrics.Histogram
	QueueWait    *metrics.Histogram
}

// NewHists returns a private histogram set for one job, unregistered so
// concurrent jobs' observations stay isolated. Fold it into the
// process-wide registry with MergeIntoRegistry once the job is done.
func NewHists() *Hists {
	return &Hists{
		ShuffleFetch: metrics.NewHistogram(metrics.HistShuffleFetchNS),
		StagingWait:  metrics.NewHistogram(metrics.HistShuffleStagingWaitNS),
		Stall:        metrics.NewHistogram(metrics.HistShuffleStallNS),
		QueueWait:    metrics.NewHistogram(metrics.HistReduceQueueWaitNS),
	}
}

// defaultHists returns the registry-backed set: every Record lands
// directly on the process-wide instruments. The registry hands out
// stable pointers, so the hot paths resolve each histogram once per job
// and Record with no lookup, no lock, and no allocation.
func defaultHists() *Hists {
	return &Hists{
		ShuffleFetch: metrics.GetHistogram(metrics.HistShuffleFetchNS),
		StagingWait:  metrics.GetHistogram(metrics.HistShuffleStagingWaitNS),
		Stall:        metrics.GetHistogram(metrics.HistShuffleStallNS),
		QueueWait:    metrics.GetHistogram(metrics.HistReduceQueueWaitNS),
	}
}

// MergeIntoRegistry folds a private set's observations into the
// process-wide registry histograms of the same names. Calling it on the
// defaultHists set would double-count; only private NewHists sets should
// be merged.
func (h *Hists) MergeIntoRegistry() {
	metrics.MergeIntoRegistry(h.ShuffleFetch)
	metrics.MergeIntoRegistry(h.StagingWait)
	metrics.MergeIntoRegistry(h.Stall)
	metrics.MergeIntoRegistry(h.QueueWait)
}
