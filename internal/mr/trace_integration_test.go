package mr_test

import (
	"bytes"
	"math"
	"testing"

	"mrtext/internal/apps"
	"mrtext/internal/mr"
	"mrtext/internal/trace"
	"mrtext/internal/trace/critpath"
)

// TestTraceCrossChecksMetrics runs a traced wordcount with a small spill
// buffer (forcing many spills and real producer/consumer blocking) and
// asserts the trace is a faithful second account of the run: span counts
// match the job shape, map and support lanes genuinely overlap, and the
// Table II idle fractions derived from wait spans agree with the
// metrics-based Result accounting within 5%.
func TestTraceCrossChecksMetrics(t *testing.T) {
	c, corpus := newTextCluster(t, 3, 1<<20)

	tr := trace.New(1 << 16)
	job := apps.WordCount(corpus)
	job.SpillBufferBytes = 64 << 10
	job.Trace = tr

	res, err := mr.Run(c, job)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("tracer dropped %d events; ring too small for the test job", d)
	}

	events := tr.Events()
	spans := make(map[trace.Kind]int)
	for _, ev := range events {
		if !ev.Kind.Instant() {
			spans[ev.Kind]++
		}
	}
	if spans[trace.KindJob] != 1 {
		t.Errorf("job spans: got %d, want 1", spans[trace.KindJob])
	}
	if spans[trace.KindMapTask] != res.MapTasks {
		t.Errorf("map-task spans: got %d, want %d", spans[trace.KindMapTask], res.MapTasks)
	}
	if spans[trace.KindReduceTask] != res.ReduceTasks {
		t.Errorf("reduce-task spans: got %d, want %d", spans[trace.KindReduceTask], res.ReduceTasks)
	}
	if spans[trace.KindShuffleFetch] != res.ReduceTasks {
		t.Errorf("shuffle-fetch spans: got %d, want %d", spans[trace.KindShuffleFetch], res.ReduceTasks)
	}
	if spans[trace.KindSpill] == 0 || spans[trace.KindSort] == 0 {
		t.Errorf("expected spill and sort spans, got %d and %d", spans[trace.KindSpill], spans[trace.KindSort])
	}
	if spans[trace.KindSpill] != spans[trace.KindSort] {
		t.Errorf("each spill sorts exactly once: %d spills vs %d sorts", spans[trace.KindSpill], spans[trace.KindSort])
	}
	if spans[trace.KindMerge] != res.MapTasks {
		t.Errorf("merge spans: got %d, want %d", spans[trace.KindMerge], res.MapTasks)
	}

	// The support goroutine's spill work must overlap its own task's map
	// span: that concurrency is the whole point of the two-lane design.
	mapSpan := make(map[int]trace.Event)
	for _, ev := range events {
		if ev.Kind == trace.KindMapTask {
			mapSpan[int(ev.Task)] = ev
		}
	}
	overlaps := 0
	for _, ev := range events {
		if ev.Kind != trace.KindSpill {
			continue
		}
		m, ok := mapSpan[int(ev.Task)]
		if !ok {
			t.Fatalf("spill span for task %d without a map-task span", ev.Task)
		}
		if ev.Lane != trace.LaneSupport {
			t.Errorf("spill span on lane %v, want support", ev.Lane)
		}
		if ev.TS < m.TS+m.Dur && ev.TS+ev.Dur > m.TS {
			overlaps++
		}
	}
	if overlaps == 0 {
		t.Error("no spill span overlaps its map-task span: support lane never ran concurrently")
	}

	// Table II cross-check: wait spans reuse the exact durations fed to
	// the metrics accumulators, so the derived fractions agree closely.
	idle := trace.DeriveIdle(events)
	checkClose := func(name string, got, want float64) {
		t.Helper()
		tol := 0.05*math.Max(got, want) + 1e-3
		if math.Abs(got-want) > tol {
			t.Errorf("%s: trace-derived %.4f vs metrics %.4f (tolerance %.4f)", name, got, want, tol)
		}
	}
	checkClose("map idle fraction", idle.MapIdleFraction(), res.MapIdleFraction())
	checkClose("support idle fraction", idle.SupportIdleFraction(), res.SupportIdleFraction())

	// Placement counters cover every map task.
	if res.LocalMapTasks+res.StolenMapTasks != res.MapTasks {
		t.Errorf("placement: %d local + %d stolen != %d map tasks",
			res.LocalMapTasks, res.StolenMapTasks, res.MapTasks)
	}

	// Reduce reports carry shuffle volume and queue-wait accounting.
	for _, rep := range res.Tasks {
		if rep.Kind != "reduce" {
			continue
		}
		if rep.ShuffleBytes <= 0 {
			t.Errorf("reduce %d: ShuffleBytes = %d, want > 0", rep.Index, rep.ShuffleBytes)
		}
		if rep.QueueWait < 0 {
			t.Errorf("reduce %d: negative QueueWait %v", rep.Index, rep.QueueWait)
		}
	}

	// Every reduce attempt's queue wait is also a wait-queue span, and
	// the two accounts agree in total.
	var queueSpans int
	var queueSpanTotal, queueReportTotal float64
	for _, ev := range events {
		if ev.Kind == trace.KindWaitQueue {
			queueSpans++
			queueSpanTotal += float64(ev.Dur)
		}
	}
	for _, rep := range res.Tasks {
		if rep.Kind == "reduce" {
			queueReportTotal += float64(rep.QueueWait)
		}
	}
	if queueSpans == 0 {
		t.Error("no wait-queue spans recorded")
	}
	checkClose("queue wait total (ms)", queueSpanTotal/1e6, queueReportTotal/1e6)

	// Blame-report cross-check: the critical-path analyzer's phase walls
	// and idle fractions are a third account of the same run, and must
	// agree with the Result metrics within the same 5% tolerance.
	report, err := critpath.Analyze(events, critpath.Options{})
	if err != nil {
		t.Fatalf("critpath.Analyze: %v", err)
	}
	checkClose("critpath job wall (ms)", float64(report.JobWall)/1e6, float64(res.Wall)/1e6)
	checkClose("critpath map wall (ms)", float64(report.Map.Wall)/1e6, float64(res.MapWall)/1e6)
	checkClose("critpath reduce wall (ms)", float64(report.Reduce.Wall)/1e6, float64(res.ReduceWall)/1e6)
	checkClose("critpath map idle fraction", report.MapLaneIdleFraction(), res.MapIdleFraction())
	checkClose("critpath support idle fraction", report.SupportLaneIdleFraction(), res.SupportIdleFraction())
	for _, phase := range []struct {
		name string
		pb   critpath.PhaseBlame
	}{{"map", report.Map}, {"reduce", report.Reduce}} {
		var sum float64
		for c := critpath.Cause(0); c < critpath.NumCauses; c++ {
			sum += float64(phase.pb.Causes[c])
		}
		checkClose("critpath "+phase.name+" blame sum (ms)", sum/1e6, float64(phase.pb.Wall)/1e6)
	}

	// The exporter round-trips through its own validator.
	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf, events); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := trace.Validate(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
}
