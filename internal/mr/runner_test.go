package mr_test

import (
	"bytes"
	"fmt"
	"testing"

	"mrtext/internal/apps"
	"mrtext/internal/cluster"
	"mrtext/internal/mr"
	"mrtext/internal/textgen"
)

// newTextCluster builds a fast in-memory cluster preloaded with a small
// Zipfian corpus.
func newTextCluster(t *testing.T, nodes int, corpusBytes int64) (*cluster.Cluster, string) {
	t.Helper()
	c, err := cluster.New(cluster.Fast(nodes))
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	w, err := c.FS.Create("corpus.txt", 0)
	if err != nil {
		t.Fatalf("create corpus: %v", err)
	}
	cfg := textgen.CorpusConfig{Vocabulary: 5000, Alpha: 1.0, WordsPerLine: 8, Seed: 42}
	if _, err := textgen.Corpus(w, cfg, corpusBytes); err != nil {
		t.Fatalf("generate corpus: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close corpus: %v", err)
	}
	return c, "corpus.txt"
}

// readOutputs concatenates the job's reduce outputs by partition.
func readOutputs(t *testing.T, c *cluster.Cluster, res *mr.Result) map[int][]byte {
	t.Helper()
	out := make(map[int][]byte, len(res.Outputs))
	for r, name := range res.Outputs {
		data, err := c.FS.ReadFile(name)
		if err != nil {
			t.Fatalf("reading output %s: %v", name, err)
		}
		out[r] = data
	}
	return out
}

// configurations mirrors the paper's four test scenarios.
var configurations = []struct {
	name  string
	apply func(j *mr.Job)
}{
	{"baseline", func(j *mr.Job) {}},
	{"freqbuf", func(j *mr.Job) {
		j.FreqBuf = &mr.FreqBufConfig{K: 100, SampleFraction: 0.05, MemFraction: 0.3, ShareTopK: true}
	}},
	{"spillmatcher", func(j *mr.Job) { j.SpillMatcher = true }},
	{"combined", func(j *mr.Job) {
		j.FreqBuf = &mr.FreqBufConfig{K: 100, SampleFraction: 0.05, MemFraction: 0.3, ShareTopK: true}
		j.SpillMatcher = true
	}},
}

// TestWordCountMatchesReferenceAllConfigs is the central correctness
// invariant: under every optimization configuration the job output is
// byte-identical to the sequential reference execution.
func TestWordCountMatchesReferenceAllConfigs(t *testing.T) {
	c, corpus := newTextCluster(t, 3, 1<<20)

	ref, err := mr.RunReference(c, apps.WordCount(corpus))
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	for _, cfg := range configurations {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			job := apps.WordCount(corpus)
			job.Name = "wc-" + cfg.name
			job.SpillBufferBytes = 64 << 10 // force many spills
			cfg.apply(job)
			res, err := mr.Run(c, job)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got := readOutputs(t, c, res)
			if len(got) != len(ref) {
				t.Fatalf("partitions: got %d want %d", len(got), len(ref))
			}
			for p := range ref {
				if !bytes.Equal(got[p], ref[p]) {
					t.Errorf("partition %d differs: got %d bytes, want %d bytes\nfirst got: %.120q\nfirst want: %.120q",
						p, len(got[p]), len(ref[p]), firstDiff(got[p], ref[p]), firstDiff(ref[p], got[p]))
				}
			}
			if rec := res.Agg.Counters["map.output.records"]; rec == 0 {
				t.Error("no map output records recorded")
			}
		})
	}
}

// firstDiff returns a window of a around the first byte where a and b
// differ, for readable failure messages.
func firstDiff(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	start := i - 40
	if start < 0 {
		start = 0
	}
	end := i + 80
	if end > len(a) {
		end = len(a)
	}
	return a[start:end]
}

func TestAllAppsMatchReference(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	c, corpus := newTextCluster(t, 3, 512<<10)

	// Access logs.
	logCfg := textgen.LogConfig{URLs: 500, Alpha: 0.8, Seed: 7}
	wv, err := c.FS.Create("visits.log", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := textgen.UserVisits(wv, logCfg, 256<<10); err != nil {
		t.Fatal(err)
	}
	if err := wv.Close(); err != nil {
		t.Fatal(err)
	}
	wr, err := c.FS.Create("rankings.tbl", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := textgen.Rankings(wr, logCfg); err != nil {
		t.Fatal(err)
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}

	// Web graph.
	gCfg := textgen.GraphConfig{Pages: 2000, Alpha: 1.0, MeanOutDegree: 5, Seed: 9}
	wg, err := c.FS.Create("graph.tsv", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := textgen.WebGraph(wg, gCfg); err != nil {
		t.Fatal(err)
	}
	if err := wg.Close(); err != nil {
		t.Fatal(err)
	}

	jobs := map[string]func() *mr.Job{
		"wordcount":     func() *mr.Job { return apps.WordCount(corpus) },
		"invertedindex": func() *mr.Job { return apps.InvertedIndex(corpus) },
		"wordpostag":    func() *mr.Job { return apps.WordPOSTag(2, corpus) },
		"accesslogsum":  func() *mr.Job { return apps.AccessLogSum("visits.log") },
		"accesslogjoin": func() *mr.Job { return apps.AccessLogJoin("visits.log", "rankings.tbl") },
		"pagerank":      func() *mr.Job { return apps.PageRank("graph.tsv", gCfg.Pages) },
		"syntext":       func() *mr.Job { return apps.SynText(apps.SynTextConfig{CPUFactor: 2, Storage: 0.5}, corpus) },
	}

	for name, mk := range jobs {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			ref, err := mr.RunReference(c, mk())
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			for _, cfg := range configurations {
				job := mk()
				job.Name = fmt.Sprintf("%s-%s", name, cfg.name)
				job.SpillBufferBytes = 128 << 10
				cfg.apply(job)
				res, err := mr.Run(c, job)
				if err != nil {
					t.Fatalf("%s/%s: run: %v", name, cfg.name, err)
				}
				got := readOutputs(t, c, res)
				for p := range ref {
					if !bytes.Equal(got[p], ref[p]) {
						t.Errorf("%s/%s: partition %d differs (got %d bytes, want %d)",
							name, cfg.name, p, len(got[p]), len(ref[p]))
					}
				}
			}
		})
	}
}
