package mr

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mrtext/internal/cluster"
)

// buildFS writes data as one DFS file over a cluster with the given block
// size and returns the cluster.
func buildFS(t *testing.T, data []byte, blockSize int64) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{Nodes: 3, BlockSize: blockSize, Replication: 1,
		MapSlotsPerNode: 1, ReduceSlotsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FS.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	return c
}

// scanAll reads every line of every split and returns them with offsets.
func scanAll(t *testing.T, c *cluster.Cluster) (lines []string, offsets []int64) {
	t.Helper()
	splits, err := computeSplits(c.FS, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range splits {
		sc, err := openLines(c.FS, sp, 0)
		if err != nil {
			t.Fatal(err)
		}
		for {
			off, line, ok, err := sc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			lines = append(lines, string(line))
			offsets = append(offsets, off)
		}
		sc.Close()
	}
	return lines, offsets
}

// TestSplitBoundaryExactlyOnce is the record-reader invariant: regardless
// of where block boundaries fall, every input line is processed exactly
// once, by the split containing its first byte.
func TestSplitBoundaryExactlyOnce(t *testing.T) {
	f := func(seed int64, blockRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		blockSize := int64(blockRaw%61) + 3 // 3..63 bytes: boundaries everywhere
		var want []string
		var data bytes.Buffer
		n := 20 + rng.Intn(60)
		for i := 0; i < n; i++ {
			line := fmt.Sprintf("line%02d-%s", i, string(bytes.Repeat([]byte{'x'}, rng.Intn(12))))
			want = append(want, line)
			data.WriteString(line)
			data.WriteByte('\n')
		}
		c := buildFS(t, data.Bytes(), blockSize)
		got, _ := scanAll(t, c)
		if len(got) != len(want) {
			return false
		}
		seen := map[string]int{}
		for _, l := range got {
			seen[l]++
		}
		for _, l := range want {
			if seen[l] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSplitOffsetsAreLineStarts(t *testing.T) {
	data := []byte("alpha\nbeta\ngamma\ndelta\n")
	c := buildFS(t, data, 7)
	lines, offsets := scanAll(t, c)
	wantOffsets := map[string]int64{"alpha": 0, "beta": 6, "gamma": 11, "delta": 17}
	if len(lines) != 4 {
		t.Fatalf("lines %v", lines)
	}
	for i, l := range lines {
		if offsets[i] != wantOffsets[l] {
			t.Errorf("line %q offset %d want %d", l, offsets[i], wantOffsets[l])
		}
	}
}

func TestNoTrailingNewline(t *testing.T) {
	data := []byte("first\nsecond\nlast-no-newline")
	c := buildFS(t, data, 8)
	lines, _ := scanAll(t, c)
	if len(lines) != 3 || lines[len(lines)-1] != "last-no-newline" {
		t.Errorf("lines %v", lines)
	}
}

func TestEmptyLinesPreserved(t *testing.T) {
	data := []byte("a\n\n\nb\n")
	c := buildFS(t, data, 3)
	lines, _ := scanAll(t, c)
	if len(lines) != 4 {
		t.Fatalf("lines %q", lines)
	}
	count := map[string]int{}
	for _, l := range lines {
		count[l]++
	}
	if count[""] != 2 || count["a"] != 1 || count["b"] != 1 {
		t.Errorf("lines %q", lines)
	}
}

func TestBoundaryExactlyAtNewline(t *testing.T) {
	// Block size 6: "hello\n" fills block 0 exactly; "world\n" starts at
	// the first byte of block 1 and must belong to split 1 (and only it).
	data := []byte("hello\nworld\n")
	c := buildFS(t, data, 6)
	splits, err := computeSplits(c.FS, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 2 {
		t.Fatalf("%d splits", len(splits))
	}
	for i, want := range []string{"hello", "world"} {
		sc, err := openLines(c.FS, splits[i], 0)
		if err != nil {
			t.Fatal(err)
		}
		_, line, ok, err := sc.Next()
		if err != nil || !ok || string(line) != want {
			t.Errorf("split %d: %q ok=%v err=%v", i, line, ok, err)
		}
		if _, _, ok, _ := sc.Next(); ok {
			t.Errorf("split %d has extra lines", i)
		}
		sc.Close()
	}
}

func TestLineSpanningThreeBlocks(t *testing.T) {
	// One long line crossing several tiny blocks belongs entirely to the
	// split holding its first byte.
	long := bytes.Repeat([]byte("z"), 25)
	data := append([]byte("ab\n"), append(long, '\n')...)
	c := buildFS(t, data, 5)
	lines, _ := scanAll(t, c)
	if len(lines) != 2 {
		t.Fatalf("lines %q", lines)
	}
	found := false
	for _, l := range lines {
		if l == string(long) {
			found = true
		}
	}
	if !found {
		t.Error("long line missing or split")
	}
}

func TestConsumedTracksBytes(t *testing.T) {
	data := []byte("aaaa\nbbbb\ncccc\n")
	c := buildFS(t, data, int64(len(data)))
	splits, _ := computeSplits(c.FS, []string{"f"})
	sc, err := openLines(c.FS, splits[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	sc.Next()
	if sc.Consumed() != 5 {
		t.Errorf("consumed %d after one line", sc.Consumed())
	}
	sc.Next()
	sc.Next()
	if sc.Consumed() != int64(len(data)) {
		t.Errorf("consumed %d after all lines", sc.Consumed())
	}
}

func TestComputeSplitsErrors(t *testing.T) {
	c := buildFS(t, []byte("x\n"), 4)
	if _, err := computeSplits(c.FS, []string{"missing"}); err == nil {
		t.Error("missing input accepted")
	}
}
