package mr

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"mrtext/internal/dfs"
)

// LineReader is what the map loop needs from a split reader: the line
// iterator plus the consumed-byte count the frequency-buffering profiler
// extrapolates from. Both the batched blockScanner (default) and the
// bufio-based lineScanner (Job.SerialIngest) implement it. Exported so the
// ingest benchmark harness (internal/ingestbench) can drain splits through
// either reader outside a job.
type LineReader interface {
	// Next returns the next line (without its trailing newline) and its
	// starting file offset; ok=false at end of split. The slice is owned
	// by the reader and valid only until the following Next call.
	Next() (off int64, line []byte, ok bool, err error)
	// Consumed reports bytes consumed so far that count against the split.
	Consumed() int64
	// Close releases the underlying DFS stream.
	Close() error
}

// lineSource is the runtime-internal name for the split-reader face.
type lineSource = LineReader

// SplitsOf computes the input splits (one per DFS block) the runner would
// schedule for the given inputs — exported for the ingest benchmark
// harness, which drains splits without running a job.
func SplitsOf(fs *dfs.DFS, inputs []string) ([]Split, error) {
	return computeSplits(fs, inputs)
}

// OpenSplitSerial opens the split with the bufio-based serial line scanner
// — the pre-fast-path reader Job.SerialIngest selects, kept as the ingest
// benchmark baseline.
func OpenSplitSerial(fs *dfs.DFS, split Split, node int) (LineReader, error) {
	return openLines(fs, split, node)
}

// OpenSplitBatched opens the split with the block-batched arena scanner of
// the ingest fast path. chunkBytes <= 0 selects the default arena chunk.
func OpenSplitBatched(fs *dfs.DFS, split Split, node int, chunkBytes int) (LineReader, error) {
	if chunkBytes <= 0 {
		chunkBytes = defaultIngestChunk
	}
	return openBlockLines(fs, split, node, chunkBytes)
}

// openSplit opens the split with the reader the job's ingest knobs select:
// the block-batched scanner by default, the serial bufio scanner under
// SerialIngest (the pre-fast-path behavior kept as the comparison
// baseline, like SerialShuffle on the shuffle side).
func openSplit(fs *dfs.DFS, split Split, node int, job *Job) (lineSource, error) {
	if job.SerialIngest {
		return openLines(fs, split, node)
	}
	return openBlockLines(fs, split, node, int(job.IngestChunkBytes))
}

// defaultIngestChunk is the arena chunk size when Job.IngestChunkBytes is
// unset: large enough that per-chunk costs (the slide copy, the read call)
// amortize to noise, small enough to stay cache- and memory-friendly per
// concurrent map task.
const defaultIngestChunk = 1 << 20

// tailChunk bounds reads once the buffered data reaches the split end:
// only the tail of one line can remain, so refills shrink from the arena
// chunk to this, keeping the metered DFS overshoot small (the bufio
// scanner could overshoot by its full 64 KiB buffer).
const tailChunk = 4 << 10

// blockScanner is the batched split reader of the ingest fast path: it
// reads the split in arena-sized chunks and returns lines as subslices of
// the arena, so the steady-state per-line cost is one bytes.IndexByte —
// no per-line reader calls, no copies, no allocations. Boundary semantics
// are identical to lineScanner (first-byte ownership: open one byte early
// and discard through the first newline; lines starting in-split complete
// past the split end), proven by the byte-identity property tests in
// blockread_test.go.
//
// Arena ownership: lines alias buf, which slides and is rewritten on
// refill, so a returned line is valid only until the next Next call —
// the same contract lineScanner documents. Callers that keep bytes copy
// them (the emit path copies into the spill buffer's arena).
type blockScanner struct {
	rc       io.ReadCloser
	buf      []byte // the arena: lines are subslices of this
	start    int    // index of the first unconsumed byte in buf
	filled   int    // bytes of buf currently valid
	pos      int64  // file offset of buf[start]
	splitEnd int64
	consumed int64 // bytes consumed that count against this split
	eof      bool  // underlying stream exhausted
	done     bool
}

// openBlockLines positions a batched scanner at the first line owned by
// the split, reading as the given node with the given arena chunk size.
func openBlockLines(fs *dfs.DFS, split Split, node int, chunk int) (*blockScanner, error) {
	if chunk < 16 {
		chunk = 16
	}
	start := split.Offset
	seekBack := int64(0)
	if start > 0 {
		seekBack = 1
	}
	rc, err := fs.OpenFrom(split.File, node, start-seekBack)
	if err != nil {
		return nil, fmt.Errorf("mr: opening split %s@%d: %w", split.File, split.Offset, err)
	}
	s := &blockScanner{
		rc:       rc,
		buf:      make([]byte, chunk),
		pos:      start - seekBack,
		splitEnd: split.Offset + split.Len,
	}
	if start > 0 {
		// Discard through the first newline at or after start-1; these
		// bytes belong to the previous split and do not count as consumed.
		for {
			if i := bytes.IndexByte(s.buf[s.start:s.filled], '\n'); i >= 0 {
				s.pos += int64(i + 1)
				s.start += i + 1
				break
			}
			s.pos += int64(s.filled - s.start)
			s.start = s.filled
			if s.eof {
				s.done = true
				break
			}
			if err := s.fill(); err != nil {
				return nil, fmt.Errorf("mr: skipping partial line of split %s@%d: %w",
					split.File, split.Offset, errors.Join(err, rc.Close()))
			}
		}
	}
	return s, nil
}

// Next returns the next line as a subslice of the arena. See lineSource
// for the aliasing contract.
//
//mrlint:hotpath
func (s *blockScanner) Next() (off int64, line []byte, ok bool, err error) {
	if s.done || s.pos >= s.splitEnd {
		return 0, nil, false, nil
	}
	scanned := 0 // bytes after start already known newline-free
	for {
		if i := bytes.IndexByte(s.buf[s.start+scanned:s.filled], '\n'); i >= 0 {
			end := s.start + scanned + i
			line = s.buf[s.start:end]
			n := int64(end + 1 - s.start)
			off = s.pos
			s.pos += n
			s.consumed += n
			s.start = end + 1
			return off, line, true, nil
		}
		scanned = s.filled - s.start
		if s.eof {
			// Final line without a trailing newline.
			if scanned == 0 {
				s.done = true
				return 0, nil, false, nil
			}
			line = s.buf[s.start:s.filled]
			off = s.pos
			s.pos += int64(scanned)
			s.consumed += int64(scanned)
			s.start = s.filled
			s.done = true
			return off, line, true, nil
		}
		if ferr := s.fill(); ferr != nil {
			//mrlint:ignore alloccheck cold path: I/O failure exit, not the per-line loop
			return 0, nil, false, fmt.Errorf("mr: reading line at %d: %w", s.pos, ferr)
		}
		// fill slid the partial line to buf[0:scanned]; the scanned count
		// stays valid because it is relative to start.
	}
}

// fill slides the unconsumed tail of the arena to the front and reads more
// bytes after it, growing the arena when a single line exceeds it. Reads
// past the split end shrink to tailChunk to bound metered DFS overshoot.
func (s *blockScanner) fill() error {
	if s.start > 0 {
		s.filled = copy(s.buf, s.buf[s.start:s.filled])
		s.start = 0
	}
	if s.filled == len(s.buf) {
		// One line overflows the arena: double it. Cold — amortized over
		// the split, and only pathological line lengths reach it at all.
		//mrlint:ignore alloccheck cold path: arena growth for lines longer than the chunk, amortized doubling
		grown := make([]byte, 2*len(s.buf))
		copy(grown, s.buf[:s.filled])
		s.buf = grown
	}
	want := len(s.buf) - s.filled
	if end := s.pos + int64(s.filled-s.start); end >= s.splitEnd && want > tailChunk {
		want = tailChunk
	}
	for {
		n, err := s.rc.Read(s.buf[s.filled : s.filled+want])
		s.filled += n
		if err == io.EOF {
			s.eof = true
			return nil
		}
		if err != nil {
			return err
		}
		if n > 0 {
			return nil
		}
	}
}

// Consumed reports the bytes this split has consumed so far (used to
// extrapolate the expected record count for the frequency-buffering
// profiler).
func (s *blockScanner) Consumed() int64 { return s.consumed }

// Close releases the underlying DFS stream.
func (s *blockScanner) Close() error { return s.rc.Close() }
