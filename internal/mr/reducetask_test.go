package mr

import (
	"io"
	"testing"

	"mrtext/internal/cluster"
	"mrtext/internal/kvio"
	"mrtext/internal/metrics"
)

// fakeStream yields a fixed set of records.
type fakeStream struct {
	recs []kvio.Record
	pos  int
}

func (f *fakeStream) Next() (k, v []byte, err error) {
	if f.pos >= len(f.recs) {
		return nil, nil, io.EOF
	}
	r := f.recs[f.pos]
	f.pos++
	return r.Key, r.Value, nil
}

func (f *fakeStream) Close() error { return nil }

// TestChargedStreamBatchesTransfers: the shuffle stream charges the fabric
// in batches, and same-node streams never touch it.
func TestChargedStreamBatchesTransfers(t *testing.T) {
	c, err := cluster.New(cluster.Fast(2))
	if err != nil {
		t.Fatal(err)
	}
	tm := metrics.NewTaskMetrics()
	recs := make([]kvio.Record, 100)
	for i := range recs {
		recs[i] = kvio.Record{Key: []byte("key"), Value: make([]byte, 1024)}
	}
	// Remote stream: bytes must cross the fabric, batched.
	cs := &chargedStream{inner: &fakeStream{recs: recs}, c: c, src: 0, dst: 1, tm: tm}
	for {
		_, _, err := cs.Next()
		if err != nil {
			break
		}
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	stats := c.Net.Stats()
	wantBytes := int64(100 * (3 + 1024 + 4))
	if stats.BytesMoved != wantBytes {
		t.Errorf("moved %d bytes, want %d", stats.BytesMoved, wantBytes)
	}
	// Batching: ~100 KiB in 64 KiB batches → far fewer transfers than
	// records.
	if stats.Transfers >= 100 {
		t.Errorf("%d transfers for 100 records: not batched", stats.Transfers)
	}
	if tm.Counter(metrics.CtrShuffleBytes) != wantBytes {
		t.Errorf("shuffle counter %d", tm.Counter(metrics.CtrShuffleBytes))
	}

	// Local stream: counted but never transferred.
	tm2 := metrics.NewTaskMetrics()
	cs2 := &chargedStream{inner: &fakeStream{recs: recs[:10]}, c: c, src: 1, dst: 1, tm: tm2}
	for {
		if _, _, err := cs2.Next(); err != nil {
			break
		}
	}
	cs2.Close()
	if c.Net.Stats().BytesMoved != wantBytes {
		t.Error("local stream moved bytes across the fabric")
	}
	if tm2.Counter(metrics.CtrShuffleBytes) == 0 {
		t.Error("local shuffle bytes not counted")
	}
}
