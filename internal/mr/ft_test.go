package mr_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"mrtext/internal/apps"
	"mrtext/internal/chaos"
	"mrtext/internal/cluster"
	"mrtext/internal/mr"
	"mrtext/internal/textgen"
)

// Fault-tolerance integration suite: the central invariant is that job
// output under injected faults — attempt failures at every site, a node
// kill, manufactured stragglers with speculation on — is byte-identical
// to a fault-free run, and that the Result's attempt accounting is
// internally consistent and consistent with the chaos log.

const (
	ftNodes    = 4
	ftBlock    = 128 << 10
	ftCorpus   = 1 << 20 // 8 splits over 4 nodes
	ftReducers = 4
)

// newFTCluster builds a cluster with the FT test geometry: replication 2
// so inputs and outputs survive one node death. The injector (if any)
// starts disarmed, so corpus generation is fault-free.
func newFTCluster(t *testing.T, chaosCfg *chaos.Config) (*cluster.Cluster, string) {
	t.Helper()
	cfg := cluster.Fast(ftNodes)
	cfg.BlockSize = ftBlock
	cfg.Replication = 2
	cfg.Chaos = chaosCfg
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	w, err := c.FS.Create("corpus.txt", 0)
	if err != nil {
		t.Fatalf("create corpus: %v", err)
	}
	gen := textgen.CorpusConfig{Vocabulary: 5000, Alpha: 1.0, WordsPerLine: 8, Seed: 42}
	if _, err := textgen.Corpus(w, gen, ftCorpus); err != nil {
		t.Fatalf("generate corpus: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close corpus: %v", err)
	}
	return c, "corpus.txt"
}

// ftJob returns the job the suite runs: WordCount with a small spill
// buffer (many spills, so every map-side fault site is exercised) and a
// fixed partition count so outputs are comparable across clusters.
func ftJob(corpus, name string) *mr.Job {
	job := apps.WordCount(corpus)
	job.Name = name
	job.NumReducers = ftReducers
	job.SpillBufferBytes = 32 << 10
	job.MaxAttempts = 8 // at 20% per-attempt fail rate, task death needs 8 straight losses
	return job
}

// ftReference computes the fault-free reference output once per test run.
func ftReference(t *testing.T) map[int][]byte {
	t.Helper()
	c, corpus := newFTCluster(t, nil)
	ref, err := mr.RunReference(c, ftJob(corpus, "wc-ref"))
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	return ref
}

// assertOutputsMatch reads every reduce output and compares it to the
// reference byte for byte.
func assertOutputsMatch(t *testing.T, c *cluster.Cluster, res *mr.Result, ref map[int][]byte) {
	t.Helper()
	if len(res.Outputs) != len(ref) {
		t.Fatalf("partitions: got %d want %d", len(res.Outputs), len(ref))
	}
	got := readOutputs(t, c, res)
	for p := range ref {
		if !bytes.Equal(got[p], ref[p]) {
			t.Errorf("partition %d differs under faults: got %d bytes, want %d bytes",
				p, len(got[p]), len(ref[p]))
		}
	}
}

// assertCounterIdentity checks the Result's attempt accounting: every
// started attempt is exactly one of a base attempt, a retry, a
// speculative backup, or a recovery re-run.
func assertCounterIdentity(t *testing.T, res *mr.Result) {
	t.Helper()
	started := res.MapAttempts + res.ReduceAttempts
	classified := res.MapTasks + res.ReduceTasks + res.TaskRetries + res.SpeculativeTasks + res.RecoveredMapTasks
	if started != classified {
		t.Errorf("attempt identity broken: %d attempts started, %d classified (map %d + reduce %d tasks, %d retries, %d speculative, %d recovered)",
			started, classified, res.MapTasks, res.ReduceTasks, res.TaskRetries, res.SpeculativeTasks, res.RecoveredMapTasks)
	}
	if res.MapAttempts < res.MapTasks {
		t.Errorf("map attempts %d < map tasks %d", res.MapAttempts, res.MapTasks)
	}
	if res.ReduceAttempts < res.ReduceTasks {
		t.Errorf("reduce attempts %d < reduce tasks %d", res.ReduceAttempts, res.ReduceTasks)
	}
}

// TestDeterminismUnderFaults is the seed × fail-rate matrix: each cell
// runs the same job on a fresh cluster with a different fault schedule —
// including one cell that kills a node mid-job and one that manufactures
// stragglers with speculation on — and requires byte-identical output.
func TestDeterminismUnderFaults(t *testing.T) {
	ref := ftReference(t)

	cells := []struct {
		name string
		cfg  chaos.Config
		spec bool
	}{
		{"seed1-fail05", chaos.Config{Seed: 1, FailRate: 0.05, KillNode: -1}, false},
		{"seed7-fail05", chaos.Config{Seed: 7, FailRate: 0.05, KillNode: -1}, false},
		{"seed1-fail10", chaos.Config{Seed: 1, FailRate: 0.10, KillNode: -1}, false},
		{"seed3-fail20", chaos.Config{Seed: 3, FailRate: 0.20, KillNode: -1}, false},
		{"seed9-fail20", chaos.Config{Seed: 9, FailRate: 0.20, KillNode: -1}, false},
		// The kill cell floors every attempt at 2ms (DelayRate 1) so the
		// victim's workers are always scheduled before the short job runs
		// out of tasks: the kill only fires once the victim itself performs
		// chaos-visible work, and without the floor the other six slots can
		// occasionally claim all eight map tasks first.
		{"seed5-fail05-kill2", chaos.Config{Seed: 5, FailRate: 0.05, KillNode: 2, KillAfterOps: 40,
			DelayRate: 1, Delay: 2 * time.Millisecond}, false},
		{"seed11-fail10-stragglers-speculation", chaos.Config{Seed: 11, FailRate: 0.10, KillNode: -1, DelayRate: 0.3, Delay: 20 * time.Millisecond}, true},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			cfg := cell.cfg
			c, corpus := newFTCluster(t, &cfg)
			job := ftJob(corpus, "wc-"+cell.name)
			job.Speculation = cell.spec
			res, err := mr.Run(c, job)
			if err != nil {
				t.Fatalf("run under chaos %+v: %v\nchaos log: %v", cfg, err, c.Chaos.Log())
			}
			assertOutputsMatch(t, c, res, ref)
			assertCounterIdentity(t, res)

			stats := c.Chaos.Stats()
			// A fired fault either fails its attempt or — at the shuffle-
			// fetch site — is absorbed by the pipelined shuffle's per-source
			// retry, which counts it as a fetch retry instead.
			absorbed := res.ShuffleFetchRetries
			if stats.Faults > 0 && res.FailedAttempts == 0 && absorbed == 0 {
				t.Errorf("chaos fired %d faults but neither attempt failures nor absorbed fetch retries recorded", stats.Faults)
			}
			if res.FailedAttempts+absorbed < int(stats.Faults) {
				t.Errorf("failed attempts %d + absorbed fetch retries %d < injected faults %d: every fired fault must fail its attempt or be absorbed",
					res.FailedAttempts, absorbed, stats.Faults)
			}
			if cfg.KillNode >= 0 {
				if len(res.DeadNodes) != 1 || res.DeadNodes[0] != cfg.KillNode {
					t.Errorf("dead nodes = %v, want [%d]", res.DeadNodes, cfg.KillNode)
				}
			} else if len(res.DeadNodes) != 0 {
				t.Errorf("unexpected dead nodes %v", res.DeadNodes)
			}
			if cell.spec && stats.Delays > 0 && res.SpeculativeTasks == 0 {
				t.Logf("note: %d stragglers manufactured but no backups launched (quorum not reached in time)", stats.Delays)
			}
		})
	}
}

// ftSynJob returns the SynText benchmark sized for the FT suite; SynText
// exercises a different emit/aggregate profile than WordCount (payload
// growth via Storage), so chaos-smoke coverage isn't WordCount-shaped only.
func ftSynJob(corpus, name string) *mr.Job {
	job := apps.SynText(apps.SynTextConfig{CPUFactor: 1, Storage: 0.5}, corpus)
	job.Name = name
	job.NumReducers = ftReducers
	job.SpillBufferBytes = 32 << 10
	job.MaxAttempts = 8
	return job
}

// TestSynTextChaosSmoke is the CI chaos-smoke matrix: SynText across
// seed × fail-rate cells, including one node kill, each asserting success
// and byte-identical output versus the fault-free baseline.
func TestSynTextChaosSmoke(t *testing.T) {
	cref, corpus := newFTCluster(t, nil)
	ref, err := mr.RunReference(cref, ftSynJob(corpus, "syn-ref"))
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	cells := []struct {
		name string
		cfg  chaos.Config
	}{
		{"seed2-fail10", chaos.Config{Seed: 2, FailRate: 0.10, KillNode: -1}},
		{"seed8-fail20", chaos.Config{Seed: 8, FailRate: 0.20, KillNode: -1}},
		// Delay floor for the same reason as the WordCount kill cell: the
		// victim must be scheduled work before it can die.
		{"seed6-fail10-kill1", chaos.Config{Seed: 6, FailRate: 0.10, KillNode: 1, KillAfterOps: 40,
			DelayRate: 1, Delay: 2 * time.Millisecond}},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			cfg := cell.cfg
			c, corpus := newFTCluster(t, &cfg)
			res, err := mr.Run(c, ftSynJob(corpus, "syn-"+cell.name))
			if err != nil {
				t.Fatalf("run under chaos %+v: %v\nchaos log: %v", cfg, err, c.Chaos.Log())
			}
			assertOutputsMatch(t, c, res, ref)
			assertCounterIdentity(t, res)
			if cfg.KillNode >= 0 && (len(res.DeadNodes) != 1 || res.DeadNodes[0] != cfg.KillNode) {
				t.Errorf("dead nodes = %v, want [%d]", res.DeadNodes, cfg.KillNode)
			}
		})
	}
}

// TestFaultScheduleIsSeedDeterministic runs the same chaos cell twice on
// fresh clusters: the set of injected faults depends only on the seed and
// the (task, attempt) pairs, so with retries converging the same way the
// two runs must agree on output and on how many attempts each phase took.
func TestFaultScheduleIsSeedDeterministic(t *testing.T) {
	run := func() (*mr.Result, map[int][]byte) {
		cfg := chaos.Config{Seed: 21, FailRate: 0.15, KillNode: -1}
		c, corpus := newFTCluster(t, &cfg)
		res, err := mr.Run(c, ftJob(corpus, "wc-det"))
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		out := readOutputs(t, c, res)
		return res, out
	}
	res1, out1 := run()
	res2, out2 := run()
	for p := range out1 {
		if !bytes.Equal(out1[p], out2[p]) {
			t.Errorf("partition %d differs across identical chaos runs", p)
		}
	}
	// Retries reroll per (task, attempt) regardless of node placement, so
	// the retry count — not just the output — is reproducible.
	if res1.TaskRetries != res2.TaskRetries {
		t.Errorf("retries differ across identical chaos runs: %d vs %d", res1.TaskRetries, res2.TaskRetries)
	}
	if res1.FailedAttempts != res2.FailedAttempts {
		t.Errorf("failed attempts differ: %d vs %d", res1.FailedAttempts, res2.FailedAttempts)
	}
}

// TestLostMapOutputRecovery kills a node from inside the first reduce()
// call — after every map output has committed — so reducers find the dead
// node's committed map outputs gone and the runner must re-run them.
// NumReducers exceeds the cluster's reduce slots, so a second wave of
// reduce attempts is guaranteed to start after the kill.
func TestLostMapOutputRecovery(t *testing.T) {
	const victim = 1
	cfg := chaos.Config{Seed: 1, KillNode: -1}
	c, corpus := newFTCluster(t, &cfg)

	reducers := 2 * ftNodes * 2 // two waves of reduce attempts
	refC, refCorpus := newFTCluster(t, nil)
	refJob := ftJob(refCorpus, "wc-recovery-ref")
	refJob.NumReducers = reducers
	ref, err := mr.RunReference(refC, refJob)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	job := ftJob(corpus, "wc-recovery")
	job.NumReducers = reducers
	var once sync.Once
	baseReducer := job.NewReducer
	job.NewReducer = func() mr.Reducer {
		inner := baseReducer()
		return mr.ReducerFunc(func(key []byte, values mr.ValueIter, out mr.Collector) error {
			once.Do(func() { c.Chaos.Kill(victim) })
			return inner.Reduce(key, values, out)
		})
	}

	res, err := mr.Run(c, job)
	if err != nil {
		t.Fatalf("run with mid-reduce node kill: %v", err)
	}
	assertOutputsMatch(t, c, res, ref)
	assertCounterIdentity(t, res)
	if len(res.DeadNodes) != 1 || res.DeadNodes[0] != victim {
		t.Fatalf("dead nodes = %v, want [%d]", res.DeadNodes, victim)
	}
	if res.RecoveredMapTasks == 0 {
		t.Errorf("node %d died after committing map outputs but no map tasks were recovered (map attempts %d, retries %d)",
			victim, res.MapAttempts, res.TaskRetries)
	}
}

// TestSpeculationOnManufacturedStraggler delays a large fraction of
// attempts so the straggler monitor has clear targets, and checks that
// backups launch and the output stays correct whichever copy wins.
func TestSpeculationOnManufacturedStraggler(t *testing.T) {
	ref := ftReference(t)
	// The delay must dwarf an undelayed attempt's duration even when the
	// race detector slows the undelayed work an order of magnitude,
	// otherwise 1.8× the committed median can swallow the manufactured
	// straggler margin and nothing speculates.
	cfg := chaos.Config{Seed: 13, KillNode: -1, DelayRate: 0.4, Delay: 120 * time.Millisecond}
	c, corpus := newFTCluster(t, &cfg)
	job := ftJob(corpus, "wc-spec")
	job.Speculation = true
	// With 40% of the eight map tasks delayed, the default 0.6 quorum is
	// often out of reach while the stragglers sleep; a low quorum lets the
	// monitor act as soon as a couple of fast attempts establish a median.
	job.SpeculationQuorum = 0.25
	res, err := mr.Run(c, job)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	assertOutputsMatch(t, c, res, ref)
	assertCounterIdentity(t, res)
	if stats := c.Chaos.Stats(); stats.Delays == 0 {
		t.Fatalf("no stragglers manufactured at delay rate %v", cfg.DelayRate)
	}
	if res.SpeculativeTasks == 0 {
		t.Errorf("stragglers ran %v behind their peers but no speculative backups launched", cfg.Delay)
	}
	if res.SpeculativeWins > res.SpeculativeTasks {
		t.Errorf("speculative wins %d > speculative launches %d", res.SpeculativeWins, res.SpeculativeTasks)
	}
}

// TestChaosOffIsCleanRun pins the zero-overhead contract's observable
// half: without a chaos config the runner takes exactly one attempt per
// task, retries nothing, sweeps nothing, and reports no FT events.
func TestChaosOffIsCleanRun(t *testing.T) {
	ref := ftReference(t)
	c, corpus := newFTCluster(t, nil)
	res, err := mr.Run(c, ftJob(corpus, "wc-clean"))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	assertOutputsMatch(t, c, res, ref)
	if res.MapAttempts != res.MapTasks || res.ReduceAttempts != res.ReduceTasks {
		t.Errorf("clean run took extra attempts: map %d/%d, reduce %d/%d",
			res.MapAttempts, res.MapTasks, res.ReduceAttempts, res.ReduceTasks)
	}
	for name, v := range map[string]int{
		"retries":     res.TaskRetries,
		"speculative": res.SpeculativeTasks,
		"recovered":   res.RecoveredMapTasks,
		"failed":      res.FailedAttempts,
		"swept":       res.SweptAttempts,
	} {
		if v != 0 {
			t.Errorf("clean run reported %d %s attempts", v, name)
		}
	}
	if len(res.DeadNodes) != 0 || len(res.BlacklistedNodes) != 0 {
		t.Errorf("clean run reported dead %v / blacklisted %v nodes", res.DeadNodes, res.BlacklistedNodes)
	}
}

// TestRetryExhaustionFailsJob pins the failure path: with every attempt
// of every task guaranteed to fail, the job must surface an injected-
// fault error instead of hanging or succeeding.
func TestRetryExhaustionFailsJob(t *testing.T) {
	cfg := chaos.Config{Seed: 2, FailRate: 1.0, KillNode: -1}
	c, corpus := newFTCluster(t, &cfg)
	job := ftJob(corpus, "wc-doomed")
	job.MaxAttempts = 3
	_, err := mr.Run(c, job)
	if err == nil {
		t.Fatal("job succeeded with 100% attempt fail rate")
	}
	if !errors.Is(err, chaos.ErrInjected) {
		t.Errorf("error %q does not wrap chaos.ErrInjected", err)
	}
}
