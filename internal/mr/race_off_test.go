//go:build !race

package mr

// raceEnabled relaxes the zero-allocation assertions under -race, whose
// instrumentation inflates allocation counts.
const raceEnabled = false
