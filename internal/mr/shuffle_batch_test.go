package mr

import (
	"testing"

	"mrtext/internal/kvio"
	"mrtext/internal/metrics"
)

// Batched-fetch-plane unit suite: batch selection must group same-source
// segments under the byte cap, and staging accounting must count wire
// (compressed) bytes consistently — the raw length never leaks into the
// budget, the spill decision, or the counters.

// batchReq builds a queued stage request whose single-partition segment
// claims length n on source node.
func batchReq(src, node int, n int64) stageReq {
	return stageReq{src: src, out: mapOutput{
		node:  node,
		index: kvio.RunIndex{Segments: []kvio.Segment{{Len: n}}},
	}}
}

// batchSrcs extracts the source task ids of a popped batch.
func batchSrcs(batch []stageReq) []int {
	out := make([]int, len(batch))
	for i, r := range batch {
		out[i] = r.src
	}
	return out
}

// TestPopBatchGroupsSameSourceUnderCap pins the selection rule: the head
// is always taken, same-node followers join while the size hints fit the
// cap, everything else stays queued in order.
func TestPopBatchGroupsSameSourceUnderCap(t *testing.T) {
	s := &shuffleService{batchBytes: 25, pend: make([][]stageReq, 1)}
	s.pend[0] = []stageReq{
		batchReq(0, 0, 10),
		batchReq(1, 0, 10),
		batchReq(2, 1, 10), // other source node
		batchReq(3, 0, 10), // same node, but 30 > 25
	}
	batch := s.popBatchLocked(0)
	if got := batchSrcs(batch); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("batch srcs = %v, want [0 1]", got)
	}
	if got := batchSrcs(s.pend[0]); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("kept queue srcs = %v, want [2 3]", got)
	}

	// An oversized head still ships — alone.
	s.batchBytes = 5
	s.pend[0] = []stageReq{batchReq(7, 1, 10), batchReq(8, 1, 1)}
	batch = s.popBatchLocked(0)
	if got := batchSrcs(batch); len(got) != 1 || got[0] != 7 {
		t.Fatalf("oversized-head batch srcs = %v, want [7]", got)
	}
	if got := batchSrcs(s.pend[0]); len(got) != 1 || got[0] != 8 {
		t.Fatalf("kept queue srcs = %v, want [8]", got)
	}
}

// TestStagingAccountsWireBytes pins satellite accounting: with wire
// compression on, every staging byte count is the compressed length. A
// first run learns the wire total; a second run with exactly that budget
// must stage everything in memory with zero spills, even though the raw
// segment bytes exceed the budget.
func TestStagingAccountsWireBytes(t *testing.T) {
	c := newUnitCluster(t, nil)
	outs := writeUnitMapOuts(t, c)
	var rawTotal int64
	for _, out := range outs {
		rawTotal += out.index.TotalBytes()
	}

	svc := newShuffleService(c, unitShuffleJob(1<<20))
	for m, out := range outs {
		svc.offer(m, out)
	}
	waitStagedSegments(t, svc, unitParts*unitMaps)
	svc.close()
	wireTotal := svc.tm.Counter(metrics.CtrShuffleStagedBytes)
	saved := svc.tm.Counter(metrics.CtrShuffleWireSavedBytes)
	if wireTotal >= rawTotal {
		t.Fatalf("wire total %d not below raw total %d; compression missing", wireTotal, rawTotal)
	}
	if saved != rawTotal-wireTotal {
		t.Fatalf("wire-saved counter = %d, want raw-wire = %d", saved, rawTotal-wireTotal)
	}
	if fetches, segs := svc.tm.Counter(metrics.CtrShuffleBatchFetches), svc.tm.Counter(metrics.CtrShuffleBatchSegments); segs != unitParts*unitMaps || fetches < 1 || fetches > segs {
		t.Fatalf("batch counters: %d fetches, %d segments, want 1 <= fetches <= segments == %d",
			fetches, segs, unitParts*unitMaps)
	}

	c2 := newUnitCluster(t, nil)
	outs2 := writeUnitMapOuts(t, c2)
	svc2 := newShuffleService(c2, unitShuffleJob(wireTotal))
	defer svc2.close()
	for m, out := range outs2 {
		svc2.offer(m, out)
	}
	waitStagedSegments(t, svc2, unitParts*unitMaps)
	if spills := svc2.tm.Counter(metrics.CtrShuffleStagedSpills); spills != 0 {
		t.Fatalf("%d spills with a budget equal to the wire total %d — staging must be charging raw bytes",
			spills, wireTotal)
	}
	if peak := svc2.buf.peakBytes(); peak > wireTotal {
		t.Fatalf("staging peak %d exceeds the wire-total budget %d", peak, wireTotal)
	}
}
