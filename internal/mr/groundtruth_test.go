package mr

import (
	"bytes"
	"fmt"
	"testing"
)

// TestGroundTruthBlockScan pins the //mrlint:hotpath annotation on
// blockScanner.Next to the real compiler: once the arena is warm, the
// per-line steady state of the batched reader must be allocation-free,
// including refills and partial-line slides (the corpus is scanned with an
// arena far smaller than the split, so every measured batch crosses
// several fill boundaries). DFS block transitions do allocate (replica
// ordering, failover state) but are per-block, not per-line — the corpus
// here is a single block so the scanner's own loop is isolated; the
// ingest benchmark asserts the amortized allocs/record over multi-block
// corpora instead. CI runs this plain and under -race; race
// instrumentation inflates allocation counts, so the ==0 assertion is
// relaxed there (raceEnabled), matching the alloccheck ground-truth
// convention.
func TestGroundTruthBlockScan(t *testing.T) {
	var data bytes.Buffer
	for i := 0; i < 4000; i++ {
		fmt.Fprintf(&data, "record-%04d the quick brown fox jumps over the lazy dog\n", i)
	}
	c := buildFS(t, data.Bytes(), int64(data.Len())) // one block, one split
	splits, err := computeSplits(c.FS, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 1 {
		t.Fatalf("%d splits, want 1", len(splits))
	}
	sc, err := openBlockLines(c.FS, splits[0], 0, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	lines := 0
	step := func() {
		for drained := 0; drained < 200; drained++ {
			_, _, ok, err := sc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("corpus exhausted mid-measurement; grow it")
			}
			lines++
		}
	}
	step() // warm: first fill and arena sizing happen here
	allocs := testing.AllocsPerRun(15, step)
	if allocs != 0 && !raceEnabled {
		t.Errorf("blockScanner.Next steady state: %.2f allocs per 200-line batch, want 0", allocs)
	}
	if lines == 0 {
		t.Fatal("measured zero lines")
	}
}
