package mr

import (
	"strings"
	"testing"

	"mrtext/internal/kvio"
)

func TestSplitByPartition(t *testing.T) {
	recs := []kvio.Record{
		{Part: 0, Key: []byte("a"), Value: []byte("1")},
		{Part: 2, Key: []byte("b"), Value: []byte("2")},
		{Part: 0, Key: []byte("c"), Value: []byte("3")},
	}
	byPart, err := splitByPartition(recs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(byPart[0]) != 2 || len(byPart[1]) != 0 || len(byPart[2]) != 1 {
		t.Fatalf("bad split: %d/%d/%d records", len(byPart[0]), len(byPart[1]), len(byPart[2]))
	}
}

// TestSplitByPartitionError: a record routed outside [0, parts) is a
// partitioner bug and must fail the task, not be silently absorbed into
// partition 0 (which would put keys in the wrong reducer's output).
func TestSplitByPartitionError(t *testing.T) {
	for _, bad := range []int{-1, 2, 99} {
		recs := []kvio.Record{
			{Part: 0, Key: []byte("fine"), Value: []byte("1")},
			{Part: bad, Key: []byte("stray"), Value: []byte("2")},
		}
		_, err := splitByPartition(recs, 2)
		if err == nil {
			t.Fatalf("partition %d of 2 accepted", bad)
		}
		if !strings.Contains(err.Error(), "stray") {
			t.Errorf("error should name the offending key: %v", err)
		}
	}
}
