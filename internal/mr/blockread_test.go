package mr

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// scanSource drains one reader and returns its (offset, line) stream plus
// the final consumed count.
func scanSource(t *testing.T, src lineSource) (lines []string, offsets []int64, consumed int64) {
	t.Helper()
	for {
		off, line, ok, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		lines = append(lines, string(line))
		offsets = append(offsets, off)
	}
	consumed = src.Consumed()
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	return lines, offsets, consumed
}

// requireIdentical asserts the batched scanner produces a byte-identical
// (offset, line, consumed) stream to the serial lineScanner over every
// split of the file, at the given arena chunk size.
func requireIdentical(t *testing.T, data []byte, blockSize int64, chunk int) {
	t.Helper()
	c := buildFS(t, data, blockSize)
	splits, err := computeSplits(c.FS, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	for si, sp := range splits {
		serial, err := openLines(c.FS, sp, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantLines, wantOffs, wantConsumed := scanSource(t, serial)
		batched, err := openBlockLines(c.FS, sp, 0, chunk)
		if err != nil {
			t.Fatal(err)
		}
		gotLines, gotOffs, gotConsumed := scanSource(t, batched)
		if len(gotLines) != len(wantLines) {
			t.Fatalf("split %d (block %d, chunk %d): %d lines batched, %d serial\nbatched %q\nserial  %q",
				si, blockSize, chunk, len(gotLines), len(wantLines), gotLines, wantLines)
		}
		for i := range gotLines {
			if gotLines[i] != wantLines[i] || gotOffs[i] != wantOffs[i] {
				t.Fatalf("split %d (block %d, chunk %d) line %d: batched (%d, %q), serial (%d, %q)",
					si, blockSize, chunk, i, gotOffs[i], gotLines[i], wantOffs[i], wantLines[i])
			}
		}
		if gotConsumed != wantConsumed {
			t.Fatalf("split %d (block %d, chunk %d): consumed %d batched, %d serial",
				si, blockSize, chunk, gotConsumed, wantConsumed)
		}
	}
}

// TestBlockScannerMatchesLineScanner is the tentpole equivalence property:
// over random corpora, block sizes and arena chunk sizes (including chunks
// far smaller than both lines and blocks, which force mid-line refills,
// slides and arena growth), the batched reader's (offset, line, consumed)
// stream is identical to the serial scanner's on every split — the
// one-byte-early discard rule and cross-block line completion included.
func TestBlockScannerMatchesLineScanner(t *testing.T) {
	f := func(seed int64, blockRaw, chunkRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		blockSize := int64(blockRaw%61) + 3 // 3..63: boundaries everywhere
		chunk := int(chunkRaw%40) + 1       // 1..40: forces growth and tail reads
		var data bytes.Buffer
		n := 10 + rng.Intn(50)
		for i := 0; i < n; i++ {
			data.WriteString(fmt.Sprintf("line%02d-%s", i, bytes.Repeat([]byte{'x'}, rng.Intn(20))))
			if rng.Intn(8) > 0 || i == n-1 && rng.Intn(2) == 0 {
				data.WriteByte('\n') // occasionally omit, incl. at EOF
			}
		}
		requireIdentical(t, data.Bytes(), blockSize, chunk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBlockScannerEdgeCorpora pins the curated boundary cases from the
// lineScanner suite against the batched reader at adversarial chunk sizes.
func TestBlockScannerEdgeCorpora(t *testing.T) {
	long := bytes.Repeat([]byte("z"), 100)
	corpora := [][]byte{
		[]byte("alpha\nbeta\ngamma\ndelta\n"),
		[]byte("first\nsecond\nlast-no-newline"),
		[]byte("a\n\n\nb\n"),
		[]byte("hello\nworld\n"),
		append([]byte("ab\n"), append(long, '\n')...), // line spanning many blocks
		[]byte("\n"),
		[]byte("x"),
		bytes.Repeat([]byte("\n"), 9),
	}
	for _, data := range corpora {
		for _, blockSize := range []int64{3, 5, 6, 7, 64} {
			for _, chunk := range []int{1, 2, 16, 64 << 10} {
				requireIdentical(t, data, blockSize, chunk)
			}
		}
	}
}

// TestBlockScannerDefaultChunk runs the equivalence at the production
// chunk size, where whole splits fit in one arena read.
func TestBlockScannerDefaultChunk(t *testing.T) {
	var data bytes.Buffer
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&data, "record-%04d %s\n", i, bytes.Repeat([]byte("w"), rng.Intn(30)))
	}
	requireIdentical(t, data.Bytes(), 4<<10, 1<<20)
}

// TestBlockScannerArenaAliasing pins the ownership contract: the line
// returned by Next aliases the scanner's arena (no per-line copy).
func TestBlockScannerArenaAliasing(t *testing.T) {
	c := buildFS(t, []byte("aaaa\nbbbb\n"), 64)
	splits, err := computeSplits(c.FS, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := openBlockLines(c.FS, splits[0], 0, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	_, line, ok, err := sc.Next()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if &line[0] != &sc.buf[0] {
		t.Error("returned line does not alias the arena")
	}
}
