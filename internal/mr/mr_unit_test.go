package mr

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mrtext/internal/cluster"
	"mrtext/internal/core/spillmatch"
	"mrtext/internal/metrics"
	"mrtext/internal/serde"
)

func TestDefaultPartitionerRange(t *testing.T) {
	keys := []string{"", "a", "hello", "world", "日本語", strings.Repeat("x", 1000)}
	for _, parts := range []int{1, 2, 7, 64} {
		for _, k := range keys {
			p := DefaultPartitioner([]byte(k), parts)
			if p < 0 || p >= parts {
				t.Errorf("partition %d for %q over %d parts", p, k, parts)
			}
		}
	}
	// Deterministic.
	if DefaultPartitioner([]byte("key"), 16) != DefaultPartitioner([]byte("key"), 16) {
		t.Error("partitioner not deterministic")
	}
}

func TestJobWithDefaultsValidation(t *testing.T) {
	mkJob := func(mutate func(*Job)) *Job {
		j := &Job{
			Name:       "j",
			Inputs:     []string{"in"},
			NewMapper:  func() Mapper { return MapperFunc(func(int64, []byte, Collector) error { return nil }) },
			NewReducer: func() Reducer { return ReducerFunc(func([]byte, ValueIter, Collector) error { return nil }) },
		}
		if mutate != nil {
			mutate(j)
		}
		return j
	}
	if _, err := mkJob(func(j *Job) { j.Name = "" }).withDefaults(4); err == nil {
		t.Error("nameless job accepted")
	}
	if _, err := mkJob(func(j *Job) { j.Inputs = nil }).withDefaults(4); err == nil {
		t.Error("inputless job accepted")
	}
	if _, err := mkJob(func(j *Job) { j.NewMapper = nil }).withDefaults(4); err == nil {
		t.Error("mapperless job accepted")
	}
	if _, err := mkJob(func(j *Job) { j.FreqBuf = &FreqBufConfig{K: 0} }).withDefaults(4); err == nil {
		t.Error("freqbuf K=0 accepted")
	}
	job, err := mkJob(nil).withDefaults(4)
	if err != nil {
		t.Fatal(err)
	}
	if job.NumReducers != 4 || job.SpillBufferBytes != 4<<20 ||
		job.StaticSpillPercent != spillmatch.DefaultStaticPercent ||
		job.Partition == nil || job.OutputPrefix == "" || job.filePrefix == "" {
		t.Errorf("defaults not applied: %+v", job)
	}
	// Unique file prefixes across runs.
	job2, _ := mkJob(nil).withDefaults(4)
	if job.filePrefix == job2.filePrefix {
		t.Error("file prefixes collide across runs")
	}
	// MemFraction repair.
	job3, err := mkJob(func(j *Job) { j.FreqBuf = &FreqBufConfig{K: 10, MemFraction: 5} }).withDefaults(4)
	if err != nil {
		t.Fatal(err)
	}
	if job3.FreqBuf.MemFraction != 0.3 {
		t.Errorf("MemFraction %g", job3.FreqBuf.MemFraction)
	}
}

func TestNewControllerSelection(t *testing.T) {
	j := &Job{SpillMatcher: false, StaticSpillPercent: 0.7}
	if _, ok := j.newController().(*spillmatch.Static); !ok {
		t.Error("baseline job did not get a static controller")
	}
	j.SpillMatcher = true
	if _, ok := j.newController().(*spillmatch.Matcher); !ok {
		t.Error("spill-matcher job did not get a Matcher")
	}
	// Per-task controllers are independent instances.
	if j.newController() == j.newController() {
		t.Error("controllers shared across tasks")
	}
}

func TestMapperErrorPropagates(t *testing.T) {
	c, err := cluster.New(cluster.Fast(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FS.WriteFile("in", []byte("line one\nline two\n")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mapper exploded")
	job := &Job{
		Name:   "failing",
		Inputs: []string{"in"},
		NewMapper: func() Mapper {
			return MapperFunc(func(off int64, line []byte, out Collector) error { return boom })
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(k []byte, v ValueIter, out Collector) error { return nil })
		},
	}
	if _, err := Run(c, job); err == nil || !errors.Is(err, boom) {
		t.Errorf("mapper error not propagated: %v", err)
	}
}

func TestReducerErrorPropagates(t *testing.T) {
	c, err := cluster.New(cluster.Fast(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FS.WriteFile("in", []byte("word\n")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("reducer exploded")
	job := &Job{
		Name:   "failing-reduce",
		Inputs: []string{"in"},
		NewMapper: func() Mapper {
			return MapperFunc(func(off int64, line []byte, out Collector) error {
				return out.Collect(line, serde.EncodeInt64(1))
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(k []byte, v ValueIter, out Collector) error { return boom })
		},
	}
	if _, err := Run(c, job); err == nil || !errors.Is(err, boom) {
		t.Errorf("reducer error not propagated: %v", err)
	}
}

func TestSchedulerLocalityAndStealing(t *testing.T) {
	splits := []Split{
		{Hosts: []int{0}}, {Hosts: []int{0}}, {Hosts: []int{0}},
		{Hosts: []int{1}},
		{Hosts: []int{99}}, // orphan: bogus host
	}
	s := newScheduler(2, splits)
	// Node 1 takes its local task first.
	task, src, ok := s.take(1)
	if !ok || task != 3 || src != takeLocal {
		t.Errorf("node 1 first take: %d %v %v", task, src, ok)
	}
	// Then the orphan.
	task, src, ok = s.take(1)
	if !ok || task != 4 || src != takeOrphan {
		t.Errorf("node 1 orphan take: %d %v %v", task, src, ok)
	}
	// Then steals from node 0's tail.
	task, src, ok = s.take(1)
	if !ok || task != 2 || src != takeStolen {
		t.Errorf("node 1 steal: %d %v %v", task, src, ok)
	}
	// Node 0 keeps its head.
	task, src, ok = s.take(0)
	if !ok || task != 0 || src != takeLocal {
		t.Errorf("node 0 take: %d %v %v", task, src, ok)
	}
	s.take(0)
	if _, _, ok := s.take(0); ok {
		t.Error("take from drained scheduler succeeded")
	}
	// Placement counters: 3 local (tasks 3, 0, 1), 1 stolen (task 2);
	// the orphan counts toward neither.
	if local, stolen := s.placement(); local != 3 || stolen != 1 {
		t.Errorf("placement: local=%d stolen=%d, want 3/1", local, stolen)
	}
	// Abort stops handing out work.
	s2 := newScheduler(1, splits[:1])
	s2.abort()
	if _, _, ok := s2.take(0); ok {
		t.Error("take after abort succeeded")
	}
}

func TestSortTaskReports(t *testing.T) {
	reports := []TaskReport{
		{Kind: "reduce", Index: 1},
		{Kind: "map", Index: 2},
		{Kind: "reduce", Index: 0},
		{Kind: "map", Index: 0},
	}
	SortTaskReports(reports)
	want := []struct {
		kind string
		idx  int
	}{{"map", 0}, {"map", 2}, {"reduce", 0}, {"reduce", 1}}
	for i, w := range want {
		if reports[i].Kind != w.kind || reports[i].Index != w.idx {
			t.Fatalf("pos %d: %s/%d", i, reports[i].Kind, reports[i].Index)
		}
	}
}

func TestResultIdleFractions(t *testing.T) {
	mk := func(wall, waitMap, waitSup time.Duration) TaskReport {
		tm := metrics.NewTaskMetrics()
		tm.AddWaitMap(waitMap)
		tm.AddWaitSupport(waitSup)
		return TaskReport{Kind: "map", Wall: wall, Metrics: tm.Snapshot()}
	}
	res := &Result{Tasks: []TaskReport{
		mk(10*time.Second, 2*time.Second, 4*time.Second),
		mk(10*time.Second, 4*time.Second, 0),
		{Kind: "reduce", Wall: time.Hour}, // ignored
	}}
	if got := res.MapIdleFraction(); got != 0.3 {
		t.Errorf("map idle %g", got)
	}
	if got := res.SupportIdleFraction(); got != 0.2 {
		t.Errorf("support idle %g", got)
	}
	var empty Result
	if empty.MapIdleFraction() != 0 {
		t.Error("empty result idle fraction non-zero")
	}
}

func TestReduceOutputName(t *testing.T) {
	if got := ReduceOutputName("job-out", 3); got != "job-out-r-00003" {
		t.Errorf("got %q", got)
	}
}

func TestRunWithSingleReducer(t *testing.T) {
	c, err := cluster.New(cluster.Fast(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FS.WriteFile("in", []byte("b\na\nb\n")); err != nil {
		t.Fatal(err)
	}
	job := &Job{
		Name:   "single-r",
		Inputs: []string{"in"},
		NewMapper: func() Mapper {
			return MapperFunc(func(off int64, line []byte, out Collector) error {
				if len(line) == 0 {
					return nil
				}
				return out.Collect(line, serde.EncodeInt64(1))
			})
		},
		NewReducer: func() Reducer {
			return ReducerFunc(func(k []byte, vals ValueIter, out Collector) error {
				var n int64
				for {
					v, ok, err := vals.Next()
					if err != nil {
						return err
					}
					if !ok {
						break
					}
					d, err := serde.DecodeInt64(v)
					if err != nil {
						return err
					}
					n += d
				}
				return out.Collect(k, serde.EncodeInt64(n))
			})
		},
		Format: func(k, v []byte) ([]byte, error) {
			n, err := serde.DecodeInt64(v)
			if err != nil {
				return nil, err
			}
			return []byte(string(k) + ":" + string(rune('0'+n)) + "\n"), nil
		},
		NumReducers: 1,
	}
	res, err := Run(c, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 {
		t.Fatalf("outputs %v", res.Outputs)
	}
	data, err := c.FS.ReadFile(res.Outputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a:1\nb:2\n" {
		t.Errorf("output %q", data)
	}
	if res.MapTasks < 1 || res.ReduceTasks != 1 || res.Wall <= 0 {
		t.Errorf("result metadata %+v", res)
	}
}
