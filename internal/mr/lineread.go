package mr

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"mrtext/internal/dfs"
)

// Split is one map task's input slice: a byte range of a DFS file,
// typically one block, with the nodes holding that block.
type Split struct {
	File   string
	Offset int64
	Len    int64
	Hosts  []int // nodes holding a local replica
}

// computeSplits turns every block of every input file into a Split.
func computeSplits(fs *dfs.DFS, inputs []string) ([]Split, error) {
	var splits []Split
	for _, in := range inputs {
		blocks, err := fs.Blocks(in)
		if err != nil {
			return nil, fmt.Errorf("mr: input %q: %w", in, err)
		}
		for _, b := range blocks {
			splits = append(splits, Split{File: in, Offset: b.Offset, Len: b.Len, Hosts: b.Replicas})
		}
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("mr: inputs contain no data")
	}
	return splits, nil
}

// lineScanner iterates the lines belonging to one split with the standard
// split-boundary rule: a line belongs to the split that contains its first
// byte. To decide whether the split's first byte starts a line, the scanner
// opens one byte early and discards through the first newline — if that
// preceding byte was itself a newline the discard consumes exactly one
// byte, otherwise it consumes the tail of a line owned by the previous
// split. Conversely the scanner finishes a line that starts inside the
// split even when it extends past the split end (DFS reads continue into
// the next block transparently).
type lineScanner struct {
	r        *bufio.Reader
	rc       io.ReadCloser
	pos      int64 // file offset of the next unread byte
	splitEnd int64
	consumed int64 // bytes consumed that count against this split
	done     bool
	line     []byte // owned line buffer, reused across Next calls
}

// openLines positions a scanner at the start of the first line owned by the
// split, reading as the given node.
func openLines(fs *dfs.DFS, split Split, node int) (*lineScanner, error) {
	start := split.Offset
	seekBack := int64(0)
	if start > 0 {
		seekBack = 1
	}
	rc, err := fs.OpenFrom(split.File, node, start-seekBack)
	if err != nil {
		return nil, fmt.Errorf("mr: opening split %s@%d: %w", split.File, split.Offset, err)
	}
	s := &lineScanner{
		r:        bufio.NewReaderSize(rc, 64<<10),
		rc:       rc,
		pos:      start - seekBack,
		splitEnd: split.Offset + split.Len,
	}
	if start > 0 {
		// Discard through the first newline at or after start-1.
		skipped, err := s.r.ReadBytes('\n')
		s.pos += int64(len(skipped))
		if err == io.EOF {
			s.done = true
		} else if err != nil {
			return nil, fmt.Errorf("mr: skipping partial line of split %s@%d: %w",
				split.File, split.Offset, errors.Join(err, rc.Close()))
		}
	}
	return s, nil
}

// Next returns the next owned line (without its trailing newline) and its
// starting offset. ok=false signals end of split. The returned slice is
// the scanner's reused buffer and is valid only until the next Next call;
// callers copy what they keep (the map loop emits into the spill buffer's
// arena, which copies).
//
//mrlint:hotpath
func (s *lineScanner) Next() (off int64, line []byte, ok bool, err error) {
	if s.done || s.pos >= s.splitEnd {
		return 0, nil, false, nil
	}
	off = s.pos
	// ReadSlice into a reused buffer instead of ReadBytes: ReadBytes
	// returns a fresh copy per call, which was the map loop's last
	// per-line allocation.
	s.line = s.line[:0]
	var rerr error
	for {
		var frag []byte
		frag, rerr = s.r.ReadSlice('\n')
		s.line = append(s.line, frag...)
		if rerr != bufio.ErrBufferFull {
			break
		}
	}
	n := int64(len(s.line))
	s.pos += n
	s.consumed += n
	if rerr == io.EOF {
		s.done = true
		if len(s.line) == 0 {
			return 0, nil, false, nil
		}
	} else if rerr != nil {
		//mrlint:ignore alloccheck cold path: I/O failure exit, not the per-line loop
		return 0, nil, false, fmt.Errorf("mr: reading line at %d: %w", off, rerr)
	}
	line = s.line
	if len(line) > 0 && line[len(line)-1] == '\n' {
		line = line[:len(line)-1]
	}
	return off, line, true, nil
}

// Consumed reports the bytes this split has consumed so far (used to
// extrapolate the expected record count for the frequency-buffering
// profiler).
func (s *lineScanner) Consumed() int64 { return s.consumed }

// Close releases the underlying DFS stream.
func (s *lineScanner) Close() error { return s.rc.Close() }
