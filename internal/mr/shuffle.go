package mr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mrtext/internal/cluster"
	"mrtext/internal/kvio"
	"mrtext/internal/metrics"
	"mrtext/internal/trace"
)

// This file is the pipelined shuffle. Each reduce partition gets a small
// pool of copier goroutines that fetch the partition's segments of
// committed map outputs while the map phase is still running (early
// fetch), stage the bytes at the partition's staging node — in a bounded
// memory buffer with backpressure, overflowing to the staging node's disk
// when the budget is exhausted — and hand staged segments to reduce
// attempts. A segment that was never staged (fetch raced a node death,
// the service was disabled, the copier lost to the reduce phase) is
// direct-fetched exactly like the serial shuffle, so the pipelined path
// never changes job output.
//
// The fetch plane is batched, compressed, and governed (DESIGN §10):
//
//   - Batching: a copier visiting a source node drains all of that node's
//     queued segments for its partition in one fabric transfer, up to
//     Job.ShuffleBatchBytes, amortizing the per-transfer fabric latency
//     that made fine-grained fan-out pay one round trip per segment.
//   - Wire compression: segments of uncompressed map outputs are
//     transcoded to kvio's prefix-compressed run format before the
//     staging hop, and stay compressed — on the wire, in the staging
//     budget, on the staging disk, and across the take hop — until the
//     reduce-side merge decodes them. Every staging byte count (reserve,
//     spill threshold, peak, counters) is the wire length, never the raw
//     length.
//   - Governing: copiers take a token from the contention-aware governor
//     (governor.go) before each batch, so fan-out backs off while the map
//     phase is fabric-hot and ramps up as maps drain.

// stagingReserveWait bounds how long a copier waits for staging-buffer
// space before overflowing the segment to the staging node's disk. The
// wait is the backpressure; the overflow keeps copiers from deadlocking
// against reducers that have not started consuming yet.
const stagingReserveWait = 2 * time.Millisecond

// stagingBuffer bounds the memory held by staged shuffle segments.
// Copiers reserve space before keeping fetched bytes in memory and
// release it when the partition is done; close wakes every waiter.
type stagingBuffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	budget int64
	used   int64
	peak   int64
	closed bool
}

func newStagingBuffer(budget int64) *stagingBuffer {
	b := &stagingBuffer{budget: budget}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// reserve claims n bytes of staging budget, waiting up to maxWait for
// space (maxWait < 0 waits indefinitely, 0 never waits). ok is false when
// n exceeds the whole budget, the buffer is closed, or the wait expires
// first; waited is the time spent blocked for space either way, which the
// caller attributes to backpressure (granted) or stall (expired).
func (b *stagingBuffer) reserve(n int64, maxWait time.Duration) (ok bool, waited time.Duration) {
	if n > b.budget {
		return false, 0
	}
	expired := false
	var timer *time.Timer
	var waitStart time.Time
	b.mu.Lock()
	defer b.mu.Unlock()
	defer func() {
		if !waitStart.IsZero() {
			waited = time.Since(waitStart)
		}
	}()
	for !b.closed && b.used+n > b.budget {
		if maxWait == 0 {
			return false, 0
		}
		if waitStart.IsZero() {
			waitStart = time.Now()
		}
		if maxWait > 0 && timer == nil {
			timer = time.AfterFunc(maxWait, func() {
				b.mu.Lock()
				expired = true
				b.mu.Unlock()
				b.cond.Broadcast()
			})
			defer timer.Stop()
		}
		if expired {
			return false, 0
		}
		b.cond.Wait()
	}
	if b.closed {
		return false, 0
	}
	b.used += n
	if b.used > b.peak {
		b.peak = b.used
	}
	return true, 0
}

// release returns n reserved bytes to the budget.
func (b *stagingBuffer) release(n int64) {
	if n == 0 {
		return
	}
	b.mu.Lock()
	b.used -= n
	b.cond.Broadcast()
	b.mu.Unlock()
}

// close fails all pending and future reservations.
func (b *stagingBuffer) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// peakBytes returns the buffer's occupancy high-water mark.
func (b *stagingBuffer) peakBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// stageReq asks a partition's copiers to stage one committed map output's
// segment.
type stageReq struct {
	src int // source map task index
	out mapOutput
}

// stagedSeg is one fetched segment parked at its partition's staging home:
// raw bytes in memory inside the budget, or a file on the home disk.
type stagedSeg struct {
	data       []byte // in-memory copy; nil when overflowed to disk
	file       string // staging file on the home node's disk when data == nil
	len        int64
	compressed bool
}

// shuffleService runs the job-wide copier pools. All methods are nil-safe
// so the serial-shuffle configuration can skip every call site.
type shuffleService struct {
	c          *cluster.Cluster
	tr         *trace.Tracer
	prefix     string
	copiers    int
	batchBytes int64
	rawWire    bool
	gov        *copierGovernor
	buf        *stagingBuffer
	// tm is the service's own metrics. Staging work belongs to the job,
	// not to any single attempt — an attempt's report is discarded when it
	// fails or loses a commit race, which would silently drop counts — so
	// the runner merges this snapshot into the job aggregate exactly once.
	tm *metrics.TaskMetrics
	// hists is the owning job's histogram set (per-job under a service,
	// registry-backed for one-shot runs).
	hists   *Hists
	mapDone atomic.Bool

	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool
	pend     [][]stageReq         // per-partition staging queue
	staged   []map[int]*stagedSeg // per-partition staged segments by map task
	released []bool               // partition committed; staging dropped
	wg       sync.WaitGroup
}

func newShuffleService(c *cluster.Cluster, job *Job) *shuffleService {
	parts := job.NumReducers
	s := &shuffleService{
		c:          c,
		tr:         job.Trace,
		prefix:     job.filePrefix,
		copiers:    job.ShuffleCopiers,
		batchBytes: job.ShuffleBatchBytes,
		rawWire:    job.ShuffleRawWire,
		buf:        newStagingBuffer(job.ShuffleBufferBytes),
		tm:         metrics.NewTaskMetrics(),
		hists:      job.Hists,
		pend:       make([][]stageReq, parts),
		staged:     make([]map[int]*stagedSeg, parts),
		released:   make([]bool, parts),
	}
	s.cond = sync.NewCond(&s.mu)
	if !job.ShuffleUngoverned {
		s.gov = newCopierGovernor(1, job.ShuffleCopiers*parts, c.Net.InFlight)
	}
	for p := 0; p < parts; p++ {
		s.staged[p] = make(map[int]*stagedSeg)
		for ci := 0; ci < s.copiers; ci++ {
			s.wg.Add(1)
			go s.copierLoop(p, ci)
		}
	}
	return s
}

// home is the staging node for a partition. The reduce scheduler prefers
// placing the partition's reduce attempts on the same node, making the
// staged hand-off a free local read in the common case.
func (s *shuffleService) home(part int) int {
	return part % s.c.Nodes()
}

// offer tells every partition's copier pool that a map task's output is
// committed at out. Called by the runner on each map commit (including
// lost-output recovery re-runs). A partition that already staged this
// source skips it; a rare duplicate racing an in-flight copier is
// discarded at staging time.
func (s *shuffleService) offer(src int, out mapOutput) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	for part := range s.pend {
		if s.released[part] || s.staged[part][src] != nil {
			continue
		}
		s.pend[part] = append(s.pend[part], stageReq{src: src, out: out})
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// copierLoop is one copier of one partition's pool: it drains the
// partition's staging queue in batches until the partition is released or
// the service closes. Each batch is gated on a governor token, acquired
// after work is known to be pending but before any disk or fabric use, so
// parked time is measured demand, never idle-queue time.
func (s *shuffleService) copierLoop(part, ci int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && !s.released[part] && len(s.pend[part]) == 0 {
			s.cond.Wait()
		}
		if s.closed || s.released[part] {
			s.mu.Unlock()
			return
		}
		srcHint := s.pend[part][0].src
		s.mu.Unlock()

		granted, parked := s.gov.acquire()
		if parked > 0 {
			s.tm.Inc(metrics.CtrShuffleGovThrottles, 1)
			s.tm.Inc(metrics.CtrShuffleGovWaitNS, int64(parked))
			s.tr.Complete(trace.KindWaitGovernor, trace.LaneReduce,
				s.home(part), srcHint, s.c.ReduceSlots()+ci, time.Now().Add(-parked), parked)
		}

		// Re-check under the lock: a sibling copier may have drained the
		// queue (or the partition may have been released) while parked.
		s.mu.Lock()
		if s.closed || s.released[part] || len(s.pend[part]) == 0 {
			done := s.closed || s.released[part]
			s.mu.Unlock()
			if granted {
				s.gov.release()
			}
			if done {
				return
			}
			continue
		}
		batch := s.popBatchLocked(part)
		s.mu.Unlock()
		s.stageBatch(part, ci, batch)
		if granted {
			s.gov.release()
		}
	}
}

// popBatchLocked removes and returns the next copier batch: the head of
// the partition's queue plus every queued segment from the same source
// node that fits under the batch byte cap (the head is always taken, even
// oversized). Caller holds s.mu.
func (s *shuffleService) popBatchLocked(part int) []stageReq {
	q := s.pend[part]
	head := q[0]
	batch := []stageReq{head}
	total := segWireHint(head, part)
	var keep []stageReq
	for _, r := range q[1:] {
		if hint := segWireHint(r, part); r.out.node == head.out.node && total+hint <= s.batchBytes {
			batch = append(batch, r)
			total += hint
		} else {
			keep = append(keep, r)
		}
	}
	s.pend[part] = keep
	return batch
}

// segWireHint estimates a queued segment's wire size from its on-disk
// length — the only size known before the fetch (transcoding may shrink
// it further).
func segWireHint(r stageReq, part int) int64 {
	if part < 0 || part >= len(r.out.index.Segments) {
		return 0
	}
	return r.out.index.Segments[part].Len
}

// fetchedSeg is one batch member read from its source disk, possibly
// transcoded to the compressed wire format.
type fetchedSeg struct {
	req        stageReq
	data       []byte
	compressed bool
}

// stageBatch fetches a batch of same-source segments to the partition's
// staging home in one fabric transfer, compressing uncompressed segments
// for the wire first. Staging stays best-effort: a segment that fails to
// read is dropped from the batch, a failed transfer abandons the whole
// batch, and reduce attempts direct-fetch whatever was not staged.
func (s *shuffleService) stageBatch(part, ci int, batch []stageReq) {
	home := s.home(part)
	copierSlot := s.c.ReduceSlots() + ci
	span := s.tr.StartAttempt(trace.KindShuffleCopy, trace.LaneReduce, home, batch[0].src, copierSlot, part)
	var (
		segs    []fetchedSeg
		wire    int64 // total bytes as they will cross the fabric
		raw     int64 // total bytes as they sit on the source disks
		records int64
	)
	for _, req := range batch {
		if part < 0 || part >= len(req.out.index.Segments) {
			continue
		}
		data, err := kvio.ReadSegment(s.c.Disks[req.out.node], req.out.index, part)
		if err != nil {
			continue
		}
		f := fetchedSeg{req: req, data: data, compressed: req.out.index.Compressed}
		raw += int64(len(data))
		if !f.compressed && !s.rawWire && len(data) > 0 {
			// Keep the raw bytes when transcoding does not pay: tiny
			// segments (a handful of records at high fan-out) can expand
			// by a frame byte per record.
			if enc, cerr := kvio.CompressSegment(data); cerr == nil && len(enc) < len(data) {
				f.data, f.compressed = enc, true
			}
		}
		wire += int64(len(f.data))
		records += req.out.index.Segments[part].Records
		segs = append(segs, f)
	}
	if len(segs) == 0 {
		span.End()
		return
	}
	if src := segs[0].req.out.node; wire > 0 && src != home {
		t0 := time.Now()
		err := s.c.Net.Transfer(src, home, wire)
		d := time.Since(t0)
		s.tm.Inc(metrics.CtrShuffleFabricWaitNS, int64(d))
		s.tr.Complete(trace.KindWaitFabric, trace.LaneReduce, home, batch[0].src, copierSlot, t0, d)
		if err != nil {
			span.End()
			return
		}
	}
	s.tm.Inc(metrics.CtrShuffleBatchFetches, 1)
	s.tm.Inc(metrics.CtrShuffleBatchSegments, int64(len(segs)))
	if saved := raw - wire; saved > 0 {
		s.tm.Inc(metrics.CtrShuffleWireSavedBytes, saved)
	}
	var staged int64
	for _, f := range segs {
		if s.stageOne(part, home, copierSlot, f) {
			staged += int64(len(f.data))
		}
	}
	span.EndCounts(records, staged)
}

// stageOne parks one fetched segment at the staging home: in the memory
// budget when a reservation lands, otherwise spilled to the home disk.
// The wire length — compressed when transcoding shrank the segment — is
// the one size used for the reservation, the spill decision, and every
// staging counter, so budget accounting never mixes raw and compressed
// byte counts. Reports whether the segment ended up staged.
func (s *shuffleService) stageOne(part, home, copierSlot int, f fetchedSeg) bool {
	st := &stagedSeg{len: int64(len(f.data)), compressed: f.compressed}
	reserveStart := time.Now()
	ok, waited := s.buf.reserve(st.len, stagingReserveWait)
	if waited > 0 {
		s.tm.Inc(metrics.CtrShuffleStagingWaitNS, int64(waited))
		s.tr.Complete(trace.KindWaitStaging, trace.LaneReduce, home, f.req.src, copierSlot, reserveStart, waited)
	}
	if ok {
		if waited > 0 {
			s.hists.StagingWait.Record(int64(waited))
		}
		st.data = f.data
	} else {
		if waited > 0 {
			s.hists.Stall.Record(int64(waited))
		}
		name := stagedSegName(s.prefix, part, f.req.src)
		if err := s.writeStaged(home, name, f.data); err != nil {
			return false
		}
		st.file = name
		s.tm.Inc(metrics.CtrShuffleStagedSpills, 1)
	}
	s.mu.Lock()
	if s.closed || s.released[part] || s.staged[part][f.req.src] != nil {
		s.mu.Unlock()
		s.discardStaged(home, st)
		return false
	}
	s.staged[part][f.req.src] = st
	s.mu.Unlock()
	s.tm.Inc(metrics.CtrShuffleStagedSegments, 1)
	s.tm.Inc(metrics.CtrShuffleStagedBytes, st.len)
	if !s.mapDone.Load() {
		s.tm.Inc(metrics.CtrShuffleEarlySegments, 1)
	}
	return true
}

// stagedSegName names partition part's staged copy of map task src's
// segment on the staging node's disk.
func stagedSegName(prefix string, part, src int) string {
	return fmt.Sprintf("%s.stage-p%05d-m%05d", prefix, part, src)
}

// writeStaged persists an overflowed segment on the home node's disk.
func (s *shuffleService) writeStaged(home int, name string, raw []byte) error {
	w, err := s.c.Disks[home].Create(name)
	if err != nil {
		return err
	}
	if _, err := w.Write(raw); err != nil {
		return errors.Join(err, w.Close())
	}
	return w.Close()
}

// discardStaged frees one staged segment's budget or disk file. Cleanup
// is best-effort; failures on live nodes count as cleanup errors.
func (s *shuffleService) discardStaged(home int, st *stagedSeg) {
	if st.data != nil {
		s.buf.release(st.len)
		return
	}
	if st.file == "" || s.c.NodeDead(home) {
		return
	}
	if err := s.c.Disks[home].Remove(st.file); err != nil {
		s.tm.Inc(metrics.CtrCleanupErrors, 1)
	}
}

// take hands a staged segment's records to a reduce attempt running on
// node, charging the home→node fabric hop (free when the scheduler placed
// the attempt on the staging node). The staged copy is not consumed —
// duplicate attempts of one partition may each take the same segment.
// ok=false means the segment is not staged or its staging node died; the
// caller direct-fetches from the source. The fabric hop is recorded as a
// wait-fabric span at sp's coordinates — the reduce attempt doing the
// take — so the critical-path analyzer can separate fabric time from
// shuffle I/O inside the attempt's fetch.
func (s *shuffleService) take(part, src, node int, sp spanner) (stream kvio.Stream, rawLen int64, ok bool) {
	if s == nil {
		return nil, 0, false
	}
	s.mu.Lock()
	var st *stagedSeg
	if !s.released[part] && s.staged[part] != nil {
		st = s.staged[part][src]
	}
	s.mu.Unlock()
	if st == nil {
		return nil, 0, false
	}
	home := s.home(part)
	transfer := func() error {
		t0 := time.Now()
		err := s.c.Net.Transfer(home, node, st.len)
		d := time.Since(t0)
		s.tm.Inc(metrics.CtrShuffleFabricWaitNS, int64(d))
		sp.tr.Complete(trace.KindWaitFabric, trace.LaneReduce, sp.node, sp.task, sp.slot, t0, d)
		return err
	}
	if st.data != nil {
		if err := transfer(); err != nil {
			return nil, 0, false
		}
		s.tm.Inc(metrics.CtrShuffleStagedHits, 1)
		return kvio.NewBytesSegmentStream(st.data, st.compressed), st.len, true
	}
	rc, err := s.c.Disks[home].OpenSection(st.file, 0, st.len)
	if err != nil {
		return nil, 0, false
	}
	if err := transfer(); err != nil {
		if cerr := rc.Close(); cerr != nil {
			s.tm.Inc(metrics.CtrCleanupErrors, 1)
		}
		return nil, 0, false
	}
	s.tm.Inc(metrics.CtrShuffleStagedHits, 1)
	return kvio.NewSegmentStream(rc, st.compressed), st.len, true
}

// release drops a committed partition's staging state and stops its
// copiers.
func (s *shuffleService) release(part int) {
	if s == nil {
		return
	}
	home := s.home(part)
	s.mu.Lock()
	if s.released[part] {
		s.mu.Unlock()
		return
	}
	s.released[part] = true
	segs := s.staged[part]
	s.staged[part] = nil
	s.pend[part] = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, st := range segs {
		s.discardStaged(home, st)
	}
}

// markMapDone flips early-fetch accounting off — segments staged from
// here on no longer overlap the map phase — and lifts the copier governor
// to its full token budget.
func (s *shuffleService) markMapDone() {
	if s == nil {
		return
	}
	s.mapDone.Store(true)
	s.gov.markMapDone()
}

// noteMapProgress feeds committed map counts into the copier governor's
// ramp: more committed maps, more concurrent copier batches allowed.
func (s *shuffleService) noteMapProgress(done, total int) {
	if s == nil {
		return
	}
	s.gov.noteProgress(done, total)
}

// noteRetry counts one injected shuffle-fetch fault absorbed by a reduce
// attempt's per-source retry.
func (s *shuffleService) noteRetry() {
	if s == nil {
		return
	}
	s.tm.Inc(metrics.CtrShuffleFetchRetries, 1)
}

// close stops every copier, drops all remaining staging state, and
// records the staging high-water mark. Idempotent.
func (s *shuffleService) close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.gov.close()
	s.buf.close()
	s.wg.Wait()
	s.mu.Lock()
	rem := make(map[int][]*stagedSeg)
	for p := range s.staged {
		for _, st := range s.staged[p] {
			rem[p] = append(rem[p], st)
		}
		s.staged[p] = nil
	}
	s.mu.Unlock()
	for p, segs := range rem {
		for _, st := range segs {
			s.discardStaged(s.home(p), st)
		}
	}
	s.tm.Inc(metrics.CtrShuffleStagingPeak, s.buf.peakBytes())
}

// snapshot returns the service's accumulated counters for the one-time
// merge into the job aggregate. Call only after close.
func (s *shuffleService) snapshot() metrics.Snapshot {
	return s.tm.Snapshot()
}
