package mr_test

import (
	"bytes"
	"testing"

	"mrtext/internal/apps"
	"mrtext/internal/cluster"
	"mrtext/internal/metrics"
	"mrtext/internal/mr"
	"mrtext/internal/textgen"
)

// extensionConfigs covers the §VII future-work extensions, alone and
// stacked on top of the paper's two optimizations.
var extensionConfigs = []struct {
	name  string
	apply func(j *mr.Job)
}{
	{"compress-runs", func(j *mr.Job) { j.CompressRuns = true }},
	{"hash-group", func(j *mr.Job) { j.HashGroupSpills = true }},
	{"kitchen-sink", func(j *mr.Job) {
		j.CompressRuns = true
		j.HashGroupSpills = true
		j.FreqBuf = &mr.FreqBufConfig{K: 100, SampleFraction: 0.05, MemFraction: 0.3, ShareTopK: true}
		j.SpillMatcher = true
	}},
}

// TestExtensionsMatchReference: the correctness invariant extends to the
// future-work features — output stays byte-identical to the sequential
// reference under every extension combination.
func TestExtensionsMatchReference(t *testing.T) {
	c, corpus := newTextCluster(t, 3, 1<<20)
	ref, err := mr.RunReference(c, apps.WordCount(corpus))
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	for _, cfg := range extensionConfigs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			job := apps.WordCount(corpus)
			job.Name = "wcext-" + cfg.name
			job.SpillBufferBytes = 64 << 10
			cfg.apply(job)
			res, err := mr.Run(c, job)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got := readOutputs(t, c, res)
			for p := range ref {
				if !bytes.Equal(got[p], ref[p]) {
					t.Errorf("partition %d differs from reference", p)
				}
			}
		})
	}
}

// TestExtensionsOnJoin: hash grouping is ignored without a combiner;
// compression still applies. Output must match reference.
func TestExtensionsOnJoin(t *testing.T) {
	c, _ := newTextCluster(t, 2, 64<<10)
	mkLogs(t, c)
	ref, err := mr.RunReference(c, apps.AccessLogJoin("visits.log", "rankings.tbl"))
	if err != nil {
		t.Fatal(err)
	}
	job := apps.AccessLogJoin("visits.log", "rankings.tbl")
	job.Name = "joinext"
	job.CompressRuns = true
	job.HashGroupSpills = true // no combiner: must be a no-op, not a crash
	job.SpillBufferBytes = 64 << 10
	res, err := mr.Run(c, job)
	if err != nil {
		t.Fatal(err)
	}
	got := readOutputs(t, c, res)
	for p := range ref {
		if !bytes.Equal(got[p], ref[p]) {
			t.Errorf("partition %d differs from reference", p)
		}
	}
}

// TestCompressionReducesSpillBytes verifies the extension does what it
// claims on text keys: fewer intermediate bytes on disk.
func TestCompressionReducesSpillBytes(t *testing.T) {
	c, corpus := newTextCluster(t, 2, 512<<10)
	run := func(compress bool) int64 {
		job := apps.InvertedIndex(corpus)
		job.Name = "compcmp"
		job.SpillBufferBytes = 128 << 10
		job.CompressRuns = compress
		res, err := mr.Run(c, job)
		if err != nil {
			t.Fatal(err)
		}
		return res.Agg.Counters[metrics.CtrSpillBytes] + res.Agg.Counters[metrics.CtrMergeBytes]
	}
	plain := run(false)
	compressed := run(true)
	if compressed >= plain {
		t.Errorf("compressed intermediate bytes %d ≥ plain %d", compressed, plain)
	}
}

// TestHashGroupReducesSortedRecords: with hash grouping the spill writes
// far fewer records than raw map outputs on a skewed corpus.
func TestHashGroupReducesSortedRecords(t *testing.T) {
	c, corpus := newTextCluster(t, 2, 512<<10)
	job := apps.WordCount(corpus)
	job.Name = "hashgrp"
	job.SpillBufferBytes = 128 << 10
	job.HashGroupSpills = true
	res, err := mr.Run(c, job)
	if err != nil {
		t.Fatal(err)
	}
	spilled := res.Agg.Counters[metrics.CtrSpillRecords]
	emitted := res.Agg.Counters[metrics.CtrMapOutputRecords]
	if spilled*2 > emitted {
		t.Errorf("hash grouping left %d of %d records (no aggregation happened)", spilled, emitted)
	}
}

// mkLogs generates small access-log inputs on the cluster.
func mkLogs(t *testing.T, c *cluster.Cluster) {
	t.Helper()
	logCfg := textgen.LogConfig{URLs: 200, Alpha: 0.8, Seed: 5}
	wv, err := c.FS.Create("visits.log", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := textgen.UserVisits(wv, logCfg, 64<<10); err != nil {
		t.Fatal(err)
	}
	if err := wv.Close(); err != nil {
		t.Fatal(err)
	}
	wr, err := c.FS.Create("rankings.tbl", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := textgen.Rankings(wr, logCfg); err != nil {
		t.Fatal(err)
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
}
