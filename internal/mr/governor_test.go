package mr

import (
	"sync/atomic"
	"testing"
	"time"
)

// Governor unit suite: the token gate must clamp to its floor while the
// fabric carries non-copier traffic, ramp with map progress, open fully
// when the map barrier lifts, and fail acquires on close.

// govLimit reads the governor's current token ceiling.
func govLimit(g *copierGovernor) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.limit
}

// waitGovLimit polls until the limit reaches want (the retune ticker may
// need a few periods to observe a fabric-heat change).
func waitGovLimit(t *testing.T, g *copierGovernor, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for govLimit(g) < want {
		if time.Now().After(deadline) {
			t.Fatalf("limit = %d, want >= %d before deadline", govLimit(g), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGovernorThrottlesWhileFabricHot pins the protection contract: with
// remote transfers in flight beyond the copiers' own, the limit clamps to
// the floor and a second acquire parks until the map barrier lifts.
func TestGovernorThrottlesWhileFabricHot(t *testing.T) {
	var hot atomic.Int64
	hot.Store(10) // synthetic map-phase fabric traffic
	g := newCopierGovernor(1, 8, hot.Load)
	defer g.close()

	granted, waited := g.acquire()
	if !granted || waited != 0 {
		t.Fatalf("first acquire: granted=%v waited=%v, want immediate grant", granted, waited)
	}
	if got := govLimit(g); got != 1 {
		t.Fatalf("hot-fabric limit = %d, want floor 1", got)
	}

	// Progress alone must not raise the limit while the fabric stays hot.
	g.noteProgress(9, 10)
	if got := govLimit(g); got != 1 {
		t.Fatalf("hot-fabric limit after progress = %d, want floor 1", got)
	}

	second := make(chan time.Duration, 1)
	go func() {
		ok, w := g.acquire()
		if !ok {
			w = -1
		}
		second <- w
	}()
	select {
	case <-second:
		t.Fatal("second acquire returned with all tokens held and the fabric hot")
	case <-time.After(20 * time.Millisecond):
	}

	g.markMapDone()
	select {
	case w := <-second:
		if w < 0 {
			t.Fatal("second acquire failed after the map barrier lifted")
		}
		if w == 0 {
			t.Fatal("parked acquire reported zero wait")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second acquire still parked after markMapDone")
	}
	if got := govLimit(g); got != 8 {
		t.Fatalf("post-map limit = %d, want full budget 8", got)
	}
}

// TestGovernorRampsWithProgressAndRetune pins the two recovery paths short
// of the map barrier: committed-map progress raises the limit directly on
// a cold fabric, and the retune ticker observes the fabric draining while
// copiers are parked.
func TestGovernorRampsWithProgressAndRetune(t *testing.T) {
	var hot atomic.Int64
	g := newCopierGovernor(1, 9, hot.Load)
	defer g.close()

	g.noteProgress(1, 2)
	if got := govLimit(g); got != 5 { // 1 + 0.5*(9-1)
		t.Fatalf("half-progress limit = %d, want 5", got)
	}
	// Stale lower progress must not lower the ramp.
	g.noteProgress(1, 4)
	if got := govLimit(g); got != 5 {
		t.Fatalf("limit after stale progress = %d, want 5", got)
	}

	// Heat the fabric: the retune ticker observes the heat and clamps the
	// ceiling to the floor within a few periods.
	hot.Store(5)
	deadline := time.Now().Add(5 * time.Second)
	for govLimit(g) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("limit = %d, want clamp to 1 after fabric heated", govLimit(g))
		}
		time.Sleep(time.Millisecond)
	}

	// Drain the fabric: the retune ticker alone must re-raise the limit.
	hot.Store(0)
	waitGovLimit(t, g, 5)
}

// TestGovernorCloseFailsParkedAcquire pins the shutdown contract: close
// wakes parked copiers with no token, and a nil governor always grants.
func TestGovernorCloseFailsParkedAcquire(t *testing.T) {
	g := newCopierGovernor(1, 4, func() int64 { return 100 })
	if ok, _ := g.acquire(); !ok {
		t.Fatal("first acquire refused")
	}
	res := make(chan bool, 1)
	go func() { ok, _ := g.acquire(); res <- ok }()
	time.Sleep(5 * time.Millisecond)
	g.close()
	select {
	case ok := <-res:
		if ok {
			t.Fatal("acquire granted a token on a closed governor")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not wake the parked acquire")
	}

	var nilGov *copierGovernor
	if ok, w := nilGov.acquire(); !ok || w != 0 {
		t.Fatal("nil governor did not grant immediately")
	}
	nilGov.release()
	nilGov.noteProgress(1, 2)
	nilGov.markMapDone()
	nilGov.close()
}
