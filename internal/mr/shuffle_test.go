package mr_test

import (
	"testing"

	"mrtext/internal/chaos"
	"mrtext/internal/cluster"
	"mrtext/internal/mr"
	"mrtext/internal/textgen"
)

// Pipelined-shuffle integration suite: the serial and pipelined shuffle
// paths must be byte-identical — with staging in memory, overflowed to
// disk, and under injected faults — and the pipeline must demonstrably
// overlap the map phase (that overlap is its whole reason to exist).

// TestPipelinedShuffleMatchesSerial runs the same job three ways — serial
// shuffle, pipelined with the default staging budget, and pipelined with
// a 1-byte budget that forces every staged segment to disk — and requires
// byte-identical outputs.
func TestPipelinedShuffleMatchesSerial(t *testing.T) {
	serialC, corpus := newFTCluster(t, nil)
	serialJob := ftJob(corpus, "wc-shuffle-serial")
	serialJob.SerialShuffle = true
	serialRes, err := mr.Run(serialC, serialJob)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	ref := readOutputs(t, serialC, serialRes)
	if serialRes.ShuffleEarlySegments != 0 || serialRes.ShuffleStagingPeak != 0 {
		t.Errorf("serial shuffle reported staging activity: early %d, peak %d",
			serialRes.ShuffleEarlySegments, serialRes.ShuffleStagingPeak)
	}

	cases := []struct {
		name       string
		buffer     int64
		wantSpills bool
	}{
		{"default-buffer", 0, false},
		{"one-byte-buffer", 1, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c, corpus := newFTCluster(t, nil)
			job := ftJob(corpus, "wc-shuffle-"+tc.name)
			job.ShuffleBufferBytes = tc.buffer
			res, err := mr.Run(c, job)
			if err != nil {
				t.Fatalf("pipelined run: %v", err)
			}
			assertOutputsMatch(t, c, res, ref)
			if tc.wantSpills && res.ShuffleStagedSpills == 0 {
				t.Error("1-byte staging budget produced no staged spills")
			}
			if !tc.wantSpills && res.ShuffleStagedSpills != 0 {
				t.Errorf("default staging budget overflowed %d segments", res.ShuffleStagedSpills)
			}
		})
	}
}

// TestShuffleFetchPlaneVariantsMatchSerial sweeps the fetch-plane knobs —
// raw wire (no compression), a 1-byte batch cap that degenerates every
// batch to a single segment, the ungoverned copier pool, and the
// compressed path squeezed through a 1-byte staging budget — and requires
// byte-identical outputs against a serial-shuffle reference for each.
func TestShuffleFetchPlaneVariantsMatchSerial(t *testing.T) {
	serialC, corpus := newFTCluster(t, nil)
	serialJob := ftJob(corpus, "wc-variant-serial")
	serialJob.SerialShuffle = true
	serialRes, err := mr.Run(serialC, serialJob)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	ref := readOutputs(t, serialC, serialRes)

	cases := []struct {
		name string
		tune func(job *mr.Job)
	}{
		{"raw-wire", func(job *mr.Job) { job.ShuffleRawWire = true }},
		{"one-byte-batch", func(job *mr.Job) { job.ShuffleBatchBytes = 1 }},
		{"ungoverned", func(job *mr.Job) { job.ShuffleUngoverned = true }},
		{"compressed-one-byte-buffer", func(job *mr.Job) { job.ShuffleBufferBytes = 1 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c, corpus := newFTCluster(t, nil)
			job := ftJob(corpus, "wc-variant-"+tc.name)
			tc.tune(job)
			res, err := mr.Run(c, job)
			if err != nil {
				t.Fatalf("pipelined run: %v", err)
			}
			assertOutputsMatch(t, c, res, ref)
		})
	}
}

// TestEarlyFetchOverlapsMapPhase gives the job two full waves of map
// tasks (16 splits over 8 map slots), so first-wave outputs commit while
// second-wave tasks are still computing and the copier pools must stage
// segments before the map phase ends.
func TestEarlyFetchOverlapsMapPhase(t *testing.T) {
	cfg := cluster.Fast(ftNodes)
	cfg.BlockSize = 64 << 10 // 16 splits of the 1 MiB corpus
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	w, err := c.FS.Create("corpus.txt", 0)
	if err != nil {
		t.Fatalf("create corpus: %v", err)
	}
	gen := textgen.CorpusConfig{Vocabulary: 5000, Alpha: 1.0, WordsPerLine: 8, Seed: 42}
	if _, err := textgen.Corpus(w, gen, ftCorpus); err != nil {
		t.Fatalf("generate corpus: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close corpus: %v", err)
	}

	res, err := mr.Run(c, ftJob("corpus.txt", "wc-overlap"))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.ShuffleEarlySegments == 0 {
		t.Error("two map waves ran but no segment was staged before the map phase finished")
	}
	if res.ShuffleStagingPeak == 0 {
		t.Error("staging buffer high-water mark is zero despite staged segments")
	}
}

// TestPipelinedShuffleUnderChaosMatchesSerial reruns a slice of the
// determinism matrix against a serial-shuffle reference, pinning that the
// staged path keeps byte identity when attempts fail, retry and recover.
func TestPipelinedShuffleUnderChaosMatchesSerial(t *testing.T) {
	serialC, corpus := newFTCluster(t, nil)
	serialJob := ftJob(corpus, "wc-chaos-serial")
	serialJob.SerialShuffle = true
	serialRes, err := mr.Run(serialC, serialJob)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	ref := readOutputs(t, serialC, serialRes)

	cfg := chaos.Config{Seed: 17, FailRate: 0.20, KillNode: -1}
	c, corpus := newFTCluster(t, &cfg)
	res, err := mr.Run(c, ftJob(corpus, "wc-chaos-pipelined"))
	if err != nil {
		t.Fatalf("pipelined run under chaos: %v\nchaos log: %v", err, c.Chaos.Log())
	}
	assertOutputsMatch(t, c, res, ref)
	assertCounterIdentity(t, res)
}
