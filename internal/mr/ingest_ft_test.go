package mr_test

import (
	"testing"
	"time"

	"mrtext/internal/chaos"
	"mrtext/internal/mr"
)

// TestIngestSerialVsBatchedIdentity is the reader-swap acceptance gate:
// the same job must produce byte-identical output whether the map phase
// reads its splits through the serial bufio scanner (SerialIngest) or the
// block-batched fast path — fault-free, at an adversarially tiny arena
// chunk, and under an injected-fault cell from the chaos matrix. All runs
// are compared against the single-process reference implementation, so a
// reader that drops, duplicates or reorders a boundary line fails against
// ground truth rather than against its sibling.
func TestIngestSerialVsBatchedIdentity(t *testing.T) {
	ref := ftReference(t)

	kill := chaos.Config{Seed: 5, FailRate: 0.05, KillNode: 2, KillAfterOps: 40,
		DelayRate: 1, Delay: 2 * time.Millisecond}
	cells := []struct {
		name   string
		serial bool
		chunk  int64
		cfg    *chaos.Config
	}{
		{"serial-ingest", true, 0, nil},
		{"batched-default", false, 0, nil},
		{"batched-chunk-512", false, 512, nil}, // forces mid-line refills and slides
		{"batched-chaos-kill", false, 0, &kill},
		{"serial-chaos-kill", true, 0, &kill},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			c, corpus := newFTCluster(t, cell.cfg)
			job := ftJob(corpus, "wc-ingest-"+cell.name)
			job.SerialIngest = cell.serial
			job.IngestChunkBytes = cell.chunk
			res, err := mr.Run(c, job)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			assertOutputsMatch(t, c, res, ref)
			assertCounterIdentity(t, res)
		})
	}
}

// TestIngestSerialVsBatchedSynText covers the second corpus shape of the
// chaos matrix: SynText output must not depend on the reader either.
func TestIngestSerialVsBatchedSynText(t *testing.T) {
	cref, corpus := newFTCluster(t, nil)
	ref, err := mr.RunReference(cref, ftSynJob(corpus, "syn-ingest-ref"))
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	for _, serial := range []bool{true, false} {
		name := "batched"
		if serial {
			name = "serial"
		}
		t.Run(name, func(t *testing.T) {
			c, corpus := newFTCluster(t, nil)
			job := ftSynJob(corpus, "syn-ingest-"+name)
			job.SerialIngest = serial
			res, err := mr.Run(c, job)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			assertOutputsMatch(t, c, res, ref)
		})
	}
}
