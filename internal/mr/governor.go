package mr

// The contention-aware copier governor. PR 5's copier pools made the
// shuffle overlap the map phase; BENCH_shuffle.json then showed the cost:
// past one copier per partition, fan-out *hurt* (copiers-4 slower than
// copiers-1, map wall inflating) because copiers compete with map-phase
// DFS reads for fabric bandwidth and with map lanes for source-disk time.
// The governor makes that tradeoff explicit. Copiers acquire a token
// before each batch; the token limit ramps with map-phase progress and
// clamps to a floor while the fabric is hot with non-copier traffic, then
// opens fully once the map barrier lifts. Throttled time is recorded as
// wait-governor spans — deliberate idle, the inverse of copier-steal.

import (
	"sync"
	"time"
)

const (
	// governorHotThreshold is how many in-flight remote transfers beyond
	// the copiers' own count read as "the map phase needs the fabric".
	// DFS block reads and replica writes are the traffic being protected.
	governorHotThreshold = 2
	// governorRetuneEvery is the poll period for the fabric-heat signal
	// while copiers are parked; well under a map wave, well over the cost
	// of an atomic load.
	governorRetuneEvery = time.Millisecond
)

// copierGovernor is a token gate shared by all of a job's shuffle
// copiers. All methods are safe on a nil receiver (governor disabled):
// acquire then always grants without waiting.
type copierGovernor struct {
	inflight func() int64  // live remote-transfer count (fabric probe)
	stop     chan struct{} // closed by close(); ends the retune goroutine
	min, max int

	mu      sync.Mutex
	cond    *sync.Cond
	held    int     // tokens out
	limit   int     // current token ceiling
	done    float64 // committed fraction of map tasks, monotone in [0,1]
	mapDone bool
	closed  bool
}

// newCopierGovernor builds a governor ramping from min tokens (map phase
// start, or whenever the fabric is hot) to max (map barrier lifted).
func newCopierGovernor(min, max int, inflight func() int64) *copierGovernor {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	g := &copierGovernor{inflight: inflight, stop: make(chan struct{}), min: min, max: max, limit: min}
	g.cond = sync.NewCond(&g.mu)
	go g.retune()
	return g
}

// limitLocked computes the current token ceiling. Caller holds g.mu.
func (g *copierGovernor) limitLocked() int {
	if g.mapDone {
		return g.max
	}
	// Fabric-hot: remote transfers beyond what the copiers themselves
	// could account for means map-phase traffic is on the wire now.
	if g.inflight != nil && g.inflight()-int64(g.held) >= governorHotThreshold {
		return g.min
	}
	return g.min + int(g.done*float64(g.max-g.min))
}

// refreshLocked recomputes the limit and wakes waiters when it rises.
// Caller holds g.mu.
func (g *copierGovernor) refreshLocked() {
	n := g.limitLocked()
	raised := n > g.limit
	g.limit = n
	if raised {
		g.cond.Broadcast()
	}
}

// retune polls the fabric-heat signal so parked copiers wake when the
// map phase's transfers drain, not only when a token is released. Exits
// after close.
func (g *copierGovernor) retune() {
	t := time.NewTicker(governorRetuneEvery)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.mu.Lock()
			g.refreshLocked()
			g.mu.Unlock()
		}
	}
}

// acquire blocks until a token is available or the governor closes. It
// returns whether a token was granted (callers release only granted
// tokens) and how long the copier was parked (zero on the fast path).
func (g *copierGovernor) acquire() (granted bool, waited time.Duration) {
	if g == nil {
		return true, 0
	}
	g.mu.Lock()
	var start time.Time
	for !g.closed && g.held >= g.limit {
		if start.IsZero() {
			start = time.Now()
		}
		g.cond.Wait()
	}
	granted = !g.closed
	if granted {
		g.held++
	}
	g.mu.Unlock()
	if !start.IsZero() {
		waited = time.Since(start)
	}
	return granted, waited
}

// release returns a granted token and wakes one parked copier.
func (g *copierGovernor) release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	if g.held > 0 {
		g.held--
	}
	g.mu.Unlock()
	g.cond.Signal()
}

// noteProgress feeds the map phase's committed-task fraction into the
// ramp. Progress is monotone; stale notifications never lower the limit.
func (g *copierGovernor) noteProgress(done, total int) {
	if g == nil || total <= 0 {
		return
	}
	f := float64(done) / float64(total)
	g.mu.Lock()
	if f > g.done {
		g.done = f
	}
	g.refreshLocked()
	g.mu.Unlock()
}

// markMapDone lifts the governor to its full token budget: with the map
// barrier down there is no map-phase traffic left to protect.
func (g *copierGovernor) markMapDone() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.mapDone = true
	g.refreshLocked()
	g.mu.Unlock()
}

// close wakes every parked copier with no token (acquire returns granted
// = false) and stops the retune goroutine.
func (g *copierGovernor) close() {
	if g == nil {
		return
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.mu.Unlock()
	close(g.stop)
	g.cond.Broadcast()
}
