//go:build mrdebug

package mr

import (
	"testing"

	"mrtext/internal/kvio"
)

// These tests exist only in mrdebug builds: they verify the runtime
// assertions fire on violated preconditions and stay silent otherwise.

func TestDebugAssert(t *testing.T) {
	debugAssert(true, "never fires")
	defer func() {
		if recover() == nil {
			t.Fatal("debugAssert(false) did not panic")
		}
	}()
	debugAssert(false, "seq %d", 3)
}

func TestDebugAssertSorted(t *testing.T) {
	sorted := []kvio.Record{
		{Part: 0, Key: []byte("a")},
		{Part: 0, Key: []byte("b")},
		{Part: 1, Key: []byte("a")},
	}
	debugAssertSorted(sorted, "sorted input")

	defer func() {
		if recover() == nil {
			t.Fatal("debugAssertSorted did not panic on unsorted records")
		}
	}()
	debugAssertSorted([]kvio.Record{
		{Part: 1, Key: []byte("a")},
		{Part: 0, Key: []byte("z")},
	}, "unsorted input")
}
