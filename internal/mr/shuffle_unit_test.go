package mr

import (
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"mrtext/internal/chaos"
	"mrtext/internal/cluster"
	"mrtext/internal/kvio"
	"mrtext/internal/metrics"
)

// --- stagingBuffer ---

// TestStagingBufferBackpressure pins the budget contract: reservations
// inside the budget succeed, a reservation that would exceed it blocks
// until space is released, and an oversized reservation fails outright.
func TestStagingBufferBackpressure(t *testing.T) {
	b := newStagingBuffer(100)
	if ok, _ := b.reserve(60, 0); !ok {
		t.Fatal("in-budget reservation refused")
	}
	if ok, _ := b.reserve(50, 0); ok {
		t.Fatal("over-budget reservation granted without waiting")
	}
	if ok, _ := b.reserve(101, -1); ok {
		t.Fatal("reservation larger than the whole budget granted")
	}

	granted := make(chan bool)
	go func() { ok, _ := b.reserve(50, -1); granted <- ok }()
	select {
	case <-granted:
		t.Fatal("blocked reservation returned before space was released")
	case <-time.After(20 * time.Millisecond):
	}
	b.release(60)
	select {
	case ok := <-granted:
		if !ok {
			t.Fatal("reservation failed after space was released")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reservation still blocked after release")
	}
	if got := b.peakBytes(); got != 60 {
		t.Fatalf("peak = %d, want 60", got)
	}
}

// TestStagingBufferTimeoutAndClose pins the two unblocking paths that are
// not a release: the bounded wait expiring, and close failing all waiters.
func TestStagingBufferTimeoutAndClose(t *testing.T) {
	b := newStagingBuffer(10)
	if ok, _ := b.reserve(10, 0); !ok {
		t.Fatal("in-budget reservation refused")
	}
	start := time.Now()
	if ok, _ := b.reserve(1, 5*time.Millisecond); ok {
		t.Fatal("reservation granted with the budget exhausted")
	}
	if waited := time.Since(start); waited < 5*time.Millisecond {
		t.Fatalf("bounded wait returned after %v, before its deadline", waited)
	}

	granted := make(chan bool)
	go func() { ok, _ := b.reserve(1, -1); granted <- ok }()
	time.Sleep(5 * time.Millisecond)
	b.close()
	select {
	case ok := <-granted:
		if ok {
			t.Fatal("reservation granted on a closed buffer")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not wake the blocked reservation")
	}
	if ok, _ := b.reserve(1, 0); ok {
		t.Fatal("reservation granted after close")
	}
}

// --- shuffleService ---

const (
	unitParts = 4
	unitMaps  = 3
)

// newUnitCluster builds a 2-node cluster, optionally chaos-wrapped.
func newUnitCluster(t *testing.T, chaosCfg *chaos.Config) *cluster.Cluster {
	t.Helper()
	cfg := cluster.Fast(2)
	cfg.Chaos = chaosCfg
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	return c
}

// writeUnitMapOuts writes unitMaps committed map outputs across the
// cluster's disks and returns their locations. Partition p of map task m
// holds keys "k<p>-<i>" in sorted order, except partition 2 of every
// output, which is left empty.
func writeUnitMapOuts(t *testing.T, c *cluster.Cluster) []mapOutput {
	t.Helper()
	outs := make([]mapOutput, unitMaps)
	for m := 0; m < unitMaps; m++ {
		node := m % c.Nodes()
		sink, err := kvio.NewRunSink(c.Disks[node], fmt.Sprintf("unit-m%d", m), unitParts, false)
		if err != nil {
			t.Fatalf("sink: %v", err)
		}
		for p := 0; p < unitParts; p++ {
			if p == 2 {
				continue
			}
			for i := 0; i < 50; i++ {
				k := []byte(fmt.Sprintf("k%d-%03d", p, i))
				v := []byte(fmt.Sprintf("m%d", m))
				if err := sink.Append(p, k, v); err != nil {
					t.Fatalf("append: %v", err)
				}
			}
		}
		idx, err := sink.Close()
		if err != nil {
			t.Fatalf("close sink: %v", err)
		}
		outs[m] = mapOutput{node: node, index: idx}
	}
	return outs
}

// unitShuffleJob is the minimal job configuration the service reads.
func unitShuffleJob(bufferBytes int64) *Job {
	return &Job{
		NumReducers:        unitParts,
		ShuffleCopiers:     2,
		ShuffleBufferBytes: bufferBytes,
		RetryBackoff:       time.Millisecond,
		Hists:              NewHists(),
		filePrefix:         "unit",
		cancel:             new(atomic.Bool),
	}
}

// drainStream reads a stream to EOF and closes it.
func drainStream(t *testing.T, s kvio.Stream) [][2]string {
	t.Helper()
	var out [][2]string
	for {
		k, v, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		out = append(out, [2]string{string(k), string(v)})
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return out
}

// waitStagedSegments polls until the service has staged want segments.
func waitStagedSegments(t *testing.T, svc *shuffleService, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for svc.tm.Counter(metrics.CtrShuffleStagedSegments) < want {
		if time.Now().After(deadline) {
			t.Fatalf("staged %d of %d segments before deadline",
				svc.tm.Counter(metrics.CtrShuffleStagedSegments), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShuffleServiceStagesAndTakes offers committed map outputs to the
// copier pools and checks that every staged segment — including empty
// ones — decodes to exactly the records of a direct positioned read, and
// that takes are non-destructive (a duplicate attempt can re-take).
func TestShuffleServiceStagesAndTakes(t *testing.T) {
	c := newUnitCluster(t, nil)
	outs := writeUnitMapOuts(t, c)
	svc := newShuffleService(c, unitShuffleJob(1<<20))
	defer svc.close()

	for m, out := range outs {
		svc.offer(m, out)
	}
	waitStagedSegments(t, svc, unitParts*unitMaps)
	if spills := svc.tm.Counter(metrics.CtrShuffleStagedSpills); spills != 0 {
		t.Fatalf("%d staged segments overflowed a %d-byte budget", spills, 1<<20)
	}

	for p := 0; p < unitParts; p++ {
		for m, out := range outs {
			direct, err := kvio.OpenRunPart(c.Disks[out.node], out.index, p)
			if err != nil {
				t.Fatalf("direct open: %v", err)
			}
			want := drainStream(t, direct)
			for round := 0; round < 2; round++ { // takes must not consume
				st, _, ok := svc.take(p, m, 0, spanner{})
				if !ok {
					t.Fatalf("part %d src %d round %d: staged segment missing", p, m, round)
				}
				got := drainStream(t, st)
				if len(got) != len(want) {
					t.Fatalf("part %d src %d: %d staged records, want %d", p, m, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("part %d src %d record %d: staged %q, direct %q", p, m, i, got[i], want[i])
					}
				}
			}
		}
	}

	// A released partition stops serving takes.
	svc.release(1)
	if _, _, ok := svc.take(1, 0, 0, spanner{}); ok {
		t.Fatal("released partition still serves staged segments")
	}
}

// TestShuffleServiceOverflowsToDisk forces every segment past a 1-byte
// staging budget and checks the disk-backed staging path returns the same
// records as the in-memory one.
func TestShuffleServiceOverflowsToDisk(t *testing.T) {
	c := newUnitCluster(t, nil)
	outs := writeUnitMapOuts(t, c)
	svc := newShuffleService(c, unitShuffleJob(1))
	defer svc.close()

	for m, out := range outs {
		svc.offer(m, out)
	}
	waitStagedSegments(t, svc, unitParts*unitMaps)
	// Non-empty segments cannot fit a 1-byte budget; empty partition-2
	// segments stage in memory for free.
	wantSpills := int64((unitParts - 1) * unitMaps)
	if spills := svc.tm.Counter(metrics.CtrShuffleStagedSpills); spills != wantSpills {
		t.Fatalf("staged spills = %d, want %d", spills, wantSpills)
	}

	for p := 0; p < unitParts; p++ {
		for m, out := range outs {
			direct, err := kvio.OpenRunPart(c.Disks[out.node], out.index, p)
			if err != nil {
				t.Fatalf("direct open: %v", err)
			}
			want := drainStream(t, direct)
			st, _, ok := svc.take(p, m, 1, spanner{})
			if !ok {
				t.Fatalf("part %d src %d: overflowed segment missing", p, m)
			}
			got := drainStream(t, st)
			if len(got) != len(want) {
				t.Fatalf("part %d src %d: %d staged records, want %d", p, m, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("part %d src %d record %d: staged %q, direct %q", p, m, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFetchAbsorbsInjectedFault pins the chaos contract of the pipelined
// fetch: an injected fault at SiteShuffleFetch is absorbed by per-source
// retry — the fetch succeeds, the fault is counted as a retry, and the
// streams carry exactly the records a fault-free serial fetch returns.
func TestFetchAbsorbsInjectedFault(t *testing.T) {
	cfg := &chaos.Config{Seed: 3, FailRate: 1.0, KillNode: -1}
	c := newUnitCluster(t, cfg)
	outs := writeUnitMapOuts(t, c)
	job := unitShuffleJob(1 << 20)
	svc := newShuffleService(c, job)
	defer svc.close()
	sh := &shuffleEnv{svc: svc, backoff: job.RetryBackoff}

	c.Chaos.Arm()
	defer c.Chaos.Disarm()
	const part, node = 0, 0
	// FailRate 1 guarantees the plan carries a fault; restricting the
	// sites to SiteShuffleFetch guarantees where it fires.
	plan := c.Chaos.Plan(node, part, 0, []chaos.Site{chaos.SiteShuffleFetch})

	tm := metrics.NewTaskMetrics()
	streams, err := fetchConcurrent(c, job, sh, part, node, plan, outs, tm, spanner{})
	if err != nil {
		t.Fatalf("fetch did not absorb the injected fault: %v", err)
	}
	if got := svc.tm.Counter(metrics.CtrShuffleFetchRetries); got != 1 {
		t.Fatalf("absorbed fetch retries = %d, want 1", got)
	}
	for i, st := range streams {
		direct, derr := kvio.OpenRunPart(c.Disks[outs[i].node], outs[i].index, part)
		if derr != nil {
			t.Fatalf("direct open: %v", derr)
		}
		want := drainStream(t, direct)
		got := drainStream(t, st)
		if len(got) != len(want) {
			t.Fatalf("src %d: %d records, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("src %d record %d: %q, want %q", i, j, got[j], want[j])
			}
		}
	}
	if stats := c.Chaos.Stats(); stats.Faults != 1 {
		t.Fatalf("chaos fired %d faults, want exactly 1", stats.Faults)
	}
}
