// Package mr is the MapReduce runtime: the substrate standing in for
// Hadoop. It executes jobs over the simulated cluster with the exact
// pipeline structure the paper instruments — map tasks run a map goroutine
// and a support goroutine connected by a spill buffer; spills are sorted,
// combined and written to node-local disk; spill runs are merge-sorted into
// one partitioned map-output file; a pipelined shuffle stages each reduce
// partition's segments across the fabric while the map phase is still
// running, and reducers merge-sort, group and reduce from the staged
// copies (falling back to direct fetches for anything not staged).
//
// Both optimizations plug in here: a spillmatch.Controller governs each map
// task's spill percentage, and an optional freqbuf.Buffer intercepts
// map-output records before they reach the spill buffer.
package mr

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"mrtext/internal/chaos"
	"mrtext/internal/core/freqbuf"
	"mrtext/internal/core/spillmatch"
	"mrtext/internal/kvio"
	"mrtext/internal/metrics"
	"mrtext/internal/spillbuf"
	"mrtext/internal/trace"
)

// Collector receives key/value pairs emitted by user code. The runtime's
// collectors copy key and value as needed; callers may reuse their buffers.
type Collector interface {
	Collect(key, value []byte) error
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(key, value []byte) error

// Collect implements Collector.
func (f CollectorFunc) Collect(key, value []byte) error { return f(key, value) }

// Mapper is the user map() function over line-oriented input: it is called
// once per input line with the line's byte offset in the file.
type Mapper interface {
	Map(offset int64, line []byte, out Collector) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(offset int64, line []byte, out Collector) error

// Map implements Mapper.
func (f MapperFunc) Map(offset int64, line []byte, out Collector) error {
	return f(offset, line, out)
}

// ValueIter streams the values of one reduce group.
type ValueIter interface {
	// Next returns the next value, ok=false at group end. The slice is
	// valid until the following Next call.
	Next() (value []byte, ok bool, err error)
}

// Reducer is the user reduce() function, called once per distinct key with
// all its values.
type Reducer interface {
	Reduce(key []byte, values ValueIter, out Collector) error
}

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key []byte, values ValueIter, out Collector) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key []byte, values ValueIter, out Collector) error {
	return f(key, values, out)
}

// CombineFunc is the user combine() contract, re-exported from kvio: it
// aggregates any subset of one key's values and may be applied any number
// of times without changing job output.
type CombineFunc = kvio.CombineFunc

// Partitioner maps a key to a reduce partition in [0, parts).
type Partitioner func(key []byte, parts int) int

// DefaultPartitioner hashes the key with FNV-1a, Hadoop-style.
func DefaultPartitioner(key []byte, parts int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(parts))
}

// OutputFormat renders one final (key, value) record into output bytes
// (typically one text line). Nil means the framed binary format.
type OutputFormat func(key, value []byte) ([]byte, error)

// FreqBufConfig enables frequency-buffering for a job.
type FreqBufConfig struct {
	// K is the frequent-key table size. The paper uses 3000 for the text
	// applications and 10000 for the log applications.
	K int
	// SampleFraction fixes s; zero engages the §III-C auto-tuner.
	SampleFraction float64
	// MemFraction is the share of the spill buffer budget carved out for
	// the frequent-key table (paper: 0.3). The spill buffer shrinks by
	// the same amount so total memory is constant.
	MemFraction float64
	// ShareTopK enables the per-node top-k cache across tasks (§III-B).
	ShareTopK bool
	// ValuesPerKeyCap caps buffered values per frequent key before an
	// in-table combine (default 32).
	ValuesPerKeyCap int
}

// DefaultFreqBufText returns the paper's text-application setting
// (k=3000, s=0.01).
func DefaultFreqBufText() *FreqBufConfig {
	return &FreqBufConfig{K: 3000, SampleFraction: 0.01, MemFraction: 0.3, ShareTopK: true}
}

// DefaultFreqBufLog returns the paper's log-application setting
// (k=10000, s=0.1).
func DefaultFreqBufLog() *FreqBufConfig {
	return &FreqBufConfig{K: 10000, SampleFraction: 0.1, MemFraction: 0.3, ShareTopK: true}
}

// Job specifies one MapReduce job.
type Job struct {
	// Name identifies the job (used in file names and the freq cache).
	Name string
	// Inputs are DFS file names; every block of every input becomes one
	// map task.
	Inputs []string
	// OutputPrefix names the job output: one DFS file per reducer,
	// "<prefix>-r-00000" etc.
	OutputPrefix string

	// NewMapper creates a fresh Mapper per map task (mappers may carry
	// per-task state, e.g. the POS tagger's model).
	NewMapper func() Mapper
	// NewReducer creates a fresh Reducer per reduce task.
	NewReducer func() Reducer
	// Combine is the optional combiner.
	Combine CombineFunc
	// Partition is the partitioner (DefaultPartitioner when nil).
	Partition Partitioner
	// Format renders final output records (framed binary when nil).
	Format OutputFormat

	// NumReducers defaults to the cluster's total reduce slots.
	NumReducers int
	// SpillBufferBytes is the map-side buffer M (default 4 MiB). When
	// frequency-buffering is enabled, MemFraction of this is re-assigned
	// to the frequent-key table.
	SpillBufferBytes int64
	// SpillMatcher enables the adaptive spill-percentage controller; the
	// baseline is static DefaultStaticPercent.
	SpillMatcher bool
	// SpillMatcherConfig overrides the matcher configuration (optional).
	SpillMatcherConfig *spillmatch.Config
	// StaticSpillPercent overrides the baseline threshold (0 = 0.8).
	StaticSpillPercent float64
	// FreqBuf enables frequency-buffering when non-nil. Requires Combine.
	FreqBuf *FreqBufConfig

	// CompressRuns writes spill runs and map outputs in the
	// prefix-compressed on-disk format — the §VII "more efficient on-disk
	// data representations" extension. Reduces spill/merge/shuffle bytes
	// for text keys at a small CPU cost.
	CompressRuns bool
	// HashGroupSpills replaces the per-spill sort of raw records with a
	// hash-based GROUP BY (combine in a hash table, then sort only the
	// combined aggregates) — the §VII "different post-map() grouping
	// procedures" extension. Requires Combine; ignored without one.
	HashGroupSpills bool

	// ShuffleCopiers is the per-reduce-partition copier fan-out of the
	// pipelined shuffle (default 4): how many of a partition's segments
	// are fetched concurrently into staging as map tasks commit.
	ShuffleCopiers int
	// ShuffleBufferBytes bounds the in-memory staging buffer shared by
	// all copiers (default 32 MiB). Segments that cannot reserve space
	// overflow to the staging node's disk.
	ShuffleBufferBytes int64
	// SerialShuffle disables the pipelined shuffle: every reduce attempt
	// opens its partition's segment of every map output itself, at reduce
	// start — the pre-pipelining behavior.
	SerialShuffle bool
	// ShuffleBatchBytes caps one copier batch (default 1 MiB): a copier
	// visiting a source node drains all of that node's ready segments for
	// its partition in one fabric transfer, up to this many wire bytes.
	// The first segment is always taken even if it alone exceeds the cap.
	ShuffleBatchBytes int64
	// ShuffleRawWire disables wire compression: segments of uncompressed
	// map outputs ship and stage in their raw on-disk format instead of
	// being transcoded to the prefix-compressed run format. The zero value
	// means compression is on, mirroring SerialShuffle/SerialIngest.
	ShuffleRawWire bool
	// ShuffleUngoverned disables the contention-aware copier governor, so
	// copiers fetch as soon as segments commit regardless of fabric heat
	// or map-phase progress — the pre-governor behavior kept for A/B runs.
	ShuffleUngoverned bool

	// IngestChunkBytes sizes the batched split reader's arena reads
	// (default 1 MiB): the granularity at which a map task pulls split
	// bytes from DFS before scanning lines out of the arena in place.
	IngestChunkBytes int64
	// SerialIngest disables the block-batched split reader, reverting to
	// the bufio per-line scanner — the pre-fast-path behavior kept as the
	// ingest benchmark baseline (mirroring SerialShuffle).
	SerialIngest bool

	// Trace records the job's span timeline (see internal/trace). Nil
	// falls back to the process-wide trace.Default(); when that is nil
	// too, tracing is off and every span site reduces to a nil check.
	Trace *trace.Tracer

	// Hists receives the job's latency histograms. Nil falls back to the
	// process-wide registry instruments — right for a one-shot CLI run. A
	// job service hands every job a private NewHists set so concurrent
	// jobs' distributions never interleave.
	Hists *Hists

	// Chaos is a per-job fault injector overriding the cluster's for
	// task-site faults and manufactured stragglers, so one job of many on
	// a shared cluster can run under injection without perturbing its
	// neighbors. Node kills stay cluster-owned (a dead disk is dead for
	// everyone); a per-job injector configured to kill nodes is rejected.
	Chaos *chaos.Injector

	// MaxAttempts bounds execution attempts per task, Hadoop's
	// mapred.map.max.attempts (default 4): a task whose attempts all fail
	// fails the job with the last attempt's error.
	MaxAttempts int
	// RetryBackoff is the base delay before a failed attempt is requeued
	// (default 2ms). The actual delay is jittered deterministically per
	// (task, attempt) to spread retry storms.
	RetryBackoff time.Duration
	// NodeFailureLimit blacklists a node for the rest of the job after
	// this many failed attempts ran on it (default 4, Hadoop's
	// mapred.max.tracker.failures). Blacklisting never removes the last
	// live node.
	NodeFailureLimit int
	// Speculation enables backup attempts for stragglers: once
	// SpeculationQuorum of a phase's tasks have committed, a task whose
	// sole running attempt has been going longer than SpeculationSlowdown
	// times the median committed duration gets one backup attempt; the
	// first committer wins and the loser's output is discarded.
	Speculation bool
	// SpeculationSlowdown is the straggler threshold multiplier
	// (default 1.8).
	SpeculationSlowdown float64
	// SpeculationQuorum is the fraction of committed tasks required
	// before backups launch (default 0.6).
	SpeculationQuorum float64

	// filePrefix uniquifies intermediate file names so the same job spec
	// can run repeatedly on one cluster. Set by withDefaults.
	filePrefix string
	// cancel is the run's cancellation flag, set by RunContext's watcher
	// when the context ends. Task loops poll it (one atomic load per
	// record batch) instead of ctx.Err(), which takes a mutex. Set by
	// withDefaults so task code can load it unconditionally.
	cancel *atomic.Bool
}

// runSeq uniquifies per-run file names. It is the one piece of mutable
// package state the runtime keeps: a monotone counter with no read-back
// semantics, safe to share across concurrent jobs by construction.
//
//mrlint:ignore globalstate monotone run sequence; atomic, write-only, cannot bleed state between jobs
var runSeq atomic.Int64

func (j *Job) withDefaults(totalReduceSlots int) (*Job, error) {
	cp := *j
	if cp.Name == "" {
		return nil, fmt.Errorf("mr: job needs a name")
	}
	if len(cp.Inputs) == 0 {
		return nil, fmt.Errorf("mr: job %q has no inputs", cp.Name)
	}
	if cp.NewMapper == nil || cp.NewReducer == nil {
		return nil, fmt.Errorf("mr: job %q needs NewMapper and NewReducer", cp.Name)
	}
	if cp.Chaos != nil && cp.Chaos.KillsNodes() {
		return nil, fmt.Errorf("mr: job %q: per-job chaos injectors cannot kill nodes (node death is cluster-owned)", cp.Name)
	}
	seq := runSeq.Add(1)
	cp.filePrefix = fmt.Sprintf("%s.%d", cp.Name, seq)
	cp.cancel = new(atomic.Bool)
	if cp.Hists == nil {
		cp.Hists = defaultHists()
	}
	if cp.OutputPrefix == "" {
		cp.OutputPrefix = fmt.Sprintf("%s-out.%d", cp.Name, seq)
	}
	if cp.Partition == nil {
		cp.Partition = DefaultPartitioner
	}
	if cp.NumReducers <= 0 {
		cp.NumReducers = totalReduceSlots
	}
	if cp.SpillBufferBytes <= 0 {
		cp.SpillBufferBytes = 4 << 20
	}
	if cp.ShuffleCopiers <= 0 {
		cp.ShuffleCopiers = 4
	}
	if cp.ShuffleBufferBytes <= 0 {
		cp.ShuffleBufferBytes = 32 << 20
	}
	if cp.ShuffleBatchBytes <= 0 {
		cp.ShuffleBatchBytes = 1 << 20
	}
	if cp.IngestChunkBytes <= 0 {
		cp.IngestChunkBytes = defaultIngestChunk
	}
	if cp.StaticSpillPercent <= 0 || cp.StaticSpillPercent > 1 {
		cp.StaticSpillPercent = spillmatch.DefaultStaticPercent
	}
	if cp.MaxAttempts <= 0 {
		cp.MaxAttempts = 4
	}
	if cp.RetryBackoff <= 0 {
		cp.RetryBackoff = 2 * time.Millisecond
	}
	if cp.NodeFailureLimit <= 0 {
		cp.NodeFailureLimit = 4
	}
	if cp.SpeculationSlowdown <= 1 {
		cp.SpeculationSlowdown = 1.8
	}
	if cp.SpeculationQuorum <= 0 || cp.SpeculationQuorum > 1 {
		cp.SpeculationQuorum = 0.6
	}
	if cp.FreqBuf != nil {
		fb := *cp.FreqBuf
		if fb.K <= 0 {
			return nil, fmt.Errorf("mr: job %q frequency-buffering needs K > 0", cp.Name)
		}
		if fb.MemFraction <= 0 || fb.MemFraction >= 1 {
			fb.MemFraction = 0.3
		}
		cp.FreqBuf = &fb
	}
	return &cp, nil
}

// newController builds the spill controller for one map task.
func (j *Job) newController() spillmatch.Controller {
	if j.SpillMatcher {
		cfg := spillmatch.DefaultConfig()
		if j.SpillMatcherConfig != nil {
			cfg = *j.SpillMatcherConfig
		}
		return spillmatch.NewMatcher(cfg)
	}
	return spillmatch.NewStatic(j.StaticSpillPercent)
}

// TaskReport carries one task's instrumentation into the job result.
type TaskReport struct {
	Kind  string // "map" or "reduce"
	Index int
	Node  int
	// Wall is the task's execution wall time, queue wait excluded: the
	// span between the task starting on its slot and its report being
	// finalized, on success and failure alike.
	Wall time.Duration
	// QueueWait is time the task spent waiting for a free slot before
	// starting (reduce tasks contend for per-node reduce slots). Wall +
	// QueueWait spans from task submission to completion, so per-task
	// reports tile the phase wall time they belong to.
	QueueWait time.Duration
	// ShuffleBytes is the reduce task's fetched shuffle volume (the
	// CtrShuffleBytes counter surfaced for swimlane labeling); zero for
	// map tasks.
	ShuffleBytes int64
	Metrics      metrics.Snapshot
	Spill        spillbuf.Stats
	FreqStats    freqbuf.Stats
	SpillPcts    []float64 // spill-matcher decision trace (adaptive runs)
}

// Result summarizes a completed job.
type Result struct {
	Job         string
	Wall        time.Duration
	MapWall     time.Duration // wall time of the map phase (all map tasks done)
	ReduceWall  time.Duration // wall time of shuffle+reduce
	Agg         metrics.Snapshot
	Tasks       []TaskReport
	Outputs     []string
	MapTasks    int
	ReduceTasks int
	// LocalMapTasks counts map tasks that ran on the node holding their
	// split's primary replica; StolenMapTasks counts tasks the scheduler
	// moved to another node's free slot (work stealing). Tasks whose
	// primary host is out of range (orphans) count toward neither.
	LocalMapTasks  int
	StolenMapTasks int

	// Fault-tolerance accounting. Every started attempt is exactly one of
	// a task's base attempt, a retry of a failed attempt, a speculative
	// backup, or a lost-output recovery re-run, so
	//   MapAttempts + ReduceAttempts ==
	//     MapTasks + ReduceTasks + TaskRetries + SpeculativeTasks + RecoveredMapTasks.
	MapAttempts    int // map attempts started, including retries/backups/recoveries
	ReduceAttempts int // reduce attempts started
	TaskRetries    int // retry attempts started after a failed attempt
	// SpeculativeTasks counts backup attempts started for stragglers;
	// SpeculativeWins counts backups that committed before the original.
	SpeculativeTasks int
	SpeculativeWins  int
	// RecoveredMapTasks counts re-runs of already-committed map tasks
	// whose output node died before every reducer fetched from it.
	RecoveredMapTasks int
	// FailedAttempts counts attempts that ended in an error (each is
	// either retried or fails the job).
	FailedAttempts int
	// SweptAttempts counts failed or losing attempts whose attempt-scoped
	// temp files were swept; CleanupErrors counts best-effort removals
	// that failed on a live node.
	SweptAttempts int
	CleanupErrors int
	// DeadNodes lists nodes the chaos layer killed during the job;
	// BlacklistedNodes lists nodes the runner stopped scheduling on after
	// repeated attempt failures.
	DeadNodes        []int
	BlacklistedNodes []int

	// Pipelined-shuffle accounting (all zero under SerialShuffle).
	// ShuffleEarlySegments counts segments staged before the map phase
	// finished — the map/shuffle overlap the pipeline exists to create.
	ShuffleEarlySegments int
	// ShuffleStagedSpills counts staged segments that overflowed the
	// staging buffer to a staging node's disk.
	ShuffleStagedSpills int
	// ShuffleFetchRetries counts injected shuffle-fetch faults absorbed
	// by per-source retry instead of failing the reduce attempt.
	ShuffleFetchRetries int
	// ShuffleStagingPeak is the staging buffer's high-water mark in wire
	// bytes (compressed length when wire compression is on).
	ShuffleStagingPeak int64
	// ShuffleBatchFetches counts copier batch operations — one fabric
	// transfer each; ShuffleBatchSegments counts the segments they carried
	// (their ratio is the batching factor).
	ShuffleBatchFetches  int
	ShuffleBatchSegments int
	// ShuffleWireSavedBytes is raw-minus-wire bytes saved by compressing
	// segments before the staging hop (zero under ShuffleRawWire).
	ShuffleWireSavedBytes int64
	// ShuffleGovThrottles counts copier batches that had to wait for a
	// governor token while the map phase was fabric-hot.
	ShuffleGovThrottles int
}

// MapIdleFraction returns the average fraction of map-task wall time the
// map goroutine spent blocked — the "Map, Idle" column of Table II.
func (r *Result) MapIdleFraction() float64 {
	return r.idleFraction(func(s metrics.Snapshot) time.Duration { return s.WaitMap })
}

// SupportIdleFraction returns the same for the support goroutine — the
// "Support, Idle" column of Table II.
func (r *Result) SupportIdleFraction() float64 {
	return r.idleFraction(func(s metrics.Snapshot) time.Duration { return s.WaitSupport })
}

func (r *Result) idleFraction(pick func(metrics.Snapshot) time.Duration) float64 {
	var idle, wall time.Duration
	for _, t := range r.Tasks {
		if t.Kind != "map" {
			continue
		}
		idle += pick(t.Metrics)
		wall += t.Wall
	}
	if wall == 0 {
		return 0
	}
	return float64(idle) / float64(wall)
}

// FreqStats sums frequency-buffering statistics across map tasks.
func (r *Result) FreqStats() freqbuf.Stats {
	var agg freqbuf.Stats
	for _, t := range r.Tasks {
		agg.Profiled += t.FreqStats.Profiled
		agg.Hits += t.FreqStats.Hits
		agg.Misses += t.FreqStats.Misses
		agg.Evictions += t.FreqStats.Evictions
		agg.Combines += t.FreqStats.Combines
		if t.FreqStats.ChosenSample > 0 {
			agg.ChosenSample = t.FreqStats.ChosenSample
		}
		if t.FreqStats.FittedAlpha > 0 {
			agg.FittedAlpha = t.FreqStats.FittedAlpha
		}
	}
	return agg
}

// SpillStats sums spill-buffer statistics across map tasks.
func (r *Result) SpillStats() spillbuf.Stats {
	var agg spillbuf.Stats
	for _, t := range r.Tasks {
		agg.Spills += t.Spill.Spills
		agg.SpillBytes += t.Spill.SpillBytes
		if t.Spill.MaxPending > agg.MaxPending {
			agg.MaxPending = t.Spill.MaxPending
		}
	}
	return agg
}
