package mr

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"

	"mrtext/internal/cluster"
	"mrtext/internal/serde"
)

// RunReference executes the job sequentially, with no combiner, no spill
// pipeline and no optimizations: map over every input line in file order,
// stable-sort by (partition, key), group, reduce, format. It is the
// semantic ground truth the correctness tests compare Run's output against
// under every configuration.
func RunReference(c *cluster.Cluster, spec *Job) (map[int][]byte, error) {
	job, err := spec.withDefaults(c.TotalReduceSlots())
	if err != nil {
		return nil, err
	}

	var recs []refRec
	collect := CollectorFunc(func(key, value []byte) error {
		recs = append(recs, refRec{
			part: job.Partition(key, job.NumReducers),
			key:  append([]byte(nil), key...),
			val:  append([]byte(nil), value...),
		})
		return nil
	})

	mapper := job.NewMapper()
	for _, in := range job.Inputs {
		rd, err := c.FS.OpenFrom(in, 0, 0)
		if err != nil {
			return nil, err
		}
		br := bufio.NewReaderSize(rd, 64<<10)
		var off int64
		for {
			line, rerr := br.ReadBytes('\n')
			lineOff := off
			off += int64(len(line))
			line = bytes.TrimSuffix(line, []byte("\n"))
			if len(line) > 0 || (rerr == nil) {
				if err := mapper.Map(lineOff, line, collect); err != nil {
					return nil, fmt.Errorf("mr: reference map(): %w", errors.Join(err, rd.Close()))
				}
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				return nil, errors.Join(rerr, rd.Close())
			}
		}
		if err := rd.Close(); err != nil {
			return nil, fmt.Errorf("mr: closing reference input %s: %w", in, err)
		}
	}

	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].part != recs[j].part {
			return recs[i].part < recs[j].part
		}
		return bytes.Compare(recs[i].key, recs[j].key) < 0
	})

	outputs := make(map[int][]byte, job.NumReducers)
	var buf bytes.Buffer
	w := serde.NewWriter(&buf)
	out := CollectorFunc(func(key, value []byte) error {
		if job.Format != nil {
			line, err := job.Format(key, value)
			if err != nil {
				return err
			}
			_, err = buf.Write(line)
			return err
		}
		return w.WriteKV(key, value)
	})

	reducer := job.NewReducer()
	i := 0
	for p := 0; p < job.NumReducers; p++ {
		buf.Reset()
		for i < len(recs) && recs[i].part == p {
			j := i + 1
			for j < len(recs) && recs[j].part == p && bytes.Equal(recs[j].key, recs[i].key) {
				j++
			}
			iter := &sliceValues{recs: recs[i:j]}
			if err := reducer.Reduce(recs[i].key, iter, out); err != nil {
				return nil, fmt.Errorf("mr: reference reduce(): %w", err)
			}
			i = j
		}
		outputs[p] = append([]byte(nil), buf.Bytes()...)
	}
	return outputs, nil
}

// refRec is one intermediate record of the reference execution.
type refRec struct {
	part int
	key  []byte
	val  []byte
}

type sliceValues struct {
	recs []refRec
	pos  int
}

func (s *sliceValues) Next() (value []byte, ok bool, err error) {
	if s.pos >= len(s.recs) {
		return nil, false, nil
	}
	v := s.recs[s.pos].val
	s.pos++
	return v, true, nil
}
