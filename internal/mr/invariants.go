//go:build mrdebug

package mr

import (
	"bytes"
	"fmt"

	"mrtext/internal/kvio"
)

// This file holds the debug-build runtime assertions of the map pipeline.
// They compile in only under -tags mrdebug; release builds link the no-op
// twins in invariants_off.go.

// debugAssert panics with a formatted message when cond is false.
func debugAssert(cond bool, format string, args ...any) {
	if !cond {
		panic("mr: invariant violated: " + fmt.Sprintf(format, args...))
	}
}

// debugAssertSorted asserts recs are ordered by (partition, key) — the
// precondition every run writer and merge stream relies on.
func debugAssertSorted(recs []kvio.Record, context string) {
	for i := 1; i < len(recs); i++ {
		a, b := &recs[i-1], &recs[i]
		if a.Part > b.Part || (a.Part == b.Part && bytes.Compare(a.Key, b.Key) > 0) {
			panic(fmt.Sprintf("mr: invariant violated: %s: records out of (partition, key) order at %d: (%d, %q) > (%d, %q)",
				context, i, a.Part, a.Key, b.Part, b.Key))
		}
	}
}

// debugAssertSortedPacked asserts a packed batch is ordered under the
// total order SortPacked establishes — (partition, key) ascending, with
// equal keys in emit (arena-offset) order, i.e. the stable order the
// combiner contract requires.
func debugAssertSortedPacked(recs kvio.PackedRecords, context string) {
	for i := 1; i < recs.Len(); i++ {
		if recs.Less(i, i-1) {
			panic(fmt.Sprintf("mr: invariant violated: %s: packed records out of order at %d: (%d, %q, off %d) > (%d, %q, off %d)",
				context, i, recs.Part(i-1), recs.Key(i-1), recs.Meta[i-1].KeyOff,
				recs.Part(i), recs.Key(i), recs.Meta[i].KeyOff))
		}
	}
}
