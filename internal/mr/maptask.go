package mr

import (
	"errors"
	"fmt"
	"time"

	"mrtext/internal/chaos"
	"mrtext/internal/cluster"
	"mrtext/internal/core/freqbuf"
	"mrtext/internal/kvio"
	"mrtext/internal/metrics"
	"mrtext/internal/spillbuf"
	"mrtext/internal/trace"
	"mrtext/internal/vdisk"
)

// spanner locates one task's spans in the trace: the tracer (nil when
// tracing is off) plus the task attempt's fixed (node, task, slot,
// attempt) coordinates.
type spanner struct {
	tr      *trace.Tracer
	node    int
	task    int
	slot    int
	attempt int
}

// start opens a span for this task attempt on the given lane.
func (sc spanner) start(kind trace.Kind, lane trace.Lane) trace.Span {
	return sc.tr.StartAttempt(kind, lane, sc.node, sc.task, sc.slot, sc.attempt)
}

// mapOutput locates one finished map task's partitioned output run.
type mapOutput struct {
	node  int
	index kvio.RunIndex
}

// mapCollector is the Collector handed to user map() code. It implements
// the full map-side emit path: partitioning, the frequency-buffering
// intercept, and the spill-buffer append, with the paper's operation
// accounting (user map time vs. emit overhead vs. profiling overhead).
// The user/emit split is attributed by the sampled EmitTimer rather than
// a clock stamp per record, so the profiling itself stays off the per-
// record hot path.
type mapCollector struct {
	job   *Job
	tm    *metrics.TaskMetrics
	et    *metrics.EmitTimer
	buf   *spillbuf.Buffer
	freq  *freqbuf.Buffer
	cache *freqbuf.Cache // node cache for top-k sharing (nil if disabled)

	scanner    lineSource // the task's input scanner (for record-count extrapolation)
	emitted    int64
	combineAcc time.Duration // combine time spent inside freqbuf (via the timed combiner)
	published  bool
	sp         spanner     // freq-buffer eviction instants
	plan       *chaos.Plan // nil when chaos is off: the guard below is the whole cost
}

// Collect implements Collector.
func (mc *mapCollector) Collect(key, value []byte) error {
	mc.et.BeforeEmit()
	err := mc.emit(key, value)
	mc.et.AfterEmit()
	return err
}

func (mc *mapCollector) emit(key, value []byte) error {
	if mc.plan != nil {
		if err := mc.plan.Check(chaos.SiteEmit); err != nil {
			return err
		}
	}
	part := mc.job.Partition(key, mc.job.NumReducers)
	mc.emitted++
	mc.tm.Inc(metrics.CtrMapOutputRecords, 1)
	mc.tm.Inc(metrics.CtrMapOutputBytes, spillbuf.RecordBytes(key, value))

	if mc.freq != nil {
		t0 := time.Now()
		combineBefore := mc.combineAcc
		absorbed, overflow, err := mc.freq.Offer(part, key, value)
		combineDelta := mc.combineAcc - combineBefore
		span := time.Since(t0)
		mc.tm.Add(metrics.OpProfile, span-combineDelta)
		// The whole frequency-buffer span is attributed to OpProfile and
		// OpCombineUser above; keep it out of the emit measurement.
		mc.et.Exclude(span)
		if err != nil {
			return err
		}
		if absorbed {
			mc.tm.Inc(metrics.CtrFreqHits, 1)
		}
		if !mc.published && mc.cache != nil && mc.freq.Stage() == freqbuf.StageOptimize {
			// Keyed by the run-unique file prefix, not the job name: top-k
			// sharing is a within-run optimization, and a name-keyed entry
			// would leak one run's key profile into the next run (or into a
			// concurrent same-named job) on a long-lived cluster.
			mc.cache.Put(mc.job.filePrefix, mc.freq.TopK())
			mc.published = true
		}
		if len(overflow) > 0 {
			mc.sp.tr.Instant(trace.KindFreqEviction, trace.LaneMap, mc.sp.node, mc.sp.task, int64(len(overflow)))
		}
		for _, r := range overflow {
			mc.tm.Inc(metrics.CtrFreqEvictions, 1)
			if err := mc.append(r.Part, r.Key, r.Value); err != nil {
				return err
			}
		}
		if absorbed {
			return nil
		}
	}
	return mc.append(part, key, value)
}

// append sends one record down the standard spill path, excluding any
// buffer-full block time from the emit accounting (it is already counted
// as map-thread idle time).
func (mc *mapCollector) append(part int, key, value []byte) error {
	waited, err := mc.buf.Append(part, key, value)
	mc.et.Exclude(waited)
	return err
}

// finish attributes trailing user time (input lines that emitted nothing).
func (mc *mapCollector) finish() {
	mc.et.Finish()
}

// writeSpillRun turns one spill into a sorted, partitioned run on the node
// disk and returns the run index. The support goroutine calls it once per
// spill. The grouping strategy is either the standard sort-based GROUP BY
// or, under the HashGroupSpills extension, a hash-based one: raw records
// are grouped and combined in a hash table and only the (far fewer)
// aggregates are sorted.
func writeSpillRun(disk vdisk.Disk, name string, parts int, recs kvio.PackedRecords, job *Job, combine CombineFunc, tm *metrics.TaskMetrics, sp spanner) (kvio.RunIndex, error) {
	if job.HashGroupSpills && combine != nil {
		return writeSpillRunHashed(disk, name, parts, recs, job, combine, tm, sp)
	}
	t0 := time.Now()
	sortSpan := sp.start(trace.KindSort, trace.LaneSupport)
	kvio.SortPacked(recs)
	sortSpan.EndCounts(int64(recs.Len()), recs.ArenaBytes())
	tm.Add(metrics.OpSort, time.Since(t0))
	debugAssertSortedPacked(recs, name)

	t1 := time.Now()
	var combineDur time.Duration
	rw, err := kvio.NewRunSink(disk, name, parts, job.CompressRuns)
	if err != nil {
		return kvio.RunIndex{}, err
	}
	var vals [][]byte
	i := 0
	n := recs.Len()
	var combineIn, combineOut int64
	for i < n {
		j := i + 1
		for j < n && recs.Meta[j].Part == recs.Meta[i].Part && recs.KeyEqual(i, j) {
			j++
		}
		if combine == nil || j-i == 1 {
			for k := i; k < j; k++ {
				if err := rw.Append(recs.Part(k), recs.Key(k), recs.Value(k)); err != nil {
					return kvio.RunIndex{}, err
				}
			}
		} else {
			vals = vals[:0]
			for k := i; k < j; k++ {
				vals = append(vals, recs.Value(k))
			}
			combineIn += int64(j - i)
			c0 := time.Now()
			err := combine(recs.Key(i), vals, func(k, v []byte) error {
				combineOut++
				return rw.Append(recs.Part(i), k, v)
			})
			combineDur += time.Since(c0)
			if err != nil {
				return kvio.RunIndex{}, fmt.Errorf("mr: combine during spill: %w", err)
			}
		}
		i = j
	}
	idx, err := rw.Close()
	if err != nil {
		return kvio.RunIndex{}, err
	}
	// Combine runs interleaved with the spill write; its span is the
	// accumulated user-combine duration anchored at the write start.
	sp.tr.Complete(trace.KindCombine, trace.LaneSupport, sp.node, sp.task, sp.slot, t1, combineDur)
	tm.Add(metrics.OpCombineUser, combineDur)
	tm.Add(metrics.OpSpillIO, time.Since(t1)-combineDur)
	tm.Inc(metrics.CtrSpillRecords, idx.TotalRecords())
	tm.Inc(metrics.CtrSpillBytes, idx.TotalBytes())
	tm.Inc(metrics.CtrSpillCount, 1)
	tm.Inc(metrics.CtrCombineInRecords, combineIn)
	tm.Inc(metrics.CtrCombineOutRecords, combineOut)
	return idx, nil
}

// writeSpillRunHashed is the hash-based GROUP BY spill path (§VII future
// work, after Lin et al.): group raw records by (partition, key) in a hash
// table, combine each group once, sort only the combined aggregates, and
// write them out. For skewed text keys the aggregates are a small fraction
// of the raw records, so the sort shrinks dramatically. Hash grouping
// replaces the sort-based grouping, so its time is attributed to OpSort.
func writeSpillRunHashed(disk vdisk.Disk, name string, parts int, recs kvio.PackedRecords, job *Job, combine CombineFunc, tm *metrics.TaskMetrics, sp spanner) (kvio.RunIndex, error) {
	type group struct {
		part int
		key  []byte
		vals [][]byte
	}
	groupSpan := sp.start(trace.KindSort, trace.LaneSupport)
	t0 := time.Now()
	n := recs.Len()
	groups := make(map[string]*group, n/4+16)
	for i := 0; i < n; i++ {
		key := recs.Key(i) // aliases the arena, stable for this call
		g, ok := groups[string(key)]
		if !ok {
			g = &group{part: recs.Part(i), key: key}
			groups[string(key)] = g
		}
		g.vals = append(g.vals, recs.Value(i))
	}
	tm.Add(metrics.OpSort, time.Since(t0))

	var combineDur time.Duration
	var combined []kvio.Record
	var combineIn, combineOut int64
	t1 := time.Now()
	for _, g := range groups {
		if len(g.vals) == 1 {
			combined = append(combined, kvio.Record{Part: g.part, Key: g.key, Value: g.vals[0]})
			continue
		}
		combineIn += int64(len(g.vals))
		c0 := time.Now()
		err := combine(g.key, g.vals, func(k, v []byte) error {
			combineOut++
			combined = append(combined, kvio.Record{Part: g.part, Key: append([]byte(nil), k...), Value: append([]byte(nil), v...)})
			return nil
		})
		combineDur += time.Since(c0)
		if err != nil {
			return kvio.RunIndex{}, fmt.Errorf("mr: combine during hashed spill: %w", err)
		}
	}
	kvio.SortRecords(combined) // only the aggregates: the whole point
	groupSpan.EndCounts(int64(len(combined)), 0)
	tm.Add(metrics.OpSort, time.Since(t1)-combineDur)
	debugAssertSorted(combined, name)
	sp.tr.Complete(trace.KindCombine, trace.LaneSupport, sp.node, sp.task, sp.slot, t1, combineDur)
	tm.Add(metrics.OpCombineUser, combineDur)

	w0 := time.Now()
	rw, err := kvio.NewRunSink(disk, name, parts, job.CompressRuns)
	if err != nil {
		return kvio.RunIndex{}, err
	}
	for _, r := range combined {
		if err := rw.Append(r.Part, r.Key, r.Value); err != nil {
			return kvio.RunIndex{}, err
		}
	}
	idx, err := rw.Close()
	if err != nil {
		return kvio.RunIndex{}, err
	}
	tm.Add(metrics.OpSpillIO, time.Since(w0))
	tm.Inc(metrics.CtrSpillRecords, idx.TotalRecords())
	tm.Inc(metrics.CtrSpillBytes, idx.TotalBytes())
	tm.Inc(metrics.CtrSpillCount, 1)
	tm.Inc(metrics.CtrCombineInRecords, combineIn)
	tm.Inc(metrics.CtrCombineOutRecords, combineOut)
	return idx, nil
}

// runMapTask executes one attempt of a map task on the given node: the
// map goroutine reads the split and applies map(); the support goroutine
// sorts, combines and spills; the attempt ends with the merge of all spill
// runs (plus the drained frequency-buffer aggregates) into one partitioned
// output run, written under the attempt's temp namespace. The returned
// created list names the attempt's surviving files (on success, just the
// uncommitted output run) so the runner can commit-by-rename or sweep.
func runMapTask(c *cluster.Cluster, job *Job, taskIdx int, split Split, node, slot, attempt int, plan *chaos.Plan) (mapOutput, TaskReport, []string, error) {
	if plan != nil {
		if d := plan.Delay(); d > 0 {
			time.Sleep(d) // manufactured straggler
		}
	}
	start := time.Now()
	tm := metrics.NewTaskMetrics()
	disk := c.Disks[node]
	dir := attemptDir(job.filePrefix, taskIdx, attempt)
	var created []string
	report := TaskReport{Kind: "map", Index: taskIdx, Node: node}
	sp := spanner{tr: job.Trace, node: node, task: taskIdx, slot: slot, attempt: attempt}
	taskSpan := sp.start(trace.KindMapTask, trace.LaneMap)
	endTaskSpan := func() {
		taskSpan.EndCounts(tm.Counter(metrics.CtrMapOutputRecords), tm.Counter(metrics.CtrMapOutputBytes))
	}
	fail := func(err error) (mapOutput, TaskReport, []string, error) {
		report.Wall = time.Since(start)
		report.Metrics = tm.Snapshot()
		endTaskSpan()
		return mapOutput{}, report, created, fmt.Errorf("mr: map task %d attempt %d (node %d): %w", taskIdx, attempt, node, err)
	}

	// Memory budget: frequency-buffering carves its table out of the spill
	// buffer so total memory stays constant (§V-B2).
	bufBytes := job.SpillBufferBytes
	var freq *freqbuf.Buffer
	var cache *freqbuf.Cache
	mc := &mapCollector{
		job:  job,
		tm:   tm,
		et:   metrics.NewEmitTimer(tm, metrics.DefaultEmitWarmup, metrics.DefaultEmitPeriod),
		sp:   sp,
		plan: plan,
	}

	ctrl := job.newController()
	if job.FreqBuf != nil {
		fb := job.FreqBuf
		tableBytes := int64(float64(bufBytes) * fb.MemFraction)
		bufBytes -= tableBytes

		var timedCombine CombineFunc
		if job.Combine != nil {
			timedCombine = func(key []byte, vals [][]byte, emit func(k, v []byte) error) error {
				t0 := time.Now()
				err := job.Combine(key, vals, emit)
				d := time.Since(t0)
				mc.combineAcc += d
				tm.Add(metrics.OpCombineUser, d)
				return err
			}
		}
		// The scanner is created after the freq buffer; the estimator
		// reads it through the collector, which is bound below.
		expected := func() int64 {
			if mc.scanner == nil {
				return 1 << 20
			}
			consumed := mc.scanner.Consumed()
			if consumed <= 0 || mc.emitted == 0 {
				return 1 << 20
			}
			return int64(float64(mc.emitted)/float64(consumed)*float64(split.Len)) + 1
		}
		var err error
		freq, err = freqbuf.New(freqbuf.Config{
			K:               fb.K,
			MemoryBytes:     tableBytes,
			SampleFraction:  fb.SampleFraction,
			ValuesPerKeyCap: fb.ValuesPerKeyCap,
			ExpectedRecords: expected,
		}, timedCombine)
		if err != nil {
			return fail(err)
		}
		if fb.ShareTopK {
			cache = c.FreqCaches[node]
			if keys, ok := cache.Get(job.filePrefix); ok {
				freq.InstallTopK(keys, func(k []byte) int { return job.Partition(k, job.NumReducers) })
			}
		}
		mc.freq = freq
		mc.cache = cache
	}

	buf, err := spillbuf.New(bufBytes, ctrl, tm)
	if err != nil {
		return fail(err)
	}
	buf.AttachTrace(job.Trace, node, taskIdx, slot)
	mc.buf = buf

	// Support goroutine: consume spills. It appends to runs and created;
	// both are read only after the goroutine is joined via supportErr.
	var runs []kvio.RunIndex
	supportErr := make(chan error, 1)
	go func() {
		spillSeq := 0
		for {
			spill, ok := buf.NextSpill()
			if !ok {
				supportErr <- nil
				return
			}
			debugAssert(spill.Seq == spillSeq, "spill sequence mismatch: buffer handed seq %d, support expected %d", spill.Seq, spillSeq)
			if plan != nil {
				if err := plan.Check(chaos.SiteSpillWrite); err != nil {
					// Closing from the consumer side unblocks a producer
					// waiting for buffer space it would otherwise wait on
					// forever; its ErrClosed is superseded at the join.
					buf.Close()
					supportErr <- err
					return
				}
			}
			spillSpan := sp.start(trace.KindSpill, trace.LaneSupport)
			spillRecords := int64(spill.Recs.Len())
			consumeStart := time.Now()
			name := attemptSpillName(dir, spillSeq)
			spillSeq++
			created = append(created, name)
			idx, err := writeSpillRun(disk, name, job.NumReducers, spill.Recs, job, job.Combine, tm, sp)
			if err != nil {
				spillSpan.EndCounts(spillRecords, spill.Bytes)
				buf.Release(spill, time.Since(consumeStart))
				buf.Close() // unblock the producer; see the check above
				supportErr <- err
				return
			}
			runs = append(runs, idx)
			spillSpan.EndCounts(spillRecords, spill.Bytes)
			buf.Release(spill, time.Since(consumeStart))
		}
	}()

	// Map goroutine: read the split and apply map().
	scanner, err := openSplit(c.FS, split, node, job)
	if err != nil {
		buf.Close()
		<-supportErr
		return fail(err)
	}
	mc.scanner = scanner
	mapper := job.NewMapper()
	mc.et.Restart()
	var mapErr error
	for {
		if job.cancel.Load() {
			mapErr = errJobCanceled
			break
		}
		if plan != nil {
			if err := plan.Check(chaos.SiteRecordRead); err != nil {
				mapErr = err
				break
			}
		}
		off, line, ok, err := scanner.Next()
		if err != nil {
			mapErr = err
			break
		}
		if !ok {
			break
		}
		tm.Inc(metrics.CtrMapInputRecords, 1)
		if err := mapper.Map(off, line, mc); err != nil {
			mapErr = fmt.Errorf("map(): %w", err)
			break
		}
	}
	mc.finish()
	if cerr := scanner.Close(); cerr != nil && mapErr == nil {
		mapErr = fmt.Errorf("closing input split: %w", cerr)
	}

	// Drain the frequency buffer: its aggregates join the merge directly.
	var drained []kvio.Record
	if freq != nil && mapErr == nil {
		t0 := time.Now()
		before := mc.combineAcc
		drained, err = freq.Drain()
		tm.Add(metrics.OpProfile, time.Since(t0)-(mc.combineAcc-before))
		if err != nil {
			mapErr = err
		}
		report.FreqStats = freq.Stats()
		tm.Inc(metrics.CtrFreqMisses, report.FreqStats.Misses)
		tm.Inc(metrics.CtrFreqProfiled, report.FreqStats.Profiled)
	}

	buf.Close()
	// The support goroutine's error wins over a map-side ErrClosed: when the
	// consumer dies it closes the buffer, so the producer's failure is just
	// the echo of the support failure.
	if err := <-supportErr; err != nil && (mapErr == nil || errors.Is(mapErr, spillbuf.ErrClosed)) {
		mapErr = fmt.Errorf("support thread: %w", err)
	}
	if mapErr != nil {
		return fail(mapErr)
	}

	// Merge all spill runs (plus drained frequent-key aggregates) into the
	// attempt's partitioned output run; the runner commits the winning
	// attempt by renaming it to the canonical map-output name.
	outName := attemptMapOutName(dir)
	created = append(created, outName)
	out, err := kvio.NewRunSink(disk, outName, job.NumReducers, job.CompressRuns)
	if err != nil {
		return fail(err)
	}
	var mergeCombineAcc time.Duration
	timedMergeCombine := job.Combine
	if job.Combine != nil {
		timedMergeCombine = func(key []byte, vals [][]byte, emit func(k, v []byte) error) error {
			t0 := time.Now()
			err := job.Combine(key, vals, emit)
			mergeCombineAcc += time.Since(t0)
			return err
		}
	}
	drainByPart, err := splitByPartition(drained, job.NumReducers)
	if err != nil {
		return fail(err)
	}
	mergeSpan := sp.start(trace.KindMerge, trace.LaneMap)
	for p := 0; p < job.NumReducers; p++ {
		if job.cancel.Load() {
			mergeSpan.End()
			return fail(errJobCanceled)
		}
		if plan != nil {
			if err := plan.Check(chaos.SiteMerge); err != nil {
				mergeSpan.End()
				return fail(err)
			}
		}
		t0 := time.Now()
		before := mergeCombineAcc
		var streams []kvio.Stream
		for _, run := range runs {
			s, err := kvio.OpenRunPart(disk, run, p)
			if err != nil {
				return fail(err)
			}
			streams = append(streams, s)
		}
		if len(drainByPart[p]) > 0 {
			streams = append(streams, kvio.NewSliceStream(drainByPart[p]))
		}
		if _, _, err := kvio.MergeInto(streams, p, out, timedMergeCombine); err != nil {
			return fail(err)
		}
		delta := mergeCombineAcc - before
		tm.Add(metrics.OpMerge, time.Since(t0)-delta)
		tm.Add(metrics.OpCombineUser, delta)
	}
	outIdx, err := out.Close()
	if err != nil {
		mergeSpan.End()
		return fail(err)
	}
	mergeSpan.EndCounts(outIdx.TotalRecords(), outIdx.TotalBytes())
	tm.Inc(metrics.CtrMergeBytes, outIdx.TotalBytes())

	// Spill files are no longer needed. Removal is best-effort cleanup:
	// failures are counted, not fatal.
	for _, run := range runs {
		if err := disk.Remove(run.Name); err != nil {
			tm.Inc(metrics.CtrCleanupErrors, 1)
		}
	}

	report.Wall = time.Since(start)
	report.Spill = buf.Stats()
	report.Metrics = tm.Snapshot()
	endTaskSpan()
	// The spills are gone; the only surviving attempt file is the output
	// run, which the runner either commits or sweeps.
	return mapOutput{node: node, index: outIdx}, report, []string{outName}, nil
}

// splitByPartition groups already-sorted drained records by partition,
// preserving key order within each partition. A record carrying an
// out-of-range partition is a routing bug upstream (it would silently
// land in the wrong reducer's output), so it fails the task instead of
// being coerced somewhere plausible.
func splitByPartition(recs []kvio.Record, parts int) ([][]kvio.Record, error) {
	out := make([][]kvio.Record, parts)
	for _, r := range recs {
		if r.Part < 0 || r.Part >= parts {
			return nil, fmt.Errorf("mr: drained record key %q routed to partition %d (have %d partitions)", r.Key, r.Part, parts)
		}
		out[r.Part] = append(out[r.Part], r)
	}
	return out, nil
}
