package mr

import (
	"bufio"
	"errors"
	"fmt"
	"sync"
	"time"

	"mrtext/internal/chaos"
	"mrtext/internal/cluster"
	"mrtext/internal/kvio"
	"mrtext/internal/metrics"
	"mrtext/internal/serde"
	"mrtext/internal/trace"
	"mrtext/internal/vdisk"
)

// chargedStream wraps a Stream whose records flow from a remote map node:
// it counts shuffle volume and charges the fabric in MTU-sized batches
// (per-record charging would pay the per-transfer latency millions of
// times; a real shuffle server streams frames). Each batch transfer is
// recorded as a wait-fabric span at sp's coordinates — the reduce attempt
// consuming the stream — so blocked fabric time is separable from merge
// and shuffle I/O in the trace.
type chargedStream struct {
	inner   kvio.Stream
	c       *cluster.Cluster
	src     int
	dst     int
	tm      *metrics.TaskMetrics
	sp      spanner
	pending int64
}

// shuffleBatchBytes is the transfer granularity of the simulated shuffle
// server.
const shuffleBatchBytes = 64 << 10

func (s *chargedStream) Next() (key, value []byte, err error) {
	k, v, err := s.inner.Next()
	if err != nil {
		return k, v, err
	}
	n := int64(len(k) + len(v) + 4)
	s.tm.Inc(metrics.CtrShuffleBytes, n)
	if s.src != s.dst {
		s.pending += n
		if s.pending >= shuffleBatchBytes {
			if terr := s.flush(); terr != nil {
				return nil, nil, terr
			}
		}
	}
	return k, v, nil
}

func (s *chargedStream) flush() error {
	n := s.pending
	s.pending = 0
	if n == 0 {
		return nil
	}
	t0 := time.Now()
	err := s.c.Net.Transfer(s.src, s.dst, n)
	d := time.Since(t0)
	s.tm.Inc(metrics.CtrShuffleFabricWaitNS, int64(d))
	s.sp.tr.Complete(trace.KindWaitFabric, trace.LaneReduce, s.sp.node, s.sp.task, s.sp.slot, t0, d)
	return err
}

func (s *chargedStream) Close() error {
	return errors.Join(s.flush(), s.inner.Close())
}

// countedStream wraps a staged-segment Stream: the fabric hop was already
// charged in one piece when the segment was taken from staging, so only
// the shuffle-volume counter accrues per record.
type countedStream struct {
	inner kvio.Stream
	tm    *metrics.TaskMetrics
}

func (s *countedStream) Next() (key, value []byte, err error) {
	k, v, err := s.inner.Next()
	if err == nil {
		s.tm.Inc(metrics.CtrShuffleBytes, int64(len(k)+len(v)+4))
	}
	return k, v, err
}

func (s *countedStream) Close() error { return s.inner.Close() }

// shuffleEnv is the pipelined shuffle as a reduce attempt sees it: the
// staging service to take segments from, plus the runner's lost-map-output
// recovery exposed so an attempt that catches a source node's death
// mid-fetch can refresh its snapshot and refetch instead of failing.
type shuffleEnv struct {
	svc        *shuffleService
	backoff    time.Duration
	resnapshot func() []mapOutput
}

// maxFetchRetries bounds, per source, both absorbed injected shuffle-fetch
// faults and post-recovery refetches within one reduce attempt.
const maxFetchRetries = 4

// fetchSerial opens this partition's segment of every map output in map-
// task order — the pre-pipelining shuffle. On error it closes whatever it
// opened and returns the joined errors.
func fetchSerial(c *cluster.Cluster, job *Job, part, node int, plan *chaos.Plan, mapOuts []mapOutput, tm *metrics.TaskMetrics, sp spanner) ([]kvio.Stream, error) {
	streams := make([]kvio.Stream, 0, len(mapOuts))
	closeAll := func(err error) error {
		errs := []error{err}
		for _, os := range streams {
			errs = append(errs, os.Close())
		}
		return errors.Join(errs...)
	}
	for _, mo := range mapOuts {
		if job.cancel.Load() {
			return nil, closeAll(errJobCanceled)
		}
		t0 := time.Now()
		if err := plan.Check(chaos.SiteShuffleFetch); err != nil {
			return nil, closeAll(err)
		}
		s, err := kvio.OpenRunPart(c.Disks[mo.node], mo.index, part)
		if err != nil {
			return nil, closeAll(err)
		}
		job.Hists.ShuffleFetch.Record(int64(time.Since(t0)))
		streams = append(streams, &chargedStream{inner: s, c: c, src: mo.node, dst: node, tm: tm, sp: sp})
	}
	return streams, nil
}

// fetchConcurrent is the pipelined-shuffle fetch: a pool of workers (the
// attempt-side face of the copier fan-out) resolves every source either
// from the staging service or by direct fetch. The resulting slice is
// indexed by map-task position, preserving the merge's stream order — and
// with it byte-identical output — regardless of completion order.
func fetchConcurrent(c *cluster.Cluster, job *Job, sh *shuffleEnv, part, node int, plan *chaos.Plan, mapOuts []mapOutput, tm *metrics.TaskMetrics, sp spanner) ([]kvio.Stream, error) {
	streams := make([]kvio.Stream, len(mapOuts))
	workers := job.ShuffleCopiers
	if workers > len(mapOuts) {
		workers = len(mapOuts)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				st, err := fetchOne(c, job, sh, part, node, plan, i, mapOuts[i], tm, sp)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				streams[i] = st
			}
		}()
	}
	for i := range mapOuts {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	if firstErr != nil {
		errs := []error{firstErr}
		for _, st := range streams {
			if st != nil {
				errs = append(errs, st.Close())
			}
		}
		return nil, errors.Join(errs...)
	}
	return streams, nil
}

// fetchOne resolves a single source for a reduce attempt. An injected
// fault at the fetch site is absorbed by bounded retry with the job's
// jittered backoff — the attempt survives; only real node death reaches
// the caller. A source node found dead triggers in-attempt lost-map-output
// recovery and a refetch from the refreshed snapshot.
func fetchOne(c *cluster.Cluster, job *Job, sh *shuffleEnv, part, node int, plan *chaos.Plan, i int, mo mapOutput, tm *metrics.TaskMetrics, sp spanner) (kvio.Stream, error) {
	acquireStart := time.Now()
	for try := 0; ; try++ {
		if job.cancel.Load() {
			return nil, errJobCanceled
		}
		err := plan.Check(chaos.SiteShuffleFetch)
		if err == nil {
			break
		}
		if !errors.Is(err, chaos.ErrInjected) || try >= maxFetchRetries {
			return nil, err
		}
		sh.svc.noteRetry()
		t0 := time.Now()
		time.Sleep(backoffFor(sh.backoff, i, try+1))
		slept := time.Since(t0)
		tm.Inc(metrics.CtrShuffleRetryWaitNS, int64(slept))
		sp.tr.Complete(trace.KindWaitRetry, trace.LaneReduce, sp.node, sp.task, sp.slot, t0, slept)
	}
	if st, _, ok := sh.svc.take(part, i, node, sp); ok {
		job.Hists.ShuffleFetch.Record(int64(time.Since(acquireStart)))
		return &countedStream{inner: st, tm: tm}, nil
	}
	// Not staged (or the staging node died): direct fetch from the source
	// disk, exactly like the serial path.
	for try := 0; ; try++ {
		s, err := kvio.OpenRunPart(c.Disks[mo.node], mo.index, part)
		if err == nil {
			job.Hists.ShuffleFetch.Record(int64(time.Since(acquireStart)))
			return &chargedStream{inner: s, c: c, src: mo.node, dst: node, tm: tm, sp: sp}, nil
		}
		if !errors.Is(err, chaos.ErrNodeDead) || sh.resnapshot == nil || try >= maxFetchRetries {
			return nil, err
		}
		snap := sh.resnapshot()
		if i < len(snap) {
			mo = snap[i]
		}
	}
}

// groupValues adapts a Merger group to the user-facing ValueIter, timing
// value pulls as shuffle work so user reduce() time is measured cleanly.
type groupValues struct {
	m       *kvio.Merger
	pullAcc *time.Duration
	values  int64
}

func (g *groupValues) Next() (value []byte, ok bool, err error) {
	t0 := time.Now()
	v, ok, err := g.m.NextValue()
	*g.pullAcc += time.Since(t0)
	if ok {
		g.values++
	}
	return v, ok, err
}

// reduceCollector writes final output records through the job's format,
// timing output I/O separately from user reduce time.
type reduceCollector struct {
	job    *Job
	w      *serde.Writer
	bufw   *bufio.Writer
	tm     *metrics.TaskMetrics
	ioAcc  *time.Duration
	plan   *chaos.Plan
	groups int64
	values int64
}

func (rc *reduceCollector) Collect(key, value []byte) error {
	if rc.plan != nil {
		if err := rc.plan.Check(chaos.SiteReduceWrite); err != nil {
			return err
		}
	}
	t0 := time.Now()
	defer func() { *rc.ioAcc += time.Since(t0) }()
	rc.tm.Inc(metrics.CtrOutputRecords, 1)
	if rc.job.Format != nil {
		line, err := rc.job.Format(key, value)
		if err != nil {
			return fmt.Errorf("mr: formatting output: %w", err)
		}
		rc.tm.Inc(metrics.CtrOutputBytes, int64(len(line)))
		_, err = rc.bufw.Write(line)
		return err
	}
	rc.tm.Inc(metrics.CtrOutputBytes, int64(serde.KVLen(len(key), len(value))))
	return rc.w.WriteKV(key, value)
}

// ReduceOutputName returns the DFS name of partition r's output file.
func ReduceOutputName(prefix string, r int) string {
	return fmt.Sprintf("%s-r-%05d", prefix, r)
}

// runReduceTask executes one attempt of a reduce task: fetch this
// partition of every map output — from the pipelined shuffle's staging
// when sh is non-nil, direct positioned reads otherwise — merge-sort,
// group, apply reduce(), and write the output to an attempt-scoped DFS
// temp file. On success the attempt commits by renaming the temp to the
// canonical output name; the DFS's fail-on-exist rename makes the first
// committer win, so a losing duplicate attempt returns won=false with its
// temp left in created for the runner to sweep.
func runReduceTask(c *cluster.Cluster, job *Job, part, node, slot, attempt int, plan *chaos.Plan, sh *shuffleEnv, mapOuts []mapOutput) (outName string, won bool, created []string, rep TaskReport, err error) {
	if plan != nil {
		if d := plan.Delay(); d > 0 {
			time.Sleep(d) // manufactured straggler
		}
	}
	start := time.Now()
	tm := metrics.NewTaskMetrics()
	report := TaskReport{Kind: "reduce", Index: part, Node: node}
	sp := spanner{tr: job.Trace, node: node, task: part, slot: slot, attempt: attempt}
	taskSpan := sp.start(trace.KindReduceTask, trace.LaneReduce)
	fail := func(err error) (string, bool, []string, TaskReport, error) {
		report.Wall = time.Since(start)
		report.ShuffleBytes = tm.Counter(metrics.CtrShuffleBytes)
		report.Metrics = tm.Snapshot()
		taskSpan.EndCounts(tm.Counter(metrics.CtrOutputRecords), tm.Counter(metrics.CtrOutputBytes))
		return "", false, created, report, fmt.Errorf("mr: reduce task %d attempt %d (node %d): %w", part, attempt, node, err)
	}

	// Shuffle: resolve this partition's segment of every map output.
	shuffleStart := time.Now()
	fetchSpan := sp.start(trace.KindShuffleFetch, trace.LaneReduce)
	var streams []kvio.Stream
	if sh != nil && sh.svc != nil {
		streams, err = fetchConcurrent(c, job, sh, part, node, plan, mapOuts, tm, sp)
	} else {
		streams, err = fetchSerial(c, job, part, node, plan, mapOuts, tm, sp)
	}
	if err != nil {
		fetchSpan.End()
		return fail(err)
	}
	merger, err := kvio.NewMerger(streams)
	if err != nil {
		fetchSpan.End()
		return fail(err)
	}
	defer merger.Close()
	fetchSpan.EndCounts(int64(len(streams)), 0)
	tm.Add(metrics.OpShuffle, time.Since(shuffleStart))

	tmpName := attemptReduceTempName(job.OutputPrefix, part, attempt)
	outFile, err := c.FS.Create(tmpName, node)
	if err != nil {
		return fail(err)
	}
	created = append(created, tmpName)
	bufw := bufio.NewWriterSize(outFile, 64<<10)
	var pullAcc, ioAcc time.Duration
	rc := &reduceCollector{job: job, w: serde.NewWriter(bufw), bufw: bufw, tm: tm, ioAcc: &ioAcc, plan: plan}
	reducer := job.NewReducer()

	for {
		if job.cancel.Load() {
			return fail(errors.Join(errJobCanceled, outFile.Close()))
		}
		t0 := time.Now()
		key, ok, err := merger.NextGroup()
		tm.Add(metrics.OpShuffle, time.Since(t0))
		if err != nil {
			return fail(errors.Join(err, outFile.Close()))
		}
		if !ok {
			break
		}
		tm.Inc(metrics.CtrReduceInputGroups, 1)
		iter := &groupValues{m: merger, pullAcc: &pullAcc}
		g0 := time.Now()
		pullBefore, ioBefore := pullAcc, ioAcc
		if err := reducer.Reduce(key, iter, rc); err != nil {
			return fail(fmt.Errorf("reduce(): %w", errors.Join(err, outFile.Close())))
		}
		tm.Inc(metrics.CtrReduceInputValues, iter.values)
		total := time.Since(g0)
		pullDelta := pullAcc - pullBefore
		ioDelta := ioAcc - ioBefore
		tm.Add(metrics.OpShuffle, pullDelta)
		tm.Add(metrics.OpOutputIO, ioDelta)
		tm.Add(metrics.OpReduceUser, total-pullDelta-ioDelta)
	}

	t0 := time.Now()
	if err := bufw.Flush(); err != nil {
		return fail(errors.Join(err, outFile.Close()))
	}
	if err := outFile.Close(); err != nil {
		return fail(err)
	}
	tm.Add(metrics.OpOutputIO, time.Since(t0))

	// Commit: rename the attempt temp onto the canonical output name.
	// ErrExist means a rival attempt already committed — not a failure,
	// just a lost race; the temp stays in created for the runner to sweep.
	finalName := ReduceOutputName(job.OutputPrefix, part)
	rerr := c.FS.Rename(tmpName, finalName)
	won = rerr == nil
	if won {
		created = nil
	} else if !errors.Is(rerr, vdisk.ErrExist) {
		return fail(rerr)
	}

	report.Wall = time.Since(start)
	report.ShuffleBytes = tm.Counter(metrics.CtrShuffleBytes)
	report.Metrics = tm.Snapshot()
	taskSpan.EndCounts(tm.Counter(metrics.CtrOutputRecords), tm.Counter(metrics.CtrOutputBytes))
	return finalName, won, created, report, nil
}
