package mr

import (
	"bufio"
	"errors"
	"fmt"
	"time"

	"mrtext/internal/chaos"
	"mrtext/internal/cluster"
	"mrtext/internal/kvio"
	"mrtext/internal/metrics"
	"mrtext/internal/serde"
	"mrtext/internal/trace"
	"mrtext/internal/vdisk"
)

// chargedStream wraps a Stream whose records flow from a remote map node:
// it counts shuffle volume and charges the fabric in MTU-sized batches
// (per-record charging would pay the per-transfer latency millions of
// times; a real shuffle server streams frames).
type chargedStream struct {
	inner   kvio.Stream
	c       *cluster.Cluster
	src     int
	dst     int
	tm      *metrics.TaskMetrics
	pending int64
}

// shuffleBatchBytes is the transfer granularity of the simulated shuffle
// server.
const shuffleBatchBytes = 64 << 10

func (s *chargedStream) Next() (key, value []byte, err error) {
	k, v, err := s.inner.Next()
	if err != nil {
		return k, v, err
	}
	n := int64(len(k) + len(v) + 4)
	s.tm.Inc(metrics.CtrShuffleBytes, n)
	if s.src != s.dst {
		s.pending += n
		if s.pending >= shuffleBatchBytes {
			if terr := s.flush(); terr != nil {
				return nil, nil, terr
			}
		}
	}
	return k, v, nil
}

func (s *chargedStream) flush() error {
	n := s.pending
	s.pending = 0
	if n == 0 {
		return nil
	}
	return s.c.Net.Transfer(s.src, s.dst, n)
}

func (s *chargedStream) Close() error {
	return errors.Join(s.flush(), s.inner.Close())
}

// groupValues adapts a Merger group to the user-facing ValueIter, timing
// value pulls as shuffle work so user reduce() time is measured cleanly.
type groupValues struct {
	m       *kvio.Merger
	pullAcc *time.Duration
	values  int64
}

func (g *groupValues) Next() (value []byte, ok bool, err error) {
	t0 := time.Now()
	v, ok, err := g.m.NextValue()
	*g.pullAcc += time.Since(t0)
	if ok {
		g.values++
	}
	return v, ok, err
}

// reduceCollector writes final output records through the job's format,
// timing output I/O separately from user reduce time.
type reduceCollector struct {
	job    *Job
	w      *serde.Writer
	bufw   *bufio.Writer
	tm     *metrics.TaskMetrics
	ioAcc  *time.Duration
	plan   *chaos.Plan
	groups int64
	values int64
}

func (rc *reduceCollector) Collect(key, value []byte) error {
	if rc.plan != nil {
		if err := rc.plan.Check(chaos.SiteReduceWrite); err != nil {
			return err
		}
	}
	t0 := time.Now()
	defer func() { *rc.ioAcc += time.Since(t0) }()
	rc.tm.Inc(metrics.CtrOutputRecords, 1)
	if rc.job.Format != nil {
		line, err := rc.job.Format(key, value)
		if err != nil {
			return fmt.Errorf("mr: formatting output: %w", err)
		}
		rc.tm.Inc(metrics.CtrOutputBytes, int64(len(line)))
		_, err = rc.bufw.Write(line)
		return err
	}
	rc.tm.Inc(metrics.CtrOutputBytes, int64(serde.KVLen(len(key), len(value))))
	return rc.w.WriteKV(key, value)
}

// ReduceOutputName returns the DFS name of partition r's output file.
func ReduceOutputName(prefix string, r int) string {
	return fmt.Sprintf("%s-r-%05d", prefix, r)
}

// runReduceTask executes one attempt of a reduce task: fetch this
// partition of every map output (local reads for co-located outputs,
// fabric transfers otherwise), merge-sort, group, apply reduce(), and
// write the output to an attempt-scoped DFS temp file. On success the
// attempt commits by renaming the temp to the canonical output name; the
// DFS's fail-on-exist rename makes the first committer win, so a losing
// duplicate attempt returns won=false with its temp left in created for
// the runner to sweep.
func runReduceTask(c *cluster.Cluster, job *Job, part, node, slot, attempt int, plan *chaos.Plan, mapOuts []mapOutput) (outName string, won bool, created []string, rep TaskReport, err error) {
	if plan != nil {
		if d := plan.Delay(); d > 0 {
			time.Sleep(d) // manufactured straggler
		}
	}
	start := time.Now()
	tm := metrics.NewTaskMetrics()
	report := TaskReport{Kind: "reduce", Index: part, Node: node}
	sp := spanner{tr: job.Trace, node: node, task: part, slot: slot, attempt: attempt}
	taskSpan := sp.start(trace.KindReduceTask, trace.LaneReduce)
	fail := func(err error) (string, bool, []string, TaskReport, error) {
		report.Wall = time.Since(start)
		report.ShuffleBytes = tm.Counter(metrics.CtrShuffleBytes)
		report.Metrics = tm.Snapshot()
		taskSpan.EndCounts(tm.Counter(metrics.CtrOutputRecords), tm.Counter(metrics.CtrOutputBytes))
		return "", false, created, report, fmt.Errorf("mr: reduce task %d attempt %d (node %d): %w", part, attempt, node, err)
	}

	// Shuffle: open this partition's segment of every map output.
	shuffleStart := time.Now()
	fetchSpan := sp.start(trace.KindShuffleFetch, trace.LaneReduce)
	streams := make([]kvio.Stream, 0, len(mapOuts))
	for _, mo := range mapOuts {
		if plan != nil {
			if err := plan.Check(chaos.SiteShuffleFetch); err != nil {
				errs := []error{err}
				for _, os := range streams {
					errs = append(errs, os.Close())
				}
				fetchSpan.End()
				return fail(errors.Join(errs...))
			}
		}
		s, err := kvio.OpenRunPart(c.Disks[mo.node], mo.index, part)
		if err != nil {
			errs := []error{err}
			for _, os := range streams {
				errs = append(errs, os.Close())
			}
			fetchSpan.End()
			return fail(errors.Join(errs...))
		}
		streams = append(streams, &chargedStream{inner: s, c: c, src: mo.node, dst: node, tm: tm})
	}
	merger, err := kvio.NewMerger(streams)
	if err != nil {
		fetchSpan.End()
		return fail(err)
	}
	defer merger.Close()
	fetchSpan.EndCounts(int64(len(streams)), 0)
	tm.Add(metrics.OpShuffle, time.Since(shuffleStart))

	tmpName := attemptReduceTempName(job.OutputPrefix, part, attempt)
	outFile, err := c.FS.Create(tmpName, node)
	if err != nil {
		return fail(err)
	}
	created = append(created, tmpName)
	bufw := bufio.NewWriterSize(outFile, 64<<10)
	var pullAcc, ioAcc time.Duration
	rc := &reduceCollector{job: job, w: serde.NewWriter(bufw), bufw: bufw, tm: tm, ioAcc: &ioAcc, plan: plan}
	reducer := job.NewReducer()

	for {
		t0 := time.Now()
		key, ok, err := merger.NextGroup()
		tm.Add(metrics.OpShuffle, time.Since(t0))
		if err != nil {
			return fail(errors.Join(err, outFile.Close()))
		}
		if !ok {
			break
		}
		tm.Inc(metrics.CtrReduceInputGroups, 1)
		iter := &groupValues{m: merger, pullAcc: &pullAcc}
		g0 := time.Now()
		pullBefore, ioBefore := pullAcc, ioAcc
		if err := reducer.Reduce(key, iter, rc); err != nil {
			return fail(fmt.Errorf("reduce(): %w", errors.Join(err, outFile.Close())))
		}
		tm.Inc(metrics.CtrReduceInputValues, iter.values)
		total := time.Since(g0)
		pullDelta := pullAcc - pullBefore
		ioDelta := ioAcc - ioBefore
		tm.Add(metrics.OpShuffle, pullDelta)
		tm.Add(metrics.OpOutputIO, ioDelta)
		tm.Add(metrics.OpReduceUser, total-pullDelta-ioDelta)
	}

	t0 := time.Now()
	if err := bufw.Flush(); err != nil {
		return fail(errors.Join(err, outFile.Close()))
	}
	if err := outFile.Close(); err != nil {
		return fail(err)
	}
	tm.Add(metrics.OpOutputIO, time.Since(t0))

	// Commit: rename the attempt temp onto the canonical output name.
	// ErrExist means a rival attempt already committed — not a failure,
	// just a lost race; the temp stays in created for the runner to sweep.
	finalName := ReduceOutputName(job.OutputPrefix, part)
	rerr := c.FS.Rename(tmpName, finalName)
	won = rerr == nil
	if won {
		created = nil
	} else if !errors.Is(rerr, vdisk.ErrExist) {
		return fail(rerr)
	}

	report.Wall = time.Since(start)
	report.ShuffleBytes = tm.Counter(metrics.CtrShuffleBytes)
	report.Metrics = tm.Snapshot()
	taskSpan.EndCounts(tm.Counter(metrics.CtrOutputRecords), tm.Counter(metrics.CtrOutputBytes))
	return finalName, won, created, report, nil
}
