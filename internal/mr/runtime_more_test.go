package mr_test

import (
	"bytes"
	"testing"

	"mrtext/internal/apps"
	"mrtext/internal/cluster"
	"mrtext/internal/metrics"
	"mrtext/internal/mr"
	"mrtext/internal/textgen"
)

// TestMultipleInputFiles: a job over several DFS files processes every
// block of each, matching the reference.
func TestMultipleInputFiles(t *testing.T) {
	c, err := cluster.New(cluster.Fast(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"part1.txt", "part2.txt", "part3.txt"} {
		w, err := c.FS.Create(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg := textgen.CorpusConfig{Vocabulary: 300, Alpha: 1, WordsPerLine: 6, Seed: int64(i + 1)}
		if _, err := textgen.Corpus(w, cfg, 64<<10); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	inputs := []string{"part1.txt", "part2.txt", "part3.txt"}
	ref, err := mr.RunReference(c, apps.WordCount(inputs...))
	if err != nil {
		t.Fatal(err)
	}
	job := apps.WordCount(inputs...)
	job.Name = "multi-input"
	res, err := mr.Run(c, job)
	if err != nil {
		t.Fatal(err)
	}
	got := readOutputs(t, c, res)
	for p := range ref {
		if !bytes.Equal(got[p], ref[p]) {
			t.Errorf("partition %d differs", p)
		}
	}
	if res.MapTasks < 3 {
		t.Errorf("only %d map tasks for 3 files", res.MapTasks)
	}
}

// TestMoreReducersThanKeys: empty reduce partitions produce empty output
// files, not errors.
func TestMoreReducersThanKeys(t *testing.T) {
	c, err := cluster.New(cluster.Fast(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FS.WriteFile("tiny.txt", []byte("solo\n")); err != nil {
		t.Fatal(err)
	}
	job := apps.WordCount("tiny.txt")
	job.Name = "sparse"
	job.NumReducers = 8
	res, err := mr.Run(c, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 8 {
		t.Fatalf("outputs %d", len(res.Outputs))
	}
	var nonEmpty int
	for _, name := range res.Outputs {
		data, err := c.FS.ReadFile(name)
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		if len(data) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Errorf("%d non-empty partitions for a single key", nonEmpty)
	}
}

// TestShuffleByteAccounting: shuffle volume is counted, and on a
// single-node cluster no bytes cross the fabric.
func TestShuffleByteAccounting(t *testing.T) {
	single, err := cluster.New(cluster.Fast(1))
	if err != nil {
		t.Fatal(err)
	}
	w, err := single.FS.Create("c.txt", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := textgen.Corpus(w, textgen.CorpusConfig{Vocabulary: 200, Alpha: 1, WordsPerLine: 8, Seed: 3}, 128<<10); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	job := apps.WordCount("c.txt")
	job.Name = "local-shuffle"
	res, err := mr.Run(single, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Counters[metrics.CtrShuffleBytes] == 0 {
		t.Error("shuffle bytes not counted")
	}
	if moved := single.Net.Stats().BytesMoved; moved != 0 {
		t.Errorf("single-node job moved %d bytes across the fabric", moved)
	}

	// Multi-node: some shuffle traffic must be remote.
	multi, err := cluster.New(cluster.Fast(4))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := multi.FS.Create("c.txt", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := textgen.Corpus(w2, textgen.CorpusConfig{Vocabulary: 200, Alpha: 1, WordsPerLine: 8, Seed: 3}, 4<<20); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	job2 := apps.WordCount("c.txt")
	job2.Name = "remote-shuffle"
	if _, err := mr.Run(multi, job2); err != nil {
		t.Fatal(err)
	}
	if multi.Net.Stats().BytesMoved == 0 {
		t.Error("multi-node job moved nothing across the fabric")
	}
}

// TestResultAggregationHelpers exercises FreqStats/SpillStats and the task
// report structure of a real run.
func TestResultAggregationHelpers(t *testing.T) {
	c, corpus := newTextCluster(t, 2, 256<<10)
	job := apps.WordCount(corpus)
	job.Name = "agg-helpers"
	job.SpillBufferBytes = 32 << 10
	job.FreqBuf = &mr.FreqBufConfig{K: 50, SampleFraction: 0.05, MemFraction: 0.3, ShareTopK: true}
	job.SpillMatcher = true
	res, err := mr.Run(c, job)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.FreqStats()
	if fs.Hits == 0 || fs.Profiled == 0 {
		t.Errorf("freq stats %+v", fs)
	}
	ss := res.SpillStats()
	if ss.Spills == 0 || ss.SpillBytes == 0 || ss.MaxPending == 0 {
		t.Errorf("spill stats %+v", ss)
	}
	var maps, reduces int
	for _, tr := range res.Tasks {
		switch tr.Kind {
		case "map":
			maps++
			if tr.Wall <= 0 {
				t.Error("map task with zero wall time")
			}
		case "reduce":
			reduces++
		default:
			t.Errorf("unknown task kind %q", tr.Kind)
		}
	}
	if maps != res.MapTasks || reduces != res.ReduceTasks {
		t.Errorf("task reports %d/%d, result says %d/%d", maps, reduces, res.MapTasks, res.ReduceTasks)
	}
	// Hits were recorded in the counter too, and agree with FreqStats.
	if res.Agg.Counters[metrics.CtrFreqHits] != fs.Hits {
		t.Errorf("counter hits %d vs stats hits %d", res.Agg.Counters[metrics.CtrFreqHits], fs.Hits)
	}
}

// TestTopKSharingAcrossTasks: with several splits per node, later tasks
// reuse the first task's frozen top-k (SharedTopK set, no re-profiling).
func TestTopKSharingAcrossTasks(t *testing.T) {
	c, corpus := newTextCluster(t, 1, 4<<20) // 1 node, several 1 MiB blocks
	job := apps.WordCount(corpus)
	job.Name = "sharing"
	job.FreqBuf = &mr.FreqBufConfig{K: 100, SampleFraction: 0.05, MemFraction: 0.3, ShareTopK: true}
	res, err := mr.Run(c, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.MapTasks < 2 {
		t.Skip("needs multiple map tasks")
	}
	var shared int
	for _, tr := range res.Tasks {
		if tr.Kind == "map" && tr.FreqStats.SharedTopK {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no task reused the node's frozen top-k")
	}
	// With sharing disabled every task profiles for itself.
	job2 := apps.WordCount(corpus)
	job2.Name = "no-sharing"
	job2.FreqBuf = &mr.FreqBufConfig{K: 100, SampleFraction: 0.05, MemFraction: 0.3, ShareTopK: false}
	res2, err := mr.Run(c, job2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res2.Tasks {
		if tr.Kind == "map" && tr.FreqStats.SharedTopK {
			t.Error("task shared top-k with sharing disabled")
		}
	}
}

// TestSpillMatcherAdaptsInRealRuns: under the matcher, recorded spill
// percentages move away from the static default.
func TestSpillMatcherAdaptsInRealRuns(t *testing.T) {
	c, corpus := newTextCluster(t, 2, 512<<10)
	job := apps.WordCount(corpus)
	job.Name = "adapting"
	job.SpillBufferBytes = 64 << 10
	job.SpillMatcher = true
	res, err := mr.Run(c, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpillStats().Spills < 2 {
		t.Skip("not enough spills to observe adaptation")
	}
	// The support thread (sort+combine+IO) and map thread both do real
	// work, so waits should be low relative to a 0.8 static run.
	static := apps.WordCount(corpus)
	static.Name = "static"
	static.SpillBufferBytes = 64 << 10
	resStatic, err := mr.Run(c, static)
	if err != nil {
		t.Fatal(err)
	}
	if res.MapIdleFraction() > resStatic.MapIdleFraction()+0.05 {
		t.Errorf("matcher map idle %.1f%% vs static %.1f%%",
			100*res.MapIdleFraction(), 100*resStatic.MapIdleFraction())
	}
}
