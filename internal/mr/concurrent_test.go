package mr_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mrtext/internal/apps"
	"mrtext/internal/chaos"
	"mrtext/internal/cluster"
	"mrtext/internal/metrics"
	"mrtext/internal/mr"
	"mrtext/internal/textgen"
	"mrtext/internal/trace"
)

// Concurrent-isolation suite: one cluster, many simultaneous mr.Run calls.
// The service contract is that concurrent jobs produce byte-identical
// outputs and isolated per-job Result counters versus serial runs, even
// when one of the jobs runs under a private chaos injector.

const (
	concNodes    = 4
	concReducers = 4
	concCorpus   = 512 << 10
)

func newConcCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	cfg := cluster.Fast(concNodes)
	cfg.BlockSize = 64 << 10
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	w, err := c.FS.Create("corpus.txt", 0)
	if err != nil {
		t.Fatalf("create corpus: %v", err)
	}
	gen := textgen.CorpusConfig{Vocabulary: 4000, Alpha: 1.0, WordsPerLine: 8, Seed: 17}
	if _, err := textgen.Corpus(w, gen, concCorpus); err != nil {
		t.Fatalf("generate corpus: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close corpus: %v", err)
	}
	return c
}

func concWordCount(name string) *mr.Job {
	job := apps.WordCount("corpus.txt")
	job.Name = name
	job.NumReducers = concReducers
	job.SpillBufferBytes = 32 << 10
	return job
}

func concSynText(name string) *mr.Job {
	job := apps.SynText(apps.SynTextConfig{CPUFactor: 2, Storage: 0.5}, "corpus.txt")
	job.Name = name
	job.NumReducers = concReducers
	job.SpillBufferBytes = 32 << 10
	return job
}

// deterministicCtrs are the counters that depend only on the input and
// the job configuration, never on scheduling: the set a concurrent run
// must reproduce exactly to prove its accounting did not interleave with
// a neighbor's.
var deterministicCtrs = []string{
	metrics.CtrMapInputRecords,
	metrics.CtrMapOutputRecords,
	metrics.CtrMapOutputBytes,
	metrics.CtrReduceInputGroups,
	metrics.CtrReduceInputValues,
	metrics.CtrOutputRecords,
	metrics.CtrOutputBytes,
}

// TestConcurrentJobsIsolated runs a mixed batch — two WordCounts, two
// SynTexts, one of each tenant flavor, one under a private chaos
// injector — concurrently on one cluster and checks every job against its
// serial ground truth.
func TestConcurrentJobsIsolated(t *testing.T) {
	c := newConcCluster(t)

	wcRef, err := mr.RunReference(c, concWordCount("wc-ref"))
	if err != nil {
		t.Fatalf("wordcount reference: %v", err)
	}
	synRef, err := mr.RunReference(c, concSynText("syn-ref"))
	if err != nil {
		t.Fatalf("syntext reference: %v", err)
	}

	// Serial baselines for the deterministic counters.
	wcSerial, err := mr.Run(c, concWordCount("wc-serial"))
	if err != nil {
		t.Fatalf("serial wordcount: %v", err)
	}
	synSerial, err := mr.Run(c, concSynText("syn-serial"))
	if err != nil {
		t.Fatalf("serial syntext: %v", err)
	}

	inj, err := chaos.New(chaos.Config{Seed: 7, FailRate: 0.25, KillNode: -1}, concNodes)
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	chaosJob := concWordCount("wc-chaos")
	chaosJob.Chaos = inj
	chaosJob.MaxAttempts = 8

	type runCase struct {
		name     string
		job      *mr.Job
		ref      map[int][]byte
		baseline *mr.Result // nil for the chaos job: retries perturb counters
	}
	cases := []runCase{
		{"tenantA-wordcount", concWordCount("wc-a"), wcRef, wcSerial},
		{"tenantB-wordcount-chaos", chaosJob, wcRef, nil},
		{"tenantA-syntext", concSynText("syn-a"), synRef, synSerial},
		{"tenantB-syntext", concSynText("syn-b"), synRef, synSerial},
	}

	results := make([]*mr.Result, len(cases))
	errs := make([]error, len(cases))
	var wg sync.WaitGroup
	for i := range cases {
		cases[i].job.Hists = mr.NewHists()
		cases[i].job.Trace = trace.New(1 << 12)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = mr.Run(c, cases[i].job)
		}(i)
	}
	wg.Wait()

	for i, tc := range cases {
		if errs[i] != nil {
			t.Fatalf("%s: %v", tc.name, errs[i])
		}
		res := results[i]
		for p := range tc.ref {
			got, err := c.FS.ReadFile(res.Outputs[p])
			if err != nil {
				t.Fatalf("%s: reading partition %d: %v", tc.name, p, err)
			}
			if !bytes.Equal(got, tc.ref[p]) {
				t.Errorf("%s: partition %d differs from the serial reference", tc.name, p)
			}
		}
		if tc.baseline != nil {
			// Deterministic counters must match the serial run exactly: any
			// cross-job interleave would inflate them.
			for _, ctr := range deterministicCtrs {
				if got, want := res.Agg.Counters[ctr], tc.baseline.Agg.Counters[ctr]; got != want {
					t.Errorf("%s: counter %s = %d, serial run had %d", tc.name, ctr, got, want)
				}
			}
			// The chaos neighbor's injector must not have touched this job.
			if res.FailedAttempts != 0 || res.TaskRetries != 0 {
				t.Errorf("%s: %d failed attempts, %d retries leaked from the chaos job's injector",
					tc.name, res.FailedAttempts, res.TaskRetries)
			}
		}
		// Attempt accounting stays internally consistent per job.
		if got, want := res.MapAttempts+res.ReduceAttempts,
			res.MapTasks+res.ReduceTasks+res.TaskRetries+res.SpeculativeTasks+res.RecoveredMapTasks; got != want {
			t.Errorf("%s: attempt ledger inconsistent: %d attempts, accounted %d", tc.name, got, want)
		}
		// The private histogram sink recorded exactly this job's reduce
		// queue waits — a neighbor's record would inflate the count.
		if got, want := cases[i].job.Hists.QueueWait.Snapshot().Count, uint64(res.ReduceAttempts); got != want {
			t.Errorf("%s: private QueueWait histogram has %d records, want %d (own reduce attempts)",
				tc.name, got, want)
		}
	}
}

// TestPerJobChaosCannotKillNodes: node death is cluster-owned; a job spec
// carrying a killing injector must be rejected before it runs.
func TestPerJobChaosCannotKillNodes(t *testing.T) {
	c := newConcCluster(t)
	inj, err := chaos.New(chaos.Config{Seed: 1, FailRate: 0.1, KillNode: 1, KillAfterOps: 1}, concNodes)
	if err != nil {
		t.Fatalf("chaos: %v", err)
	}
	job := concWordCount("wc-kill")
	job.Chaos = inj
	if _, err := mr.Run(c, job); err == nil {
		t.Fatal("job with a node-killing private injector was accepted")
	}
}

// TestSequentialRunsShareCluster: many sequential Runs against one cluster
// reuse it without state bleed — distinct output prefixes, identical
// bytes each time.
func TestSequentialRunsShareCluster(t *testing.T) {
	c := newConcCluster(t)
	ref, err := mr.RunReference(c, concWordCount("wc-ref"))
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		res, err := mr.Run(c, concWordCount(fmt.Sprintf("wc-seq-%d", i)))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		for p := range ref {
			got, err := c.FS.ReadFile(res.Outputs[p])
			if err != nil {
				t.Fatalf("run %d partition %d: %v", i, p, err)
			}
			if !bytes.Equal(got, ref[p]) {
				t.Errorf("run %d: partition %d differs from reference", i, p)
			}
		}
		for _, out := range res.Outputs {
			if seen[out] {
				t.Errorf("run %d: output name %s reused across runs", i, out)
			}
			seen[out] = true
		}
	}
}
