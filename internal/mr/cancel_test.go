package mr_test

import (
	"bytes"
	"context"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"mrtext/internal/cluster"
	"mrtext/internal/mr"
	"mrtext/internal/textgen"
	"mrtext/internal/vdisk"
)

// Cancellation suite: RunContext must unwind a running job when its
// context ends — promptly (within 2s) and cleanly (zero attempt temp
// files, map outputs, or reduce outputs left on any disk).

// diskSnapshot captures every file name on every node disk, so a
// cancel-and-sweep can be checked by set equality: whatever the canceled
// job created must be gone, whatever predated it must remain.
func diskSnapshot(t *testing.T, c *cluster.Cluster) map[string]bool {
	t.Helper()
	files := map[string]bool{}
	for i, d := range c.Disks {
		mem, ok := d.(*vdisk.Mem)
		if !ok {
			t.Fatalf("disk %d is %T, want *vdisk.Mem (use an unthrottled, chaos-free cluster)", i, d)
		}
		for _, name := range mem.List() {
			files[string(rune('0'+i))+":"+name] = true
		}
	}
	return files
}

func diffSnapshots(before, after map[string]bool) []string {
	var leaked []string
	for name := range after {
		if !before[name] {
			leaked = append(leaked, name)
		}
	}
	sort.Strings(leaked)
	return leaked
}

// signalMapper emits (word, 1) per word, closes started on its first
// record, and then dawdles so the job is reliably mid-map when the test
// cancels it.
type signalMapper struct {
	once    *sync.Once
	started chan<- struct{}
}

func (m *signalMapper) Map(_ int64, line []byte, out mr.Collector) error {
	m.once.Do(func() { close(m.started) })
	time.Sleep(200 * time.Microsecond)
	for _, w := range bytes.Fields(line) {
		if err := out.Collect(w, []byte("1")); err != nil {
			return err
		}
	}
	return nil
}

// signalReducer signals on its first group and then slows each group so
// the job is reliably mid-reduce when canceled.
type signalReducer struct {
	once    *sync.Once
	started chan<- struct{}
}

func (r *signalReducer) Reduce(key []byte, values mr.ValueIter, out mr.Collector) error {
	r.once.Do(func() { close(r.started) })
	time.Sleep(100 * time.Microsecond)
	var n int64
	for {
		_, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		n++
	}
	var buf [20]byte
	return out.Collect(key, appendInt(buf[:0], n))
}

func appendInt(b []byte, n int64) []byte {
	if n == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
	}
	return append(b, tmp[i:]...)
}

type countReduce struct{}

func (countReduce) Reduce(key []byte, values mr.ValueIter, out mr.Collector) error {
	var n int64
	for {
		_, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		n++
	}
	var buf [20]byte
	return out.Collect(key, appendInt(buf[:0], n))
}

func newCancelCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	cfg := cluster.Fast(3)
	cfg.BlockSize = 32 << 10
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	w, err := c.FS.Create("corpus.txt", 0)
	if err != nil {
		t.Fatalf("create corpus: %v", err)
	}
	gen := textgen.CorpusConfig{Vocabulary: 2000, Alpha: 1.0, WordsPerLine: 8, Seed: 5}
	if _, err := textgen.Corpus(w, gen, 256<<10); err != nil {
		t.Fatalf("generate corpus: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close corpus: %v", err)
	}
	return c
}

// runCanceled runs job under a context canceled as soon as started
// closes, and asserts the prompt-and-clean contract.
func runCanceled(t *testing.T, c *cluster.Cluster, job *mr.Job, started <-chan struct{}) {
	t.Helper()
	before := diskSnapshot(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type outcome struct {
		res *mr.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := mr.RunContext(ctx, c, job)
		done <- outcome{res, err}
	}()

	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached the signal point")
	}
	canceledAt := time.Now()
	cancel()

	var out outcome
	select {
	case out = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not return after cancellation")
	}
	if elapsed := time.Since(canceledAt); elapsed > 2*time.Second {
		t.Errorf("RunContext took %s to unwind after cancel, want <= 2s", elapsed)
	}
	if out.err == nil {
		t.Fatal("canceled job returned nil error")
	}
	if !strings.Contains(out.err.Error(), "canceled") {
		t.Errorf("canceled job's error = %q, want it to say canceled", out.err)
	}
	if out.res != nil {
		t.Errorf("canceled job returned a non-nil Result")
	}
	if leaked := diffSnapshots(before, diskSnapshot(t, c)); len(leaked) != 0 {
		t.Errorf("canceled job leaked %d files:\n  %s", len(leaked), strings.Join(leaked, "\n  "))
	}
}

// TestCancelMidMap cancels while map attempts are mid-split.
func TestCancelMidMap(t *testing.T) {
	c := newCancelCluster(t)
	started := make(chan struct{})
	var once sync.Once
	job := &mr.Job{
		Name:   "cancel-map",
		Inputs: []string{"corpus.txt"},
		NewMapper: func() mr.Mapper {
			return &signalMapper{once: &once, started: started}
		},
		NewReducer:       func() mr.Reducer { return countReduce{} },
		NumReducers:      3,
		SpillBufferBytes: 16 << 10,
	}
	runCanceled(t, c, job, started)
}

// TestCancelMidReduce cancels after the first reduce group, so in-flight
// shuffle fetches and the reduce NextGroup loop both observe the flag.
func TestCancelMidReduce(t *testing.T) {
	c := newCancelCluster(t)
	started := make(chan struct{})
	var once sync.Once
	job := &mr.Job{
		Name:   "cancel-reduce",
		Inputs: []string{"corpus.txt"},
		NewMapper: func() mr.Mapper {
			return mr.MapperFunc(func(_ int64, line []byte, out mr.Collector) error {
				for _, w := range bytes.Fields(line) {
					if err := out.Collect(w, []byte("1")); err != nil {
						return err
					}
				}
				return nil
			})
		},
		NewReducer: func() mr.Reducer {
			return &signalReducer{once: &once, started: started}
		},
		NumReducers:      3,
		SpillBufferBytes: 16 << 10,
	}
	runCanceled(t, c, job, started)
}

// TestCancelBeforeStart: a context canceled before RunContext is called
// fails immediately without starting any attempt.
func TestCancelBeforeStart(t *testing.T) {
	c := newCancelCluster(t)
	before := diskSnapshot(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := &mr.Job{
		Name:   "cancel-early",
		Inputs: []string{"corpus.txt"},
		NewMapper: func() mr.Mapper {
			return mr.MapperFunc(func(_ int64, line []byte, out mr.Collector) error { return nil })
		},
		NewReducer:  func() mr.Reducer { return countReduce{} },
		NumReducers: 2,
	}
	if _, err := mr.RunContext(ctx, c, job); err == nil {
		t.Fatal("pre-canceled context ran to completion")
	}
	if leaked := diffSnapshots(before, diskSnapshot(t, c)); len(leaked) != 0 {
		t.Errorf("pre-canceled job leaked files: %v", leaked)
	}
}
