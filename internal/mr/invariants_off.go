//go:build !mrdebug

package mr

import "mrtext/internal/kvio"

// Release-build no-op twins of the mrdebug assertions; see invariants.go.

func debugAssert(bool, string, ...any) {}

func debugAssertSorted([]kvio.Record, string) {}

func debugAssertSortedPacked(kvio.PackedRecords, string) {}
