package mr

import (
	"fmt"
	"time"
)

// Attempt-scoped file naming. Every intermediate file a task attempt
// writes MUST be named through one of these helpers (enforced by the
// attemptpath mrlint analyzer): attempt files live under a per-attempt
// namespace, which is what lets duplicate attempts of one task coexist on
// a node, makes failed attempts sweepable by name, and makes the commit a
// single rename from the attempt namespace to the canonical name.

// attemptDir is the temp namespace of one map-task attempt on its node
// disk: all of the attempt's spill runs and its merged output live under
// it.
func attemptDir(prefix string, task, attempt int) string {
	return fmt.Sprintf("%s/m%05d/a%02d", prefix, task, attempt)
}

// attemptSpillName names one spill run inside an attempt's namespace.
func attemptSpillName(dir string, seq int) string {
	return fmt.Sprintf("%s/spill%04d", dir, seq)
}

// attemptMapOutName names an attempt's merged, uncommitted map output.
func attemptMapOutName(dir string) string {
	return dir + "/out"
}

// canonicalMapOutName is the committed map-output name a winning attempt's
// output is renamed to — the name reducers fetch from.
func canonicalMapOutName(prefix string, task int) string {
	return fmt.Sprintf("%s/m%05d/out", prefix, task)
}

// attemptReduceTempName names a reduce attempt's uncommitted DFS output;
// committing renames it to ReduceOutputName, and the DFS's fail-on-exist
// rename makes the first committer win across nodes.
func attemptReduceTempName(outputPrefix string, part, attempt int) string {
	return fmt.Sprintf("%s.a%02d.tmp", ReduceOutputName(outputPrefix, part), attempt)
}

// mix64 is a splitmix64-style finalizer used for deterministic jitter.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoffFor returns the retry delay before requeueing (task, attempt):
// the base backoff scaled by a deterministic factor in [0.5, 1.5), so
// simultaneous failures spread their retries without a randomness source.
func backoffFor(base time.Duration, task, attempt int) time.Duration {
	h := mix64(uint64(task)<<20 | uint64(attempt))
	frac := float64(h>>11) / (1 << 53)
	return time.Duration(float64(base) * (0.5 + frac))
}
