package mr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mrtext/internal/chaos"
	"mrtext/internal/cluster"
	"mrtext/internal/metrics"
	"mrtext/internal/trace"
)

// Run executes a job on the cluster and blocks until completion. Map tasks
// are placed data-locally (the node holding the split's primary replica)
// with work stealing to keep slots busy; reduce tasks are queued and
// pulled by per-node reduce slots. The paper's configuration of "12
// mappers and 12 reducers on 6 machines" corresponds to 2 map + 2 reduce
// slots per node.
//
// Execution is attempt-based: each task runs as one or more (task,
// attempt) pairs writing attempt-scoped temp files that commit by rename,
// so any attempt's failure is retried with jittered backoff (up to
// Job.MaxAttempts), nodes that keep failing attempts are blacklisted,
// stragglers optionally get speculative backup attempts, and committed
// map outputs lost to a node death are re-run. Duplicate attempts of one
// task run to completion — the simulator has no task kill — and the first
// committer wins; losers are discarded and their temp files swept.
func Run(c *cluster.Cluster, spec *Job) (*Result, error) {
	return RunContext(context.Background(), c, spec)
}

// RunContext is Run with cancellation. When ctx ends mid-job, in-flight
// task attempts observe the job's cancel flag at their next record
// boundary (one atomic load per input line, reduce group, merge
// partition, or fetch retry — never a blocking wait on ctx), fail fast,
// and are swept by the normal attempt machinery; the run then removes
// any committed intermediates and returns the context's error wrapped in
// the job failure. Cancellation leaves no orphaned attempt temp files:
// every started attempt either commits (and its output is removed by the
// failure sweep) or is swept like any failed attempt.
func RunContext(ctx context.Context, c *cluster.Cluster, spec *Job) (*Result, error) {
	job, err := spec.withDefaults(c.TotalReduceSlots())
	if err != nil {
		return nil, err
	}
	splits, err := computeSplits(c.FS, job.Inputs)
	if err != nil {
		return nil, err
	}
	if job.Trace == nil {
		job.Trace = trace.Default()
	}
	tr := job.Trace

	// The job's fault source: the cluster injector unless the job carries
	// its own (a service running many jobs injects per job, so one
	// tenant's chaos never perturbs a neighbor). Armed for the duration
	// of the job only — dataset generation and everything else outside
	// RunContext stays fault-free — and arming is counted, so one job
	// finishing cannot disarm a shared injector under a concurrent job.
	inj := c.Chaos
	if job.Chaos != nil {
		inj = job.Chaos
	}
	if inj != nil {
		inj.Arm()
		defer inj.Disarm()
	}

	start := time.Now()
	res := &Result{Job: job.Name, MapTasks: len(splits), ReduceTasks: job.NumReducers}
	jobSpan := tr.Start(trace.KindJob, trace.LaneScheduler, -1, -1, 0)
	defer jobSpan.End()

	ft := newFTRun(c, job)
	ft.inj = inj

	// The cancellation watcher: flip the job's cancel flag (which task
	// loops poll) and fail the run (which wakes workers blocked on the
	// scheduler condvar). The deferred close stops the watcher on normal
	// completion.
	if done := ctx.Done(); done != nil {
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-done:
				job.cancel.Store(true)
				ft.mu.Lock()
				ft.failLocked(fmt.Errorf("mr: job canceled: %w", context.Cause(ctx)))
				ft.mu.Unlock()
			case <-stopWatch:
			}
		}()
	}

	// The pipelined shuffle stages committed map outputs as they appear,
	// overlapping shuffle I/O with the rest of the map phase. The deferred
	// close covers early error returns; the success path closes it
	// explicitly before reading its counters.
	var svc *shuffleService
	if !job.SerialShuffle {
		svc = newShuffleService(c, job)
		ft.shuffle = svc
		defer svc.close()
	}

	// ----- Map phase -----
	mapOuts := make([]mapOutput, len(splits))
	mapReports := make([]TaskReport, len(splits))
	sched := newScheduler(c.Nodes(), splits)
	ft.beginPhase(len(splits), sched, true)
	stopSpec := make(chan struct{})
	var specWG sync.WaitGroup
	specWG.Add(1)
	go func() { defer specWG.Done(); ft.speculate(stopSpec) }()
	var wg sync.WaitGroup
	for node := 0; node < c.Nodes(); node++ {
		for slot := 0; slot < c.MapSlots(); slot++ {
			wg.Add(1)
			ft.addWorker()
			go func(node, slot int) {
				defer wg.Done()
				for {
					pa, src, ok := ft.next(node)
					if !ok {
						return
					}
					if src == takeStolen {
						tr.Instant(trace.KindWorkSteal, trace.LaneScheduler, node, pa.task, int64(splits[pa.task].Hosts[0]))
					}
					plan := ft.inj.Plan(node, pa.task, pa.attempt, chaos.MapSites())
					out, rep, created, err := runMapTask(c, job, pa.task, splits[pa.task], node, slot, pa.attempt, plan)
					if err != nil {
						ft.sweepDiskFiles(node, created)
						ft.attemptFailed(pa, node, err)
						continue
					}
					ft.commitMap(pa, node, out, rep, mapOuts, mapReports)
				}
			}(node, slot)
		}
	}
	wg.Wait()
	close(stopSpec)
	specWG.Wait()
	if err := ft.jobErr(); err != nil {
		svc.close()
		ft.sweepJobIntermediates(mapOuts, nil)
		return nil, err
	}
	res.MapWall = time.Since(start)
	svc.markMapDone()

	// Recovery needs per-map-task attempt numbering to survive into the
	// reduce phase, where lost outputs are re-run.
	mapNext := make([]int, len(splits))
	for i := range ft.tasks {
		mapNext[i] = ft.tasks[i].nextAttempt
	}

	// Reduce attempts see the pipelined shuffle through shuffleEnv; the
	// resnapshot closure lets an attempt that catches a source node death
	// mid-fetch run lost-output recovery in place and refetch.
	var sh *shuffleEnv
	if svc != nil {
		sh = &shuffleEnv{
			svc:     svc,
			backoff: job.RetryBackoff,
			resnapshot: func() []mapOutput {
				ft.recoverLostMapOuts(splits, mapOuts, mapReports, mapNext)
				return ft.snapshotMapOuts(mapOuts)
			},
		}
	}

	// ----- Reduce phase -----
	reduceStart := time.Now()
	outputs := make([]string, job.NumReducers)
	reduceReports := make([]TaskReport, job.NumReducers)
	ft.beginPhase(job.NumReducers, nil, false)
	ft.enqueueBase(job.NumReducers)
	stopSpec = make(chan struct{})
	specWG.Add(1)
	go func() { defer specWG.Done(); ft.speculate(stopSpec) }()
	var rwg sync.WaitGroup
	for node := 0; node < c.Nodes(); node++ {
		for slot := 0; slot < c.ReduceSlots(); slot++ {
			rwg.Add(1)
			ft.addWorker()
			go func(node, slot int) {
				defer rwg.Done()
				for {
					pa, _, ok := ft.next(node)
					if !ok {
						return
					}
					queueWait := time.Since(pa.enqueued)
					job.Trace.Complete(trace.KindWaitQueue, trace.LaneReduce, node, pa.task, slot, pa.enqueued, queueWait)
					job.Hists.QueueWait.Record(int64(queueWait))
					plan := ft.inj.Plan(node, pa.task, pa.attempt, chaos.ReduceSites())
					snap := ft.snapshotMapOuts(mapOuts)
					outName, won, created, rep, err := runReduceTask(c, job, pa.task, node, slot, pa.attempt, plan, sh, snap)
					rep.QueueWait = queueWait
					if err != nil {
						ft.sweepDFSFiles(created)
						ft.recoverLostMapOuts(splits, mapOuts, mapReports, mapNext)
						ft.attemptFailed(pa, node, err)
						continue
					}
					if !won {
						// A rival attempt committed first: discard.
						ft.sweepDFSFiles(created)
						ft.noteLoss(pa)
						continue
					}
					ft.commitReduce(pa, outName, rep, outputs, reduceReports)
					svc.release(pa.task)
				}
			}(node, slot)
		}
	}
	rwg.Wait()
	close(stopSpec)
	specWG.Wait()
	if err := ft.jobErr(); err != nil {
		svc.close()
		ft.sweepJobIntermediates(mapOuts, outputs)
		return nil, err
	}
	res.ReduceWall = time.Since(reduceStart)
	res.Wall = time.Since(start)
	res.Outputs = outputs
	svc.close() // flush staging before counter reads and disk cleanup

	// Committed map outputs are no longer needed. Removal is best-effort
	// cleanup: failures are counted on the job aggregate, not fatal. Dead
	// nodes' outputs are unreachable and skipped.
	for _, mo := range mapOuts {
		if c.NodeDead(mo.node) {
			continue
		}
		if err := c.Disks[mo.node].Remove(mo.index.Name); err != nil {
			ft.mu.Lock()
			ft.cleanupErrs++
			ft.mu.Unlock()
		}
	}

	res.Tasks = append(append([]TaskReport(nil), mapReports...), reduceReports...)
	for _, t := range res.Tasks {
		res.Agg.Merge(t.Metrics)
	}
	if res.Agg.Counters == nil {
		res.Agg.Counters = make(map[string]int64)
	}
	if svc != nil {
		res.Agg.Merge(svc.snapshot())
		ctr := res.Agg.Counters
		res.ShuffleEarlySegments = int(ctr[metrics.CtrShuffleEarlySegments])
		res.ShuffleStagedSpills = int(ctr[metrics.CtrShuffleStagedSpills])
		res.ShuffleFetchRetries = int(ctr[metrics.CtrShuffleFetchRetries])
		res.ShuffleStagingPeak = ctr[metrics.CtrShuffleStagingPeak]
		res.ShuffleBatchFetches = int(ctr[metrics.CtrShuffleBatchFetches])
		res.ShuffleBatchSegments = int(ctr[metrics.CtrShuffleBatchSegments])
		res.ShuffleWireSavedBytes = ctr[metrics.CtrShuffleWireSavedBytes]
		res.ShuffleGovThrottles = int(ctr[metrics.CtrShuffleGovThrottles])
	}
	res.LocalMapTasks, res.StolenMapTasks = sched.placement()
	res.Agg.Counters[metrics.CtrLocalMapTasks] += int64(res.LocalMapTasks)
	res.Agg.Counters[metrics.CtrStolenMapTasks] += int64(res.StolenMapTasks)
	ft.fillResult(res)
	return res, nil
}

// attemptKind classifies why an attempt was started; every started
// attempt has exactly one kind, which is what makes the Result counter
// identity hold.
type attemptKind int

const (
	attemptBase        attemptKind = iota // a task's first attempt
	attemptRetry                          // requeued after a failed attempt
	attemptSpeculative                    // backup attempt for a straggler
	attemptRecovery                       // re-run of a committed map task after node death
)

// pendingAttempt is one schedulable unit of work: a (task, attempt) pair.
type pendingAttempt struct {
	task     int
	attempt  int
	kind     attemptKind
	enqueued time.Time
}

// runningInfo tracks one in-flight attempt for the speculation monitor.
type runningInfo struct {
	attempt int
	node    int
	start   time.Time
}

// ftTask is the runner's per-task fault-tolerance state within a phase.
type ftTask struct {
	committed   bool          // a winning attempt's output is at the canonical name
	committing  bool          // a map commit rename is in flight (serializes committers)
	nextAttempt int           // next attempt number to hand out
	failures    int           // failed attempts so far (job fails at MaxAttempts)
	backup      bool          // a speculative backup has been launched
	running     []runningInfo // in-flight attempts
	winDur      time.Duration // the winning attempt's wall time (speculation baseline)
}

// ftRun coordinates attempt-based execution for one job: it layers retry,
// blacklisting, speculation and recovery over the locality scheduler. All
// mutable state is guarded by mu; cond wakes workers when new attempts
// become runnable or the phase ends.
type ftRun struct {
	c   *cluster.Cluster
	job *Job
	// inj is the job's fault source: the per-job injector when the job
	// carries one, the cluster injector otherwise. Task-site plans come
	// from here; node-death observation stays on c.Chaos (node death is
	// cluster-wide regardless of which job's injector is in play).
	inj  *chaos.Injector
	mu   sync.Mutex
	cond *sync.Cond

	aborted bool
	err     error

	// Per-phase state, reset by beginPhase.
	gen       int // phase generation; stale backoff timers check it
	total     int
	done      int
	phaseDone bool
	mapPhase  bool
	tasks     []ftTask
	queue     []pendingAttempt
	inner     *scheduler // locality scheduler (map phase only)

	// Cross-phase node state.
	nodeFailures  []int
	blacklisted   []bool
	deadKnown     []bool
	activeWorkers int
	recovering    bool // a lost-map-output recovery is in flight (singleflight)

	// shuffle is the pipelined-shuffle service (nil under SerialShuffle):
	// map commits are offered to its copier pools, and the reduce-phase
	// queue prefers handing a partition to its staging node.
	shuffle *shuffleService

	// Counters (surfaced on Result).
	mapAttempts    int
	reduceAttempts int
	retries        int
	spec           int
	specWins       int
	recovered      int
	failed         int
	swept          int
	cleanupErrs    int
}

func newFTRun(c *cluster.Cluster, job *Job) *ftRun {
	ft := &ftRun{
		c:            c,
		job:          job,
		nodeFailures: make([]int, c.Nodes()),
		blacklisted:  make([]bool, c.Nodes()),
		deadKnown:    make([]bool, c.Nodes()),
	}
	ft.cond = sync.NewCond(&ft.mu)
	return ft
}

// beginPhase resets per-phase scheduling state. Node state (deaths,
// blacklist) carries across phases: a dead node stays dead.
func (ft *ftRun) beginPhase(total int, inner *scheduler, mapPhase bool) {
	ft.mu.Lock()
	ft.gen++
	ft.total = total
	ft.done = 0
	ft.phaseDone = total == 0
	ft.mapPhase = mapPhase
	ft.tasks = make([]ftTask, total)
	ft.queue = nil
	ft.inner = inner
	ft.activeWorkers = 0
	ft.mu.Unlock()
}

// enqueueBase queues every task's first attempt (reduce phase, which has
// no locality scheduler).
func (ft *ftRun) enqueueBase(n int) {
	now := time.Now()
	ft.mu.Lock()
	for t := 0; t < n; t++ {
		ft.queue = append(ft.queue, pendingAttempt{task: t, attempt: 0, kind: attemptBase, enqueued: now})
		ft.tasks[t].nextAttempt = 1
	}
	ft.cond.Broadcast()
	ft.mu.Unlock()
}

func (ft *ftRun) addWorker() {
	ft.mu.Lock()
	ft.activeWorkers++
	ft.mu.Unlock()
}

func (ft *ftRun) jobErr() error {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.err
}

// next blocks until an attempt is runnable on node, the phase ends, or
// the node becomes unusable (dead or blacklisted). The takeSource reports
// work stealing for base map attempts.
func (ft *ftRun) next(node int) (pendingAttempt, takeSource, bool) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	for {
		if ft.aborted || ft.phaseDone {
			return pendingAttempt{}, takeLocal, false
		}
		if ft.deadKnown[node] || ft.blacklisted[node] {
			ft.activeWorkers--
			if ft.activeWorkers == 0 && !ft.phaseDone {
				ft.failLocked(fmt.Errorf("mr: no live unblacklisted workers left (%d of %d tasks incomplete)", ft.total-ft.done, ft.total))
			}
			return pendingAttempt{}, takeLocal, false
		}
		if ft.recovering {
			// Reduce attempts dispatched mid-recovery would fetch from a
			// map-output table still pointing at a dead node.
			ft.cond.Wait()
			continue
		}
		if ft.inner != nil {
			if task, src, ok := ft.inner.take(node); ok {
				ts := &ft.tasks[task]
				pa := pendingAttempt{task: task, attempt: ts.nextAttempt, kind: attemptBase, enqueued: time.Now()}
				ts.nextAttempt++
				ft.noteStartLocked(pa, node)
				return pa, src, true
			}
		}
		for len(ft.queue) > 0 {
			// Staging affinity: prefer a reduce attempt whose partition is
			// staged on this node, so the staged hand-off is a local read.
			idx := 0
			if !ft.mapPhase && ft.shuffle != nil {
				for i, pa := range ft.queue {
					if !ft.tasks[pa.task].committed && ft.shuffle.home(pa.task) == node {
						idx = i
						break
					}
				}
			}
			pa := ft.queue[idx]
			ft.queue = append(ft.queue[:idx], ft.queue[idx+1:]...)
			if ft.tasks[pa.task].committed {
				continue // stale: a rival attempt won while this waited
			}
			ft.noteStartLocked(pa, node)
			return pa, takeLocal, true
		}
		ft.cond.Wait()
	}
}

// noteStartLocked records an attempt start: counters are incremented here,
// at attempt start, so every started attempt is counted exactly once
// under its kind.
func (ft *ftRun) noteStartLocked(pa pendingAttempt, node int) {
	ts := &ft.tasks[pa.task]
	ts.running = append(ts.running, runningInfo{attempt: pa.attempt, node: node, start: time.Now()})
	if ft.mapPhase {
		ft.mapAttempts++
	} else {
		ft.reduceAttempts++
	}
	switch pa.kind {
	case attemptRetry:
		ft.retries++
	case attemptSpeculative:
		ft.spec++
	case attemptRecovery:
		ft.recovered++
	}
}

func (ft *ftRun) noteEndLocked(task, attempt int) {
	ts := &ft.tasks[task]
	for i, ri := range ts.running {
		if ri.attempt == attempt {
			ts.running = append(ts.running[:i], ts.running[i+1:]...)
			return
		}
	}
}

func (ft *ftRun) failLocked(err error) {
	if !ft.aborted {
		ft.aborted = true
		ft.err = err
		if ft.inner != nil {
			ft.inner.abort()
		}
	}
	ft.cond.Broadcast()
}

// usableNodesLocked counts nodes that are neither dead nor blacklisted.
func (ft *ftRun) usableNodesLocked() int {
	n := 0
	for i := range ft.blacklisted {
		if !ft.blacklisted[i] && !ft.deadKnown[i] {
			n++
		}
	}
	return n
}

// refreshDeadNodes folds newly observed chaos kills into scheduler state,
// emitting a node-death instant once per node.
func (ft *ftRun) refreshDeadNodes() {
	if ft.c.Chaos == nil {
		return
	}
	dead := ft.c.Chaos.DeadNodes()
	if len(dead) == 0 {
		return
	}
	ft.mu.Lock()
	for _, n := range dead {
		if !ft.deadKnown[n] {
			ft.deadKnown[n] = true
			ft.job.Trace.Instant(trace.KindNodeDeath, trace.LaneScheduler, n, -1, int64(n))
		}
	}
	ft.cond.Broadcast()
	ft.mu.Unlock()
}

// attemptFailed handles an attempt error: requeue with jittered backoff,
// blacklist the node if it keeps failing attempts, or fail the job once
// the task exhausts MaxAttempts. A failure after a rival committed is
// moot — the task is done regardless.
func (ft *ftRun) attemptFailed(pa pendingAttempt, node int, err error) {
	ft.refreshDeadNodes()
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.noteEndLocked(pa.task, pa.attempt)
	ft.failed++
	ts := &ft.tasks[pa.task]
	if ts.committed || ft.aborted {
		return
	}
	ts.failures++
	if !ft.deadKnown[node] {
		ft.nodeFailures[node]++
		if ft.nodeFailures[node] >= ft.job.NodeFailureLimit && !ft.blacklisted[node] && ft.usableNodesLocked() > 1 {
			ft.blacklisted[node] = true
			ft.cond.Broadcast()
		}
	}
	if ts.failures >= ft.job.MaxAttempts {
		ft.failLocked(fmt.Errorf("mr: task failed %d attempts, last: %w", ts.failures, err))
		return
	}
	attemptNo := ts.nextAttempt
	ts.nextAttempt++
	ft.job.Trace.Instant(trace.KindTaskRetry, trace.LaneScheduler, node, pa.task, int64(attemptNo))
	gen, task := ft.gen, pa.task
	time.AfterFunc(backoffFor(ft.job.RetryBackoff, task, attemptNo), func() {
		ft.mu.Lock()
		defer ft.mu.Unlock()
		if ft.gen != gen || ft.aborted || ft.phaseDone || ft.tasks[task].committed {
			return // the phase moved on while this retry waited out its backoff
		}
		ft.queue = append(ft.queue, pendingAttempt{task: task, attempt: attemptNo, kind: attemptRetry, enqueued: time.Now()})
		ft.cond.Broadcast()
	})
}

// commitMap publishes a finished map attempt's output at the canonical
// name. The disk rename arbitrates same-node duplicates (fail-on-exist);
// the committing latch serializes cross-node duplicates, whose attempt
// outputs live on different disks where both renames would succeed.
func (ft *ftRun) commitMap(pa pendingAttempt, node int, out mapOutput, rep TaskReport, mapOuts []mapOutput, mapReports []TaskReport) {
	ft.mu.Lock()
	ft.noteEndLocked(pa.task, pa.attempt)
	ts := &ft.tasks[pa.task]
	for ts.committing {
		ft.cond.Wait()
	}
	if ts.committed || ft.aborted {
		ft.mu.Unlock()
		ft.sweepDiskFiles(node, []string{out.index.Name})
		return
	}
	ts.committing = true
	ft.mu.Unlock()

	canon := canonicalMapOutName(ft.job.filePrefix, pa.task)
	rerr := ft.c.Disks[node].Rename(out.index.Name, canon)

	ft.mu.Lock()
	ts.committing = false
	if rerr != nil {
		ft.cond.Broadcast()
		ft.mu.Unlock()
		ft.sweepDiskFiles(node, []string{out.index.Name})
		ft.attemptFailed(pa, node, rerr)
		return
	}
	out.index.Name = canon
	mapOuts[pa.task] = out
	mapReports[pa.task] = rep
	ts.committed = true
	ts.winDur = rep.Wall
	if pa.kind == attemptSpeculative {
		ft.specWins++
	}
	ft.done++
	done, total := ft.done, ft.total
	if ft.done == ft.total {
		ft.phaseDone = true
	}
	ft.cond.Broadcast()
	ft.mu.Unlock()
	ft.shuffle.noteMapProgress(done, total)
	ft.shuffle.offer(pa.task, out)
}

// commitReduce records a reduce attempt that won the DFS rename race.
func (ft *ftRun) commitReduce(pa pendingAttempt, outName string, rep TaskReport, outputs []string, reduceReports []TaskReport) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.noteEndLocked(pa.task, pa.attempt)
	ts := &ft.tasks[pa.task]
	ts.committed = true
	ts.winDur = rep.Wall
	outputs[pa.task] = outName
	reduceReports[pa.task] = rep
	if pa.kind == attemptSpeculative {
		ft.specWins++
	}
	ft.done++
	if ft.done == ft.total {
		ft.phaseDone = true
	}
	ft.cond.Broadcast()
}

// noteLoss records a duplicate attempt that lost the commit race.
func (ft *ftRun) noteLoss(pa pendingAttempt) {
	ft.mu.Lock()
	ft.noteEndLocked(pa.task, pa.attempt)
	ft.mu.Unlock()
}

// sweepDiskFiles removes a failed or losing attempt's surviving files
// from a node disk. Dead-node removals are skipped silently (the disk is
// gone with its node); other failures count as cleanup errors.
func (ft *ftRun) sweepDiskFiles(node int, files []string) {
	if len(files) == 0 {
		return
	}
	errs := 0
	for _, name := range files {
		if err := ft.c.Disks[node].Remove(name); err != nil && !errors.Is(err, chaos.ErrNodeDead) {
			errs++
		}
	}
	ft.mu.Lock()
	ft.swept++
	ft.cleanupErrs += errs
	ft.mu.Unlock()
}

// sweepDFSFiles removes a failed or losing reduce attempt's temp output
// from the DFS.
func (ft *ftRun) sweepDFSFiles(files []string) {
	if len(files) == 0 {
		return
	}
	errs := 0
	for _, name := range files {
		if err := ft.c.FS.Remove(name); err != nil && !errors.Is(err, chaos.ErrNodeDead) {
			errs++
		}
	}
	ft.mu.Lock()
	ft.swept++
	ft.cleanupErrs += errs
	ft.mu.Unlock()
}

// errJobCanceled is what a task attempt fails with when it observes the
// job's cancel flag. The watcher has already failed the job by then, so
// attemptFailed absorbs these without scheduling retries.
var errJobCanceled = errors.New("mr: attempt canceled")

// sweepJobIntermediates removes what a failed or canceled job left
// committed behind: canonical map outputs on node disks and committed
// reduce outputs on the DFS. Attempt-scoped temp files are already swept
// by the attempt machinery, and staged overflow segments by the shuffle
// service's close, so after this sweep a dead job leaves nothing on the
// cluster. Best-effort: dead nodes are skipped, live-node failures count
// as cleanup errors. Called only after all workers have joined.
func (ft *ftRun) sweepJobIntermediates(mapOuts []mapOutput, outputs []string) {
	errs := 0
	for _, mo := range mapOuts {
		if mo.index.Name == "" || ft.c.NodeDead(mo.node) {
			continue
		}
		if err := ft.c.Disks[mo.node].Remove(mo.index.Name); err != nil && !errors.Is(err, chaos.ErrNodeDead) {
			errs++
		}
	}
	for _, name := range outputs {
		if name == "" {
			continue
		}
		if err := ft.c.FS.Remove(name); err != nil && !errors.Is(err, chaos.ErrNodeDead) {
			errs++
		}
	}
	ft.mu.Lock()
	ft.cleanupErrs += errs
	ft.mu.Unlock()
}

// snapshotMapOuts copies the map-output table under the lock, so a reduce
// attempt's fetch set is consistent even while recovery rewrites entries.
func (ft *ftRun) snapshotMapOuts(mapOuts []mapOutput) []mapOutput {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return append([]mapOutput(nil), mapOuts...)
}

// speculate is the per-phase straggler monitor: once a quorum of tasks
// has committed, a task whose sole running attempt exceeds the slowdown
// multiple of the median committed duration gets one backup attempt.
func (ft *ftRun) speculate(stop <-chan struct{}) {
	if !ft.job.Speculation {
		return
	}
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		ft.mu.Lock()
		if ft.aborted || ft.phaseDone || ft.done == 0 ||
			float64(ft.done) < ft.job.SpeculationQuorum*float64(ft.total) {
			ft.mu.Unlock()
			continue
		}
		durs := make([]time.Duration, 0, ft.done)
		for i := range ft.tasks {
			if ft.tasks[i].committed {
				durs = append(durs, ft.tasks[i].winDur)
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		threshold := time.Duration(ft.job.SpeculationSlowdown * float64(durs[len(durs)/2]))
		// Floor against tiny-task noise: sub-millisecond medians would
		// speculate on scheduler jitter.
		if threshold < 500*time.Microsecond {
			threshold = 500 * time.Microsecond
		}
		now := time.Now()
		launched := false
		for i := range ft.tasks {
			ts := &ft.tasks[i]
			if ts.committed || ts.backup || len(ts.running) != 1 || now.Sub(ts.running[0].start) <= threshold {
				continue
			}
			ts.backup = true
			attemptNo := ts.nextAttempt
			ts.nextAttempt++
			ft.queue = append(ft.queue, pendingAttempt{task: i, attempt: attemptNo, kind: attemptSpeculative, enqueued: now})
			ft.job.Trace.Instant(trace.KindSpeculativeLaunch, trace.LaneScheduler, ts.running[0].node, i, int64(attemptNo))
			launched = true
		}
		if launched {
			ft.cond.Broadcast()
		}
		ft.mu.Unlock()
	}
}

// recoverLostMapOuts re-runs committed map tasks whose output node died
// before every reducer fetched from it — Hadoop's "map output lost"
// re-execution. Called from a failing reduce worker's goroutine;
// singleflight, with rival workers waiting so their retries see the
// recovered outputs.
func (ft *ftRun) recoverLostMapOuts(splits []Split, mapOuts []mapOutput, mapReports []TaskReport, mapNext []int) {
	ft.refreshDeadNodes()
	lostLocked := func() []int {
		var lost []int
		for t := range mapOuts {
			if ft.deadKnown[mapOuts[t].node] {
				lost = append(lost, t)
			}
		}
		return lost
	}
	ft.mu.Lock()
	if len(lostLocked()) == 0 {
		ft.mu.Unlock()
		return
	}
	for ft.recovering {
		ft.cond.Wait()
	}
	// Re-check: the recovery just finished may have covered our losses,
	// or the job may have failed while we waited.
	lost := lostLocked()
	if len(lost) == 0 || ft.aborted {
		ft.mu.Unlock()
		return
	}
	ft.recovering = true
	ft.mu.Unlock()

	var ferr error
	for _, t := range lost {
		if err := ft.rerunMapTask(t, splits, mapOuts, mapReports, mapNext); err != nil {
			ferr = err
			break
		}
	}
	ft.mu.Lock()
	ft.recovering = false
	if ferr != nil {
		ft.failLocked(ferr)
	}
	ft.cond.Broadcast()
	ft.mu.Unlock()
}

// rerunMapTask re-executes one lost map task on a live node, retrying
// across nodes up to MaxAttempts. The old canonical output name is on a
// dead disk, so the fresh commit rename cannot collide.
func (ft *ftRun) rerunMapTask(t int, splits []Split, mapOuts []mapOutput, mapReports []TaskReport, mapNext []int) error {
	kind := attemptRecovery
	for tries := 0; tries < ft.job.MaxAttempts; tries++ {
		node, ok := ft.pickLiveNode(t + tries)
		if !ok {
			return fmt.Errorf("mr: map task %d output lost to node death and no live node remains to re-run it", t)
		}
		ft.mu.Lock()
		attemptNo := mapNext[t]
		mapNext[t]++
		ft.mapAttempts++
		if kind == attemptRecovery {
			ft.recovered++
		} else {
			ft.retries++
		}
		ft.mu.Unlock()
		kind = attemptRetry
		plan := ft.inj.Plan(node, t, attemptNo, chaos.MapSites())
		out, rep, created, err := runMapTask(ft.c, ft.job, t, splits[t], node, 0, attemptNo, plan)
		if err != nil {
			ft.refreshDeadNodes()
			ft.sweepDiskFiles(node, created)
			ft.mu.Lock()
			ft.failed++
			ft.mu.Unlock()
			continue
		}
		canon := canonicalMapOutName(ft.job.filePrefix, t)
		if rerr := ft.c.Disks[node].Rename(out.index.Name, canon); rerr != nil {
			ft.refreshDeadNodes()
			ft.sweepDiskFiles(node, []string{out.index.Name})
			ft.mu.Lock()
			ft.failed++
			ft.mu.Unlock()
			continue
		}
		out.index.Name = canon
		ft.mu.Lock()
		mapOuts[t] = out
		mapReports[t] = rep
		ft.mu.Unlock()
		// The recovered output is a fresh commit: re-offer it so staging
		// can cover partitions that had not fetched the lost copy. (The
		// per-partition dedup makes this a no-op where staging already
		// holds the — byte-identical — old segment.)
		ft.shuffle.offer(t, out)
		return nil
	}
	return fmt.Errorf("mr: map task %d re-run failed %d attempts after output loss", t, ft.job.MaxAttempts)
}

// pickLiveNode returns a usable node, rotating by seed so consecutive
// recoveries spread across the cluster.
func (ft *ftRun) pickLiveNode(seed int) (int, bool) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	n := len(ft.deadKnown)
	for i := 0; i < n; i++ {
		node := (seed + i) % n
		if !ft.deadKnown[node] && !ft.blacklisted[node] {
			return node, true
		}
	}
	return 0, false
}

// fillResult copies the run's fault-tolerance accounting onto the Result.
func (ft *ftRun) fillResult(res *Result) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	res.MapAttempts = ft.mapAttempts
	res.ReduceAttempts = ft.reduceAttempts
	res.TaskRetries = ft.retries
	res.SpeculativeTasks = ft.spec
	res.SpeculativeWins = ft.specWins
	res.RecoveredMapTasks = ft.recovered
	res.FailedAttempts = ft.failed
	res.SweptAttempts = ft.swept
	res.CleanupErrors = ft.cleanupErrs
	if ft.c.Chaos != nil {
		res.DeadNodes = ft.c.Chaos.DeadNodes()
	}
	for n, b := range ft.blacklisted {
		if b {
			res.BlacklistedNodes = append(res.BlacklistedNodes, n)
		}
	}
	ctr := res.Agg.Counters
	ctr[metrics.CtrMapAttempts] += int64(ft.mapAttempts)
	ctr[metrics.CtrReduceAttempts] += int64(ft.reduceAttempts)
	for k, v := range map[string]int{
		metrics.CtrTaskRetries:       ft.retries,
		metrics.CtrSpeculativeTasks:  ft.spec,
		metrics.CtrSpeculativeWins:   ft.specWins,
		metrics.CtrRecoveredMapTasks: ft.recovered,
		metrics.CtrFailedAttempts:    ft.failed,
		metrics.CtrSweptAttemptDirs:  ft.swept,
	} {
		if v > 0 {
			ctr[k] += int64(v)
		}
	}
	if ft.cleanupErrs > 0 {
		ctr[metrics.CtrCleanupErrors] += int64(ft.cleanupErrs)
	}
}

// takeSource classifies where a handed-out map task came from: its own
// node's local queue, the homeless orphan pool, or another node's queue
// (a work steal).
type takeSource int

const (
	takeLocal takeSource = iota
	takeOrphan
	takeStolen
)

// scheduler hands out map tasks with locality preference and work stealing.
type scheduler struct {
	mu      sync.Mutex
	queues  [][]int // per-node pending task indexes
	orphans []int   // tasks whose primary host is out of range
	aborted bool
	local   int // tasks taken from their own node's queue
	stolen  int // tasks stolen from another node's queue
}

func newScheduler(nodes int, splits []Split) *scheduler {
	s := &scheduler{queues: make([][]int, nodes)}
	for i, sp := range splits {
		host := -1
		if len(sp.Hosts) > 0 && sp.Hosts[0] >= 0 && sp.Hosts[0] < nodes {
			host = sp.Hosts[0]
		}
		if host < 0 {
			s.orphans = append(s.orphans, i)
		} else {
			s.queues[host] = append(s.queues[host], i)
		}
	}
	return s
}

// take pops a task for the given node: local first, then the orphan pool,
// then stealing from the longest queue. It reports where the task came
// from so placement quality (data-local vs stolen) is observable.
func (s *scheduler) take(node int) (int, takeSource, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aborted {
		return 0, takeLocal, false
	}
	if q := s.queues[node]; len(q) > 0 {
		task := q[0]
		s.queues[node] = q[1:]
		s.local++
		return task, takeLocal, true
	}
	if len(s.orphans) > 0 {
		task := s.orphans[0]
		s.orphans = s.orphans[1:]
		return task, takeOrphan, true
	}
	// Steal from the longest queue.
	victim, max := -1, 0
	for n, q := range s.queues {
		if len(q) > max {
			victim, max = n, len(q)
		}
	}
	if victim < 0 {
		return 0, takeLocal, false
	}
	q := s.queues[victim]
	task := q[len(q)-1] // steal from the tail: the head stays local
	s.queues[victim] = q[:len(q)-1]
	s.stolen++
	return task, takeStolen, true
}

// placement returns how many handed-out tasks were data-local vs stolen.
func (s *scheduler) placement() (local, stolen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.local, s.stolen
}

func (s *scheduler) abort() {
	s.mu.Lock()
	s.aborted = true
	s.mu.Unlock()
}

// SortTaskReports orders reports map-first then by index, for stable
// experiment output.
func SortTaskReports(reports []TaskReport) {
	sort.SliceStable(reports, func(i, j int) bool {
		if reports[i].Kind != reports[j].Kind {
			return reports[i].Kind == "map"
		}
		return reports[i].Index < reports[j].Index
	})
}
