package mr

import (
	"sort"
	"sync"
	"time"

	"mrtext/internal/cluster"
	"mrtext/internal/metrics"
	"mrtext/internal/trace"
)

// Run executes a job on the cluster and blocks until completion. Map tasks
// are placed data-locally (the node holding the split's primary replica)
// with work stealing to keep slots busy; reduce tasks are placed
// round-robin. The paper's configuration of "12 mappers and 12 reducers on
// 6 machines" corresponds to 2 map + 2 reduce slots per node.
func Run(c *cluster.Cluster, spec *Job) (*Result, error) {
	job, err := spec.withDefaults(c.TotalReduceSlots())
	if err != nil {
		return nil, err
	}
	splits, err := computeSplits(c.FS, job.Inputs)
	if err != nil {
		return nil, err
	}
	if job.Trace == nil {
		job.Trace = trace.Default()
	}
	tr := job.Trace

	start := time.Now()
	res := &Result{Job: job.Name, MapTasks: len(splits), ReduceTasks: job.NumReducers}
	jobSpan := tr.Start(trace.KindJob, trace.LaneScheduler, -1, -1, 0)
	defer jobSpan.End()

	// ----- Map phase -----
	sched := newScheduler(c.Nodes(), splits)
	mapOuts := make([]mapOutput, len(splits))
	mapReports := make([]TaskReport, len(splits))
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	setErr := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			sched.abort()
		})
	}
	for node := 0; node < c.Nodes(); node++ {
		for slot := 0; slot < c.MapSlots(); slot++ {
			wg.Add(1)
			go func(node, slot int) {
				defer wg.Done()
				for {
					taskIdx, src, ok := sched.take(node)
					if !ok {
						return
					}
					if src == takeStolen {
						tr.Instant(trace.KindWorkSteal, trace.LaneScheduler, node, taskIdx, int64(splits[taskIdx].Hosts[0]))
					}
					out, rep, err := runMapTask(c, job, taskIdx, splits[taskIdx], node, slot)
					mapOuts[taskIdx] = out
					mapReports[taskIdx] = rep
					if err != nil {
						setErr(err)
						return
					}
				}
			}(node, slot)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res.MapWall = time.Since(start)

	// ----- Reduce phase -----
	reduceStart := time.Now()
	outputs := make([]string, job.NumReducers)
	reduceReports := make([]TaskReport, job.NumReducers)
	slots := make([]chan struct{}, c.Nodes())
	for n := range slots {
		slots[n] = make(chan struct{}, c.ReduceSlots())
	}
	var rwg sync.WaitGroup
	for r := 0; r < job.NumReducers; r++ {
		node := r % c.Nodes()
		// The r-th task for a node occupies that node's (r / nodes)-th
		// reduce slot admission, which names its trace swimlane.
		slot := (r / c.Nodes()) % c.ReduceSlots()
		rwg.Add(1)
		go func(r, node, slot int) {
			defer rwg.Done()
			enqueued := time.Now()
			slots[node] <- struct{}{}
			queueWait := time.Since(enqueued)
			defer func() { <-slots[node] }()
			out, rep, err := runReduceTask(c, job, r, node, slot, mapOuts)
			rep.QueueWait = queueWait
			outputs[r] = out
			reduceReports[r] = rep
			if err != nil {
				setErr(err)
			}
		}(r, node, slot)
	}
	rwg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res.ReduceWall = time.Since(reduceStart)
	res.Wall = time.Since(start)
	res.Outputs = outputs

	// Intermediate map outputs are no longer needed. Removal is best-effort
	// cleanup: failures are counted on the job aggregate, not fatal.
	var cleanupErrs int64
	for _, mo := range mapOuts {
		if err := c.Disks[mo.node].Remove(mo.index.Name); err != nil {
			cleanupErrs++
		}
	}

	res.Tasks = append(append([]TaskReport(nil), mapReports...), reduceReports...)
	for _, t := range res.Tasks {
		res.Agg.Merge(t.Metrics)
	}
	if res.Agg.Counters == nil {
		res.Agg.Counters = make(map[string]int64)
	}
	if cleanupErrs > 0 {
		res.Agg.Counters[metrics.CtrCleanupErrors] += cleanupErrs
	}
	res.LocalMapTasks, res.StolenMapTasks = sched.placement()
	res.Agg.Counters[metrics.CtrLocalMapTasks] += int64(res.LocalMapTasks)
	res.Agg.Counters[metrics.CtrStolenMapTasks] += int64(res.StolenMapTasks)
	return res, nil
}

// takeSource classifies where a handed-out map task came from: its own
// node's local queue, the homeless orphan pool, or another node's queue
// (a work steal).
type takeSource int

const (
	takeLocal takeSource = iota
	takeOrphan
	takeStolen
)

// scheduler hands out map tasks with locality preference and work stealing.
type scheduler struct {
	mu      sync.Mutex
	queues  [][]int // per-node pending task indexes
	orphans []int   // tasks whose primary host is out of range
	aborted bool
	local   int // tasks taken from their own node's queue
	stolen  int // tasks stolen from another node's queue
}

func newScheduler(nodes int, splits []Split) *scheduler {
	s := &scheduler{queues: make([][]int, nodes)}
	for i, sp := range splits {
		host := -1
		if len(sp.Hosts) > 0 && sp.Hosts[0] >= 0 && sp.Hosts[0] < nodes {
			host = sp.Hosts[0]
		}
		if host < 0 {
			s.orphans = append(s.orphans, i)
		} else {
			s.queues[host] = append(s.queues[host], i)
		}
	}
	return s
}

// take pops a task for the given node: local first, then the orphan pool,
// then stealing from the longest queue. It reports where the task came
// from so placement quality (data-local vs stolen) is observable.
func (s *scheduler) take(node int) (int, takeSource, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aborted {
		return 0, takeLocal, false
	}
	if q := s.queues[node]; len(q) > 0 {
		task := q[0]
		s.queues[node] = q[1:]
		s.local++
		return task, takeLocal, true
	}
	if len(s.orphans) > 0 {
		task := s.orphans[0]
		s.orphans = s.orphans[1:]
		return task, takeOrphan, true
	}
	// Steal from the longest queue.
	victim, max := -1, 0
	for n, q := range s.queues {
		if len(q) > max {
			victim, max = n, len(q)
		}
	}
	if victim < 0 {
		return 0, takeLocal, false
	}
	q := s.queues[victim]
	task := q[len(q)-1] // steal from the tail: the head stays local
	s.queues[victim] = q[:len(q)-1]
	s.stolen++
	return task, takeStolen, true
}

// placement returns how many handed-out tasks were data-local vs stolen.
func (s *scheduler) placement() (local, stolen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.local, s.stolen
}

func (s *scheduler) abort() {
	s.mu.Lock()
	s.aborted = true
	s.mu.Unlock()
}

// SortTaskReports orders reports map-first then by index, for stable
// experiment output.
func SortTaskReports(reports []TaskReport) {
	sort.SliceStable(reports, func(i, j int) bool {
		if reports[i].Kind != reports[j].Kind {
			return reports[i].Kind == "map"
		}
		return reports[i].Index < reports[j].Index
	})
}
