// Package cluster assembles the simulated cluster the jobs run on: N
// nodes, each with its own (optionally throttled) local disk, task slots,
// and a per-node frequent-key cache; a shared network fabric; and a DFS
// spanning the node disks. It corresponds to the two testbeds of §V-A: the
// local cluster (6 machines, 12 mappers + 12 reducers) and the 20-node EC2
// cluster.
package cluster

import (
	"fmt"
	"time"

	"mrtext/internal/chaos"
	"mrtext/internal/core/freqbuf"
	"mrtext/internal/dfs"
	"mrtext/internal/fabric"
	"mrtext/internal/vdisk"
)

// Config sizes a cluster.
type Config struct {
	// Nodes is the number of worker machines.
	Nodes int
	// MapSlotsPerNode and ReduceSlotsPerNode bound concurrent tasks per
	// node, like Hadoop's slot configuration.
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// DiskThrottle, when non-nil, meters every node disk. Nil disks run
	// at memory speed (unit tests).
	DiskThrottle *vdisk.ThrottleConfig
	// Net configures the interconnect. A zero value disables throttling
	// but still counts traffic.
	Net fabric.Config
	// BlockSize is the DFS block size (also the input split size).
	BlockSize int64
	// Replication is the DFS replication factor.
	Replication int
	// Chaos, when non-nil, builds a fault injector wired through every
	// node disk and the fabric. The injector starts disarmed — the runner
	// arms it for the duration of a job — so cluster setup (dataset
	// generation, input loading) always runs fault-free.
	Chaos *chaos.Config
}

// LocalSmall mirrors the paper's local cluster: 6 machines running 12
// mappers and 12 reducers total (2 + 2 slots per node).
func LocalSmall() Config {
	return Config{
		Nodes:              6,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 2,
		DiskThrottle:       throttlePtr(paperDisk()),
		Net:                fabric.DefaultConfig(),
		BlockSize:          4 << 20,
		Replication:        2,
	}
}

// EC2Large mirrors the paper's 20-node EC2 cluster.
func EC2Large() Config {
	return Config{
		Nodes:              20,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 2,
		DiskThrottle:       throttlePtr(paperDisk()),
		Net:                fabric.DefaultConfig(),
		BlockSize:          4 << 20,
		Replication:        2,
	}
}

// Fast returns an unthrottled single-purpose test cluster.
func Fast(nodes int) Config {
	return Config{
		Nodes:              nodes,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 2,
		BlockSize:          1 << 20,
		Replication:        1,
	}
}

func throttlePtr(t vdisk.ThrottleConfig) *vdisk.ThrottleConfig { return &t }

// paperDisk models the effective per-task local-disk bandwidth of the
// paper's 2014 testbed (spinning disks shared by concurrent tasks and the
// DFS): deliberately slower than a raw spindle so spill/merge I/O is a
// visible share of the pipeline, as in Fig. 2.
func paperDisk() vdisk.ThrottleConfig {
	return vdisk.ThrottleConfig{
		WriteBytesPerSec: 35 << 20,
		ReadBytesPerSec:  70 << 20,
		OpLatency:        4 * time.Millisecond,
	}
}

// Cluster is a running simulated cluster.
type Cluster struct {
	cfg        Config
	Disks      []vdisk.Disk
	Net        *fabric.Fabric
	FS         *dfs.DFS
	FreqCaches []*freqbuf.Cache
	// Chaos is the cluster's fault injector; nil when Config.Chaos was
	// nil, which every consumer must tolerate (nil is fully disabled).
	Chaos *chaos.Injector
}

// New builds a cluster from cfg.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.MapSlotsPerNode <= 0 {
		cfg.MapSlotsPerNode = 1
	}
	if cfg.ReduceSlotsPerNode <= 0 {
		cfg.ReduceSlotsPerNode = 1
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 4 << 20
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	var inj *chaos.Injector
	if cfg.Chaos != nil {
		var err error
		inj, err = chaos.New(*cfg.Chaos, cfg.Nodes)
		if err != nil {
			return nil, err
		}
	}
	disks := make([]vdisk.Disk, cfg.Nodes)
	caches := make([]*freqbuf.Cache, cfg.Nodes)
	for i := range disks {
		var d vdisk.Disk = vdisk.NewMem()
		if cfg.DiskThrottle != nil {
			d = vdisk.NewThrottled(d, *cfg.DiskThrottle)
		}
		disks[i] = chaos.WrapDisk(d, i, inj)
		caches[i] = freqbuf.NewCache()
	}
	net, err := fabric.New(cfg.Nodes, cfg.Net)
	if err != nil {
		return nil, err
	}
	if inj != nil {
		net.SetFaultHook(func(src, dst int) error {
			if err := inj.NodeOp(src); err != nil {
				return err
			}
			return inj.NodeOp(dst)
		})
	}
	fs, err := dfs.New(disks, net, cfg.BlockSize, cfg.Replication)
	if err != nil {
		return nil, err
	}
	return &Cluster{cfg: cfg, Disks: disks, Net: net, FS: fs, FreqCaches: caches, Chaos: inj}, nil
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// MapSlots returns per-node map-slot count.
func (c *Cluster) MapSlots() int { return c.cfg.MapSlotsPerNode }

// ReduceSlots returns per-node reduce-slot count.
func (c *Cluster) ReduceSlots() int { return c.cfg.ReduceSlotsPerNode }

// TotalMapSlots returns cluster-wide map concurrency.
func (c *Cluster) TotalMapSlots() int { return c.cfg.Nodes * c.cfg.MapSlotsPerNode }

// TotalReduceSlots returns cluster-wide reduce concurrency.
func (c *Cluster) TotalReduceSlots() int { return c.cfg.Nodes * c.cfg.ReduceSlotsPerNode }

// NodeDead reports whether the chaos layer has killed node n. Always
// false without an injector.
func (c *Cluster) NodeDead(n int) bool { return c.Chaos.NodeDead(n) }

// LiveNodes returns the ids of nodes not killed by the chaos layer.
func (c *Cluster) LiveNodes() []int {
	live := make([]int, 0, c.cfg.Nodes)
	for i := 0; i < c.cfg.Nodes; i++ {
		if !c.Chaos.NodeDead(i) {
			live = append(live, i)
		}
	}
	return live
}
