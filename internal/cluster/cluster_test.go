package cluster

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"mrtext/internal/chaos"
	"mrtext/internal/vdisk"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(Config{Nodes: -2}); err == nil {
		t.Error("negative nodes accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c, err := New(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.MapSlots() != 1 || c.ReduceSlots() != 1 {
		t.Errorf("slots %d/%d", c.MapSlots(), c.ReduceSlots())
	}
	if c.FS.BlockSize() != 4<<20 {
		t.Errorf("block size %d", c.FS.BlockSize())
	}
	if len(c.Disks) != 2 || len(c.FreqCaches) != 2 {
		t.Error("per-node resources missing")
	}
	if c.Net.Nodes() != 2 {
		t.Errorf("fabric nodes %d", c.Net.Nodes())
	}
}

func TestPresets(t *testing.T) {
	local := LocalSmall()
	if local.Nodes != 6 || local.Nodes*local.MapSlotsPerNode != 12 || local.Nodes*local.ReduceSlotsPerNode != 12 {
		t.Errorf("local preset %+v does not match the paper's 12m+12r on 6 nodes", local)
	}
	if local.DiskThrottle == nil || local.Replication != 2 {
		t.Error("local preset missing throttle or replication")
	}
	ec2 := EC2Large()
	if ec2.Nodes != 20 {
		t.Errorf("ec2 preset %d nodes", ec2.Nodes)
	}
	fast := Fast(3)
	if fast.DiskThrottle != nil || fast.Nodes != 3 {
		t.Errorf("fast preset %+v", fast)
	}
}

func TestSlotTotals(t *testing.T) {
	c, err := New(Config{Nodes: 4, MapSlotsPerNode: 3, ReduceSlotsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalMapSlots() != 12 || c.TotalReduceSlots() != 8 {
		t.Errorf("totals %d/%d", c.TotalMapSlots(), c.TotalReduceSlots())
	}
	if c.Config().Nodes != 4 || c.Nodes() != 4 {
		t.Error("config accessor wrong")
	}
}

func TestNilChaosFullyDisabled(t *testing.T) {
	c, err := New(Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Chaos != nil {
		t.Fatal("injector built without a chaos config")
	}
	for n := 0; n < 3; n++ {
		if c.NodeDead(n) {
			t.Errorf("node %d dead without chaos", n)
		}
	}
	if live := c.LiveNodes(); len(live) != 3 {
		t.Errorf("live nodes %v, want all three", live)
	}
	// Without an injector the disks must be the raw implementation, not a
	// fault wrapper: the disabled path adds zero indirection.
	if _, ok := c.Disks[0].(*vdisk.Mem); !ok {
		t.Errorf("disk type %T, want unwrapped *vdisk.Mem", c.Disks[0])
	}
}

func TestChaosWiredThroughDisksAndFabric(t *testing.T) {
	c, err := New(Config{Nodes: 3, Chaos: &chaos.Config{KillNode: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Chaos == nil {
		t.Fatal("chaos config did not build an injector")
	}
	c.Chaos.Arm()
	defer c.Chaos.Disarm()
	c.Chaos.Kill(1)

	if !c.NodeDead(1) || c.NodeDead(0) || c.NodeDead(2) {
		t.Errorf("death flags: dead(0..2) = %v %v %v", c.NodeDead(0), c.NodeDead(1), c.NodeDead(2))
	}
	if live := c.LiveNodes(); len(live) != 2 || live[0] != 0 || live[1] != 2 {
		t.Errorf("live nodes %v, want [0 2]", live)
	}
	// The dead node's disk refuses new work with the chaos error...
	if _, err := c.Disks[1].Create("x"); !errors.Is(err, chaos.ErrNodeDead) {
		t.Errorf("create on dead node's disk: %v", err)
	}
	// ...and the fabric refuses transfers touching it in either direction.
	if err := c.Net.Transfer(0, 1, 10); !errors.Is(err, chaos.ErrNodeDead) {
		t.Errorf("transfer into dead node: %v", err)
	}
	if err := c.Net.Transfer(1, 2, 10); !errors.Is(err, chaos.ErrNodeDead) {
		t.Errorf("transfer out of dead node: %v", err)
	}
	// Live nodes keep working.
	if err := c.Net.Transfer(0, 2, 10); err != nil {
		t.Errorf("transfer between live nodes: %v", err)
	}
	w, err := c.Disks[0].Create("y")
	if err != nil {
		t.Fatalf("create on live node: %v", err)
	}
	if _, err := w.Write([]byte("data")); err != nil {
		t.Errorf("write on live node: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("close on live node: %v", err)
	}
}

func TestInFlightIOFailsWhenNodeDies(t *testing.T) {
	// A file opened before the node dies must fail on its next operation,
	// like a powered-off machine, not keep serving from a stale handle.
	c, err := New(Config{Nodes: 2, Chaos: &chaos.Config{KillNode: -1}})
	if err != nil {
		t.Fatal(err)
	}
	c.Chaos.Arm()
	defer c.Chaos.Disarm()
	w, err := c.Disks[1].Create("victim")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("before")); err != nil {
		t.Fatalf("write before death: %v", err)
	}
	c.Chaos.Kill(1)
	if _, err := w.Write([]byte("after")); !errors.Is(err, chaos.ErrNodeDead) {
		t.Errorf("in-flight write after death: %v", err)
	}
	if err := w.Close(); !errors.Is(err, chaos.ErrNodeDead) {
		t.Errorf("close after death: %v", err)
	}
}

func TestNodeDeathUnderConcurrentLoad(t *testing.T) {
	// Many goroutines do disk I/O across all nodes while one node is killed
	// mid-load: work on live nodes must never fail, work on the victim must
	// fail only with ErrNodeDead, and the death flags must converge.
	const (
		nodes   = 4
		victim  = 2
		writers = 4
		files   = 40
	)
	c, err := New(Config{Nodes: nodes, Chaos: &chaos.Config{KillNode: -1}})
	if err != nil {
		t.Fatal(err)
	}
	c.Chaos.Arm()
	defer c.Chaos.Disarm()

	var wg sync.WaitGroup
	payload := []byte("0123456789abcdef")
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < files; i++ {
				if g == 0 && i == files/2 {
					c.Chaos.Kill(victim)
				}
				node := (g + i) % nodes
				name := fmt.Sprintf("load/g%d/f%d", g, i)
				err := writeThenRead(c.Disks[node], name, payload)
				if err == nil {
					continue
				}
				if node != victim {
					t.Errorf("node %d failed under load: %v", node, err)
				} else if !errors.Is(err, chaos.ErrNodeDead) {
					t.Errorf("victim failed with a non-death error: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if !c.NodeDead(victim) {
		t.Error("victim not marked dead after the load")
	}
	if live := c.LiveNodes(); len(live) != nodes-1 {
		t.Errorf("live nodes %v after one death", live)
	}
}

func writeThenRead(d vdisk.Disk, name string, payload []byte) error {
	w, err := d.Create(name)
	if err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	r, err := d.Open(name)
	if err != nil {
		return err
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if string(got) != string(payload) {
		return fmt.Errorf("read back %q, want %q", got, payload)
	}
	return nil
}

func TestThrottledDisksWired(t *testing.T) {
	thr := vdisk.DefaultThrottle()
	c, err := New(Config{Nodes: 1, DiskThrottle: &thr})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Disks[0].(*vdisk.Throttled); !ok {
		t.Errorf("disk type %T, want *vdisk.Throttled", c.Disks[0])
	}
	c2, err := New(Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Disks[0].(*vdisk.Mem); !ok {
		t.Errorf("disk type %T, want *vdisk.Mem", c2.Disks[0])
	}
}
