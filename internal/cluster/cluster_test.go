package cluster

import (
	"testing"

	"mrtext/internal/vdisk"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(Config{Nodes: -2}); err == nil {
		t.Error("negative nodes accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c, err := New(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.MapSlots() != 1 || c.ReduceSlots() != 1 {
		t.Errorf("slots %d/%d", c.MapSlots(), c.ReduceSlots())
	}
	if c.FS.BlockSize() != 4<<20 {
		t.Errorf("block size %d", c.FS.BlockSize())
	}
	if len(c.Disks) != 2 || len(c.FreqCaches) != 2 {
		t.Error("per-node resources missing")
	}
	if c.Net.Nodes() != 2 {
		t.Errorf("fabric nodes %d", c.Net.Nodes())
	}
}

func TestPresets(t *testing.T) {
	local := LocalSmall()
	if local.Nodes != 6 || local.Nodes*local.MapSlotsPerNode != 12 || local.Nodes*local.ReduceSlotsPerNode != 12 {
		t.Errorf("local preset %+v does not match the paper's 12m+12r on 6 nodes", local)
	}
	if local.DiskThrottle == nil || local.Replication != 2 {
		t.Error("local preset missing throttle or replication")
	}
	ec2 := EC2Large()
	if ec2.Nodes != 20 {
		t.Errorf("ec2 preset %d nodes", ec2.Nodes)
	}
	fast := Fast(3)
	if fast.DiskThrottle != nil || fast.Nodes != 3 {
		t.Errorf("fast preset %+v", fast)
	}
}

func TestSlotTotals(t *testing.T) {
	c, err := New(Config{Nodes: 4, MapSlotsPerNode: 3, ReduceSlotsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalMapSlots() != 12 || c.TotalReduceSlots() != 8 {
		t.Errorf("totals %d/%d", c.TotalMapSlots(), c.TotalReduceSlots())
	}
	if c.Config().Nodes != 4 || c.Nodes() != 4 {
		t.Error("config accessor wrong")
	}
}

func TestThrottledDisksWired(t *testing.T) {
	thr := vdisk.DefaultThrottle()
	c, err := New(Config{Nodes: 1, DiskThrottle: &thr})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Disks[0].(*vdisk.Throttled); !ok {
		t.Errorf("disk type %T, want *vdisk.Throttled", c.Disks[0])
	}
	c2, err := New(Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Disks[0].(*vdisk.Mem); !ok {
		t.Errorf("disk type %T, want *vdisk.Mem", c2.Disks[0])
	}
}
