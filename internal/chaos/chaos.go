// Package chaos is the runtime's deterministic fault injector: the
// machinery that lets the fault-tolerance subsystem be tested under
// realistic cluster conditions — transient task failures, whole-node
// death, and manufactured stragglers — without any nondeterminism beyond
// goroutine scheduling. The paper's numbers come from Hadoop, whose task
// model silently absorbs worker failures via re-execution and speculative
// backups; injecting the same conditions here is what lets the runtime
// claim the optimizations survive them.
//
// Faults are planned, not rolled: whether attempt a of task t fails, at
// which named site, and after how many operations, is a pure function of
// (seed, site set, task, attempt) computed by a splitmix64-style hash.
// The schedule is therefore identical across runs and independent of
// which node or slot the attempt lands on, which makes failure scenarios
// reproducible from a single -chaos-seed flag even though the goroutine
// interleaving is not.
//
// Injected faults surface as ordinary errors from the task pipeline (and,
// for dead nodes, as I/O errors from the wrapped vdisk/fabric/DFS layers),
// never as panics: the runtime's retry machinery must see exactly what a
// real failed disk or NIC would produce.
//
// Cost model: a nil *Injector (and a nil *Plan) is fully disabled — every
// method is a nil-check no-op, so hot paths pay one pointer comparison
// when chaos is off.
package chaos

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Site names an instrumented fault point in the task pipeline. Map-task
// attempts check the first four; reduce-task attempts the last two.
type Site uint8

const (
	// SiteRecordRead is the map goroutine reading one input record.
	SiteRecordRead Site = iota
	// SiteEmit is the collector path of one emitted map-output record.
	SiteEmit
	// SiteSpillWrite is the support goroutine writing one spill run.
	SiteSpillWrite
	// SiteMerge is the map task merging spill runs into its output.
	SiteMerge
	// SiteShuffleFetch is the reduce task opening or draining one map
	// output segment.
	SiteShuffleFetch
	// SiteReduceWrite is the reduce task writing final output records.
	SiteReduceWrite

	numSites
)

var siteNames = [numSites]string{
	"record-read", "emit", "spill-write", "merge", "shuffle-fetch", "reduce-write",
}

// String returns the site name used in logs and flags.
func (s Site) String() string {
	if s >= numSites {
		return "unknown"
	}
	return siteNames[s]
}

// MapSites returns the fault sites a map-task attempt checks.
func MapSites() []Site {
	return []Site{SiteRecordRead, SiteEmit, SiteSpillWrite, SiteMerge}
}

// ReduceSites returns the fault sites a reduce-task attempt checks.
func ReduceSites() []Site {
	return []Site{SiteShuffleFetch, SiteReduceWrite}
}

// Sentinel errors. Injected faults wrap ErrInjected; operations touching a
// killed node wrap ErrNodeDead. The runner distinguishes them: ErrInjected
// means retry the attempt, ErrNodeDead additionally triggers lost-output
// recovery.
var (
	ErrInjected = errors.New("chaos: injected fault")
	ErrNodeDead = errors.New("chaos: node is dead")
)

// Config parameterizes an Injector. The zero value injects nothing (but
// still arms the node-death and bookkeeping machinery, which is useful for
// Kill-driven tests).
type Config struct {
	// Seed drives the deterministic fault schedule.
	Seed int64
	// FailRate is the probability in [0,1] that one task attempt fails at
	// one of its armed sites. The per-attempt decision is a pure function
	// of (Seed, task, attempt), so retried attempts reroll.
	FailRate float64
	// Sites restricts which sites may trip; nil arms all of them.
	Sites []Site
	// KillNode names a node to kill mid-job (negative or out of range:
	// none). Killing node 0 additionally requires an explicit
	// KillAfterOps, so the zero Config stays inert.
	KillNode int
	// KillAfterOps is how many chaos-visible operations the victim node
	// performs before it dies (default 200). Operations are disk and
	// fabric touches plus task-site checks, so the kill lands mid-job.
	KillAfterOps int64
	// DelayRate is the probability that a task attempt is delayed by
	// Delay before it starts — the straggler manufacturing knob.
	DelayRate float64
	// Delay is the manufactured straggler delay (default 30ms).
	Delay time.Duration
}

// EventKind classifies one chaos log entry.
type EventKind uint8

const (
	// EventFault is one injected task-site failure.
	EventFault EventKind = iota
	// EventKill is one node death.
	EventKill
	// EventDelay is one manufactured straggler delay.
	EventDelay
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EventFault:
		return "fault"
	case EventKill:
		return "kill"
	case EventDelay:
		return "delay"
	}
	return "unknown"
}

// Event is one fired injection, recorded in the chaos log. Only faults
// that actually fired are logged, so the log is exactly the set of
// failures the runtime had to absorb.
type Event struct {
	Kind    EventKind
	Site    Site
	Node    int
	Task    int
	Attempt int
}

// String renders the event for logs.
func (e Event) String() string {
	switch e.Kind {
	case EventKill:
		return fmt.Sprintf("kill node %d", e.Node)
	case EventDelay:
		return fmt.Sprintf("delay task %d attempt %d on node %d", e.Task, e.Attempt, e.Node)
	}
	return fmt.Sprintf("fault %s task %d attempt %d on node %d", e.Site, e.Task, e.Attempt, e.Node)
}

// Stats summarizes what an injector has fired so far.
type Stats struct {
	Faults int64 // injected task-site failures
	Kills  int64 // node deaths
	Delays int64 // manufactured straggler delays
}

// Injector is one job's fault source. Safe for concurrent use. The nil
// *Injector is valid and fully disabled.
type Injector struct {
	cfg      Config
	armed    [numSites]bool
	kill     int64 // KillAfterOps with default applied
	killNode int   // KillNode normalized (-1: none)

	dead    []atomic.Bool
	nodeOps []atomic.Int64
	// enabled counts concurrent Arm calls: an injector shared by several
	// jobs running on one long-lived cluster stays armed until the LAST
	// job disarms, so one job finishing cannot switch faults off under a
	// concurrent job that armed the same injector.
	enabled atomic.Int64

	faults atomic.Int64
	kills  atomic.Int64
	delays atomic.Int64

	mu  sync.Mutex
	log []Event
}

// New builds an injector for a cluster of n nodes. The injector starts
// disarmed: it injects nothing until Arm is called (the runner arms it at
// job start, so dataset generation on the same cluster runs fault-free).
func New(cfg Config, n int) (*Injector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("chaos: need at least one node, got %d", n)
	}
	if cfg.FailRate < 0 || cfg.FailRate > 1 {
		return nil, fmt.Errorf("chaos: fail rate %v outside [0,1]", cfg.FailRate)
	}
	if cfg.DelayRate < 0 || cfg.DelayRate > 1 {
		return nil, fmt.Errorf("chaos: delay rate %v outside [0,1]", cfg.DelayRate)
	}
	in := &Injector{
		cfg:     cfg,
		kill:    cfg.KillAfterOps,
		dead:    make([]atomic.Bool, n),
		nodeOps: make([]atomic.Int64, n),
	}
	if in.kill <= 0 {
		in.kill = 200
	}
	in.killNode = cfg.KillNode
	if in.killNode >= n || in.killNode < 0 || (in.killNode == 0 && cfg.KillAfterOps <= 0) {
		in.killNode = -1
	}
	if in.cfg.Delay <= 0 {
		in.cfg.Delay = 30 * time.Millisecond
	}
	if len(cfg.Sites) == 0 {
		for i := range in.armed {
			in.armed[i] = true
		}
	} else {
		for _, s := range cfg.Sites {
			if s >= numSites {
				return nil, fmt.Errorf("chaos: unknown site %d", s)
			}
			in.armed[s] = true
		}
	}
	return in, nil
}

// Arm activates injection. Arms are counted: pair every Arm with one
// Disarm. Nil-safe.
func (in *Injector) Arm() {
	if in != nil {
		in.enabled.Add(1)
	}
}

// Disarm undoes one Arm; injection stops when every armer has disarmed
// (node deaths persist). Nil-safe.
func (in *Injector) Disarm() {
	if in != nil && in.enabled.Add(-1) < 0 {
		in.enabled.Add(1) // unpaired Disarm: clamp at disarmed
	}
}

// Enabled reports whether the injector is non-nil and armed.
func (in *Injector) Enabled() bool { return in != nil && in.enabled.Load() > 0 }

// KillsNodes reports whether this injector is configured to kill a node.
// The mr runtime uses it to reject node-killing per-job injectors: node
// death is a cluster-wide condition, not a per-job one.
func (in *Injector) KillsNodes() bool { return in != nil && in.killNode >= 0 }

// Kill marks a node dead immediately: every subsequent operation touching
// it fails with ErrNodeDead. Idempotent, nil-safe.
func (in *Injector) Kill(node int) {
	if in == nil || node < 0 || node >= len(in.dead) {
		return
	}
	if in.dead[node].CompareAndSwap(false, true) {
		in.kills.Add(1)
		in.record(Event{Kind: EventKill, Node: node})
	}
}

// NodeDead reports whether node has been killed. Nil-safe.
func (in *Injector) NodeDead(node int) bool {
	if in == nil || node < 0 || node >= len(in.dead) {
		return false
	}
	return in.dead[node].Load()
}

// DeadNodes returns the killed node ids in ascending order. Nil-safe.
func (in *Injector) DeadNodes() []int {
	if in == nil {
		return nil
	}
	var out []int
	for i := range in.dead {
		if in.dead[i].Load() {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// NodeOp accounts one chaos-visible operation on node and returns
// ErrNodeDead if the node is (or just became) dead. The configured victim
// dies when its operation count crosses KillAfterOps. Nil-safe; disarmed
// injectors neither count nor fail.
func (in *Injector) NodeOp(node int) error {
	if in == nil || in.enabled.Load() <= 0 || node < 0 || node >= len(in.dead) {
		return nil
	}
	if in.dead[node].Load() {
		return fmt.Errorf("node %d: %w", node, ErrNodeDead)
	}
	if node == in.killNode {
		if in.nodeOps[node].Add(1) >= in.kill {
			in.Kill(node)
			return fmt.Errorf("node %d: %w", node, ErrNodeDead)
		}
	}
	return nil
}

// Stats returns cumulative fired-injection counts. Nil-safe.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{Faults: in.faults.Load(), Kills: in.kills.Load(), Delays: in.delays.Load()}
}

// Log returns a copy of the fired-injection log. Nil-safe.
func (in *Injector) Log() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.log...)
}

func (in *Injector) record(e Event) {
	in.mu.Lock()
	in.log = append(in.log, e)
	in.mu.Unlock()
}

// ---------- deterministic planning ----------

// splitmix64 is the finalizer of the splitmix64 generator: a fast, well
// mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// fireWindow is how many operations into a site a planned fault may land:
// per-record sites spread the failure through the attempt, coarse sites
// trip on their first operation so the fault reliably fires.
func fireWindow(s Site) uint64 {
	switch s {
	case SiteRecordRead, SiteEmit, SiteReduceWrite:
		return 512
	default:
		return 1
	}
}

// Plan is the precomputed fault schedule of one task attempt: at most one
// site trips, at a fixed operation index, plus an optional straggler
// delay. A nil *Plan is valid and checks nothing.
//
// Concurrency: Check is safe to call from any number of goroutines — the
// per-site operation counters are atomic and the single planned fault is
// claimed by compare-and-swap, so exactly one concurrent Check observes
// it. The pipelined shuffle relies on this: one reduce attempt's copier
// pool checks SiteShuffleFetch from several goroutines at once, and the
// fault count must stay deterministic (one fire per failing plan)
// regardless of which copier happens to trip it. Delay is still called
// once, from the attempt's own goroutine, before any concurrency starts.
type Plan struct {
	in      *Injector
	node    int
	task    int
	attempt int
	site    Site  // the site that trips, if armed
	fireAt  int64 // operation index at which it trips
	fail    bool  // immutable after Plan(): this attempt has a planned fault
	fired   atomic.Bool
	delay   time.Duration
	count   [numSites]atomic.Int64
}

// Plan computes the fault schedule for one task attempt running on node.
// sites must be the attempt's site set in a stable order (MapSites or
// ReduceSites); the schedule depends only on (seed, sites[0], task,
// attempt), never on the node, so retries reroll deterministically
// wherever they land. Returns nil (check nothing) when the injector is
// nil or disarmed. Nil-safe.
func (in *Injector) Plan(node, task, attempt int, sites []Site) *Plan {
	if in == nil || in.enabled.Load() <= 0 || len(sites) == 0 {
		return nil
	}
	p := &Plan{in: in, node: node, task: task, attempt: attempt}
	// sites[0] disambiguates map task t from reduce task t.
	base := splitmix64(uint64(in.cfg.Seed)) ^
		splitmix64(uint64(sites[0])<<40|uint64(task)<<16|uint64(attempt))
	if in.cfg.FailRate > 0 && unit(splitmix64(base)) < in.cfg.FailRate {
		armed := make([]Site, 0, len(sites))
		for _, s := range sites {
			if in.armed[s] {
				armed = append(armed, s)
			}
		}
		if len(armed) > 0 {
			p.fail = true
			p.site = armed[splitmix64(base+1)%uint64(len(armed))]
			p.fireAt = int64(splitmix64(base+2) % fireWindow(p.site))
		}
	}
	if in.cfg.DelayRate > 0 && unit(splitmix64(base+3)) < in.cfg.DelayRate {
		p.delay = in.cfg.Delay
	}
	return p
}

// Delay returns the attempt's manufactured straggler delay (0 for none),
// recording it as fired. The caller sleeps; the plan only decides.
// Nil-safe.
func (p *Plan) Delay() time.Duration {
	if p == nil || p.delay <= 0 {
		return 0
	}
	d := p.delay
	p.delay = 0
	p.in.delays.Add(1)
	p.in.record(Event{Kind: EventDelay, Node: p.node, Task: p.task, Attempt: p.attempt})
	return d
}

// Check accounts one operation at site and returns an injected error when
// the plan trips at this operation. It also surfaces node death, so task
// code needs a single chaos check per site. Nil-safe and safe for
// concurrent use; the planned fault fires exactly once.
func (p *Plan) Check(site Site) error {
	if p == nil {
		return nil
	}
	if err := p.in.NodeOp(p.node); err != nil {
		return err
	}
	n := p.count[site].Add(1) - 1
	if p.fail && site == p.site && n == p.fireAt && p.fired.CompareAndSwap(false, true) {
		p.in.faults.Add(1)
		p.in.record(Event{Kind: EventFault, Site: site, Node: p.node, Task: p.task, Attempt: p.attempt})
		return fmt.Errorf("%s at op %d (task %d attempt %d node %d): %w",
			site, n, p.task, p.attempt, p.node, ErrInjected)
	}
	return nil
}
