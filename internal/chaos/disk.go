package chaos

import (
	"io"

	"mrtext/internal/vdisk"
)

// WrapDisk wraps a node-local disk so every operation — including reads
// and writes on already-open files — first passes the injector's node
// check: once the node is killed, in-flight I/O and new opens alike fail
// with ErrNodeDead, exactly as a powered-off machine's disk would behave
// to the rest of the cluster. With a nil injector the disk is returned
// unwrapped, so the disabled path adds nothing.
func WrapDisk(d vdisk.Disk, node int, in *Injector) vdisk.Disk {
	if in == nil {
		return d
	}
	return &faultDisk{inner: d, in: in, node: node}
}

type faultDisk struct {
	inner vdisk.Disk
	in    *Injector
	node  int
}

func (f *faultDisk) Create(name string) (io.WriteCloser, error) {
	if err := f.in.NodeOp(f.node); err != nil {
		return nil, err
	}
	w, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultWriter{w: w, in: f.in, node: f.node}, nil
}

func (f *faultDisk) Open(name string) (io.ReadCloser, error) {
	if err := f.in.NodeOp(f.node); err != nil {
		return nil, err
	}
	r, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultReader{r: r, in: f.in, node: f.node}, nil
}

func (f *faultDisk) OpenSection(name string, off, length int64) (io.ReadCloser, error) {
	if err := f.in.NodeOp(f.node); err != nil {
		return nil, err
	}
	r, err := f.inner.OpenSection(name, off, length)
	if err != nil {
		return nil, err
	}
	return &faultReader{r: r, in: f.in, node: f.node}, nil
}

func (f *faultDisk) Size(name string) (int64, error) {
	if err := f.in.NodeOp(f.node); err != nil {
		return 0, err
	}
	return f.inner.Size(name)
}

func (f *faultDisk) Remove(name string) error {
	if err := f.in.NodeOp(f.node); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *faultDisk) Rename(oldName, newName string) error {
	if err := f.in.NodeOp(f.node); err != nil {
		return err
	}
	return f.inner.Rename(oldName, newName)
}

func (f *faultDisk) Stats() vdisk.Stats { return f.inner.Stats() }

type faultWriter struct {
	w    io.WriteCloser
	in   *Injector
	node int
}

func (w *faultWriter) Write(p []byte) (int, error) {
	if err := w.in.NodeOp(w.node); err != nil {
		return 0, err
	}
	return w.w.Write(p)
}

func (w *faultWriter) Close() error {
	if err := w.in.NodeOp(w.node); err != nil {
		return err
	}
	return w.w.Close()
}

type faultReader struct {
	r    io.ReadCloser
	in   *Injector
	node int
}

func (r *faultReader) Read(p []byte) (int, error) {
	if err := r.in.NodeOp(r.node); err != nil {
		return 0, err
	}
	return r.r.Read(p)
}

func (r *faultReader) Close() error { return r.r.Close() }
