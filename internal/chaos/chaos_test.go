package chaos

import (
	"errors"
	"io"
	"testing"
	"time"

	"mrtext/internal/vdisk"
)

func mustNew(t *testing.T, cfg Config, n int) *Injector {
	t.Helper()
	in, err := New(cfg, n)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return in
}

// planOutcome runs one attempt's plan to exhaustion and reports where (and
// whether) it failed.
type planOutcome struct {
	failed bool
	site   Site
	op     int64
}

func drainPlan(p *Plan, sites []Site, opsPerSite int64) planOutcome {
	for op := int64(0); op < opsPerSite; op++ {
		for _, s := range sites {
			if err := p.Check(s); err != nil {
				return planOutcome{failed: true, site: s, op: op}
			}
		}
	}
	return planOutcome{}
}

func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, FailRate: 0.3, KillNode: -1}
	sites := MapSites()

	run := func(node int) []planOutcome {
		in := mustNew(t, cfg, 8)
		in.Arm()
		var out []planOutcome
		for task := 0; task < 50; task++ {
			for attempt := 0; attempt < 3; attempt++ {
				p := in.Plan(node, task, attempt, sites)
				out = append(out, drainPlan(p, sites, 600))
			}
		}
		return out
	}

	a, b := run(0), run(5)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs across nodes: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].failed {
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("no attempt failed at 30% fail rate over 150 attempts")
	}
	// Rough rate sanity: 150 attempts at 0.3 should land well inside [15, 75].
	if fails < 15 || fails > 75 {
		t.Fatalf("implausible failure count %d/150 at rate 0.3", fails)
	}
}

func TestPlanRerollsAcrossAttempts(t *testing.T) {
	in := mustNew(t, Config{Seed: 7, FailRate: 0.5, KillNode: -1}, 4)
	in.Arm()
	sites := ReduceSites()
	// Across enough tasks, some attempt chain must mix failing and
	// succeeding attempts — i.e. the reroll is per attempt, not per task.
	mixed := false
	for task := 0; task < 40 && !mixed; task++ {
		first := drainPlan(in.Plan(0, task, 0, sites), sites, 600).failed
		second := drainPlan(in.Plan(0, task, 1, sites), sites, 600).failed
		if first != second {
			mixed = true
		}
	}
	if !mixed {
		t.Fatal("attempts 0 and 1 always agreed: schedule does not reroll per attempt")
	}
}

func TestPlanErrorsWrapErrInjected(t *testing.T) {
	in := mustNew(t, Config{Seed: 1, FailRate: 1, KillNode: -1}, 2)
	in.Arm()
	sites := MapSites()
	p := in.Plan(1, 3, 0, sites)
	out := drainPlan(p, sites, 600)
	if !out.failed {
		t.Fatal("fail rate 1.0 did not fail the attempt")
	}
	// Re-derive the same plan and confirm the error wraps ErrInjected.
	p = in.Plan(1, 3, 0, sites)
	var err error
	for op := int64(0); op < 600 && err == nil; op++ {
		for _, s := range sites {
			if err = p.Check(s); err != nil {
				break
			}
		}
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error = %v, want ErrInjected", err)
	}
	if got := in.Stats().Faults; got != 2 {
		t.Fatalf("Stats().Faults = %d, want 2", got)
	}
}

func TestDisarmedInjectsNothing(t *testing.T) {
	in := mustNew(t, Config{Seed: 9, FailRate: 1, KillNode: 0, KillAfterOps: 1}, 2)
	sites := MapSites()
	if p := in.Plan(0, 0, 0, sites); p != nil {
		t.Fatal("disarmed injector returned a non-nil plan")
	}
	if err := in.NodeOp(0); err != nil {
		t.Fatalf("disarmed NodeOp failed: %v", err)
	}
	in.Arm()
	if in.Plan(0, 0, 0, sites) == nil {
		t.Fatal("armed injector returned a nil plan")
	}
}

func TestNilInjectorAndPlanAreNoOps(t *testing.T) {
	var in *Injector
	in.Arm()
	in.Disarm()
	in.Kill(0)
	if in.Enabled() || in.NodeDead(0) || in.DeadNodes() != nil {
		t.Fatal("nil injector reported state")
	}
	if err := in.NodeOp(3); err != nil {
		t.Fatalf("nil NodeOp: %v", err)
	}
	if p := in.Plan(0, 0, 0, MapSites()); p != nil {
		t.Fatal("nil injector returned a plan")
	}
	var p *Plan
	if err := p.Check(SiteEmit); err != nil {
		t.Fatalf("nil plan Check: %v", err)
	}
	if d := p.Delay(); d != 0 {
		t.Fatalf("nil plan Delay = %v", d)
	}
}

func TestNodeKillAfterOps(t *testing.T) {
	in := mustNew(t, Config{Seed: 3, KillNode: 1, KillAfterOps: 10}, 4)
	in.Arm()
	var killErr error
	for i := 0; i < 20 && killErr == nil; i++ {
		killErr = in.NodeOp(1)
	}
	if !errors.Is(killErr, ErrNodeDead) {
		t.Fatalf("victim never died: %v", killErr)
	}
	if !in.NodeDead(1) {
		t.Fatal("NodeDead(1) = false after kill")
	}
	if err := in.NodeOp(0); err != nil {
		t.Fatalf("non-victim node failed: %v", err)
	}
	if got := in.DeadNodes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DeadNodes = %v, want [1]", got)
	}
	if got := in.Stats().Kills; got != 1 {
		t.Fatalf("Stats().Kills = %d, want 1", got)
	}
	// The kill is logged exactly once.
	kills := 0
	for _, e := range in.Log() {
		if e.Kind == EventKill {
			kills++
		}
	}
	if kills != 1 {
		t.Fatalf("kill logged %d times", kills)
	}
}

func TestZeroConfigIsInert(t *testing.T) {
	// The zero Config must stay inert even armed: KillNode's zero value is
	// node 0, but without an explicit KillAfterOps no node is a victim, no
	// fault fires, and no delay is scheduled.
	in := mustNew(t, Config{}, 3)
	in.Arm()
	for i := 0; i < 500; i++ {
		if err := in.NodeOp(0); err != nil {
			t.Fatalf("zero config killed node 0 after %d ops: %v", i, err)
		}
	}
	p := in.Plan(0, 0, 0, MapSites())
	for i := 0; i < 1000; i++ {
		for _, s := range MapSites() {
			if err := p.Check(s); err != nil {
				t.Fatalf("zero config injected a fault: %v", err)
			}
		}
	}
	if d := p.Delay(); d != 0 {
		t.Fatalf("zero config scheduled a delay: %v", d)
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("zero config fired injections: %+v", s)
	}
	// An explicit KillAfterOps is what opts node 0 in as a victim.
	in2 := mustNew(t, Config{KillNode: 0, KillAfterOps: 5}, 3)
	in2.Arm()
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		err = in2.NodeOp(0)
	}
	if !errors.Is(err, ErrNodeDead) {
		t.Fatalf("explicit KillAfterOps did not kill node 0: %v", err)
	}
}

func TestDelayPlanOneShot(t *testing.T) {
	in := mustNew(t, Config{Seed: 11, DelayRate: 1, Delay: 5 * time.Millisecond, KillNode: -1}, 2)
	in.Arm()
	p := in.Plan(0, 0, 0, MapSites())
	if d := p.Delay(); d != 5*time.Millisecond {
		t.Fatalf("Delay = %v, want 5ms", d)
	}
	if d := p.Delay(); d != 0 {
		t.Fatalf("second Delay = %v, want 0", d)
	}
	if got := in.Stats().Delays; got != 1 {
		t.Fatalf("Stats().Delays = %d, want 1", got)
	}
}

func TestWrapDiskNodeDeath(t *testing.T) {
	in := mustNew(t, Config{Seed: 5, KillNode: -1}, 2)
	in.Arm()
	d := WrapDisk(vdisk.NewMem(), 1, in)

	w, err := d.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := d.Open("f")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	in.Kill(1)

	// In-flight reader dies, as do all new operations.
	if _, err := r.Read(make([]byte, 4)); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("in-flight Read after kill = %v, want ErrNodeDead", err)
	}
	if _, err := d.Open("f"); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("Open after kill = %v, want ErrNodeDead", err)
	}
	if _, err := d.Create("g"); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("Create after kill = %v, want ErrNodeDead", err)
	}
	if err := d.Rename("f", "h"); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("Rename after kill = %v, want ErrNodeDead", err)
	}
}

func TestWrapDiskNilInjectorUnwrapped(t *testing.T) {
	m := vdisk.NewMem()
	if d := WrapDisk(m, 0, nil); d != vdisk.Disk(m) {
		t.Fatal("WrapDisk with nil injector did not return the disk unwrapped")
	}
}

func TestWrapDiskPassthrough(t *testing.T) {
	in := mustNew(t, Config{Seed: 2, KillNode: -1}, 1)
	in.Arm()
	d := WrapDisk(vdisk.NewMem(), 0, in)
	w, err := d.Create("x")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := w.Write([]byte("abc")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Rename("x", "y"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	r, err := d.OpenSection("y", 1, 2)
	if err != nil {
		t.Fatalf("OpenSection: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil || string(got) != "bc" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	if sz, err := d.Size("y"); err != nil || sz != 3 {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	if err := d.Remove("y"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}

// The nil fast path is the price every hot-path call site pays with chaos
// off; it must stay at the cost of a pointer comparison.
func BenchmarkNilInjectorNodeOp(b *testing.B) {
	var in *Injector
	for i := 0; i < b.N; i++ {
		if err := in.NodeOp(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNilPlanCheck(b *testing.B) {
	var p *Plan
	for i := 0; i < b.N; i++ {
		if err := p.Check(SiteEmit); err != nil {
			b.Fatal(err)
		}
	}
}
