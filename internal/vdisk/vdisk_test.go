package vdisk

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

func writeFile(t *testing.T, d Disk, name string, data []byte) {
	t.Helper()
	w, err := d.Create(name)
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close %s: %v", name, err)
	}
}

func readAll(t *testing.T, d Disk, name string) []byte {
	t.Helper()
	r, err := d.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return data
}

func TestMemRoundTrip(t *testing.T) {
	d := NewMem()
	data := bytes.Repeat([]byte("abc"), 1000)
	writeFile(t, d, "f", data)
	if got := readAll(t, d, "f"); !bytes.Equal(got, data) {
		t.Error("data mismatch")
	}
	size, err := d.Size("f")
	if err != nil || size != int64(len(data)) {
		t.Errorf("Size=%d err=%v, want %d", size, err, len(data))
	}
}

func TestMemSemantics(t *testing.T) {
	d := NewMem()
	// Open before close: not readable.
	w, err := d.Create("open")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Open("open"); err == nil {
		t.Error("opened a file still being written")
	}
	// Duplicate create of an in-flight file.
	if _, err := d.Create("open"); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate in-flight create: %v", err)
	}
	w.Close()
	// Duplicate create of a sealed file.
	if _, err := d.Create("open"); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate create: %v", err)
	}
	// Missing files.
	if _, err := d.Open("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("open missing: %v", err)
	}
	if _, err := d.Size("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("size missing: %v", err)
	}
	if err := d.Remove("missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("remove missing: %v", err)
	}
	// Remove then re-create.
	if err := d.Remove("open"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, d, "open", []byte("x"))
}

func TestMemOpenSection(t *testing.T) {
	d := NewMem()
	data := []byte("0123456789")
	writeFile(t, d, "f", data)
	cases := []struct {
		off, n int64
		want   string
	}{
		{0, 10, "0123456789"},
		{3, 4, "3456"},
		{9, 1, "9"},
		{10, 0, ""},
		{0, 0, ""},
	}
	for _, c := range cases {
		r, err := d.OpenSection("f", c.off, c.n)
		if err != nil {
			t.Fatalf("section [%d,%d): %v", c.off, c.off+c.n, err)
		}
		got, _ := io.ReadAll(r)
		r.Close()
		if string(got) != c.want {
			t.Errorf("section [%d,%d): got %q want %q", c.off, c.off+c.n, got, c.want)
		}
	}
	// Out-of-range sections error.
	for _, c := range [][2]int64{{-1, 2}, {5, 6}, {11, 0}, {0, 11}} {
		if _, err := d.OpenSection("f", c[0], c[1]); err == nil {
			t.Errorf("section [%d,+%d) succeeded", c[0], c[1])
		}
	}
}

func TestMemStats(t *testing.T) {
	d := NewMem()
	writeFile(t, d, "f", make([]byte, 1234))
	readAll(t, d, "f")
	s := d.Stats()
	if s.BytesWritten != 1234 || s.BytesRead != 1234 || s.Creates != 1 || s.Opens != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestMemConcurrent(t *testing.T) {
	d := NewMem()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("f%d", i)
			data := bytes.Repeat([]byte{byte(i)}, 100)
			w, err := d.Create(name)
			if err != nil {
				t.Error(err)
				return
			}
			w.Write(data)
			w.Close()
			r, err := d.Open(name)
			if err != nil {
				t.Error(err)
				return
			}
			got, _ := io.ReadAll(r)
			r.Close()
			if !bytes.Equal(got, data) {
				t.Errorf("file %s corrupted", name)
			}
		}(i)
	}
	wg.Wait()
}

func TestThrottledMetersBandwidth(t *testing.T) {
	inner := NewMem()
	// 1 MiB/s write: writing 128 KiB should take ~125 ms.
	d := NewThrottled(inner, ThrottleConfig{WriteBytesPerSec: 1 << 20})
	start := time.Now()
	writeFile(t, d, "f", make([]byte, 128<<10))
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond {
		t.Errorf("write finished in %v; throttle not applied", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("write took %v; throttle too aggressive", elapsed)
	}
}

func TestThrottledSharedSpindle(t *testing.T) {
	// Two concurrent writers share one disk's bandwidth: total time is the
	// sum of their transfer times, not the max.
	inner := NewMem()
	d := NewThrottled(inner, ThrottleConfig{WriteBytesPerSec: 1 << 20})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			writeFile(t, d, fmt.Sprintf("f%d", i), make([]byte, 64<<10))
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("concurrent writes finished in %v; expected serialized ≥ ~125ms", elapsed)
	}
}

func TestThrottledPassThrough(t *testing.T) {
	inner := NewMem()
	d := NewThrottled(inner, ThrottleConfig{}) // zero config: no throttling
	data := []byte("hello world")
	writeFile(t, d, "f", data)
	if got := readAll(t, d, "f"); !bytes.Equal(got, data) {
		t.Error("data mismatch through throttle")
	}
	sec, err := d.OpenSection("f", 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(sec)
	sec.Close()
	if string(got) != "world" {
		t.Errorf("section got %q", got)
	}
	if s := d.Stats(); s.BytesWritten != int64(len(data)) {
		t.Errorf("stats not forwarded: %+v", s)
	}
	if err := d.Remove("f"); err != nil {
		t.Errorf("remove: %v", err)
	}
}
